#!/usr/bin/env bash
# Build the parallel kernel tests under ThreadSanitizer and run them with a
# pool wide enough to exercise the cross-thread paths. The determinism ctest
# proves results are right; this proves they are right for the right reason
# (no data races hiding behind x86's strong memory model).
#
# Usage: scripts/tsan_check.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRP_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target test_parallel test_model test_solver test_route

# TSan findings must fail the run, not just print.
export TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}"
# Force a real multi-worker pool even on small CI boxes.
export RP_THREADS="${RP_THREADS:-4}"

for t in test_parallel test_model test_solver test_route; do
  echo "== TSan: $t (RP_THREADS=$RP_THREADS) =="
  "$BUILD_DIR/tests/$t"
done
echo "tsan_check: OK (no data races reported)"
