#!/usr/bin/env bash
# Sanitizer gates:
#  1. Build the parallel kernel tests under ThreadSanitizer and run them with
#     a pool wide enough to exercise the cross-thread paths. The determinism
#     ctest proves results are right; this proves they are right for the
#     right reason (no data races hiding behind x86's strong memory model).
#  2. Build the Bookshelf fuzzer under ASan/UBSan and run the seeded mutation
#     corpus, so parser robustness bugs (overflows, OOB reads on truncated
#     records) fail loudly instead of silently corrupting the Design.
#
# Usage: scripts/tsan_check.sh [build-dir] [asan-build-dir]
#        (defaults: build-tsan build-asan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
ASAN_BUILD_DIR="${2:-build-asan}"
FUZZ_SEEDS="${RP_FUZZ_SEEDS:-500}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRP_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target test_parallel test_model test_solver test_route test_simd test_serve

# TSan findings must fail the run, not just print.
export TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}"
# Force a real multi-worker pool even on small CI boxes.
export RP_THREADS="${RP_THREADS:-4}"

# test_serve runs genuinely concurrent placement jobs (the rp_serve worker
# pool) — the one suite where flows race each other, not just pool workers.
for t in test_parallel test_model test_solver test_route test_simd test_serve; do
  echo "== TSan: $t (RP_THREADS=$RP_THREADS) =="
  "$BUILD_DIR/tests/$t"
done
echo "tsan_check: OK (no data races reported)"

# --- ASan/UBSan fuzz pass -------------------------------------------------
cmake -B "$ASAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRP_SANITIZE=address,undefined
cmake --build "$ASAN_BUILD_DIR" -j "$(nproc)" \
  --target rp_fuzz_bookshelf test_robustness test_simd test_dp test_serve

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=0:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:${UBSAN_OPTIONS:-}"

echo "== ASan/UBSan: test_robustness =="
"$ASAN_BUILD_DIR/tests/test_robustness"
# The SIMD intrinsics + incremental-eval index arithmetic and the DP paths
# that consume them are exactly where an OOB read would hide; run both
# suites under ASan/UBSan so a bad lane or stale scratch fails loudly.
echo "== ASan/UBSan: test_simd =="
"$ASAN_BUILD_DIR/tests/test_simd"
echo "== ASan/UBSan: test_dp =="
"$ASAN_BUILD_DIR/tests/test_dp"
# The rp_serve protocol parser chews hostile wire input; run its suite (which
# includes the garbage-slinging tests) with memory checking on.
echo "== ASan/UBSan: test_serve =="
"$ASAN_BUILD_DIR/tests/test_serve"
echo "== ASan/UBSan: rp_fuzz_bookshelf ($FUZZ_SEEDS seeds) =="
python3 scripts/fuzz_smoke.py "$ASAN_BUILD_DIR/src/core/rp_fuzz_bookshelf" \
  --seeds "$FUZZ_SEEDS"
echo "sanitizer_check: OK (TSan kernels clean, ASan/UBSan fuzz clean)"
