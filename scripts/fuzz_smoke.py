#!/usr/bin/env python3
"""Fuzz-smoke gate for the Bookshelf parser.

Runs the deterministic rp_fuzz_bookshelf harness with fixed seeds and
verifies the robustness contract:
  * the harness exits 0 — every mutated input was either accepted or
    rejected with a structured rp::Error; no crash, no unstructured
    exception escaped (build with -DRP_SANITIZE=address,undefined to also
    catch memory errors; see scripts/tsan_check.sh);
  * every seed produced a verdict (accepted + rejected == seeds x 2 modes);
  * the run is byte-deterministic: a second run with the same seeds in a
    fresh directory prints the identical summary.

Usage: fuzz_smoke.py /path/to/rp_fuzz_bookshelf [--seeds N] [--seed-base S]
Exit code 0 on success.
"""

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []


def check(cond, what):
    if not cond:
        FAILURES.append(what)
    return cond


def run_harness(binary, workdir, seeds, seed_base):
    cmd = [str(binary), "--seeds", str(seeds), "--seed-base", str(seed_base),
           "--dir", str(workdir)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=540)
    check(proc.returncode == 0,
          f"rp_fuzz_bookshelf exited {proc.returncode}:\n"
          f"{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}")
    return proc.stdout.strip()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("binary", type=Path)
    ap.add_argument("--seeds", type=int, default=500)
    ap.add_argument("--seed-base", type=int, default=1)
    args = ap.parse_args()
    if not args.binary.exists():
        print(f"fuzz_smoke: binary '{args.binary}' not found")
        return 2

    with tempfile.TemporaryDirectory(prefix="rp_fuzz_smoke_") as tmp:
        tmp = Path(tmp)
        out1 = run_harness(args.binary, tmp / "run1", args.seeds,
                           args.seed_base)
        if FAILURES:
            print("fuzz_smoke: FAILED")
            for f in FAILURES:
                print(f"  - {f}")
            return 1

        m = re.search(
            r"(\d+) seed\(s\) x 2 modes — (\d+) accepted, (\d+) rejected.*"
            r"(\d+) bug", out1)
        if check(m is not None, f"unparseable summary line: '{out1}'"):
            seeds, accepted, rejected, bugs = (int(g) for g in m.groups())
            check(seeds == args.seeds, f"ran {seeds} seeds, asked {args.seeds}")
            check(accepted + rejected == 2 * args.seeds,
                  f"verdicts {accepted}+{rejected} != {2 * args.seeds} "
                  "(a parse neither returned nor threw)")
            check(rejected > 0,
                  "no mutant was ever rejected — the mutator is a no-op")
            check(bugs == 0, f"{bugs} fuzz bug(s) reported")

        # Determinism: same seeds, fresh directory, identical verdicts.
        out2 = run_harness(args.binary, tmp / "run2", args.seeds,
                           args.seed_base)
        check(out1 == out2,
              f"fuzz run not deterministic:\n  run1: {out1}\n  run2: {out2}")

    if FAILURES:
        print("fuzz_smoke: FAILED")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print(f"fuzz_smoke: OK ({args.seeds} seeds x 2 modes, deterministic, "
          "no crashes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
