#!/usr/bin/env python3
"""End-to-end smoke test of the spatial-observability toolchain.

1. Runs the flow on a small generated design with --snapshot-dir and
   --report-json.
2. Renders the HTML dashboard with scripts/render_report.py and sanity-checks
   its content (embedded heatmaps, convergence section).
3. Runs rp_report_diff on the report/snapshots against themselves and demands
   a zero-diff, zero-exit result.
4. Injects a metric regression into a copy of the report and demands
   rp_report_diff exits non-zero.

Usage: snapshot_smoke.py <routplace> <rp_report_diff> <render_report.py>
Exit code 0 on success.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []


def check(cond, what):
    if not cond:
        FAILURES.append(what)
    return cond


def run(cmd, what, timeout=280):
    proc = subprocess.run([str(c) for c in cmd], capture_output=True, text=True,
                          timeout=timeout)
    return proc if check(proc.returncode == 0,
                         f"{what} exited {proc.returncode}:\n{proc.stderr[-2000:]}") \
        else None


def main():
    if len(sys.argv) != 4:
        print(__doc__)
        return 2
    routplace, report_diff, render = map(Path, sys.argv[1:4])
    for p in (routplace, report_diff, render):
        if not p.exists():
            print(f"snapshot_smoke: '{p}' not found")
            return 2

    with tempfile.TemporaryDirectory(prefix="rp_snapshot_smoke_") as tmp:
        tmp = Path(tmp)
        report = tmp / "run.report.json"
        snap = tmp / "snapshots"
        if run([routplace, "--gen", "500", "--seed", "3", "--rounds", "2",
                "--out", tmp / "out.pl", "--report-json", report,
                "--snapshot-dir", snap], "routplace") is None:
            print("\n".join(FAILURES))
            return 1
        check(report.exists(), "report not written")
        check((snap / "manifest.json").exists(), "snapshot manifest not written")
        check((snap / "convergence.json").exists(), "convergence history not written")

        # Render the dashboard and check it actually embeds the artifacts.
        html_out = tmp / "run.html"
        if run([sys.executable, render, report, "--snapshots", snap,
                "-o", html_out], "render_report.py") is not None:
            text = html_out.read_text() if html_out.exists() else ""
            check("<html" in text, "dashboard: not HTML")
            check(text.count("data:image/png") >= 5,
                  "dashboard: fewer than 5 embedded heatmaps")
            check("Convergence" in text, "dashboard: no convergence section")
            check("Stage times" in text, "dashboard: no stage-time section")

        # Self-diff must be exactly clean.
        proc = subprocess.run(
            [str(report_diff), str(report), str(report),
             "--snapshots", str(snap), str(snap)],
            capture_output=True, text=True, timeout=120)
        check(proc.returncode == 0,
              f"self-diff exited {proc.returncode}:\n{proc.stdout[-2000:]}")
        check("identical" in proc.stdout, "self-diff did not report 'identical'")

        # An injected regression must be caught with a non-zero exit.
        doc = json.loads(report.read_text())
        doc["eval"]["hpwl"] *= 1.10
        doc["eval"]["congestion"]["rc"] += 5.0
        bad = tmp / "regressed.report.json"
        bad.write_text(json.dumps(doc))
        proc = subprocess.run([str(report_diff), str(report), str(bad)],
                              capture_output=True, text=True, timeout=120)
        check(proc.returncode == 1,
              f"regression diff exited {proc.returncode} (want 1)")
        check("eval.hpwl" in proc.stdout, "regression diff did not name eval.hpwl")
        # ... and must be silenced by an adequate tolerance.
        proc = subprocess.run([str(report_diff), str(report), str(bad),
                               "--rel-tol", "0.2", "--abs-tol", "10"],
                              capture_output=True, text=True, timeout=120)
        check(proc.returncode == 0,
              f"tolerant diff exited {proc.returncode} (want 0)")

    if FAILURES:
        print("snapshot_smoke: FAILED")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("snapshot_smoke: OK (capture -> render -> self-diff -> regression gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
