#!/usr/bin/env python3
"""Render a routplace run report (+ optional snapshot dir) as a single
self-contained HTML dashboard: headline metrics, the stage-time tree,
convergence curves, a heatmap gallery, and — for --profile runs — a
Profile page with per-region latency histograms and per-worker busy/wait
utilization bars.

Stdlib only — heatmaps are decoded from the binary .grid files and embedded
as data-URI PNGs written by a minimal zlib-based encoder, convergence curves
are inline SVG.

With --progress <run.ndjson> (the stream written by --progress-ndjson) a
Timeline page is added: per-stage Gantt bars computed from the
stage_begin/stage_end event pairs, and per-iteration HPWL/overflow
convergence curves rebuilt from the gp_iter events — the same picture a
live `tail -f` reader sees, rendered after the fact.

Usage: render_report.py report.json [--snapshots DIR] [--progress NDJSON]
                                    [-o out.html]

With --campaign <dir> (an rp_sweep output directory holding campaign.json)
the tool renders a COMPARATIVE dashboard over every run in the campaign
instead: per-grid-cell quality/runtime/RSS distributions (five-number box
plots over seeds), seed-variance tables, an HPWL-vs-overflow pareto
scatter, the failure matrix (cell x seed status grid — failed runs carry
their exit code and error block), and per-run RSS timelines from the
resource sampler. Alongside the HTML it writes two machine-readable
artifacts into the campaign directory:

  campaign_summary.json   deterministic per-cell aggregate document
  campaign_trend.jsonl    one {"schema": "campaign_cell", ...} row per cell
                          with median quality/runtime — the hook that lets
                          bench_trend.py aggregate + gate campaign medians

Usage: render_report.py --campaign <dir> [-o out.html]
"""

import argparse
import base64
import html
import json
import math
import struct
import sys
import zlib
from pathlib import Path

# Heat ramp — keep in sync with heat_color() in src/util/heatmap.cpp.
RAMP = [(20, 24, 82), (0, 130, 200), (10, 180, 110), (245, 205, 45), (225, 35, 35)]


def heat_color(t):
    if not math.isfinite(t):
        t = 1.0
    t = min(1.0, max(0.0, t))
    s = t * 4.0
    i = min(3, int(s))
    f = s - i
    return tuple(round(RAMP[i][c] + f * (RAMP[i + 1][c] - RAMP[i][c])) for c in range(3))


def read_grid(path):
    """Parse an RPG1 binary grid -> (nx, ny, row-major values)."""
    raw = Path(path).read_bytes()
    if raw[:4] != b"RPG1":
        raise ValueError(f"{path}: bad magic")
    nx, ny = struct.unpack_from("<II", raw, 4)
    vals = struct.unpack_from(f"<{nx * ny}d", raw, 12)
    return nx, ny, vals


def png_encode(width, height, rows):
    """Minimal PNG: 8-bit RGB, no filtering. rows = list of RGB byte rows."""
    def chunk(tag, data):
        body = tag + data
        return struct.pack(">I", len(data)) + body + struct.pack(">I", zlib.crc32(body))

    raw = b"".join(b"\x00" + r for r in rows)
    return (b"\x89PNG\r\n\x1a\n"
            + chunk(b"IHDR", struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0))
            + chunk(b"IDAT", zlib.compress(raw, 9))
            + chunk(b"IEND", b""))


def grid_png_datauri(nx, ny, vals, lo=None, hi=None):
    finite = [v for v in vals if math.isfinite(v)]
    if lo is None:
        lo = min(finite) if finite else 0.0
    if hi is None:
        hi = max(finite) if finite else 1.0
    if hi <= lo:
        hi = lo + 1.0
    rows = []
    for iy in range(ny - 1, -1, -1):  # top row = highest y (die orientation)
        row = bytearray()
        for ix in range(nx):
            row += bytes(heat_color((vals[iy * nx + ix] - lo) / (hi - lo)))
        rows.append(bytes(row))
    png = png_encode(nx, ny, rows)
    return "data:image/png;base64," + base64.b64encode(png).decode()


def svg_polyline(series, width=460, height=150, color="#1565c0", log_y=False):
    """One series as an SVG line chart with min/max labels."""
    if not series:
        return "<svg/>"
    vals = [math.log10(max(v, 1e-300)) if log_y else v for v in series]
    vlo, vhi = min(vals), max(vals)
    if vhi <= vlo:
        vhi = vlo + 1.0
    pad = 6
    pts = []
    for i, v in enumerate(vals):
        x = pad + (width - 2 * pad) * (i / max(1, len(vals) - 1))
        y = height - pad - (height - 2 * pad) * ((v - vlo) / (vhi - vlo))
        pts.append(f"{x:.1f},{y:.1f}")
    lab_hi = f"{10 ** vhi:.3g}" if log_y else f"{vhi:.3g}"
    lab_lo = f"{10 ** vlo:.3g}" if log_y else f"{vlo:.3g}"
    return (f'<svg width="{width}" height="{height}" class="chart">'
            f'<rect width="{width}" height="{height}" class="chartbg"/>'
            f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
            f'points="{" ".join(pts)}"/>'
            f'<text x="{pad}" y="12" class="lab">{lab_hi}</text>'
            f'<text x="{pad}" y="{height - 2}" class="lab">{lab_lo}</text></svg>')


def stage_tree_html(stage_times, total):
    items = []
    for name, sec in stage_times.items():
        depth = name.count("/")
        pct = 100.0 * sec / total if total > 0 else 0.0
        bar = max(0.5, pct)
        items.append(
            f'<div class="stage" style="margin-left:{depth * 18}px">'
            f'<span class="stagename">{html.escape(name.split("/")[-1])}</span>'
            f'<span class="bar" style="width:{bar:.1f}%"></span>'
            f'<span class="stagesec">{sec:.3f}s ({pct:.1f}%)</span></div>')
    return "\n".join(items)


def metric_cards(report):
    ev = report.get("eval", {})
    cong = ev.get("congestion", {})
    gp = report.get("gp", {})
    cards = [
        ("HPWL", f"{ev.get('hpwl', 0):.4e}"),
        ("scaled HPWL", f"{ev.get('scaled_hpwl', 0):.4e}"),
        ("RC", f"{cong.get('rc', 0):.1f}"),
        ("overflow", f"{cong.get('total_overflow', 0):.0f} tracks"),
        ("peak util", f"{cong.get('peak_utilization', 0):.2f}"),
        ("legal", "yes" if ev.get("legality", {}).get("ok") else "NO"),
        ("GP iters", f"{gp.get('total_outer', 0)}"),
        ("inflation", f"{gp.get('mean_inflation', 1):.3f}x"),
    ]
    out = []
    for label, value in cards:
        bad = label == "legal" and value == "NO"
        out.append(f'<div class="card{" bad" if bad else ""}">'
                   f'<div class="cardval">{html.escape(value)}</div>'
                   f'<div class="cardlab">{html.escape(label)}</div></div>')
    return "\n".join(out)


def fmt_us(us):
    """Human-scale latency: ns under 1 us, ms above 1000 us."""
    if us < 1.0:
        return f"{us * 1000:.0f}ns"
    if us < 1000.0:
        return f"{us:.1f}us"
    return f"{us / 1000:.2f}ms"


def histogram_rows_html(hist):
    """Bucket table for one latency histogram (sparse buckets as emitted)."""
    buckets = hist.get("buckets", [])
    if not buckets:
        return ""
    peak = max(b["count"] for b in buckets)
    rows = ['<table class="kv hist"><tr><td>bucket</td><td>count</td><td></td></tr>']
    for b in buckets:
        width = 100.0 * b["count"] / peak if peak else 0.0
        rows.append(
            f'<tr><td>{fmt_us(b["lo_us"])} – {fmt_us(b["hi_us"])}</td>'
            f'<td>{b["count"]}</td>'
            f'<td class="histcell"><span class="bar" '
            f'style="width:{max(1.0, width):.1f}px"></span></td></tr>')
    rows.append("</table>")
    return "\n".join(rows)


def profile_html(profile):
    """The 'Profile' page: per-worker utilization bars + region histograms."""
    parts = []
    pool = profile.get("pool", {})
    workers = pool.get("workers", [])
    if workers:
        parts.append(
            f'<div class="meta">{pool.get("threads", len(workers))} threads · '
            f'{pool.get("regions", 0)} pool regions · '
            f'efficiency {pool.get("efficiency_mean", 0):.2f} mean / '
            f'{pool.get("efficiency_min", 0):.2f} min · '
            f'imbalance max {pool.get("imbalance_max", 0):.2f}</div>')
        parts.append("<h3>Worker utilization (busy vs wait)</h3>")
        span = max((w["busy_ms"] + w["wait_ms"] for w in workers), default=0.0)
        for i, w in enumerate(workers):
            busy, wait = w.get("busy_ms", 0.0), w.get("wait_ms", 0.0)
            bw = 320.0 * busy / span if span > 0 else 0.0
            ww = 320.0 * wait / span if span > 0 else 0.0
            label = "main (worker-0)" if i == 0 else f"worker-{i}"
            parts.append(
                f'<div class="stage"><span class="stagename">{label}</span>'
                f'<span class="bar busy" style="width:{bw:.1f}px"></span>'
                f'<span class="bar wait" style="width:{ww:.1f}px"></span>'
                f'<span class="stagesec">busy {busy:.1f}ms · wait {wait:.1f}ms · '
                f'{w.get("chunks", 0)} chunks</span></div>')
        chunk = pool.get("chunk", {})
        if chunk.get("samples"):
            parts.append(
                f'<details><summary>Pool chunk latency '
                f'({chunk["samples"]} chunks, p50 {fmt_us(chunk.get("p50_us", 0))}, '
                f'p99 {fmt_us(chunk.get("p99_us", 0))})</summary>'
                + histogram_rows_html(chunk) + "</details>")

    regions = profile.get("regions", {})
    if regions:
        parts.append("<h3>Region latency histograms</h3>")
        parts.append('<table class="kv"><tr><td>region</td><td>samples</td>'
                     "<td>total</td><td>mean</td><td>p50</td><td>p95</td>"
                     "<td>p99</td><td>max</td></tr>")
        for name, h in regions.items():
            parts.append(
                f"<tr><td>{html.escape(name)}</td><td>{h['samples']}</td>"
                f"<td>{h['total_ms']:.1f}ms</td><td>{fmt_us(h['mean_us'])}</td>"
                f"<td>{fmt_us(h['p50_us'])}</td><td>{fmt_us(h['p95_us'])}</td>"
                f"<td>{fmt_us(h['p99_us'])}</td><td>{fmt_us(h['max_us'])}</td></tr>")
        parts.append("</table>")
        for name, h in regions.items():
            if h.get("buckets"):
                parts.append(f"<details><summary>{html.escape(name)}</summary>"
                             + histogram_rows_html(h) + "</details>")
    return "\n".join(parts)


STAGE_COLORS = ["#4a90d9", "#2e7d32", "#c62828", "#8e6bbf", "#d98b2b", "#2b9fa8"]


def load_progress(path):
    """Parse an --progress-ndjson stream; skips lines that fail to parse
    (a live-tailed file may end mid-write)."""
    events = []
    for raw in Path(path).read_text().splitlines():
        try:
            ev = json.loads(raw)
        except json.JSONDecodeError:
            continue
        if isinstance(ev, dict) and ev.get("schema") == "rp_progress":
            events.append(ev)
    return events


def timeline_html(events):
    """The 'Timeline' page: stage Gantt + event-stream convergence curves."""
    if not events:
        return "<div class='meta'>progress stream is empty</div>"
    t0 = events[0]["t_ms"]
    t1 = max(e["t_ms"] for e in events)
    span = max(t1 - t0, 1e-9)
    parts = []

    # Stage Gantt: pair each stage_begin with the next stage_end of the same
    # name (stages run sequentially on the flow thread; an error unwind may
    # leave the last one open — draw it to the end of the stream).
    open_stages, bars = {}, []
    for ev in events:
        if ev["event"] == "stage_begin":
            open_stages[ev.get("stage")] = ev["t_ms"]
        elif ev["event"] == "stage_end" and ev.get("stage") in open_stages:
            bars.append((ev["stage"], open_stages.pop(ev["stage"]), ev["t_ms"], True))
    for name, begin in open_stages.items():
        bars.append((name, begin, t1, False))
    bars.sort(key=lambda b: b[1])
    if bars:
        parts.append("<h3>Stage Gantt</h3>")
        parts.append(f"<div class='meta'>{span:.1f} ms from first to last "
                     "event; unclosed stages (error unwind) hatched</div>")
        for i, (name, begin, end, closed) in enumerate(bars):
            left = 100.0 * (begin - t0) / span
            width = max(0.4, 100.0 * (end - begin) / span)
            color = STAGE_COLORS[i % len(STAGE_COLORS)]
            style = f"margin-left:{left:.2f}%;width:{width:.2f}%;background:{color}"
            if not closed:
                style += ";opacity:0.45"
            parts.append(
                f'<div class="stage"><span class="stagename">{html.escape(str(name))}'
                f'{"" if closed else " (open)"}</span>'
                f'<span class="gantt"><span class="bar" style="{style}"></span></span>'
                f'<span class="stagesec">{end - begin:.1f} ms</span></div>')

    # Convergence, rebuilt from the stream alone (no report needed): the
    # gp_iter payload mirrors the report's gp_trace.
    iters = [e for e in events if e["event"] == "gp_iter"]
    if iters:
        parts.append("<h3>Convergence (from the event stream)</h3>")
        parts.append(f"<div>{len(iters)} GP outer iterations — HPWL (log) "
                     "and density overflow:</div>")
        parts.append(svg_polyline([e["hpwl"] for e in iters], log_y=True))
        parts.append(svg_polyline([e["overflow"] for e in iters], color="#c62828"))

    rounds = [e for e in events if e["event"] == "route_round"]
    if rounds:
        parts.append("<h3>Routability rounds</h3><table class='kv'><tr>"
                     "<td>round</td><td>RC</td><td>overflow</td>"
                     "<td>cells inflated</td><td>mean infl</td></tr>")
        for r in rounds:
            parts.append(
                f"<tr><td>{r['round']}</td><td>{r['rc']:.1f}</td>"
                f"<td>{r['overflow']:.0f}</td><td>{r['cells_inflated']}</td>"
                f"<td>{r['mean_inflation']:.3f}</td></tr>")
        parts.append("</table>")

    incidents = [e for e in events
                 if e["event"] in ("watchdog", "guard", "parse_repair", "error")]
    if incidents:
        parts.append("<h3>Incidents</h3><table class='kv'>"
                     "<tr><td>t_ms</td><td>event</td><td>detail</td></tr>")
        for e in incidents:
            detail = {k: v for k, v in e.items()
                      if k not in ("schema", "v", "seq", "t_ms", "event")}
            parts.append(f"<tr><td>{e['t_ms']:.1f}</td>"
                         f"<td>{html.escape(e['event'])}</td>"
                         f"<td>{html.escape(json.dumps(detail))}</td></tr>")
        parts.append("</table>")
    return "\n".join(parts)


def gallery_html(snap_dir):
    manifest = json.loads((snap_dir / "manifest.json").read_text())
    by_stage = {}
    for m in manifest.get("maps", []):
        by_stage.setdefault(m["stage"], []).append(m)
    out = []
    for stage, maps in by_stage.items():
        out.append(f'<h3>{html.escape(stage)}</h3><div class="gallery">')
        for m in maps:
            try:
                nx, ny, vals = read_grid(snap_dir / m["grid"])
                uri = grid_png_datauri(nx, ny, vals)
            except (OSError, ValueError) as e:
                out.append(f'<div class="mapcell">unreadable: {html.escape(str(e))}</div>')
                continue
            out.append(
                f'<figure class="mapcell"><img src="{uri}" width="{min(220, nx * 8)}" '
                f'alt="{html.escape(m["name"])}"/>'
                f'<figcaption>{html.escape(m["name"])}<br/>'
                f'<span class="range">[{m.get("min", 0):.3g}, {m.get("max", 0):.3g}]'
                f'</span></figcaption></figure>')
        out.append("</div>")
    return "\n".join(out), manifest


# ------------------------------------------------------------------ campaign

CAMPAIGN_METRICS = [
    # key, label, report extractor, lower-is-better
    ("hpwl", "HPWL", lambda r: r.get("eval", {}).get("hpwl")),
    ("scaled_hpwl", "scaled HPWL", lambda r: r.get("eval", {}).get("scaled_hpwl")),
    ("rc", "RC", lambda r: r.get("eval", {}).get("congestion", {}).get("rc")),
    ("overflow", "overflow",
     lambda r: r.get("eval", {}).get("congestion", {}).get("total_overflow")),
    ("runtime_sec", "runtime (s)", lambda r: r.get("stage_total_sec")),
    ("peak_rss_kb", "peak RSS (kB)", lambda r: r.get("peak_rss_kb")),
]


def percentile(sorted_vals, q):
    """Linear-interpolation percentile over an already-sorted list."""
    if not sorted_vals:
        return None
    if len(sorted_vals) == 1:
        return sorted_vals[0]
    pos = q * (len(sorted_vals) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(sorted_vals) - 1)
    frac = pos - lo
    return sorted_vals[lo] * (1.0 - frac) + sorted_vals[hi] * frac


def five_number(vals):
    s = sorted(vals)
    return {"min": s[0], "p25": percentile(s, 0.25), "median": percentile(s, 0.5),
            "p75": percentile(s, 0.75), "max": s[-1], "n": len(s)}


def load_campaign(campaign_dir):
    """Read campaign.json + every run's report.json (tolerating missing /
    truncated reports from failed runs). Returns (manifest, runs) where each
    run dict gains a "report" key (dict or None)."""
    manifest = json.loads((campaign_dir / "campaign.json").read_text())
    runs = []
    for run in manifest.get("runs", []):
        report = None
        report_path = campaign_dir / run.get("dir", "") / "report.json"
        if report_path.exists():
            try:
                report = json.loads(report_path.read_text())
            except (OSError, json.JSONDecodeError):
                report = None
        runs.append(dict(run, report=report))
    return manifest, runs


def campaign_cells(runs):
    """Group runs by grid cell, preserving manifest (grid) order."""
    cells = {}
    for run in runs:
        cells.setdefault(run["cell"], []).append(run)
    return cells


def cell_stats(cell_runs):
    """Five-number stats per metric over the cell's OK runs."""
    stats = {}
    ok = [r for r in cell_runs if r.get("status") == "ok" and r["report"]]
    for key, _label, extract in CAMPAIGN_METRICS:
        vals = [v for v in (extract(r["report"]) for r in ok)
                if isinstance(v, (int, float)) and math.isfinite(v)]
        if vals:
            stats[key] = five_number(vals)
    return stats


def campaign_summary_doc(manifest, runs):
    """The deterministic aggregate document (campaign_summary.json).
    Volatile metrics (runtime, RSS) are aggregated like the rest — the
    sweep_smoke gate scrubs them before comparing two invocations."""
    cells = campaign_cells(runs)
    cell_docs = []
    for cell, cell_runs in cells.items():
        cell_docs.append({
            "cell": cell,
            "config": dict(cell_runs[0].get("config", [])) if isinstance(
                cell_runs[0].get("config"), list) else cell_runs[0].get("config", {}),
            "seeds": [r["seed"] for r in cell_runs],
            "ok": sum(1 for r in cell_runs if r.get("status") == "ok"),
            "failed": sum(1 for r in cell_runs if r.get("status") != "ok"),
            "metrics": cell_stats(cell_runs),
        })
    failures = [{
        "id": r["id"], "cell": r["cell"], "seed": r["seed"],
        "exit_code": r.get("exit_code"), "status": r.get("status"),
        **({"error": r["error"]} if r.get("error") else {}),
    } for r in runs if r.get("status") != "ok"]
    return {
        "schema": "rp_campaign_summary",
        "version": 1,
        "name": manifest.get("name", "campaign"),
        "total": len(runs),
        "ok": sum(1 for r in runs if r.get("status") == "ok"),
        "failed": len(failures),
        "cells": cell_docs,
        "failures": failures,
    }


def campaign_trend_rows(summary):
    """campaign_cell JSONL rows — the bench_trend.py aggregation hook. Only
    cells with at least one OK run are emitted (a failed cell has no
    medians to gate)."""
    rows = []
    for cell in summary["cells"]:
        m = cell["metrics"]
        if not m:
            continue
        row = {"schema": "campaign_cell", "v": 1, "cell": cell["cell"],
               "n": cell["ok"]}
        for src, dst in (("hpwl", "hpwl_median"), ("rc", "rc_median"),
                         ("overflow", "overflow_median"),
                         ("runtime_sec", "runtime_median_sec")):
            if src in m:
                row[dst] = m[src]["median"]
        rows.append(row)
    return rows


def svg_box(stats, lo, hi, width=220, height=18):
    """One horizontal five-number box plot on a shared [lo, hi] scale."""
    span = hi - lo if hi > lo else 1.0
    x = lambda v: 4 + (width - 8) * (v - lo) / span
    mid = height / 2
    parts = [f'<svg width="{width}" height="{height}" class="box">']
    parts.append(f'<line x1="{x(stats["min"]):.1f}" y1="{mid}" '
                 f'x2="{x(stats["max"]):.1f}" y2="{mid}" class="whisker"/>')
    bx, bw = x(stats["p25"]), max(1.0, x(stats["p75"]) - x(stats["p25"]))
    parts.append(f'<rect x="{bx:.1f}" y="2" width="{bw:.1f}" '
                 f'height="{height - 4}" class="iqr"/>')
    mx = x(stats["median"])
    parts.append(f'<line x1="{mx:.1f}" y1="1" x2="{mx:.1f}" '
                 f'y2="{height - 1}" class="median"/>')
    parts.append("</svg>")
    return "".join(parts)


def campaign_distributions_html(cells):
    """Per-metric section: one box plot per cell on a shared scale."""
    parts = []
    for key, label, _extract in CAMPAIGN_METRICS:
        rows = [(cell, stats[key]) for cell, stats in cells.items() if key in stats]
        if not rows:
            continue
        lo = min(s["min"] for _, s in rows)
        hi = max(s["max"] for _, s in rows)
        parts.append(f"<h3>{html.escape(label)}</h3>")
        parts.append('<table class="kv"><tr><td>cell</td><td>distribution</td>'
                     "<td>min</td><td>median</td><td>max</td><td>spread</td></tr>")
        for cell, s in rows:
            spread = (s["max"] - s["min"]) / s["median"] if s["median"] else 0.0
            parts.append(
                f"<tr><td>{html.escape(cell)}</td>"
                f'<td>{svg_box(s, lo, hi)}</td>'
                f"<td>{s['min']:.4g}</td><td>{s['median']:.4g}</td>"
                f"<td>{s['max']:.4g}</td><td>{100 * spread:.2f}%</td></tr>")
        parts.append("</table>")
    return "\n".join(parts)


def campaign_failure_matrix_html(manifest, runs):
    """Cell x seed status grid; every failed run shows exit code + error."""
    seeds = manifest.get("seeds", sorted({r["seed"] for r in runs}))
    cells = campaign_cells(runs)
    by_key = {(r["cell"], r["seed"]): r for r in runs}
    parts = ['<table class="kv"><tr><td>cell \\ seed</td>']
    parts += [f"<td>s{s}</td>" for s in seeds]
    parts.append("</tr>")
    for cell in cells:
        parts.append(f"<tr><td>{html.escape(cell)}</td>")
        for s in seeds:
            r = by_key.get((cell, s))
            if r is None:
                parts.append("<td>—</td>")
            elif r.get("status") == "ok":
                parts.append('<td class="ok">ok</td>')
            else:
                parts.append(f'<td class="fail">{html.escape(r.get("status", "?"))} '
                             f'(exit {r.get("exit_code")})</td>')
        parts.append("</tr>")
    parts.append("</table>")
    failed = [r for r in runs if r.get("status") != "ok"]
    if failed:
        parts.append("<h3>Failure detail</h3><table class='kv'>"
                     "<tr><td>run</td><td>exit</td><td>error</td></tr>")
        for r in failed:
            err = r.get("error") or {}
            detail = (f"{err.get('code', '?')}: {err.get('message', '')} "
                      f"[{err.get('where', '')}]" if err else
                      "(no error block — see stderr.log / flight.json)")
            parts.append(f"<tr><td>{html.escape(r['id'])}</td>"
                         f"<td>{r.get('exit_code')}</td>"
                         f"<td>{html.escape(detail)}</td></tr>")
        parts.append("</table>")
    return "\n".join(parts)


def campaign_pareto_html(cells, width=520, height=320):
    """HPWL (x) vs routed overflow (y) scatter, one point per OK run,
    colored per grid cell — the quality-vs-routability trade-off at a
    glance."""
    points = []  # (cell_index, cell, hpwl, overflow, seed)
    for ci, (cell, cell_runs) in enumerate(cells.items()):
        for r in cell_runs:
            if r.get("status") != "ok" or not r["report"]:
                continue
            ev = r["report"].get("eval", {})
            h = ev.get("hpwl")
            o = ev.get("congestion", {}).get("total_overflow")
            if isinstance(h, (int, float)) and isinstance(o, (int, float)):
                points.append((ci, cell, h, o, r["seed"]))
    if not points:
        return "<div class='meta'>no successful runs to plot</div>"
    hlo, hhi = min(p[2] for p in points), max(p[2] for p in points)
    olo, ohi = min(p[3] for p in points), max(p[3] for p in points)
    hspan = hhi - hlo if hhi > hlo else 1.0
    ospan = ohi - olo if ohi > olo else 1.0
    pad = 34
    parts = [f'<svg width="{width}" height="{height}" class="chart">'
             f'<rect width="{width}" height="{height}" class="chartbg"/>']
    for ci, cell, h, o, seed in points:
        x = pad + (width - pad - 10) * (h - hlo) / hspan
        y = height - pad - (height - pad - 10) * (o - olo) / ospan
        color = STAGE_COLORS[ci % len(STAGE_COLORS)]
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}" '
                     f'fill-opacity="0.75"><title>'
                     f'{html.escape(cell)} s{seed}: HPWL {h:.4g}, '
                     f'overflow {o:.0f}</title></circle>')
    parts.append(f'<text x="{pad}" y="{height - 6}" class="lab">'
                 f'HPWL {hlo:.3g} … {hhi:.3g} →</text>')
    parts.append(f'<text x="4" y="14" class="lab">overflow {ohi:.3g} ↑ '
                 f'… {olo:.3g}</text>')
    parts.append("</svg>")
    legend = "".join(
        f'<span class="legend"><span class="dot" style="background:'
        f'{STAGE_COLORS[ci % len(STAGE_COLORS)]}"></span>{html.escape(cell)}</span>'
        for ci, cell in enumerate(cells))
    return "".join(parts) + f"<div class='meta'>{legend}</div>"


def campaign_resources_html(cells, width=520, height=180):
    """Per-run RSS timelines from the report "resources" blocks, colored per
    cell — the memory envelope of the whole campaign in one chart."""
    series = []  # (cell_index, cell, seed, [(t_ms, rss_kb)])
    for ci, (cell, cell_runs) in enumerate(cells.items()):
        for r in cell_runs:
            res = (r["report"] or {}).get("resources")
            if not res or not res.get("samples"):
                continue
            pts = [(s["t_ms"], s["rss_kb"]) for s in res["samples"]]
            series.append((ci, cell, r["seed"], pts))
    if not series:
        return ("<div class='meta'>no resource timelines (runs predate the "
                "sampler or ran with --sample-resources 0)</div>")
    tmax = max(p[0] for _, _, _, pts in series for p in pts) or 1.0
    rmax = max(p[1] for _, _, _, pts in series for p in pts) or 1.0
    pad = 6
    parts = [f'<svg width="{width}" height="{height}" class="chart">'
             f'<rect width="{width}" height="{height}" class="chartbg"/>']
    for ci, cell, seed, pts in series:
        color = STAGE_COLORS[ci % len(STAGE_COLORS)]
        svg_pts = " ".join(
            f"{pad + (width - 2 * pad) * t / tmax:.1f},"
            f"{height - pad - (height - 2 * pad) * r / rmax:.1f}"
            for t, r in pts)
        parts.append(f'<polyline fill="none" stroke="{color}" '
                     f'stroke-width="1.2" stroke-opacity="0.7" '
                     f'points="{svg_pts}"><title>{html.escape(cell)} s{seed}'
                     f'</title></polyline>')
    parts.append(f'<text x="{pad}" y="14" class="lab">peak {rmax:.0f} kB</text>')
    parts.append(f'<text x="{pad}" y="{height - 2}" class="lab">'
                 f'0 … {tmax:.0f} ms</text>')
    parts.append("</svg>")
    return "".join(parts)


def render_campaign(campaign_dir, out_path):
    manifest, runs = load_campaign(campaign_dir)
    cells = campaign_cells(runs)
    summary = campaign_summary_doc(manifest, runs)

    name = summary["name"]
    parts = [f"<!DOCTYPE html><html><head><meta charset='utf-8'>"
             f"<title>campaign: {html.escape(name)}</title>"
             f"<style>{CSS}</style></head><body>"]
    parts.append(f"<h1>campaign: {html.escape(name)}</h1>")
    axes = manifest.get("axes", [])
    axis_desc = " × ".join(
        f"{a['flag']}[{len(a.get('labels', []))}]" for a in axes) or "single cell"
    parts.append(f'<div class="meta">{summary["total"]} runs · '
                 f'{len(cells)} grid cells ({html.escape(axis_desc)}) · '
                 f'{len(manifest.get("seeds", []))} seeds · '
                 f'{summary["ok"]} ok / {summary["failed"]} failed</div>')
    parts.append('<div class="cards">')
    for label, value, bad in (
            ("runs", str(summary["total"]), False),
            ("ok", str(summary["ok"]), False),
            ("failed", str(summary["failed"]), summary["failed"] > 0),
            ("cells", str(len(cells)), False),
            ("seeds", str(len(manifest.get("seeds", []))), False)):
        parts.append(f'<div class="card{" bad" if bad else ""}">'
                     f'<div class="cardval">{value}</div>'
                     f'<div class="cardlab">{label}</div></div>')
    parts.append("</div>")

    parts.append("<h2>Failure matrix</h2>")
    parts.append(campaign_failure_matrix_html(manifest, runs))
    parts.append("<h2>Quality / runtime / RSS distributions</h2>")
    parts.append("<div class='meta'>five-number box plots over seeds, "
                 "shared scale per metric; spread = (max−min)/median</div>")
    parts.append(campaign_distributions_html(cells))
    parts.append("<h2>Pareto: HPWL vs routed overflow</h2>")
    parts.append(campaign_pareto_html(cells))
    parts.append("<h2>Resource envelope (RSS timelines)</h2>")
    parts.append(campaign_resources_html(cells))
    parts.append("</body></html>")
    out_path.write_text("\n".join(parts))

    summary_path = campaign_dir / "campaign_summary.json"
    summary_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    trend_path = campaign_dir / "campaign_trend.jsonl"
    trend_path.write_text("".join(
        json.dumps(row, sort_keys=True) + "\n"
        for row in campaign_trend_rows(summary)))
    print(f"render_report: wrote {out_path}")
    print(f"render_report: wrote {summary_path}")
    print(f"render_report: wrote {trend_path}")
    return 0


CSS = """
body { font-family: system-ui, sans-serif; margin: 24px auto; max-width: 1060px;
       color: #1d2430; background: #fafbfc; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 1.6em;
  border-bottom: 1px solid #d8dee6; padding-bottom: 4px; }
h3 { font-size: 1em; margin: 1em 0 0.3em; }
.meta { color: #5a6572; font-size: 0.85em; }
.cards { display: flex; flex-wrap: wrap; gap: 10px; margin: 14px 0; }
.card { background: #fff; border: 1px solid #d8dee6; border-radius: 8px;
        padding: 10px 16px; min-width: 110px; }
.card.bad { background: #fde8e8; border-color: #d33; }
.cardval { font-size: 1.15em; font-weight: 600; }
.cardlab { color: #5a6572; font-size: 0.78em; margin-top: 2px; }
.stage { display: flex; align-items: center; gap: 8px; font-size: 0.85em;
         margin: 2px 0; }
.stagename { min-width: 110px; }
.bar { display: inline-block; height: 9px; background: #4a90d9;
       border-radius: 3px; }
.bar.busy { background: #2e7d32; border-radius: 3px 0 0 3px; }
.bar.wait { background: #d8dee6; border-radius: 0 3px 3px 0; }
.gantt { display: inline-block; width: 420px; background: #eef1f5;
         border: 1px solid #d8dee6; border-radius: 3px; }
table.hist td { border: none; padding: 1px 8px; }
.histcell { min-width: 110px; }
.stagesec { color: #5a6572; }
.chart { margin-right: 12px; } .chartbg { fill: #fff; stroke: #d8dee6; }
.lab { font-size: 10px; fill: #5a6572; }
.gallery { display: flex; flex-wrap: wrap; gap: 12px; }
.mapcell { margin: 0; font-size: 0.78em; text-align: center; }
.mapcell img { image-rendering: pixelated; border: 1px solid #d8dee6; }
.range { color: #5a6572; }
table.kv { border-collapse: collapse; font-size: 0.85em; }
table.kv td { border: 1px solid #d8dee6; padding: 3px 10px; }
details { margin: 10px 0; } summary { cursor: pointer; }
.box .whisker { stroke: #8a94a0; stroke-width: 1; }
.box .iqr { fill: #4a90d9; fill-opacity: 0.45; stroke: #1565c0; }
.box .median { stroke: #c62828; stroke-width: 2; }
td.ok { background: #e7f4e8; color: #2e7d32; text-align: center; }
td.fail { background: #fde8e8; color: #b71c1c; }
.legend { margin-right: 14px; white-space: nowrap; }
.dot { display: inline-block; width: 9px; height: 9px; border-radius: 5px;
       margin-right: 4px; }
"""


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", type=Path, nargs="?", default=None)
    ap.add_argument("--snapshots", type=Path, default=None,
                    help="snapshot directory (defaults to report's snapshot_dir)")
    ap.add_argument("--progress", type=Path, default=None,
                    help="--progress-ndjson stream for the Timeline page")
    ap.add_argument("--campaign", type=Path, default=None,
                    help="rp_sweep campaign directory: render the comparative "
                         "multi-run dashboard instead of a single report")
    ap.add_argument("-o", "--out", type=Path, default=None)
    args = ap.parse_args()

    if args.campaign is not None:
        if not (args.campaign / "campaign.json").exists():
            print(f"render_report: no campaign.json in {args.campaign}",
                  file=sys.stderr)
            return 2
        return render_campaign(args.campaign,
                               args.out or args.campaign / "campaign.html")
    if args.report is None:
        ap.error("either a report.json path or --campaign <dir> is required")

    report = json.loads(args.report.read_text())
    out_path = args.out or args.report.with_suffix(".html")

    snap_dir = args.snapshots
    if snap_dir is None and report.get("snapshot_dir"):
        cand = Path(report["snapshot_dir"])
        if not cand.is_absolute():
            cand = args.report.parent / cand
        if (cand / "manifest.json").exists():
            snap_dir = cand

    design = report.get("design", {})
    build = report.get("build", {})
    parts = [f"<!DOCTYPE html><html><head><meta charset='utf-8'>"
             f"<title>routplace: {html.escape(design.get('name', '?'))}</title>"
             f"<style>{CSS}</style></head><body>"]
    parts.append(f"<h1>routplace run: {html.escape(design.get('name', '?'))}</h1>")
    parts.append(
        f'<div class="meta">mode {html.escape(report.get("mode", "?"))} · '
        f'{design.get("cells", 0)} cells · {design.get("nets", 0)} nets · '
        f'{design.get("macros", 0)} macros · seed {design.get("seed", 0)} · '
        f'build {html.escape(str(build.get("git_describe", "?")))} '
        f'({html.escape(str(build.get("compiler", "?")))}, '
        f'{html.escape(str(build.get("build_type", "?")))})</div>')

    parts.append('<h2>Result</h2><div class="cards">' + metric_cards(report) + "</div>")

    # Convergence: prefer the snapshot history (has gamma + per-round ACE),
    # fall back to the report's gp_trace.
    points = None
    rounds = []
    if snap_dir is not None and (snap_dir / "convergence.json").exists():
        conv = json.loads((snap_dir / "convergence.json").read_text())
        points, rounds = conv.get("points", []), conv.get("rounds", [])
    elif report.get("gp_trace"):
        points = report["gp_trace"]
    if points:
        parts.append("<h2>Convergence</h2>")
        parts.append("<div>HPWL (log) and density overflow per GP outer iteration:</div>")
        parts.append(svg_polyline([p["hpwl"] for p in points], log_y=True))
        parts.append(svg_polyline([p["overflow"] for p in points], color="#c62828"))
    if rounds:
        parts.append("<h3>Routability rounds</h3><table class='kv'><tr>"
                     "<td>round</td><td>RC</td><td>ACE 0.5/1/2/5</td>"
                     "<td>overflow</td><td>cells inflated</td><td>mean infl</td></tr>")
        for r in rounds:
            parts.append(
                f"<tr><td>{r['round']}</td><td>{r['rc']:.1f}</td>"
                f"<td>{r['ace_005']:.1f}/{r['ace_1']:.1f}/{r['ace_2']:.1f}/"
                f"{r['ace_5']:.1f}</td><td>{r['total_overflow']:.0f}</td>"
                f"<td>{r['cells_inflated']}</td><td>{r['mean_inflation']:.3f}</td></tr>")
        parts.append("</table>")

    if args.progress is not None:
        parts.append("<h2>Timeline</h2>")
        parts.append(timeline_html(load_progress(args.progress)))

    st = report.get("stage_times", {})
    if st:
        parts.append("<h2>Stage times</h2>")
        parts.append(stage_tree_html(st, report.get("stage_total_sec", 0)))

    if report.get("profile"):
        parts.append("<h2>Profile</h2>")
        parts.append(profile_html(report["profile"]))

    if snap_dir is not None:
        parts.append("<h2>Heatmaps</h2>")
        gal, _ = gallery_html(snap_dir)
        parts.append(gal)

    counters = report.get("counters", {})
    if counters:
        parts.append("<details><summary>Counters &amp; gauges</summary>"
                     "<table class='kv'>")
        for k, v in list(counters.items()) + list(report.get("gauges", {}).items()):
            parts.append(f"<tr><td>{html.escape(k)}</td><td>{v}</td></tr>")
        parts.append("</table></details>")

    parts.append("</body></html>")
    out_path.write_text("\n".join(parts))
    print(f"render_report: wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
