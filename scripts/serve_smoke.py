#!/usr/bin/env python3
"""Placement-service smoke test (the serve_smoke ctest).

Boots a real `rp_serve` daemon on a unix socket and drives the wire
protocol end to end:

  * N=4 concurrent jobs (distinct configs, mixed thread budgets) all
    complete with status "ok", and every job's out.pl is BYTE-IDENTICAL —
    and its report.json identical after scrubbing the documented-volatile
    keys — to a sequential one-shot `routplace` run with the same flags;
  * a repeat submission of an earlier job reports cache_hit=true, returns
    the same artifacts, and its streamed live NDJSON progress (op "run"
    with "progress":true) matches the one-shot --progress-ndjson stream
    payload-for-payload once the volatile seq/t_ms stamps are dropped;
  * admission control: on a --jobs 1 --queue 2 server, the over-quota
    submission is a structured {"type":"reject","reason":"queue_full"} —
    never a hang or a dropped connection;
  * protocol robustness: malformed JSON, bad job objects and unknown job
    ids all get structured error responses on a connection that stays up;
  * shutdown drains cleanly: exit code 0, socket unlinked.

Usage: serve_smoke.py <rp_serve> <routplace> [--keep]
Exit code 0 on success; prints every failed expectation otherwise.
"""

import json
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

FAILURES = []

# Same volatile-key set as check_threads_determinism.py: runtime, memory and
# host/build provenance move between runs; placement quality must not.
VOLATILE_KEYS = {
    "stage_times", "stage_total_sec", "peak_rss_kb", "build", "snapshot_dir",
    "parallel", "simd", "profile", "resources",
}


def check(cond, what):
    if not cond:
        FAILURES.append(what)
        print(f"FAIL: {what}")
    return cond


def scrub(doc):
    if isinstance(doc, dict):
        return {
            k: scrub(v)
            for k, v in doc.items()
            if k not in VOLATILE_KEYS and not k.startswith("parallel.")
        }
    if isinstance(doc, list):
        return [scrub(v) for v in doc]
    return doc


def ndjson_payloads(text):
    """Deterministic event payloads: drop the volatile seq/t_ms stamps and
    any non-event schema lines (rp_resource timelines are wall-clock)."""
    out = []
    for line in text.splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        if doc.get("schema") != "rp_progress":
            continue
        doc.pop("seq", None)
        doc.pop("t_ms", None)
        out.append(doc)
    return out


class Client:
    """One newline-delimited JSON connection to the daemon."""

    def __init__(self, sock_path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(180)
        self.sock.connect(str(sock_path))
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def send_raw(self, line):
        self.file.write(line + "\n")
        self.file.flush()

    def recv(self):
        line = self.file.readline()
        if not line:
            raise RuntimeError("server closed the connection")
        return json.loads(line)

    def rpc(self, obj):
        self.send_raw(json.dumps(obj))
        return self.recv()

    def close(self):
        self.file.close()
        self.sock.close()


def start_server(rp_serve, sock, workdir, jobs, queue, threads, log):
    proc = subprocess.Popen(
        [str(rp_serve), "--socket", str(sock), "--dir", str(workdir),
         "--jobs", str(jobs), "--queue", str(queue), "--threads", str(threads)],
        stdout=log, stderr=log)
    deadline = time.time() + 30
    while time.time() < deadline:
        if sock.exists():
            try:
                c = Client(sock)
                pong = c.rpc({"op": "ping"})
                c.close()
                if pong.get("type") == "pong":
                    return proc
            except OSError:
                pass
        if proc.poll() is not None:
            raise RuntimeError(f"rp_serve exited early: {proc.returncode}")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("rp_serve socket never came up")


def one_shot(routplace, outdir, flags, progress=False):
    outdir.mkdir(parents=True, exist_ok=True)
    cmd = [str(routplace)] + flags + [
        "--out", str(outdir / "out.pl"),
        "--report-json", str(outdir / "report.json"),
        "--sample-resources", "0",
    ]
    if progress:
        cmd += ["--progress-ndjson", str(outdir / "progress.ndjson")]
    r = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL, timeout=240)
    check(r.returncode == 0, f"one-shot {' '.join(flags)} exited {r.returncode}")
    return outdir


# The four concurrent jobs: distinct configs and budgets, all byte-compared
# against sequential one-shot runs of the same flags.
JOBS = [
    ({"gen": 500, "seed": 3, "rounds": 1, "threads": 1, "label": "a"},
     ["--gen", "500", "--seed", "3", "--rounds", "1"]),
    ({"gen": 500, "seed": 4, "rounds": 1, "threads": 2, "label": "b"},
     ["--gen", "500", "--seed", "4", "--rounds", "1"]),
    ({"gen": 600, "seed": 3, "rounds": 1, "mode": "wirelength", "threads": 1,
      "label": "c"},
     ["--gen", "600", "--seed", "3", "--rounds", "1", "--mode", "wirelength"]),
    ({"gen": 500, "seed": 5, "rounds": 1, "legalizer": "tetris", "threads": 2,
      "label": "d"},
     ["--gen", "500", "--seed", "5", "--rounds", "1", "--legalizer", "tetris"]),
]


def compare_artifacts(tag, serve_dir, ref_dir):
    serve_pl = (serve_dir / "out.pl").read_bytes()
    ref_pl = (ref_dir / "out.pl").read_bytes()
    check(serve_pl == ref_pl, f"{tag}: serve out.pl != one-shot out.pl")
    serve_rep = scrub(json.loads((serve_dir / "report.json").read_text()))
    ref_rep = scrub(json.loads((ref_dir / "report.json").read_text()))
    check(serve_rep == ref_rep, f"{tag}: scrubbed report differs from one-shot")


def main():
    args = [a for a in sys.argv[1:] if a != "--keep"]
    keep = "--keep" in sys.argv
    if len(args) != 2:
        print(__doc__)
        return 2
    rp_serve, routplace = Path(args[0]), Path(args[1])
    tmp = Path(tempfile.mkdtemp(prefix="rp_serve_smoke_"))
    print(f"serve_smoke: working in {tmp}")
    log = open(tmp / "server.log", "w")
    try:
        sock = tmp / "rp.sock"
        work = tmp / "work"
        server = start_server(rp_serve, sock, work, jobs=4, queue=8,
                              threads=4, log=log)

        # ---- phase A: N concurrent jobs vs sequential one-shot runs
        c = Client(sock)
        ids = []
        for job, _ in JOBS:
            adm = c.rpc({"op": "submit", "job": job})
            check(adm.get("type") == "accepted", f"submit rejected: {adm}")
            ids.append(adm.get("job"))
        statuses = []
        for jid in ids:
            st = c.rpc({"op": "wait", "job": jid})
            statuses.append(st)
            check(st.get("type") == "status" and st.get("state") == "done",
                  f"wait({jid}) -> {st}")
            check(st.get("status") == "ok" and st.get("exit_code") == 0,
                  f"job {jid} not ok: {st}")
            check(st.get("cache_hit") is False,
                  f"first run of {jid} claims a cache hit")
        for (job, flags), st in zip(JOBS, statuses):
            ref = one_shot(routplace, tmp / f"ref_{job['label']}", flags)
            compare_artifacts(f"job {job['label']}", work / "jobs" / st["job"],
                              ref)

        # ---- phase B: repeat job -> cache hit + streamed progress parity
        rerun = dict(JOBS[0][0])
        rerun["progress"] = True
        c.send_raw(json.dumps({"op": "run", "job": rerun}))
        adm = c.recv()
        check(adm.get("type") == "accepted", f"run rejected: {adm}")
        stream_lines = []
        result = None
        while True:
            doc = c.recv()
            if doc.get("schema") == "rp_serve":
                result = doc
                break
            stream_lines.append(doc)
        check(result.get("type") == "result" and result.get("status") == "ok",
              f"streamed run failed: {result}")
        check(result.get("cache_hit") is True,
              "repeat job did not report cache_hit")
        job_dir = work / "jobs" / result["job"]
        ref = one_shot(routplace, tmp / "ref_stream", JOBS[0][1], progress=True)
        compare_artifacts("streamed repeat", job_dir, ref)
        ref_events = ndjson_payloads((ref / "progress.ndjson").read_text())
        live_events = [d for d in stream_lines if d.get("schema") == "rp_progress"]
        for d in live_events:
            d.pop("seq", None)
            d.pop("t_ms", None)
        check(live_events == ref_events,
              "streamed NDJSON payloads differ from one-shot --progress-ndjson")
        tee_events = ndjson_payloads((job_dir / "progress.ndjson").read_text())
        check(tee_events == ref_events,
              "teed progress.ndjson differs from one-shot stream")

        # ---- phase C: protocol robustness on a live connection
        bad = c.rpc({"op": "submit", "job": {"bogus": 1}})
        check(bad.get("type") == "error" and bad.get("error") == "bad_job",
              f"bad job not rejected structurally: {bad}")
        c.send_raw("this is not json")
        err = c.recv()
        check(err.get("error") == "bad_request", f"garbage line -> {err}")
        unk = c.rpc({"op": "status", "job": "j9999"})
        check(unk.get("error") == "unknown_job", f"unknown job -> {unk}")
        stats = c.rpc({"op": "stats"})
        check(stats.get("done") == 5, f"expected 5 completed jobs: {stats}")
        check(stats.get("cache", {}).get("hits", 0) >= 1,
              f"cache hits missing from stats: {stats}")

        # ---- shutdown drains cleanly
        ok = c.rpc({"op": "shutdown"})
        check(ok.get("type") == "ok", f"shutdown -> {ok}")
        c.close()
        check(server.wait(timeout=120) == 0,
              f"server exit code {server.returncode}")
        check(not sock.exists(), "socket not unlinked after shutdown")

        # ---- phase D: admission control on a tight server
        sock2 = tmp / "rp2.sock"
        server2 = start_server(rp_serve, sock2, tmp / "work2", jobs=1,
                               queue=2, threads=2, log=log)
        c2 = Client(sock2)
        slow = {"gen": 1500, "seed": 2, "rounds": 2}
        accepted = []
        rejected = None
        for _ in range(4):
            adm = c2.rpc({"op": "submit", "job": slow})
            if adm.get("type") == "accepted":
                accepted.append(adm["job"])
            else:
                rejected = adm
        check(len(accepted) == 3, f"expected 1 running + 2 queued accepted, "
              f"got {len(accepted)}")
        check(rejected is not None and rejected.get("reason") == "queue_full",
              f"over-quota submit not rejected: {rejected}")
        for jid in accepted:
            st = c2.rpc({"op": "wait", "job": jid})
            check(st.get("status") == "ok", f"queued job {jid} failed: {st}")
        ok = c2.rpc({"op": "shutdown"})
        check(ok.get("type") == "ok", f"shutdown2 -> {ok}")
        c2.close()
        check(server2.wait(timeout=120) == 0,
              f"server2 exit code {server2.returncode}")
    finally:
        log.close()
        if FAILURES or keep:
            print(f"serve_smoke: artifacts kept in {tmp}")
            print((tmp / "server.log").read_text()[-4000:])
        else:
            shutil.rmtree(tmp, ignore_errors=True)

    if FAILURES:
        print(f"\nserve_smoke: {len(FAILURES)} failure(s)")
        return 1
    print("serve_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
