#!/usr/bin/env python3
"""NDJSON progress-stream and flight-recorder contract check.

Runs the routplace binary twice:

  1. A successful run with `--progress-ndjson` + `--report-json` and
     validates the live event stream:
       * every line is a standalone JSON object with schema "rp_progress",
         version 1, and a known "event" kind;
       * "seq" counts 0,1,2,... with no gaps and "t_ms" is monotone
         non-decreasing (the two volatile fields — everything else in a line
         is deterministic, see util/event_bus.hpp);
       * the stream opens with run_begin and closes with run_end;
       * stage_begin/stage_end lines pair up stack-wise per stage name;
       * gp_iter lines carry finite hpwl/overflow payloads and their count
         matches the report's counters;
       * the line count equals the report's "events.emitted" total — the
         cross-check that the stream did not drop or duplicate events;
       * interleaved "rp_resource" lines (the background resource sampler,
         on by default) are well-formed: versioned, monotone t_ms among
         themselves, pool_busy in [0,1] — they carry no "seq" and do not
         participate in the rp_progress ordering contract.

  2. A run on a malformed Bookshelf input with `--flight-json` +
     `--progress-ndjson`, which must exit 3 (ParseError) and leave
       * a terminal "error" event as the stream's last line, and
       * a valid flight document: schema "rp_flight" v1, reason ParseError,
         events_total consistent with the events array, every ring entry
         carrying seq/t_ms/event/label/i/d fields, and a counter snapshot.

Usage: check_progress.py /path/to/routplace [--keep]
Exit code 0 on success; prints every failed expectation otherwise.
"""

import json
import math
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []

EVENT_KINDS = {
    "run_begin", "run_end", "stage_begin", "stage_end", "gp_iter",
    "route_round", "watchdog", "guard", "parse_repair", "error",
}


def check(cond, what):
    if not cond:
        FAILURES.append(what)
    return cond


def load_ndjson(path, what):
    """Parse an NDJSON file into a list of dicts; every line must be a
    complete JSON object on its own (a tailing reader sees whole events)."""
    lines = []
    text = Path(path).read_text()
    for i, raw in enumerate(text.splitlines()):
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as e:
            FAILURES.append(f"{what}: line {i + 1} is not valid JSON: {e}")
            return None
        if not check(isinstance(obj, dict), f"{what}: line {i + 1} not an object"):
            return None
        lines.append(obj)
    check(text.endswith("\n") or not text,
          f"{what}: stream does not end with a newline")
    return lines


def split_schemas(lines, what):
    """Partition a mixed stream into rp_progress events and rp_resource
    sampler lines (interleaved by the background resource sampler). Any
    other schema is a failure."""
    progress, resource = [], []
    for i, obj in enumerate(lines):
        schema = obj.get("schema")
        if schema == "rp_progress":
            progress.append(obj)
        elif schema == "rp_resource":
            resource.append(obj)
        else:
            FAILURES.append(f"{what}: line {i + 1} has unknown schema "
                            f"{schema!r}")
    return progress, resource


def validate_resource_lines(lines, what):
    """Minimal shape check for interleaved sampler lines: versioned, finite,
    non-negative, pool_busy a fraction. Timestamps are wall clock on a
    background thread — no ordering guarantee against rp_progress lines,
    but the sampler's own lines are monotone."""
    prev_t = -math.inf
    for i, ev in enumerate(lines):
        where = f"{what}: rp_resource line {i + 1}"
        for key in ("v", "t_ms", "rss_kb", "utime_ms", "stime_ms", "pool_busy"):
            if not check(key in ev, f"{where}: missing '{key}'"):
                return
        check(ev["v"] == 1, f"{where}: v != 1")
        check(ev["t_ms"] >= prev_t, f"{where}: t_ms went backwards")
        prev_t = ev["t_ms"]
        check(ev["rss_kb"] >= 0, f"{where}: negative rss_kb")
        check(0.0 <= ev["pool_busy"] <= 1.0,
              f"{where}: pool_busy {ev['pool_busy']} outside [0,1]")


def validate_stream(lines, what):
    """Schema + ordering invariants every rp_progress stream must satisfy."""
    if not check(len(lines) > 0, f"{what}: stream is empty"):
        return
    stacks = {}  # stage name -> open count (begin/end pair up per name)
    prev_t = -math.inf
    for i, ev in enumerate(lines):
        where = f"{what}: line {i + 1}"
        for key in ("schema", "v", "seq", "t_ms", "event"):
            if not check(key in ev, f"{where}: missing '{key}'"):
                return
        check(ev["schema"] == "rp_progress", f"{where}: schema != rp_progress")
        check(ev["v"] == 1, f"{where}: v != 1")
        check(ev["seq"] == i, f"{where}: seq {ev['seq']} != {i} (gap or dup)")
        check(ev["t_ms"] >= prev_t, f"{where}: t_ms went backwards")
        check(math.isfinite(ev["t_ms"]), f"{where}: t_ms not finite")
        prev_t = ev["t_ms"]
        kind = ev["event"]
        if not check(kind in EVENT_KINDS, f"{where}: unknown event '{kind}'"):
            continue
        if kind == "stage_begin":
            stacks[ev.get("stage")] = stacks.get(ev.get("stage"), 0) + 1
        elif kind == "stage_end":
            name = ev.get("stage")
            if check(stacks.get(name, 0) > 0,
                     f"{where}: stage_end '{name}' without open stage_begin"):
                stacks[name] -= 1
        elif kind == "gp_iter":
            for key in ("tag", "level", "outer", "hpwl", "overflow"):
                check(key in ev, f"{where}: gp_iter missing '{key}'")
            check(math.isfinite(ev.get("hpwl", math.nan)) and ev.get("hpwl", -1) > 0,
                  f"{where}: gp_iter hpwl not positive/finite")
            check(math.isfinite(ev.get("overflow", math.nan)),
                  f"{where}: gp_iter overflow not finite")
        elif kind == "route_round":
            for key in ("round", "cells_inflated", "overflow", "rc"):
                check(key in ev, f"{where}: route_round missing '{key}'")
    terminal = lines[-1]["event"]
    check(terminal in ("run_end", "error"),
          f"{what}: last event '{terminal}' is neither run_end nor error")
    if terminal == "run_end":
        # A clean run opens with run_begin and closes every stage it opened;
        # an error unwind may never reach the flow (parse failures) and may
        # legitimately leave the failing stage open.
        check(lines[0]["event"] == "run_begin",
              f"{what}: first event != run_begin")
        open_stages = {k: v for k, v in stacks.items() if v}
        check(not open_stages, f"{what}: unclosed stages at run_end: {open_stages}")


def validate_success_run(binary, tmp):
    stream = tmp / "progress.ndjson"
    report_path = tmp / "report.json"
    cmd = [str(binary), "--gen", "500", "--seed", "11",
           "--out", str(tmp / "out.pl"),
           "--progress-ndjson", str(stream),
           "--report-json", str(report_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    if not check(proc.returncode == 0,
                 f"success run: exit {proc.returncode}\n{proc.stderr}"):
        return
    raw_lines = load_ndjson(stream, "success stream")
    if raw_lines is None:
        return
    lines, resource = split_schemas(raw_lines, "success stream")
    validate_stream(lines, "success stream")
    validate_resource_lines(resource, "success stream")
    check(lines[-1]["event"] == "run_end", "success stream: no run_end")
    # The sampler is on by default (RP_SAMPLE_MS / --sample-resources to
    # tune) — a run of any length must interleave at least one sample.
    check(len(resource) > 0, "success stream: no rp_resource sampler lines")

    try:
        report = json.loads(report_path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        FAILURES.append(f"success run: report unreadable: {e}")
        return
    events = report.get("events", {})
    check(events.get("emitted") == len(lines),
          f"report.events.emitted {events.get('emitted')} != "
          f"stream line count {len(lines)}")
    # Convergence points on the stream match the GP iteration counter.
    gp_iters = sum(1 for e in lines if e["event"] == "gp_iter")
    counted = report.get("counters", {}).get("gp.outer_iters")
    check(gp_iters == counted,
          f"stream gp_iter count {gp_iters} != counters.gp.outer_iters {counted}")
    rounds = sum(1 for e in lines if e["event"] == "route_round")
    counted_rounds = report.get("counters", {}).get("gp.inflation_rounds", 0)
    check(rounds == counted_rounds,
          f"stream route_round count {rounds} != "
          f"counters.gp.inflation_rounds {counted_rounds}")


def validate_error_run(binary, tmp):
    bench = tmp / "bad_bench"
    bench.mkdir(exist_ok=True)
    (bench / "m.aux").write_text("RowBasedPlacement : m.nodes m.nets m.pl m.scl\n")
    (bench / "m.nodes").write_text(
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n"
        "  a 1 10\n  b not_a_number 10\n")
    (bench / "m.nets").write_text(
        "UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n")
    (bench / "m.pl").write_text("UCLA pl 1.0\n  a 0 0 : N\n  b 2 0 : N\n")
    (bench / "m.scl").write_text(
        "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n"
        " Height : 10\n Sitewidth : 1\n Sitespacing : 1\n"
        " SubrowOrigin : 0 NumSites : 100\nEnd\n")

    stream = tmp / "err.ndjson"
    flight = tmp / "flight.json"
    cmd = [str(binary), "--aux", str(bench / "m.aux"),
           "--out", str(tmp / "err.pl"),
           "--progress-ndjson", str(stream),
           "--flight-json", str(flight)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=60)
    check(proc.returncode == 3,
          f"error run: exit {proc.returncode}, expected 3 (ParseError)")

    raw_lines = load_ndjson(stream, "error stream")
    if raw_lines is not None and check(len(raw_lines) > 0, "error stream: empty"):
        lines, resource = split_schemas(raw_lines, "error stream")
        validate_stream(lines, "error stream")
        validate_resource_lines(resource, "error stream")
        last = lines[-1]
        check(last["event"] == "error", "error stream: last event != error")
        check(last.get("code") == "ParseError",
              f"error stream: terminal code {last.get('code')!r} != ParseError")
        check(last.get("exit_code") == 3,
              "error stream: terminal exit_code != 3")

    if not check(flight.exists(), "error run: no flight.json written"):
        return
    try:
        doc = json.loads(flight.read_text())
    except json.JSONDecodeError as e:
        FAILURES.append(f"flight.json: not valid JSON: {e}")
        return
    check(doc.get("schema") == "rp_flight", "flight: schema != rp_flight")
    check(doc.get("version") == 1, "flight: version != 1")
    check(doc.get("reason") == "ParseError", "flight: reason != ParseError")
    events = doc.get("events", [])
    total = doc.get("events_total", -1)
    check(isinstance(events, list) and events, "flight: events empty")
    check(total >= len(events), "flight: events_total < len(events)")
    check(len(events) <= total, "flight: more events than events_total")
    for i, ev in enumerate(events):
        for key in ("seq", "t_ms", "event", "label", "i", "d"):
            check(key in ev, f"flight events[{i}]: missing '{key}'")
        check(ev.get("event") in EVENT_KINDS,
              f"flight events[{i}]: unknown event {ev.get('event')!r}")
    seqs = [e.get("seq", -1) for e in events]
    check(seqs == sorted(seqs), "flight: events not seq-ordered (oldest first)")
    if events:
        check(events[-1].get("event") == "error",
              "flight: last ring entry is not the terminal error event")
    check(isinstance(doc.get("counters"), dict), "flight: counters missing")
    check(isinstance(doc.get("gauges"), dict), "flight: gauges missing")


def main():
    if len(sys.argv) < 2:
        print("usage: check_progress.py /path/to/routplace [--keep]")
        return 2
    binary = Path(sys.argv[1])
    keep = "--keep" in sys.argv[2:]
    tmp = Path(tempfile.mkdtemp(prefix="rp_check_progress_"))
    try:
        validate_success_run(binary, tmp)
        validate_error_run(binary, tmp)
    finally:
        if keep:
            print(f"artifacts kept in {tmp}")
        else:
            shutil.rmtree(tmp, ignore_errors=True)
    if FAILURES:
        print(f"check_progress: {len(FAILURES)} failure(s)")
        for f in FAILURES:
            print(f"  FAIL: {f}")
        return 1
    print("check_progress: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
