#!/usr/bin/env python3
"""Campaign orchestration smoke test (the sweep_smoke ctest).

Drives the real `rp_sweep` binary through a tiny 2x2x2-seed campaign and
asserts the cross-run observability contract end to end:

  * the campaign completes with exit 0 and every run directory holds the
    captured artifacts (report.json with a populated "resources" time
    series, progress.ndjson, status.json);
  * re-running the FINISHED campaign directory is a no-op: every run is
    resumed (no child respawned) and campaign.json is byte-identical;
  * a second invocation into a FRESH directory produces a byte-identical
    campaign.json — the manifest is a pure function of (spec, results);
  * `render_report.py --campaign` renders the dashboard and writes
    campaign_summary.json + campaign_trend.jsonl whose deterministic
    content (quality medians; runtime/RSS scrubbed as documented volatile)
    matches between the two invocations;
  * the campaign_trend.jsonl rows aggregate through bench_trend.py, the
    self-compare gate passes, and deleting a whole metric family from the
    fresh side fails with the family-presence error (exit nonzero);
  * a campaign with a deliberately failing grid cell (--aux pointing at a
    malformed benchmark) exits 1, RECORDS the failed run in the manifest
    with exit code 3 / status ParseError / the report's error block, and
    the failure shows up in the rendered failure matrix.

All child exit codes are taken from subprocess.run (never shell pipelines,
whose $? reports the last pipe stage).

Usage: sweep_smoke.py <rp_sweep> <routplace> <render_report.py>
                      <bench_trend.py> [--keep]
Exit code 0 on success; prints every failed expectation otherwise.
"""

import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []

# Documented-volatile metrics: wall time and memory move between two
# invocations of the same campaign; quality medians must not.
VOLATILE_TREND_FIELDS = {"runtime_median_sec"}
VOLATILE_SUMMARY_METRICS = {"runtime_sec", "peak_rss_kb"}


def check(cond, what):
    if not cond:
        FAILURES.append(what)
    return cond


def run(cmd, timeout=240):
    return subprocess.run([str(c) for c in cmd], capture_output=True,
                          text=True, timeout=timeout)


def write_spec(path, extra_axes=None):
    spec = {
        "name": "smoke",
        "base": {"gen": 200, "rounds": 1, "sample-resources": 5},
        "axes": extra_axes if extra_axes is not None else {
            "mode": ["routability", "wirelength"],
            "threads": [1, 2],
        },
        "seeds": [1, 2],
    }
    path.write_text(json.dumps(spec, indent=1) + "\n")
    return spec


def scrubbed_trend(path):
    rows = []
    for line in path.read_text().splitlines():
        row = json.loads(line)
        rows.append({k: v for k, v in row.items()
                     if k not in VOLATILE_TREND_FIELDS})
    return rows


def scrubbed_summary(path):
    doc = json.loads(path.read_text())
    for cell in doc.get("cells", []):
        cell["metrics"] = {k: v for k, v in cell["metrics"].items()
                           if k not in VOLATILE_SUMMARY_METRICS}
    return doc


def validate_run_dirs(camp_dir, runs):
    for r in runs:
        rdir = camp_dir / r["dir"]
        for name in ("report.json", "progress.ndjson", "status.json", "out.pl"):
            check((rdir / name).exists(), f"{r['id']}: missing {name}")
        report_path = rdir / "report.json"
        if not report_path.exists():
            continue
        report = json.loads(report_path.read_text())
        check(report.get("schema_version") == 5,
              f"{r['id']}: report schema_version != 5")
        res = report.get("resources")
        if check(isinstance(res, dict), f"{r['id']}: no 'resources' block"):
            check(len(res.get("samples", [])) >= 2,
                  f"{r['id']}: resources has < 2 samples")
            check(res.get("peak_rss_kb", 0) > 0,
                  f"{r['id']}: resources.peak_rss_kb not positive")


def main():
    if len(sys.argv) < 5:
        print(__doc__)
        return 2
    rp_sweep, routplace = Path(sys.argv[1]), Path(sys.argv[2])
    render_report, bench_trend = Path(sys.argv[3]), Path(sys.argv[4])
    keep = "--keep" in sys.argv[5:]
    for p in (rp_sweep, routplace, render_report, bench_trend):
        if not p.exists():
            print(f"sweep_smoke: '{p}' not found")
            return 2

    tmp = Path(tempfile.mkdtemp(prefix="rp_sweep_smoke_"))
    try:
        spec_path = tmp / "spec.json"
        write_spec(spec_path)
        dir_a, dir_b = tmp / "campA", tmp / "campB"

        # --- first invocation: 2 (mode) x 2 (threads) x 2 seeds = 8 runs.
        proc = run([rp_sweep, "--spec", spec_path, "--out", dir_a,
                    "--routplace", routplace, "--jobs", "2"])
        check(proc.returncode == 0,
              f"campaign A: exit {proc.returncode}\n{proc.stderr[-2000:]}")
        manifest_path = dir_a / "campaign.json"
        if not check(manifest_path.exists(), "campaign A: no campaign.json"):
            print("\n".join(f"  FAIL: {f}" for f in FAILURES))
            return 1
        manifest_a = json.loads(manifest_path.read_text())
        check(manifest_a.get("schema") == "rp_campaign",
              "manifest: schema != rp_campaign")
        check(manifest_a.get("total") == 8,
              f"manifest: total {manifest_a.get('total')} != 8")
        check(manifest_a.get("ok") == 8,
              f"manifest: ok {manifest_a.get('ok')} != 8")
        validate_run_dirs(dir_a, manifest_a.get("runs", []))

        # --- resume: re-running the finished directory is a no-op.
        bytes_before = manifest_path.read_bytes()
        proc = run([rp_sweep, "--spec", spec_path, "--out", dir_a,
                    "--routplace", routplace, "--jobs", "2"])
        check(proc.returncode == 0,
              f"campaign A resume: exit {proc.returncode}\n{proc.stderr[-2000:]}")
        check(proc.stdout.count("(resumed)") == 8,
              f"resume: expected 8 resumed runs, stdout:\n{proc.stdout}")
        check(manifest_path.read_bytes() == bytes_before,
              "resume: campaign.json changed on a finished campaign")

        # --- determinism: a fresh directory yields the same manifest bytes.
        proc = run([rp_sweep, "--spec", spec_path, "--out", dir_b,
                    "--routplace", routplace, "--jobs", "2"])
        check(proc.returncode == 0,
              f"campaign B: exit {proc.returncode}\n{proc.stderr[-2000:]}")
        check((dir_b / "campaign.json").read_bytes() == bytes_before,
              "campaign.json differs between two invocations of the same spec")

        # --- dashboards: render both, compare the deterministic content.
        for d in (dir_a, dir_b):
            proc = run([sys.executable, render_report, "--campaign", d])
            check(proc.returncode == 0,
                  f"render --campaign {d.name}: exit {proc.returncode}\n"
                  f"{proc.stderr[-2000:]}")
            for name in ("campaign.html", "campaign_summary.json",
                         "campaign_trend.jsonl"):
                check((d / name).exists(), f"{d.name}: {name} not written")
        if (dir_a / "campaign_trend.jsonl").exists() and \
           (dir_b / "campaign_trend.jsonl").exists():
            check(scrubbed_trend(dir_a / "campaign_trend.jsonl")
                  == scrubbed_trend(dir_b / "campaign_trend.jsonl"),
                  "campaign_trend.jsonl quality medians differ between "
                  "invocations")
        if (dir_a / "campaign_summary.json").exists() and \
           (dir_b / "campaign_summary.json").exists():
            check(scrubbed_summary(dir_a / "campaign_summary.json")
                  == scrubbed_summary(dir_b / "campaign_summary.json"),
                  "campaign_summary.json differs (beyond runtime/RSS) "
                  "between invocations")

        # --- trend gate: campaign rows aggregate and self-compare clean;
        # removing a whole family trips the presence gate.
        trend_file = tmp / "trend.json"
        proc = run([sys.executable, bench_trend, "aggregate",
                    "--input", dir_a / "campaign_trend.jsonl",
                    "--out", trend_file, "--date", "20000101"])
        check(proc.returncode == 0,
              f"bench_trend aggregate: exit {proc.returncode}\n{proc.stderr}")
        proc = run([sys.executable, bench_trend, "compare",
                    "--baseline", trend_file, "--current", trend_file])
        check(proc.returncode == 0,
              f"bench_trend self-compare: exit {proc.returncode}\n"
              f"{proc.stdout}\n{proc.stderr}")
        if trend_file.exists():
            doc = json.loads(trend_file.read_text())
            doc["metrics"] = {k: v for k, v in doc["metrics"].items()
                              if not k.startswith("campaign.")}
            doc["metrics"]["other.marker_sec"] = {
                "value": 1.0, "kind": "time", "n": 1}
            gutted = tmp / "trend_gutted.json"
            gutted.write_text(json.dumps(doc))
            proc = run([sys.executable, bench_trend, "compare",
                        "--baseline", trend_file, "--current", gutted])
            check(proc.returncode != 0,
                  "bench_trend: dropping the 'campaign' family did not fail")
            check("campaign" in proc.stderr,
                  f"bench_trend: family failure message does not name the "
                  f"family:\n{proc.stderr}")

        # --- failure leg: a grid with one deliberately broken cell.
        # An aux that names too few files is a ParseError at bad.aux:1 —
        # before any referenced file is opened (which would be a
        # ResourceError and a different exit code).
        bad_aux = tmp / "bad.aux"
        bad_aux.write_text("RowBasedPlacement : only.nodes\n")
        fail_spec = tmp / "fail_spec.json"
        spec = {
            "name": "smoke-fail",
            "base": {"gen": 200, "rounds": 0},
            "axes": {"aux": [None, str(bad_aux)]},
            "seeds": [1],
        }
        fail_spec.write_text(json.dumps(spec) + "\n")
        dir_f = tmp / "campF"
        proc = run([rp_sweep, "--spec", fail_spec, "--out", dir_f,
                    "--routplace", routplace, "--jobs", "2"])
        check(proc.returncode == 1,
              f"failure campaign: exit {proc.returncode}, expected 1")
        fman = json.loads((dir_f / "campaign.json").read_text())
        failed = [r for r in fman.get("runs", []) if r.get("status") != "ok"]
        if check(len(failed) == 1,
                 f"failure campaign: {len(failed)} failed runs, expected 1"):
            r = failed[0]
            check(r.get("exit_code") == 3,
                  f"failed run: exit_code {r.get('exit_code')} != 3")
            check(r.get("status") == "ParseError",
                  f"failed run: status {r.get('status')!r} != 'ParseError'")
            err = r.get("error") or {}
            check(err.get("code") == "ParseError",
                  f"failed run: manifest error block missing/wrong: {err}")
            check(r.get("artifacts", {}).get("flight") is True,
                  "failed run: flight dump not recorded in the manifest")
        proc = run([sys.executable, render_report, "--campaign", dir_f])
        check(proc.returncode == 0,
              f"render failure campaign: exit {proc.returncode}\n{proc.stderr}")
        if (dir_f / "campaign.html").exists():
            page = (dir_f / "campaign.html").read_text()
            check("Failure matrix" in page and "ParseError" in page,
                  "failure campaign page does not show the failed cell")
        if (dir_f / "campaign_summary.json").exists():
            sdoc = json.loads((dir_f / "campaign_summary.json").read_text())
            check(len(sdoc.get("failures", [])) == 1
                  and sdoc["failures"][0].get("error", {}).get("code")
                  == "ParseError",
                  "campaign_summary failures[] does not carry the error block")
    finally:
        if keep:
            print(f"artifacts kept in {tmp}")
        else:
            shutil.rmtree(tmp, ignore_errors=True)

    if FAILURES:
        print(f"sweep_smoke: {len(FAILURES)} failure(s)")
        for f in FAILURES:
            print(f"  FAIL: {f}")
        return 1
    print("sweep_smoke: all checks passed (8-run campaign deterministic, "
          "resume no-op, dashboards rendered, failure leg recorded)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
