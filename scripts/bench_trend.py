#!/usr/bin/env python3
"""Aggregate bench JSONL into a dated trend file and gate perf regressions.

The bench binaries append machine-readable JSONL rows to $RP_BENCH_JSON:

  * full run reports   (one ``{"schema_version": ..., "design": ...}`` object
    per flow run, same schema as ``routplace --report-json``),
  * kernel speedups    (``{"schema": "kernel_speedup", ...}`` from
    bench_micro_kernels' thread sweep),
  * SIMD speedups      (``{"schema": "simd_speedup", ...}``: scalar vs
    dispatched kernel time at one thread),
  * DP candidate cost  (``{"schema": "dp_candidate_speedup", ...}``:
    mutate-and-measure vs incremental-delta move scoring),
  * profiler regions   (``{"schema": "profile_region", ...}`` when the run
    was profiled via RP_PROFILE=1),
  * event-bus overhead (``{"schema": "event_bus_overhead", ...}`` from
    bench_micro_kernels: emit cost, events/sec, and the stream-on vs
    stream-off flow wall-time ratio),
  * sampler overhead   (``{"schema": "resource_sampler_overhead", ...}``:
    flow wall time with the resource timeline sampler off vs on — gated by
    the same <= 1.02 absolute ceiling as the event bus),
  * campaign medians   (``{"schema": "campaign_cell", ...}`` emitted by
    ``render_report.py --campaign`` into campaign_trend.jsonl: per-grid-cell
    medians over seeds, so rp_sweep campaigns feed the same trend gate).

``aggregate`` flattens those rows into a BENCH_<YYYYMMDD>.json trajectory
file: a flat ``metrics`` map keyed

  flow.<design>.<mode>.<metric>      hpwl / scaled_hpwl / rc / stage_total_sec
  kernel.<kernel>.t<threads>.<m>     sec_per_iter / speedup_vs_1
  kernel.simd.<kernel>.t1.<m>        off_sec / auto_sec / speedup_vs_off
  kernel.dp_candidate_eval.t1.<m>    full_sec / incremental_sec / speedup_vs_full
  region.<bench>.<flow>.<region>.<m> total_ms / p50_us / p95_us / p99_us
  campaign.<cell>.<m>                hpwl_median / rc_median / overflow_median
                                     / runtime_median_sec

Each metric records its value (mean over rows), sample count, and a *kind*
that decides the regression direction and default noise tolerance:

  time           lower is better; noisy     -> default tolerance 15%
  higher_better  higher is better; noisy    -> default tolerance 15%
  quality        lower is better; exact     -> default tolerance 1%
  limit          absolute ceiling; the CURRENT value must stay under a fixed
                 limit regardless of the baseline (eventbus.overhead_ratio
                 <= 1.02: the event bus may not cost a flow more than 2%)
  speedup        higher is better AND floored at 1.0: the current value must
                 not drop below 1.0 - tol regardless of the baseline (a SIMD
                 kernel may never run slower than the scalar path it
                 replaces; incremental scoring may never lose to the full
                 re-evaluation it shortcuts)

``compare`` checks a current trend file against a committed baseline and
exits nonzero if any shared metric regressed beyond its tolerance — this is
the CI gate (see the bench_smoke ctest). Individual metrics present on only
one side are reported but never fail the gate (benches come and go) — but a
whole METRIC FAMILY (the first key segment: flow, kernel, region, eventbus,
sampler, campaign, ...) that the baseline has and the fresh file lacks
fails with a clear message: a family vanishing wholesale means a producer
stopped emitting, not that one bench was renamed. New unbaselined families
are reported as NEW FAMILY.

stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys
import time

TIME_SUFFIXES = ("_sec", "_ms", "_us", "_ns", "sec_per_iter", "stage_total_sec")
HIGHER_BETTER_SUFFIXES = ("speedup_vs_1", "events_per_sec")

# Speedup-vs-reference metrics: trajectory-gated like higher_better, plus an
# absolute floor — the current value must stay >= 1.0 - tol even when the
# baseline predates the metric.
SPEEDUP_SUFFIXES = ("speedup_vs_off", "speedup_vs_full")
SPEEDUP_FLOOR = 1.0

# Absolute ceilings: key suffix -> max allowed CURRENT value. These gate a
# contract ("streaming may not cost >2% flow time"), not a trajectory, so
# they fail on the current measurement alone.
LIMIT_METRICS = {"overhead_ratio": 1.02}


def metric_limit(key):
    for suffix, limit in LIMIT_METRICS.items():
        if key.endswith(suffix):
            return limit
    return None

# Flow-report metrics worth tracking (quality is deterministic per design,
# runtime is the thing PRs move).
FLOW_METRICS = ("hpwl", "scaled_hpwl", "rc", "stage_total_sec")
REGION_METRICS = ("total_ms", "p50_us", "p95_us", "p99_us")


def metric_kind(key):
    if metric_limit(key) is not None:
        return "limit"
    if key.endswith(SPEEDUP_SUFFIXES):
        return "speedup"
    if key.endswith(HIGHER_BETTER_SUFFIXES):
        return "higher_better"
    if key.endswith(TIME_SUFFIXES):
        return "time"
    return "quality"


def fail(msg):
    print("bench_trend: %s" % msg, file=sys.stderr)
    sys.exit(2)


# ----------------------------------------------------------------- aggregate


def rows_from_jsonl(path):
    rows = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for ln, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError as e:
                    fail("%s:%d: bad JSON line: %s" % (path, ln, e))
    except OSError as e:
        fail("cannot read '%s': %s" % (path, e))
    if not rows:
        fail("'%s' contains no JSONL rows" % path)
    return rows


def metrics_from_rows(rows):
    """Flatten JSONL rows into {key: [values]}."""
    acc = {}

    def add(key, value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        acc.setdefault(key, []).append(float(value))

    for row in rows:
        schema = row.get("schema")
        if schema == "kernel_speedup":
            base = "kernel.%s.t%d" % (row.get("kernel", "?"), int(row.get("threads", 0)))
            add(base + ".sec_per_iter", row.get("sec_per_iter"))
            add(base + ".speedup_vs_1", row.get("speedup_vs_1"))
        elif schema == "simd_speedup":
            base = "kernel.simd.%s.t%d" % (
                row.get("kernel", "?"), int(row.get("threads", 1)))
            add(base + ".off_sec", row.get("off_sec"))
            add(base + ".auto_sec", row.get("auto_sec"))
            add(base + ".speedup_vs_off", row.get("speedup_vs_off"))
        elif schema == "dp_candidate_speedup":
            base = "kernel.dp_candidate_eval.t%d" % int(row.get("threads", 1))
            add(base + ".full_sec", row.get("full_sec"))
            add(base + ".incremental_sec", row.get("incremental_sec"))
            add(base + ".speedup_vs_full", row.get("speedup_vs_full"))
        elif schema == "profile_region":
            base = "region.%s.%s.%s" % (
                row.get("bench", "?"), row.get("flow", "?"), row.get("region", "?"))
            for m in REGION_METRICS:
                add("%s.%s" % (base, m), row.get(m))
        elif schema == "event_bus_overhead":
            for m in ("events_per_sec", "emit_ns", "emit_streamed_ns",
                      "flow_off_sec", "flow_on_sec", "overhead_ratio"):
                add("eventbus.%s" % m, row.get(m))
        elif schema == "resource_sampler_overhead":
            # samples_taken stays in the raw row but is not trended — the
            # count tracks wall time, which run-to-run noise moves freely.
            for m in ("flow_off_sec", "flow_on_sec", "overhead_ratio"):
                add("sampler.%s" % m, row.get(m))
        elif schema == "campaign_cell":
            base = "campaign.%s" % row.get("cell", "?")
            for m in ("hpwl_median", "rc_median", "overflow_median",
                      "runtime_median_sec"):
                add("%s.%s" % (base, m), row.get(m))
        elif "schema_version" in row and "design" in row:
            base = "flow.%s.%s" % (row["design"].get("name", "?"), row.get("mode", "?"))
            ev = row.get("eval", {})
            add(base + ".hpwl", ev.get("hpwl"))
            add(base + ".scaled_hpwl", ev.get("scaled_hpwl"))
            add(base + ".rc", ev.get("congestion", {}).get("rc"))
            add(base + ".stage_total_sec", row.get("stage_total_sec"))
        # Unknown rows are skipped: the JSONL stream is append-only and a
        # newer producer must not break an older aggregator.
    return acc


def cmd_aggregate(args):
    date = args.date or time.strftime("%Y%m%d")
    rows = rows_from_jsonl(args.input)
    acc = metrics_from_rows(rows)
    if not acc:
        fail("no recognized metrics in '%s'" % args.input)
    metrics = {
        key: {
            "value": sum(vals) / len(vals),
            "kind": metric_kind(key),
            "n": len(vals),
        }
        for key, vals in sorted(acc.items())
    }
    doc = {
        "schema": "bench_trend",
        "version": 1,
        "date": date,
        "rows": len(rows),
        "metrics": metrics,
    }
    out = args.out or ("BENCH_%s.json" % date)
    with open(out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print("bench_trend: wrote %s (%d metrics from %d rows)" % (out, len(metrics), len(rows)))
    return 0


# ------------------------------------------------------------------- compare


def load_trend(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail("cannot load trend file '%s': %s" % (path, e))
    if doc.get("schema") != "bench_trend" or "metrics" not in doc:
        fail("'%s' is not a bench_trend file" % path)
    # Validate up front so a malformed entry fails with a named metric, not
    # a KeyError traceback deep inside the comparison loop.
    for key, entry in doc["metrics"].items():
        if not isinstance(entry, dict) or isinstance(entry.get("value"), bool) \
                or not isinstance(entry.get("value"), (int, float)):
            fail("'%s': metric '%s' has no numeric 'value'" % (path, key))
    return doc


def metric_family(key):
    """First key segment: the producer group a metric belongs to."""
    return key.split(".", 1)[0]


def cmd_compare(args):
    base = load_trend(args.baseline)
    cur = load_trend(args.current)
    bm, cm = base["metrics"], cur["metrics"]

    regressions, improvements, checked = [], [], 0

    # Absolute-limit metrics gate on the current file alone (and are checked
    # even when the baseline predates them).
    for key in sorted(cm):
        limit = metric_limit(key)
        if limit is None:
            continue
        c = cm[key]["value"]
        checked += 1
        if c > limit:
            regressions.append((key, limit, c, c / limit))

    # Speedup metrics carry an absolute floor on the current file alone: a
    # dispatched kernel that lost to its scalar/full reference fails even if
    # the baseline never measured it.
    for key in sorted(cm):
        if metric_kind(key) != "speedup":
            continue
        c = cm[key]["value"]
        checked += 1
        if c < SPEEDUP_FLOOR - args.time_tol:
            regressions.append((key, SPEEDUP_FLOOR, c, c / SPEEDUP_FLOOR))

    for key in sorted(set(bm) & set(cm)):
        b, c = bm[key]["value"], cm[key]["value"]
        kind = bm[key].get("kind", metric_kind(key))
        if kind == "limit":
            continue  # gated absolutely above
        if kind == "time" and args.scale_time != 1.0:
            c *= args.scale_time  # testing aid: synthetic slowdown injection
        tol = args.quality_tol if kind == "quality" else args.time_tol
        checked += 1
        if b == 0.0:
            continue
        ratio = c / b
        if kind in ("higher_better", "speedup"):
            if ratio < 1.0 - tol:
                regressions.append((key, b, c, ratio))
            elif ratio > 1.0 + tol:
                improvements.append((key, b, c, ratio))
        else:  # time / quality: lower is better
            if ratio > 1.0 + tol:
                regressions.append((key, b, c, ratio))
            elif ratio < 1.0 - tol:
                improvements.append((key, b, c, ratio))

    only_base = sorted(set(bm) - set(cm))
    only_cur = sorted(set(cm) - set(bm))
    missing_families = sorted({metric_family(k) for k in bm}
                              - {metric_family(k) for k in cm})
    new_families = sorted({metric_family(k) for k in cm}
                          - {metric_family(k) for k in bm})

    print("bench_trend: %s (%s) vs %s (%s): %d shared metrics" %
          (args.baseline, base.get("date", "?"), args.current, cur.get("date", "?"), checked))
    for key, b, c, ratio in improvements:
        print("  IMPROVED   %-55s %.4g -> %.4g (%.2fx)" % (key, b, c, ratio))
    for fam in new_families:
        print("  NEW FAMILY %s.* (not in the baseline; will be gated once "
              "baselined)" % fam)
    for key in only_base:
        print("  DROPPED    %s" % key)
    for key in only_cur:
        print("  NEW        %s" % key)
    for key, b, c, ratio in regressions:
        print("  REGRESSED  %-55s %.4g -> %.4g (%.2fx)" % (key, b, c, ratio))

    if missing_families:
        print("bench_trend: FAIL — baseline metric family(ies) missing from "
              "the fresh file: %s. A whole family vanishing means its "
              "producer stopped emitting rows (bench not run, schema "
              "renamed, or $RP_BENCH_JSON truncated) — re-run the bench or "
              "re-baseline deliberately." % ", ".join(missing_families),
              file=sys.stderr)
        return 1
    if checked == 0:
        print("bench_trend: FAIL — no shared metrics to compare", file=sys.stderr)
        return 1
    if regressions:
        print("bench_trend: FAIL — %d metric(s) regressed beyond tolerance "
              "(time ±%.0f%%, quality ±%.0f%%)" %
              (len(regressions), args.time_tol * 100, args.quality_tol * 100),
              file=sys.stderr)
        return 1
    print("bench_trend: OK — no regressions (%d improved, %d new, %d dropped)" %
          (len(improvements), len(only_cur), len(only_base)))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="cmd", required=True)

    agg = sub.add_parser("aggregate", help="bench JSONL -> BENCH_<date>.json")
    agg.add_argument("--input", required=True, help="JSONL file ($RP_BENCH_JSON)")
    agg.add_argument("--out", help="output path (default BENCH_<date>.json)")
    agg.add_argument("--date", help="override the date stamp (YYYYMMDD)")
    agg.set_defaults(fn=cmd_aggregate)

    cmp_ = sub.add_parser("compare", help="gate a trend file against a baseline")
    cmp_.add_argument("--baseline", required=True)
    cmp_.add_argument("--current", required=True)
    cmp_.add_argument("--time-tol", type=float, default=0.15,
                      help="relative tolerance for time/ratio metrics (default 0.15)")
    cmp_.add_argument("--quality-tol", type=float, default=0.01,
                      help="relative tolerance for quality metrics (default 0.01)")
    cmp_.add_argument("--scale-time", type=float, default=1.0,
                      help="multiply current time metrics (smoke-test injection)")
    cmp_.set_defaults(fn=cmd_compare)

    args = ap.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
