#!/usr/bin/env python3
"""bench_smoke ctest: the perf-regression gate works end to end.

Runs the micro-kernel bench binary just far enough to emit its JSONL speedup
rows (a non-matching --benchmark_filter skips the google-benchmark timing
loops; the custom main() always runs the thread-sweep emitter), then drives
scripts/bench_trend.py through the full gate cycle:

  1. aggregate the JSONL into a BENCH_<date>.json trend file,
  2. compare it against itself            -> must PASS (exit 0),
  3. compare with a synthetic 25% slowdown injected into every time metric
     (--scale-time 1.25)                  -> must FAIL (nonzero exit).

Usage: bench_smoke.py <bench_micro_kernels> <bench_trend.py>
"""

import os
import subprocess
import sys
import tempfile


def run(cmd, env=None, expect_fail=False):
    print("+ %s" % " ".join(cmd), flush=True)
    r = subprocess.run(cmd, env=env, stdout=subprocess.PIPE,
                       stderr=subprocess.STDOUT, text=True)
    sys.stdout.write(r.stdout)
    if expect_fail and r.returncode == 0:
        print("FAIL: expected nonzero exit from: %s" % " ".join(cmd))
        sys.exit(1)
    if not expect_fail and r.returncode != 0:
        print("FAIL: exit %d from: %s" % (r.returncode, " ".join(cmd)))
        sys.exit(1)
    return r.stdout


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(2)
    bench_bin, trend_py = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory(prefix="rp_bench_smoke_") as tmp:
        jsonl = os.path.join(tmp, "bench.jsonl")
        trend = os.path.join(tmp, "BENCH_smoke.json")

        env = dict(os.environ)
        env["RP_BENCH_JSON"] = jsonl
        env["RP_BENCH_QUICK"] = "1"
        # Skip every registered google-benchmark (none match); only the
        # speedup-row emitter runs, which is what the gate consumes.
        run([bench_bin, "--benchmark_filter=^$"], env=env)
        if not os.path.exists(jsonl) or os.path.getsize(jsonl) == 0:
            print("FAIL: bench binary emitted no JSONL at %s" % jsonl)
            sys.exit(1)

        run([sys.executable, trend_py, "aggregate", "--input", jsonl,
             "--out", trend, "--date", "00000000"])

        # Self-comparison: identical trend files never regress.
        run([sys.executable, trend_py, "compare",
             "--baseline", trend, "--current", trend])

        # Injected 25% slowdown on time metrics must trip the 15% gate.
        out = run([sys.executable, trend_py, "compare",
                   "--baseline", trend, "--current", trend,
                   "--scale-time", "1.25"], expect_fail=True)
        if "REGRESSED" not in out:
            print("FAIL: injected slowdown not reported as REGRESSED")
            sys.exit(1)

    print("bench_smoke: OK")


if __name__ == "__main__":
    main()
