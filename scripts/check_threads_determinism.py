#!/usr/bin/env python3
"""Determinism gate for the parallel + SIMD + incremental kernels.

Runs the full flow on the same generated design across the configuration
matrix the determinism contract covers, and demands that everything
observable is IDENTICAL between every pair:

  run_1: --threads 1,     RP_SIMD=off,  --incremental-eval off
  run_n: --threads <max>, RP_SIMD=auto, --incremental-eval on, --profile
  run_s: --threads 1,     RP_SIMD=auto, --incremental-eval on,
         RP_CHECK_INCREMENTAL=1 (every cached/trialed cost self-verifies
         against a from-scratch recompute and aborts on a bit mismatch)

run_1 vs run_n proves thread- AND vector- AND incremental- AND profiler-
invariance in one comparison; run_1 vs run_s isolates the SIMD/incremental
axes at a fixed thread count with the cross-checker armed. Identical means:

1. the .pl placement files are byte-identical;
2. every snapshot artifact (manifests, grids, convergence history) is
   byte-identical;
3. rp_report_diff reports zero differences between the run reports (its
   default ignore list covers the "parallel" and "simd" provenance blocks,
   the only sections allowed to differ);
4. a strict Python comparison of the reports after dropping only the
   documented volatile keys (timings, RSS, build stamp, output paths,
   parallel + simd + profile blocks) — so a new thread- or dispatch-
   dependent field can't hide behind a loose tolerance;
5. the --progress-ndjson event streams match line for line once the two
   documented volatile fields per line ("seq", "t_ms") are dropped —
   event PAYLOADS are part of the determinism contract
   (util/event_bus.hpp). Interleaved "rp_resource" sampler lines are
   wall-clock telemetry and excluded (the sampler stays ENABLED in these
   runs precisely to prove it cannot perturb placement).

Usage: check_threads_determinism.py <routplace> <rp_report_diff> [threads]
Exit code 0 on success. `threads` defaults to max(4, hardware).
"""

import filecmp
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []

# Keys that legitimately differ between two identical runs (mirrors
# report_diff_default_ignores() in src/core/report_diff.cpp). "profile" is
# here because only run_n is profiled — the block's presence itself must be
# ignorable; "simd" carries the requested/active dispatch level and the
# incremental-eval switch, which differ across the matrix by construction.
VOLATILE_KEYS = {"stage_times", "stage_total_sec", "peak_rss_kb", "build",
                 "snapshot_dir", "parallel", "simd", "profile", "resources"}


def check(cond, what):
    if not cond:
        FAILURES.append(what)
    return cond


def scrub(doc):
    """Drop volatile keys (top level + counter names with a volatile prefix)."""
    out = {k: v for k, v in doc.items() if k not in VOLATILE_KEYS}
    for section in ("counters", "gauges"):
        if section in out:
            out[section] = {k: v for k, v in out[section].items()
                            if not k.startswith("parallel.")}
    return out


NDJSON_VOLATILE = {"seq", "t_ms"}  # stamped by emit(); everything else is payload


def ndjson_payloads(path):
    """Parse an NDJSON stream into per-line dicts with the volatile stamp
    fields removed — what the determinism contract says must match. Lines
    from other schemas ("rp_resource", the wall-clock resource sampler) are
    interleaved by a background thread and excluded from the contract."""
    lines = []
    for raw in Path(path).read_text().splitlines():
        obj = json.loads(raw)
        if obj.get("schema") != "rp_progress":
            continue
        lines.append({k: v for k, v in obj.items() if k not in NDJSON_VOLATILE})
    return lines


def run_flow(routplace, outdir, threads, profile=False, env=None,
             extra_args=()):
    outdir.mkdir()
    report = outdir / "run.report.json"
    snap = outdir / "snapshots"
    cmd = [str(routplace), "--gen", "700", "--seed", "13", "--rounds", "2",
           "--threads", str(threads), "--out", str(outdir / "out.pl"),
           "--report-json", str(report), "--snapshot-dir", str(snap),
           "--progress-ndjson", str(outdir / "progress.ndjson")]
    cmd += list(extra_args)
    if profile:
        cmd.append("--profile")
    run_env = dict(os.environ)
    run_env.update(env or {})
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=280,
                          env=run_env)
    label = outdir.name
    if not check(proc.returncode == 0,
                 f"routplace [{label}] exited {proc.returncode}:\n"
                 f"{proc.stderr[-2000:]}"):
        return None
    check(report.exists(), f"[{label}]: report not written")
    check((snap / "manifest.json").exists(),
          f"[{label}]: snapshots not written")
    return outdir


def compare_trees(dir_a, dir_b):
    """Byte-compare every file present in either tree (recursive)."""
    files_a = {p.relative_to(dir_a) for p in dir_a.rglob("*") if p.is_file()}
    files_b = {p.relative_to(dir_b) for p in dir_b.rglob("*") if p.is_file()}
    check(files_a == files_b,
          f"file sets differ ({dir_a.name} vs {dir_b.name}): "
          f"only-a={sorted(map(str, files_a - files_b))} "
          f"only-b={sorted(map(str, files_b - files_a))}")
    for rel in sorted(files_a & files_b):
        if rel.name == "run.report.json" or rel.suffix == ".ndjson":
            continue  # reports/streams are compared semantically below
        check(filecmp.cmp(dir_a / rel, dir_b / rel, shallow=False),
              f"'{rel}' differs between {dir_a.name} and {dir_b.name}")


def compare_runs(report_diff, run_a, run_b):
    """Apply checks 1-5 of the contract to one pair of runs."""
    pair = f"{run_a.name} vs {run_b.name}"
    compare_trees(run_a, run_b)

    # rp_report_diff must see zero differences (reports + snapshots).
    proc = subprocess.run(
        [str(report_diff), str(run_a / "run.report.json"),
         str(run_b / "run.report.json"),
         "--snapshots", str(run_a / "snapshots"), str(run_b / "snapshots")],
        capture_output=True, text=True, timeout=120)
    check(proc.returncode == 0,
          f"rp_report_diff [{pair}] exited {proc.returncode}:\n"
          f"{proc.stdout[-2000:]}")
    check("identical" in proc.stdout,
          f"rp_report_diff [{pair}] did not report 'identical':\n"
          f"{proc.stdout[-2000:]}")

    # Strict comparison: everything outside the documented volatile keys
    # must match EXACTLY (no tolerance).
    doc_a = scrub(json.loads((run_a / "run.report.json").read_text()))
    doc_b = scrub(json.loads((run_b / "run.report.json").read_text()))
    check(doc_a == doc_b,
          f"scrubbed reports differ [{pair}] exactly where they must not "
          "(run with rp_report_diff for details)")

    # Event-stream determinism: identical payload sequences (the stream is
    # written by the flow's main thread, so the configuration must not
    # change what — or in which order — events are emitted).
    ev_a = ndjson_payloads(run_a / "progress.ndjson")
    ev_b = ndjson_payloads(run_b / "progress.ndjson")
    check(len(ev_a) == len(ev_b),
          f"progress streams differ in length [{pair}]: "
          f"{len(ev_a)} vs {len(ev_b)}")
    if len(ev_a) == len(ev_b):
        for i, (a, b) in enumerate(zip(ev_a, ev_b)):
            if not check(a == b,
                         f"progress line {i + 1} payload differs [{pair}]:\n"
                         f"  a: {a}\n  b: {b}"):
                break
    check(len(ev_a) > 0, f"progress stream is empty [{pair}]")


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__)
        return 2
    routplace, report_diff = Path(sys.argv[1]), Path(sys.argv[2])
    for p in (routplace, report_diff):
        if not p.exists():
            print(f"check_threads_determinism: '{p}' not found")
            return 2
    max_threads = int(sys.argv[3]) if len(sys.argv) == 4 \
        else max(4, os.cpu_count() or 1)

    with tempfile.TemporaryDirectory(prefix="rp_threads_det_") as tmp:
        tmp = Path(tmp)
        run_1 = run_flow(routplace, tmp / "t1", 1,
                         env={"RP_SIMD": "off"},
                         extra_args=["--incremental-eval", "off"])
        run_n = run_flow(routplace, tmp / "tN", max_threads, profile=True,
                         env={"RP_SIMD": "auto"},
                         extra_args=["--incremental-eval", "on"])
        run_s = run_flow(routplace, tmp / "t1simd", 1,
                         env={"RP_SIMD": "auto", "RP_CHECK_INCREMENTAL": "1"},
                         extra_args=["--incremental-eval", "on"])
        if run_1 is None or run_n is None or run_s is None:
            print("\n".join(FAILURES))
            return 1

        compare_runs(report_diff, run_1, run_n)
        compare_runs(report_diff, run_1, run_s)

        # Sanity: the runs really exercised the asymmetric configurations
        # (the asymmetry is the point).
        rep_1 = json.loads((run_1 / "run.report.json").read_text())
        rep_n = json.loads((run_n / "run.report.json").read_text())
        rep_s = json.loads((run_s / "run.report.json").read_text())
        check(rep_n["parallel"]["threads"] == max_threads,
              f"report says threads={rep_n['parallel']['threads']}, "
              f"expected {max_threads}")
        check("profile" in rep_n, "tN run has no 'profile' block")
        check("profile" not in rep_1, "t1 run unexpectedly has a 'profile' block")
        check(rep_1["simd"]["requested"] == "off"
              and rep_1["simd"]["active"] == "scalar",
              f"t1 run did not run scalar kernels: {rep_1['simd']}")
        check(rep_n["simd"]["requested"] == "auto",
              f"tN run did not request auto dispatch: {rep_n['simd']}")
        check(rep_1["simd"]["incremental_eval"] is False,
              "t1 run unexpectedly used incremental eval")
        check(rep_n["simd"]["incremental_eval"] is True
              and rep_s["simd"]["incremental_eval"] is True,
              "tN/t1simd runs did not use incremental eval")

    if FAILURES:
        print("check_threads_determinism: FAILED")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print(f"check_threads_determinism: OK (threads 1/{max_threads} x "
          f"RP_SIMD off/auto x incremental off/on: placement, snapshots, "
          f"and report all identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
