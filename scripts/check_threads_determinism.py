#!/usr/bin/env python3
"""Determinism gate for the parallel kernels.

Runs the full flow twice on the same generated design — once with
--threads 1 and once with --threads <max> --profile (the profiled config:
one comparison proves both thread- AND profiler-invariance at no extra
runtime) — and demands that everything observable is IDENTICAL:

1. the .pl placement files are byte-identical;
2. every snapshot artifact (manifests, grids, convergence history) is
   byte-identical;
3. rp_report_diff reports zero differences between the two run reports
   (its default ignore list covers the "parallel" provenance block, the
   only section allowed to differ);
4. a strict Python comparison of the two reports after dropping only the
   documented volatile keys (timings, RSS, build stamp, output paths,
   parallel + profile blocks) — so a new thread-dependent field can't hide
   behind a loose tolerance;
5. the --progress-ndjson event streams match line for line once the two
   documented volatile fields per line ("seq", "t_ms") are dropped —
   event PAYLOADS are part of the determinism contract
   (util/event_bus.hpp).

Usage: check_threads_determinism.py <routplace> <rp_report_diff> [threads]
Exit code 0 on success. `threads` defaults to max(4, hardware).
"""

import filecmp
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []

# Keys that legitimately differ between two identical runs (mirrors
# report_diff_default_ignores() in src/core/report_diff.cpp). "profile" is
# here because the t1 run is unprofiled and the tN run profiled — the block's
# presence itself must be ignorable.
VOLATILE_KEYS = {"stage_times", "stage_total_sec", "peak_rss_kb", "build",
                 "snapshot_dir", "parallel", "profile"}


def check(cond, what):
    if not cond:
        FAILURES.append(what)
    return cond


def scrub(doc):
    """Drop volatile keys (top level + counter names with a volatile prefix)."""
    out = {k: v for k, v in doc.items() if k not in VOLATILE_KEYS}
    for section in ("counters", "gauges"):
        if section in out:
            out[section] = {k: v for k, v in out[section].items()
                            if not k.startswith("parallel.")}
    return out


NDJSON_VOLATILE = {"seq", "t_ms"}  # stamped by emit(); everything else is payload


def ndjson_payloads(path):
    """Parse an NDJSON stream into per-line dicts with the volatile stamp
    fields removed — what the determinism contract says must match."""
    lines = []
    for raw in Path(path).read_text().splitlines():
        obj = json.loads(raw)
        lines.append({k: v for k, v in obj.items() if k not in NDJSON_VOLATILE})
    return lines


def run_flow(routplace, outdir, threads, profile=False):
    outdir.mkdir()
    report = outdir / "run.report.json"
    snap = outdir / "snapshots"
    cmd = [str(routplace), "--gen", "700", "--seed", "13", "--rounds", "2",
           "--threads", str(threads), "--out", str(outdir / "out.pl"),
           "--report-json", str(report), "--snapshot-dir", str(snap),
           "--progress-ndjson", str(outdir / "progress.ndjson")]
    if profile:
        cmd.append("--profile")
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=280)
    if not check(proc.returncode == 0,
                 f"routplace --threads {threads} exited {proc.returncode}:\n"
                 f"{proc.stderr[-2000:]}"):
        return None
    check(report.exists(), f"--threads {threads}: report not written")
    check((snap / "manifest.json").exists(),
          f"--threads {threads}: snapshots not written")
    return outdir


def compare_trees(dir_a, dir_b):
    """Byte-compare every file present in either tree (recursive)."""
    files_a = {p.relative_to(dir_a) for p in dir_a.rglob("*") if p.is_file()}
    files_b = {p.relative_to(dir_b) for p in dir_b.rglob("*") if p.is_file()}
    check(files_a == files_b,
          f"file sets differ: only-1t={sorted(map(str, files_a - files_b))} "
          f"only-Nt={sorted(map(str, files_b - files_a))}")
    for rel in sorted(files_a & files_b):
        if rel.name == "run.report.json" or rel.suffix == ".ndjson":
            continue  # reports/streams are compared semantically below
        check(filecmp.cmp(dir_a / rel, dir_b / rel, shallow=False),
              f"'{rel}' differs between thread counts")


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__)
        return 2
    routplace, report_diff = Path(sys.argv[1]), Path(sys.argv[2])
    for p in (routplace, report_diff):
        if not p.exists():
            print(f"check_threads_determinism: '{p}' not found")
            return 2
    max_threads = int(sys.argv[3]) if len(sys.argv) == 4 \
        else max(4, os.cpu_count() or 1)

    with tempfile.TemporaryDirectory(prefix="rp_threads_det_") as tmp:
        tmp = Path(tmp)
        run_1 = run_flow(routplace, tmp / "t1", 1)
        run_n = run_flow(routplace, tmp / "tN", max_threads, profile=True)
        if run_1 is None or run_n is None:
            print("\n".join(FAILURES))
            return 1

        compare_trees(run_1, run_n)

        # rp_report_diff must see zero differences (reports + snapshots).
        proc = subprocess.run(
            [str(report_diff), str(run_1 / "run.report.json"),
             str(run_n / "run.report.json"),
             "--snapshots", str(run_1 / "snapshots"), str(run_n / "snapshots")],
            capture_output=True, text=True, timeout=120)
        check(proc.returncode == 0,
              f"rp_report_diff exited {proc.returncode}:\n{proc.stdout[-2000:]}")
        check("identical" in proc.stdout,
              f"rp_report_diff did not report 'identical':\n{proc.stdout[-2000:]}")

        # Strict comparison: everything outside the documented volatile keys
        # must match EXACTLY (no tolerance).
        doc_1 = scrub(json.loads((run_1 / "run.report.json").read_text()))
        doc_n = scrub(json.loads((run_n / "run.report.json").read_text()))
        check(doc_1 == doc_n,
              "scrubbed reports differ exactly where they must not "
              "(run with rp_report_diff for details)")

        # Event-stream determinism: identical payload sequences (the stream
        # is written by the flow's main thread, so thread count must not
        # change what — or in which order — events are emitted).
        ev_1 = ndjson_payloads(run_1 / "progress.ndjson")
        ev_n = ndjson_payloads(run_n / "progress.ndjson")
        check(len(ev_1) == len(ev_n),
              f"progress streams differ in length: {len(ev_1)} vs {len(ev_n)}")
        if len(ev_1) == len(ev_n):
            for i, (a, b) in enumerate(zip(ev_1, ev_n)):
                if not check(a == b,
                             f"progress line {i + 1} payload differs:\n"
                             f"  t1: {a}\n  tN: {b}"):
                    break
        check(len(ev_1) > 0, "progress stream is empty")

        # Sanity: the N-thread run really used N threads and was profiled,
        # while the 1-thread run was not (the asymmetry is the point).
        rep_n = json.loads((run_n / "run.report.json").read_text())
        check(rep_n["parallel"]["threads"] == max_threads,
              f"report says threads={rep_n['parallel']['threads']}, "
              f"expected {max_threads}")
        check("profile" in rep_n, "tN run has no 'profile' block")
        check("profile" not in json.loads((run_1 / "run.report.json").read_text()),
              "t1 run unexpectedly has a 'profile' block")

    if FAILURES:
        print("check_threads_determinism: FAILED")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print(f"check_threads_determinism: OK (--threads 1 == --threads "
          f"{max_threads}: placement, snapshots, and report all identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
