#!/usr/bin/env python3
"""Telemetry contract check for the routplace binary.

Runs `routplace --gen ... --report-json ... --trace-json ...` on a small
generated design and validates:
  * the run report against the schema documented in DESIGN.md
    ("Observability"), including cross-checks between the report and the
    summary the binary printed;
  * the trace file as a loadable Chrome trace-event document with spans for
    every flow stage, each multilevel level, and each routability round.

Usage: check_report.py /path/to/routplace [--keep]
Exit code 0 on success; prints every failed expectation otherwise.
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []


def check(cond, what):
    if not cond:
        FAILURES.append(what)
    return cond


def expect_keys(obj, keys, where):
    for k in keys:
        check(k in obj, f"{where}: missing key '{k}'")


def validate_report(report, stdout_text):
    expect_keys(report, [
        "schema_version", "tool", "design", "mode", "options", "eval", "gp",
        "gp_trace", "macro_legal", "legal", "dp", "stage_times",
        "stage_total_sec", "counters", "gauges", "peak_rss_kb",
    ], "report")
    if FAILURES:
        return

    check(report["schema_version"] == 1, "report: schema_version != 1")
    check(report["tool"] == "routplace", "report: tool != routplace")

    design = report["design"]
    expect_keys(design, ["name", "source", "seed", "cells", "nets", "macros",
                         "die_w", "die_h", "row_height"], "report.design")
    check(design["cells"] > 0, "report.design.cells not positive")

    ev = report["eval"]
    expect_keys(ev, ["hpwl", "scaled_hpwl", "congestion", "route", "legality"],
                "report.eval")
    expect_keys(ev["congestion"], ["rc", "ace_005", "ace_1", "ace_2", "ace_5",
                                   "total_overflow", "overflowed_edges",
                                   "peak_utilization"], "report.eval.congestion")
    check(ev["hpwl"] > 0, "report.eval.hpwl not positive")
    check(ev["scaled_hpwl"] >= ev["hpwl"] - 1e-9,
          "report.eval.scaled_hpwl < hpwl")
    check(ev["legality"]["ok"] is True, "report.eval.legality.ok is not true")

    # Cross-check the report against the human-readable summary: the binary
    # prints HPWL/scaled HPWL/RC with %.4e / %.1f — the JSON must round to
    # the same strings.
    m = re.search(r"HPWL\s+([0-9.e+-]+)", stdout_text)
    if check(m is not None, "stdout: no HPWL line"):
        check(f"{ev['hpwl']:.4e}" == m.group(1),
              f"HPWL mismatch: report {ev['hpwl']:.4e} vs printed {m.group(1)}")
    m = re.search(r"scaled HPWL\s+([0-9.e+-]+)", stdout_text)
    if check(m is not None, "stdout: no scaled HPWL line"):
        check(f"{ev['scaled_hpwl']:.4e}" == m.group(1),
              f"scaled HPWL mismatch: report {ev['scaled_hpwl']:.4e} "
              f"vs printed {m.group(1)}")
    m = re.search(r"RC\s+([0-9.]+)", stdout_text)
    if check(m is not None, "stdout: no RC line"):
        check(f"{ev['congestion']['rc']:.1f}" == m.group(1),
              f"RC mismatch: report {ev['congestion']['rc']:.1f} "
              f"vs printed {m.group(1)}")

    gp = report["gp"]
    expect_keys(gp, ["final_hpwl", "final_overflow", "total_outer", "levels",
                     "inflation_rounds", "mean_inflation"], "report.gp")
    check(gp["total_outer"] > 0, "report.gp.total_outer not positive")
    check(len(report["gp_trace"]) >= gp["levels"],
          "report.gp_trace shorter than the level count")
    for pt in report["gp_trace"][:3]:
        expect_keys(pt, ["level", "outer", "hpwl", "overflow", "lambda",
                         "inflation"], "report.gp_trace[i]")

    check(report["counters"].get("gp.outer_iters", 0) > 0,
          "report.counters.gp.outer_iters not positive")
    check(report["counters"].get("solver.cg_iters", 0) > 0,
          "report.counters.solver.cg_iters not positive")
    check(report["stage_total_sec"] > 0, "report.stage_total_sec not positive")
    check(report["peak_rss_kb"] > 0, "report.peak_rss_kb not positive")
    for stage in ("global", "legal", "eval"):
        check(stage in report["stage_times"],
              f"report.stage_times missing '{stage}'")


def validate_trace(trace, gp_levels, rounds):
    check("traceEvents" in trace, "trace: missing traceEvents")
    events = trace.get("traceEvents", [])
    check(len(events) > 0, "trace: no events")
    names = set()
    for e in events:
        expect_keys(e, ["name", "ph", "ts", "dur", "pid", "tid"], "trace event")
        if "ph" in e:
            check(e["ph"] == "X", f"trace event '{e.get('name')}' not a complete event")
        names.add(e.get("name"))
    for stage in ("flow", "global", "macro_legal", "legal", "detailed", "eval"):
        check(stage in names, f"trace: missing flow-stage span '{stage}'")
    for lvl in range(gp_levels):
        check(f"gp/level{lvl}" in names, f"trace: missing span 'gp/level{lvl}'")
    for rnd in range(1, rounds + 1):
        check(f"gp/routability/round{rnd}" in names,
              f"trace: missing span 'gp/routability/round{rnd}'")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    binary = Path(sys.argv[1])
    if not binary.exists():
        print(f"check_report: binary '{binary}' not found")
        return 2

    rounds = 2
    with tempfile.TemporaryDirectory(prefix="rp_check_report_") as tmp:
        tmp = Path(tmp)
        report_path = tmp / "run.report.json"
        trace_path = tmp / "run.trace.json"
        cmd = [str(binary), "--gen", "600", "--seed", "7", "--rounds",
               str(rounds), "--out", str(tmp / "out.pl"),
               "--report-json", str(report_path),
               "--trace-json", str(trace_path)]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=280)
        if not check(proc.returncode == 0,
                     f"routplace exited {proc.returncode}:\n{proc.stderr[-2000:]}"):
            print("\n".join(FAILURES))
            return 1
        if not check(report_path.exists(), "report file not written") or \
           not check(trace_path.exists(), "trace file not written"):
            print("\n".join(FAILURES))
            return 1

        try:
            report = json.loads(report_path.read_text())
        except json.JSONDecodeError as e:
            print(f"report is not valid JSON: {e}")
            return 1
        try:
            trace = json.loads(trace_path.read_text())
        except json.JSONDecodeError as e:
            print(f"trace is not valid JSON: {e}")
            return 1

        validate_report(report, proc.stdout)
        # Inflation may converge early; only require the rounds that ran.
        ran_rounds = min(rounds, report.get("gp", {}).get("inflation_rounds", 0))
        validate_trace(trace, report.get("gp", {}).get("levels", 0), ran_rounds)

    if FAILURES:
        print("check_report: FAILED")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("check_report: OK (report + trace schema-valid and consistent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
