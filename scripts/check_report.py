#!/usr/bin/env python3
"""Telemetry contract check for the routplace binary.

Runs `routplace --gen ... --profile --report-json ... --trace-json ...
--snapshot-dir` on a small generated design and validates:
  * the run report against the schema documented in DESIGN.md
    ("Observability"), including cross-checks between the report and the
    summary the binary printed; any NaN/Inf anywhere in the report is an
    error (the C++ JSON writer must emit null for non-finite values, and no
    metric is allowed to be null);
  * the "profile" block (schema v2): enough regions, per-region histogram
    bucket monotonicity, quantile ordering p50<=p95<=p99<=max, and per-worker
    busy+wait summing to the pool's region wall time;
  * the "resources" block (schema v5, resource timeline sampler): monotone
    sample timestamps, peaks dominating every kept sample, pool_busy a
    fraction in [0,1], and samples_taken >= the kept (downsampled) count;
  * the trace file as a loadable Chrome trace-event document with spans for
    every flow stage, each multilevel level, and each routability round, plus
    per-worker pool/chunk spans on named worker lanes;
  * the snapshot directory: manifest schema, grid-file sizes matching the
    declared dimensions, and the convergence history schema;
  * the failure contract (schema v3): a malformed Bookshelf benchmark must
    exit 3 (ParseError) and still write a report whose "error" block carries
    code/message/where (file:line)/stage/exit_code, plus a "parse" block with
    the parse mode and repair counters.

Usage: check_report.py /path/to/routplace [--keep]
Exit code 0 on success; prints every failed expectation otherwise.
"""

import json
import math
import re
import struct
import subprocess
import sys
import tempfile
from pathlib import Path

FAILURES = []


def load_json_strict(path, what):
    """json.loads that rejects NaN/Infinity literals instead of accepting
    them (Python's default is more lenient than the JSON spec)."""
    def bad_constant(name):
        FAILURES.append(f"{what}: non-finite constant '{name}' in JSON")
        return 0.0
    try:
        return json.loads(Path(path).read_text(), parse_constant=bad_constant)
    except json.JSONDecodeError as e:
        FAILURES.append(f"{what}: not valid JSON: {e}")
        return None


def check_finite(obj, where):
    """Recursively fail on NaN/Inf floats anywhere in a parsed document."""
    if isinstance(obj, float):
        check(math.isfinite(obj), f"{where}: non-finite value {obj!r}")
    elif isinstance(obj, dict):
        for k, v in obj.items():
            check_finite(v, f"{where}.{k}")
    elif isinstance(obj, list):
        for i, v in enumerate(obj):
            check_finite(v, f"{where}[{i}]")


def check(cond, what):
    if not cond:
        FAILURES.append(what)
    return cond


def expect_keys(obj, keys, where):
    for k in keys:
        check(k in obj, f"{where}: missing key '{k}'")


def validate_report(report, stdout_text):
    expect_keys(report, [
        "schema_version", "tool", "build", "design", "mode", "parallel",
        "options", "eval", "gp", "gp_trace", "macro_legal", "legal", "dp",
        "stage_times", "stage_total_sec", "counters", "gauges", "peak_rss_kb",
        "snapshot_dir",
    ], "report")
    if FAILURES:
        return

    check(report["schema_version"] == 5, "report: schema_version != 5")
    check(report["tool"] == "routplace", "report: tool != routplace")

    # v4: the event-bus totals block.
    events = report.get("events")
    if check(isinstance(events, dict), "report.events missing or not an object"):
        expect_keys(events, ["emitted", "flight_capacity"], "report.events")
        check(events.get("emitted", 0) > 0, "report.events.emitted not positive")
        check(events.get("flight_capacity", 0) > 0,
              "report.events.flight_capacity not positive")
    check_finite(report, "report")

    build = report["build"]
    expect_keys(build, ["git_describe", "compiler", "build_type", "flags",
                        "cxx_standard"], "report.build")
    check(bool(build.get("git_describe")), "report.build.git_describe empty")
    check(bool(build.get("compiler")), "report.build.compiler empty")
    check(build.get("cxx_standard", 0) >= 202002,
          "report.build.cxx_standard is not C++20 or later")

    par = report["parallel"]
    expect_keys(par, ["threads", "hardware_threads", "regions", "chunks"],
                "report.parallel")
    check(par.get("threads", 0) >= 1, "report.parallel.threads < 1")
    check(par.get("hardware_threads", 0) >= 1,
          "report.parallel.hardware_threads < 1")
    check(par.get("regions", 0) > 0,
          "report.parallel.regions not positive (kernels never used the pool)")
    check(par.get("chunks", 0) >= par.get("regions", 0),
          "report.parallel.chunks < regions")

    design = report["design"]
    expect_keys(design, ["name", "source", "seed", "cells", "nets", "macros",
                         "die_w", "die_h", "row_height"], "report.design")
    check(design["cells"] > 0, "report.design.cells not positive")

    ev = report["eval"]
    expect_keys(ev, ["hpwl", "scaled_hpwl", "congestion", "route", "legality"],
                "report.eval")
    expect_keys(ev["congestion"], ["rc", "ace_005", "ace_1", "ace_2", "ace_5",
                                   "total_overflow", "overflowed_edges",
                                   "peak_utilization"], "report.eval.congestion")
    check(ev["hpwl"] > 0, "report.eval.hpwl not positive")
    check(ev["scaled_hpwl"] >= ev["hpwl"] - 1e-9,
          "report.eval.scaled_hpwl < hpwl")
    check(ev["legality"]["ok"] is True, "report.eval.legality.ok is not true")

    # Cross-check the report against the human-readable summary: the binary
    # prints HPWL/scaled HPWL/RC with %.4e / %.1f — the JSON must round to
    # the same strings.
    m = re.search(r"HPWL\s+([0-9.e+-]+)", stdout_text)
    if check(m is not None, "stdout: no HPWL line"):
        check(f"{ev['hpwl']:.4e}" == m.group(1),
              f"HPWL mismatch: report {ev['hpwl']:.4e} vs printed {m.group(1)}")
    m = re.search(r"scaled HPWL\s+([0-9.e+-]+)", stdout_text)
    if check(m is not None, "stdout: no scaled HPWL line"):
        check(f"{ev['scaled_hpwl']:.4e}" == m.group(1),
              f"scaled HPWL mismatch: report {ev['scaled_hpwl']:.4e} "
              f"vs printed {m.group(1)}")
    m = re.search(r"RC\s+([0-9.]+)", stdout_text)
    if check(m is not None, "stdout: no RC line"):
        check(f"{ev['congestion']['rc']:.1f}" == m.group(1),
              f"RC mismatch: report {ev['congestion']['rc']:.1f} "
              f"vs printed {m.group(1)}")

    gp = report["gp"]
    expect_keys(gp, ["final_hpwl", "final_overflow", "total_outer", "levels",
                     "inflation_rounds", "mean_inflation"], "report.gp")
    check(gp["total_outer"] > 0, "report.gp.total_outer not positive")
    check(len(report["gp_trace"]) >= gp["levels"],
          "report.gp_trace shorter than the level count")
    for pt in report["gp_trace"][:3]:
        expect_keys(pt, ["level", "outer", "hpwl", "overflow", "lambda",
                         "inflation"], "report.gp_trace[i]")

    check(report["counters"].get("gp.outer_iters", 0) > 0,
          "report.counters.gp.outer_iters not positive")
    check(report["counters"].get("solver.cg_iters", 0) > 0,
          "report.counters.solver.cg_iters not positive")
    check(report["stage_total_sec"] > 0, "report.stage_total_sec not positive")
    check(report["peak_rss_kb"] > 0, "report.peak_rss_kb not positive")
    for stage in ("global", "legal", "eval"):
        check(stage in report["stage_times"],
              f"report.stage_times missing '{stage}'")


def validate_trace(trace, gp_levels, rounds, threads):
    check("traceEvents" in trace, "trace: missing traceEvents")
    events = trace.get("traceEvents", [])
    check(len(events) > 0, "trace: no events")
    names = set()
    chunk_tids = set()
    thread_names = {}
    for e in events:
        if e.get("ph") == "M":
            expect_keys(e, ["name", "ph", "pid", "tid", "args"], "trace metadata")
            if e.get("name") == "thread_name":
                thread_names[e.get("tid")] = e.get("args", {}).get("name", "")
            continue
        expect_keys(e, ["name", "ph", "ts", "dur", "pid", "tid"], "trace event")
        if "ph" in e:
            check(e["ph"] == "X", f"trace event '{e.get('name')}' not a complete event")
        if e.get("name") == "pool/chunk":
            chunk_tids.add(e.get("tid"))
        else:
            check(e.get("tid") == 0,
                  f"trace: main-thread span '{e.get('name')}' on lane {e.get('tid')}")
        names.add(e.get("name"))
    for stage in ("flow", "global", "macro_legal", "legal", "detailed", "eval"):
        check(stage in names, f"trace: missing flow-stage span '{stage}'")
    for lvl in range(gp_levels):
        check(f"gp/level{lvl}" in names, f"trace: missing span 'gp/level{lvl}'")
    for rnd in range(1, rounds + 1):
        check(f"gp/routability/round{rnd}" in names,
              f"trace: missing span 'gp/routability/round{rnd}'")
    # Worker-lane contract: chunk spans ride real per-worker tids and every
    # lane is named by a thread_name metadata event (worker-0..N-1).
    check("pool/chunk" in names, "trace: no pool/chunk spans")
    check(any(t >= 1 for t in chunk_tids),
          f"trace: all pool/chunk spans on lane(s) {sorted(chunk_tids)} — "
          f"worker tids were collapsed (ran with {threads} threads)")
    check(all(0 <= t < threads for t in chunk_tids),
          f"trace: chunk tid out of range {sorted(chunk_tids)}")
    for t in sorted(chunk_tids):
        check(t in thread_names, f"trace: lane {t} has no thread_name metadata")
    check(thread_names.get(0, "").startswith("main"),
          "trace: lane 0 not named 'main (worker-0)'")
    for t in sorted(chunk_tids):
        if t >= 1:
            check(thread_names.get(t) == f"worker-{t}",
                  f"trace: lane {t} named '{thread_names.get(t)}'")


def validate_histogram(h, where):
    expect_keys(h, ["samples", "total_ms", "mean_us", "min_us", "p50_us",
                    "p95_us", "p99_us", "max_us", "buckets"], where)
    if FAILURES:
        return
    check(h["samples"] > 0, f"{where}: no samples")
    check(h["min_us"] <= h["mean_us"] <= h["max_us"] + 1e-9,
          f"{where}: mean outside [min, max]")
    check(h["min_us"] - 1e-9 <= h["p50_us"] <= h["p95_us"] + 1e-9,
          f"{where}: p50 > p95")
    check(h["p95_us"] <= h["p99_us"] + 1e-9, f"{where}: p95 > p99")
    check(h["p99_us"] <= h["max_us"] + 1e-9, f"{where}: p99 > max")
    buckets = h["buckets"]
    check(len(buckets) > 0, f"{where}: histogram has no buckets")
    total = 0
    prev_hi = -1.0
    for i, b in enumerate(buckets):
        expect_keys(b, ["lo_us", "hi_us", "count"], f"{where}.buckets[{i}]")
        if FAILURES:
            return
        check(b["lo_us"] < b["hi_us"], f"{where}.buckets[{i}]: lo >= hi")
        check(b["lo_us"] >= prev_hi - 1e-12,
              f"{where}.buckets[{i}]: overlaps previous bucket")
        check(b["count"] > 0, f"{where}.buckets[{i}]: empty bucket emitted")
        prev_hi = b["hi_us"]
        total += b["count"]
    check(total == h["samples"],
          f"{where}: bucket counts sum {total} != samples {h['samples']}")


def validate_profile(report, threads):
    if not check("profile" in report,
                 "report: no 'profile' block despite --profile"):
        return
    prof = report["profile"]
    expect_keys(prof, ["enabled", "regions", "pool"], "report.profile")
    if FAILURES:
        return
    check(prof["enabled"] is True, "report.profile.enabled is not true")

    regions = prof["regions"]
    check(len(regions) >= 6,
          f"report.profile: only {len(regions)} regions (expected >= 6)")
    for name in ("flow", "kernel/wirelength", "kernel/density", "kernel/cg",
                 "kernel/objective", "route/estimate"):
        check(name in regions, f"report.profile.regions missing '{name}'")
    for name, h in regions.items():
        validate_histogram(h, f"report.profile.regions[{name}]")

    pool = prof["pool"]
    expect_keys(pool, ["threads", "regions", "wall_ms", "busy_ms",
                       "efficiency_mean", "efficiency_min", "imbalance_max",
                       "workers", "chunk"], "report.profile.pool")
    if FAILURES:
        return
    check(pool["threads"] == threads,
          f"report.profile.pool.threads {pool['threads']} != --threads {threads}")
    check(pool["regions"] > 0, "report.profile.pool.regions not positive")
    check(len(pool["workers"]) == threads,
          "report.profile.pool.workers length != threads")
    check(0.0 < pool["efficiency_mean"] <= 1.0 + 1e-9,
          "report.profile.pool.efficiency_mean outside (0, 1]")
    check(pool["imbalance_max"] >= 1.0 - 1e-9,
          "report.profile.pool.imbalance_max < 1")
    # wait := region_wall - busy by construction, so busy+wait sums to the
    # total region wall time exactly, for every worker.
    for wkr in pool["workers"]:
        expect_keys(wkr, ["worker", "busy_ms", "wait_ms", "chunks"],
                    "report.profile.pool.workers[i]")
        if FAILURES:
            return
        total = wkr["busy_ms"] + wkr["wait_ms"]
        check(abs(total - pool["wall_ms"]) <= 1e-6 * pool["wall_ms"] + 1e-3,
              f"worker {wkr['worker']}: busy+wait {total:.3f} ms != "
              f"pool wall {pool['wall_ms']:.3f} ms")
        check(wkr["chunks"] >= 0, f"worker {wkr['worker']}: negative chunks")
    validate_histogram(pool["chunk"], "report.profile.pool.chunk")


def validate_resources(report):
    """Schema v5 'resources' block written by the resource timeline sampler
    (on by default; --sample-resources 0 drops the block entirely)."""
    if not check("resources" in report,
                 "report: no 'resources' block (sampler is on by default)"):
        return
    res = report["resources"]
    expect_keys(res, ["tick_ms", "effective_tick_ms", "downsample_rounds",
                      "samples_taken", "peak_rss_kb", "peak_pool_busy",
                      "cpu_utime_ms", "cpu_stime_ms", "samples"],
                "report.resources")
    if FAILURES:
        return
    check(res["tick_ms"] > 0, "report.resources.tick_ms not positive")
    check(res["effective_tick_ms"] >= res["tick_ms"],
          "report.resources.effective_tick_ms < tick_ms")
    check(res["downsample_rounds"] >= 0,
          "report.resources.downsample_rounds negative")
    samples = res["samples"]
    check(isinstance(samples, list) and len(samples) >= 2,
          "report.resources.samples has fewer than 2 samples "
          "(first + final are force-kept)")
    check(res["samples_taken"] >= len(samples),
          "report.resources.samples_taken < kept sample count")
    check(res["peak_rss_kb"] > 0, "report.resources.peak_rss_kb not positive")
    check(0.0 <= res["peak_pool_busy"] <= 1.0,
          "report.resources.peak_pool_busy outside [0,1]")
    check(res["cpu_utime_ms"] >= 0 and res["cpu_stime_ms"] >= 0,
          "report.resources: negative CPU time")
    prev_t = -math.inf
    for i, s in enumerate(samples):
        where = f"report.resources.samples[{i}]"
        expect_keys(s, ["t_ms", "rss_kb", "utime_ms", "stime_ms", "pool_busy"],
                    where)
        if FAILURES:
            return
        check(s["t_ms"] >= prev_t, f"{where}: t_ms not monotone")
        prev_t = s["t_ms"]
        # The peaks are tracked over EVERY sample taken, kept or not — they
        # must dominate the whole kept series.
        check(s["rss_kb"] <= res["peak_rss_kb"],
              f"{where}: rss_kb {s['rss_kb']} > peak {res['peak_rss_kb']}")
        check(0.0 <= s["pool_busy"] <= 1.0,
              f"{where}: pool_busy {s['pool_busy']} outside [0,1]")
        check(s["pool_busy"] <= res["peak_pool_busy"] + 1e-12,
              f"{where}: pool_busy above peak_pool_busy")
    # The report-level peak_rss_kb (getrusage high-water mark) can never be
    # below what the sampler observed mid-run.
    check(res["peak_rss_kb"] <= report.get("peak_rss_kb", 0),
          "report.resources.peak_rss_kb exceeds the process high-water mark")


def validate_parse_block(report, expect_mode):
    """Schema v3 'parse' block: Bookshelf mode + lenient-repair counters."""
    if not check("parse" in report,
                 "report: no 'parse' block for Bookshelf input"):
        return
    parse = report["parse"]
    expect_keys(parse, ["mode", "repairs"], "report.parse")
    if FAILURES:
        return
    check(parse["mode"] == expect_mode,
          f"report.parse.mode '{parse['mode']}' != '{expect_mode}'")
    repairs = parse["repairs"]
    fields = ["dangling_pins", "empty_nets", "duplicate_nodes",
              "synthesized_net_names", "clamped_fixed_cells",
              "count_mismatches", "unknown_pl_nodes", "total"]
    expect_keys(repairs, fields, "report.parse.repairs")
    if FAILURES:
        return
    for f in fields:
        check(isinstance(repairs[f], int) and repairs[f] >= 0,
              f"report.parse.repairs.{f} not a non-negative integer")
    check(repairs["total"] == sum(repairs[f] for f in fields[:-1]),
          "report.parse.repairs.total != sum of the individual counters")


def validate_error_block(report, expect_code, expect_exit):
    """Schema v3 'error' block written by failed runs."""
    if not check("error" in report, "failed run report: no 'error' block"):
        return
    err = report["error"]
    expect_keys(err, ["code", "message", "where", "stage", "exit_code"],
                "report.error")
    if FAILURES:
        return
    check(err["code"] == expect_code,
          f"report.error.code '{err['code']}' != '{expect_code}'")
    check(err["exit_code"] == expect_exit,
          f"report.error.exit_code {err['exit_code']} != {expect_exit}")
    check(bool(err["message"]), "report.error.message empty")
    check(re.search(r":\d+$", err["where"]) is not None,
          f"report.error.where '{err['where']}' is not file:line")
    check(bool(err["stage"]), "report.error.stage empty")


def run_negative_path(binary, tmp):
    """A malformed benchmark must exit 3 (ParseError) and still write a
    schema-valid report whose 'error' block points at the failing file:line."""
    bench = tmp / "badbench"
    bench.mkdir()
    (bench / "m.aux").write_text(
        "RowBasedPlacement : m.nodes m.nets m.wts m.pl m.scl\n")
    # Truncated node record: width present, height missing.
    (bench / "m.nodes").write_text(
        "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n  a 4 8\n  b 6\n")
    (bench / "m.nets").write_text(
        "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\n"
        "NetDegree : 2 n0\n  a I : 0 0\n  b O : 0 0\n")
    (bench / "m.wts").write_text("UCLA wts 1.0\n")
    (bench / "m.pl").write_text("UCLA pl 1.0\na 0 0 : N\nb 20 0 : N\n")
    (bench / "m.scl").write_text(
        "UCLA scl 1.0\nNumRows : 1\n"
        "CoreRow Horizontal\n Coordinate : 0\n Height : 8\n Sitewidth : 1\n"
        " SubrowOrigin : 0 NumSites : 100\nEnd\n")

    report_path = tmp / "bad.report.json"
    cmd = [str(binary), "--aux", str(bench / "m.aux"),
           "--out", str(tmp / "bad.pl"), "--report-json", str(report_path)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=60)
    check(proc.returncode == 3,
          f"malformed input: exit {proc.returncode}, expected 3 (ParseError)")
    check("ParseError" in proc.stderr,
          "malformed input: stderr does not mention ParseError")
    if not check(report_path.exists(),
                 "malformed input: no report written on failure"):
        return
    report = load_json_strict(report_path, "failed-run report")
    if report is None:
        return
    check(report.get("schema_version") == 5,
          "failed-run report: schema_version != 5")
    validate_error_block(report, "ParseError", 3)
    validate_parse_block(report, "strict")
    if "error" in report:
        check("m.nodes" in report["error"].get("where", ""),
              "failed-run report: error.where does not name m.nodes")


def validate_snapshots(snap_dir, rounds_ran):
    manifest = load_json_strict(snap_dir / "manifest.json", "manifest")
    if manifest is None:
        return
    expect_keys(manifest, ["schema_version", "tool", "convergence",
                           "num_points", "num_rounds", "maps"], "manifest")
    if FAILURES:
        return
    check(manifest["schema_version"] == 1, "manifest: schema_version != 1")
    check(manifest["tool"] == "routplace-snapshot",
          "manifest: tool != routplace-snapshot")
    check_finite(manifest, "manifest")

    maps = manifest["maps"]
    check(len(maps) > 0, "manifest: no maps captured")
    names_by_stage = {}
    for i, m in enumerate(maps):
        expect_keys(m, ["seq", "stage", "name", "grid", "nx", "ny", "min",
                        "max", "mean", "non_finite"], f"manifest.maps[{i}]")
        if FAILURES:
            return
        check(m["non_finite"] == 0,
              f"manifest.maps[{i}] ({m['stage']}/{m['name']}): "
              f"{m['non_finite']} non-finite grid cells")
        grid_path = snap_dir / m["grid"]
        if check(grid_path.exists(), f"manifest: grid file '{m['grid']}' missing"):
            raw = grid_path.read_bytes()
            check(raw[:4] == b"RPG1", f"{m['grid']}: bad magic")
            nx, ny = struct.unpack_from("<II", raw, 4)
            check((nx, ny) == (m["nx"], m["ny"]),
                  f"{m['grid']}: dims {nx}x{ny} != manifest {m['nx']}x{m['ny']}")
            check(len(raw) == 12 + 8 * nx * ny, f"{m['grid']}: truncated payload")
            vals = struct.unpack_from(f"<{nx * ny}d", raw, 12)
            check(all(math.isfinite(v) for v in vals),
                  f"{m['grid']}: non-finite cell values")
        if "ppm" in m:
            check((snap_dir / m["ppm"]).exists(),
                  f"manifest: ppm file '{m['ppm']}' missing")
        names_by_stage.setdefault(m["stage"], set()).add(m["name"])

    # Acceptance contract: density/overflow/inflation per routability round.
    for rnd in range(1, rounds_ran + 1):
        for name in ("density", "overflow", "inflation", "congestion",
                     "demand", "capacity"):
            check(name in names_by_stage.get(f"round{rnd}", set()),
                  f"manifest: round{rnd} missing '{name}' map")
    for name in ("demand", "capacity", "overflow", "congestion", "displacement"):
        check(name in names_by_stage.get("final", set()),
              f"manifest: final stage missing '{name}' map")

    conv = load_json_strict(snap_dir / manifest["convergence"], "convergence")
    if conv is None:
        return
    expect_keys(conv, ["schema_version", "points", "rounds"], "convergence")
    if FAILURES:
        return
    check_finite(conv, "convergence")
    points = conv["points"]
    check(len(points) == manifest["num_points"],
          "convergence: point count != manifest.num_points")
    check(len(points) > 0, "convergence: no points")
    for pt in points[:3]:
        expect_keys(pt, ["level", "round", "outer", "hpwl", "overflow",
                         "lambda", "gamma", "inflation"], "convergence.points[i]")
    check(len(conv["rounds"]) == manifest["num_rounds"],
          "convergence: round count != manifest.num_rounds")
    for r in conv["rounds"][:3]:
        expect_keys(r, ["round", "rc", "ace_005", "ace_1", "ace_2", "ace_5",
                        "total_overflow", "cells_inflated", "mean_inflation"],
                    "convergence.rounds[i]")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    binary = Path(sys.argv[1])
    if not binary.exists():
        print(f"check_report: binary '{binary}' not found")
        return 2

    rounds = 2
    threads = 2  # >= 2 so worker lanes and busy/wait accounting are exercised
    with tempfile.TemporaryDirectory(prefix="rp_check_report_") as tmp:
        tmp = Path(tmp)
        report_path = tmp / "run.report.json"
        trace_path = tmp / "run.trace.json"
        snap_dir = tmp / "snapshots"
        cmd = [str(binary), "--gen", "600", "--seed", "7", "--rounds",
               str(rounds), "--threads", str(threads), "--profile",
               "--out", str(tmp / "out.pl"),
               "--report-json", str(report_path),
               "--trace-json", str(trace_path),
               "--snapshot-dir", str(snap_dir)]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=280)
        if not check(proc.returncode == 0,
                     f"routplace exited {proc.returncode}:\n{proc.stderr[-2000:]}"):
            print("\n".join(FAILURES))
            return 1
        if not check(report_path.exists(), "report file not written") or \
           not check(trace_path.exists(), "trace file not written"):
            print("\n".join(FAILURES))
            return 1

        report = load_json_strict(report_path, "report")
        trace = load_json_strict(trace_path, "trace")
        if report is None or trace is None:
            print("\n".join(FAILURES))
            return 1

        validate_report(report, proc.stdout)
        validate_profile(report, threads)
        validate_resources(report)
        # Inflation may converge early; only require the rounds that ran.
        ran_rounds = min(rounds, report.get("gp", {}).get("inflation_rounds", 0))
        validate_trace(trace, report.get("gp", {}).get("levels", 0), ran_rounds,
                       threads)
        if check(snap_dir.is_dir(), "snapshot dir not created"):
            validate_snapshots(snap_dir, ran_rounds)
        check("parse" not in report,
              "report: 'parse' block present for generated (non-Bookshelf) input")
        check("error" not in report,
              "report: 'error' block present on a successful run")
        run_negative_path(binary, tmp)

    if FAILURES:
        print("check_report: FAILED")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("check_report: OK (report + trace schema-valid and consistent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
