#pragma once
// Synthetic hierarchical mixed-size benchmark generator.
//
// Substitutes for the ISPD-2011 / DAC-2012 contest benchmarks (superblue*),
// which cannot be shipped. The generator reproduces the statistical structure
// those benchmarks exhibit and that the placement algorithms actually react
// to:
//   * a module hierarchy (recursive partitioning, configurable depth/fanout)
//     encoded in instance names, with Rent-rule locality: most nets connect
//     cells within a module, a few cross module boundaries;
//   * mixed sizes: standard cells of 1-8 sites plus large macros (both
//     movable and pre-placed fixed blockages that carve narrow channels);
//   * boundary I/O pads;
//   * a global-routing grid with per-direction track capacities and macro
//     blockage porosity;
//   * optional fence regions around subtrees of the hierarchy.
//
// Everything is driven by one explicit seed: the same spec yields the same
// Design, bit-for-bit.

#include <string>
#include <vector>

#include "db/design.hpp"

namespace rp {

struct BenchmarkSpec {
  std::string name = "synth";
  std::uint64_t seed = 1;

  // --- netlist ---
  int num_std_cells = 10000;
  double nets_per_cell = 1.1;     ///< #nets ≈ cells × this.
  double avg_net_degree = 3.4;    ///< Mean pins per net (>= 2).
  int max_net_degree = 24;

  // --- hierarchy ---
  int hier_fanout = 4;            ///< Children per module.
  int leaf_module_cells = 300;    ///< Split modules larger than this.
  double net_locality = 0.8;      ///< P(net stays inside its owner module).
  bool flat = false;              ///< true: no hierarchy (flat contest style).

  // --- mixed size ---
  int num_macros = 12;
  double macro_area_fraction = 0.25;  ///< Macro area / total movable+macro area.
  double fixed_macro_ratio = 0.5;     ///< Fraction of macros pre-placed & fixed.

  // --- floorplan ---
  double target_utilization = 0.75;   ///< Movable area / free area.
  double row_height = 9.0;
  double site_width = 1.0;
  int num_io = 64;

  // --- routing ---
  int route_tiles_x = 0;        ///< 0: auto (~ one tile per 4x4 rows).
  int route_tiles_y = 0;
  double track_supply = 1.6;    ///< Capacity vs. expected demand (lower: harder).
  double macro_porosity = 0.2;

  // --- fences ---
  int num_fence_regions = 0;
};

/// Generate a finalized Design from the spec.
Design generate_benchmark(const BenchmarkSpec& spec);

/// The paper-style evaluation suite: six designs, three sizes x
/// {hierarchical, flat}, with congestion-prone floorplans.
std::vector<BenchmarkSpec> paper_suite();

/// Small/medium specs used by tests and examples.
BenchmarkSpec tiny_spec(std::uint64_t seed = 7);    ///< ~400 cells.
BenchmarkSpec small_spec(std::uint64_t seed = 11);  ///< ~2k cells.
BenchmarkSpec medium_spec(std::uint64_t seed = 13); ///< ~8k cells.

}  // namespace rp
