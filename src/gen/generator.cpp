#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "route/estimator.hpp"
#include "route/routegrid.hpp"
#include "util/assert.hpp"
#include "util/logger.hpp"
#include "util/rng.hpp"

namespace rp {

namespace {

/// Module-tree scaffold used during generation. Cells are created in DFS
/// order so every module's subtree owns a contiguous cell-id range
/// [begin, end) — uniform sampling inside a subtree is O(1).
struct GenModule {
  int parent = -1;
  int depth = 0;
  std::vector<int> children;
  int target_cells = 0;  ///< Leaf modules: number of std cells to create.
  int begin = 0;         ///< First cell id in subtree (set during creation).
  int end = 0;           ///< One past last cell id in subtree.
  std::string path;      ///< "mA/mB" (empty for root).
};

struct Tree {
  std::vector<GenModule> mods;
  std::vector<int> leaves;
};

Tree build_module_tree(const BenchmarkSpec& spec, Rng& rng) {
  Tree t;
  t.mods.push_back(GenModule{});
  t.mods[0].target_cells = spec.num_std_cells;
  if (spec.flat) {
    t.leaves.push_back(0);
    return t;
  }
  // BFS split: any module over the leaf size gets `hier_fanout` children with
  // randomized proportions (keeps subtree sizes uneven like real designs).
  for (int m = 0; m < static_cast<int>(t.mods.size()); ++m) {
    const int n = t.mods[m].target_cells;
    if (n <= spec.leaf_module_cells || spec.hier_fanout < 2) {
      t.leaves.push_back(m);
      continue;
    }
    std::vector<double> w(static_cast<std::size_t>(spec.hier_fanout));
    double sum = 0;
    for (auto& x : w) {
      x = 0.5 + rng.uniform();  // proportions in [0.5, 1.5)
      sum += x;
    }
    int assigned = 0;
    for (int c = 0; c < spec.hier_fanout; ++c) {
      int share = (c + 1 == spec.hier_fanout)
                      ? n - assigned
                      : static_cast<int>(n * w[static_cast<std::size_t>(c)] / sum);
      share = std::max(share, 1);
      assigned += share;
      GenModule child;
      child.parent = m;
      child.depth = t.mods[m].depth + 1;
      child.target_cells = share;
      child.path = (t.mods[m].path.empty() ? "" : t.mods[m].path + "/") +
                   "m" + std::to_string(t.mods.size());
      t.mods[m].children.push_back(static_cast<int>(t.mods.size()));
      t.mods.push_back(std::move(child));
    }
    t.mods[m].target_cells = 0;  // interior node holds no direct cells
  }
  return t;
}

/// Sample a net degree with mean ~= spec.avg_net_degree: 2 + geometric tail.
int sample_degree(const BenchmarkSpec& spec, Rng& rng) {
  const double extra = std::max(0.0, spec.avg_net_degree - 2.0);
  const double p = 1.0 / (1.0 + extra);  // geometric success prob
  int k = 2;
  while (k < spec.max_net_degree && rng.uniform() > p) ++k;
  return k;
}

}  // namespace

Design generate_benchmark(const BenchmarkSpec& spec) {
  RP_ASSERT(spec.num_std_cells > 0, "spec needs cells");
  RP_ASSERT(spec.target_utilization > 0 && spec.target_utilization < 1.0,
            "utilization must be in (0,1)");
  Rng rng(spec.seed);
  Design d;
  d.set_name(spec.name);

  // ---- 1. module tree & standard cells (DFS order => contiguous subtrees) --
  Tree tree = build_module_tree(spec, rng);
  double std_area = 0.0;
  {
    // DFS to create cells leaf-by-leaf in subtree order.
    std::vector<int> stack{0};
    std::vector<int> order;  // DFS pre-order of modules
    while (!stack.empty()) {
      const int m = stack.back();
      stack.pop_back();
      order.push_back(m);
      const auto& ch = tree.mods[m].children;
      for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
    }
    // create cells for leaves in DFS order
    for (const int m : order) {
      GenModule& gm = tree.mods[m];
      gm.begin = d.num_cells();
      if (gm.children.empty()) {
        for (int i = 0; i < gm.target_cells; ++i) {
          const double w =
              spec.site_width * static_cast<double>(rng.range(1, 8));
          const std::string name =
              (gm.path.empty() ? "" : gm.path + "/") + "o" + std::to_string(d.num_cells());
          const CellId c = d.add_cell(name, w, spec.row_height, CellKind::StdCell);
          std_area += d.cell(c).area();
        }
      }
      gm.end = d.num_cells();  // provisional; fixed up below for interior nodes
    }
    // subtree end = max over children (post-order fixup, reverse DFS works
    // because children appear after parents in `order`)
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      GenModule& gm = tree.mods[*it];
      for (const int c : gm.children) {
        gm.begin = std::min(gm.begin, tree.mods[c].begin);
        gm.end = std::max(gm.end, tree.mods[c].end);
      }
    }
    // Leaves were collected in BFS order; the binary search below needs them
    // sorted by their (disjoint) cell-id ranges.
    std::sort(tree.leaves.begin(), tree.leaves.end(),
              [&](int a, int b) { return tree.mods[a].begin < tree.mods[b].begin; });
  }
  const int num_std = d.num_cells();

  // ---- 2. macros ----
  // Total macro area so that macro_area_fraction = macro/(macro+std).
  const double f = std::clamp(spec.macro_area_fraction, 0.0, 0.8);
  const double macro_total_area = spec.num_macros > 0 ? std_area * f / (1.0 - f) : 0.0;
  std::vector<CellId> macros;
  double placeable_macro_area = 0.0;
  if (spec.num_macros > 0) {
    macros.assign(static_cast<std::size_t>(spec.num_macros), kInvalidId);
    // Uneven macro sizes: area shares weighted by U(0.4, 1.6)^2.
    std::vector<double> shares(static_cast<std::size_t>(spec.num_macros));
    double ssum = 0;
    for (auto& s : shares) {
      const double u = rng.uniform(0.4, 1.6);
      s = u * u;
      ssum += s;
    }
    for (int i = 0; i < spec.num_macros; ++i) {
      const double area = macro_total_area * shares[static_cast<std::size_t>(i)] / ssum;
      // Height: multiple of row height, aspect ratio in [0.5, 2].
      const double ar = rng.uniform(0.5, 2.0);
      double h = std::sqrt(area * ar);
      h = std::max(spec.row_height * 2, std::round(h / spec.row_height) * spec.row_height);
      const double w = std::max(spec.site_width * 4, area / h);
      const CellId c = d.add_cell("macro" + std::to_string(i), w, h, CellKind::Macro);
      macros[static_cast<std::size_t>(i)] = c;
      placeable_macro_area += d.cell(c).area();
    }
  }

  // ---- 3. die & rows ----
  const double movable_area = std_area + placeable_macro_area;
  const double die_area = movable_area / spec.target_utilization;
  double die_w = std::sqrt(die_area);
  // Round to whole rows/sites.
  const int nrows = std::max(4, static_cast<int>(die_area / die_w / spec.row_height + 0.5));
  die_w = std::ceil(die_area / (nrows * spec.row_height) / spec.site_width) * spec.site_width;
  const Rect die{0, 0, die_w, nrows * spec.row_height};
  d.set_die(die);
  for (int r = 0; r < nrows; ++r) {
    d.add_row(Row{die.ly + r * spec.row_height, spec.row_height, die.lx, die.hx,
                  spec.site_width});
  }

  // ---- 4. place macros (fixed ones become blockages) ----
  // Fixed macros are dropped in randomized non-overlapping positions with a
  // bias toward edges/corners (like pre-placed RAMs), creating the narrow
  // channels the routability flow must handle. Movable macros start at the
  // die center.
  {
    std::vector<Rect> placed;
    const int nfixed = static_cast<int>(std::llround(spec.fixed_macro_ratio * spec.num_macros));
    for (int i = 0; i < spec.num_macros; ++i) {
      const CellId c = macros[static_cast<std::size_t>(i)];
      Cell& k = d.cell(c);
      if (i < nfixed) {
        bool ok = false;
        for (int attempt = 0; attempt < 300 && !ok; ++attempt) {
          // Bias: pull toward the nearest edge by squaring a centered sample.
          const auto biased = [&](double span) {
            const double u = rng.uniform(-1.0, 1.0);
            const double v = (u >= 0 ? 1.0 - u * u : u * u - 1.0);  // edge-heavy
            return (v + 1.0) / 2.0 * span;
          };
          double x = die.lx + biased(die.width() - k.w);
          double y = die.ly + biased(die.height() - k.h);
          // snap to rows/sites
          y = die.ly + std::round((y - die.ly) / spec.row_height) * spec.row_height;
          x = die.lx + std::round((x - die.lx) / spec.site_width) * spec.site_width;
          x = std::clamp(x, die.lx, die.hx - k.w);
          y = std::clamp(y, die.ly, die.hy - k.h);
          const Rect r{x, y, x + k.w, y + k.h};
          // keep a one-row halo so channels exist but are narrow
          bool clash = false;
          for (const Rect& p : placed) {
            if (r.expand(spec.row_height).overlaps(p)) {
              clash = true;
              break;
            }
          }
          if (!clash) {
            k.pos = {x, y};
            k.fixed = true;
            placed.push_back(r);
            ok = true;
          }
        }
        if (!ok) {
          // Could not fit as fixed; leave it movable.
          d.set_center(c, die.center());
        }
      } else {
        d.set_center(c, {die.center().x + rng.uniform(-0.1, 0.1) * die.width(),
                         die.center().y + rng.uniform(-0.1, 0.1) * die.height()});
      }
    }
  }

  // ---- 5. I/O pads on the boundary ----
  std::vector<CellId> pads;
  for (int i = 0; i < spec.num_io; ++i) {
    const CellId c = d.add_cell("pad" + std::to_string(i), 1.0, 1.0, CellKind::Terminal);
    Cell& k = d.cell(c);
    const double t = rng.uniform();
    const int side = static_cast<int>(rng.below(4));
    switch (side) {
      case 0: k.pos = {die.lx + t * (die.width() - 1), die.ly}; break;
      case 1: k.pos = {die.lx + t * (die.width() - 1), die.hy - 1}; break;
      case 2: k.pos = {die.lx, die.ly + t * (die.height() - 1)}; break;
      default: k.pos = {die.hx - 1, die.ly + t * (die.height() - 1)}; break;
    }
    pads.push_back(c);
  }

  // ---- 6. random initial positions for movable std cells ----
  for (CellId c = 0; c < num_std; ++c) {
    Cell& k = d.cell(c);
    k.pos = {rng.uniform(die.lx, die.hx - k.w), rng.uniform(die.ly, die.hy - k.h)};
  }

  // ---- 7. nets ----
  const int num_nets = static_cast<int>(num_std * spec.nets_per_cell);
  const auto pin_offset = [&](CellId c) {
    const Cell& k = d.cell(c);
    return Point{rng.uniform(-0.4, 0.4) * k.w, rng.uniform(-0.4, 0.4) * k.h};
  };
  // Module sampling: pick a random cell, then walk up a geometric number of
  // levels; deep modules are chosen often => strong net locality.
  const auto sample_module = [&](int anchor_cell) {
    int m = 0;
    // find the leaf module containing anchor_cell via binary search over
    // leaves (leaves' [begin,end) are disjoint and sorted by construction)
    int lo = 0, hi = static_cast<int>(tree.leaves.size()) - 1;
    while (lo <= hi) {
      const int mid = (lo + hi) / 2;
      const GenModule& gm = tree.mods[tree.leaves[static_cast<std::size_t>(mid)]];
      if (anchor_cell < gm.begin) hi = mid - 1;
      else if (anchor_cell >= gm.end) lo = mid + 1;
      else {
        m = tree.leaves[static_cast<std::size_t>(mid)];
        break;
      }
    }
    // climb with p=0.35 per level
    while (tree.mods[m].parent >= 0 && rng.bernoulli(0.35)) m = tree.mods[m].parent;
    return m;
  };

  for (int n = 0; n < num_nets; ++n) {
    const NetId net = d.add_net("n" + std::to_string(n));
    const int k = sample_degree(spec, rng);
    const int anchor = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_std)));
    int begin = 0, end = num_std;
    if (!spec.flat && rng.bernoulli(spec.net_locality)) {
      const int m = sample_module(anchor);
      begin = tree.mods[m].begin;
      end = tree.mods[m].end;
    }
    if (end - begin < 2) {
      begin = 0;
      end = num_std;
    }
    // anchor + k-1 further distinct-ish cells from [begin, end)
    d.connect(anchor, net, pin_offset(anchor));
    int added = 1;
    int guard = 0;
    CellId prev = anchor;
    while (added < k && guard++ < 8 * k) {
      CellId c = begin + static_cast<CellId>(rng.below(static_cast<std::uint64_t>(end - begin)));
      // occasionally attach a macro pin (macros live outside [0, num_std))
      if (!macros.empty() && rng.bernoulli(0.01))
        c = macros[rng.below(macros.size())];
      if (c == prev) continue;
      bool dup = false;
      for (const PinId p : d.net(net).pins)
        if (d.pin(p).cell == c) {
          dup = true;
          break;
        }
      if (dup) continue;
      d.connect(c, net, pin_offset(c));
      prev = c;
      ++added;
    }
  }
  // pad nets: each pad joins a random existing net (long connections)
  for (const CellId pad : pads) {
    const NetId n = static_cast<NetId>(rng.below(static_cast<std::uint64_t>(d.num_nets())));
    d.connect(pad, n, {0.5, 0.5});
  }

  // ---- 8. fence regions (optional) ----
  for (int fr = 0; fr < spec.num_fence_regions && !tree.leaves.empty(); ++fr) {
    const int m = tree.leaves[rng.below(tree.leaves.size())];
    const GenModule& gm = tree.mods[m];
    if (gm.end - gm.begin < 10) continue;
    // area needed with slack
    double area = 0;
    for (CellId c = gm.begin; c < gm.end; ++c) area += d.cell(c).area();
    const double side_w = std::min(die.width() / 2, std::sqrt(area / 0.6));
    const double side_h = std::min(die.height() / 2, area / 0.6 / side_w);
    const double x = rng.uniform(die.lx, die.hx - side_w);
    double y = rng.uniform(die.ly, die.hy - side_h);
    y = die.ly + std::round((y - die.ly) / spec.row_height) * spec.row_height;
    Region reg;
    reg.name = "fence" + std::to_string(fr);
    reg.rects.push_back(Rect{x, y, x + side_w, y + side_h});
    const int rid = d.add_region(std::move(reg));
    for (CellId c = gm.begin; c < gm.end; ++c) d.set_region(c, rid);
  }

  // ---- 9. routing grid, with SELF-CALIBRATED capacities ----
  // Closed-form demand estimates (Donath etc.) drift badly with design size,
  // so the generator measures its own demand instead: it builds a cheap
  // hierarchy-driven PROXY placement (recursive area bisection of the module
  // tree, cells uniform inside their module's slice — roughly what a good
  // placer produces for a hierarchical design), runs the probabilistic
  // L-route estimator on it, and sets each direction's capacity to
  // track_supply × 1.35 × the measured mean edge demand. Since hotspot
  // demand runs ~2-3x the mean, track_supply ≈ 1.0-1.3 yields designs whose
  // hotspots just overflow — the congestion-prone contest regime —
  // consistently across sizes.
  {
    RouteGridInfo rg;
    rg.nx = spec.route_tiles_x > 0
                ? spec.route_tiles_x
                : std::max(10, static_cast<int>(die.width() / (2 * spec.row_height)));
    rg.ny = spec.route_tiles_y > 0
                ? spec.route_tiles_y
                : std::max(10, static_cast<int>(die.height() / (2 * spec.row_height)));
    rg.macro_porosity = spec.macro_porosity;

    // Save real start positions; build the proxy placement.
    std::vector<Point> saved(static_cast<std::size_t>(num_std));
    for (CellId c = 0; c < num_std; ++c) saved[static_cast<std::size_t>(c)] = d.cell(c).pos;
    {
      // Recursive bisection of the die among module subtrees by cell count.
      struct Task {
        int module;
        Rect rect;
      };
      Rng prng = rng.split();
      std::vector<Task> stack{{0, die}};
      while (!stack.empty()) {
        const Task t = stack.back();
        stack.pop_back();
        const GenModule& gm = tree.mods[t.module];
        if (gm.children.empty()) {
          for (CellId c = gm.begin; c < gm.end; ++c) {
            Cell& k = d.cell(c);
            k.pos = {prng.uniform(t.rect.lx, std::max(t.rect.lx, t.rect.hx - k.w)),
                     prng.uniform(t.rect.ly, std::max(t.rect.ly, t.rect.hy - k.h))};
          }
          continue;
        }
        // Split along the longer axis into area-proportional slices.
        double total = 0;
        for (const int ch : gm.children)
          total += std::max(1, tree.mods[ch].end - tree.mods[ch].begin);
        const bool horiz = t.rect.width() >= t.rect.height();
        double cur = horiz ? t.rect.lx : t.rect.ly;
        for (const int ch : gm.children) {
          const double frac =
              std::max(1, tree.mods[ch].end - tree.mods[ch].begin) / total;
          Rect r = t.rect;
          if (horiz) {
            r.lx = cur;
            cur += frac * t.rect.width();
            r.hx = cur;
          } else {
            r.ly = cur;
            cur += frac * t.rect.height();
            r.hy = cur;
          }
          stack.push_back({ch, r});
        }
      }
    }
    // Measure demand on the proxy placement with UNIT capacities and the
    // real macro derating in place: the probe's per-edge use/cap ratio then
    // reflects the structural hotspots (module concentration + blockage
    // shadowing), not just the average. The base capacity is anchored at the
    // 85th percentile of that ratio: at track_supply == 1.0 the proxy's
    // top-15% edges sit at or above full capacity, which after the placer
    // optimizes and the router negotiates leaves a competent placement just
    // grazing overflow in its hotspots. Residual size/flatness drift is
    // absorbed by the per-benchmark track_supply values (see suite.cpp).
    d.set_route_grid(RouteGridInfo{rg.nx, rg.ny, 1.0, 1.0, 1.0, rg.macro_porosity});
    {
      RoutingGrid probe(d, /*include_movable_macros=*/false);
      estimate_probabilistic(d, probe);
      std::vector<double> hr, vr;
      for (int iy = 0; iy < probe.ny(); ++iy)
        for (int ix = 0; ix + 1 < probe.nx(); ++ix)
          if (probe.h_cap(ix, iy) > 0.05) hr.push_back(probe.h_use(ix, iy) / probe.h_cap(ix, iy));
      for (int iy = 0; iy + 1 < probe.ny(); ++iy)
        for (int ix = 0; ix < probe.nx(); ++ix)
          if (probe.v_cap(ix, iy) > 0.05) vr.push_back(probe.v_use(ix, iy) / probe.v_cap(ix, iy));
      const auto p85 = [](std::vector<double>& v) {
        if (v.empty()) return 1.0;
        const auto k = static_cast<std::size_t>(0.85 * (v.size() - 1));
        std::nth_element(v.begin(), v.begin() + static_cast<long>(k), v.end());
        return std::max(1e-6, v[k]);
      };
      // Flat designs have no module structure for the proxy to exploit: the
      // measured (random-placement) hotspot demand overstates what a real
      // placer achieves; discount it.
      const double discount = spec.flat ? 0.45 : 1.0;
      rg.h_capacity = std::max(4.0, spec.track_supply * discount * p85(hr));
      rg.v_capacity = std::max(4.0, spec.track_supply * discount * p85(vr));
    }
    // Restore the random start positions.
    for (CellId c = 0; c < num_std; ++c) d.cell(c).pos = saved[static_cast<std::size_t>(c)];
    d.set_route_grid(rg);
  }

  d.finalize();
  RP_INFO("generated '%s': %d std cells, %d macros (%d fixed), %d nets, %d pins, "
          "die %.0fx%.0f, util %.1f%%, hier depth %d",
          d.name().c_str(), num_std, d.num_macros(), d.num_macros() - d.num_movable_macros(),
          d.num_nets(), d.num_pins(), die.width(), die.height(), 100 * d.utilization(),
          d.hierarchy().max_depth());
  return d;
}

}  // namespace rp
