// The paper-style evaluation suite and the small fixtures used by tests.
//
// The six suite entries mirror the shape of the DAC-2012 contest set: three
// sizes, each in a hierarchical and a flat variant, with a congestion-prone
// track supply and a significant fixed-macro blockage fraction.

#include "gen/generator.hpp"

namespace rp {

BenchmarkSpec tiny_spec(std::uint64_t seed) {
  BenchmarkSpec s;
  s.name = "tiny";
  s.seed = seed;
  s.num_std_cells = 400;
  s.num_macros = 3;
  s.macro_area_fraction = 0.18;
  s.leaf_module_cells = 80;
  s.num_io = 16;
  s.target_utilization = 0.7;
  return s;
}

BenchmarkSpec small_spec(std::uint64_t seed) {
  BenchmarkSpec s;
  s.name = "small";
  s.seed = seed;
  s.num_std_cells = 2000;
  s.num_macros = 6;
  s.macro_area_fraction = 0.22;
  s.leaf_module_cells = 200;
  s.num_io = 32;
  return s;
}

BenchmarkSpec medium_spec(std::uint64_t seed) {
  BenchmarkSpec s;
  s.name = "medium";
  s.seed = seed;
  s.num_std_cells = 8000;
  s.num_macros = 10;
  s.macro_area_fraction = 0.25;
  s.leaf_module_cells = 400;
  s.num_io = 48;
  s.track_supply = 1.3;
  return s;
}

std::vector<BenchmarkSpec> paper_suite() {
  std::vector<BenchmarkSpec> suite;
  const int sizes[3] = {4000, 10000, 24000};
  const int macro_counts[3] = {8, 12, 16};
  // Per-entry track supplies, tuned by pilot runs (exactly how the DAC-2012
  // organizers tuned each benchmark's capacities): each value puts the
  // BASELINE placer just into the overflowing-hotspot regime (routed RC of
  // roughly 103-120). The proxy-based anchor in generator.cpp removes most
  // of the variation; these factors absorb the residual size/flatness drift
  // between proxy demand and placed demand.
  const double supplies[3][2] = {{1.00, 1.75},   // 4k: hier, flat
                                 {1.55, 2.35},   // 10k
                                 {2.10, 3.25}};  // 24k
  for (int i = 0; i < 3; ++i) {
    for (const bool flat : {false, true}) {
      BenchmarkSpec s;
      s.name = "rdp-s" + std::to_string(static_cast<int>(suite.size()) + 1) +
               (flat ? "-flat" : "-hier");
      s.seed = 1000 + suite.size();
      s.num_std_cells = sizes[i];
      s.num_macros = macro_counts[i];
      s.macro_area_fraction = 0.25;
      s.fixed_macro_ratio = 0.6;
      s.flat = flat;
      s.leaf_module_cells = 300;
      s.target_utilization = 0.72;
      s.track_supply = supplies[i][flat ? 1 : 0];
      s.macro_porosity = 0.15;  // strong structural hotspots over macros
      s.num_io = 64;
      suite.push_back(std::move(s));
    }
  }
  return suite;
}

}  // namespace rp
