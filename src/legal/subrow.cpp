#include "legal/subrow.hpp"

#include <algorithm>
#include <cmath>

namespace rp {

std::vector<Subrow> build_subrows(const Design& d, double min_width) {
  // Collect fixed obstacles (anything not movable with positive area).
  std::vector<Rect> obstacles;
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    if (k.movable() || k.area() <= 0) continue;
    const Rect r = d.cell_rect(c).intersect(d.die());
    if (r.width() > 0 && r.height() > 0) obstacles.push_back(r);
  }

  std::vector<Subrow> out;
  for (int ri = 0; ri < d.num_rows(); ++ri) {
    const Row& row = d.row(ri);
    const double y0 = row.y, y1 = row.y + row.height;
    const double lx = std::max(row.lx, d.die().lx);
    const double hx = std::min(row.hx, d.die().hx);
    if (hx - lx < min_width) continue;

    // Blocked x-intervals on this row.
    std::vector<Interval> blocked;
    for (const Rect& ob : obstacles) {
      if (ob.ly < y1 - 1e-9 && ob.hy > y0 + 1e-9)
        blocked.push_back({ob.lx, ob.hx});
    }
    std::sort(blocked.begin(), blocked.end(),
              [](Interval a, Interval b) { return a.lo < b.lo; });

    double cur = lx;
    const auto emit = [&](double a, double b) {
      if (b - a < min_width) return;
      Subrow sr;
      sr.y = y0;
      sr.height = row.height;
      sr.lx = a;
      sr.hx = b;
      sr.site_w = row.site_w > 0 ? row.site_w : 1.0;
      sr.row_index = ri;
      out.push_back(sr);
    };
    for (const Interval& b : blocked) {
      if (b.lo > cur) emit(cur, std::min(b.lo, hx));
      cur = std::max(cur, b.hi);
      if (cur >= hx) break;
    }
    if (cur < hx) emit(cur, hx);
  }
  std::sort(out.begin(), out.end(), [](const Subrow& a, const Subrow& b) {
    return a.y != b.y ? a.y < b.y : a.lx < b.lx;
  });
  return out;
}

std::vector<Subrow> clip_subrows(const std::vector<Subrow>& subrows, const Rect& fence) {
  std::vector<Subrow> out;
  for (const Subrow& sr : subrows) {
    if (sr.y < fence.ly - 1e-9 || sr.y + sr.height > fence.hy + 1e-9) continue;
    Subrow c = sr;
    c.lx = std::max(c.lx, fence.lx);
    c.hx = std::min(c.hx, fence.hx);
    if (c.width() > 0) out.push_back(c);
  }
  return out;
}

double snap_to_site(const Subrow& sr, double x) {
  const double k = std::floor((x - sr.lx) / sr.site_w + 0.5);
  return sr.lx + k * sr.site_w;
}

std::vector<Subrow> subtract_rects(const std::vector<Subrow>& subrows,
                                   const std::vector<Rect>& rects, double min_width) {
  std::vector<Subrow> out;
  for (const Subrow& sr : subrows) {
    // Blocked x-intervals from rects that overlap this row vertically.
    std::vector<Interval> blocked;
    for (const Rect& r : rects) {
      if (r.ly < sr.y + sr.height - 1e-9 && r.hy > sr.y + 1e-9)
        blocked.push_back({r.lx, r.hx});
    }
    if (blocked.empty()) {
      out.push_back(sr);
      continue;
    }
    std::sort(blocked.begin(), blocked.end(),
              [](Interval a, Interval b) { return a.lo < b.lo; });
    double cur = sr.lx;
    const auto emit = [&](double a, double b) {
      if (b - a < min_width) return;
      Subrow s = sr;
      s.lx = a;
      s.hx = b;
      out.push_back(s);
    };
    for (const Interval& b : blocked) {
      if (b.lo > cur) emit(cur, std::min(b.lo, sr.hx));
      cur = std::max(cur, b.hi);
      if (cur >= sr.hx) break;
    }
    if (cur < sr.hx) emit(cur, sr.hx);
  }
  return out;
}

std::vector<LegalizeGroup> build_legalize_groups(const Design& d) {
  const std::vector<Subrow> all = build_subrows(d);
  std::vector<LegalizeGroup> groups(static_cast<std::size_t>(d.num_regions() + 1));
  std::vector<Rect> fence_rects;
  for (int r = 0; r < d.num_regions(); ++r) {
    auto& g = groups[static_cast<std::size_t>(r + 1)];
    for (const Rect& fr : d.region(r).rects) {
      const auto clipped = clip_subrows(all, fr);
      g.subrows.insert(g.subrows.end(), clipped.begin(), clipped.end());
      fence_rects.push_back(fr);
    }
  }
  // Fences are exclusive: unfenced cells must stay out of them.
  groups[0].subrows = subtract_rects(all, fence_rects);
  for (const CellId c : d.movable_cells()) {
    const Cell& k = d.cell(c);
    if (k.kind != CellKind::StdCell) continue;  // macros legalized separately
    groups[static_cast<std::size_t>(k.region + 1)].cells.push_back(c);
  }
  return groups;
}

SubrowIndex::SubrowIndex(std::vector<Subrow> subrows) : subrows_(std::move(subrows)) {
  std::sort(subrows_.begin(), subrows_.end(), [](const Subrow& a, const Subrow& b) {
    return a.y != b.y ? a.y < b.y : a.lx < b.lx;
  });
  for (int i = 0; i < static_cast<int>(subrows_.size()); ++i) {
    if (bands_.empty() || subrows_[static_cast<std::size_t>(i)].y != bands_.back().y) {
      bands_.push_back({subrows_[static_cast<std::size_t>(i)].y, i, i + 1});
    } else {
      bands_.back().last = i + 1;
    }
  }
}

int SubrowIndex::nearest_band(double y) const {
  if (bands_.empty()) return -1;
  int lo = 0, hi = static_cast<int>(bands_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (bands_[static_cast<std::size_t>(mid)].y < y) lo = mid + 1;
    else hi = mid;
  }
  // lo is the first band with y >= target; the one below may be closer.
  if (lo > 0 && std::abs(bands_[static_cast<std::size_t>(lo - 1)].y - y) <
                    std::abs(bands_[static_cast<std::size_t>(lo)].y - y))
    return lo - 1;
  return lo;
}

}  // namespace rp
