#pragma once
// Subrows: the free segments of placement rows after subtracting fixed
// objects (pre-placed/legalized macros, blockages). Both standard-cell
// legalizers place into subrows, which makes them obstacle- and (single-rect)
// fence-aware for free.

#include <utility>
#include <vector>

#include "db/design.hpp"

namespace rp {

struct Subrow {
  double y = 0.0;       ///< Row bottom.
  double height = 0.0;
  double lx = 0.0;
  double hx = 0.0;
  double site_w = 1.0;
  int row_index = -1;   ///< Originating design row.

  double width() const { return hx - lx; }
};

/// Cut every design row by the fixed objects currently in the design.
/// Segments narrower than `min_width` are dropped. Rows are clipped to the
/// die. Result is sorted by (y, lx).
std::vector<Subrow> build_subrows(const Design& d, double min_width = 1.0);

/// Restrict subrows to one fence rect (for legalizing fenced cells).
std::vector<Subrow> clip_subrows(const std::vector<Subrow>& subrows, const Rect& fence);

/// Remove the given rects from the subrows (for keeping UNFENCED cells out
/// of exclusive fence regions): any subrow segment overlapping a rect
/// vertically gets its x-range cut. Segments narrower than min_width drop.
std::vector<Subrow> subtract_rects(const std::vector<Subrow>& subrows,
                                   const std::vector<Rect>& rects,
                                   double min_width = 1.0);

/// Per-fence-region legalization groups: group 0 holds unfenced std cells
/// with the fence areas carved out of its subrows; group r+1 holds region
/// r's cells with subrows clipped to that fence. Movable macros excluded.
struct LegalizeGroup {
  std::vector<CellId> cells;
  std::vector<Subrow> subrows;
};
std::vector<LegalizeGroup> build_legalize_groups(const Design& d);

/// Snap an x coordinate to the subrow's site grid (toward the left edge).
double snap_to_site(const Subrow& sr, double x);

/// Y-band index over a sorted subrow list: maps a target y to the nearest
/// row band and exposes each band's subrow range, so legalizers can walk
/// candidate rows outward from the target.
class SubrowIndex {
 public:
  explicit SubrowIndex(std::vector<Subrow> subrows);

  const std::vector<Subrow>& subrows() const { return subrows_; }
  int num_bands() const { return static_cast<int>(bands_.size()); }
  double band_y(int b) const { return bands_[static_cast<std::size_t>(b)].y; }
  /// Subrow index range [first, last) of band b.
  std::pair<int, int> band_range(int b) const {
    const auto& bd = bands_[static_cast<std::size_t>(b)];
    return {bd.first, bd.last};
  }
  /// Band whose y is closest to the given y.
  int nearest_band(double y) const;

 private:
  struct Band {
    double y;
    int first, last;
  };
  std::vector<Subrow> subrows_;
  std::vector<Band> bands_;
};

}  // namespace rp
