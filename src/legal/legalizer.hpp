#pragma once
// Standard-cell legalizers.
//
// Both take a design whose macros are already fixed (the macro legalizer
// runs first in the flow) and snap every movable standard cell into subrows
// with no overlap. Fence-region cells are legalized into the subrows clipped
// to their fence.
//
//  * TetrisLegalizer — the classic greedy: cells sorted by x, each placed at
//    the feasible position minimizing displacement over a window of nearby
//    subrows (free intervals tracked per subrow, fragment-aware edge
//    snapping). Fast, moderate quality; like every greedy it cannot
//    guarantee success at exactly-100% row packing — use Abacus there.
//  * AbacusLegalizer — row-cluster dynamic programming (Spindler et al.):
//    cells sorted by x are appended to the best subrow; within a subrow,
//    colliding cells merge into clusters whose optimal position is the
//    weighted mean of member targets, clamped to the subrow. Higher quality,
//    still near-linear.

#include <string>

#include "db/design.hpp"

namespace rp {

struct LegalizeOptions {
  int row_search_window = 24;  ///< Candidate subrow window (rows above/below).
  bool snap_sites = false;     ///< Snap x to site grid.
  double displacement_weight = 1.0;  ///< Weight of Δy vs Δx in candidate cost.
};

struct LegalizeStats {
  int cells = 0;
  int failed = 0;          ///< Cells that found no feasible subrow.
  double total_disp = 0.0; ///< Σ Manhattan displacement.
  double max_disp = 0.0;
  double avg_disp() const { return cells > 0 ? total_disp / cells : 0.0; }
};

class Legalizer {
 public:
  virtual ~Legalizer() = default;
  virtual std::string name() const = 0;
  /// Legalize all movable standard cells in place.
  virtual LegalizeStats run(Design& d) = 0;
};

class TetrisLegalizer final : public Legalizer {
 public:
  explicit TetrisLegalizer(LegalizeOptions opt = {}) : opt_(opt) {}
  std::string name() const override { return "tetris"; }
  LegalizeStats run(Design& d) override;

 private:
  LegalizeOptions opt_;
};

class AbacusLegalizer final : public Legalizer {
 public:
  explicit AbacusLegalizer(LegalizeOptions opt = {}) : opt_(opt) {}
  std::string name() const override { return "abacus"; }
  LegalizeStats run(Design& d) override;

 private:
  LegalizeOptions opt_;
};

}  // namespace rp
