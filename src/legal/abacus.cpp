// Abacus standard-cell legalization (Spindler, Schlichtmann & Johannes,
// "Abacus: fast legalization of standard cell circuits with minimal
// movement").
//
// Cells are processed in ascending target-x order. For each cell we try the
// subrows in a widening window around its target row; the cheapest TRIAL
// insertion wins and is committed. Within a subrow, cells form clusters:
// appending a cell that would overlap its left neighbor merges the two
// clusters, and a merged cluster sits at the area-weighted mean of its
// members' targets, clamped into the subrow — the classic quadratic-optimal
// row placement, computed incrementally.

#include <algorithm>
#include <cmath>
#include <limits>

#include "legal/legalizer.hpp"
#include "legal/subrow.hpp"
#include "util/logger.hpp"
#include "util/telemetry.hpp"

namespace rp {

namespace {

struct ClusterCell {
  CellId id;
  double w;
  double target_x;  ///< Desired lower-left x.
  double e;         ///< Weight (cell area).
};

struct Cluster {
  double x = 0.0;  ///< Lower-left of the cluster.
  double e = 0.0;  ///< Σ weights.
  double q = 0.0;  ///< Σ e_i (target_i − offset_i): optimal x = q / e.
  double w = 0.0;  ///< Total width.
  int first_cell = 0;  ///< Range into RowState::cells.
  int last_cell = 0;
};

struct RowState {
  std::vector<ClusterCell> cells;  ///< In insertion (x-sorted) order.
  std::vector<Cluster> clusters;
  double used_width = 0.0;
};

double clamp_cluster_x(const Subrow& sr, const Cluster& cl) {
  return std::clamp(cl.q / cl.e, sr.lx, sr.hx - cl.w);
}

/// Trial-only scoring: where would the cell land if appended? Walks the
/// cluster collapse backwards with three accumulators (e, q, w) instead of
/// copying the row's cluster vector — every trial is allocation-free and
/// the hot inner loop of legalization touches no heap. The arithmetic
/// mirrors append_and_collapse expression for expression (the merge update
/// `q += last.q - last.e * prev.w` and the `clamp(q/e, ...)` re-placement),
/// so the returned x is bitwise the one a committed append produces.
double trial_append(const Subrow& sr, const RowState& rs, const ClusterCell& cc) {
  if (rs.used_width + cc.w > sr.width() + 1e-9)
    return std::numeric_limits<double>::quiet_NaN();

  double e = cc.e;
  double q = cc.e * cc.target_x;
  double w = cc.w;
  double x = std::clamp(q / e, sr.lx, sr.hx - w);
  std::size_t i = rs.clusters.size();
  while (i > 0) {
    const Cluster& prev = rs.clusters[i - 1];
    if (prev.x + prev.w <= x + 1e-9) break;
    q = prev.q + (q - e * prev.w);
    e = prev.e + e;
    w = prev.w + w;
    --i;
    x = std::clamp(q / e, sr.lx, sr.hx - w);
  }
  x = x + w - cc.w;
  if (x < sr.lx - 1e-9 || x + cc.w > sr.hx + 1e-9)
    return std::numeric_limits<double>::quiet_NaN();
  return x;
}

/// Append a cell to the row state and collapse clusters. Returns the cell's
/// final x, or a quiet NaN if it cannot fit.
double append_and_collapse(const Subrow& sr, RowState& rs, const ClusterCell& cc) {
  if (rs.used_width + cc.w > sr.width() + 1e-9)
    return std::numeric_limits<double>::quiet_NaN();

  std::vector<Cluster>& cl = rs.clusters;

  Cluster nc;
  nc.e = cc.e;
  nc.q = cc.e * cc.target_x;
  nc.w = cc.w;
  nc.first_cell = static_cast<int>(rs.cells.size());
  nc.last_cell = nc.first_cell + 1;
  nc.x = std::clamp(cc.target_x, sr.lx, sr.hx - cc.w);
  cl.push_back(nc);

  // Collapse while the last cluster overlaps its predecessor.
  while (cl.size() >= 2) {
    Cluster& prev = cl[cl.size() - 2];
    Cluster& last = cl.back();
    last.x = clamp_cluster_x(sr, last);
    if (prev.x + prev.w <= last.x + 1e-9) break;
    // Merge `last` into `prev`: members of `last` sit at offset prev.w
    // inside the merged cluster, so their q contribution shifts by prev.w·e.
    prev.q += last.q - last.e * prev.w;
    prev.e += last.e;
    prev.w += last.w;
    prev.last_cell = last.last_cell;
    cl.pop_back();
    cl.back().x = clamp_cluster_x(sr, cl.back());
    RP_COUNT("legal.cluster_merges", 1);
  }
  cl.back().x = clamp_cluster_x(sr, cl.back());

  // The appended cell is the last member of the final cluster.
  const Cluster& host = cl.back();
  double x = host.x + host.w - cc.w;
  if (x < sr.lx - 1e-9 || x + cc.w > sr.hx + 1e-9)
    return std::numeric_limits<double>::quiet_NaN();

  rs.cells.push_back(cc);
  rs.used_width += cc.w;
  return x;
}

/// Final positions of every cell in the row, walking clusters left to right.
void writeback_row(const Subrow& sr, const RowState& rs, Design& d, bool snap,
                   LegalizeStats& stats) {
  for (const Cluster& cl : rs.clusters) {
    double x = cl.x;
    for (int i = cl.first_cell; i < cl.last_cell; ++i) {
      const ClusterCell& cc = rs.cells[static_cast<std::size_t>(i)];
      double px = x;
      if (snap) px = snap_to_site(sr, px);
      Cell& k = d.cell(cc.id);
      const double disp = std::abs(px - k.pos.x) + std::abs(sr.y - k.pos.y);
      stats.total_disp += disp;
      stats.max_disp = std::max(stats.max_disp, disp);
      k.pos = {px, sr.y};
      x += cc.w;
    }
  }
}

}  // namespace

LegalizeStats AbacusLegalizer::run(Design& d) {
  LegalizeStats stats;
  for (LegalizeGroup& g : build_legalize_groups(d)) {
    if (g.cells.empty()) continue;
    SubrowIndex idx(std::move(g.subrows));
    std::vector<RowState> state(idx.subrows().size());

    std::sort(g.cells.begin(), g.cells.end(), [&](CellId a, CellId b) {
      return d.cell(a).pos.x < d.cell(b).pos.x;
    });

    for (const CellId c : g.cells) {
      Cell& k = d.cell(c);
      ++stats.cells;
      const Point target = k.pos;
      ClusterCell cc{c, k.w, target.x, std::max(1.0, k.area())};

      const int home = idx.nearest_band(target.y);
      double best_cost = std::numeric_limits<double>::infinity();
      int best_sr = -1;
      for (int off = 0; off < idx.num_bands(); ++off) {
        const int cand[2] = {home - off, home + off};
        const int ncand = off == 0 ? 1 : 2;
        bool any = false;
        for (int ci = 0; ci < ncand; ++ci) {
          const int b = cand[ci];
          if (b < 0 || b >= idx.num_bands()) continue;
          any = true;
          const double dy = std::abs(idx.band_y(b) - target.y);
          if (opt_.displacement_weight * dy >= best_cost) continue;
          const auto [first, last] = idx.band_range(b);
          for (int s = first; s < last; ++s) {
            const Subrow& sr = idx.subrows()[static_cast<std::size_t>(s)];
            const double x =
                trial_append(sr, state[static_cast<std::size_t>(s)], cc);
            if (std::isnan(x)) continue;
            const double cost = std::abs(x - target.x) + opt_.displacement_weight * dy;
            if (cost < best_cost) {
              best_cost = cost;
              best_sr = s;
            }
          }
        }
        if (!any) break;
        if (best_sr >= 0) {
          // Vertical distance of the NEXT band pair already exceeds the best
          // total cost: no better subrow exists further out.
          double next_dy = std::numeric_limits<double>::infinity();
          if (home - off - 1 >= 0)
            next_dy = std::min(next_dy, std::abs(idx.band_y(home - off - 1) - target.y));
          if (home + off + 1 < idx.num_bands())
            next_dy = std::min(next_dy, std::abs(idx.band_y(home + off + 1) - target.y));
          if (opt_.displacement_weight * next_dy >= best_cost) break;
        }
      }
      if (best_sr < 0) {
        ++stats.failed;
        RP_WARN("abacus: no subrow for cell '%s' (w=%.1f)", k.name.c_str(), k.w);
        continue;
      }
      append_and_collapse(idx.subrows()[static_cast<std::size_t>(best_sr)],
                          state[static_cast<std::size_t>(best_sr)], cc);
    }

    for (std::size_t s = 0; s < state.size(); ++s)
      writeback_row(idx.subrows()[s], state[s], d, opt_.snap_sites, stats);
  }
  return stats;
}

}  // namespace rp
