#pragma once
// Macro legalization: snap movable macros to overlap-free, row-aligned
// positions near their global-placement locations.
//
// Macros are processed largest-first (hardest to fit). Each searches an
// expanding ring of row/site-aligned candidate positions around its target
// and takes the nearest collision-free one (against the die boundary, fixed
// objects, and previously legalized macros, with an optional halo that
// preserves routing channels between macros). After this pass the flow
// freezes macros, so the standard-cell legalizer sees them as obstacles.

#include <vector>

#include "db/design.hpp"

namespace rp {

struct MacroLegalizeOptions {
  double halo = 0.0;        ///< Min spacing kept around each macro (die units).
  double max_search_radius_frac = 1.0;  ///< Fraction of die half-perimeter.
};

struct MacroLegalizeStats {
  int macros = 0;
  int failed = 0;
  double total_disp = 0.0;
  double max_disp = 0.0;
};

MacroLegalizeStats legalize_macros(Design& d, const MacroLegalizeOptions& opt = {});

/// Mark all movable macros fixed (after legalization).
void freeze_macros(Design& d);

}  // namespace rp
