// Tetris-style greedy legalization with free-interval tracking.
//
// Cells are processed in ascending target-x order (the classic tetris
// schedule); each candidate subrow keeps its FREE INTERVALS rather than a
// single left cursor, so space left of an earlier placement is never
// stranded and each cell lands at the feasible position closest to its
// target. Bands are scanned outward from the target row with a lower-bound
// prune on the unavoidable vertical displacement.

#include <algorithm>
#include <cmath>
#include <limits>

#include "legal/legalizer.hpp"
#include "legal/subrow.hpp"
#include "util/logger.hpp"

namespace rp {

namespace {

/// Sorted disjoint free x-intervals of one subrow.
struct SubrowFree {
  std::vector<Interval> free;

  /// Best feasible x for width w near target tx; NaN if none fits.
  /// Positions snap to an interval edge when the leftover fragment would be
  /// narrower than half the cell — unbounded fragmentation would otherwise
  /// make dense (near-100%) rows unpackable for the greedy.
  double best_position(double tx, double w) const {
    double best = std::numeric_limits<double>::quiet_NaN();
    double best_d = std::numeric_limits<double>::infinity();
    for (const Interval& iv : free) {
      if (iv.length() < w) continue;
      double x = std::clamp(tx, iv.lo, iv.hi - w);
      // Snap to the interval edge when the leftover fragment would be
      // narrower than the cell itself (dead space for this width class).
      if (x - iv.lo < w) x = iv.lo;
      else if (iv.hi - (x + w) < w) x = iv.hi - w;
      const double dist = std::abs(x - tx);
      if (dist < best_d) {
        best_d = dist;
        best = x;
      }
      // Intervals are sorted; once an interval starts beyond the current
      // best distance to the right, nothing better can follow.
      if (iv.lo > tx && iv.lo - tx > best_d) break;
    }
    return best;
  }

  /// Carve [x, x+w) out of the free set (must lie inside one interval).
  void occupy(double x, double w) {
    for (std::size_t i = 0; i < free.size(); ++i) {
      Interval& iv = free[i];
      if (x < iv.lo - 1e-9 || x + w > iv.hi + 1e-9) continue;
      const Interval right{x + w, iv.hi};
      iv.hi = x;
      const bool keep_left = iv.length() > 1e-9;
      if (!keep_left) free.erase(free.begin() + static_cast<long>(i));
      if (right.length() > 1e-9) {
        // Insert after the (possibly removed) left fragment, keeping order.
        const auto pos = std::lower_bound(
            free.begin(), free.end(), right.lo,
            [](const Interval& a, double lo) { return a.lo < lo; });
        free.insert(pos, right);
      }
      return;
    }
  }
};

}  // namespace

LegalizeStats TetrisLegalizer::run(Design& d) {
  LegalizeStats stats;
  for (LegalizeGroup& g : build_legalize_groups(d)) {
    if (g.cells.empty()) continue;
    SubrowIndex idx(std::move(g.subrows));
    std::vector<SubrowFree> state(idx.subrows().size());
    for (std::size_t i = 0; i < state.size(); ++i)
      state[i].free.push_back({idx.subrows()[i].lx, idx.subrows()[i].hx});

    std::sort(g.cells.begin(), g.cells.end(), [&](CellId a, CellId b) {
      return d.cell(a).pos.x < d.cell(b).pos.x;
    });

    for (const CellId c : g.cells) {
      Cell& k = d.cell(c);
      ++stats.cells;
      const Point target = k.pos;
      const int home = idx.nearest_band(target.y);
      double best_cost = std::numeric_limits<double>::infinity();
      int best_sr = -1;
      double best_x = 0.0;
      // Walk bands outward from the target row; stop once the unavoidable
      // vertical displacement alone exceeds the best cost so far.
      for (int off = 0; off < idx.num_bands(); ++off) {
        const int cand[2] = {home - off, home + off};
        const int ncand = off == 0 ? 1 : 2;
        bool any_band = false;
        for (int ci = 0; ci < ncand; ++ci) {
          const int b = cand[ci];
          if (b < 0 || b >= idx.num_bands()) continue;
          any_band = true;
          const double dy = std::abs(idx.band_y(b) - target.y);
          if (opt_.displacement_weight * dy >= best_cost) continue;
          const auto [first, last] = idx.band_range(b);
          for (int s = first; s < last; ++s) {
            const Subrow& sr = idx.subrows()[static_cast<std::size_t>(s)];
            double x = state[static_cast<std::size_t>(s)].best_position(target.x, k.w);
            if (std::isnan(x)) continue;
            if (opt_.snap_sites) {
              const double snapped = snap_to_site(sr, x);
              // Snapping must stay inside the chosen interval; try both
              // neighbors of the snap point.
              for (const double cand_x : {snapped, snapped + sr.site_w}) {
                if (!std::isnan(state[static_cast<std::size_t>(s)].best_position(cand_x,
                                                                                 k.w)) &&
                    std::abs(state[static_cast<std::size_t>(s)].best_position(cand_x, k.w) -
                             cand_x) < 1e-9) {
                  x = cand_x;
                  break;
                }
              }
            }
            const double cost = std::abs(x - target.x) + opt_.displacement_weight * dy;
            if (cost < best_cost) {
              best_cost = cost;
              best_sr = s;
              best_x = x;
            }
          }
        }
        if (!any_band) break;
        double next_dy = std::numeric_limits<double>::infinity();
        if (home - off - 1 >= 0)
          next_dy = std::min(next_dy, std::abs(idx.band_y(home - off - 1) - target.y));
        if (home + off + 1 < idx.num_bands())
          next_dy = std::min(next_dy, std::abs(idx.band_y(home + off + 1) - target.y));
        if (best_sr >= 0 && opt_.displacement_weight * next_dy >= best_cost) break;
      }
      if (best_sr < 0) {
        ++stats.failed;
        RP_WARN("tetris: no subrow for cell '%s' (w=%.1f)", k.name.c_str(), k.w);
        continue;
      }
      const Subrow& sr = idx.subrows()[static_cast<std::size_t>(best_sr)];
      k.pos = {best_x, sr.y};
      state[static_cast<std::size_t>(best_sr)].occupy(best_x, k.w);
      const double disp = std::abs(best_x - target.x) + std::abs(sr.y - target.y);
      stats.total_disp += disp;
      stats.max_disp = std::max(stats.max_disp, disp);
    }
  }
  return stats;
}

}  // namespace rp
