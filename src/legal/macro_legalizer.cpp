#include "legal/macro_legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logger.hpp"

namespace rp {

namespace {

bool feasible(const Rect& r, const Rect& die, const std::vector<Rect>& obstacles,
              double halo) {
  if (r.lx < die.lx - 1e-9 || r.ly < die.ly - 1e-9 || r.hx > die.hx + 1e-9 ||
      r.hy > die.hy + 1e-9)
    return false;
  const Rect rh = r.expand(halo);
  for (const Rect& ob : obstacles)
    if (rh.overlaps(ob)) return false;
  return true;
}

}  // namespace

MacroLegalizeStats legalize_macros(Design& d, const MacroLegalizeOptions& opt) {
  MacroLegalizeStats stats;
  const Rect die = d.die();
  const double rh = d.row_height();
  const double sw = d.num_rows() > 0 && d.row(0).site_w > 0 ? d.row(0).site_w : 1.0;
  const double y0 = d.num_rows() > 0 ? d.row(0).y : die.ly;

  // Obstacles: all fixed objects with area.
  std::vector<Rect> obstacles;
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    if (!k.fixed || k.area() <= 0) continue;
    obstacles.push_back(d.cell_rect(c));
  }

  std::vector<CellId> movable_macros;
  for (const CellId c : d.movable_cells())
    if (d.cell(c).is_macro()) movable_macros.push_back(c);
  std::sort(movable_macros.begin(), movable_macros.end(), [&](CellId a, CellId b) {
    return d.cell(a).area() > d.cell(b).area();
  });

  const double max_radius =
      opt.max_search_radius_frac * (die.width() + die.height()) / 2.0;

  for (const CellId c : movable_macros) {
    Cell& k = d.cell(c);
    ++stats.macros;
    const Point target = k.pos;
    // Snap helper: align to rows in y and sites in x, clamped into the die.
    const auto snap = [&](double x, double y) {
      double sx = die.lx + std::round((x - die.lx) / sw) * sw;
      double sy = y0 + std::round((y - y0) / rh) * rh;
      sx = std::clamp(sx, die.lx, die.hx - k.w);
      sy = std::clamp(sy, die.ly, die.hy - k.h);
      // Re-snap after clamping (clamp may break alignment at the far edge;
      // floor keeps it inside).
      sx = die.lx + std::floor((sx - die.lx) / sw) * sw;
      sy = y0 + std::floor((sy - y0) / rh) * rh;
      return Point{sx, sy};
    };

    bool placed = false;
    Point best{};
    // Expanding square rings of candidates at row-pitch spacing.
    const double step = rh;
    for (double radius = 0.0; radius <= max_radius && !placed; radius += step) {
      double best_d = std::numeric_limits<double>::infinity();
      const int n = radius == 0.0 ? 1 : std::max(8, static_cast<int>(8 * radius / step));
      for (int i = 0; i < n; ++i) {
        double cx = target.x, cy = target.y;
        if (radius > 0.0) {
          // Perimeter walk of the square ring.
          const double t = static_cast<double>(i) / n * 4.0;
          if (t < 1.0) { cx += radius * (2 * t - 1); cy -= radius; }
          else if (t < 2.0) { cx += radius; cy += radius * (2 * (t - 1) - 1); }
          else if (t < 3.0) { cx += radius * (1 - 2 * (t - 2)); cy += radius; }
          else { cx -= radius; cy += radius * (1 - 2 * (t - 3)); }
        }
        const Point p = snap(cx, cy);
        const Rect r{p.x, p.y, p.x + k.w, p.y + k.h};
        if (!feasible(r, die, obstacles, opt.halo)) continue;
        const double dist = std::abs(p.x - target.x) + std::abs(p.y - target.y);
        if (dist < best_d) {
          best_d = dist;
          best = p;
          placed = true;
        }
      }
    }
    if (!placed) {
      ++stats.failed;
      RP_WARN("macro legalizer: cannot place '%s' (%.0fx%.0f)", k.name.c_str(), k.w, k.h);
      continue;
    }
    const double disp = std::abs(best.x - target.x) + std::abs(best.y - target.y);
    stats.total_disp += disp;
    stats.max_disp = std::max(stats.max_disp, disp);
    k.pos = best;
    obstacles.push_back(d.cell_rect(c));
  }
  return stats;
}

void freeze_macros(Design& d) {
  for (CellId c = 0; c < d.num_cells(); ++c) {
    Cell& k = d.cell(c);
    if (k.is_macro() && !k.fixed) k.fixed = true;
  }
  d.refresh_derived();
}

}  // namespace rp
