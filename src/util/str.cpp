#include "util/str.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace rp {

std::string_view trim(std::string_view s) {
  const auto not_space = [](unsigned char c) { return !std::isspace(c); };
  while (!s.empty() && !not_space(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && !not_space(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < s.size() && delims.find(s[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

double to_double(std::string_view s) {
  s = trim(s);
  // std::from_chars(double) is available in libstdc++ 11+; use it for speed.
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size())
    throw std::runtime_error("to_double: cannot parse '" + std::string(s) + "'");
  return v;
}

long to_long(std::string_view s) {
  s = trim(s);
  long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size())
    throw std::runtime_error("to_long: cannot parse '" + std::string(s) + "'");
  return v;
}

std::vector<std::string> hier_components(std::string_view path) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i <= path.size()) {
    const std::size_t j = path.find('/', i);
    if (j == std::string_view::npos) {
      if (i < path.size()) out.emplace_back(path.substr(i));
      break;
    }
    if (j > i) out.emplace_back(path.substr(i, j - i));
    i = j + 1;
  }
  return out;
}

int common_prefix_depth(std::string_view a, std::string_view b) {
  int depth = 0;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const std::size_t ja = a.find('/', ia);
    const std::size_t jb = b.find('/', ib);
    const std::string_view ca = a.substr(ia, (ja == std::string_view::npos ? a.size() : ja) - ia);
    const std::string_view cb = b.substr(ib, (jb == std::string_view::npos ? b.size() : jb) - ib);
    if (ca != cb || ca.empty()) break;
    // Only count a component as shared hierarchy if it is not the leaf of
    // either path (the leaf is the cell itself, not a module).
    if (ja == std::string_view::npos || jb == std::string_view::npos) break;
    ++depth;
    ia = ja + 1;
    ib = jb + 1;
  }
  return depth;
}

}  // namespace rp
