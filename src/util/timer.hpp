#pragma once
// Wall-clock timing helpers for flow-stage runtime reporting.

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace rp {

class Timer {
 public:
  Timer() { reset(); }
  void reset() { start_ = Clock::now(); }
  /// Elapsed wall time in seconds since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage runtimes; used by the flow's runtime breakdown.
class StageTimes {
 public:
  void add(const std::string& stage, double sec);
  double get(const std::string& stage) const;
  double total() const;
  std::string report() const;

 private:
  std::vector<std::pair<std::string, double>> stages_;
};

/// RAII: adds the scope's elapsed time to a StageTimes entry at destruction.
class ScopedStage {
 public:
  ScopedStage(StageTimes& st, std::string stage) : st_(st), stage_(std::move(stage)) {}
  ~ScopedStage() { st_.add(stage_, timer_.seconds()); }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageTimes& st_;
  std::string stage_;
  Timer timer_;
};

}  // namespace rp
