#pragma once
// Wall-clock timing helpers for flow-stage runtime reporting.

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace rp {

class Timer {
 public:
  Timer() { reset(); }
  void reset() { start_ = Clock::now(); }
  /// Elapsed wall time in seconds since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage runtimes; used by the flow's runtime breakdown.
///
/// Stage names may be hierarchical paths ("gp/level2/solve"): nested
/// ScopedStage instances on the same StageTimes compose such paths
/// automatically, report() renders the tree, and total() sums only the root
/// stages (a child's time is already inside its parent). The flat API —
/// add()/get() with plain names — behaves exactly as before.
class StageTimes {
 public:
  void add(const std::string& stage, double sec);
  double get(const std::string& stage) const;
  /// Σ over root stages (names without '/'): wall-clock, not double-counted.
  double total() const;
  /// Tree-formatted breakdown, one stage per line, children indented.
  std::string report() const;
  /// Legacy one-line "name=1.23s ... total=…s" form (root stages only).
  std::string report_flat() const;

  /// Copy every entry of `other` in under `prefix/` (used to splice a
  /// sub-component's private StageTimes into the flow's).
  void merge(const std::string& prefix, const StageTimes& other);

  const std::vector<std::pair<std::string, double>>& entries() const { return stages_; }

 private:
  friend class ScopedStage;
  /// Compose `stage` under the currently open ScopedStage path.
  std::string compose(const std::string& stage) const;

  std::vector<std::pair<std::string, double>> stages_;
  std::vector<std::string> open_;  ///< Stack of live ScopedStage names.
};

/// RAII: adds the scope's elapsed time to a StageTimes entry at destruction.
/// Nested ScopedStages on the same StageTimes record hierarchical paths:
/// ScopedStage("solve") inside ScopedStage("gp") accumulates "gp/solve".
///
/// Single-thread-only: StageTimes' open-stage stack has no synchronization,
/// so a stage must close on the thread that opened it. Closing elsewhere
/// (e.g. a span moved into a pool chunk via the caller-as-worker-0 path)
/// would silently corrupt the nesting tree — it asserts instead.
class ScopedStage {
 public:
  ScopedStage(StageTimes& st, std::string stage)
      : st_(st), path_(st.compose(stage)), owner_(std::this_thread::get_id()) {
    st_.open_.push_back(std::move(stage));
  }
  ~ScopedStage() {
    RP_ASSERT(owner_ == std::this_thread::get_id(),
              "ScopedStage closed on a different thread than it was opened on");
    st_.open_.pop_back();
    st_.add(path_, timer_.seconds());
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageTimes& st_;
  std::string path_;
  std::thread::id owner_;
  Timer timer_;
};

}  // namespace rp
