#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rp {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched.
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
    newline_indent();
  }
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(static_cast<std::size_t>(indent_) * needs_comma_.size(), ' ');
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_members = !needs_comma_.empty() && needs_comma_.back();
  needs_comma_.pop_back();
  if (had_members) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_members = !needs_comma_.empty() && needs_comma_.back();
  needs_comma_.pop_back();
  if (had_members) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += indent_ > 0 ? "\": " : "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  comma();
  char buf[40];
  // %.17g round-trips any double; trim to the shortest representation that
  // still parses back exactly.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------- parser

const JsonValue& JsonValue::at(const std::string& k) const {
  if (!is_object()) throw std::runtime_error("json: at('" + k + "') on non-object");
  const auto it = obj.find(k);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + k + "'");
  return it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view t) : t_(t) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != t_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) + ": " +
                             why);
  }

  void skip_ws() {
    while (pos_ < t_.size() &&
           (t_[pos_] == ' ' || t_[pos_] == '\t' || t_[pos_] == '\n' || t_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= t_.size()) fail("unexpected end of input");
    return t_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (t_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::Bool;
      v.b = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::Bool;
      v.b = false;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string k = parse_string();
      skip_ws();
      expect(':');
      v.obj[std::move(k)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > t_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = t_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not needed for the
          // telemetry documents this parser validates).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < t_.size() && (t_[pos_] == '-' || t_[pos_] == '+')) ++pos_;
    bool any = false;
    const auto digits = [&] {
      while (pos_ < t_.size() && t_[pos_] >= '0' && t_[pos_] <= '9') {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < t_.size() && t_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < t_.size() && (t_[pos_] == '-' || t_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any) fail("invalid value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.num = std::strtod(std::string(t_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }

  std::string_view t_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace rp
