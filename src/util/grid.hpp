#pragma once
// Dense 2-D grids over the die area.
//
// Grid2D<T>  — row-major value grid indexed (ix, iy), ix is the x/column index.
// GridMap    — geometry binding: die rect -> nx × ny bins, with coordinate
//              <-> index mapping and area-overlap rasterization helpers.
// PrefixSum2D — O(1) rectangle-sum queries after an O(nx*ny) build; used for
//              density and congestion window queries.

#include <vector>

#include "util/assert.hpp"
#include "util/geometry.hpp"

namespace rp {

template <typename T>
class Grid2D {
 public:
  Grid2D() = default;
  Grid2D(int nx, int ny, T init = T{})
      : nx_(nx), ny_(ny), data_(static_cast<std::size_t>(nx) * ny, init) {
    RP_ASSERT(nx >= 0 && ny >= 0, "Grid2D negative dims");
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t size() const { return data_.size(); }

  T& at(int ix, int iy) {
    RP_ASSERT(in_bounds(ix, iy), "Grid2D::at out of bounds");
    return data_[idx(ix, iy)];
  }
  const T& at(int ix, int iy) const {
    RP_ASSERT(in_bounds(ix, iy), "Grid2D::at out of bounds");
    return data_[idx(ix, iy)];
  }
  T& operator()(int ix, int iy) { return data_[idx(ix, iy)]; }
  const T& operator()(int ix, int iy) const { return data_[idx(ix, iy)]; }

  bool in_bounds(int ix, int iy) const { return ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

 private:
  std::size_t idx(int ix, int iy) const {
    return static_cast<std::size_t>(iy) * nx_ + ix;
  }

  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> data_;
};

/// Maps a die rectangle onto an nx × ny bin grid.
class GridMap {
 public:
  GridMap() = default;
  GridMap(Rect die, int nx, int ny) : die_(die), nx_(nx), ny_(ny) {
    RP_ASSERT(nx > 0 && ny > 0, "GridMap needs positive bin counts");
    RP_ASSERT(die.width() > 0 && die.height() > 0, "GridMap needs a non-empty die");
    bw_ = die.width() / nx;
    bh_ = die.height() / ny;
  }

  const Rect& die() const { return die_; }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  double bin_w() const { return bw_; }
  double bin_h() const { return bh_; }
  double bin_area() const { return bw_ * bh_; }

  /// Bin index containing coordinate x (clamped into [0, nx-1]).
  int ix_of(double x) const {
    const int i = static_cast<int>((x - die_.lx) / bw_);
    return std::clamp(i, 0, nx_ - 1);
  }
  int iy_of(double y) const {
    const int i = static_cast<int>((y - die_.ly) / bh_);
    return std::clamp(i, 0, ny_ - 1);
  }

  Rect bin_rect(int ix, int iy) const {
    return {die_.lx + ix * bw_, die_.ly + iy * bh_, die_.lx + (ix + 1) * bw_,
            die_.ly + (iy + 1) * bh_};
  }
  Point bin_center(int ix, int iy) const { return bin_rect(ix, iy).center(); }

  /// Inclusive bin-index range [ix0..ix1] × [iy0..iy1] touched by r.
  struct BinRange {
    int ix0, iy0, ix1, iy1;
  };
  BinRange bins_touching(const Rect& r) const {
    return {ix_of(r.lx), iy_of(r.ly),
            // Upper edge exactly on a bin boundary should not spill into the
            // next bin; nudge by a tiny epsilon of bin size.
            ix_of(r.hx - 1e-9 * bw_), iy_of(r.hy - 1e-9 * bh_)};
  }

  /// Rasterize rect area into grid: for each touched bin, call
  /// fn(ix, iy, overlap_area).
  template <typename Fn>
  void rasterize(const Rect& r, Fn&& fn) const {
    if (r.width() <= 0 || r.height() <= 0) return;
    const BinRange br = bins_touching(r.intersect(die_));
    for (int iy = br.iy0; iy <= br.iy1; ++iy) {
      for (int ix = br.ix0; ix <= br.ix1; ++ix) {
        const double a = bin_rect(ix, iy).overlap_area(r);
        if (a > 0) fn(ix, iy, a);
      }
    }
  }

 private:
  Rect die_;
  int nx_ = 0;
  int ny_ = 0;
  double bw_ = 0.0;
  double bh_ = 0.0;
};

/// 2-D inclusive prefix sums for O(1) rectangle sums over a Grid2D<double>.
class PrefixSum2D {
 public:
  PrefixSum2D() = default;
  explicit PrefixSum2D(const Grid2D<double>& g) { build(g); }

  void build(const Grid2D<double>& g) {
    nx_ = g.nx();
    ny_ = g.ny();
    ps_.assign(static_cast<std::size_t>(nx_ + 1) * (ny_ + 1), 0.0);
    for (int iy = 0; iy < ny_; ++iy) {
      double row = 0.0;
      for (int ix = 0; ix < nx_; ++ix) {
        row += g(ix, iy);
        at(ix + 1, iy + 1) = at(ix + 1, iy) + row;
      }
    }
  }

  /// Sum over bin-index rectangle [ix0..ix1] × [iy0..iy1], inclusive.
  double sum(int ix0, int iy0, int ix1, int iy1) const {
    ix0 = std::max(ix0, 0);
    iy0 = std::max(iy0, 0);
    ix1 = std::min(ix1, nx_ - 1);
    iy1 = std::min(iy1, ny_ - 1);
    if (ix0 > ix1 || iy0 > iy1) return 0.0;
    return at(ix1 + 1, iy1 + 1) - at(ix0, iy1 + 1) - at(ix1 + 1, iy0) + at(ix0, iy0);
  }

 private:
  double& at(int ix, int iy) { return ps_[static_cast<std::size_t>(iy) * (nx_ + 1) + ix]; }
  double at(int ix, int iy) const {
    return ps_[static_cast<std::size_t>(iy) * (nx_ + 1) + ix];
  }

  int nx_ = 0;
  int ny_ = 0;
  std::vector<double> ps_;
};

}  // namespace rp
