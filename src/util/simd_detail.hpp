#pragma once
// Shared building blocks for the simd kernel implementations. Every
// dispatch level includes this header so the scalar tails, the exp
// polynomial, and the lane-combine trees are literally the same code in
// each translation unit — the foundation of the bitwise-identity contract
// (see util/simd.hpp). Nothing here is public API.

#include <bit>
#include <cstddef>
#include <cstdint>

namespace rp::simd::detail {

// ----------------------------------------------------------------- exp ----
// exp(x) for finite x <= 0, identical in every path:
//   k = floor(x*log2e + 0.5)            (floor, NOT round-to-nearest-even)
//   r = (x - k*ln2_hi) - k*ln2_lo       (split constant, |r| <= 0.3466)
//   p = Horner(degree-13 Taylor, 1/i!)  (~4e-18 max relative error on |r|)
//   exp(x) = p * 2^k                    (exponent-bit construction)
// x < kExpFlush flushes to exactly 0.0 (k would leave the normal range).
inline constexpr double kExpLog2e = 1.4426950408889634074;
inline constexpr double kExpLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kExpLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kExpFlush = -708.0;
inline constexpr double kExpPoly[14] = {
    1.0,                     // 1/0!
    1.0,                     // 1/1!
    1.0 / 2.0,               // 1/2!
    1.0 / 6.0,               // ...
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
    1.0 / 479001600.0,
    1.0 / 6227020800.0,      // 1/13!
};

inline double exp_one(double x) {
  if (x < kExpFlush) return 0.0;
  const double kd = __builtin_floor(x * kExpLog2e + 0.5);
  const double r = (x - kd * kExpLn2Hi) - kd * kExpLn2Lo;
  double p = kExpPoly[13];
  for (int j = 12; j >= 0; --j) p = p * r + kExpPoly[j];
  const auto k = static_cast<std::int64_t>(kd);
  const double scale =
      std::bit_cast<double>(static_cast<std::uint64_t>(k + 1023) << 52);
  return p * scale;
}

// ------------------------------------------------- min/max lane semantics --
// Mirrors _mm256_min_pd/_mm256_max_pd exactly: keep the accumulator when
// the comparison holds, take the candidate otherwise (also what NEON's
// vminq/vmaxq do for the finite inputs these kernels see).
inline double min2(double acc, double v) { return acc < v ? acc : v; }
inline double max2(double acc, double v) { return acc > v ? acc : v; }

// --------------------------------------------------------- scalar bodies --
// Sequential tails + full-array scalar fallbacks. The vector paths call
// the *_tail functions for the final n%4 elements; the scalar dispatch
// level runs the 4-lane main loop below followed by the same tails.

inline double sum_tail(const double* x, std::size_t b, std::size_t n) {
  double t = 0.0;
  for (std::size_t i = b; i < n; ++i) t += x[i];
  return t;
}

inline double dot_tail(const double* a, const double* b_, std::size_t b,
                       std::size_t n) {
  double t = 0.0;
  for (std::size_t i = b; i < n; ++i) t += a[i] * b_[i];
  return t;
}

inline double pr_num_tail(const double* g, const double* gp, std::size_t b,
                          std::size_t n) {
  double t = 0.0;
  for (std::size_t i = b; i < n; ++i) t += g[i] * (g[i] - gp[i]);
  return t;
}

/// Lane combine for additive reductions: tree is (l0+l1) + (l2+l3), tail last.
inline double combine_sum(double l0, double l1, double l2, double l3,
                          double tail) {
  return ((l0 + l1) + (l2 + l3)) + tail;
}

inline double abs_one(double v) { return __builtin_fabs(v); }

// Element-wise bodies shared verbatim between scalar level and vector tails.
inline void affine_range(const double* x, std::size_t b, std::size_t n,
                         double bias, double scale, double* out) {
  for (std::size_t i = b; i < n; ++i) out[i] = (x[i] + bias) * scale;
}

inline void exp_range(const double* x, std::size_t b, std::size_t n,
                      double* out) {
  for (std::size_t i = b; i < n; ++i) out[i] = exp_one(x[i]);
}

inline void neg_range(const double* x, std::size_t b, std::size_t n,
                      double* out) {
  for (std::size_t i = b; i < n; ++i) out[i] = -x[i];
}

inline void axpy_range(double a, const double* x, std::size_t b, std::size_t n,
                       double* y) {
  for (std::size_t i = b; i < n; ++i) y[i] = y[i] + a * x[i];
}

inline void axpy_out_range(const double* z, double a, const double* d,
                           std::size_t b, std::size_t n, double* out) {
  for (std::size_t i = b; i < n; ++i) out[i] = z[i] + a * d[i];
}

inline void cg_dir_range(const double* g, double beta, double* d,
                         std::size_t b, std::size_t n) {
  for (std::size_t i = b; i < n; ++i) d[i] = -g[i] + beta * d[i];
}

inline void lse_grad_range(const double* ep, const double* em, std::size_t b,
                           std::size_t n, double rsp, double rsm, double* dc) {
  for (std::size_t i = b; i < n; ++i) dc[i] = ep[i] * rsp - em[i] * rsm;
}

inline void wa_grad_range(const double* c, const double* ep, const double* em,
                          std::size_t b, std::size_t n, double xmax,
                          double xmin, double ig, double rsp, double rsm,
                          double* dc) {
  for (std::size_t i = b; i < n; ++i) {
    const double tmax = (c[i] - xmax) * ig;
    const double tmin = (c[i] - xmin) * ig;
    const double dmax = (ep[i] * (1.0 + tmax)) * rsp;
    const double dmin = (em[i] * (1.0 - tmin)) * rsm;
    dc[i] = dmax - dmin;
  }
}

inline double bell_one(double dx, double d1, double d2, double a, double b) {
  const double d = abs_one(dx);
  if (d <= d1) return 1.0 - (a * d) * d;
  if (d <= d2) {
    const double t = d - d2;
    return (b * t) * t;
  }
  return 0.0;
}

inline double bell_deriv_one(double dx, double d1, double d2, double a,
                             double b) {
  const double d = abs_one(dx);
  const double sign = dx >= 0.0 ? 1.0 : -1.0;
  if (d <= d1) return ((-2.0 * a) * d) * sign;
  if (d <= d2) return ((2.0 * b) * (d - d2)) * sign;
  return 0.0;
}

inline void bell_row_range(double d0, double step, std::size_t b,
                           std::size_t n, double d1, double d2, double a,
                           double bb, double* out) {
  for (std::size_t i = b; i < n; ++i)
    out[i] = bell_one(d0 + static_cast<double>(i) * step, d1, d2, a, bb);
}

inline void bell_deriv_row_range(double d0, double step, std::size_t b,
                                 std::size_t n, double d1, double d2, double a,
                                 double bb, double* out) {
  for (std::size_t i = b; i < n; ++i)
    out[i] = bell_deriv_one(d0 + static_cast<double>(i) * step, d1, d2, a, bb);
}

}  // namespace rp::simd::detail
