#include "util/profiler.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "util/json.hpp"
#include "util/obs_context.hpp"
#include "util/parallel.hpp"

namespace rp::profiler {

// --------------------------------------------------------------- histogram

const std::uint64_t* LatencyHistogram::edges_ns() {
  // edges[0] = 0, edges[i] ≈ 100 ns * 10^((i-1)/4) for i in 1..kBuckets,
  // built as mantissa * 10^decade with the four per-decade mantissas rounded
  // once — so e[i + 4] == 10 * e[i] holds EXACTLY and bucket_of() works in
  // exact integer arithmetic, reproducible on every platform.
  static const auto kEdges = [] {
    constexpr std::uint64_t kMantissa[4] = {100, 178, 316, 562};  // 100·10^(k/4)
    std::array<std::uint64_t, kBuckets + 1> e{};
    e[0] = 0;
    std::uint64_t decade = 1;
    for (int i = 1; i <= kBuckets; ++i) {
      e[static_cast<std::size_t>(i)] = kMantissa[(i - 1) % 4] * decade;
      if (i % 4 == 0) decade *= 10;
    }
    return e;
  }();
  return kEdges.data();
}

int LatencyHistogram::bucket_of(std::uint64_t ns) {
  const std::uint64_t* e = edges_ns();
  // Binary search for the last edge <= ns (edges are strictly ascending).
  int lo = 0, hi = kBuckets;  // bucket index range; edge index = bucket + 1
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (ns < e[mid + 1]) hi = mid;
    else lo = mid + 1;
  }
  return lo < kBuckets ? lo : kBuckets - 1;  // clamp overflow into the last
}

void LatencyHistogram::record(std::uint64_t ns) {
  ++counts[static_cast<std::size_t>(bucket_of(ns))];
  if (samples == 0 || ns < min_ns) min_ns = ns;
  if (ns > max_ns) max_ns = ns;
  ++samples;
  total_ns += ns;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.samples == 0) return;
  for (int b = 0; b < kBuckets; ++b) counts[b] += other.counts[b];
  if (samples == 0 || other.min_ns < min_ns) min_ns = other.min_ns;
  if (other.max_ns > max_ns) max_ns = other.max_ns;
  samples += other.samples;
  total_ns += other.total_ns;
}

void LatencyHistogram::clear() { *this = LatencyHistogram{}; }

double LatencyHistogram::quantile_us(double q) const {
  if (samples == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, samples]; walk buckets to the one containing it.
  const double rank = std::max(1.0, std::ceil(q * static_cast<double>(samples)));
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (static_cast<double>(cum + counts[b]) >= rank) {
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(counts[b]);
      const double lo = bucket_lo_us(b);
      // The last bucket is open-ended; its effective ceiling is the exact max.
      const double hi = b == kBuckets - 1 ? max_us() : bucket_hi_us(b);
      const double v = lo + frac * (std::max(hi, lo) - lo);
      return std::clamp(v, min_us(), max_us());
    }
    cum += counts[b];
  }
  return max_us();
}

// ---------------------------------------------------------------- registry

Profiler::Profiler() {
  // Starts at 1 so a zero-initialized macro cache never matches a profiler.
  static std::atomic<std::uint64_t> counter{0};
  epoch_ = counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Profiler& Profiler::instance() { return obs::current().profiler(); }

Region& Profiler::region(const std::string& name) { return regions_[name]; }

void Profiler::record(const std::string& name, std::uint64_t ns) {
  regions_[name].hist.record(ns);
}

void Profiler::reset() {
  for (auto& [name, r] : regions_) r.hist.clear();
}

std::vector<std::pair<std::string, const Region*>> Profiler::regions() const {
  std::vector<std::pair<std::string, const Region*>> out;
  out.reserve(regions_.size());
  for (const auto& [name, r] : regions_) out.emplace_back(name, &r);
  return out;
}

// ------------------------------------------------------------------ switch

namespace {
bool g_enabled = false;
}

bool enabled() { return g_enabled; }

void set_enabled(bool on) {
  g_enabled = on;
  parallel::set_pool_profiling(on);
}

bool env_requested() {
  const char* env = std::getenv("RP_PROFILE");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

void reset_all() {
  Profiler::instance().reset();
  parallel::reset_pool_profile();
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ----------------------------------------------------------------- report

namespace {

/// Histogram as JSON: summary quantiles + the non-empty buckets only (the
/// bucket layout is fixed, so sparse emission loses nothing).
void write_histogram(JsonWriter& w, const LatencyHistogram& h) {
  w.begin_object();
  w.kv("samples", static_cast<std::int64_t>(h.samples));
  w.kv("total_ms", h.total_ms());
  w.kv("mean_us", h.mean_us());
  w.kv("min_us", h.min_us());
  w.kv("p50_us", h.quantile_us(0.50));
  w.kv("p95_us", h.quantile_us(0.95));
  w.kv("p99_us", h.quantile_us(0.99));
  w.kv("max_us", h.max_us());
  w.key("buckets").begin_array();
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    if (h.counts[b] == 0) continue;
    w.begin_object();
    w.kv("lo_us", LatencyHistogram::bucket_lo_us(b));
    w.kv("hi_us", b == LatencyHistogram::kBuckets - 1
                      ? std::max(LatencyHistogram::bucket_hi_us(b), h.max_us())
                      : LatencyHistogram::bucket_hi_us(b));
    w.kv("count", static_cast<std::int64_t>(h.counts[b]));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void write_report_block(JsonWriter& w) {
  w.key("profile").begin_object();
  w.kv("enabled", true);

  w.key("regions").begin_object();
  for (const auto& [name, r] : Profiler::instance().regions()) {
    if (r->hist.samples == 0) continue;
    w.key(name);
    write_histogram(w, r->hist);
  }
  w.end_object();

  const parallel::PoolProfile pool = parallel::pool_profile();
  w.key("pool").begin_object();
  w.kv("threads", static_cast<std::int64_t>(pool.threads));
  w.kv("regions", pool.regions);
  w.kv("wall_ms", pool.wall_ns / 1e6);
  w.kv("busy_ms", pool.busy_ns / 1e6);
  w.kv("efficiency_mean", pool.efficiency_mean);
  w.kv("efficiency_min", pool.efficiency_min);
  w.kv("imbalance_max", pool.imbalance_max);
  w.key("workers").begin_array();
  for (std::size_t i = 0; i < pool.workers.size(); ++i) {
    const parallel::WorkerProfile& wp = pool.workers[i];
    w.begin_object();
    w.kv("worker", static_cast<std::int64_t>(i));
    w.kv("busy_ms", static_cast<double>(wp.busy_ns) / 1e6);
    w.kv("wait_ms", static_cast<double>(wp.wait_ns) / 1e6);
    w.kv("chunks", wp.chunks);
    w.end_object();
  }
  w.end_array();
  w.key("chunk");
  write_histogram(w, pool.chunk_hist);
  w.end_object();

  w.end_object();
}

std::string region_jsonl_rows(const std::string& bench, const std::string& flow) {
  if (!enabled()) return {};
  std::string out;
  for (const auto& [name, r] : Profiler::instance().regions()) {
    const LatencyHistogram& h = r->hist;
    if (h.samples == 0) continue;
    JsonWriter w;
    w.begin_object();
    w.kv("schema", "profile_region");
    w.kv("bench", bench);
    w.kv("flow", flow);
    w.kv("region", name);
    w.kv("samples", static_cast<std::int64_t>(h.samples));
    w.kv("total_ms", h.total_ms());
    w.kv("mean_us", h.mean_us());
    w.kv("p50_us", h.quantile_us(0.50));
    w.kv("p95_us", h.quantile_us(0.95));
    w.kv("p99_us", h.quantile_us(0.99));
    w.kv("max_us", h.max_us());
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

}  // namespace rp::profiler
