#include "util/resource_sampler.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "util/event_bus.hpp"
#include "util/parallel.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define RP_SAMPLER_POSIX 1
#endif

namespace rp::obs {

// ---------------------------------------------------------- measurement

std::int64_t ResourceSampler::current_rss_kb() {
#if defined(__linux__)
  // /proc/self/statm field 2 is resident pages; one bounded read, no stdio
  // buffering churn. Cheaper and CURRENT (getrusage only exposes the peak).
  static const long page_kb = ::sysconf(_SC_PAGESIZE) / 1024;
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    long long size = 0, resident = 0;
    const int n = std::fscanf(f, "%lld %lld", &size, &resident);
    std::fclose(f);
    if (n == 2 && resident >= 0)
      return static_cast<std::int64_t>(resident) *
             (page_kb > 0 ? page_kb : 4);
  }
#endif
#ifdef RP_SAMPLER_POSIX
  struct rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<std::int64_t>(ru.ru_maxrss / 1024);  // bytes
#else
    return static_cast<std::int64_t>(ru.ru_maxrss);  // KiB
#endif
  }
#endif
  return 0;
}

void ResourceSampler::cpu_times_ms(std::uint64_t* utime_ms,
                                   std::uint64_t* stime_ms) {
  std::uint64_t u = 0, s = 0;
#ifdef RP_SAMPLER_POSIX
  struct rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
    u = static_cast<std::uint64_t>(ru.ru_utime.tv_sec) * 1000u +
        static_cast<std::uint64_t>(ru.ru_utime.tv_usec) / 1000u;
    s = static_cast<std::uint64_t>(ru.ru_stime.tv_sec) * 1000u +
        static_cast<std::uint64_t>(ru.ru_stime.tv_usec) / 1000u;
  }
#endif
  if (utime_ms != nullptr) *utime_ms = u;
  if (stime_ms != nullptr) *stime_ms = s;
}

// -------------------------------------------------------------- NDJSON

std::string resource_ndjson(const ResourceSample& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"schema\":\"rp_resource\",\"v\":1,\"t_ms\":%llu,"
                "\"rss_kb\":%lld,\"utime_ms\":%llu,\"stime_ms\":%llu,"
                "\"pool_busy\":%.4f}",
                static_cast<unsigned long long>(s.t_ms),
                static_cast<long long>(s.rss_kb),
                static_cast<unsigned long long>(s.utime_ms),
                static_cast<unsigned long long>(s.stime_ms), s.pool_busy);
  return buf;
}

// ------------------------------------------------------------- sampler

ResourceSampler::~ResourceSampler() { stop(); }

ResourceSample ResourceSampler::take_sample() const {
  ResourceSample s;
  s.t_ms = (profiler::now_ns() - epoch_ns_) / 1000000u;
  s.rss_kb = current_rss_kb();
  cpu_times_ms(&s.utime_ms, &s.stime_ms);
  const auto& pool = parallel::ThreadPool::instance();
  const int threads = pool.threads();
  int busy = pool.busy_workers();
  if (busy < 0) busy = 0;
  if (busy > threads) busy = threads;
  s.pool_busy = threads > 0 ? static_cast<double>(busy) / threads : 0.0;
  return s;
}

void ResourceSampler::init(const Options& opt) {
  stop();
  std::lock_guard<std::mutex> lk(m_);
  opt_ = opt;
  if (opt_.tick_ms < 1) opt_.tick_ms = 1;
  if (opt_.capacity < 4) opt_.capacity = 4;
  enabled_ = true;
  epoch_ns_ = profiler::now_ns();
  stride_ = 1;
  taken_ = 0;
  downsample_rounds_ = 0;
  peak_rss_kb_ = 0;
  peak_pool_busy_ = 0.0;
  last_utime_ms_ = last_stime_ms_ = 0;
  ring_.clear();
  ring_.reserve(static_cast<std::size_t>(opt_.capacity));
  ingest(take_sample(), /*force_keep=*/true);  // t=0 anchor
}

void ResourceSampler::ingest(const ResourceSample& s, bool force_keep) {
  ++taken_;
  if (s.rss_kb > peak_rss_kb_) peak_rss_kb_ = s.rss_kb;
  if (s.pool_busy > peak_pool_busy_) peak_pool_busy_ = s.pool_busy;
  last_utime_ms_ = s.utime_ms;
  last_stime_ms_ = s.stime_ms;
  // Keep every stride-th sample (sample 0 always kept); peaks above already
  // saw the dropped ones, so "peak >= every kept sample" is preserved.
  if (!force_keep && (taken_ - 1) % static_cast<std::int64_t>(stride_) != 0)
    return;
  ring_.push_back(s);
  if (ring_.size() >= static_cast<std::size_t>(opt_.capacity)) {
    // Compact in place: keep even indices, double the stride. The timeline
    // coarsens instead of truncating.
    std::size_t w = 0;
    for (std::size_t r = 0; r < ring_.size(); r += 2) ring_[w++] = ring_[r];
    ring_.resize(w);
    stride_ *= 2;
    ++downsample_rounds_;
  }
  if (opt_.stream != nullptr) {
    const std::string line = resource_ndjson(s);
    opt_.stream->write_raw_line(line.data(), line.size());
  }
}

void ResourceSampler::ingest_for_test(const ResourceSample& s) {
  std::lock_guard<std::mutex> lk(m_);
  ingest(s, /*force_keep=*/false);
}

void ResourceSampler::start(const Options& opt) {
  if (running()) return;
  init(opt);
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_requested_ = false;
    thread_running_ = true;
  }
  thread_ = std::thread([this] { sampler_loop(); });
}

void ResourceSampler::sampler_loop() {
  std::unique_lock<std::mutex> lk(m_);
  while (!stop_requested_) {
    // Ticks drift with processing time; fine — t_ms carries the real clock.
    if (cv_.wait_for(lk, std::chrono::milliseconds(opt_.tick_ms),
                     [this] { return stop_requested_; }))
      break;
    lk.unlock();
    const ResourceSample s = take_sample();  // syscalls outside the lock
    lk.lock();
    if (stop_requested_) break;
    ingest(s, /*force_keep=*/false);
  }
  thread_running_ = false;
}

void ResourceSampler::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (!thread_running_ && !thread_.joinable()) {
      // Never started (or already stopped and joined): nothing to do beyond
      // the final sample below when enabled.
      if (!enabled_) return;
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
    // Final sample from the calling thread: even a sub-tick run yields a
    // start + end pair, and the series always covers the full run span.
    const ResourceSample s = take_sample();
    std::lock_guard<std::mutex> lk(m_);
    ingest(s, /*force_keep=*/true);
    stop_requested_ = false;
  }
}

bool ResourceSampler::running() const {
  std::lock_guard<std::mutex> lk(m_);
  return thread_running_;
}

ResourceSampler::Summary ResourceSampler::summary() const {
  std::lock_guard<std::mutex> lk(m_);
  Summary out;
  out.enabled = enabled_;
  if (!enabled_) return out;
  out.tick_ms = opt_.tick_ms;
  out.effective_tick_ms = opt_.tick_ms * static_cast<int>(stride_);
  out.downsample_rounds = downsample_rounds_;
  out.samples_taken = taken_;
  out.peak_rss_kb = peak_rss_kb_;
  out.peak_pool_busy = peak_pool_busy_;
  out.cpu_utime_ms = last_utime_ms_;
  out.cpu_stime_ms = last_stime_ms_;
  out.samples = ring_;
  return out;
}

}  // namespace rp::obs
