#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "util/logger.hpp"
#include "util/simd_detail.hpp"

namespace rp::simd {

using namespace detail;

// ------------------------------------------------------------ scalar level
// The scalar kernels execute the 4-virtual-lane reduction tree literally
// (see util/simd.hpp); vector levels map the same lanes onto registers.

namespace {

void s_affine(const double* x, std::size_t n, double bias, double scale,
              double* out) {
  affine_range(x, 0, n, bias, scale, out);
}

void s_exp_nonpos(const double* x, std::size_t n, double* out) {
  exp_range(x, 0, n, out);
}

void s_neg(const double* x, std::size_t n, double* out) {
  neg_range(x, 0, n, out);
}

void s_axpy(double a, const double* x, std::size_t n, double* y) {
  axpy_range(a, x, 0, n, y);
}

void s_axpy_out(const double* z, double a, const double* d, std::size_t n,
                double* out) {
  axpy_out_range(z, a, d, 0, n, out);
}

void s_cg_dir(const double* g, double beta, double* d, std::size_t n) {
  cg_dir_range(g, beta, d, 0, n);
}

void s_lse_grad(const double* ep, const double* em, std::size_t n, double rsp,
                double rsm, double* dc) {
  lse_grad_range(ep, em, 0, n, rsp, rsm, dc);
}

void s_wa_grad(const double* c, const double* ep, const double* em,
               std::size_t n, double xmax, double xmin, double ig, double rsp,
               double rsm, double* dc) {
  wa_grad_range(c, ep, em, 0, n, xmax, xmin, ig, rsp, rsm, dc);
}

void s_bell_row(double d0, double step, std::size_t n, double d1, double d2,
                double a, double b, double* out) {
  bell_row_range(d0, step, 0, n, d1, d2, a, b, out);
}

void s_bell_deriv_row(double d0, double step, std::size_t n, double d1,
                      double d2, double a, double b, double* out) {
  bell_deriv_row_range(d0, step, 0, n, d1, d2, a, b, out);
}

void s_minmax(const double* x, std::size_t n, double* mn_out, double* mx_out) {
  double mn, mx;
  std::size_t i;
  if (n >= 4) {
    double mn0 = x[0], mn1 = x[1], mn2 = x[2], mn3 = x[3];
    double mx0 = x[0], mx1 = x[1], mx2 = x[2], mx3 = x[3];
    for (i = 4; i + 3 < n; i += 4) {
      mn0 = min2(mn0, x[i]);
      mn1 = min2(mn1, x[i + 1]);
      mn2 = min2(mn2, x[i + 2]);
      mn3 = min2(mn3, x[i + 3]);
      mx0 = max2(mx0, x[i]);
      mx1 = max2(mx1, x[i + 1]);
      mx2 = max2(mx2, x[i + 2]);
      mx3 = max2(mx3, x[i + 3]);
    }
    mn = min2(min2(mn0, mn1), min2(mn2, mn3));
    mx = max2(max2(mx0, mx1), max2(mx2, mx3));
  } else {
    mn = mx = x[0];
    i = 1;
  }
  for (; i < n; ++i) {
    mn = min2(mn, x[i]);
    mx = max2(mx, x[i]);
  }
  *mn_out = mn;
  *mx_out = mx;
}

double s_sum(const double* x, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    l0 += x[i];
    l1 += x[i + 1];
    l2 += x[i + 2];
    l3 += x[i + 3];
  }
  return combine_sum(l0, l1, l2, l3, sum_tail(x, i, n));
}

double s_dot(const double* a, const double* b, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  return combine_sum(l0, l1, l2, l3, dot_tail(a, b, i, n));
}

double s_abs_max(const double* x, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    l0 = max2(l0, abs_one(x[i]));
    l1 = max2(l1, abs_one(x[i + 1]));
    l2 = max2(l2, abs_one(x[i + 2]));
    l3 = max2(l3, abs_one(x[i + 3]));
  }
  double m = max2(max2(l0, l1), max2(l2, l3));
  for (; i < n; ++i) m = max2(m, abs_one(x[i]));
  return m;
}

double s_pr_num(const double* g, const double* gp, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    l0 += g[i] * (g[i] - gp[i]);
    l1 += g[i + 1] * (g[i + 1] - gp[i + 1]);
    l2 += g[i + 2] * (g[i + 2] - gp[i + 2]);
    l3 += g[i + 3] * (g[i + 3] - gp[i + 3]);
  }
  return combine_sum(l0, l1, l2, l3, pr_num_tail(g, gp, i, n));
}

constexpr Ops kScalarOps = {
    Level::Scalar,  s_affine,   s_exp_nonpos, s_neg,
    s_axpy,         s_axpy_out, s_cg_dir,     s_lse_grad,
    s_wa_grad,      s_bell_row, s_bell_deriv_row,
    s_minmax,       s_sum,      s_dot,        s_abs_max,
    s_pr_num,
};

}  // namespace

const Ops& scalar_ops() { return kScalarOps; }

// -------------------------------------------------------------- dispatch --

const char* level_name(Level l) {
  switch (l) {
    case Level::Scalar: return "scalar";
    case Level::Avx2: return "avx2";
    case Level::Neon: return "neon";
  }
  return "?";
}

const HostFeatures& host_features() {
  static const HostFeatures f = [] {
    HostFeatures h;
#if defined(__x86_64__) || defined(__i386__)
    h.avx2 = __builtin_cpu_supports("avx2") != 0;
#elif defined(__aarch64__)
    h.neon = true;
#endif
    return h;
  }();
  return f;
}

namespace {

std::atomic<const Ops*> g_active{nullptr};
std::mutex g_mutex;
std::string g_requested = "auto";

const Ops* table_for(Level l) {
  if (l == Level::Avx2)
    if (const Ops* t = avx2_ops()) return t;
  if (l == Level::Neon)
    if (const Ops* t = neon_ops()) return t;
  return &scalar_ops();
}

// Requires g_mutex.
void apply_locked(const std::string& req, Level l) {
  g_requested = req;
  g_active.store(table_for(l), std::memory_order_release);
}

}  // namespace

Level resolve(const std::string& req, bool* recognized) {
  if (recognized != nullptr) *recognized = true;
  if (req == "off" || req == "scalar") return Level::Scalar;
  if (req == "avx2")
    return (host_features().avx2 && avx2_ops() != nullptr) ? Level::Avx2
                                                           : Level::Scalar;
  if (req == "neon")
    return (host_features().neon && neon_ops() != nullptr) ? Level::Neon
                                                           : Level::Scalar;
  if (req.empty() || req == "auto") {
    if (host_features().avx2 && avx2_ops() != nullptr) return Level::Avx2;
    if (host_features().neon && neon_ops() != nullptr) return Level::Neon;
    return Level::Scalar;
  }
  if (recognized != nullptr) *recognized = false;
  return Level::Scalar;
}

bool set_from_string(const std::string& req) {
  bool recognized = false;
  const Level l = resolve(req, &recognized);
  if (!recognized) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  if ((req == "avx2" || req == "neon") && l == Level::Scalar)
    RP_WARN("RP_SIMD=%s requested but unavailable on this host; "
            "falling back to scalar kernels", req.c_str());
  apply_locked(req, l);
  return true;
}

const Ops& ops() {
  const Ops* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    std::lock_guard<std::mutex> lock(g_mutex);
    t = g_active.load(std::memory_order_relaxed);
    if (t == nullptr) {
      const char* env = std::getenv("RP_SIMD");
      std::string req = env != nullptr ? env : "auto";
      bool recognized = false;
      Level l = resolve(req, &recognized);
      if (!recognized) {
        RP_WARN("unknown RP_SIMD value '%s'; using auto", req.c_str());
        req = "auto";
        l = resolve(req, nullptr);
      }
      apply_locked(req, l);
      t = g_active.load(std::memory_order_relaxed);
    }
  }
  return *t;
}

Level active_level() { return ops().level; }

const std::string& requested() {
  ops();  // force init so the provenance string is populated
  return g_requested;
}

}  // namespace rp::simd
