#pragma once
// Process-global telemetry: named counters/gauges and a flow-event trace.
//
// Three rules keep this layer cheap enough to leave compiled in:
//  * RP_COUNT / RP_GAUGE resolve their registry slot ONCE per call site
//    (function-local static pointer); the steady-state cost is one add/store.
//  * Trace spans check a single global flag before touching the clock; with
//    tracing off a span is a branch and nothing else.
//  * The registry never deallocates slots — reset() zeroes values in place,
//    so cached slot pointers stay valid across flow runs.
//
// The trace buffer serializes to the Chrome trace-event format
// (https://chromium.googlesource.com/catapult → trace_event format), loadable
// in chrome://tracing or https://ui.perfetto.dev.
//
// Like the logger, main-thread-only by contract: pool workers never touch
// the registry; parallel kernels bump counters from the calling thread.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rp::telemetry {

struct Counter {
  std::int64_t value = 0;
};
struct Gauge {
  double value = 0.0;
};

/// Process-global registry of named counters and gauges.
class Registry {
 public:
  static Registry& instance();

  /// Find-or-create. The returned reference stays valid for the process
  /// lifetime (reset() zeroes values but never moves slots).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Zero every counter and gauge (slot addresses are preserved).
  void reset();

  /// Current value, 0 for names never touched.
  std::int64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  /// Name-sorted snapshots for the run report.
  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;

 private:
  std::map<std::string, Counter> counters_;  ///< Node-based: stable addresses.
  std::map<std::string, Gauge> gauges_;
};

// ------------------------------------------------------------------ trace

/// One complete ("ph":"X") trace event; timestamps in µs since start_trace().
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int depth = 0;  ///< Span nesting depth at emission (0 = top level).
  int tid = 0;    ///< Trace lane: 0 = main thread, w >= 1 = pool worker w.
};

/// Begin collecting trace events (clears any previous buffer).
void start_trace();
/// Stop collecting (the buffer is kept until the next start_trace()).
void stop_trace();
bool trace_enabled();

/// Microseconds since start_trace() (0 when tracing is off).
double trace_now_us();

const std::vector<TraceEvent>& trace_events();

/// Append a complete event on an explicit thread lane. `start_ns` is a
/// profiler::now_ns() steady-clock stamp taken on any thread; the CALL must
/// come from the main thread (the pool uses this to flush per-worker chunk
/// spans after a region completes). No-op when tracing is off.
void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns, int tid);

/// Serialize the buffer as a Chrome trace-event JSON document.
std::string trace_json();
/// Write trace_json() to a file; returns false (and logs) on I/O failure.
bool write_trace_json(const std::string& path);

/// RAII span: records a complete trace event over its lifetime when tracing
/// is on, and feeds its duration into the profiler's region histogram when
/// profiling is on (either switch arms it; both off keeps it to two branches).
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  std::uint64_t t0_ns_ = 0;
  bool trace_ = false;
  bool profile_ = false;
};

/// Peak resident-set size of this process in KiB (0 where unsupported).
long peak_rss_kb();

}  // namespace rp::telemetry

// Call-site macros. The static slot pointer makes the steady-state cost of a
// counter bump one pointer-indirect add; safe because Registry slots are
// never deallocated.
#define RP_TELEMETRY_CONCAT2(a, b) a##b
#define RP_TELEMETRY_CONCAT(a, b) RP_TELEMETRY_CONCAT2(a, b)

#define RP_COUNT(name, delta)                                                       \
  do {                                                                              \
    static ::rp::telemetry::Counter* rp_tm_slot_ =                                  \
        &::rp::telemetry::Registry::instance().counter(name);                       \
    rp_tm_slot_->value += static_cast<std::int64_t>(delta);                         \
  } while (0)

#define RP_GAUGE(name, v)                                                           \
  do {                                                                              \
    static ::rp::telemetry::Gauge* rp_tm_slot_ =                                    \
        &::rp::telemetry::Registry::instance().gauge(name);                         \
    rp_tm_slot_->value = static_cast<double>(v);                                    \
  } while (0)

/// Scoped trace span with a unique local name.
#define RP_TRACE_SPAN(name) \
  ::rp::telemetry::TraceSpan RP_TELEMETRY_CONCAT(rp_tm_span_, __LINE__)(name)
