#pragma once
// Telemetry: named counters/gauges and a flow-event trace.
//
// Since PR 7 this state is PER-RUN, not per-process: a Registry and a
// TraceBuffer are owned by an obs::ObsContext (util/obs_context.hpp), and
// `Registry::instance()` resolves to the context bound to the current
// thread (falling back to a process-wide default, which preserves the old
// global behavior for code that never binds one).
//
// Three rules keep this layer cheap enough to leave compiled in:
//  * RP_COUNT / RP_GAUGE cache their registry slot per call site in a
//    thread_local stamped with the owning registry's EPOCH (process-unique,
//    minted at registry construction). A cache hit is one compare + one
//    add/store; a context switch changes the epoch and forces re-resolution,
//    so a stale pointer is never dereferenced.
//  * Trace spans check a single flag before touching the clock; with
//    tracing off a span is a branch and nothing else.
//  * A registry never deallocates slots — reset() zeroes values in place,
//    so cached slot pointers stay valid across flow runs within a context.
//
// The trace buffer serializes to the Chrome trace-event format
// (https://chromium.googlesource.com/catapult → trace_event format), loadable
// in chrome://tracing or https://ui.perfetto.dev.
//
// Like the logger, main-thread-only by contract: pool workers never touch
// the registry; parallel kernels bump counters from the calling thread.
// (Distinct threads bound to DISTINCT contexts may use their own registries
// concurrently — that is the whole point of the per-run design.)

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rp::profiler {
class Profiler;
}

namespace rp::telemetry {

struct Counter {
  std::int64_t value = 0;
};
struct Gauge {
  double value = 0.0;
};

/// Registry of named counters and gauges. One per ObsContext.
class Registry {
 public:
  Registry();

  /// The current thread's registry: the bound ObsContext's, else the
  /// process default's. (Kept as `instance()` so call sites read unchanged.)
  static Registry& instance();

  /// Find-or-create. The returned reference stays valid for the registry's
  /// lifetime (reset() zeroes values but never moves slots).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Zero every counter and gauge (slot addresses and epoch preserved).
  void reset();

  /// Process-unique id minted at construction; RP_COUNT/RP_GAUGE compare it
  /// to decide whether their cached slot pointer belongs to this registry.
  std::uint64_t epoch() const { return epoch_; }

  /// Current value, 0 for names never touched.
  std::int64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;

  /// Name-sorted snapshots for the run report.
  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;

  /// Allocation-free read-only views (the flight recorder walks these from
  /// contexts where allocating is forbidden).
  const std::map<std::string, Counter>& counters_map() const { return counters_; }
  const std::map<std::string, Gauge>& gauges_map() const { return gauges_; }

 private:
  std::map<std::string, Counter> counters_;  ///< Node-based: stable addresses.
  std::map<std::string, Gauge> gauges_;
  std::uint64_t epoch_ = 0;
};

// ------------------------------------------------------------------ trace

/// One complete ("ph":"X") trace event; timestamps in µs since start().
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int depth = 0;  ///< Span nesting depth at emission (0 = top level).
  int tid = 0;    ///< Trace lane: 0 = main thread, w >= 1 = pool worker w.
};

/// The span buffer behind RP_TRACE_SPAN. One per ObsContext; the free
/// functions below operate on the current context's buffer.
class TraceBuffer {
 public:
  /// Begin collecting (clears any previous buffer, restarts the epoch).
  void start();
  /// Stop collecting (the buffer is kept until the next start()).
  void stop() { on_ = false; }
  bool enabled() const { return on_; }

  /// Microseconds since start() (0 when off).
  double now_us() const;
  /// profiler::now_ns() at start(); spans subtract this.
  std::uint64_t epoch_ns() const { return epoch_ns_; }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Append a complete event on an explicit thread lane. `start_ns` is a
  /// profiler::now_ns() stamp taken on any thread; the CALL must come from
  /// the owning thread (the pool flushes per-worker chunk spans after a
  /// region completes). No-op when off.
  void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                 int tid);

  // Span-depth bookkeeping for TraceSpan (RAII nesting on one thread).
  int enter_span() { return span_depth_++; }
  int exit_span() { return --span_depth_; }
  void push(TraceEvent e);

 private:
  bool on_ = false;
  std::uint64_t epoch_ns_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  int span_depth_ = 0;
  std::vector<TraceEvent> events_;
};

// Current-context conveniences (historical free-function API; every one
// resolves the bound ObsContext's TraceBuffer).
void start_trace();
void stop_trace();
bool trace_enabled();
double trace_now_us();
const std::vector<TraceEvent>& trace_events();
void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns, int tid);

/// Serialize the current context's buffer as Chrome trace-event JSON.
std::string trace_json();
/// Write trace_json() to a file; returns false (and logs) on I/O failure.
bool write_trace_json(const std::string& path);

/// RAII span: records a complete trace event over its lifetime when tracing
/// is on, and feeds its duration into the profiler's region histogram when
/// profiling is on (either switch arms it; both off keeps it to two
/// branches). Captures its context's buffer/profiler at construction, so a
/// span straddling a rebind still lands in the context it started in.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  TraceBuffer* buf_ = nullptr;          ///< Non-null while tracing.
  profiler::Profiler* prof_ = nullptr;  ///< Non-null while profiling.
  std::uint64_t t0_ns_ = 0;
};

/// Peak resident-set size of this process in KiB (0 where unsupported).
long peak_rss_kb();

}  // namespace rp::telemetry

// Call-site macros. The thread_local slot cache + epoch stamp make the
// steady-state cost of a counter bump one compare and one pointer-indirect
// add, while remaining correct across ObsContext switches (see Registry::
// epoch). thread_local, not static: two threads on different contexts must
// not share a cache entry.
#define RP_TELEMETRY_CONCAT2(a, b) a##b
#define RP_TELEMETRY_CONCAT(a, b) RP_TELEMETRY_CONCAT2(a, b)

#define RP_COUNT(name, delta)                                                       \
  do {                                                                              \
    static thread_local ::rp::telemetry::Counter* rp_tm_slot_ = nullptr;            \
    static thread_local std::uint64_t rp_tm_epoch_ = 0;                             \
    ::rp::telemetry::Registry& rp_tm_reg_ = ::rp::telemetry::Registry::instance();  \
    if (rp_tm_epoch_ != rp_tm_reg_.epoch()) {                                       \
      rp_tm_slot_ = &rp_tm_reg_.counter(name);                                      \
      rp_tm_epoch_ = rp_tm_reg_.epoch();                                            \
    }                                                                               \
    rp_tm_slot_->value += static_cast<std::int64_t>(delta);                         \
  } while (0)

#define RP_GAUGE(name, v)                                                           \
  do {                                                                              \
    static thread_local ::rp::telemetry::Gauge* rp_tm_slot_ = nullptr;              \
    static thread_local std::uint64_t rp_tm_epoch_ = 0;                             \
    ::rp::telemetry::Registry& rp_tm_reg_ = ::rp::telemetry::Registry::instance();  \
    if (rp_tm_epoch_ != rp_tm_reg_.epoch()) {                                       \
      rp_tm_slot_ = &rp_tm_reg_.gauge(name);                                        \
      rp_tm_epoch_ = rp_tm_reg_.epoch();                                            \
    }                                                                               \
    rp_tm_slot_->value = static_cast<double>(v);                                    \
  } while (0)

/// Scoped trace span with a unique local name.
#define RP_TRACE_SPAN(name) \
  ::rp::telemetry::TraceSpan RP_TELEMETRY_CONCAT(rp_tm_span_, __LINE__)(name)
