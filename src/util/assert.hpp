#pragma once
// Lightweight checked-assertion macro for the routplace libraries.
//
// RP_ASSERT is active in all build types (placement bugs are silent quality
// bugs; we prefer loud failures), prints file:line and a formatted message,
// then aborts. Use for internal invariants; use error returns / exceptions
// for user-input validation (see db/bookshelf).

#include <cstdio>
#include <cstdlib>

namespace rp {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "RP_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace rp

#define RP_ASSERT(cond, msg)                                  \
  do {                                                        \
    if (!(cond)) ::rp::assert_fail(#cond, __FILE__, __LINE__, msg); \
  } while (0)
