#pragma once
// Spatial-map serialization for the snapshot subsystem.
//
// Three interchangeable views of a Grid2D<double>:
//  * a compact binary grid file ("RPG1": magic, uint32 nx/ny, float64
//    row-major payload) — the byte-exact form the determinism tests and
//    rp_report_diff compare;
//  * a P6 PPM rendering through a fixed blue→green→yellow→red heat ramp,
//    viewable in any image tool;
//  * an SVG rendering (downsampled rect raster) for embedding in reports.
//
// All writers are deterministic: same grid in, same bytes out. The binary
// format stores doubles in host byte order (the toolchain targets
// little-endian; the reader asserts the magic so a foreign-endian file is
// rejected rather than misread).

#include <string>

#include "util/grid.hpp"

namespace rp {

/// Summary statistics over the finite values of a grid.
struct GridStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double sum = 0.0;
  int non_finite = 0;  ///< Count of NaN/Inf cells (excluded from min/max/mean).
};

GridStats grid_stats(const Grid2D<double>& g);

// ---- binary grid files ----

/// Serialize to the "RPG1" binary layout.
std::string grid_to_bytes(const Grid2D<double>& g);
/// Parse grid_to_bytes() output; returns false on bad magic/size.
bool grid_from_bytes(const std::string& bytes, Grid2D<double>& out);

bool write_grid_bin(const std::string& path, const Grid2D<double>& g);
bool read_grid_bin(const std::string& path, Grid2D<double>& out);

// ---- renderings ----

/// Heat-ramp color for t in [0,1] (clamped): dark blue → cyan → green →
/// yellow → red. Shared by the PPM and SVG writers.
void heat_color(double t, unsigned char rgb[3]);

/// P6 PPM rendering. Values are normalized by [lo, hi] (hi <= lo falls back
/// to the grid's own finite range); each bin becomes a px_scale × px_scale
/// block, row iy = ny-1 on top (die orientation).
std::string grid_to_ppm(const Grid2D<double>& g, double lo = 0.0, double hi = 0.0,
                        int px_scale = 0);
bool write_grid_ppm(const std::string& path, const Grid2D<double>& g, double lo = 0.0,
                    double hi = 0.0);

/// SVG rendering (one rect per bin after max-pooling down to at most
/// max_cells bins per side).
std::string grid_to_svg(const Grid2D<double>& g, double lo = 0.0, double hi = 0.0,
                        int max_cells = 96);
bool write_grid_svg(const std::string& path, const Grid2D<double>& g, double lo = 0.0,
                    double hi = 0.0);

}  // namespace rp
