#include "util/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/logger.hpp"

namespace rp {

namespace {

constexpr char kMagic[4] = {'R', 'P', 'G', '1'};

bool write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    RP_ERROR("heatmap: cannot open '%s' for writing", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) RP_ERROR("heatmap: short write to '%s'", path.c_str());
  return ok;
}

/// Normalization range: the caller's [lo, hi] when valid, else the grid's
/// finite value range (degenerate ranges render as a flat map).
void norm_range(const Grid2D<double>& g, double& lo, double& hi) {
  if (hi > lo) return;
  const GridStats s = grid_stats(g);
  lo = s.min;
  hi = s.max;
  if (hi <= lo) hi = lo + 1.0;
}

}  // namespace

GridStats grid_stats(const Grid2D<double>& g) {
  GridStats s;
  bool first = true;
  for (const double v : g.data()) {
    if (!std::isfinite(v)) {
      ++s.non_finite;
      continue;
    }
    if (first) {
      s.min = s.max = v;
      first = false;
    } else {
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
    }
    s.sum += v;
  }
  const std::size_t n = g.size() - static_cast<std::size_t>(s.non_finite);
  s.mean = n > 0 ? s.sum / static_cast<double>(n) : 0.0;
  return s;
}

std::string grid_to_bytes(const Grid2D<double>& g) {
  std::string out;
  out.resize(sizeof kMagic + 2 * sizeof(std::uint32_t) + g.size() * sizeof(double));
  char* p = out.data();
  std::memcpy(p, kMagic, sizeof kMagic);
  p += sizeof kMagic;
  const std::uint32_t nx = static_cast<std::uint32_t>(g.nx());
  const std::uint32_t ny = static_cast<std::uint32_t>(g.ny());
  std::memcpy(p, &nx, sizeof nx);
  p += sizeof nx;
  std::memcpy(p, &ny, sizeof ny);
  p += sizeof ny;
  if (!g.data().empty())
    std::memcpy(p, g.data().data(), g.size() * sizeof(double));
  return out;
}

bool grid_from_bytes(const std::string& bytes, Grid2D<double>& out) {
  const std::size_t header = sizeof kMagic + 2 * sizeof(std::uint32_t);
  if (bytes.size() < header) return false;
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) return false;
  std::uint32_t nx = 0, ny = 0;
  std::memcpy(&nx, bytes.data() + sizeof kMagic, sizeof nx);
  std::memcpy(&ny, bytes.data() + sizeof kMagic + sizeof nx, sizeof ny);
  const std::size_t cells = static_cast<std::size_t>(nx) * ny;
  if (bytes.size() != header + cells * sizeof(double)) return false;
  out = Grid2D<double>(static_cast<int>(nx), static_cast<int>(ny));
  if (cells > 0)
    std::memcpy(out.data().data(), bytes.data() + header, cells * sizeof(double));
  return true;
}

bool write_grid_bin(const std::string& path, const Grid2D<double>& g) {
  return write_file(path, grid_to_bytes(g));
}

bool read_grid_bin(const std::string& path, Grid2D<double>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return grid_from_bytes(bytes, out);
}

void heat_color(double t, unsigned char rgb[3]) {
  if (!std::isfinite(t)) t = 1.0;  // non-finite cells render as hottest
  t = std::clamp(t, 0.0, 1.0);
  // 5-stop linear ramp; stops chosen so 0 is clearly "cold" and anything
  // near/over 1 reads as a hotspot.
  static constexpr double stops[5][3] = {
      {20, 24, 82},    // deep blue
      {0, 130, 200},   // cyan-blue
      {10, 180, 110},  // green
      {245, 205, 45},  // yellow
      {225, 35, 35},   // red
  };
  const double s = t * 4.0;
  const int i = std::min(3, static_cast<int>(s));
  const double f = s - i;
  for (int c = 0; c < 3; ++c) {
    const double v = stops[i][c] + f * (stops[i + 1][c] - stops[i][c]);
    rgb[c] = static_cast<unsigned char>(std::lround(v));
  }
}

std::string grid_to_ppm(const Grid2D<double>& g, double lo, double hi, int px_scale) {
  norm_range(g, lo, hi);
  if (px_scale <= 0)
    px_scale = std::clamp(512 / std::max(1, std::max(g.nx(), g.ny())), 1, 16);
  const int w = g.nx() * px_scale, h = g.ny() * px_scale;
  std::string out = "P6\n" + std::to_string(w) + " " + std::to_string(h) + "\n255\n";
  out.reserve(out.size() + static_cast<std::size_t>(w) * h * 3);
  for (int py = 0; py < h; ++py) {
    const int iy = g.ny() - 1 - py / px_scale;  // top row = highest y
    for (int ix = 0; ix < g.nx(); ++ix) {
      unsigned char rgb[3];
      heat_color((g(ix, iy) - lo) / (hi - lo), rgb);
      for (int r = 0; r < px_scale; ++r)
        out.append(reinterpret_cast<const char*>(rgb), 3);
    }
  }
  return out;
}

bool write_grid_ppm(const std::string& path, const Grid2D<double>& g, double lo,
                    double hi) {
  return write_file(path, grid_to_ppm(g, lo, hi));
}

std::string grid_to_svg(const Grid2D<double>& g, double lo, double hi, int max_cells) {
  norm_range(g, lo, hi);
  // Max-pool down to at most max_cells per side so hotspots survive
  // downsampling (mean-pooling would wash them out).
  const int step = std::max(1, (std::max(g.nx(), g.ny()) + max_cells - 1) / max_cells);
  const int cnx = (g.nx() + step - 1) / step, cny = (g.ny() + step - 1) / step;
  const int cell = std::clamp(480 / std::max(cnx, cny), 2, 16);
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << cnx * cell
     << "\" height=\"" << cny * cell << "\">\n";
  char buf[160];
  for (int cy = 0; cy < cny; ++cy) {
    for (int cx = 0; cx < cnx; ++cx) {
      double v = -1e300;
      for (int dy = 0; dy < step; ++dy)
        for (int dx = 0; dx < step; ++dx) {
          const int ix = cx * step + dx, iy = cy * step + dy;
          if (ix < g.nx() && iy < g.ny()) v = std::max(v, g(ix, iy));
        }
      unsigned char rgb[3];
      heat_color((v - lo) / (hi - lo), rgb);
      // SVG y grows downward; flip so the die's +y is up.
      std::snprintf(buf, sizeof buf,
                    "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" "
                    "fill=\"#%02x%02x%02x\"/>\n",
                    cx * cell, (cny - 1 - cy) * cell, cell, cell, rgb[0], rgb[1],
                    rgb[2]);
      os << buf;
    }
  }
  os << "</svg>\n";
  return os.str();
}

bool write_grid_svg(const std::string& path, const Grid2D<double>& g, double lo,
                    double hi) {
  return write_file(path, grid_to_svg(g, lo, hi));
}

}  // namespace rp
