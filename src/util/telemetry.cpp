#include "util/telemetry.hpp"

#include <chrono>
#include <cstdio>

#include "util/json.hpp"
#include "util/logger.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rp::telemetry {

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) { return counters_[name]; }
Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

void Registry::reset() {
  for (auto& [name, c] : counters_) c.value = 0;
  for (auto& [name, g] : gauges_) g.value = 0.0;
}

std::int64_t Registry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value;
}

double Registry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value;
}

std::vector<std::pair<std::string, std::int64_t>> Registry::counters() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value);
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.value);
  return out;
}

// ------------------------------------------------------------------ trace

namespace {

using Clock = std::chrono::steady_clock;

bool g_trace_on = false;
Clock::time_point g_trace_epoch;
int g_span_depth = 0;
std::vector<TraceEvent> g_events;

}  // namespace

void start_trace() {
  g_events.clear();
  g_span_depth = 0;
  g_trace_epoch = Clock::now();
  g_trace_on = true;
}

void stop_trace() { g_trace_on = false; }

bool trace_enabled() { return g_trace_on; }

double trace_now_us() {
  if (!g_trace_on) return 0.0;
  return std::chrono::duration<double, std::micro>(Clock::now() - g_trace_epoch).count();
}

const std::vector<TraceEvent>& trace_events() { return g_events; }

TraceSpan::TraceSpan(std::string name) : active_(g_trace_on) {
  if (!active_) return;
  name_ = std::move(name);
  t0_ = trace_now_us();
  ++g_span_depth;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --g_span_depth;
  TraceEvent e;
  e.name = std::move(name_);
  e.ts_us = t0_;
  e.dur_us = trace_now_us() - t0_;
  e.depth = g_span_depth;
  g_events.push_back(std::move(e));
}

std::string trace_json() {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : g_events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("cat", "flow");
    w.kv("ph", "X");
    w.kv("ts", e.ts_us);
    w.kv("dur", e.dur_us);
    w.kv("pid", 1);
    w.kv("tid", 1);
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

bool write_trace_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    RP_ERROR("telemetry: cannot open trace file '%s'", path.c_str());
    return false;
  }
  const std::string doc = trace_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok) RP_ERROR("telemetry: short write to trace file '%s'", path.c_str());
  return ok;
}

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
  return static_cast<long>(ru.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace rp::telemetry
