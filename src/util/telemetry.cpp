#include "util/telemetry.hpp"

#include <atomic>
#include <cstdio>

#include <algorithm>

#include "util/json.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/profiler.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rp::telemetry {

namespace {

std::uint64_t next_epoch() {
  // Starts at 1 so a zero-initialized macro cache never matches a registry.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Registry::Registry() : epoch_(next_epoch()) {}

Registry& Registry::instance() { return obs::current().registry(); }

Counter& Registry::counter(const std::string& name) { return counters_[name]; }
Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

void Registry::reset() {
  for (auto& [name, c] : counters_) c.value = 0;
  for (auto& [name, g] : gauges_) g.value = 0.0;
}

std::int64_t Registry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value;
}

double Registry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value;
}

std::vector<std::pair<std::string, std::int64_t>> Registry::counters() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value);
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.value);
  return out;
}

// ------------------------------------------------------------------ trace

using Clock = std::chrono::steady_clock;

void TraceBuffer::start() {
  events_.clear();
  span_depth_ = 0;
  epoch_ = Clock::now();
  epoch_ns_ = profiler::now_ns();
  on_ = true;
}

double TraceBuffer::now_us() const {
  if (!on_) return 0.0;
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch_).count();
}

void TraceBuffer::emit_span(const char* name, std::uint64_t start_ns,
                            std::uint64_t dur_ns, int tid) {
  if (!on_) return;
  TraceEvent e;
  e.name = name;
  e.ts_us = start_ns >= epoch_ns_
                ? static_cast<double>(start_ns - epoch_ns_) / 1000.0
                : 0.0;
  e.dur_us = static_cast<double>(dur_ns) / 1000.0;
  e.tid = tid;
  events_.push_back(std::move(e));
}

void TraceBuffer::push(TraceEvent e) {
  if (on_) events_.push_back(std::move(e));
}

void start_trace() { obs::current().trace().start(); }
void stop_trace() { obs::current().trace().stop(); }
bool trace_enabled() { return obs::current().trace().enabled(); }
double trace_now_us() { return obs::current().trace().now_us(); }
const std::vector<TraceEvent>& trace_events() { return obs::current().trace().events(); }

void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns, int tid) {
  obs::current().trace().emit_span(name, start_ns, dur_ns, tid);
}

TraceSpan::TraceSpan(std::string name) {
  TraceBuffer& tb = obs::current().trace();
  const bool trace = tb.enabled();
  const bool profile = profiler::enabled();
  if (!trace && !profile) return;
  name_ = std::move(name);
  t0_ns_ = profiler::now_ns();
  if (profile) prof_ = &profiler::Profiler::instance();
  if (trace) {
    buf_ = &tb;
    tb.enter_span();
  }
}

TraceSpan::~TraceSpan() {
  if (buf_ == nullptr && prof_ == nullptr) return;
  const std::uint64_t dur_ns = profiler::now_ns() - t0_ns_;
  if (prof_ != nullptr) prof_->record(name_, dur_ns);
  if (buf_ == nullptr) return;
  TraceEvent e;
  e.name = std::move(name_);
  e.ts_us = t0_ns_ >= buf_->epoch_ns()
                ? static_cast<double>(t0_ns_ - buf_->epoch_ns()) / 1000.0
                : 0.0;
  e.dur_us = static_cast<double>(dur_ns) / 1000.0;
  e.depth = buf_->exit_span();
  buf_->push(std::move(e));
}

std::string trace_json() {
  const std::vector<TraceEvent>& events = trace_events();
  int max_tid = 0;
  for (const TraceEvent& e : events) max_tid = std::max(max_tid, e.tid);
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  // Metadata events name the lanes: tid 0 is the submitting thread (which
  // doubles as pool worker 0), tid w >= 1 is pool worker w.
  for (int tid = 0; tid <= max_tid; ++tid) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", tid);
    w.key("args").begin_object();
    w.kv("name", tid == 0 ? std::string("main (worker-0)")
                          : "worker-" + std::to_string(tid));
    w.end_object();
    w.end_object();
    w.begin_object();
    w.kv("name", "thread_sort_index");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", tid);
    w.key("args").begin_object();
    w.kv("sort_index", tid);
    w.end_object();
    w.end_object();
  }
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("cat", e.tid == 0 ? "flow" : "pool");
    w.kv("ph", "X");
    w.kv("ts", e.ts_us);
    w.kv("dur", e.dur_us);
    w.kv("pid", 1);
    w.kv("tid", e.tid);
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

bool write_trace_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    RP_ERROR("telemetry: cannot open trace file '%s'", path.c_str());
    return false;
  }
  const std::string doc = trace_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok) RP_ERROR("telemetry: short write to trace file '%s'", path.c_str());
  return ok;
}

long peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<long>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
  return static_cast<long>(ru.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace rp::telemetry
