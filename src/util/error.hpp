#pragma once
// Structured error taxonomy for the whole pipeline.
//
// Every fatal condition the placer can hit is classified into one of four
// codes, each mapped to a stable process exit code (the contract CI and
// serving wrappers key on; see README "Error handling & exit codes"):
//
//   code              exit   raised by
//   ParseError          3    Bookshelf reader: malformed/truncated input
//   ValidationError     4    Design::finalize / legality: consistent files
//                            describing an unplaceable or contradictory design
//   NumericError        5    guard rails: NaN/Inf escaping the solver after
//                            the restore-and-retry path was exhausted
//   ResourceError       6    environment: unopenable/unwritable files
//   Interrupted         7    SIGINT/SIGTERM: cooperative cancellation — the
//                            flow polled obs::check_interrupt() and unwound;
//                            a partial run report and flight dump are written
//
// Exit codes 0 (legal placement), 1 (flow completed, placement not legal) and
// 2 (CLI usage error) predate the taxonomy and are unchanged.
//
// An Error carries machine-readable context next to the human message:
// `where` is the failing location — input `file:line` for parse errors, the
// C++ source `file:line` otherwise — and `stage` is the pipeline stage that
// was executing ("parse", "gp/level2", "legal", ...). Both land in the run
// report's "error" block so a failed run is diagnosable from the report
// alone. Use RP_THROW for source-located throws; BsReader::fail() builds the
// input-located ParseErrors.

#include <stdexcept>
#include <string>

namespace rp {

enum class ErrorCode {
  ParseError,       ///< Malformed input file.
  ValidationError,  ///< Well-formed input describing an invalid design.
  NumericError,     ///< Non-finite values survived graceful degradation.
  ResourceError,    ///< Files/limits: cannot open, cannot write.
  Interrupted,      ///< SIGINT/SIGTERM acknowledged at a safe point.
};

/// Stable name for a code ("ParseError", ...). Never returns null.
const char* error_code_name(ErrorCode code);

/// Process exit code for a code (3..7; see the table above).
int error_exit_code(ErrorCode code);

/// The one exception type the pipeline throws for classified failures.
/// Derives from std::runtime_error so pre-taxonomy catch sites keep working.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, std::string message, std::string where = {},
        std::string stage = {});

  ErrorCode code() const { return code_; }
  const char* code_name() const { return error_code_name(code_); }
  int exit_code() const { return error_exit_code(code_); }

  /// Failing location, "file:line" (input file for ParseError, source
  /// file otherwise). May be empty.
  const std::string& where() const { return where_; }

  /// Pipeline stage executing at throw time; annotated by the flow's catch
  /// sites when the throw site did not know it.
  const std::string& stage() const { return stage_; }
  void set_stage(const std::string& s) { if (stage_.empty()) stage_ = s; }

  /// The message without the "[Code] where:" prefix what() carries.
  const std::string& message() const { return message_; }

 private:
  ErrorCode code_;
  std::string message_;
  std::string where_;
  std::string stage_;
};

namespace detail {
/// "path/to/file.cpp" -> "file.cpp" (keep run reports machine-independent).
std::string_view error_basename(std::string_view path);
}  // namespace detail

}  // namespace rp

/// Throw an rp::Error carrying the C++ source location as `where`.
#define RP_THROW(code, msg)                                             \
  throw ::rp::Error(                                                    \
      (code), (msg),                                                    \
      std::string(::rp::detail::error_basename(__FILE__)) + ":" +      \
          std::to_string(__LINE__))
