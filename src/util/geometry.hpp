#pragma once
// Plain-value 2-D geometry primitives used across the placer.
//
// All placement coordinates are double (database units scaled by the parser);
// grid/bin indices are int. Rect is closed-open conceptually: a zero-area
// rect (lo == hi) contains nothing and overlaps nothing.

#include <algorithm>
#include <cmath>
#include <ostream>

namespace rp {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
  friend std::ostream& operator<<(std::ostream& os, Point p) {
    return os << '(' << p.x << ',' << p.y << ')';
  }
};

/// Squared Euclidean distance.
inline double dist2(Point a, Point b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Closed 1-D interval [lo, hi]; empty when hi < lo.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double length() const { return std::max(0.0, hi - lo); }
  bool empty() const { return hi <= lo; }
  bool contains(double v) const { return v >= lo && v <= hi; }

  /// Overlap length with another interval (0 if disjoint).
  double overlap(Interval o) const {
    return std::max(0.0, std::min(hi, o.hi) - std::max(lo, o.lo));
  }
  /// Clamp a scalar into the interval.
  double clamp(double v) const { return std::clamp(v, lo, hi); }
};

/// Axis-aligned rectangle, lower-left (lx, ly) to upper-right (hx, hy).
struct Rect {
  double lx = 0.0;
  double ly = 0.0;
  double hx = 0.0;
  double hy = 0.0;

  static Rect from_center(Point c, double w, double h) {
    return {c.x - w / 2, c.y - h / 2, c.x + w / 2, c.y + h / 2};
  }
  /// Inverted rect used as identity for cover(): cover(empty, r) == r.
  static Rect empty_bbox() {
    constexpr double inf = 1e300;
    return {inf, inf, -inf, -inf};
  }

  double width() const { return std::max(0.0, hx - lx); }
  double height() const { return std::max(0.0, hy - ly); }
  double area() const { return width() * height(); }
  Point center() const { return {(lx + hx) / 2, (ly + hy) / 2}; }
  Point ll() const { return {lx, ly}; }
  Interval xr() const { return {lx, hx}; }
  Interval yr() const { return {ly, hy}; }
  bool valid() const { return hx >= lx && hy >= ly; }

  bool contains(Point p) const { return p.x >= lx && p.x <= hx && p.y >= ly && p.y <= hy; }
  bool contains(const Rect& r) const {
    return r.lx >= lx && r.hx <= hx && r.ly >= ly && r.hy <= hy;
  }
  /// Strict-interior overlap: touching edges do NOT overlap.
  bool overlaps(const Rect& r) const {
    return lx < r.hx && r.lx < hx && ly < r.hy && r.ly < hy;
  }
  double overlap_area(const Rect& r) const {
    const double w = std::min(hx, r.hx) - std::max(lx, r.lx);
    const double h = std::min(hy, r.hy) - std::max(ly, r.ly);
    return (w > 0 && h > 0) ? w * h : 0.0;
  }
  Rect intersect(const Rect& r) const {
    return {std::max(lx, r.lx), std::max(ly, r.ly), std::min(hx, r.hx), std::min(hy, r.hy)};
  }
  /// Smallest rect covering both (bounding-box union).
  Rect cover(const Rect& r) const {
    return {std::min(lx, r.lx), std::min(ly, r.ly), std::max(hx, r.hx), std::max(hy, r.hy)};
  }
  Rect expand(double d) const { return {lx - d, ly - d, hx + d, hy + d}; }
  Rect shifted(double dx, double dy) const { return {lx + dx, ly + dy, hx + dx, hy + dy}; }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lx == b.lx && a.ly == b.ly && a.hx == b.hx && a.hy == b.hy;
  }
  friend std::ostream& operator<<(std::ostream& os, const Rect& r) {
    return os << '[' << r.lx << ',' << r.ly << " - " << r.hx << ',' << r.hy << ']';
  }
};

/// Incrementally-grown bounding box of a point set.
struct BBox {
  Rect r = Rect::empty_bbox();
  void add(Point p) {
    r.lx = std::min(r.lx, p.x);
    r.ly = std::min(r.ly, p.y);
    r.hx = std::max(r.hx, p.x);
    r.hy = std::max(r.hy, p.y);
  }
  bool empty() const { return r.hx < r.lx; }
  /// Half-perimeter of the box (the HPWL contribution of one net).
  double half_perimeter() const { return empty() ? 0.0 : r.width() + r.height(); }
};

}  // namespace rp
