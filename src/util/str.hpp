#pragma once
// Small string utilities used mainly by the Bookshelf parser and the
// hierarchical-name handling ("a/b/c" instance paths).

#include <string>
#include <string_view>
#include <vector>

namespace rp {

/// Strip leading/trailing whitespace (space, tab, CR, LF).
std::string_view trim(std::string_view s);

/// Split on any run of the given delimiter characters; empty tokens dropped.
std::vector<std::string> split(std::string_view s, std::string_view delims = " \t");

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// Parse helpers that throw std::runtime_error with context on failure.
double to_double(std::string_view s);
long to_long(std::string_view s);

/// Components of a hierarchical instance path split on '/'.
/// "top/alu0/add/u1" -> {"top","alu0","add","u1"}.
std::vector<std::string> hier_components(std::string_view path);

/// Number of leading path components two instance names share.
/// common_prefix_depth("a/b/c", "a/b/d") == 2.
int common_prefix_depth(std::string_view a, std::string_view b);

}  // namespace rp
