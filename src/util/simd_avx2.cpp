// AVX2 kernel table. This file is the only TU compiled with -mavx2 (see
// src/util/CMakeLists.txt); runtime cpuid dispatch in simd.cpp guarantees
// none of these functions execute on a host without AVX2. Every kernel
// reproduces the scalar level's summation tree and association order
// exactly — 4 virtual lanes map onto one 4xf64 register, tails run the
// shared scalar bodies from simd_detail.hpp, and no FMA is emitted
// (explicit mul+add intrinsics; the build disables FP contraction).

#include "util/simd.hpp"
#include "util/simd_detail.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace rp::simd {

namespace {

using namespace detail;

inline __m256d abs_pd(__m256d v) {
  return _mm256_and_pd(
      v, _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL)));
}

inline __m256d neg_pd(__m256d v) {
  return _mm256_xor_pd(
      v, _mm256_castsi256_pd(_mm256_set1_epi64x(
             static_cast<long long>(0x8000000000000000ULL))));
}

void a_affine(const double* x, std::size_t n, double bias, double scale,
              double* out) {
  const __m256d vb = _mm256_set1_pd(bias), vs = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(
        out + i, _mm256_mul_pd(_mm256_add_pd(_mm256_loadu_pd(x + i), vb), vs));
  affine_range(x, i, n, bias, scale, out);
}

/// exp(x) for 4 lanes; operation-for-operation the vector transliteration
/// of detail::exp_one (same constants, same floor-based range reduction,
/// same Horner order, same exponent-bit 2^k construction).
inline __m256d exp_vec(__m256d x) {
  const __m256d kd = _mm256_floor_pd(_mm256_add_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(kExpLog2e)), _mm256_set1_pd(0.5)));
  const __m256d r = _mm256_sub_pd(
      _mm256_sub_pd(x, _mm256_mul_pd(kd, _mm256_set1_pd(kExpLn2Hi))),
      _mm256_mul_pd(kd, _mm256_set1_pd(kExpLn2Lo)));
  __m256d p = _mm256_set1_pd(kExpPoly[13]);
  for (int j = 12; j >= 0; --j)
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(kExpPoly[j]));
  const __m128i k32 = _mm256_cvtpd_epi32(kd);
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(k32), _mm256_set1_epi64x(1023)),
      52);
  const __m256d res = _mm256_mul_pd(p, _mm256_castsi256_pd(bits));
  // Lanes below the flush threshold become exactly 0.0 (the scalar path
  // early-returns before computing anything for those inputs).
  const __m256d flush =
      _mm256_cmp_pd(x, _mm256_set1_pd(kExpFlush), _CMP_LT_OQ);
  return _mm256_andnot_pd(flush, res);
}

void a_exp_nonpos(const double* x, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(out + i, exp_vec(_mm256_loadu_pd(x + i)));
  exp_range(x, i, n, out);
}

void a_neg(const double* x, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(out + i, neg_pd(_mm256_loadu_pd(x + i)));
  neg_range(x, i, n, out);
}

void a_axpy(double a, const double* x, std::size_t n, double* y) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  axpy_range(a, x, i, n, y);
}

void a_axpy_out(const double* z, double a, const double* d, std::size_t n,
                double* out) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(
        out + i, _mm256_add_pd(_mm256_loadu_pd(z + i),
                               _mm256_mul_pd(va, _mm256_loadu_pd(d + i))));
  axpy_out_range(z, a, d, i, n, out);
}

void a_cg_dir(const double* g, double beta, double* d, std::size_t n) {
  const __m256d vb = _mm256_set1_pd(beta);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(
        d + i, _mm256_add_pd(neg_pd(_mm256_loadu_pd(g + i)),
                             _mm256_mul_pd(vb, _mm256_loadu_pd(d + i))));
  cg_dir_range(g, beta, d, i, n);
}

void a_lse_grad(const double* ep, const double* em, std::size_t n, double rsp,
                double rsm, double* dc) {
  const __m256d vp = _mm256_set1_pd(rsp), vm = _mm256_set1_pd(rsm);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    _mm256_storeu_pd(
        dc + i, _mm256_sub_pd(_mm256_mul_pd(_mm256_loadu_pd(ep + i), vp),
                              _mm256_mul_pd(_mm256_loadu_pd(em + i), vm)));
  lse_grad_range(ep, em, i, n, rsp, rsm, dc);
}

void a_wa_grad(const double* c, const double* ep, const double* em,
               std::size_t n, double xmax, double xmin, double ig, double rsp,
               double rsm, double* dc) {
  const __m256d vxmax = _mm256_set1_pd(xmax), vxmin = _mm256_set1_pd(xmin);
  const __m256d vig = _mm256_set1_pd(ig);
  const __m256d vrsp = _mm256_set1_pd(rsp), vrsm = _mm256_set1_pd(rsm);
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d vc = _mm256_loadu_pd(c + i);
    const __m256d tmax = _mm256_mul_pd(_mm256_sub_pd(vc, vxmax), vig);
    const __m256d tmin = _mm256_mul_pd(_mm256_sub_pd(vc, vxmin), vig);
    const __m256d dmax = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_loadu_pd(ep + i), _mm256_add_pd(one, tmax)),
        vrsp);
    const __m256d dmin = _mm256_mul_pd(
        _mm256_mul_pd(_mm256_loadu_pd(em + i), _mm256_sub_pd(one, tmin)),
        vrsm);
    _mm256_storeu_pd(dc + i, _mm256_sub_pd(dmax, dmin));
  }
  wa_grad_range(c, ep, em, i, n, xmax, xmin, ig, rsp, rsm, dc);
}

void a_bell_row(double d0, double step, std::size_t n, double d1, double d2,
                double a, double b, double* out) {
  const __m256d vd0 = _mm256_set1_pd(d0), vstep = _mm256_set1_pd(step);
  const __m256d vd1 = _mm256_set1_pd(d1), vd2 = _mm256_set1_pd(d2);
  const __m256d va = _mm256_set1_pd(a), vb = _mm256_set1_pd(b);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d ramp = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d vi =
        _mm256_add_pd(_mm256_set1_pd(static_cast<double>(i)), ramp);
    const __m256d d = abs_pd(_mm256_add_pd(vd0, _mm256_mul_pd(vi, vstep)));
    const __m256d v1 =
        _mm256_sub_pd(one, _mm256_mul_pd(_mm256_mul_pd(va, d), d));
    const __m256d t = _mm256_sub_pd(d, vd2);
    const __m256d v2 = _mm256_mul_pd(_mm256_mul_pd(vb, t), t);
    const __m256d m1 = _mm256_cmp_pd(d, vd1, _CMP_LE_OQ);
    const __m256d m2 = _mm256_cmp_pd(d, vd2, _CMP_LE_OQ);
    __m256d v = _mm256_and_pd(v2, m2);
    v = _mm256_blendv_pd(v, v1, m1);
    _mm256_storeu_pd(out + i, v);
  }
  bell_row_range(d0, step, i, n, d1, d2, a, b, out);
}

void a_bell_deriv_row(double d0, double step, std::size_t n, double d1,
                      double d2, double a, double b, double* out) {
  const __m256d vd0 = _mm256_set1_pd(d0), vstep = _mm256_set1_pd(step);
  const __m256d vd1 = _mm256_set1_pd(d1), vd2 = _mm256_set1_pd(d2);
  const __m256d vna = _mm256_set1_pd(-2.0 * a);
  const __m256d vpb = _mm256_set1_pd(2.0 * b);
  const __m256d pos1 = _mm256_set1_pd(1.0), neg1 = _mm256_set1_pd(-1.0);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ramp = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d vi =
        _mm256_add_pd(_mm256_set1_pd(static_cast<double>(i)), ramp);
    const __m256d dx = _mm256_add_pd(vd0, _mm256_mul_pd(vi, vstep));
    const __m256d d = abs_pd(dx);
    const __m256d sign =
        _mm256_blendv_pd(neg1, pos1, _mm256_cmp_pd(dx, zero, _CMP_GE_OQ));
    const __m256d r1 = _mm256_mul_pd(_mm256_mul_pd(vna, d), sign);
    const __m256d r2 =
        _mm256_mul_pd(_mm256_mul_pd(vpb, _mm256_sub_pd(d, vd2)), sign);
    const __m256d m1 = _mm256_cmp_pd(d, vd1, _CMP_LE_OQ);
    const __m256d m2 = _mm256_cmp_pd(d, vd2, _CMP_LE_OQ);
    __m256d v = _mm256_and_pd(r2, m2);
    v = _mm256_blendv_pd(v, r1, m1);
    _mm256_storeu_pd(out + i, v);
  }
  bell_deriv_row_range(d0, step, i, n, d1, d2, a, b, out);
}

void a_minmax(const double* x, std::size_t n, double* mn_out, double* mx_out) {
  double mn, mx;
  std::size_t i;
  if (n >= 4) {
    __m256d vmn = _mm256_loadu_pd(x);
    __m256d vmx = vmn;
    for (i = 4; i + 3 < n; i += 4) {
      const __m256d v = _mm256_loadu_pd(x + i);
      vmn = _mm256_min_pd(vmn, v);
      vmx = _mm256_max_pd(vmx, v);
    }
    double lmn[4], lmx[4];
    _mm256_storeu_pd(lmn, vmn);
    _mm256_storeu_pd(lmx, vmx);
    mn = min2(min2(lmn[0], lmn[1]), min2(lmn[2], lmn[3]));
    mx = max2(max2(lmx[0], lmx[1]), max2(lmx[2], lmx[3]));
  } else {
    mn = mx = x[0];
    i = 1;
  }
  for (; i < n; ++i) {
    mn = min2(mn, x[i]);
    mx = max2(mx, x[i]);
  }
  *mn_out = mn;
  *mx_out = mx;
}

double a_sum(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  double l[4];
  _mm256_storeu_pd(l, acc);
  return combine_sum(l[0], l[1], l[2], l[3], sum_tail(x, i, n));
}

double a_dot(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  double l[4];
  _mm256_storeu_pd(l, acc);
  return combine_sum(l[0], l[1], l[2], l[3], dot_tail(a, b, i, n));
}

double a_abs_max(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 3 < n; i += 4)
    acc = _mm256_max_pd(acc, abs_pd(_mm256_loadu_pd(x + i)));
  double l[4];
  _mm256_storeu_pd(l, acc);
  double m = max2(max2(l[0], l[1]), max2(l[2], l[3]));
  for (; i < n; ++i) m = max2(m, abs_one(x[i]));
  return m;
}

double a_pr_num(const double* g, const double* gp, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    const __m256d vg = _mm256_loadu_pd(g + i);
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(vg, _mm256_sub_pd(vg, _mm256_loadu_pd(gp + i))));
  }
  double l[4];
  _mm256_storeu_pd(l, acc);
  return combine_sum(l[0], l[1], l[2], l[3], pr_num_tail(g, gp, i, n));
}

constexpr Ops kAvx2Ops = {
    Level::Avx2,    a_affine,   a_exp_nonpos, a_neg,
    a_axpy,         a_axpy_out, a_cg_dir,     a_lse_grad,
    a_wa_grad,      a_bell_row, a_bell_deriv_row,
    a_minmax,       a_sum,      a_dot,        a_abs_max,
    a_pr_num,
};

}  // namespace

const Ops* avx2_ops() { return &kAvx2Ops; }

}  // namespace rp::simd

#else  // !__AVX2__: toolchain cannot target AVX2 — dispatch falls back.

namespace rp::simd {
const Ops* avx2_ops() { return nullptr; }
}  // namespace rp::simd

#endif
