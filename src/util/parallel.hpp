#pragma once
// Deterministic multi-threading for the hot kernels.
//
// The contract every parallel kernel in this codebase relies on:
//
//   *** Results are bitwise identical for ANY thread count. ***
//
// Achieved by construction, not by luck:
//  * Work is split into CHUNKS whose count and boundaries depend only on the
//    problem size (plan_chunks), never on the thread count. Threads race for
//    chunk indices, but a chunk's output is a pure function of its input.
//  * Chunks write to DISJOINT outputs (per-chunk partials, per-pin slots,
//    per-chunk scratch grids). No shared accumulator is touched from a worker.
//  * Partials are combined ON THE CALLING THREAD in ascending chunk order
//    (parallel_reduce), so floating-point sums see one fixed association
//    regardless of how chunks were scheduled.
//
// Consequently `--threads 1` and `--threads 64` produce byte-identical run
// reports and snapshots; the determinism ctest enforces this end to end.
//
// Thread-count policy: set_num_threads() (CLI --threads) > RP_THREADS env >
// std::thread::hardware_concurrency(). The pool is process-global and lazy;
// resizing joins and respawns workers. Concurrent SUBMITTERS (two flows on
// separate ObsContexts in one process) are safe: a submit mutex serializes
// whole jobs, so regions from different runs never interleave — each run's
// results stay the pure chunk-order-combined values the contract promises.
//
// Telemetry/logging remain main-thread-only: workers never touch the
// Registry or the Logger. Kernels bump their counters from the caller.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/profiler.hpp"

namespace rp::parallel {

/// Chunk layout for a range [0, n): `count` chunks with near-equal sizes,
/// a pure function of (n, grain, max_chunks) — NEVER of the thread count.
struct ChunkPlan {
  std::size_t n = 0;
  int count = 0;

  /// Half-open [begin, end) of chunk c. Remainder spread over the first
  /// (n % count) chunks so sizes differ by at most one.
  std::size_t begin(int c) const {
    const std::size_t q = n / static_cast<std::size_t>(count);
    const std::size_t r = n % static_cast<std::size_t>(count);
    const auto uc = static_cast<std::size_t>(c);
    return q * uc + (uc < r ? uc : r);
  }
  std::size_t end(int c) const { return begin(c + 1); }
};

/// Default cap on chunks per region. High enough for load balance, low
/// enough that per-chunk partial arrays stay tiny.
inline constexpr int kDefaultMaxChunks = 64;

/// Plan chunks for n items with a minimum granularity. n == 0 -> 0 chunks;
/// n <= grain -> 1 chunk (inline fast path, no pool round trip).
ChunkPlan plan_chunks(std::size_t n, std::size_t grain, int max_chunks = kDefaultMaxChunks);

/// Number of hardware threads (>= 1).
int hardware_threads();

/// Resolve an effective thread count: requested > 0 wins, else RP_THREADS
/// env (if a positive integer), else hardware_threads().
int resolve_threads(int requested);

/// Set the global pool size (clamped to >= 1). Joins/respawns workers.
void set_num_threads(int n);

/// Current global pool size (>= 1). Never call set_* from a worker.
int num_threads();

// ------------------------------------------------------- pool observability
//
// When pool profiling is on (profiler::set_enabled routes here), every
// non-nested region additionally times each chunk into a PRE-ALLOCATED
// per-worker slot (cacheline-aligned, sized at resize() time — zero
// steady-state allocation). After the region completes, the CALLING thread
// folds the slots in ascending worker order into the cumulative profile:
// per-worker busy/wait nanoseconds, chunk counts, a chunk-duration
// histogram, and per-region efficiency/imbalance ratios. Workers never
// touch shared accumulators, and nothing here feeds back into chunk
// planning or results — the determinism contract is untouched.

/// Cumulative per-worker accounting (worker 0 is the caller).
struct WorkerProfile {
  std::uint64_t busy_ns = 0;  ///< Executing chunks inside profiled regions.
  std::uint64_t wait_ns = 0;  ///< Region wall time minus busy (startup + idle tail).
  std::int64_t chunks = 0;
};

/// Snapshot of the pool's cumulative profiling data.
struct PoolProfile {
  int threads = 1;
  std::int64_t regions = 0;      ///< Profiled (non-nested) regions run.
  double wall_ns = 0.0;          ///< Σ region wall time.
  double busy_ns = 0.0;          ///< Σ over regions of Σ worker busy time.
  double efficiency_mean = 0.0;  ///< Mean over regions of busy/(workers·wall).
  double efficiency_min = 0.0;
  double imbalance_max = 0.0;    ///< Max over regions of max-busy/mean-busy.
  std::vector<WorkerProfile> workers;
  profiler::LatencyHistogram chunk_hist;  ///< Every chunk's duration.
};

/// Toggle chunk/worker timing. Main thread, outside parallel regions.
/// Prefer profiler::set_enabled(), which flips this together with the
/// region histograms.
void set_pool_profiling(bool on);
bool pool_profiling();

/// Snapshot / zero the cumulative pool profile (main-thread only; reset
/// preserves the pre-allocated slots).
PoolProfile pool_profile();
void reset_pool_profile();

/// Fixed-size pool of persistent workers. Thread 0 is the CALLER: a region
/// with T threads runs on T-1 workers plus the submitting thread, so
/// `threads() == 1` means fully inline execution.
class ThreadPool {
 public:
  static ThreadPool& instance();
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }
  void resize(int threads);

  /// Execute fn(chunk, worker) for every chunk in `plan`; returns when all
  /// chunks finished. worker in [0, threads()); the caller participates as
  /// worker 0. Chunk->worker assignment is dynamic (and irrelevant to the
  /// result); chunk outputs must be disjoint. Nested calls from inside a
  /// region run inline on the current thread, in ascending chunk order.
  void run(const ChunkPlan& plan, const std::function<void(int, int)>& fn);

  // Lifetime-stable counters for the run report (atomic: concurrent
  // submitters from distinct ObsContexts share the pool).
  std::int64_t regions_run() const { return regions_.load(std::memory_order_relaxed); }
  std::int64_t chunks_run() const { return chunks_.load(std::memory_order_relaxed); }

  /// Threads (caller included) currently executing chunks of an active
  /// region — an instantaneous gauge for the resource sampler's pool-busy
  /// fraction. Maintained with two relaxed RMWs per worker per REGION (not
  /// per chunk), so the hot path is untouched; always in [0, threads()].
  int busy_workers() const { return busy_workers_.load(std::memory_order_relaxed); }

 private:
  friend PoolProfile pool_profile();
  friend void reset_pool_profile();

  ThreadPool();
  void start_workers(int n);
  void stop_workers();
  void worker_loop(int worker_id);

  struct Impl;
  Impl* impl_;
  int threads_ = 1;
  std::atomic<std::int64_t> regions_{0};
  std::atomic<std::int64_t> chunks_{0};
  std::atomic<int> busy_workers_{0};
};

/// parallel_for over [0, n): body(begin, end, worker) per chunk.
/// Determinism: outputs of distinct chunks must be disjoint.
template <typename Body>
void parallel_for(std::size_t n, std::size_t grain, Body&& body) {
  const ChunkPlan plan = plan_chunks(n, grain);
  if (plan.count == 0) return;
  if (plan.count == 1) {  // Inline fast path: no pool, no std::function.
    body(std::size_t{0}, n, 0);
    return;
  }
  ThreadPool::instance().run(
      plan, [&](int c, int w) { body(plan.begin(c), plan.end(c), w); });
}

/// Ordered reduction over [0, n): per-chunk partials are computed in
/// parallel, then combined in ASCENDING CHUNK ORDER on the calling thread —
/// the floating-point result is bitwise identical for any thread count.
///   chunk_fn(begin, end, worker) -> T;   combine(acc, partial) -> T
template <typename T, typename ChunkFn, typename Combine>
T parallel_reduce(std::size_t n, std::size_t grain, T init, ChunkFn&& chunk_fn,
                  Combine&& combine) {
  const ChunkPlan plan = plan_chunks(n, grain);
  if (plan.count == 0) return init;
  if (plan.count == 1) return combine(init, chunk_fn(std::size_t{0}, n, 0));
  std::vector<T> partial(static_cast<std::size_t>(plan.count));
  ThreadPool::instance().run(plan, [&](int c, int w) {
    partial[static_cast<std::size_t>(c)] = chunk_fn(plan.begin(c), plan.end(c), w);
  });
  T acc = init;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

}  // namespace rp::parallel
