#pragma once
// In-process instrumentation profiler: per-region latency histograms.
//
// Always compiled, OFF by default (`routplace --profile` / RP_PROFILE=1).
// Three sources feed it when enabled:
//  * every RP_TRACE_SPAN site (TraceSpan reports its duration here whether
//    or not Chrome tracing is on);
//  * RP_PROFILE_REGION sites in the hot kernels (wirelength/density/CG/
//    objective) — like RP_COUNT, the region slot is resolved ONCE per call
//    site into a function-local static, so the steady-state cost with
//    profiling off is a single branch and with profiling on two clock reads
//    plus one histogram record (no allocation, no string construction);
//  * the thread pool (util/parallel): per-worker busy/wait accounting and
//    per-chunk duration histograms, merged by the calling thread in
//    ascending worker order after each parallel region.
//
// Histograms use FIXED log-spaced buckets (4 per decade from 0.1 µs to
// 1000 s) so two histograms are always mergeable bucket-by-bucket and the
// report schema never depends on the data. Quantiles (p50/p95/p99) are
// log-linear interpolations within a bucket, clamped to the exact observed
// [min, max] so p99 <= max always holds.
//
// Determinism: the profiler only READS clocks; it never influences chunk
// planning, scheduling-visible state, or any computed value, so `--profile`
// on/off and any thread count produce byte-identical placements (enforced
// by scripts/check_threads_determinism.py).
//
// Like the telemetry registry, the region registry is PER-RUN since PR 7:
// one Profiler per obs::ObsContext, with instance() resolving the current
// thread's bound context. Slots are never deallocated within a profiler —
// reset() zeroes histograms in place — and RP_PROFILE_REGION's epoch-stamped
// thread_local cache re-resolves whenever the bound context changes.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rp {
class JsonWriter;
}

namespace rp::profiler {

/// Fixed-bucket log-spaced latency histogram. Bucket 0 is [0, 100 ns); the
/// remaining 40 buckets step by 10^(1/4) (4 per decade) up to 1000 s;
/// durations beyond the last edge clamp into the last bucket.
struct LatencyHistogram {
  static constexpr int kBuckets = 41;

  std::uint64_t counts[kBuckets] = {};
  std::uint64_t samples = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;  ///< Valid when samples > 0.
  std::uint64_t max_ns = 0;

  /// Bucket boundaries in nanoseconds: edges_ns()[b] .. edges_ns()[b+1] is
  /// bucket b's half-open range (kBuckets + 1 entries, strictly ascending).
  static const std::uint64_t* edges_ns();
  /// Bucket index for a duration (exact: table lookup, no float log).
  static int bucket_of(std::uint64_t ns);
  static double bucket_lo_us(int b) { return static_cast<double>(edges_ns()[b]) / 1000.0; }
  static double bucket_hi_us(int b) { return static_cast<double>(edges_ns()[b + 1]) / 1000.0; }

  void record(std::uint64_t ns);
  /// Add `other`'s samples into this histogram (bucket-wise).
  void merge(const LatencyHistogram& other);
  void clear();

  /// q in [0, 1]: log-linear interpolation inside the target bucket,
  /// clamped to the exact [min, max]. 0 when empty.
  double quantile_us(double q) const;
  double mean_us() const {
    return samples == 0 ? 0.0 : static_cast<double>(total_ns) / static_cast<double>(samples) / 1000.0;
  }
  double total_ms() const { return static_cast<double>(total_ns) / 1e6; }
  double max_us() const { return static_cast<double>(max_ns) / 1000.0; }
  double min_us() const { return static_cast<double>(min_ns) / 1000.0; }
};

/// One named profiled region (an RP_TRACE_SPAN or RP_PROFILE_REGION site).
struct Region {
  LatencyHistogram hist;
};

/// Registry of profiled regions. One per obs::ObsContext (like the
/// telemetry Registry); slot addresses are stable for the profiler's
/// lifetime. Main-thread-only within a context.
class Profiler {
 public:
  Profiler();

  /// The current thread's profiler: the bound ObsContext's, else the
  /// process default's (see util/obs_context.hpp).
  static Profiler& instance();

  /// Find-or-create. The reference stays valid for the profiler's lifetime
  /// (reset() zeroes histograms but never moves slots) — safe to cache at
  /// call sites together with epoch().
  Region& region(const std::string& name);

  /// Process-unique id minted at construction; RP_PROFILE_REGION compares
  /// it to decide whether its cached slot belongs to this profiler.
  std::uint64_t epoch() const { return epoch_; }

  /// Record one sample into the named region (map lookup per call; use
  /// RP_PROFILE_REGION's cached slot on hot paths instead).
  void record(const std::string& name, std::uint64_t ns);

  /// Zero every histogram in place (slot addresses and epoch preserved).
  void reset();

  /// Name-sorted snapshot for the run report.
  std::vector<std::pair<std::string, const Region*>> regions() const;

 private:
  std::map<std::string, Region> regions_;  ///< Node-based: stable addresses.
  std::uint64_t epoch_ = 0;
};

/// Master switch. set_enabled() also toggles the thread pool's busy/wait
/// instrumentation (parallel::set_pool_profiling). Main thread only,
/// outside parallel regions.
bool enabled();
void set_enabled(bool on);

/// True when the RP_PROFILE environment variable requests profiling
/// (set and not "0"); used by the CLI and the bench binaries.
bool env_requested();

/// Zero region histograms AND the pool's cumulative profile (a flow run
/// calls this so its report reflects that run only).
void reset_all();

/// Steady-clock nanoseconds (monotonic, epoch unspecified).
std::uint64_t now_ns();

/// Write the run report's `"profile"` block: `w.key("profile")` plus an
/// object with per-region histograms and the thread-pool section. Call only
/// when enabled() — the block is absent from unprofiled reports.
void write_report_block(JsonWriter& w);

/// One JSONL row per region ({"schema":"profile_region",...}), for
/// RP_BENCH_JSON trend tracking. Empty string when profiling is off.
std::string region_jsonl_rows(const std::string& bench, const std::string& flow);

/// RAII sampler for RP_PROFILE_REGION: latches enabled() at entry.
class ScopedRegion {
 public:
  explicit ScopedRegion(Region* r) : r_(enabled() ? r : nullptr) {
    if (r_ != nullptr) t0_ = now_ns();
  }
  ~ScopedRegion() {
    if (r_ != nullptr) r_->hist.record(now_ns() - t0_);
  }
  ScopedRegion(const ScopedRegion&) = delete;
  ScopedRegion& operator=(const ScopedRegion&) = delete;

 private:
  Region* r_;
  std::uint64_t t0_ = 0;
};

}  // namespace rp::profiler

#define RP_PROFILER_CONCAT2(a, b) a##b
#define RP_PROFILER_CONCAT(a, b) RP_PROFILER_CONCAT2(a, b)

/// Scoped latency sample with a per-call-site cached region slot. The cache
/// is thread_local and stamped with the owning profiler's epoch, so context
/// switches force re-resolution and stale slots are never dereferenced
/// (same scheme as RP_COUNT; see util/obs_context.hpp). With profiling off
/// the whole thing is one branch; no string is built either way.
#define RP_PROFILE_REGION(name)                                                  \
  static thread_local ::rp::profiler::Region* RP_PROFILER_CONCAT(                \
      rp_pf_slot_, __LINE__) = nullptr;                                          \
  static thread_local std::uint64_t RP_PROFILER_CONCAT(rp_pf_epoch_,             \
                                                       __LINE__) = 0;            \
  if (::rp::profiler::enabled()) {                                               \
    ::rp::profiler::Profiler& rp_pf_prof_ = ::rp::profiler::Profiler::instance();\
    if (RP_PROFILER_CONCAT(rp_pf_epoch_, __LINE__) != rp_pf_prof_.epoch()) {     \
      RP_PROFILER_CONCAT(rp_pf_slot_, __LINE__) = &rp_pf_prof_.region(name);     \
      RP_PROFILER_CONCAT(rp_pf_epoch_, __LINE__) = rp_pf_prof_.epoch();          \
    }                                                                            \
  }                                                                              \
  ::rp::profiler::ScopedRegion RP_PROFILER_CONCAT(rp_pf_scope_, __LINE__)(       \
      RP_PROFILER_CONCAT(rp_pf_slot_, __LINE__))
