#include "util/event_bus.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/logger.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define RP_OBS_POSIX 1
#endif

namespace rp::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::RunBegin: return "run_begin";
    case EventKind::RunEnd: return "run_end";
    case EventKind::StageBegin: return "stage_begin";
    case EventKind::StageEnd: return "stage_end";
    case EventKind::GpIter: return "gp_iter";
    case EventKind::RouteRound: return "route_round";
    case EventKind::Watchdog: return "watchdog";
    case EventKind::Guard: return "guard";
    case EventKind::ParseRepair: return "parse_repair";
    case EventKind::RunError: return "error";
  }
  return "unknown";
}

void Event::set_label(const char* s) {
  if (s == nullptr) {
    label[0] = '\0';
    return;
  }
  std::size_t i = 0;
  for (; i + 1 < sizeof label && s[i] != '\0'; ++i) label[i] = s[i];
  label[i] = '\0';
}

// ------------------------------------------------------------------ NDJSON

namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON cannot encode NaN/Inf; mirror JsonWriter.
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_kv_i(std::string& out, const char* key, std::int64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void append_kv_d(std::string& out, const char* key, double v) {
  out += ",\"";
  out += key;
  out += "\":";
  append_double(out, v);
}

void append_kv_s(std::string& out, const char* key, const char* v) {
  out += ",\"";
  out += key;
  out += "\":\"";
  // Labels are ASCII tags by construction; escape the two dangerous chars
  // anyway so a hostile design name cannot corrupt the stream.
  for (const char* p = v; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    if (static_cast<unsigned char>(*p) >= 0x20) out += *p;
  }
  out += '"';
}

}  // namespace

std::string event_ndjson(const Event& e) {
  std::string out;
  out.reserve(256);
  out += "{\"schema\":\"rp_progress\",\"v\":1";
  append_kv_i(out, "seq", static_cast<std::int64_t>(e.seq));
  out += ",\"t_ms\":";
  append_double(out, static_cast<double>(e.t_ns) / 1e6);
  append_kv_s(out, "event", event_kind_name(e.kind));
  switch (e.kind) {
    case EventKind::RunBegin:
      append_kv_s(out, "design", e.label);
      append_kv_i(out, "cells", e.i0);
      append_kv_i(out, "nets", e.i1);
      append_kv_i(out, "macros", e.i2);
      break;
    case EventKind::RunEnd:
      append_kv_d(out, "hpwl", e.d0);
      append_kv_d(out, "scaled_hpwl", e.d1);
      append_kv_d(out, "overflow", e.d2);
      append_kv_i(out, "legal", e.i0);
      break;
    case EventKind::StageBegin:
    case EventKind::StageEnd:
      append_kv_s(out, "stage", e.label);
      break;
    case EventKind::GpIter:
      append_kv_s(out, "tag", e.label);
      append_kv_i(out, "level", e.i0);
      append_kv_i(out, "outer", e.i1);
      append_kv_d(out, "hpwl", e.d0);
      append_kv_d(out, "overflow", e.d1);
      append_kv_d(out, "lambda", e.d2);
      append_kv_d(out, "inflation", e.d3);
      break;
    case EventKind::RouteRound:
      append_kv_i(out, "round", e.i0);
      append_kv_i(out, "cells_inflated", e.i1);
      append_kv_d(out, "overflow", e.d0);
      append_kv_d(out, "rc", e.d1);
      append_kv_d(out, "mean_inflation", e.d2);
      break;
    case EventKind::Watchdog:
      append_kv_s(out, "watchdog", e.label);
      append_kv_d(out, "limit", e.d0);
      break;
    case EventKind::Guard:
      append_kv_s(out, "guard", e.label);
      append_kv_i(out, "count", e.i0);
      break;
    case EventKind::ParseRepair:
      append_kv_s(out, "mode", e.label);
      append_kv_i(out, "total", e.i0);
      break;
    case EventKind::RunError:
      append_kv_s(out, "code", e.label);
      append_kv_i(out, "exit_code", e.i0);
      break;
  }
  out += '}';
  return out;
}

// --------------------------------------------------------------------- bus

EventBus::EventBus() : epoch_ns_(profiler::now_ns()) {}

EventBus::~EventBus() { close_stream(); }

Event EventBus::make(EventKind kind, const char* label) const {
  Event e;
  e.kind = kind;
  e.set_label(label);
  return e;
}

bool write_all_fd(int fd, const char* data, std::size_t n) {
#ifdef RP_OBS_POSIX
  // The sink fds here are pipes, sockets and regular files shared with slow
  // readers (a tailing dashboard, an rp_serve client): short writes are
  // ROUTINE once a line straddles the pipe/socket buffer boundary, and any
  // signal (SIGCHLD from a campaign child, a profiler timer) can abort the
  // write with EINTR before OR after a partial transfer. Loop until the
  // whole buffer is out; only a real error (EPIPE on a vanished reader,
  // EBADF) fails the write. Async-signal-safe: write() + errno only.
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
#else
  std::FILE* f = fd == 1 ? stdout : nullptr;
  if (f == nullptr) return false;
  const bool ok = std::fwrite(data, 1, n, f) == n;
  std::fflush(f);
  return ok;
#endif
}

namespace {

bool write_all(int fd, const char* data, std::size_t n) {
  return write_all_fd(fd, data, n);
}

}  // namespace

void EventBus::emit(Event e) {
  const std::uint64_t seq = seq_.load(std::memory_order_relaxed);
  e.seq = seq;
  e.t_ns = profiler::now_ns() - epoch_ns_;
  // Fill the slot fully, then publish: a signal handler interrupting this
  // store sequence reads head=seq and never looks at the in-progress slot.
  ring_[seq % kFlightCapacity] = e;
  seq_.store(seq + 1, std::memory_order_release);
  if (stream_fd_ >= 0) {
    std::string line = event_ndjson(e);
    line += '\n';
    if (!write_all(stream_fd_, line.data(), line.size())) {
      RP_WARN("event bus: progress stream write failed; closing stream");
      close_stream();
    }
  }
}

bool EventBus::write_raw_line(const char* data, std::size_t len) {
  const int fd = stream_fd_;
  if (fd < 0 || len == 0) return false;
  // Single buffer, single write(): the kernel serializes concurrent writes
  // on the shared fd, so this line cannot split an emit()ed line (or vice
  // versa). No close-on-failure here — the bus's owning thread manages the
  // stream lifetime.
  char buf[512];
  if (len + 1 > sizeof buf) len = sizeof buf - 1;  // tag lines are short
  std::memcpy(buf, data, len);
  buf[len] = '\n';
  return write_all(fd, buf, len + 1);
}

bool EventBus::open_stream(const std::string& target) {
  close_stream();
  if (target.empty()) return false;
  if (target == "-") {
    stream_fd_ = 1;
    close_stream_fd_ = false;
    return true;
  }
  if (target.rfind("fd:", 0) == 0) {
    const int fd = std::atoi(target.c_str() + 3);
    if (fd < 0) return false;
    stream_fd_ = fd;
    close_stream_fd_ = false;
    return true;
  }
#ifdef RP_OBS_POSIX
  const int fd = ::open(target.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  stream_fd_ = fd;
  close_stream_fd_ = true;
  return true;
#else
  return false;
#endif
}

void EventBus::close_stream() {
#ifdef RP_OBS_POSIX
  if (stream_fd_ >= 0 && close_stream_fd_) ::close(stream_fd_);
#endif
  stream_fd_ = -1;
  close_stream_fd_ = false;
}

int EventBus::flight_events(Event* out, int max) const {
  const std::uint64_t head = seq_.load(std::memory_order_acquire);
  const std::uint64_t have =
      head < kFlightCapacity ? head : static_cast<std::uint64_t>(kFlightCapacity);
  int n = static_cast<int>(have);
  if (n > max) n = max;
  for (int i = 0; i < n; ++i)
    out[i] = ring_[(head - static_cast<std::uint64_t>(n - i)) % kFlightCapacity];
  return n;
}

// ------------------------------------------------- async-signal-safe dump

namespace {

/// write()-backed sink with a fixed stack buffer: no allocation, no stdio —
/// everything a fatal-signal handler is allowed to touch.
struct SafeWriter {
  int fd;
  char buf[512];
  std::size_t len = 0;
  bool ok = true;

  explicit SafeWriter(int f) : fd(f) {}
  void flush() {
    if (len > 0 && ok) ok = write_all(fd, buf, len);
    len = 0;
  }
  void put_char(char c) {
    if (len == sizeof buf) flush();
    buf[len++] = c;
  }
  void put(const char* s) {
    for (; *s != '\0'; ++s) put_char(*s);
  }
  void put_quoted(const char* s) {
    put_char('"');
    for (; *s != '\0'; ++s) {
      if (*s == '"' || *s == '\\') put_char('\\');
      if (static_cast<unsigned char>(*s) >= 0x20) put_char(*s);
    }
    put_char('"');
  }
  void put_u64(std::uint64_t v) {
    char tmp[20];
    int n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v > 0);
    while (n > 0) put_char(tmp[--n]);
  }
  void put_i64(std::int64_t v) {
    if (v < 0) {
      put_char('-');
      put_u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      put_u64(static_cast<std::uint64_t>(v));
    }
  }
  /// Scientific notation with 12 significant digits using integer math only
  /// (snprintf is not async-signal-safe). Forensic precision, not exact
  /// round-trip; NaN/Inf become null as everywhere else in our JSON.
  void put_double(double v) {
    if (!std::isfinite(v)) {
      put("null");
      return;
    }
    if (v == 0.0) {
      put("0");
      return;
    }
    if (v < 0.0) {
      put_char('-');
      v = -v;
    }
    int exp = 0;
    while (v >= 10.0 && exp < 400) {
      v /= 10.0;
      ++exp;
    }
    while (v < 1.0 && exp > -400) {
      v *= 10.0;
      --exp;
    }
    auto digits = static_cast<std::uint64_t>(v * 1e11 + 0.5);  // 12 digits
    if (digits >= 1000000000000ull) {  // rounded up to 10.0...
      digits /= 10;
      ++exp;
    }
    char tmp[16];
    for (int i = 11; i >= 0; --i) {
      tmp[i] = static_cast<char>('0' + digits % 10);
      digits /= 10;
    }
    put_char(tmp[0]);
    put_char('.');
    int last = 11;
    while (last > 1 && tmp[last] == '0') --last;  // trim trailing zeros
    for (int i = 1; i <= last; ++i) put_char(tmp[i]);
    if (exp != 0) {
      put_char('e');
      put_i64(exp);
    }
  }
};

void write_event_fields(SafeWriter& w, const Event& e) {
  w.put("{\"seq\":");
  w.put_u64(e.seq);
  w.put(",\"t_ms\":");
  w.put_double(static_cast<double>(e.t_ns) / 1e6);
  w.put(",\"event\":");
  w.put_quoted(event_kind_name(e.kind));
  w.put(",\"label\":");
  w.put_quoted(e.label);
  w.put(",\"i\":[");
  w.put_i64(e.i0);
  w.put_char(',');
  w.put_i64(e.i1);
  w.put_char(',');
  w.put_i64(e.i2);
  w.put("],\"d\":[");
  w.put_double(e.d0);
  w.put_char(',');
  w.put_double(e.d1);
  w.put_char(',');
  w.put_double(e.d2);
  w.put_char(',');
  w.put_double(e.d3);
  w.put("]}");
}

}  // namespace

bool EventBus::dump_flight_fd(int fd, const char* reason,
                              const telemetry::Registry* reg) const {
  SafeWriter w(fd);
  w.put("{\"schema\":\"rp_flight\",\"version\":1,\"reason\":");
  w.put_quoted(reason != nullptr ? reason : "unknown");
  w.put(",\"events_total\":");
  w.put_u64(events_emitted());
  w.put(",\"events\":[");
  // The ring is POD and the head is release-published, so reading it here is
  // safe even when this call interrupted an emit() in progress.
  Event evs[kFlightCapacity];
  const int n = flight_events(evs, kFlightCapacity);
  for (int i = 0; i < n; ++i) {
    if (i > 0) w.put_char(',');
    write_event_fields(w, evs[i]);
  }
  w.put("]");
  if (reg != nullptr) {
    // Read-only map traversal: no allocation, stable nodes.
    w.put(",\"counters\":{");
    bool first = true;
    for (const auto& [name, c] : reg->counters_map()) {
      if (!first) w.put_char(',');
      first = false;
      w.put_quoted(name.c_str());
      w.put_char(':');
      w.put_i64(c.value);
    }
    w.put("},\"gauges\":{");
    first = true;
    for (const auto& [name, g] : reg->gauges_map()) {
      if (!first) w.put_char(',');
      first = false;
      w.put_quoted(name.c_str());
      w.put_char(':');
      w.put_double(g.value);
    }
    w.put("}");
  }
  w.put("}\n");
  w.flush();
  return w.ok;
}

bool EventBus::dump_flight(const std::string& path, const char* reason,
                           const telemetry::Registry* reg) const {
#ifdef RP_OBS_POSIX
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    RP_ERROR("flight recorder: cannot open '%s'", path.c_str());
    return false;
  }
  const bool ok = dump_flight_fd(fd, reason, reg);
  ::close(fd);
  if (!ok) RP_ERROR("flight recorder: short write to '%s'", path.c_str());
  return ok;
#else
  (void)path;
  (void)reason;
  (void)reg;
  return false;
#endif
}

}  // namespace rp::obs
