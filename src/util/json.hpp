#pragma once
// Dependency-free JSON: a streaming writer (used by the telemetry trace and
// the structured run report) and a small recursive-descent parser (used by
// tests and tooling to validate what the writer emitted).
//
// The writer is comma/nesting-aware so call sites read like the document:
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("hpwl").value(1.2e6);
//   w.key("stages").begin_array();
//   w.value("gp").value("legal");
//   w.end_array();
//   w.end_object();
//   std::string doc = w.str();
//
// Numbers are written with enough digits to round-trip a double; non-finite
// values (NaN/Inf have no JSON encoding) are emitted as null.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rp {

/// Escape a string for inclusion in a JSON document (no surrounding quotes).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per nesting level.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand: key + scalar value.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void comma();
  void newline_indent();

  std::string out_;
  std::vector<bool> needs_comma_;  ///< Per nesting level.
  bool after_key_ = false;
  int indent_ = 0;
};

/// Parsed JSON value (object keys kept in sorted std::map order).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  bool has(const std::string& k) const { return is_object() && obj.count(k) > 0; }
  /// Object member access; throws std::runtime_error when absent.
  const JsonValue& at(const std::string& k) const;
};

/// Parse a complete JSON document. Throws std::runtime_error with a byte
/// offset on malformed input or trailing garbage.
JsonValue json_parse(std::string_view text);

}  // namespace rp
