#pragma once
// Per-run observability context — the ownership root of the whole
// observability layer and the re-entrancy contract for `flow.run`.
//
//   ObsContext
//    ├── telemetry::Registry    counters + gauges   (RP_COUNT / RP_GAUGE)
//    ├── telemetry::TraceBuffer Chrome-trace spans  (RP_TRACE_SPAN)
//    ├── profiler::Profiler     region histograms   (RP_PROFILE_REGION)
//    ├── obs::EventBus          typed events, NDJSON stream, flight recorder
//    └── obs::ResourceSampler   RSS/CPU/pool-busy timeline (schema-v5 block)
//
// Historically these four were process globals that `flow.run` reset at
// entry, which made the flow non-re-entrant (two runs in one process tramped
// each other's counters — the blocker for the `rp_serve` daemon, and the
// reason PR 5 had to route ParseRepairs around the registry). Now every run
// can own its context:
//
//   auto obs = std::make_shared<obs::ObsContext>();
//   obs::ScopedBind bind(obs.get());       // this thread's "current" context
//   ... parse, flow.run (FlowOptions::obs), run_report_json(r) ...
//
// THREAD-BOUND CURRENT CONTEXT. `current()` resolves to the context bound to
// this thread (`bind` / ScopedBind), falling back to a process-wide default.
// `Registry::instance()` / `Profiler::instance()` and every RP_* macro
// resolve against current(), so the entire codebase — and its tests — work
// unchanged; code that never binds a context sees exactly the old global
// behavior. Two threads bound to two different contexts observe fully
// disjoint counters/traces/events (the re-entrancy ctest proves byte-
// identical reports for concurrent runs).
//
// MACRO SLOT CACHES. RP_COUNT/RP_GAUGE/RP_PROFILE_REGION cache their slot
// pointer per call site in a thread_local stamped with the owning registry's
// epoch (a process-unique id minted at registry construction). A cache hit
// is one compare + one add; switching contexts — or destroying one and
// allocating another at the same address — changes the epoch and forces
// re-resolution. Stale pointers are never dereferenced.
//
// LIFETIME. A bound context must outlive its binding (ScopedBind unwinds in
// dtor order) and must be unbound from the crash handler (set_crash_context)
// before destruction. The process-default context lives forever.
//
// INTERRUPTS. SIGINT/SIGTERM handling is cooperative: the handler only sets
// a flag; the flow polls check_interrupt() at stage boundaries and inside
// the GP/DP/router loops and throws Error(Interrupted) → exit code 7 with a
// normal partial report + flight dump. A second signal kills immediately.
//
// CRASH HANDLERS. install_crash_handlers() registers SIGSEGV/SIGABRT/
// SIGBUS/SIGFPE handlers that dump the flight recorder of the context named
// by set_crash_context() through the async-signal-safe writer, then re-raise.

#include <memory>
#include <string>

#include "util/event_bus.hpp"
#include "util/profiler.hpp"
#include "util/resource_sampler.hpp"
#include "util/telemetry.hpp"

namespace rp::obs {

/// One run's worth of observability state. Default-constructible, owns all
/// four sinks; see the file comment for the binding/lifetime contract.
class ObsContext {
 public:
  ObsContext() = default;
  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;

  telemetry::Registry& registry() { return registry_; }
  const telemetry::Registry& registry() const { return registry_; }
  telemetry::TraceBuffer& trace() { return trace_; }
  profiler::Profiler& profiler() { return profiler_; }
  EventBus& events() { return events_; }
  const EventBus& events() const { return events_; }
  ResourceSampler& sampler() { return sampler_; }
  const ResourceSampler& sampler() const { return sampler_; }

  /// Zero counters/gauges and profiler histograms in place (slot addresses
  /// and epochs are preserved; the event bus and trace buffer are not
  /// touched). Fresh contexts start zeroed — this is for reuse.
  void reset() {
    registry_.reset();
    profiler_.reset();
  }

 private:
  telemetry::Registry registry_;
  telemetry::TraceBuffer trace_;
  profiler::Profiler profiler_;
  EventBus events_;
  // Declared AFTER events_: destroyed first, so a still-running sampler is
  // stopped (its dtor) before the bus it may be streaming into goes away.
  ResourceSampler sampler_;
};

/// The fallback context used by threads with no explicit binding — the old
/// process-global behavior. Never destroyed.
ObsContext& process_default();

/// This thread's current context: the bound one, else process_default().
ObsContext& current();

/// Bind `ctx` as this thread's current context (nullptr unbinds). Prefer
/// ScopedBind. The caller guarantees ctx outlives the binding.
void bind(ObsContext* ctx);

/// The raw binding (nullptr when this thread falls back to the default).
ObsContext* bound();

/// RAII binding: binds in the ctor, restores the previous binding in the
/// dtor. Safe to nest.
class ScopedBind {
 public:
  explicit ScopedBind(ObsContext* ctx) : prev_(bound()) { bind(ctx); }
  ~ScopedBind() { bind(prev_); }
  ScopedBind(const ScopedBind&) = delete;
  ScopedBind& operator=(const ScopedBind&) = delete;

 private:
  ObsContext* prev_;
};

/// Shorthand for current().events() — the emit sites' entry point.
inline EventBus& events() { return current().events(); }

// ------------------------------------------------------- interrupt support

/// True once a SIGINT/SIGTERM arrived (or request_interrupt() was called).
bool interrupt_requested();
/// Set the interrupt flag by hand (tests; the signal handler uses the same
/// path). Async-signal-safe.
void request_interrupt();
/// Clear the flag (start of a fresh run).
void clear_interrupt();
/// Throw Error(ErrorCode::Interrupted) when the flag is set. The flow polls
/// this at stage boundaries and inside long loops.
void check_interrupt();

// ----------------------------------------------------------- signal wiring

struct CrashHandlerOptions {
  /// Where crash-path flight dumps land; empty disables dumping (handlers
  /// still re-raise / set the interrupt flag).
  std::string flight_path;
  /// Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE → flight dump + re-raise.
  bool handle_crash_signals = true;
  /// Install SIGINT/SIGTERM → request_interrupt() (second signal: default
  /// action, i.e. die).
  bool handle_interrupt_signals = true;
};

/// Install the process signal handlers. Call once, early in main(); calling
/// again replaces the flight path.
void install_crash_handlers(const CrashHandlerOptions& opt);

/// Name the context whose flight recorder + registry the crash handler
/// dumps (nullptr disarms — REQUIRED before that context is destroyed).
void set_crash_context(ObsContext* ctx);

}  // namespace rp::obs
