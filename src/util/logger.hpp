#pragma once
// Minimal leveled logger.
//
// The placer is a batch tool: logging goes to stderr, formatted printf-style,
// and is globally filterable by level (benchmarks silence it below Warn).
// Not thread-safe by design — the placer is single-threaded.

#include <cstdarg>
#include <string>

namespace rp {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel lv);

  static void log(LogLevel lv, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
};

/// RAII guard that silences (or changes) logging within a scope.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel lv) : prev_(Logger::level()) { Logger::set_level(lv); }
  ~ScopedLogLevel() { Logger::set_level(prev_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel prev_;
};

}  // namespace rp

#define RP_DEBUG(...) ::rp::Logger::log(::rp::LogLevel::Debug, __VA_ARGS__)
#define RP_INFO(...) ::rp::Logger::log(::rp::LogLevel::Info, __VA_ARGS__)
#define RP_WARN(...) ::rp::Logger::log(::rp::LogLevel::Warn, __VA_ARGS__)
#define RP_ERROR(...) ::rp::Logger::log(::rp::LogLevel::Error, __VA_ARGS__)
