#pragma once
// Minimal leveled logger.
//
// The placer is a batch tool: logging goes to stderr, formatted printf-style,
// prefixed with the elapsed wall time and the level
// (`[  12.345s] [INFO ] ...`), and is globally filterable by level
// (benchmarks silence it below Warn).
//
// The `RP_LOG_LEVEL` environment variable (debug|info|warn|error|silent, or
// the numeric 0–4) overrides every programmatic set_level() call, so benches
// and CI can silence or raise verbosity without code changes.
//
// Main-thread-only by contract: pool workers (util/parallel) never log —
// parallel kernels report from the calling thread, so no locks are needed.

#include <cstdarg>
#include <string>

namespace rp {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

class Logger {
 public:
  static LogLevel level();
  /// Set the level. Ignored while an RP_LOG_LEVEL override is active.
  static void set_level(LogLevel lv);

  /// Re-read RP_LOG_LEVEL (called automatically on first use; exposed so
  /// tests can exercise the override with setenv/unsetenv).
  static void init_from_env();

  /// Seconds since the process first logged (the timestamp origin).
  static double elapsed_seconds();

  static void log(LogLevel lv, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
};

/// RAII guard that silences (or changes) logging within a scope.
/// No-op while an RP_LOG_LEVEL override is active (the override wins).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel lv) : prev_(Logger::level()) { Logger::set_level(lv); }
  ~ScopedLogLevel() { Logger::set_level(prev_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel prev_;
};

}  // namespace rp

#define RP_DEBUG(...) ::rp::Logger::log(::rp::LogLevel::Debug, __VA_ARGS__)
#define RP_INFO(...) ::rp::Logger::log(::rp::LogLevel::Info, __VA_ARGS__)
#define RP_WARN(...) ::rp::Logger::log(::rp::LogLevel::Warn, __VA_ARGS__)
#define RP_ERROR(...) ::rp::Logger::log(::rp::LogLevel::Error, __VA_ARGS__)
