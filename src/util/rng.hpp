#pragma once
// Deterministic random number generation.
//
// Everything stochastic in the repo (benchmark generation, tie-breaking,
// detailed-placement sampling) draws from an Rng seeded explicitly, so every
// experiment is bit-reproducible. Implementation: xoshiro256** (public
// domain, Blackman & Vigna), which is faster and better distributed than
// std::mt19937 and has a trivially splittable seed sequence.

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace rp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state; guarantees a
    // non-zero state for any seed.
    std::uint64_t z = seed;
    for (auto& w : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
      t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
      w = t ^ (t >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    RP_ASSERT(n > 0, "Rng::below(0)");
    // Lemire's nearly-divisionless bounded rejection sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    RP_ASSERT(hi >= lo, "Rng::range inverted");
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached second deviate).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * f;
    has_cached_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child stream (for per-module generation).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // UniformRandomBitGenerator interface so std::sample etc. also work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t s_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace rp
