#include "util/error.hpp"

namespace rp {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::ParseError: return "ParseError";
    case ErrorCode::ValidationError: return "ValidationError";
    case ErrorCode::NumericError: return "NumericError";
    case ErrorCode::ResourceError: return "ResourceError";
    case ErrorCode::Interrupted: return "Interrupted";
  }
  return "UnknownError";
}

int error_exit_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::ParseError: return 3;
    case ErrorCode::ValidationError: return 4;
    case ErrorCode::NumericError: return 5;
    case ErrorCode::ResourceError: return 6;
    case ErrorCode::Interrupted: return 7;
  }
  return 2;
}

namespace {

std::string format_what(ErrorCode code, const std::string& message,
                        const std::string& where) {
  std::string s = "[";
  s += error_code_name(code);
  s += "] ";
  if (!where.empty()) {
    s += where;
    s += ": ";
  }
  s += message;
  return s;
}

}  // namespace

Error::Error(ErrorCode code, std::string message, std::string where, std::string stage)
    : std::runtime_error(format_what(code, message, where)),
      code_(code),
      message_(std::move(message)),
      where_(std::move(where)),
      stage_(std::move(stage)) {}

namespace detail {

std::string_view error_basename(std::string_view path) {
  const auto slash = path.find_last_of("/\\");
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

}  // namespace detail

}  // namespace rp
