#include "util/obs_context.hpp"

#include <atomic>
#include <csignal>
#include <cstring>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define RP_OBS_POSIX 1
#endif

namespace rp::obs {

namespace {

thread_local ObsContext* t_bound = nullptr;

}  // namespace

ObsContext& process_default() {
  // Leaked on purpose: threads may consult the default context during static
  // destruction (e.g. a crash handler firing while main unwinds).
  static ObsContext* ctx = new ObsContext();
  return *ctx;
}

ObsContext& current() { return t_bound != nullptr ? *t_bound : process_default(); }

void bind(ObsContext* ctx) { t_bound = ctx; }

ObsContext* bound() { return t_bound; }

// ------------------------------------------------------- interrupt support

namespace {

// sig_atomic_t, not std::atomic: written from signal handlers, and the
// C standard blesses exactly this type for that.
volatile std::sig_atomic_t g_interrupt = 0;

}  // namespace

bool interrupt_requested() { return g_interrupt != 0; }
void request_interrupt() { g_interrupt = 1; }
void clear_interrupt() { g_interrupt = 0; }

void check_interrupt() {
  if (g_interrupt != 0)
    throw Error(ErrorCode::Interrupted, "interrupted by signal (SIGINT/SIGTERM)");
}

// ----------------------------------------------------------- signal wiring

namespace {

// Fixed storage readable from a signal handler: no std::string, no locks.
char g_flight_path[512] = {};
std::atomic<ObsContext*> g_crash_ctx{nullptr};

const char* crash_signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
#ifdef SIGBUS
    case SIGBUS: return "SIGBUS";
#endif
    case SIGINT: return "SIGINT";
    case SIGTERM: return "SIGTERM";
  }
  return "signal";
}

extern "C" void rp_obs_crash_handler(int sig) {
  ObsContext* ctx = g_crash_ctx.load(std::memory_order_acquire);
#ifdef RP_OBS_POSIX
  if (ctx != nullptr && g_flight_path[0] != '\0') {
    // open/write/close are async-signal-safe; dump_flight_fd uses nothing
    // else. Reading the registry maps is best-effort — acceptable for a
    // black box whose alternative is no data at all.
    const int fd = ::open(g_flight_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      ctx->events().dump_flight_fd(fd, crash_signal_name(sig), &ctx->registry());
      ::close(fd);
    }
  }
#else
  (void)ctx;
#endif
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

extern "C" void rp_obs_interrupt_handler(int sig) {
  if (g_interrupt != 0) {
    // Second Ctrl-C: the user means it. Die with the default action.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
    return;
  }
  g_interrupt = 1;
}

}  // namespace

void install_crash_handlers(const CrashHandlerOptions& opt) {
  const std::size_t n = opt.flight_path.size() < sizeof g_flight_path - 1
                            ? opt.flight_path.size()
                            : sizeof g_flight_path - 1;
  std::memcpy(g_flight_path, opt.flight_path.data(), n);
  g_flight_path[n] = '\0';
  if (opt.handle_crash_signals) {
    std::signal(SIGSEGV, rp_obs_crash_handler);
    std::signal(SIGABRT, rp_obs_crash_handler);
    std::signal(SIGFPE, rp_obs_crash_handler);
#ifdef SIGBUS
    std::signal(SIGBUS, rp_obs_crash_handler);
#endif
  }
  if (opt.handle_interrupt_signals) {
    std::signal(SIGINT, rp_obs_interrupt_handler);
    std::signal(SIGTERM, rp_obs_interrupt_handler);
  }
}

void set_crash_context(ObsContext* ctx) {
  g_crash_ctx.store(ctx, std::memory_order_release);
}

}  // namespace rp::obs
