#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/assert.hpp"
#include "util/telemetry.hpp"

namespace rp::parallel {

ChunkPlan plan_chunks(std::size_t n, std::size_t grain, int max_chunks) {
  ChunkPlan p;
  p.n = n;
  if (n == 0) {
    p.count = 0;
    return p;
  }
  if (grain == 0) grain = 1;
  const std::size_t want = (n + grain - 1) / grain;
  const auto cap = static_cast<std::size_t>(max_chunks < 1 ? 1 : max_chunks);
  p.count = static_cast<int>(want < cap ? want : cap);
  return p;
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RP_THREADS"); env != nullptr && env[0] != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return hardware_threads();
}

void set_num_threads(int n) { ThreadPool::instance().resize(n < 1 ? 1 : n); }

int num_threads() { return ThreadPool::instance().threads(); }

// ----------------------------------------------------------------- pool

namespace {
/// True while the current thread executes inside a parallel region; nested
/// regions degrade to inline ascending-order execution (same result).
thread_local bool t_in_region = false;

/// Chunk/worker timing switch (profiler::set_enabled routes here). Written
/// on the main thread outside regions; workers observe it via the
/// mutex-published per-job flag, never directly.
bool g_pool_profiling = false;
}  // namespace

void set_pool_profiling(bool on) {
  RP_ASSERT(!t_in_region, "set_pool_profiling from inside a parallel region");
  g_pool_profiling = on;
}

bool pool_profiling() { return g_pool_profiling; }

struct ThreadPool::Impl {
  /// Serializes whole jobs across concurrent submitters (distinct threads
  /// running distinct flows). Held for a job's full lifetime — pooled path
  /// AND profiled inline path (both touch slots[0] / the cumulative
  /// profile). Nested regions never take it (they run inline unprofiled),
  /// so there is no self-deadlock.
  std::mutex submit_m;
  std::mutex m;
  std::condition_variable cv_work;   // workers wait for a job / shutdown
  std::condition_variable cv_done;   // caller waits for job completion
  std::vector<std::thread> workers;  // threads_ - 1 of them
  bool shutdown = false;

  // Current job (valid while job_active). The caller's run() does not return
  // until chunks_done == plan->count AND workers_in_job == 0, so plan/fn and
  // next_chunk stay valid for every worker that entered the job.
  bool job_active = false;
  bool job_instrument = false;  // time chunks into the worker slots
  bool job_trace = false;       // additionally keep per-chunk trace events
  std::uint64_t job_seq = 0;
  const ChunkPlan* plan = nullptr;
  const std::function<void(int, int)>* fn = nullptr;
  std::atomic<int> next_chunk{0};
  int chunks_done = 0;
  int workers_in_job = 0;

  // ---------------------------------------------------------- observability
  // Pre-allocated per-worker region scratch (sized at resize()): each worker
  // writes ONLY its own cacheline-aligned slot while a region runs; the
  // caller folds the slots after the region completes, so no synchronization
  // beyond the existing job handshake is needed.
  struct alignas(64) WorkerSlot {
    std::uint64_t busy_ns = 0;
    std::int64_t chunks = 0;
    profiler::LatencyHistogram hist;  ///< This region's chunk durations.
    struct Ev {
      std::uint64_t start_ns = 0;
      std::uint64_t dur_ns = 0;
    };
    Ev events[kDefaultMaxChunks];  ///< Trace spans (capped; extras dropped).
    int num_events = 0;

    void time_chunk(std::uint64_t start_ns, std::uint64_t dur_ns, bool keep_event) {
      busy_ns += dur_ns;
      ++chunks;
      hist.record(dur_ns);
      if (keep_event && num_events < kDefaultMaxChunks)
        events[num_events++] = {start_ns, dur_ns};
    }
    void clear_region() {
      busy_ns = 0;
      chunks = 0;
      hist.clear();
      num_events = 0;
    }
  };
  std::vector<WorkerSlot> slots;  // size threads_

  // Cumulative profile (main-thread only: fold/snapshot/reset).
  std::vector<WorkerProfile> totals;  // size threads_
  profiler::LatencyHistogram chunk_hist;
  std::int64_t prof_regions = 0;
  double wall_sum_ns = 0.0, busy_sum_ns = 0.0;
  double eff_sum = 0.0, eff_min = 0.0, imb_max = 0.0;

  void reset_profile() {
    for (WorkerProfile& t : totals) t = WorkerProfile{};
    for (WorkerSlot& s : slots) s.clear_region();
    chunk_hist.clear();
    prof_regions = 0;
    wall_sum_ns = busy_sum_ns = eff_sum = 0.0;
    eff_min = imb_max = 0.0;
  }

  /// Fold the per-worker region slots (ascending worker order) into the
  /// cumulative profile and/or the trace buffer, then clear them.
  void fold_region(std::uint64_t wall_ns, int nworkers, bool profile, bool trace) {
    std::uint64_t total_busy = 0, max_busy = 0;
    for (int w = 0; w < nworkers; ++w) {
      WorkerSlot& slot = slots[static_cast<std::size_t>(w)];
      total_busy += slot.busy_ns;
      if (slot.busy_ns > max_busy) max_busy = slot.busy_ns;
      if (profile) {
        WorkerProfile& t = totals[static_cast<std::size_t>(w)];
        t.busy_ns += slot.busy_ns;
        t.wait_ns += wall_ns > slot.busy_ns ? wall_ns - slot.busy_ns : 0;
        t.chunks += slot.chunks;
        chunk_hist.merge(slot.hist);
      }
      if (trace)
        for (int i = 0; i < slot.num_events; ++i)
          telemetry::emit_span("pool/chunk", slot.events[i].start_ns,
                               slot.events[i].dur_ns, w);
      slot.clear_region();
    }
    if (!profile || wall_ns == 0) return;
    ++prof_regions;
    wall_sum_ns += static_cast<double>(wall_ns);
    busy_sum_ns += static_cast<double>(total_busy);
    const double eff = static_cast<double>(total_busy) /
                       (static_cast<double>(nworkers) * static_cast<double>(wall_ns));
    eff_sum += eff;
    if (prof_regions == 1 || eff < eff_min) eff_min = eff;
    const double mean_busy = static_cast<double>(total_busy) / nworkers;
    const double imb = mean_busy > 0.0 ? static_cast<double>(max_busy) / mean_busy : 1.0;
    if (imb > imb_max) imb_max = imb;
  }
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) {
  // Conservative default: single-threaded until the CLI / a test opts in.
  threads_ = 1;
  impl_->slots.resize(1);
  impl_->totals.resize(1);
}

ThreadPool::~ThreadPool() {
  stop_workers();
  delete impl_;
}

void ThreadPool::resize(int threads) {
  RP_ASSERT(!t_in_region, "ThreadPool::resize from inside a parallel region");
  if (threads < 1) threads = 1;
  if (threads == threads_) return;
  stop_workers();
  threads_ = threads;
  // Worker-count-dependent slots are rebuilt, so the cumulative profile
  // restarts from zero (a flow run resets it anyway via reset_pool_profile).
  impl_->slots.assign(static_cast<std::size_t>(threads), Impl::WorkerSlot{});
  impl_->totals.assign(static_cast<std::size_t>(threads), WorkerProfile{});
  start_workers(threads - 1);
}

void ThreadPool::start_workers(int n) {
  impl_->shutdown = false;
  for (int i = 0; i < n; ++i)
    impl_->workers.emplace_back([this, i] { worker_loop(i + 1); });
}

void ThreadPool::stop_workers() {
  {
    std::unique_lock<std::mutex> lk(impl_->m);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  impl_->workers.clear();
  impl_->shutdown = false;
}

void ThreadPool::worker_loop(int worker_id) {
  Impl& s = *impl_;
  std::uint64_t seen_seq = 0;
  for (;;) {
    const ChunkPlan* plan = nullptr;
    const std::function<void(int, int)>* fn = nullptr;
    bool instrument = false;
    bool trace = false;
    {
      std::unique_lock<std::mutex> lk(s.m);
      s.cv_work.wait(lk, [&] { return s.shutdown || (s.job_active && s.job_seq != seen_seq); });
      if (s.shutdown) return;
      seen_seq = s.job_seq;
      plan = s.plan;
      fn = s.fn;
      instrument = s.job_instrument;
      trace = s.job_trace;
      ++s.workers_in_job;
    }
    Impl::WorkerSlot& slot = s.slots[static_cast<std::size_t>(worker_id)];
    t_in_region = true;
    busy_workers_.fetch_add(1, std::memory_order_relaxed);
    int done = 0;
    for (;;) {
      const int c = s.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= plan->count) break;
      if (instrument) {
        const std::uint64_t t0 = profiler::now_ns();
        (*fn)(c, worker_id);
        slot.time_chunk(t0, profiler::now_ns() - t0, trace);
      } else {
        (*fn)(c, worker_id);
      }
      ++done;
    }
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
    t_in_region = false;
    {
      std::unique_lock<std::mutex> lk(s.m);
      s.chunks_done += done;
      --s.workers_in_job;
      if (s.chunks_done == plan->count && s.workers_in_job == 0) s.cv_done.notify_all();
    }
  }
}

void ThreadPool::run(const ChunkPlan& plan, const std::function<void(int, int)>& fn) {
  if (plan.count <= 0) return;
  regions_.fetch_add(1, std::memory_order_relaxed);
  chunks_.fetch_add(plan.count, std::memory_order_relaxed);
  // Inline paths: single chunk, single-threaded pool, or nested region.
  // Ascending chunk order keeps results identical to the pooled path.
  if (plan.count == 1 || threads_ == 1 || t_in_region) {
    const bool was_in_region = t_in_region;  // nested: stay flagged on exit
    // Nested regions are already inside a timed chunk — instrumenting them
    // would double-count busy time, so only top-level regions are profiled.
    const bool profile = !was_in_region && g_pool_profiling;
    t_in_region = true;
    // Nested regions are already counted by their enclosing top-level region.
    if (!was_in_region) busy_workers_.fetch_add(1, std::memory_order_relaxed);
    if (profile) {
      std::unique_lock<std::mutex> submit_lk(impl_->submit_m);
      Impl::WorkerSlot& slot = impl_->slots[0];
      const std::uint64_t r0 = profiler::now_ns();
      for (int c = 0; c < plan.count; ++c) {
        const std::uint64_t t0 = profiler::now_ns();
        fn(c, 0);
        slot.time_chunk(t0, profiler::now_ns() - t0, /*keep_event=*/false);
      }
      const std::uint64_t wall = profiler::now_ns() - r0;
      t_in_region = was_in_region;
      impl_->fold_region(wall, /*nworkers=*/1, /*profile=*/true, /*trace=*/false);
    } else {
      for (int c = 0; c < plan.count; ++c) fn(c, 0);
      t_in_region = was_in_region;
    }
    if (!was_in_region) busy_workers_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  Impl& s = *impl_;
  // One job at a time: a second submitter blocks here until the first job
  // fully completes (including its profile fold).
  std::unique_lock<std::mutex> submit_lk(s.submit_m);
  const bool trace = telemetry::trace_enabled();
  const bool instrument = g_pool_profiling || trace;
  const std::uint64_t r0 = instrument ? profiler::now_ns() : 0;
  {
    std::unique_lock<std::mutex> lk(s.m);
    s.plan = &plan;
    s.fn = &fn;
    s.next_chunk.store(0, std::memory_order_relaxed);
    s.chunks_done = 0;
    s.job_active = true;
    s.job_instrument = instrument;
    s.job_trace = trace;
    ++s.job_seq;
  }
  s.cv_work.notify_all();
  // The caller is worker 0.
  Impl::WorkerSlot& slot = s.slots[0];
  t_in_region = true;
  busy_workers_.fetch_add(1, std::memory_order_relaxed);
  int done = 0;
  for (;;) {
    const int c = s.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= plan.count) break;
    if (instrument) {
      const std::uint64_t t0 = profiler::now_ns();
      fn(c, 0);
      slot.time_chunk(t0, profiler::now_ns() - t0, trace);
    } else {
      fn(c, 0);
    }
    ++done;
  }
  busy_workers_.fetch_sub(1, std::memory_order_relaxed);
  t_in_region = false;
  {
    std::unique_lock<std::mutex> lk(s.m);
    s.chunks_done += done;
    s.cv_done.wait(lk, [&] { return s.chunks_done == plan.count && s.workers_in_job == 0; });
    s.job_active = false;
  }
  if (instrument)
    s.fold_region(profiler::now_ns() - r0, threads_, g_pool_profiling, trace);
}

PoolProfile pool_profile() {
  ThreadPool& pool = ThreadPool::instance();
  const ThreadPool::Impl& s = *pool.impl_;
  PoolProfile p;
  p.threads = pool.threads();
  p.regions = s.prof_regions;
  p.wall_ns = s.wall_sum_ns;
  p.busy_ns = s.busy_sum_ns;
  p.efficiency_mean = s.prof_regions > 0 ? s.eff_sum / static_cast<double>(s.prof_regions) : 0.0;
  p.efficiency_min = s.eff_min;
  p.imbalance_max = s.imb_max;
  p.workers = s.totals;
  p.chunk_hist = s.chunk_hist;
  return p;
}

void reset_pool_profile() {
  RP_ASSERT(!t_in_region, "reset_pool_profile from inside a parallel region");
  ThreadPool::instance().impl_->reset_profile();
}

}  // namespace rp::parallel
