#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/assert.hpp"

namespace rp::parallel {

ChunkPlan plan_chunks(std::size_t n, std::size_t grain, int max_chunks) {
  ChunkPlan p;
  p.n = n;
  if (n == 0) {
    p.count = 0;
    return p;
  }
  if (grain == 0) grain = 1;
  const std::size_t want = (n + grain - 1) / grain;
  const auto cap = static_cast<std::size_t>(max_chunks < 1 ? 1 : max_chunks);
  p.count = static_cast<int>(want < cap ? want : cap);
  return p;
}

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RP_THREADS"); env != nullptr && env[0] != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return hardware_threads();
}

void set_num_threads(int n) { ThreadPool::instance().resize(n < 1 ? 1 : n); }

int num_threads() { return ThreadPool::instance().threads(); }

// ----------------------------------------------------------------- pool

namespace {
/// True while the current thread executes inside a parallel region; nested
/// regions degrade to inline ascending-order execution (same result).
thread_local bool t_in_region = false;
}  // namespace

struct ThreadPool::Impl {
  std::mutex m;
  std::condition_variable cv_work;   // workers wait for a job / shutdown
  std::condition_variable cv_done;   // caller waits for job completion
  std::vector<std::thread> workers;  // threads_ - 1 of them
  bool shutdown = false;

  // Current job (valid while job_active). The caller's run() does not return
  // until chunks_done == plan->count AND workers_in_job == 0, so plan/fn and
  // next_chunk stay valid for every worker that entered the job.
  bool job_active = false;
  std::uint64_t job_seq = 0;
  const ChunkPlan* plan = nullptr;
  const std::function<void(int, int)>* fn = nullptr;
  std::atomic<int> next_chunk{0};
  int chunks_done = 0;
  int workers_in_job = 0;
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) {
  // Conservative default: single-threaded until the CLI / a test opts in.
  threads_ = 1;
}

ThreadPool::~ThreadPool() {
  stop_workers();
  delete impl_;
}

void ThreadPool::resize(int threads) {
  RP_ASSERT(!t_in_region, "ThreadPool::resize from inside a parallel region");
  if (threads < 1) threads = 1;
  if (threads == threads_) return;
  stop_workers();
  threads_ = threads;
  start_workers(threads - 1);
}

void ThreadPool::start_workers(int n) {
  impl_->shutdown = false;
  for (int i = 0; i < n; ++i)
    impl_->workers.emplace_back([this, i] { worker_loop(i + 1); });
}

void ThreadPool::stop_workers() {
  {
    std::unique_lock<std::mutex> lk(impl_->m);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  impl_->workers.clear();
  impl_->shutdown = false;
}

void ThreadPool::worker_loop(int worker_id) {
  Impl& s = *impl_;
  std::uint64_t seen_seq = 0;
  for (;;) {
    const ChunkPlan* plan = nullptr;
    const std::function<void(int, int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lk(s.m);
      s.cv_work.wait(lk, [&] { return s.shutdown || (s.job_active && s.job_seq != seen_seq); });
      if (s.shutdown) return;
      seen_seq = s.job_seq;
      plan = s.plan;
      fn = s.fn;
      ++s.workers_in_job;
    }
    t_in_region = true;
    int done = 0;
    for (;;) {
      const int c = s.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= plan->count) break;
      (*fn)(c, worker_id);
      ++done;
    }
    t_in_region = false;
    {
      std::unique_lock<std::mutex> lk(s.m);
      s.chunks_done += done;
      --s.workers_in_job;
      if (s.chunks_done == plan->count && s.workers_in_job == 0) s.cv_done.notify_all();
    }
  }
}

void ThreadPool::run(const ChunkPlan& plan, const std::function<void(int, int)>& fn) {
  if (plan.count <= 0) return;
  ++regions_;
  chunks_ += plan.count;
  // Inline paths: single chunk, single-threaded pool, or nested region.
  // Ascending chunk order keeps results identical to the pooled path.
  if (plan.count == 1 || threads_ == 1 || t_in_region) {
    const bool was_in_region = t_in_region;  // nested: stay flagged on exit
    t_in_region = true;
    for (int c = 0; c < plan.count; ++c) fn(c, 0);
    t_in_region = was_in_region;
    return;
  }
  Impl& s = *impl_;
  {
    std::unique_lock<std::mutex> lk(s.m);
    s.plan = &plan;
    s.fn = &fn;
    s.next_chunk.store(0, std::memory_order_relaxed);
    s.chunks_done = 0;
    s.job_active = true;
    ++s.job_seq;
  }
  s.cv_work.notify_all();
  // The caller is worker 0.
  t_in_region = true;
  int done = 0;
  for (;;) {
    const int c = s.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= plan.count) break;
    fn(c, 0);
    ++done;
  }
  t_in_region = false;
  {
    std::unique_lock<std::mutex> lk(s.m);
    s.chunks_done += done;
    s.cv_done.wait(lk, [&] { return s.chunks_done == plan.count && s.workers_in_job == 0; });
    s.job_active = false;
  }
}

}  // namespace rp::parallel
