#include "util/timer.hpp"

#include <sstream>

namespace rp {

void StageTimes::add(const std::string& stage, double sec) {
  for (auto& [name, t] : stages_) {
    if (name == stage) {
      t += sec;
      return;
    }
  }
  stages_.emplace_back(stage, sec);
}

double StageTimes::get(const std::string& stage) const {
  for (const auto& [name, t] : stages_) {
    if (name == stage) return t;
  }
  return 0.0;
}

double StageTimes::total() const {
  double sum = 0.0;
  for (const auto& [name, t] : stages_) sum += t;
  return sum;
}

std::string StageTimes::report() const {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed;
  for (const auto& [name, t] : stages_) os << name << "=" << t << "s ";
  os << "total=" << total() << "s";
  return os.str();
}

}  // namespace rp
