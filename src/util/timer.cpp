#include "util/timer.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rp {

void StageTimes::add(const std::string& stage, double sec) {
  for (auto& [name, t] : stages_) {
    if (name == stage) {
      t += sec;
      return;
    }
  }
  stages_.emplace_back(stage, sec);
}

double StageTimes::get(const std::string& stage) const {
  for (const auto& [name, t] : stages_) {
    if (name == stage) return t;
  }
  return 0.0;
}

double StageTimes::total() const {
  double sum = 0.0;
  for (const auto& [name, t] : stages_) {
    if (name.find('/') == std::string::npos) sum += t;
  }
  return sum;
}

std::string StageTimes::compose(const std::string& stage) const {
  if (open_.empty()) return stage;
  std::string path;
  for (const std::string& s : open_) {
    path += s;
    path += '/';
  }
  return path + stage;
}

void StageTimes::merge(const std::string& prefix, const StageTimes& other) {
  for (const auto& [name, t] : other.stages_) add(prefix + "/" + name, t);
}

namespace {

struct StageNode {
  std::string name;  ///< Leaf component of the path.
  double sec = 0.0;
  bool explicit_entry = false;  ///< false: synthesized parent (sec = Σ children).
  std::vector<int> children;
};

/// Find-or-create the tree node for `path` (building implicit ancestors).
/// `cur` < 0 means the sibling list is `roots`; indices stay valid across
/// nodes.push_back (no pointers into the vector are held).
int node_for(std::vector<StageNode>& nodes, std::vector<int>& roots,
             const std::string& path) {
  int cur = -1;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::string comp =
        path.substr(start, slash == std::string::npos ? std::string::npos : slash - start);
    const std::vector<int>& siblings =
        cur < 0 ? roots : nodes[static_cast<std::size_t>(cur)].children;
    int found = -1;
    for (const int c : siblings) {
      if (nodes[static_cast<std::size_t>(c)].name == comp) {
        found = c;
        break;
      }
    }
    if (found < 0) {
      found = static_cast<int>(nodes.size());
      nodes.push_back(StageNode{comp, 0.0, false, {}});
      if (cur < 0) roots.push_back(found);
      else nodes[static_cast<std::size_t>(cur)].children.push_back(found);
    }
    cur = found;
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return cur;
}

void render(const std::vector<StageNode>& nodes, const std::vector<int>& ids, int depth,
            std::ostringstream& os) {
  for (const int id : ids) {
    const StageNode& n = nodes[static_cast<std::size_t>(id)];
    const int pad = std::max(1, 22 - 2 * depth - static_cast<int>(n.name.size()));
    os << std::string(static_cast<std::size_t>(2 * depth), ' ') << n.name
       << std::string(static_cast<std::size_t>(pad), ' ');
    char buf[32];
    std::snprintf(buf, sizeof buf, "%8.2fs", n.sec);
    os << buf << "\n";
    render(nodes, n.children, depth + 1, os);
  }
}

/// Fill in synthesized parents bottom-up with the sum of their children.
double fill_implicit(std::vector<StageNode>& nodes, int id) {
  StageNode& n = nodes[static_cast<std::size_t>(id)];
  double child_sum = 0.0;
  for (const int c : n.children) child_sum += fill_implicit(nodes, c);
  if (!n.explicit_entry) n.sec = child_sum;
  return n.sec;
}

}  // namespace

std::string StageTimes::report() const {
  std::vector<StageNode> nodes;
  std::vector<int> roots;
  for (const auto& [path, t] : stages_) {
    const int id = node_for(nodes, roots, path);
    nodes[static_cast<std::size_t>(id)].sec += t;
    nodes[static_cast<std::size_t>(id)].explicit_entry = true;
  }
  for (const int r : roots) fill_implicit(nodes, r);
  std::ostringstream os;
  render(nodes, roots, 0, os);
  char buf[48];
  std::snprintf(buf, sizeof buf, "total                 %8.2fs", total());
  os << buf;
  return os.str();
}

std::string StageTimes::report_flat() const {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed;
  for (const auto& [name, t] : stages_) {
    if (name.find('/') == std::string::npos) os << name << "=" << t << "s ";
  }
  os << "total=" << total() << "s";
  return os.str();
}

}  // namespace rp
