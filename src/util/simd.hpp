#pragma once
// Runtime-dispatched SIMD kernels for the hot numeric inner loops.
//
// The placer's determinism contract (util/parallel.hpp) demands bitwise
// identical results for any thread count. This layer extends that contract
// to the instruction set: the SCALAR AND VECTOR IMPLEMENTATIONS OF EVERY
// KERNEL USE THE SAME SUMMATION TREE, so switching RP_SIMD=off|avx2|neon
// (or running on a host without AVX2) cannot change a single bit of any
// result. Concretely:
//
//  * Reductions (sum/dot/abs_max/pr_num/minmax) accumulate into 4 virtual
//    lanes over blocks of 4 elements, combine the lanes as
//    (l0+l1) + (l2+l3), and fold a sequential scalar tail in last — the
//    scalar path executes this shape literally, AVX2 maps the lanes onto
//    one 4×f64 register, NEON onto two 2×f64 registers.
//  * Element-wise kernels (affine/exp/gradients/bell rows) pin the
//    association order of every expression; no implementation may use FMA
//    (the build compiles with -ffp-contract=off so the compiler cannot
//    introduce contractions behind the scalar path's back).
//  * exp_nonpos() is a shared custom exp (range reduction with
//    k = floor(x·log2e + 0.5), split-ln2 remainder, degree-13 Horner
//    polynomial, exponent-bit 2^k scaling) implemented operation-for-
//    operation identically in every path — libm's exp is NOT used in any
//    dispatched kernel because its vector variants differ per libc.
//
// Dispatch: a single function-pointer table (Ops) selected once per
// process from RP_SIMD (auto|off|avx2|neon) or simd::set_level(). "auto"
// picks the best level the host supports; requesting an unsupported level
// falls back to scalar with a warning. The active table is stored in a
// relaxed atomic so tests may flip levels between evaluations.

#include <cstddef>
#include <string>

namespace rp::simd {

/// Dispatch level. Scalar is always available; Avx2/Neon require both
/// compile-time support (per-file -mavx2 / aarch64) and a host CPU flag.
enum class Level { Scalar, Avx2, Neon };

const char* level_name(Level l);

/// What the host CPU supports (queried once, cached).
struct HostFeatures {
  bool avx2 = false;
  bool neon = false;
};
const HostFeatures& host_features();

/// The kernel table. All pointers are always valid; Scalar fills every
/// slot, vector levels override the whole table (never a mix).
struct Ops {
  Level level;

  // ---- element-wise (no reduction; association order pinned) ----
  /// out[i] = (x[i] + bias) * scale
  void (*affine)(const double* x, std::size_t n, double bias, double scale,
                 double* out);
  /// out[i] = exp(x[i]) for finite x[i] <= 0 (flushes to 0 below -708).
  void (*exp_nonpos)(const double* x, std::size_t n, double* out);
  /// out[i] = -x[i]
  void (*neg)(const double* x, std::size_t n, double* out);
  /// y[i] = y[i] + a * x[i]
  void (*axpy)(double a, const double* x, std::size_t n, double* y);
  /// out[i] = z[i] + a * d[i]
  void (*axpy_out)(const double* z, double a, const double* d, std::size_t n,
                   double* out);
  /// d[i] = -g[i] + beta * d[i]   (CG direction update)
  void (*cg_dir)(const double* g, double beta, double* d, std::size_t n);
  /// dc[i] = ep[i]*rsp - em[i]*rsm   (LSE gradient)
  void (*lse_grad)(const double* ep, const double* em, std::size_t n,
                   double rsp, double rsm, double* dc);
  /// dc[i] = (ep[i]*(1+(c[i]-xmax)*ig))*rsp - (em[i]*(1-(c[i]-xmin)*ig))*rsm
  void (*wa_grad)(const double* c, const double* ep, const double* em,
                  std::size_t n, double xmax, double xmin, double ig,
                  double rsp, double rsm, double* dc);
  /// Bell potential sampled along one grid row: d = d0 + i*step,
  /// out[i] = 1-(a*|d|)*|d| for |d|<=d1, (b*(|d|-d2))*(|d|-d2) for <=d2, 0.
  void (*bell_row)(double d0, double step, std::size_t n, double d1,
                   double d2, double a, double b, double* out);
  /// Signed derivative of bell_row at the same sample points.
  void (*bell_deriv_row)(double d0, double step, std::size_t n, double d1,
                         double d2, double a, double b, double* out);

  // ---- reductions (fixed 4-lane tree; see header comment) ----
  /// mn/mx over x[0..n), n >= 1.
  void (*minmax)(const double* x, std::size_t n, double* mn, double* mx);
  double (*sum)(const double* x, std::size_t n);
  double (*dot)(const double* a, const double* b, std::size_t n);
  double (*abs_max)(const double* x, std::size_t n);
  /// Polak-Ribiere numerator: sum g[i]*(g[i]-gp[i]).
  double (*pr_num)(const double* g, const double* gp, std::size_t n);
};

/// Active kernel table (initialized lazily from RP_SIMD on first use).
const Ops& ops();

/// Currently active level.
Level active_level();
/// What was requested ("auto", "off", ... — env/CLI provenance for reports).
const std::string& requested();

/// Parse + apply an explicit request ("auto"|"off"|"avx2"|"neon").
/// Returns false (and leaves the level unchanged) on an unknown token.
bool set_from_string(const std::string& req);

/// Resolve a request to the level that would actually run on this host.
Level resolve(const std::string& req, bool* recognized = nullptr);

// Implementation tables (internal; exposed for the equivalence tests).
const Ops& scalar_ops();
const Ops* avx2_ops();  ///< nullptr when not compiled in / unsupported ISA.
const Ops* neon_ops();  ///< nullptr when not compiled in.

}  // namespace rp::simd
