#pragma once
// Low-overhead in-process resource timeline sampler.
//
// A single background thread wakes on a fixed tick (default 25 ms) and
// records one ResourceSample — current RSS, cumulative process CPU
// (utime/stime), and the thread pool's instantaneous busy fraction — into a
// PRE-ALLOCATED ring owned by the sampler. The sampled timeline feeds two
// sinks:
//
//  * the run report's schema-v5 "resources" block (peaks + kept time
//    series), so campaign dashboards can plot memory/CPU envelopes per
//    configuration instead of the single peak-RSS scalar we had before;
//  * optionally, live "rp_resource" NDJSON lines interleaved into the
//    --progress-ndjson stream via EventBus::write_raw_line().
//
// Determinism: samples are WALL-CLOCK observations of the process, not
// functions of the placement computation, so they are nondeterministic by
// nature. They therefore never touch the EventBus ring/seq machinery (whose
// payloads are contractually deterministic); the "resources" report block is
// on the report-diff default ignore list, and the determinism gate drops
// "rp_resource" stream lines before comparing. Crucially the sampler only
// OBSERVES — it reads /proc and relaxed atomics — so running it cannot
// perturb placement results; a dedicated test asserts byte-identical
// placements with the sampler on vs. off.
//
// Overflow policy: the ring holds `capacity` kept samples. When it fills,
// it is compacted in place keeping every 2nd sample and the keep-stride
// doubles — the timeline coarsens (25 ms -> 50 ms -> ...) instead of
// truncating, so an arbitrarily long run always yields a bounded,
// full-length series. Peaks are tracked over EVERY sample taken, including
// ones the stride drops, so "peak >= every kept sample" always holds.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace rp::obs {

class EventBus;

/// One observation. t_ms is milliseconds since start() (monotone clock).
struct ResourceSample {
  std::uint64_t t_ms = 0;
  std::int64_t rss_kb = 0;        ///< Current resident set, KiB.
  std::uint64_t utime_ms = 0;     ///< Cumulative process user CPU, ms.
  std::uint64_t stime_ms = 0;     ///< Cumulative process system CPU, ms.
  double pool_busy = 0.0;         ///< busy_workers / threads, in [0,1].
};

class ResourceSampler {
 public:
  static constexpr int kDefaultTickMs = 25;
  static constexpr int kDefaultCapacity = 512;

  struct Options {
    int tick_ms = kDefaultTickMs;
    int capacity = kDefaultCapacity;  ///< Kept samples; >= 4.
    EventBus* stream = nullptr;       ///< Live NDJSON sink (may be null).
  };

  ResourceSampler() = default;
  ~ResourceSampler();
  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Configure and take the first sample, WITHOUT spawning the thread.
  /// start() calls this; tests call it directly and drive ingest_for_test().
  /// Re-initializing discards any previous timeline.
  void init(const Options& opt);

  /// init() + spawn the background thread. No-op if already running.
  void start(const Options& opt);

  /// Stop the thread (if running) and append one final sample taken on the
  /// calling thread, so even a sub-tick run yields a >= 2 point series.
  /// Idempotent; safe to call without start().
  void stop();

  bool running() const;

  struct Summary {
    bool enabled = false;           ///< init()/start() was called.
    int tick_ms = 0;                ///< Requested tick.
    int effective_tick_ms = 0;      ///< tick_ms * 2^downsample_rounds.
    int downsample_rounds = 0;
    std::int64_t samples_taken = 0; ///< Including stride-dropped ones.
    std::int64_t peak_rss_kb = 0;   ///< Over ALL samples taken.
    double peak_pool_busy = 0.0;    ///< Over ALL samples taken.
    std::uint64_t cpu_utime_ms = 0; ///< Last observed cumulative user CPU.
    std::uint64_t cpu_stime_ms = 0;
    std::vector<ResourceSample> samples;  ///< Kept timeline, oldest first.
  };
  /// Snapshot the timeline. Callable while running (locks the ring).
  Summary summary() const;

  /// Feed one synthetic sample through the real keep/downsample path
  /// (tests). Requires init(); must not race a running sampler thread.
  void ingest_for_test(const ResourceSample& s);

  // -------------------------------------------------- platform measurement
  /// Current resident set in KiB (/proc/self/statm on Linux; falls back to
  /// the getrusage peak elsewhere). Never negative.
  static std::int64_t current_rss_kb();
  /// Cumulative process CPU in milliseconds (getrusage).
  static void cpu_times_ms(std::uint64_t* utime_ms, std::uint64_t* stime_ms);

 private:
  void ingest(const ResourceSample& s, bool force_keep);  // m_ held
  ResourceSample take_sample() const;
  void sampler_loop();

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::thread thread_;
  bool thread_running_ = false;
  bool stop_requested_ = false;

  // All below guarded by m_ once the thread runs.
  Options opt_;
  bool enabled_ = false;
  std::uint64_t epoch_ns_ = 0;
  std::uint64_t stride_ = 1;       ///< Keep every stride-th sample.
  std::int64_t taken_ = 0;
  int downsample_rounds_ = 0;
  std::int64_t peak_rss_kb_ = 0;
  double peak_pool_busy_ = 0.0;
  std::uint64_t last_utime_ms_ = 0;
  std::uint64_t last_stime_ms_ = 0;
  std::vector<ResourceSample> ring_;  ///< Kept samples, oldest first.
};

/// Serialize one sample as an "rp_resource" NDJSON line (no newline).
/// Distinct schema from "rp_progress" so stream consumers can filter.
std::string resource_ndjson(const ResourceSample& s);

}  // namespace rp::obs
