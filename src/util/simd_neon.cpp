// NEON (aarch64) kernel table. The 4-virtual-lane reduction tree maps onto
// two 2xf64 registers: lanes 0/1 live in the low accumulator, lanes 2/3 in
// the high one, four elements consumed per iteration, lane combine
// (l0+l1)+(l2+l3) with the sequential tail folded last — bit-for-bit the
// scalar level's tree. The transcendental and piecewise kernels
// (exp_nonpos, wa_grad, bell rows) run the shared scalar bodies from
// simd_detail.hpp: they are element-wise, so scalar execution is already
// bitwise identical, and a native port can land later without touching the
// dispatch contract.

#include "util/simd.hpp"
#include "util/simd_detail.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace rp::simd {

namespace {

using namespace detail;

void n_affine(const double* x, std::size_t n, double bias, double scale,
              double* out) {
  const float64x2_t vb = vdupq_n_f64(bias), vs = vdupq_n_f64(scale);
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(out + i, vmulq_f64(vaddq_f64(vld1q_f64(x + i), vb), vs));
  affine_range(x, i, n, bias, scale, out);
}

void n_exp_nonpos(const double* x, std::size_t n, double* out) {
  exp_range(x, 0, n, out);
}

void n_neg(const double* x, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 1 < n; i += 2) vst1q_f64(out + i, vnegq_f64(vld1q_f64(x + i)));
  neg_range(x, i, n, out);
}

void n_axpy(double a, const double* x, std::size_t n, double* y) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i),
                               vmulq_f64(va, vld1q_f64(x + i))));
  axpy_range(a, x, i, n, y);
}

void n_axpy_out(const double* z, double a, const double* d, std::size_t n,
                double* out) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(z + i),
                                 vmulq_f64(va, vld1q_f64(d + i))));
  axpy_out_range(z, a, d, i, n, out);
}

void n_cg_dir(const double* g, double beta, double* d, std::size_t n) {
  const float64x2_t vb = vdupq_n_f64(beta);
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(d + i, vaddq_f64(vnegq_f64(vld1q_f64(g + i)),
                               vmulq_f64(vb, vld1q_f64(d + i))));
  cg_dir_range(g, beta, d, i, n);
}

void n_lse_grad(const double* ep, const double* em, std::size_t n, double rsp,
                double rsm, double* dc) {
  const float64x2_t vp = vdupq_n_f64(rsp), vm = vdupq_n_f64(rsm);
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    vst1q_f64(dc + i, vsubq_f64(vmulq_f64(vld1q_f64(ep + i), vp),
                                vmulq_f64(vld1q_f64(em + i), vm)));
  lse_grad_range(ep, em, i, n, rsp, rsm, dc);
}

void n_wa_grad(const double* c, const double* ep, const double* em,
               std::size_t n, double xmax, double xmin, double ig, double rsp,
               double rsm, double* dc) {
  wa_grad_range(c, ep, em, 0, n, xmax, xmin, ig, rsp, rsm, dc);
}

void n_bell_row(double d0, double step, std::size_t n, double d1, double d2,
                double a, double b, double* out) {
  bell_row_range(d0, step, 0, n, d1, d2, a, b, out);
}

void n_bell_deriv_row(double d0, double step, std::size_t n, double d1,
                      double d2, double a, double b, double* out) {
  bell_deriv_row_range(d0, step, 0, n, d1, d2, a, b, out);
}

void n_minmax(const double* x, std::size_t n, double* mn_out, double* mx_out) {
  double mn, mx;
  std::size_t i;
  if (n >= 4) {
    float64x2_t mn_lo = vld1q_f64(x), mn_hi = vld1q_f64(x + 2);
    float64x2_t mx_lo = mn_lo, mx_hi = mn_hi;
    for (i = 4; i + 3 < n; i += 4) {
      const float64x2_t vlo = vld1q_f64(x + i), vhi = vld1q_f64(x + i + 2);
      mn_lo = vminq_f64(mn_lo, vlo);
      mn_hi = vminq_f64(mn_hi, vhi);
      mx_lo = vmaxq_f64(mx_lo, vlo);
      mx_hi = vmaxq_f64(mx_hi, vhi);
    }
    mn = min2(min2(vgetq_lane_f64(mn_lo, 0), vgetq_lane_f64(mn_lo, 1)),
              min2(vgetq_lane_f64(mn_hi, 0), vgetq_lane_f64(mn_hi, 1)));
    mx = max2(max2(vgetq_lane_f64(mx_lo, 0), vgetq_lane_f64(mx_lo, 1)),
              max2(vgetq_lane_f64(mx_hi, 0), vgetq_lane_f64(mx_hi, 1)));
  } else {
    mn = mx = x[0];
    i = 1;
  }
  for (; i < n; ++i) {
    mn = min2(mn, x[i]);
    mx = max2(mx, x[i]);
  }
  *mn_out = mn;
  *mx_out = mx;
}

double n_sum(const double* x, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    lo = vaddq_f64(lo, vld1q_f64(x + i));
    hi = vaddq_f64(hi, vld1q_f64(x + i + 2));
  }
  return combine_sum(vgetq_lane_f64(lo, 0), vgetq_lane_f64(lo, 1),
                     vgetq_lane_f64(hi, 0), vgetq_lane_f64(hi, 1),
                     sum_tail(x, i, n));
}

double n_dot(const double* a, const double* b, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    lo = vaddq_f64(lo, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    hi = vaddq_f64(hi, vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  return combine_sum(vgetq_lane_f64(lo, 0), vgetq_lane_f64(lo, 1),
                     vgetq_lane_f64(hi, 0), vgetq_lane_f64(hi, 1),
                     dot_tail(a, b, i, n));
}

double n_abs_max(const double* x, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    lo = vmaxq_f64(lo, vabsq_f64(vld1q_f64(x + i)));
    hi = vmaxq_f64(hi, vabsq_f64(vld1q_f64(x + i + 2)));
  }
  double m = max2(max2(vgetq_lane_f64(lo, 0), vgetq_lane_f64(lo, 1)),
                  max2(vgetq_lane_f64(hi, 0), vgetq_lane_f64(hi, 1)));
  for (; i < n; ++i) m = max2(m, abs_one(x[i]));
  return m;
}

double n_pr_num(const double* g, const double* gp, std::size_t n) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 3 < n; i += 4) {
    const float64x2_t g_lo = vld1q_f64(g + i), g_hi = vld1q_f64(g + i + 2);
    lo = vaddq_f64(lo, vmulq_f64(g_lo, vsubq_f64(g_lo, vld1q_f64(gp + i))));
    hi = vaddq_f64(hi,
                   vmulq_f64(g_hi, vsubq_f64(g_hi, vld1q_f64(gp + i + 2))));
  }
  return combine_sum(vgetq_lane_f64(lo, 0), vgetq_lane_f64(lo, 1),
                     vgetq_lane_f64(hi, 0), vgetq_lane_f64(hi, 1),
                     pr_num_tail(g, gp, i, n));
}

constexpr Ops kNeonOps = {
    Level::Neon,    n_affine,   n_exp_nonpos, n_neg,
    n_axpy,         n_axpy_out, n_cg_dir,     n_lse_grad,
    n_wa_grad,      n_bell_row, n_bell_deriv_row,
    n_minmax,       n_sum,      n_dot,        n_abs_max,
    n_pr_num,
};

}  // namespace

const Ops* neon_ops() { return &kNeonOps; }

}  // namespace rp::simd

#else  // non-aarch64 hosts have no NEON f64 table.

namespace rp::simd {
const Ops* neon_ops() { return nullptr; }
}  // namespace rp::simd

#endif
