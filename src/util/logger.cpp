#include "util/logger.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rp {

namespace {

LogLevel g_level = LogLevel::Info;
bool g_env_forced = false;

using Clock = std::chrono::steady_clock;

Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

const char* tag(LogLevel lv) {
  switch (lv) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}

bool parse_level(const char* s, LogLevel& out) {
  const auto is = [s](const char* w) { return std::strcmp(s, w) == 0; };
  if (is("debug") || is("DEBUG") || is("0")) out = LogLevel::Debug;
  else if (is("info") || is("INFO") || is("1")) out = LogLevel::Info;
  else if (is("warn") || is("WARN") || is("2")) out = LogLevel::Warn;
  else if (is("error") || is("ERROR") || is("3")) out = LogLevel::Error;
  else if (is("silent") || is("SILENT") || is("4")) out = LogLevel::Silent;
  else return false;
  return true;
}

void ensure_env_read() {
  static bool done = false;
  if (!done) {
    done = true;
    Logger::init_from_env();
  }
}

}  // namespace

void Logger::init_from_env() {
  const char* e = std::getenv("RP_LOG_LEVEL");
  if (e == nullptr || e[0] == '\0') {
    g_env_forced = false;
    return;
  }
  LogLevel lv;
  if (parse_level(e, lv)) {
    g_level = lv;
    g_env_forced = true;
  } else {
    g_env_forced = false;
    std::fprintf(stderr, "[%9.3fs] [WARN ] RP_LOG_LEVEL='%s' not recognized "
                 "(use debug|info|warn|error|silent)\n", elapsed_seconds(), e);
  }
}

double Logger::elapsed_seconds() {
  return std::chrono::duration<double>(Clock::now() - epoch()).count();
}

LogLevel Logger::level() {
  ensure_env_read();
  return g_level;
}

void Logger::set_level(LogLevel lv) {
  ensure_env_read();
  if (g_env_forced) return;  // the environment override wins
  g_level = lv;
}

void Logger::log(LogLevel lv, const char* fmt, ...) {
  ensure_env_read();
  if (static_cast<int>(lv) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%9.3fs] [%s] ", elapsed_seconds(), tag(lv));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace rp
