#include "util/logger.hpp"

#include <cstdio>

namespace rp {

namespace {
LogLevel g_level = LogLevel::Info;

const char* tag(LogLevel lv) {
  switch (lv) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

LogLevel Logger::level() { return g_level; }
void Logger::set_level(LogLevel lv) { g_level = lv; }

void Logger::log(LogLevel lv, const char* fmt, ...) {
  if (static_cast<int>(lv) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] ", tag(lv));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace rp
