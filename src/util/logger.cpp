#include "util/logger.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace rp {

namespace {

// The logger used to be main-thread-only by contract; rp_serve runs
// concurrent placement jobs that all log, so the level is atomic (relaxed —
// it is a filter, not a synchronization point) and each message is formatted
// into one buffer and written with a single locked fwrite so lines from
// different jobs never interleave mid-line.
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::atomic<bool> g_env_forced{false};
std::once_flag g_env_once;

using Clock = std::chrono::steady_clock;

Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

const char* tag(LogLevel lv) {
  switch (lv) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}

bool parse_level(const char* s, LogLevel& out) {
  const auto is = [s](const char* w) { return std::strcmp(s, w) == 0; };
  if (is("debug") || is("DEBUG") || is("0")) out = LogLevel::Debug;
  else if (is("info") || is("INFO") || is("1")) out = LogLevel::Info;
  else if (is("warn") || is("WARN") || is("2")) out = LogLevel::Warn;
  else if (is("error") || is("ERROR") || is("3")) out = LogLevel::Error;
  else if (is("silent") || is("SILENT") || is("4")) out = LogLevel::Silent;
  else return false;
  return true;
}

void ensure_env_read() {
  std::call_once(g_env_once, [] { Logger::init_from_env(); });
}

}  // namespace

void Logger::init_from_env() {
  const char* e = std::getenv("RP_LOG_LEVEL");
  if (e == nullptr || e[0] == '\0') {
    g_env_forced.store(false, std::memory_order_relaxed);
    return;
  }
  LogLevel lv;
  if (parse_level(e, lv)) {
    g_level.store(static_cast<int>(lv), std::memory_order_relaxed);
    g_env_forced.store(true, std::memory_order_relaxed);
  } else {
    g_env_forced.store(false, std::memory_order_relaxed);
    std::fprintf(stderr, "[%9.3fs] [WARN ] RP_LOG_LEVEL='%s' not recognized "
                 "(use debug|info|warn|error|silent)\n", elapsed_seconds(), e);
  }
}

double Logger::elapsed_seconds() {
  return std::chrono::duration<double>(Clock::now() - epoch()).count();
}

LogLevel Logger::level() {
  ensure_env_read();
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void Logger::set_level(LogLevel lv) {
  ensure_env_read();
  if (g_env_forced.load(std::memory_order_relaxed)) return;  // override wins
  g_level.store(static_cast<int>(lv), std::memory_order_relaxed);
}

void Logger::log(LogLevel lv, const char* fmt, ...) {
  ensure_env_read();
  if (static_cast<int>(lv) < g_level.load(std::memory_order_relaxed)) return;
  char buf[2048];
  int n = std::snprintf(buf, sizeof(buf), "[%9.3fs] [%s] ",
                        elapsed_seconds(), tag(lv));
  if (n < 0) return;
  va_list ap;
  va_start(ap, fmt);
  const int m = std::vsnprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n) - 1,
                               fmt, ap);
  va_end(ap);
  if (m > 0) n += m;
  if (n > static_cast<int>(sizeof(buf)) - 2) n = static_cast<int>(sizeof(buf)) - 2;
  buf[n++] = '\n';
  std::fwrite(buf, 1, static_cast<std::size_t>(n), stderr);
}

}  // namespace rp
