#pragma once
// Typed per-run event bus: the streaming half of the observability layer.
//
// Every meaningful flow transition — stage begin/end, a GP outer iteration's
// convergence point, a routability round's congestion summary, watchdog and
// numeric-guard firings, parse repairs, the terminal error — is emitted as a
// fixed-size POD Event. The bus does three things with each event:
//
//  1. stamps it (monotonic sequence number + steady-clock nanoseconds since
//     the bus was created) and stores it in a PRE-ALLOCATED ring buffer: the
//     FLIGHT RECORDER. The ring is single-producer (the run's main thread,
//     same contract as the telemetry registry) with a release-published head,
//     so an async signal handler interrupting an emit in progress still sees
//     a consistent prefix of completed events;
//  2. if a progress stream is open (`--progress-ndjson`), serializes it as
//     one schema-versioned NDJSON line and write()s it immediately — event-
//     granularity flushing with a fixed stack buffer, so a reader can tail a
//     live run without the bus ever allocating on the emit path;
//  3. keeps the running event count for the run report's "events" block.
//
// Determinism contract: every PAYLOAD field (kind, label, i0..i2, d0..d3) is
// a pure function of the placement computation and is therefore byte-
// identical across thread counts and re-runs; `seq` and `t_ns`/`t_ms` are
// volatile by construction and excluded from determinism comparisons (the
// threads-determinism gate strips exactly those two keys per NDJSON line).
//
// The flight recorder can be dumped as a `flight.json` document — last N
// events plus a counter/gauge snapshot — through two paths: dump_flight()
// for normal error exits, and dump_flight_fd(), which is async-signal-safe
// (write()-only, no allocation, integer-math number formatting) for fatal
// signal handlers (SIGSEGV/SIGABRT).

#include <atomic>
#include <cstdint>
#include <string>

namespace rp::telemetry {
class Registry;
}

namespace rp::obs {

enum class EventKind : std::uint8_t {
  RunBegin = 0,   ///< label=design; i0=cells, i1=nets, i2=macros.
  RunEnd,         ///< d0=hpwl, d1=scaled_hpwl, d2=overflow; i0=legal(0/1).
  StageBegin,     ///< label=stage ("global", "legal", ...).
  StageEnd,       ///< label=stage.
  GpIter,         ///< label=tag ("level0"/"reheat1"); i0=level, i1=outer,
                  ///< d0=hpwl, d1=overflow, d2=lambda, d3=inflation.
  RouteRound,     ///< i0=round, i1=cells_inflated; d0=overflow, d1=rc,
                  ///< d2=mean_inflation.
  Watchdog,       ///< label="gp_iters"|"seconds"; d0=limit.
  Guard,          ///< label=guard site ("cg_nonfinite", ...); i0=count.
  ParseRepair,    ///< label=parse mode; i0=total repairs.
  RunError,       ///< label=error code name; i0=exit code.
};
inline constexpr int kEventKinds = 10;

/// Stable wire name ("run_begin", "gp_iter", ...). Never null.
const char* event_kind_name(EventKind k);

/// Fixed-size POD event record: ring-buffer friendly and safe to read from a
/// signal handler. The label is a truncating copy (it tags, not describes).
struct Event {
  static constexpr int kLabelCap = 48;

  EventKind kind = EventKind::RunBegin;
  std::uint64_t seq = 0;   ///< Stamped by emit(); volatile for diffing.
  std::uint64_t t_ns = 0;  ///< Since bus creation; volatile for diffing.
  char label[kLabelCap] = {};
  std::int64_t i0 = 0, i1 = 0, i2 = 0;
  double d0 = 0.0, d1 = 0.0, d2 = 0.0, d3 = 0.0;

  void set_label(const char* s);
};

/// Serialize one event as an NDJSON line (no trailing newline): a flat
/// object with "schema"/"v"/"seq"/"t_ms"/"event" plus kind-specific named
/// payload fields (see EventKind). Payload formatting round-trips doubles.
std::string event_ndjson(const Event& e);

/// Write the WHOLE buffer to `fd`, retrying short writes and EINTR (both
/// are routine on pipe/socket sinks with slow readers and signal traffic —
/// see the NDJSON sink and the rp_serve forwarders). Returns false only on
/// a real error (EPIPE, EBADF, ...). Async-signal-safe on POSIX.
bool write_all_fd(int fd, const char* data, std::size_t n);

class EventBus {
 public:
  static constexpr int kFlightCapacity = 256;

  EventBus();
  ~EventBus();
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Payload-only constructor; emit() does the stamping.
  Event make(EventKind kind, const char* label = nullptr) const;

  /// Stamp (seq, t_ns) and deliver: ring buffer always, NDJSON stream when
  /// open. Single-producer: call from the run's main thread only.
  void emit(Event e);

  /// Events emitted so far (the next seq). Safe from any thread.
  std::uint64_t events_emitted() const { return seq_.load(std::memory_order_acquire); }

  // ------------------------------------------------------------- NDJSON sink
  /// Open the live progress stream. `target` is a path, "-" for stdout, or
  /// "fd:N" for an inherited descriptor. Returns false (stream stays closed)
  /// when the target cannot be opened.
  bool open_stream(const std::string& target);
  void close_stream();
  bool streaming() const { return stream_fd_ >= 0; }

  /// Write one pre-formatted NDJSON line to the progress stream, bypassing
  /// the ring/seq machinery. Used by the resource sampler's BACKGROUND
  /// thread for "rp_resource" lines: wall-clock observations, not
  /// deterministic flow events — they carry no bus sequence number and never
  /// enter the flight recorder (determinism tooling filters them by their
  /// distinct "schema"). One write() per line keeps lines intact when
  /// interleaved with emit(). Contract: stop any background writer BEFORE
  /// close_stream(). A trailing '\n' is appended. Returns false when no
  /// stream is open or the write failed (the stream is NOT closed — that is
  /// the owning thread's call).
  bool write_raw_line(const char* data, std::size_t len);

  // -------------------------------------------------------- flight recorder
  /// Copy the last (up to `max`) events, oldest first. Returns the count.
  int flight_events(Event* out, int max) const;

  /// Async-signal-safe dump of the flight document (header + last events +
  /// counter/gauge snapshot from `reg`, which may be null) to an open fd.
  /// Uses only write() and stack buffers. Returns false on a short write.
  bool dump_flight_fd(int fd, const char* reason,
                      const telemetry::Registry* reg) const;

  /// Convenience wrapper: open `path`, dump, close. NOT signal-safe (opens
  /// by std::string); use from normal error paths.
  bool dump_flight(const std::string& path, const char* reason,
                   const telemetry::Registry* reg) const;

 private:
  std::uint64_t epoch_ns_ = 0;          ///< Steady clock at construction.
  std::atomic<std::uint64_t> seq_{0};   ///< Published event count.
  Event ring_[kFlightCapacity];
  int stream_fd_ = -1;
  bool close_stream_fd_ = false;        ///< fd is ours (path), not inherited.
};

}  // namespace rp::obs
