#pragma once
// Congestion-driven cell inflation (routability lever #1).
//
// Given per-tile congestion (utilization of the worst adjacent routing
// edge), every movable standard cell in an over-utilized tile grows its
// density footprint:
//
//   inflate(v) ← min(max_inflate, inflate(v) · (1 + rate · (util − 1)))
//
// subject to a global budget: if the total added area would exceed
// max_total_inflation × movable area, all increments this round are scaled
// back proportionally. Inflation only affects the density model, never the
// wirelength, so congested regions thin out without distorting net lengths.

#include "model/problem.hpp"
#include "route/routegrid.hpp"

namespace rp {

struct InflationResult {
  int cells_inflated = 0;
  double mean_inflation = 1.0;   ///< Area-weighted mean factor after update.
  double budget_used = 0.0;      ///< Σ added area / movable area (cumulative).
};

InflationResult apply_congestion_inflation(PlaceProblem& prob, const RoutingGrid& grid,
                                           double rate, double max_inflate,
                                           double max_total_budget);

/// Area-weighted mean of current inflation factors (diagnostics).
double mean_inflation(const PlaceProblem& prob);

}  // namespace rp
