#include "core/report_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "util/heatmap.hpp"

namespace rp {

namespace {

std::string read_file(const std::string& path, bool& ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ok = false;
    return {};
  }
  std::string s;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) s.append(buf, n);
  std::fclose(f);
  ok = true;
  return s;
}

std::string render(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::Null: return "null";
    case JsonValue::Kind::Bool: return v.b ? "true" : "false";
    case JsonValue::Kind::String: return "\"" + v.str + "\"";
    case JsonValue::Kind::Number: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.10g", v.num);
      return buf;
    }
    case JsonValue::Kind::Array:
      return "<array[" + std::to_string(v.arr.size()) + "]>";
    case JsonValue::Kind::Object:
      return "<object{" + std::to_string(v.obj.size()) + "}>";
  }
  return "?";
}

struct DiffWalker {
  const ReportDiffOptions& opt;
  ReportDiffResult& res;

  bool ignored(const std::string& path) const {
    if (opt.default_ignores)
      for (const std::string& s : report_diff_default_ignores())
        if (path.find(s) != std::string::npos) return true;
    for (const std::string& s : opt.ignore)
      if (path.find(s) != std::string::npos) return true;
    return false;
  }

  void add(const std::string& path, const std::string& a, const std::string& b,
           double delta = 0.0) {
    res.diffs.push_back({path, a, b, delta});
  }

  void walk(const std::string& path, const JsonValue& a, const JsonValue& b) {
    if (ignored(path)) return;
    if (a.kind != b.kind) {
      add(path, render(a), render(b));
      return;
    }
    switch (a.kind) {
      case JsonValue::Kind::Object: {
        std::set<std::string> keys;
        for (const auto& [k, v] : a.obj) keys.insert(k);
        for (const auto& [k, v] : b.obj) keys.insert(k);
        for (const std::string& k : keys) {
          const std::string p = path.empty() ? k : path + "." + k;
          if (!a.has(k)) {
            if (!ignored(p)) add(p, "<missing>", render(b.at(k)));
          } else if (!b.has(k)) {
            if (!ignored(p)) add(p, render(a.at(k)), "<missing>");
          } else {
            walk(p, a.at(k), b.at(k));
          }
        }
        break;
      }
      case JsonValue::Kind::Array: {
        const std::size_t n = std::max(a.arr.size(), b.arr.size());
        if (a.arr.size() != b.arr.size())
          add(path, "<array[" + std::to_string(a.arr.size()) + "]>",
              "<array[" + std::to_string(b.arr.size()) + "]>");
        for (std::size_t i = 0; i < n; ++i) {
          const std::string p = path + "[" + std::to_string(i) + "]";
          if (i >= a.arr.size()) add(p, "<missing>", render(b.arr[i]));
          else if (i >= b.arr.size()) add(p, render(a.arr[i]), "<missing>");
          else walk(p, a.arr[i], b.arr[i]);
        }
        break;
      }
      case JsonValue::Kind::Number: {
        ++res.values_compared;
        const double d = std::fabs(a.num - b.num);
        const bool both_finite = std::isfinite(a.num) && std::isfinite(b.num);
        const double tol =
            opt.abs_tol + opt.rel_tol * std::max(std::fabs(a.num), std::fabs(b.num));
        if (!both_finite ? a.num != b.num : d > tol)
          add(path, render(a), render(b), d);
        break;
      }
      default:
        ++res.values_compared;
        if (render(a) != render(b)) add(path, render(a), render(b));
        break;
    }
  }
};

ReportDiffResult fail(const std::string& msg) {
  ReportDiffResult r;
  r.error = true;
  r.error_msg = msg;
  return r;
}

}  // namespace

const std::vector<std::string>& report_diff_default_ignores() {
  // Things that legitimately differ between two otherwise-identical runs:
  // wall-clock, memory, the binary's build stamp, output locations, the
  // thread-pool provenance block (thread count / pool statistics), the
  // simd/incremental dispatch provenance block (results are identical at
  // every vector level and with incremental eval on or off — only the
  // provenance strings differ), the profiler block ("profile" is dotless so
  // the key's very presence — one run profiled, the other not — is ignored
  // too, not just its leaves), and the sampled resource timeline
  // ("resources", dotless for the same reason: wall-clock RSS/CPU
  // observations are nondeterministic by nature).
  static const std::vector<std::string> kIgnores = {
      "stage_times", "stage_total_sec", "peak_rss_kb", "build.", "snapshot_dir",
      "parallel.", "simd.", "profile", "resources",
  };
  return kIgnores;
}

std::string ReportDiffResult::format(std::size_t max_lines) const {
  if (error) return "diff error: " + error_msg + "\n";
  std::ostringstream os;
  if (diffs.empty()) {
    os << "identical (" << values_compared << " values compared)\n";
    return os.str();
  }
  os << diffs.size() << " difference(s) over " << values_compared
     << " compared values:\n";
  std::size_t shown = 0;
  for (const DiffEntry& d : diffs) {
    if (shown++ >= max_lines) {
      os << "  ... (" << diffs.size() - max_lines << " more)\n";
      break;
    }
    os << "  " << d.path << ": " << d.a << " -> " << d.b;
    if (d.delta > 0) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.6g", d.delta);
      os << "  (|delta| " << buf << ")";
    }
    os << "\n";
  }
  return os.str();
}

ReportDiffResult diff_json_values(const JsonValue& a, const JsonValue& b,
                                  const ReportDiffOptions& opt) {
  ReportDiffResult res;
  DiffWalker{opt, res}.walk("", a, b);
  return res;
}

ReportDiffResult diff_report_files(const std::string& path_a, const std::string& path_b,
                                   const ReportDiffOptions& opt) {
  bool ok_a = false, ok_b = false;
  const std::string text_a = read_file(path_a, ok_a);
  const std::string text_b = read_file(path_b, ok_b);
  if (!ok_a) return fail("cannot read '" + path_a + "'");
  if (!ok_b) return fail("cannot read '" + path_b + "'");
  JsonValue a, b;
  try {
    a = json_parse(text_a);
  } catch (const std::exception& e) {
    return fail(path_a + ": " + e.what());
  }
  try {
    b = json_parse(text_b);
  } catch (const std::exception& e) {
    return fail(path_b + ": " + e.what());
  }
  return diff_json_values(a, b, opt);
}

ReportDiffResult diff_snapshot_dirs(const std::string& dir_a, const std::string& dir_b,
                                    const ReportDiffOptions& opt) {
  ReportDiffResult res;
  bool ok_a = false, ok_b = false;
  const std::string man_a_text = read_file(dir_a + "/manifest.json", ok_a);
  const std::string man_b_text = read_file(dir_b + "/manifest.json", ok_b);
  if (!ok_a) return fail("cannot read '" + dir_a + "/manifest.json'");
  if (!ok_b) return fail("cannot read '" + dir_b + "/manifest.json'");
  JsonValue man_a, man_b;
  try {
    man_a = json_parse(man_a_text);
    man_b = json_parse(man_b_text);
  } catch (const std::exception& e) {
    return fail(std::string("manifest parse: ") + e.what());
  }
  if (!man_a.has("maps") || !man_b.has("maps"))
    return fail("manifest missing 'maps' array");

  // Pair maps by stage/name (the stable identity; seq follows capture order).
  const auto key_of = [](const JsonValue& m) {
    return m.at("stage").str + "/" + m.at("name").str;
  };
  std::vector<std::pair<std::string, const JsonValue*>> maps_b;
  for (const JsonValue& m : man_b.at("maps").arr) maps_b.emplace_back(key_of(m), &m);

  std::set<std::string> seen;
  for (const JsonValue& ma : man_a.at("maps").arr) {
    const std::string key = key_of(ma);
    seen.insert(key);
    const auto it = std::find_if(maps_b.begin(), maps_b.end(),
                                 [&](const auto& kv) { return kv.first == key; });
    const std::string path = "map:" + key;
    if (it == maps_b.end()) {
      res.diffs.push_back({path, "<present>", "<missing>", 0.0});
      continue;
    }
    const JsonValue& mb = *it->second;
    Grid2D<double> ga, gb;
    if (!read_grid_bin(dir_a + "/" + ma.at("grid").str, ga))
      return fail("cannot read grid '" + dir_a + "/" + ma.at("grid").str + "'");
    if (!read_grid_bin(dir_b + "/" + mb.at("grid").str, gb))
      return fail("cannot read grid '" + dir_b + "/" + mb.at("grid").str + "'");
    if (ga.nx() != gb.nx() || ga.ny() != gb.ny()) {
      res.diffs.push_back({path,
                           std::to_string(ga.nx()) + "x" + std::to_string(ga.ny()),
                           std::to_string(gb.nx()) + "x" + std::to_string(gb.ny()),
                           0.0});
      continue;
    }
    double max_d = 0.0;
    int bad_cells = 0;
    for (std::size_t i = 0; i < ga.data().size(); ++i) {
      const double va = ga.data()[i], vb = gb.data()[i];
      ++res.values_compared;
      const double d = std::fabs(va - vb);
      const double tol =
          opt.abs_tol + opt.rel_tol * std::max(std::fabs(va), std::fabs(vb));
      const bool both_finite = std::isfinite(va) && std::isfinite(vb);
      if (!both_finite ? va != vb : d > tol) {
        ++bad_cells;
        if (both_finite) max_d = std::max(max_d, d);
      }
    }
    if (bad_cells > 0)
      res.diffs.push_back({path, std::to_string(bad_cells) + " cells differ",
                           "of " + std::to_string(ga.size()), max_d});
  }
  for (const auto& [key, mb] : maps_b)
    if (seen.count(key) == 0)
      res.diffs.push_back({"map:" + key, "<missing>", "<present>", 0.0});

  // Convergence histories diff as plain JSON under a "convergence." prefix.
  bool conv_a_ok = false, conv_b_ok = false;
  const std::string conv_a = read_file(dir_a + "/convergence.json", conv_a_ok);
  const std::string conv_b = read_file(dir_b + "/convergence.json", conv_b_ok);
  if (conv_a_ok && conv_b_ok) {
    try {
      ReportDiffResult conv =
          diff_json_values(json_parse(conv_a), json_parse(conv_b), opt);
      res.values_compared += conv.values_compared;
      for (DiffEntry& d : conv.diffs) {
        d.path = "convergence." + d.path;
        res.diffs.push_back(std::move(d));
      }
    } catch (const std::exception& e) {
      return fail(std::string("convergence parse: ") + e.what());
    }
  } else if (conv_a_ok != conv_b_ok) {
    res.diffs.push_back({"convergence.json", conv_a_ok ? "<present>" : "<missing>",
                         conv_b_ok ? "<present>" : "<missing>", 0.0});
  }
  return res;
}

}  // namespace rp
