#include "core/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/run_report.hpp"
#include "db/bookshelf.hpp"
#include "gen/generator.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/parallel.hpp"
#include "util/profiler.hpp"
#include "util/simd.hpp"
#include "util/str.hpp"
#include "util/telemetry.hpp"

namespace rp {

std::string cli_usage() {
  return
      "routplace — routability-driven placement for hierarchical mixed-size designs\n"
      "\n"
      "usage: routplace [options]\n"
      "\n"
      "input (choose one):\n"
      "  --aux <file.aux>        Bookshelf benchmark to place\n"
      "  --gen <n>               generate a synthetic benchmark with n std cells\n"
      "      --seed <s>          generator seed (default 1)\n"
      "      --supply <f>        generator track supply (default 1.0)\n"
      "  --strict                reject malformed Bookshelf input (default):\n"
      "                          any defect is a ParseError with file:line\n"
      "  --lenient               repair-and-warn instead: drop dangling pins and\n"
      "                          empty nets, keep the first of duplicate nodes,\n"
      "                          synthesize missing net names, clamp fully\n"
      "                          off-die fixed cells; each repair is counted in\n"
      "                          the report's \"parse\" block\n"
      "\n"
      "flow:\n"
      "  --mode <m>              routability (default) | wirelength\n"
      "  --legalizer <l>         abacus (default) | tetris\n"
      "  --density <f>           target placement density (default 1.0)\n"
      "  --rounds <n>            routability (inflation) rounds (default 3)\n"
      "  --wl-model <m>          WA | LSE — smooth wirelength model for GP\n"
      "                          (default: the mode's preset, WA)\n"
      "  --inflate-rate <f>      per-round cell inflation step for congested\n"
      "                          bins (default: the mode's preset, 0.45)\n"
      "  --threads <n>           worker threads for the hot kernels (0 = auto:\n"
      "                          RP_THREADS env, else hardware concurrency);\n"
      "                          results are identical for every thread count\n"
      "  --simd <level>          auto (default) | off | avx2 | neon — vector\n"
      "                          instruction level for the wirelength/density/\n"
      "                          CG kernels; 'auto' picks the best the host\n"
      "                          supports, unavailable levels fall back with a\n"
      "                          warning. Results are bitwise identical at\n"
      "                          every level (also via RP_SIMD env)\n"
      "  --incremental-eval <m>  on (default) | off — detailed placement\n"
      "                          scores candidate moves through cached per-net\n"
      "                          deltas instead of full re-evaluation; byte-\n"
      "                          identical placements either way (off is the\n"
      "                          cross-check reference; see also\n"
      "                          RP_CHECK_INCREMENTAL=1)\n"
      "  --max-gp-iters <n>      watchdog: cap total GP outer iterations; when\n"
      "                          hit, GP stops spreading early and the flow\n"
      "                          continues (deterministic; 0 = off)\n"
      "  --max-seconds <f>       watchdog: GP wall-clock budget in seconds; same\n"
      "                          graceful early-stop (machine-dependent, so NOT\n"
      "                          deterministic across hosts or thread counts;\n"
      "                          0 = off)\n"
      "  --skip-dp               skip detailed placement\n"
      "  --profile               in-process profiler: per-region latency\n"
      "                          histograms + thread-pool busy/wait accounting;\n"
      "                          adds a \"profile\" block to --report-json\n"
      "                          (never changes results; also via RP_PROFILE=1)\n"
      "\n"
      "output:\n"
      "  --out <file.pl>         placement output (default <design>.rp.pl)\n"
      "  --map                   print the routed-congestion ASCII map\n"
      "  --report-json <file>    write a structured JSON run report\n"
      "  --trace-json <file>     write a chrome://tracing / Perfetto flow trace\n"
      "  --progress-ndjson <t>   stream schema-versioned NDJSON progress events\n"
      "                          (stage transitions, per-GP-iteration convergence,\n"
      "                          routability rounds) to <t>: a path, '-' for\n"
      "                          stdout, or 'fd:N' for an inherited descriptor;\n"
      "                          flushed per event so the run can be tailed live\n"
      "  --flight-json <file>    black-box flight recorder: on an error exit,\n"
      "                          watchdog expiry, interrupt, or fatal signal,\n"
      "                          dump the last events + counter snapshot here\n"
      "  --snapshot-dir <dir>    capture spatial snapshots: density/congestion/\n"
      "                          inflation/displacement heatmaps per routability\n"
      "                          round + convergence history (see DESIGN.md)\n"
      "  --snapshot-every <n>    also capture a density map every n finest-level\n"
      "                          GP iterations (0 = off, default)\n"
      "  --snapshot-svg          render .svg heatmaps next to the .ppm files\n"
      "  --sample-resources <ms> resource timeline sampler tick in milliseconds\n"
      "                          (default 25; 0 disables): a background thread\n"
      "                          samples RSS / CPU / thread-pool busy fraction\n"
      "                          into the report's \"resources\" block and, when\n"
      "                          --progress-ndjson is open, live 'rp_resource'\n"
      "                          lines. Observation only — never changes results\n"
      "  --verbose               per-iteration placer logging\n"
      "  --help                  this text\n"
      "\n"
      "environment:\n"
      "  RP_LOG_LEVEL            debug|info|warn|error|silent — overrides --verbose\n"
      "  RP_PROFILE              1 = enable the profiler (same as --profile)\n"
      "  RP_SIMD                 auto|off|avx2|neon (--simd wins when both set)\n"
      "  RP_SAMPLE_MS            resource sampler tick (--sample-resources wins)\n"
      "  RP_CHECK_INCREMENTAL    1 = cross-check every incremental DP delta\n"
      "                          against a full re-evaluation (debug; slow)\n"
      "\n"
      "exit codes:\n"
      "  0 legal placement   1 completed, not legal   2 usage error\n"
      "  3 ParseError        4 ValidationError        5 NumericError\n"
      "  6 ResourceError     7 Interrupted (SIGINT/SIGTERM; partial report +\n"
      "                        flight dump are written before exiting)\n"
      "  (see README 'Error handling & exit codes')\n";
}

CliConfig parse_cli_args(const std::vector<std::string>& args) {
  CliConfig cfg;
  const auto need_value = [&](std::size_t i, const std::string& opt) {
    if (i + 1 >= args.size())
      throw std::runtime_error("option '" + opt + "' needs a value");
    return args[i + 1];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--aux") cfg.aux = need_value(i++, a);
    else if (a == "--out") cfg.out_pl = need_value(i++, a);
    else if (a == "--mode") cfg.mode = need_value(i++, a);
    else if (a == "--legalizer") cfg.legalizer = need_value(i++, a);
    else if (a == "--gen") cfg.gen_cells = static_cast<int>(to_long(need_value(i++, a)));
    else if (a == "--seed") cfg.seed = static_cast<std::uint64_t>(to_long(need_value(i++, a)));
    else if (a == "--supply") cfg.track_supply = to_double(need_value(i++, a));
    else if (a == "--density") cfg.target_density = to_double(need_value(i++, a));
    else if (a == "--rounds") cfg.routability_rounds = static_cast<int>(to_long(need_value(i++, a)));
    else if (a == "--wl-model") cfg.wl_model = need_value(i++, a);
    else if (a == "--inflate-rate") cfg.inflate_rate = to_double(need_value(i++, a));
    else if (a == "--sample-resources")
      cfg.sample_resources_ms = static_cast<int>(to_long(need_value(i++, a)));
    else if (a == "--threads") cfg.threads = static_cast<int>(to_long(need_value(i++, a)));
    else if (a == "--simd") cfg.simd = need_value(i++, a);
    else if (a == "--incremental-eval") {
      const std::string v = need_value(i++, a);
      if (v != "on" && v != "off")
        throw std::runtime_error("--incremental-eval must be 'on' or 'off'");
      cfg.incremental_eval = v == "on";
    }
    else if (a == "--strict") cfg.lenient = false;
    else if (a == "--lenient") cfg.lenient = true;
    else if (a == "--max-gp-iters")
      cfg.max_gp_iters = static_cast<int>(to_long(need_value(i++, a)));
    else if (a == "--max-seconds") cfg.max_seconds = to_double(need_value(i++, a));
    else if (a == "--skip-dp") cfg.skip_dp = true;
    else if (a == "--profile") cfg.profile = true;
    else if (a == "--report-json") cfg.report_json = need_value(i++, a);
    else if (a == "--trace-json") cfg.trace_json = need_value(i++, a);
    else if (a == "--progress-ndjson") cfg.progress_ndjson = need_value(i++, a);
    else if (a == "--flight-json") cfg.flight_json = need_value(i++, a);
    else if (a == "--snapshot-dir") cfg.snapshot_dir = need_value(i++, a);
    else if (a == "--snapshot-every")
      cfg.snapshot_every = static_cast<int>(to_long(need_value(i++, a)));
    else if (a == "--snapshot-svg") cfg.snapshot_svg = true;
    else if (a == "--map") cfg.show_map = true;
    else if (a == "--verbose") cfg.verbose = true;
    else if (a == "--help" || a == "-h") cfg.help = true;
    else throw std::runtime_error("unknown option '" + a + "' (see --help)");
  }
  if (cfg.mode != "routability" && cfg.mode != "wirelength")
    throw std::runtime_error("--mode must be 'routability' or 'wirelength'");
  if (cfg.legalizer != "abacus" && cfg.legalizer != "tetris")
    throw std::runtime_error("--legalizer must be 'abacus' or 'tetris'");
  if (cfg.target_density <= 0 || cfg.target_density > 1.0)
    throw std::runtime_error("--density must be in (0, 1]");
  if (cfg.routability_rounds < 0)
    throw std::runtime_error("--rounds must be >= 0");
  if (!cfg.wl_model.empty() && cfg.wl_model != "WA" && cfg.wl_model != "LSE")
    throw std::runtime_error("--wl-model must be 'WA' or 'LSE'");
  if (cfg.inflate_rate != -1.0 && (cfg.inflate_rate < 0 || cfg.inflate_rate > 10.0))
    throw std::runtime_error("--inflate-rate must be in [0, 10]");
  if (cfg.sample_resources_ms < -1)
    throw std::runtime_error("--sample-resources must be >= 0 (0 = off)");
  if (cfg.threads < 0)
    throw std::runtime_error("--threads must be >= 0 (0 = auto)");
  if (!cfg.simd.empty()) {
    bool recognized = false;
    simd::resolve(cfg.simd, &recognized);
    if (!recognized)
      throw std::runtime_error("--simd must be auto, off, scalar, avx2 or neon");
  }
  if (cfg.max_gp_iters < 0)
    throw std::runtime_error("--max-gp-iters must be >= 0 (0 = off)");
  if (cfg.max_seconds < 0)
    throw std::runtime_error("--max-seconds must be >= 0 (0 = off)");
  if (cfg.snapshot_every < 0)
    throw std::runtime_error("--snapshot-every must be >= 0");
  if ((cfg.snapshot_every > 0 || cfg.snapshot_svg) && cfg.snapshot_dir.empty())
    throw std::runtime_error("--snapshot-every/--snapshot-svg need --snapshot-dir");
  return cfg;
}

FlowOptions cli_flow_options(const CliConfig& cfg) {
  FlowOptions opt = cfg.mode == "routability" ? routability_driven_options()
                                              : wirelength_driven_options();
  opt.legalizer = cfg.legalizer;
  opt.gp.target_density = cfg.target_density;
  opt.gp.routability.rounds = cfg.routability_rounds;
  if (!cfg.wl_model.empty()) opt.gp.wl_model = cfg.wl_model;
  if (cfg.inflate_rate >= 0) opt.gp.routability.inflate_rate = cfg.inflate_rate;
  opt.gp.max_gp_iters = cfg.max_gp_iters;
  opt.gp.max_seconds = cfg.max_seconds;
  opt.gp.verbose = cfg.verbose;
  opt.dp.incremental = cfg.incremental_eval;
  opt.skip_dp = cfg.skip_dp;
  opt.snapshot.dir = cfg.snapshot_dir;
  opt.snapshot.density_every = cfg.snapshot_every;
  opt.snapshot.render_svg = cfg.snapshot_svg;
  return opt;
}

int run_cli(const CliConfig& cfg) {
  if (cfg.help) {
    std::fputs(cli_usage().c_str(), stdout);
    return 0;
  }
  Logger::set_level(cfg.verbose ? LogLevel::Debug : LogLevel::Info);

  const int threads = parallel::resolve_threads(cfg.threads);
  parallel::set_num_threads(threads);
  RP_DEBUG("thread pool: %d thread(s) (hardware %d)", threads,
           parallel::hardware_threads());

  if (!cfg.simd.empty()) simd::set_from_string(cfg.simd);
  RP_DEBUG("simd kernels: %s (requested '%s')", simd::level_name(simd::active_level()),
           simd::requested().c_str());

  if (cfg.profile || profiler::env_requested()) profiler::set_enabled(true);

  const std::string source = cfg.aux.empty() ? "generated" : "bookshelf";
  const std::string parse_mode = cfg.lenient ? "lenient" : "strict";
  FlowOptions fopt = cli_flow_options(cfg);
  ParseRepairs repairs;
  bool trace_active = false;

  // Per-run observability context: counters, trace buffer, profiler regions
  // and the event bus all live here, bound to this thread for the whole
  // parse → flow → report span. Parse-time state (repair counters, the
  // ParseRepair event) accumulates in the SAME context the flow uses, so it
  // lands in the report without any side channel — and a second run_cli in
  // one process starts from a fresh context.
  auto obs_ctx = std::make_shared<obs::ObsContext>();
  obs::ScopedBind obs_bind(obs_ctx.get());
  obs::clear_interrupt();
  obs::set_crash_context(obs_ctx.get());
  struct CrashCtxGuard {
    ~CrashCtxGuard() { obs::set_crash_context(nullptr); }
  } crash_ctx_guard;  // the context dies with run_cli; disarm the handler first
  fopt.obs = obs_ctx;

  if (!cfg.progress_ndjson.empty() &&
      !obs_ctx->events().open_stream(cfg.progress_ndjson))
    RP_THROW(ErrorCode::ResourceError,
             "cannot open progress stream '" + cfg.progress_ndjson + "'");

  // Resource timeline sampler: on by default (--sample-resources 0 turns it
  // off). Started AFTER the progress stream opens so its live rp_resource
  // lines have a sink, stopped BEFORE close_stream()/report writing on every
  // exit path (the write_raw_line contract).
  {
    int tick_ms = cfg.sample_resources_ms;
    if (tick_ms < 0) {
      tick_ms = obs::ResourceSampler::kDefaultTickMs;
      if (const char* env = std::getenv("RP_SAMPLE_MS");
          env != nullptr && env[0] != '\0') {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 0) tick_ms = static_cast<int>(v);
      }
    }
    if (tick_ms > 0) {
      obs::ResourceSampler::Options so;
      so.tick_ms = tick_ms;
      so.stream = &obs_ctx->events();
      obs_ctx->sampler().start(so);
    }
  }

  const auto dump_flight = [&](const char* reason) {
    if (cfg.flight_json.empty()) return;
    if (obs_ctx->events().dump_flight(cfg.flight_json, reason,
                                      &obs_ctx->registry()))
      RP_INFO("flight recorder dumped to '%s'", cfg.flight_json.c_str());
  };

  // Failure path shared by parse and flow errors (including Interrupted):
  // emit the terminal error event, finish the trace if one is recording,
  // dump the flight recorder, write the run report (with its "error" block)
  // if requested, log, and return the error class's documented exit code.
  const auto report_error = [&](const Error& e, const RunReportMeta& meta) {
    obs::Event ev = obs_ctx->events().make(obs::EventKind::RunError, e.code_name());
    ev.i0 = e.exit_code();
    obs_ctx->events().emit(ev);
    obs_ctx->sampler().stop();  // before close_stream; the report reads it
    obs_ctx->events().close_stream();
    if (trace_active) {
      telemetry::stop_trace();
      telemetry::write_trace_json(cfg.trace_json);
    }
    dump_flight(e.code_name());
    if (!cfg.report_json.empty() &&
        write_run_report(cfg.report_json, meta, fopt, FlowResult{},
                         RunErrorInfo::from(e)))
      RP_INFO("run report written to '%s'", cfg.report_json.c_str());
    RP_ERROR("%s", e.what());
    return e.exit_code();
  };

  Design d;
  if (!cfg.aux.empty()) {
    BookshelfOptions bso;
    bso.mode = cfg.lenient ? ParseMode::Lenient : ParseMode::Strict;
    bso.repairs = &repairs;
    try {
      d = read_bookshelf(cfg.aux, bso);
    } catch (const Error& e) {
      RunReportMeta meta;
      meta.design = cfg.aux;
      meta.source = source;
      meta.mode = cfg.mode;
      meta.parse_mode = parse_mode;
      return report_error(e, meta);
    }
  } else {
    BenchmarkSpec spec = small_spec(cfg.seed);
    spec.num_std_cells = cfg.gen_cells;
    spec.track_supply = cfg.track_supply;
    spec.name = "gen" + std::to_string(cfg.gen_cells);
    d = generate_benchmark(spec);
  }

  RunReportMeta meta =
      make_report_meta(d, source, cfg.mode, cfg.aux.empty() ? cfg.seed : 0);
  if (!cfg.aux.empty()) {
    meta.parse_mode = parse_mode;
    if (repairs.total() > 0)
      RP_WARN("lenient parse repaired %ld defect(s) in '%s' (see report)",
              repairs.total(), cfg.aux.c_str());
  }

  if (!cfg.trace_json.empty()) {
    telemetry::start_trace();
    trace_active = true;
  }

  PlacementFlow flow(fopt);
  FlowResult r;
  try {
    r = flow.run(d);
  } catch (const Error& e) {
    return report_error(e, meta);
  }

  // The flow emitted its RunEnd event; the stream is complete. Stop the
  // sampler first (it may still be streaming rp_resource lines) so the
  // report below sees the final timeline.
  obs_ctx->sampler().stop();
  obs_ctx->events().close_stream();
  // Watchdog expiry is a degraded-but-completed run: leave the black box.
  if (obs_ctx->registry().counter_value("guard.watchdog_gp_iters") +
          obs_ctx->registry().counter_value("guard.watchdog_seconds") >
      0)
    dump_flight("watchdog");

  if (trace_active) {
    telemetry::stop_trace();
    if (telemetry::write_trace_json(cfg.trace_json))
      RP_INFO("trace written to '%s' (load in chrome://tracing or ui.perfetto.dev)",
              cfg.trace_json.c_str());
  }
  if (!cfg.report_json.empty()) {
    if (write_run_report(cfg.report_json, meta, flow.options(), r))
      RP_INFO("run report written to '%s'", cfg.report_json.c_str());
  }

  const std::string out = cfg.out_pl.empty() ? d.name() + ".rp.pl" : cfg.out_pl;
  write_pl(d, out);

  std::printf("\n%s placement of '%s'\n", cfg.mode.c_str(), d.name().c_str());
  std::printf("  HPWL         %.4e\n", r.eval.hpwl);
  std::printf("  scaled HPWL  %.4e\n", r.eval.scaled_hpwl);
  std::printf("  RC           %.1f (ACE %.1f/%.1f/%.1f/%.1f)\n", r.eval.congestion.rc,
              r.eval.congestion.ace_005, r.eval.congestion.ace_1, r.eval.congestion.ace_2,
              r.eval.congestion.ace_5);
  std::printf("  overflow     %.0f tracks / %d edges, peak %.2f\n",
              r.eval.congestion.total_overflow, r.eval.congestion.overflowed_edges,
              r.eval.congestion.peak_utilization);
  std::printf("  legal        %s\n", r.eval.legality.ok() ? "yes" : "NO");
  std::printf("  runtime      %s\n", r.times.report_flat().c_str());
  std::printf("  solution     %s\n", out.c_str());
  if (!r.snapshot_dir.empty())
    std::printf("  snapshots    %s\n", r.snapshot_dir.c_str());
  std::printf("\nruntime breakdown:\n%s\n", r.times.report().c_str());
  if (cfg.show_map) {
    std::printf("\nrouted congestion ('#'>105%%, '+'>95%%, ':'>80%%, 'M' macro):\n%s",
                congestion_ascii(d, 64).c_str());
  }
  return r.eval.legality.ok() ? 0 : 1;
}

}  // namespace rp
