#include "core/flow.hpp"

#include <memory>
#include <optional>
#include <stdexcept>

#include "route/estimator.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/profiler.hpp"
#include "util/telemetry.hpp"

namespace rp {

namespace {

/// Run a stage body bracketed by StageBegin/StageEnd events, polling the
/// interrupt flag at entry (a stage boundary is always a safe cancellation
/// point). An escaping rp::Error that does not yet know its stage gets
/// annotated with this stage's name (throw sites deep in a kernel often
/// cannot know which flow stage invoked them); an error leaves the stage
/// UNCLOSED in the event stream — the terminal error event explains why.
template <typename Fn>
void with_stage(const char* stage, Fn&& fn) {
  obs::check_interrupt();
  obs::EventBus& bus = obs::events();
  bus.emit(bus.make(obs::EventKind::StageBegin, stage));
  try {
    fn();
  } catch (Error& e) {
    e.set_stage(stage);
    throw;
  }
  bus.emit(bus.make(obs::EventKind::StageEnd, stage));
}

}  // namespace

FlowOptions routability_driven_options() {
  FlowOptions o;
  o.gp.routability.enable = true;
  o.congestion_aware_dp = true;
  return o;
}

FlowOptions wirelength_driven_options() {
  FlowOptions o;
  o.gp.routability.enable = false;
  o.congestion_aware_dp = false;
  return o;
}

FlowResult PlacementFlow::run(Design& d) {
  FlowResult r;
  // Observability: with an explicit per-run context, bind it for the run's
  // duration and keep whatever the caller accumulated (parse counters,
  // events). Without one, keep the historical contract: reset the current
  // context so a run's report reflects that run only (bench binaries run
  // many flows per process).
  std::optional<obs::ScopedBind> obs_bind;
  if (opt_.obs != nullptr) {
    obs_bind.emplace(opt_.obs.get());
    r.obs = opt_.obs;
  } else {
    telemetry::Registry::instance().reset();
    profiler::reset_all();
  }
  {
    obs::EventBus& bus = obs::events();
    obs::Event e = bus.make(obs::EventKind::RunBegin, d.name().c_str());
    e.i0 = d.num_cells();
    e.i1 = d.num_nets();
    e.i2 = d.num_macros();
    bus.emit(e);
  }
  RP_TRACE_SPAN("flow");

  std::unique_ptr<SnapshotRecorder> snap;
  if (!opt_.snapshot.dir.empty()) {
    snap = std::make_unique<SnapshotRecorder>(opt_.snapshot);
    if (!snap->ok()) snap.reset();  // unwritable dir: run without snapshots
  }

  with_stage("global", [&] {
    ScopedStage t(r.times, "global");
    RP_TRACE_SPAN("global");
    GpOptions gpo = opt_.gp;
    gpo.snapshot = snap.get();
    GlobalPlacer gp(gpo);
    r.gp = gp.run(d);
    r.gp_trace = gp.trace();
    r.times.merge("global", gp.times());
  });

  // Positions at GP exit, for the final displacement map (GP → legal+DP).
  std::vector<Point> gp_pos;
  if (snap) {
    gp_pos.reserve(static_cast<std::size_t>(d.num_cells()));
    for (CellId c = 0; c < d.num_cells(); ++c) gp_pos.push_back(d.cell_center(c));
  }

  with_stage("macro_legal", [&] {
    ScopedStage t(r.times, "macro_legal");
    RP_TRACE_SPAN("macro_legal");
    r.macro_legal = legalize_macros(d, opt_.macro_legal);
    freeze_macros(d);
    RP_COUNT("legal.macros", r.macro_legal.macros);
  });

  with_stage("legal", [&] {
    ScopedStage t(r.times, "legal");
    RP_TRACE_SPAN("legal");
    LegalizeStats ls;
    if (opt_.legalizer == "abacus") {
      AbacusLegalizer lg(opt_.legal);
      ls = lg.run(d);
    } else if (opt_.legalizer == "tetris") {
      TetrisLegalizer lg(opt_.legal);
      ls = lg.run(d);
    } else {
      RP_THROW(ErrorCode::ValidationError,
               "unknown legalizer '" + opt_.legalizer + "'");
    }
    r.legal = ls;
    RP_COUNT("legal.cells", ls.cells);
    RP_COUNT("legal.failed", ls.failed);
    RP_INFO("legalization (%s): %d cells, avg disp %.2f, max %.2f, %d failed",
            opt_.legalizer.c_str(), ls.cells, ls.avg_disp(), ls.max_disp, ls.failed);
  });

  if (!opt_.skip_dp) with_stage("detailed", [&] {
    ScopedStage t(r.times, "detailed");
    RP_TRACE_SPAN("detailed");
    DetailedPlaceOptions dpo = opt_.dp;
    DetailedPlacer dp(dpo);
    if (opt_.congestion_aware_dp) {
      // Feed the DP the post-GP congestion picture.
      RoutingGrid rg(d, true);
      {
        ScopedStage te(r.times, "estimate");
        RP_TRACE_SPAN("detailed/estimate");
        if (opt_.design_csr != nullptr) {
          // Cached flatten (rp_serve): copy the topology template instead of
          // rebuilding it; the estimator gathers coordinates per eval, so
          // the result is byte-identical to the from-scratch path.
          NetlistCsr csr = *opt_.design_csr;
          estimate_probabilistic(d, csr, rg);
        } else {
          estimate_probabilistic(d, rg);
        }
      }
      double w = opt_.dp_congestion_weight;
      if (w <= 0.0) w = 2.0 * d.row_height();
      dpo.congestion_weight = w;
      DetailedPlacer dp2(dpo);
      dp2.set_congestion(rg.map(), rg.tile_congestion());
      r.dp = dp2.run(d);
    } else {
      r.dp = dp.run(d);
    }
    RP_INFO("detailed placement: hpwl %.4e -> %.4e (%.2f%%), %ld swaps, %ld moves, "
            "%ld reorders, %ld ism",
            r.dp.hpwl_before, r.dp.hpwl_after, 100.0 * r.dp.improvement(), r.dp.swaps,
            r.dp.relocations, r.dp.reorders, r.dp.ism_moves);
  });

  if (!opt_.skip_eval) with_stage("eval", [&] {
    ScopedStage t(r.times, "eval");
    RP_TRACE_SPAN("eval");
    if (snap) {
      // Route on a grid we keep, so the ROUTED (not just estimated)
      // congestion picture lands in the snapshot.
      RoutingGrid eval_grid(d, /*include_movable_macros=*/true);
      r.eval = evaluate_placement(d, opt_.eval, eval_grid);
      snap->record_grid("final", "demand", eval_grid.tile_demand());
      snap->record_grid("final", "capacity", eval_grid.tile_capacity());
      snap->record_grid("final", "overflow", eval_grid.tile_overflow());
      snap->record_grid("final", "congestion", eval_grid.tile_congestion());
      snap->record_grid("final", "displacement",
                        displacement_map(d, gp_pos, eval_grid.map()));
    } else {
      r.eval = evaluate_placement(d, opt_.eval);
    }
    RP_GAUGE("eval.hpwl", r.eval.hpwl);
    RP_GAUGE("eval.scaled_hpwl", r.eval.scaled_hpwl);
    RP_GAUGE("eval.rc", r.eval.congestion.rc);
    RP_GAUGE("eval.total_overflow", r.eval.congestion.total_overflow);
    RP_INFO("eval: hpwl %.4e scaled %.4e RC %.1f overflow %.0f (%d edges) legal=%s",
            r.eval.hpwl, r.eval.scaled_hpwl, r.eval.congestion.rc,
            r.eval.congestion.total_overflow, r.eval.congestion.overflowed_edges,
            r.eval.legality.ok() ? "yes" : "NO");
  });
  if (snap) {
    snap->finalize();
    r.snapshot_dir = snap->dir();
  }
  {
    obs::EventBus& bus = obs::events();
    obs::Event e = bus.make(obs::EventKind::RunEnd);
    e.d0 = r.eval.hpwl;
    e.d1 = r.eval.scaled_hpwl;
    e.d2 = r.eval.congestion.total_overflow;
    e.i0 = r.eval.legality.ok() ? 1 : 0;
    bus.emit(e);
  }
  return r;
}

}  // namespace rp
