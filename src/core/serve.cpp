#include "core/serve.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/run_report.hpp"
#include "core/sweep.hpp"
#include "db/bookshelf.hpp"
#include "gen/generator.hpp"
#include "util/error.hpp"
#include "util/event_bus.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/parallel.hpp"
#include "util/str.hpp"
#include "util/telemetry.hpp"

namespace fs = std::filesystem;

namespace rp {

namespace {

// ------------------------------------------------------------- cache keying

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  return fnv1a(h, s.data(), s.size());
}

/// Whole-file read for hashing. False when the file cannot be opened — the
/// key hashes the absence marker instead and lets the parse report the
/// real error with its file:line context.
bool read_file_bytes(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// --------------------------------------------------- wire-number formatting

/// JSON numbers arrive as doubles; turn one back into the CLI token the user
/// would have typed (integral values lose the ".0" so "--gen 2000" and
/// {"gen":2000} are the same request).
std::string number_token(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

// ----------------------------------------------------------------- requests

JobRequest parse_job_request(const JsonValue& job) {
  if (!job.is_object())
    throw Error(ErrorCode::ValidationError, "job must be a JSON object", "job");
  JobRequest req;
  std::vector<std::string> args;
  const auto type_error = [](const std::string& key, const char* want) {
    throw Error(ErrorCode::ValidationError,
                "job field '" + key + "' must be " + want, "job");
  };
  for (const auto& [key, v] : job.obj) {
    // Serve-level fields first, then the CLI passthroughs. The flag names
    // match routplace exactly (underscores for dashes) so a job object and
    // a command line can be read side by side.
    if (key == "label") {
      if (!v.is_string()) type_error(key, "a string");
      req.label = v.str;
    } else if (key == "progress") {
      if (v.kind != JsonValue::Kind::Bool) type_error(key, "a bool");
      req.progress = v.b;
    } else if (key == "threads") {
      if (!v.is_number()) type_error(key, "a number");
      if (v.num < 1 || v.num != std::floor(v.num))
        throw Error(ErrorCode::ValidationError,
                    "job field 'threads' must be a positive integer", "job");
      req.threads = static_cast<int>(v.num);
    } else if (key == "aux" || key == "mode" || key == "legalizer" ||
               key == "wl_model") {
      if (!v.is_string()) type_error(key, "a string");
      std::string flag = key;
      for (char& c : flag)
        if (c == '_') c = '-';
      args.push_back("--" + flag);
      args.push_back(v.str);
    } else if (key == "gen" || key == "seed" || key == "supply" ||
               key == "density" || key == "rounds" || key == "inflate_rate" ||
               key == "max_gp_iters" || key == "max_seconds") {
      if (!v.is_number()) type_error(key, "a number");
      std::string flag = key;
      for (char& c : flag)
        if (c == '_') c = '-';
      args.push_back("--" + flag);
      args.push_back(number_token(v.num));
    } else if (key == "lenient" || key == "skip_dp") {
      if (v.kind != JsonValue::Kind::Bool) type_error(key, "a bool");
      if (v.b) args.push_back(key == "lenient" ? "--lenient" : "--skip-dp");
    } else if (key == "incremental_eval") {
      if (v.kind != JsonValue::Kind::Bool) type_error(key, "a bool");
      args.push_back("--incremental-eval");
      args.push_back(v.b ? "on" : "off");
    } else {
      // Everything else is either orchestrator-owned (out, report_json,
      // progress_ndjson, snapshots, simd, sample_resources, ...) or unknown;
      // both are rejected the way rp_sweep rejects reserved spec flags.
      throw Error(ErrorCode::ValidationError,
                  "unknown job field '" + key + "' (outputs and process-wide "
                  "knobs are server-owned)", "job");
    }
  }
  try {
    req.cfg = parse_cli_args(args);
  } catch (const std::exception& e) {
    throw Error(ErrorCode::ValidationError, e.what(), "job");
  }
  return req;
}

// ------------------------------------------------------------- design cache

std::string design_cache_key(const CliConfig& cfg) {
  if (cfg.aux.empty()) {
    char supply[40];
    std::snprintf(supply, sizeof(supply), "%.17g", cfg.track_supply);
    return "gen:" + std::to_string(cfg.gen_cells) + ":s" +
           std::to_string(cfg.seed) + ":su" + supply;
  }
  std::string aux_text;
  if (!read_file_bytes(cfg.aux, &aux_text))
    throw Error(ErrorCode::ResourceError, "cannot open '" + cfg.aux + "'");
  std::uint64_t h = fnv1a(kFnvOffset, aux_text);
  // Hash every file the .aux references, in the same fixed extension order
  // read_bookshelf resolves them (first non-comment line; tokens classified
  // by suffix). An unreadable referenced file hashes a marker: the key still
  // forms, the parse reports the real error.
  std::string nodes, nets, wts, pl, scl, route;
  std::istringstream lines(aux_text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t ns = line.find_first_not_of(" \t\r");
    if (ns == std::string::npos || line[ns] == '#') continue;
    std::istringstream toks(line);
    std::string tok;
    while (toks >> tok) {
      if (ends_with(tok, ".nodes")) nodes = tok;
      else if (ends_with(tok, ".nets")) nets = tok;
      else if (ends_with(tok, ".wts")) wts = tok;
      else if (ends_with(tok, ".pl")) pl = tok;
      else if (ends_with(tok, ".scl")) scl = tok;
      else if (ends_with(tok, ".route")) route = tok;
    }
    break;
  }
  const fs::path dir = fs::path(cfg.aux).parent_path();
  for (const std::string* name : {&nodes, &nets, &wts, &pl, &scl, &route}) {
    h = fnv1a(h, "|");
    if (name->empty()) continue;
    std::string bytes;
    if (read_file_bytes(dir / *name, &bytes))
      h = fnv1a(h, bytes);
    else
      h = fnv1a(h, "<missing>");
  }
  return "aux:" + hex64(h) + (cfg.lenient ? ":lenient" : ":strict");
}

std::shared_ptr<const DesignCacheEntry> DesignCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.second);
  return it->second.first;
}

void DesignCache::insert(const std::string& key,
                         std::shared_ptr<const DesignCacheEntry> e) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.first = std::move(e);
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return;
  }
  lru_.push_front(key);
  map_.emplace(key, std::make_pair(std::move(e), lru_.begin()));
  while (static_cast<int>(map_.size()) > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
}

DesignCache::Stats DesignCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {hits_, misses_, static_cast<int>(map_.size()), capacity_};
}

// ----------------------------------------------------------------- statuses

std::string job_status_json(const JobStatusInfo& st, const std::string& type) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "rp_serve");
  w.kv("v", 1);
  w.kv("type", type);
  w.kv("job", st.id);
  if (!st.label.empty()) w.kv("label", st.label);
  w.kv("state", st.state);
  if (st.state == "done") {
    w.kv("exit_code", st.exit_code);
    w.kv("status", st.status);
    w.kv("cache_hit", st.cache_hit);
    w.kv("legal", st.legal);
    w.kv("hpwl", st.hpwl);
    w.kv("scaled_hpwl", st.scaled_hpwl);
    w.kv("overflow", st.overflow);
    w.kv("dir", st.dir);
    if (st.has_error) {
      w.key("error").begin_object();
      w.kv("code", st.error_code);
      w.kv("message", st.error_message);
      if (!st.error_where.empty()) w.kv("where", st.error_where);
      if (!st.error_stage.empty()) w.kv("stage", st.error_stage);
      w.end_object();
    }
  }
  w.end_object();
  return w.str();
}

JobStatusInfo execute_serve_job(const JobRequest& req, const std::string& job_dir,
                                DesignCache* cache, int progress_fd) {
  JobStatusInfo st;
  st.dir = job_dir;
  const CliConfig& cfg = req.cfg;

  std::error_code ec;
  fs::create_directories(job_dir, ec);

  // Fresh per-job observability context, bound for the whole parse → flow →
  // report span — the exact run_cli recipe, minus anything process-global:
  // no clear_interrupt (a daemon-wide SIGINT must drain EVERY job through
  // the Interrupted contract), no crash-context handoff (one global slot
  // cannot name many concurrent jobs), no resource sampler (wall-clock
  // observations are scrubbed from every comparison anyway).
  auto obs_ctx = std::make_shared<obs::ObsContext>();
  obs::ScopedBind obs_bind(obs_ctx.get());
  FlowOptions fopt = cli_flow_options(cfg);
  fopt.obs = obs_ctx;

  const std::string source = cfg.aux.empty() ? "generated" : "bookshelf";
  const std::string parse_mode = cfg.lenient ? "lenient" : "strict";
  const std::string report_path = job_dir + "/report.json";

  if (progress_fd >= 0)
    obs_ctx->events().open_stream("fd:" + std::to_string(progress_fd));
  else
    obs_ctx->events().open_stream(job_dir + "/progress.ndjson");

  const auto finish_stream = [&] {
    obs_ctx->events().close_stream();
    // "fd:N" sinks are inherited, not owned, by the bus; the forwarder on
    // the other end of the pipe relies on EOF, so close our end here.
    if (progress_fd >= 0) ::close(progress_fd);
  };

  const auto fail = [&](const Error& e, const RunReportMeta& meta) {
    obs::Event ev = obs_ctx->events().make(obs::EventKind::RunError, e.code_name());
    ev.i0 = e.exit_code();
    obs_ctx->events().emit(ev);
    finish_stream();
    obs_ctx->events().dump_flight(job_dir + "/flight.json", e.code_name(),
                                  &obs_ctx->registry());
    write_run_report(report_path, meta, fopt, FlowResult{}, RunErrorInfo::from(e));
    st.exit_code = e.exit_code();
    st.status = sweep_status_name(st.exit_code);
    st.has_error = true;
    st.error_code = e.code_name();
    st.error_message = e.message();
    st.error_where = e.where();
    st.error_stage = e.stage();
    return st;
  };

  // Resolve the design: cache, else parse/generate (and populate the cache).
  Design d;
  try {
    const std::string key = design_cache_key(cfg);
    std::shared_ptr<const DesignCacheEntry> entry =
        cache != nullptr ? cache->lookup(key) : nullptr;
    if (entry != nullptr) {
      st.cache_hit = true;
      d = entry->design;
      // Replay the acquisition-time observability a cold run would have
      // produced — parse-repair counters for Bookshelf, the generator's
      // internal probe-estimate counters for --gen — so the report and the
      // event stream are byte-for-byte the same whether or not the cache
      // served the design.
      for (const auto& [name, n] : entry->pre_counters)
        obs_ctx->registry().counter(name).value += n;
      for (const auto& [name, v] : entry->pre_gauges)
        obs_ctx->registry().gauge(name).value = v;
      if (entry->bookshelf) {
        obs::Event ev = obs_ctx->events().make(obs::EventKind::ParseRepair,
                                               entry->parse_label.c_str());
        ev.i0 = entry->repair_total;
        obs_ctx->events().emit(ev);
      }
      fopt.design_csr = entry->csr;
    } else {
      if (!cfg.aux.empty()) {
        BookshelfOptions bso;
        bso.mode = cfg.lenient ? ParseMode::Lenient : ParseMode::Strict;
        d = read_bookshelf(cfg.aux, bso);
      } else {
        BenchmarkSpec spec = small_spec(cfg.seed);
        spec.num_std_cells = cfg.gen_cells;
        spec.track_supply = cfg.track_supply;
        spec.name = "gen" + std::to_string(cfg.gen_cells);
        d = generate_benchmark(spec);
      }
      if (cache != nullptr) {
        auto fresh = std::make_shared<DesignCacheEntry>();
        fresh->design = d;
        fresh->csr = std::make_shared<NetlistCsr>(NetlistCsr::from_design(d));
        // Snapshot EVERYTHING acquisition recorded on this fresh context —
        // not just parse.repair.*: generate_benchmark runs an internal
        // routability probe that bumps route.* too, and a hit must replay
        // all of it for report parity.
        fresh->pre_counters = obs_ctx->registry().counters();
        fresh->pre_gauges = obs_ctx->registry().gauges();
        if (!cfg.aux.empty()) {
          fresh->bookshelf = true;
          fresh->parse_label = parse_mode;
          for (const auto& [name, v] : fresh->pre_counters)
            if (name.rfind("parse.repair.", 0) == 0) fresh->repair_total += v;
        }
        fopt.design_csr = fresh->csr;
        cache->insert(key, std::move(fresh));
      }
    }
  } catch (const Error& e) {
    RunReportMeta meta;
    meta.design = cfg.aux.empty() ? "gen" + std::to_string(cfg.gen_cells) : cfg.aux;
    meta.source = source;
    meta.mode = cfg.mode;
    if (!cfg.aux.empty()) meta.parse_mode = parse_mode;
    return fail(e, meta);
  }

  RunReportMeta meta =
      make_report_meta(d, source, cfg.mode, cfg.aux.empty() ? cfg.seed : 0);
  if (!cfg.aux.empty()) meta.parse_mode = parse_mode;

  PlacementFlow flow(fopt);
  FlowResult r;
  try {
    r = flow.run(d);
  } catch (const Error& e) {
    return fail(e, meta);
  }

  finish_stream();
  write_run_report(report_path, meta, flow.options(), r);
  write_pl(d, job_dir + "/out.pl");

  st.legal = r.eval.legality.ok();
  st.exit_code = st.legal ? 0 : 1;
  st.status = sweep_status_name(st.exit_code);
  st.hpwl = r.eval.hpwl;
  st.scaled_hpwl = r.eval.scaled_hpwl;
  st.overflow = r.eval.congestion.total_overflow;
  return st;
}

// ------------------------------------------------------------------- server

PlacementServer::PlacementServer(const ServeOptions& opt)
    : opt_(opt), cache_(opt.cache_capacity) {
  if (opt_.max_jobs < 1) opt_.max_jobs = 1;
  if (opt_.queue_cap < 1) opt_.queue_cap = 1;
  if (opt_.thread_budget <= 0) opt_.thread_budget = parallel::num_threads();
  if (opt_.thread_budget < 1) opt_.thread_budget = 1;
}

PlacementServer::~PlacementServer() {
  request_stop();
  queue_cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  for (std::thread& t : conns_)
    if (t.joinable()) t.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void PlacementServer::start() {
  if (started_)
    throw Error(ErrorCode::ValidationError, "server already started");
  if (opt_.socket_path.empty())
    throw Error(ErrorCode::ValidationError, "serve: socket path is required");
  if (opt_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw Error(ErrorCode::ValidationError,
                "serve: socket path too long for AF_UNIX ('" +
                    opt_.socket_path + "')");
  std::error_code ec;
  fs::create_directories(fs::path(opt_.work_dir) / "jobs", ec);
  if (ec)
    throw Error(ErrorCode::ResourceError,
                "serve: cannot create work dir '" + opt_.work_dir + "'");

  ::unlink(opt_.socket_path.c_str());  // stale socket from a previous run
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    throw Error(ErrorCode::ResourceError,
                std::string("serve: socket() failed (") + std::strerror(errno) + ")");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    throw Error(ErrorCode::ResourceError,
                "serve: cannot bind '" + opt_.socket_path + "' (" +
                    std::strerror(errno) + ")");
  if (::listen(listen_fd_, 16) < 0)
    throw Error(ErrorCode::ResourceError,
                std::string("serve: listen() failed (") + std::strerror(errno) + ")");

  started_ = true;
  workers_.reserve(static_cast<std::size_t>(opt_.max_jobs));
  for (int i = 0; i < opt_.max_jobs; ++i)
    workers_.emplace_back([this] { worker_main(); });
  RP_INFO("rp_serve: listening on '%s' (%d worker(s), budget %d, queue %d, "
          "cache %d)",
          opt_.socket_path.c_str(), opt_.max_jobs, opt_.thread_budget,
          opt_.queue_cap, opt_.cache_capacity);
}

void PlacementServer::request_stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
}

int PlacementServer::budget_left_locked() const {
  return opt_.thread_budget - budget_in_use_;
}

JobStatusInfo PlacementServer::snapshot_locked(const Job& j) const {
  if (j.state == Job::State::Done) return j.result;
  JobStatusInfo st;
  st.id = j.id;
  st.label = j.req.label;
  st.state = j.state == Job::State::Queued ? "queued" : "running";
  st.dir = j.dir;
  return st;
}

PlacementServer::Admission PlacementServer::submit(const JobRequest& req,
                                                   int progress_fd) {
  Admission adm;
  std::lock_guard<std::mutex> lk(mu_);
  adm.running = running_;
  adm.queued = static_cast<int>(queue_.size());
  if (stop_) {
    adm.reason = "shutting_down";
    if (progress_fd >= 0) ::close(progress_fd);
    return adm;
  }
  if (static_cast<int>(queue_.size()) >= opt_.queue_cap) {
    adm.reason = "queue_full";
    if (progress_fd >= 0) ::close(progress_fd);
    return adm;
  }
  auto job = std::make_shared<Job>();
  char id[16];
  std::snprintf(id, sizeof(id), "j%04llu",
                static_cast<unsigned long long>(next_id_++));
  job->id = id;
  job->req = req;
  job->budget = req.threads < 1 ? 1
              : req.threads > opt_.thread_budget ? opt_.thread_budget
                                                 : req.threads;
  job->progress_fd = progress_fd;
  job->dir = (fs::path(opt_.work_dir) / "jobs" / job->id).string();
  // Create the artifact directory at ADMISSION, not job start: the accepted
  // line tells the client (and the op-"run" tee) the directory exists, and a
  // streaming connection opens its tee there before a worker picks the job
  // up.
  std::error_code ec;
  fs::create_directories(job->dir, ec);
  jobs_[job->id] = job;
  queue_.push_back(job);
  adm.accepted = true;
  adm.job_id = job->id;
  adm.queued = static_cast<int>(queue_.size());
  queue_cv_.notify_all();
  return adm;
}

void PlacementServer::worker_main() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      queue_cv_.wait(lk, [&] {
        return (stop_ && queue_.empty()) ||
               (!queue_.empty() && queue_.front()->budget <= budget_left_locked());
      });
      // Drain-then-exit: a stopping server still runs everything it
      // admitted (a process-wide interrupt makes those jobs finish fast
      // through the Interrupted contract).
      if (stop_ && queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
      job->state = Job::State::Running;
      budget_in_use_ += job->budget;
      ++running_;
    }
    JobStatusInfo st = execute_serve_job(job->req, job->dir, &cache_,
                                         job->progress_fd);
    st.id = job->id;
    st.label = job->req.label;
    st.state = "done";
    {
      std::lock_guard<std::mutex> lk(mu_);
      job->result = st;
      job->state = Job::State::Done;
      budget_in_use_ -= job->budget;
      --running_;
      ++done_count_;
    }
    done_cv_.notify_all();
    queue_cv_.notify_all();
  }
}

bool PlacementServer::wait(const std::string& job_id, JobStatusInfo* out) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lk, [&] { return job->state == Job::State::Done; });
  *out = job->result;
  return true;
}

bool PlacementServer::status(const std::string& job_id, JobStatusInfo* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  *out = snapshot_locked(*it->second);
  return true;
}

std::string PlacementServer::stats_json() const {
  const DesignCache::Stats cs = cache_.stats();
  std::lock_guard<std::mutex> lk(mu_);
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "rp_serve");
  w.kv("v", 1);
  w.kv("type", "stats");
  w.kv("max_jobs", opt_.max_jobs);
  w.kv("queue_cap", opt_.queue_cap);
  w.kv("thread_budget", opt_.thread_budget);
  w.kv("running", running_);
  w.kv("queued", static_cast<int>(queue_.size()));
  w.kv("budget_in_use", budget_in_use_);
  w.kv("done", done_count_);
  w.key("cache").begin_object();
  w.kv("hits", cs.hits);
  w.kv("misses", cs.misses);
  w.kv("entries", cs.entries);
  w.kv("capacity", cs.capacity);
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {

/// One response line out (newline appended). Socket writes go through the
/// EINTR/short-write-safe helper; a dead peer just ends the connection.
bool send_line(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  return obs::write_all_fd(fd, out.data(), out.size());
}

std::string simple_line(const char* type) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "rp_serve");
  w.kv("v", 1);
  w.kv("type", type);
  w.end_object();
  return w.str();
}

std::string error_line(const std::string& error, const std::string& message) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "rp_serve");
  w.kv("v", 1);
  w.kv("type", "error");
  w.kv("error", error);
  w.kv("message", message);
  w.end_object();
  return w.str();
}

std::string admission_line(const PlacementServer::Admission& adm) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "rp_serve");
  w.kv("v", 1);
  w.kv("type", adm.accepted ? "accepted" : "reject");
  if (adm.accepted) w.kv("job", adm.job_id);
  else w.kv("reason", adm.reason);
  w.kv("queued", adm.queued);
  w.kv("running", adm.running);
  w.end_object();
  return w.str();
}

/// Newline-delimited reads with EINTR retry and a line cap (a client cannot
/// buffer-bomb the daemon). Returns false on EOF/error/oversize.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool next(std::string* line) {
    static constexpr std::size_t kMaxLine = 1 << 20;
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        *line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      if (buf_.size() > kMaxLine) return false;
      char chunk[4096];
      ssize_t n;
      while ((n = ::read(fd_, chunk, sizeof(chunk))) < 0 && errno == EINTR) {
      }
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

}  // namespace

void PlacementServer::handle_connection(int fd) {
  LineReader reader(fd);
  std::string line;
  while (reader.next(&line)) {
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    std::string op;
    JsonValue doc;
    try {
      doc = json_parse(line);
      if (!doc.is_object() || !doc.has("op") || !doc.at("op").is_string()) {
        send_line(fd, error_line("bad_request", "expected {\"op\": ...}"));
        continue;
      }
      op = doc.at("op").str;
    } catch (const std::exception& e) {
      send_line(fd, error_line("bad_request", e.what()));
      continue;
    }

    if (op == "ping") {
      if (!send_line(fd, simple_line("pong"))) break;
    } else if (op == "stats") {
      if (!send_line(fd, stats_json())) break;
    } else if (op == "status" || op == "wait") {
      if (!doc.has("job") || !doc.at("job").is_string()) {
        send_line(fd, error_line("bad_request", "'" + op + "' needs a job id"));
        continue;
      }
      JobStatusInfo st;
      const bool known = op == "wait" ? wait(doc.at("job").str, &st)
                                      : status(doc.at("job").str, &st);
      if (!known) {
        send_line(fd, error_line("unknown_job", doc.at("job").str));
        continue;
      }
      if (!send_line(fd, job_status_json(st, "status"))) break;
    } else if (op == "submit" || op == "run") {
      JobRequest req;
      try {
        if (!doc.has("job"))
          throw Error(ErrorCode::ValidationError, "'" + op + "' needs a job object");
        req = parse_job_request(doc.at("job"));
      } catch (const Error& e) {
        send_line(fd, error_line("bad_job", e.message()));
        continue;
      }
      const bool stream = op == "run" && req.progress;
      int pipe_fds[2] = {-1, -1};
      if (stream && ::pipe2(pipe_fds, O_CLOEXEC) < 0) {
        send_line(fd, error_line("internal", "pipe() failed"));
        continue;
      }
      const Admission adm = submit(req, stream ? pipe_fds[1] : -1);
      // submit() owns (and on reject closed) the write end from here on.
      if (!adm.accepted) {
        if (stream) ::close(pipe_fds[0]);
        send_line(fd, admission_line(adm));
        continue;
      }
      if (!send_line(fd, admission_line(adm))) {
        if (stream) ::close(pipe_fds[0]);
        break;
      }
      if (op == "submit") {
        continue;  // fire and forget; the client polls status/wait
      }
      if (stream) {
        // Forward the job's live NDJSON events to the client and tee them
        // into the job directory (the file a non-streaming job would have
        // written). This thread is the connection's only writer, so event
        // lines and the final result line never interleave.
        JobStatusInfo peek;
        std::string tee_path;
        if (status(adm.job_id, &peek)) tee_path = peek.dir + "/progress.ndjson";
        std::FILE* tee = tee_path.empty() ? nullptr
                                          : std::fopen(tee_path.c_str(), "w");
        char chunk[4096];
        for (;;) {
          ssize_t n;
          while ((n = ::read(pipe_fds[0], chunk, sizeof(chunk))) < 0 &&
                 errno == EINTR) {
          }
          if (n <= 0) break;
          if (tee != nullptr)
            std::fwrite(chunk, 1, static_cast<std::size_t>(n), tee);
          if (!obs::write_all_fd(fd, chunk, static_cast<std::size_t>(n))) {
            // Client went away mid-stream: keep draining so the job's
            // writes never block, keep the tee as the artifact of record.
          }
        }
        if (tee != nullptr) std::fclose(tee);
        ::close(pipe_fds[0]);
      }
      JobStatusInfo st;
      wait(adm.job_id, &st);
      if (!send_line(fd, job_status_json(st, "result"))) break;
    } else if (op == "shutdown") {
      send_line(fd, simple_line("ok"));
      request_stop();
      break;
    } else {
      send_line(fd, error_line("bad_request", "unknown op '" + op + "'"));
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lk(mu_);
  conn_fds_.erase(fd);
}

void PlacementServer::serve() {
  if (!started_)
    throw Error(ErrorCode::ValidationError, "serve() before start()");
  for (;;) {
    if (obs::interrupt_requested()) request_stop();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_) break;
    }
    pollfd p{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&p, 1, 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      request_stop();
      break;
    }
    if (pr == 0 || (p.revents & POLLIN) == 0) continue;
    int cfd;
    while ((cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC)) < 0 &&
           errno == EINTR) {
    }
    if (cfd < 0) continue;
    {
      std::lock_guard<std::mutex> lk(mu_);
      conn_fds_.insert(cfd);
      conns_.emplace_back([this, cfd] { handle_connection(cfd); });
    }
  }

  // Wind-down. Workers first: they drain the queue (submit already rejects),
  // which unblocks every connection sitting in wait(). Only then nudge idle
  // connections off their blocking read — SHUT_RD leaves in-flight response
  // writes intact — and join them.
  ::close(listen_fd_);
  listen_fd_ = -1;
  queue_cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  done_cv_.notify_all();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    conns.swap(conns_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
  ::unlink(opt_.socket_path.c_str());
  RP_INFO("rp_serve: drained (%lld job(s) completed)",
          static_cast<long long>(done_count_));
}

}  // namespace rp
