#pragma once
// Narrow-channel handling (routability lever #2).
//
// Corridors between macros (or between a macro and the die edge) that are
// narrower than a threshold own almost no routing capacity — wires must go
// over the macros at reduced track supply — yet the density force happily
// packs standard cells into them. This pass finds such channels on the
// density-bin grid and returns a per-bin capacity-scale map (1.0 = normal,
// `scale` inside a narrow channel) to feed DensityModel::apply_capacity_scale.

#include "db/design.hpp"
#include "util/grid.hpp"

namespace rp {

/// Per-bin scale factor in (0, 1]: bins lying in a free corridor narrower
/// than `max_channel_width` (die units) between macro blockages get `scale`.
/// The blockage mask is built from FIXED macros/blockages at current
/// positions.
Grid2D<double> narrow_channel_capacity_scale(const Design& d, const GridMap& bins,
                                             double max_channel_width, double scale);

/// Number of bins marked as narrow channel by the map above (diagnostics).
int count_channel_bins(const Grid2D<double>& scale_map);

}  // namespace rp
