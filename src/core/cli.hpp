#pragma once
// Command-line driver shared by the `routplace` tool.
//
// Kept in the library (rather than the tool's main.cpp) so the argument
// handling is unit-testable: parse_cli_args() maps argv to a CliConfig, and
// run_cli() executes the full flow against Bookshelf or generated input.

#include <string>
#include <vector>

#include "core/flow.hpp"

namespace rp {

struct CliConfig {
  std::string aux;           ///< Input .aux (Bookshelf). Empty: use generator.
  std::string out_pl;        ///< Output placement file (empty: <design>.rp.pl).
  std::string mode = "routability";  ///< "routability" | "wirelength".
  std::string legalizer = "abacus";  ///< "abacus" | "tetris".
  // Generator fallback when no .aux is given:
  int gen_cells = 2000;
  std::uint64_t seed = 1;
  double track_supply = 1.0;
  // Common knobs:
  double target_density = 1.0;
  int routability_rounds = 3;
  std::string wl_model;      ///< "WA" | "LSE"; empty = the mode's default.
  double inflate_rate = -1.0;  ///< Inflation step per round; < 0 = default.
  int sample_resources_ms = -1;  ///< Resource-sampler tick; 0 = off,
                                 ///< -1 = auto (RP_SAMPLE_MS env, else 25).
  int threads = 0;           ///< 0 = auto (RP_THREADS env, else hardware).
  std::string simd;          ///< "auto"|"off"|"avx2"|"neon"; empty = RP_SIMD env.
  bool incremental_eval = true;  ///< DP candidate evaluation via cached deltas.
  bool lenient = false;      ///< Bookshelf parse mode (false = strict).
  int max_gp_iters = 0;      ///< >0: cap total GP outer iterations (watchdog).
  double max_seconds = 0.0;  ///< >0: GP wall-clock budget in seconds (watchdog).
  bool skip_dp = false;
  bool profile = false;      ///< In-process profiler (also via RP_PROFILE env).
  bool verbose = false;
  bool show_map = false;     ///< Print the ASCII congestion map at the end.
  bool help = false;
  // Telemetry outputs (empty: disabled):
  std::string report_json;   ///< Structured run report (see core/run_report.hpp).
  std::string trace_json;    ///< Chrome trace-event flow trace.
  std::string progress_ndjson;  ///< Live NDJSON event stream: path, "-", "fd:N".
  std::string flight_json;   ///< Flight-recorder dump on error/crash/interrupt.
  // Spatial snapshots (see core/snapshot.hpp):
  std::string snapshot_dir;  ///< Heatmaps + convergence history directory.
  int snapshot_every = 0;    ///< >0: finest-level density map every N outers.
  bool snapshot_svg = false; ///< Also render SVG heatmaps.
};

/// Parse argv (excluding argv[0]). Throws std::runtime_error on unknown or
/// malformed options.
CliConfig parse_cli_args(const std::vector<std::string>& args);

/// Usage text.
std::string cli_usage();

/// Build FlowOptions from a parsed config.
FlowOptions cli_flow_options(const CliConfig& cfg);

/// Execute: load/generate, place, report, write the .pl.
/// Returns a process exit code following the documented contract:
///   0 = legal placement produced, 1 = flow completed but result not legal,
///   2 = CLI usage error, 3 = ParseError, 4 = ValidationError,
///   5 = NumericError, 6 = ResourceError, 7 = Interrupted (SIGINT/SIGTERM
///   acknowledged at a safe point — see util/error.hpp).
/// On an rp::Error the run report (if requested) is still written, with an
/// "error" block recording code/message/where/stage/exit_code, and the
/// flight recorder (if --flight-json is set) is dumped.
///
/// The run observes into its OWN ObsContext (created here, bound for the
/// call, named as the crash handler's dump source), so run_cli is re-entrant
/// with respect to observability state.
int run_cli(const CliConfig& cfg);

}  // namespace rp
