#include "core/channels.hpp"

#include <algorithm>

namespace rp {

Grid2D<double> narrow_channel_capacity_scale(const Design& d, const GridMap& bins,
                                             double max_channel_width, double scale) {
  const int nx = bins.nx(), ny = bins.ny();
  // Blockage mask: a bin counts as blocked when macros cover most of it.
  Grid2D<double> cover(nx, ny, 0.0);
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    // Fixed macros block; so do large fixed blockages (multi-row terminals).
    const bool macro_like =
        k.is_macro() || (k.kind == CellKind::Terminal && k.h > 2 * d.row_height());
    if (!k.fixed || !macro_like) continue;
    bins.rasterize(d.cell_rect(c), [&](int ix, int iy, double a) { cover(ix, iy) += a; });
  }
  Grid2D<char> blocked(nx, ny, 0);
  for (int iy = 0; iy < ny; ++iy)
    for (int ix = 0; ix < nx; ++ix)
      blocked(ix, iy) = cover(ix, iy) > 0.5 * bins.bin_area() ? 1 : 0;

  Grid2D<double> out(nx, ny, 1.0);
  const int max_run_x = std::max(1, static_cast<int>(max_channel_width / bins.bin_w()));
  const int max_run_y = std::max(1, static_cast<int>(max_channel_width / bins.bin_h()));

  // Horizontal scan: free runs bounded by blockage on BOTH sides (a run
  // touching the die edge only counts if the other side is a macro).
  for (int iy = 0; iy < ny; ++iy) {
    int run_start = 0;
    for (int ix = 0; ix <= nx; ++ix) {
      const bool blk = ix == nx || blocked(ix, iy);
      if (!blk) continue;
      const int run_len = ix - run_start;
      // A corridor needs a macro on at least one side (a run bounded only by
      // the two die edges is the whole row, not a channel).
      const bool left_macro = run_start > 0;
      const bool right_macro = ix < nx;
      if (run_len > 0 && run_len <= max_run_x && (left_macro || right_macro)) {
        for (int k = run_start; k < ix; ++k)
          out(k, iy) = std::min(out(k, iy), scale);
      }
      run_start = ix + 1;
    }
  }
  // Vertical scan.
  for (int ix = 0; ix < nx; ++ix) {
    int run_start = 0;
    for (int iy = 0; iy <= ny; ++iy) {
      const bool blk = iy == ny || blocked(ix, iy);
      if (!blk) continue;
      const int run_len = iy - run_start;
      const bool bottom_macro = run_start > 0;
      const bool top_macro = iy < ny;
      if (run_len > 0 && run_len <= max_run_y && (bottom_macro || top_macro)) {
        for (int k = run_start; k < iy; ++k)
          out(ix, k) = std::min(out(ix, k), scale);
      }
      run_start = iy + 1;
    }
  }
  return out;
}

int count_channel_bins(const Grid2D<double>& scale_map) {
  int n = 0;
  for (const double v : scale_map.data())
    if (v < 1.0) ++n;
  return n;
}

}  // namespace rp
