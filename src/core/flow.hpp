#pragma once
// The complete placement flow — the public top-level API.
//
//   Design d = read_bookshelf(...) or generate_benchmark(...);
//   PlacementFlow flow(routability_driven_options());
//   FlowResult r = flow.run(d);
//
// Stages: multilevel global placement (with the routability loop) → macro
// legalization & freezing → standard-cell legalization (Abacus or Tetris) →
// detailed placement (optionally congestion-aware) → evaluation with the
// global router.
//
// `wirelength_driven_options()` is the baseline of the paper's comparisons:
// identical machinery with every routability feature disabled.

#include <memory>
#include <string>

#include "core/global_placer.hpp"
#include "core/report.hpp"
#include "core/snapshot.hpp"
#include "dp/detailed.hpp"
#include "model/netlist_csr.hpp"
#include "legal/legalizer.hpp"
#include "legal/macro_legalizer.hpp"
#include "util/obs_context.hpp"
#include "util/timer.hpp"

namespace rp {

struct FlowOptions {
  GpOptions gp;
  MacroLegalizeOptions macro_legal;
  LegalizeOptions legal;
  std::string legalizer = "abacus";  ///< "abacus" or "tetris".
  DetailedPlaceOptions dp;
  bool congestion_aware_dp = true;   ///< Routability lever #3.
  double dp_congestion_weight = 0.0; ///< 0 = auto (≈ 2 row heights).
  EvalOptions eval;
  bool skip_dp = false;
  bool skip_eval = false;
  SnapshotOptions snapshot;  ///< snapshot.dir empty: spatial capture off.

  /// Observability context for this run. Two modes:
  ///  * null (default): the run uses the CURRENT thread-bound context and
  ///    RESETS its counters/profile at entry — the historical behavior that
  ///    bench loops and tests rely on (each run's report reflects that run).
  ///  * non-null: the run binds this caller-owned context for its duration
  ///    and does NOT reset it, so state accumulated before the flow (parse-
  ///    repair counters, events) flows into the run report. This is the
  ///    re-entrant mode: concurrent runs on separate contexts don't share
  ///    any observability state.
  std::shared_ptr<obs::ObsContext> obs;

  /// Optional pre-flattened design-level CSR netlist (rp_serve's design
  /// cache). When set, stages that would call NetlistCsr::from_design(d) —
  /// the congestion estimate feeding detailed placement — COPY this template
  /// instead of re-flattening. The CSR is topology-only (pin coordinates are
  /// gathered per eval), so a cached copy is valid for any design with the
  /// same netlist regardless of positions; results are byte-identical either
  /// way. Null: flatten from the design as always.
  std::shared_ptr<const NetlistCsr> design_csr;
};

/// The paper's configuration (all routability levers on).
FlowOptions routability_driven_options();
/// The comparison baseline (identical flow, routability off).
FlowOptions wirelength_driven_options();

struct FlowResult {
  GpStats gp;
  MacroLegalizeStats macro_legal;
  LegalizeStats legal;
  DetailedPlaceStats dp;
  EvalResult eval;
  StageTimes times;
  std::vector<GpTracePoint> gp_trace;
  std::string snapshot_dir;  ///< Where snapshots landed (empty: disabled).
  /// The context this run observed into (FlowOptions::obs, or null when the
  /// run used the thread's current context). run_report_json reads counters
  /// and event totals through this, so building a report for run A while
  /// run B is bound stays correct.
  std::shared_ptr<obs::ObsContext> obs;
};

class PlacementFlow {
 public:
  explicit PlacementFlow(FlowOptions opt = routability_driven_options()) : opt_(opt) {}

  /// Place the design end to end (positions are modified in place; movable
  /// macros end up fixed).
  FlowResult run(Design& d);

  const FlowOptions& options() const { return opt_; }

 private:
  FlowOptions opt_;
};

}  // namespace rp
