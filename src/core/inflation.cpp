#include "core/inflation.hpp"

#include <algorithm>
#include <cmath>

#include "util/logger.hpp"
#include "util/telemetry.hpp"

namespace rp {

double mean_inflation(const PlaceProblem& prob) {
  double a = 0.0, ai = 0.0;
  for (int v = 0; v < prob.num_nodes(); ++v) {
    const auto& n = prob.nodes[static_cast<std::size_t>(v)];
    if (n.fixed) continue;
    a += n.area();
    ai += n.area() * prob.inflate[static_cast<std::size_t>(v)];
  }
  return a > 0 ? ai / a : 1.0;
}

InflationResult apply_congestion_inflation(PlaceProblem& prob, const RoutingGrid& grid,
                                           double rate, double max_inflate,
                                           double max_total_budget) {
  const Grid2D<double> cong = grid.tile_congestion();
  const GridMap& m = grid.map();

  double movable_area = 0.0;
  double current_extra = 0.0;
  for (int v = 0; v < prob.num_nodes(); ++v) {
    const auto& n = prob.nodes[static_cast<std::size_t>(v)];
    if (n.fixed) continue;
    movable_area += n.area();
    current_extra += n.area() * (prob.inflate[static_cast<std::size_t>(v)] - 1.0);
  }
  const double budget_area = max_total_budget * movable_area;

  // Desired increments.
  std::vector<double> want(prob.nodes.size(), 0.0);
  double want_total = 0.0;
  for (int v = 0; v < prob.num_nodes(); ++v) {
    const auto& n = prob.nodes[static_cast<std::size_t>(v)];
    if (n.fixed || n.macro) continue;
    const double util = cong(m.ix_of(prob.x[static_cast<std::size_t>(v)]),
                             m.iy_of(prob.y[static_cast<std::size_t>(v)]));
    if (util <= 1.0) continue;
    const double cur = prob.inflate[static_cast<std::size_t>(v)];
    const double target = std::min(max_inflate, cur * (1.0 + rate * (util - 1.0)));
    if (target > cur) {
      want[static_cast<std::size_t>(v)] = (target - cur) * n.area();
      want_total += want[static_cast<std::size_t>(v)];
    }
  }

  // Budget scaling.
  double scale = 1.0;
  const double room = budget_area - current_extra;
  if (want_total > room) scale = room > 0 ? room / want_total : 0.0;

  InflationResult res;
  for (int v = 0; v < prob.num_nodes(); ++v) {
    if (want[static_cast<std::size_t>(v)] <= 0.0) continue;
    const auto& n = prob.nodes[static_cast<std::size_t>(v)];
    prob.inflate[static_cast<std::size_t>(v)] +=
        scale * want[static_cast<std::size_t>(v)] / n.area();
    ++res.cells_inflated;
  }
  res.mean_inflation = mean_inflation(prob);
  res.budget_used = movable_area > 0
                        ? (current_extra + scale * std::min(want_total, std::max(0.0, room))) /
                              movable_area
                        : 0.0;
  RP_COUNT("gp.inflation_passes", 1);
  RP_COUNT("gp.cells_inflated", res.cells_inflated);
  RP_GAUGE("gp.inflation_budget_used", res.budget_used);
  RP_DEBUG("inflation: %d cells grown (scale %.2f), mean factor %.3f", res.cells_inflated,
           scale, res.mean_inflation);
  return res;
}

}  // namespace rp
