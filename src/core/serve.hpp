#pragma once
// rp_serve — resident placement-as-a-service daemon.
//
// A PlacementServer listens on a unix-domain socket and runs placement jobs
// in-process: one newline-delimited JSON request per line, one (or more, for
// streaming ops) newline-delimited JSON response lines back. Keeping the
// placer resident buys two things a one-shot `routplace` cannot offer:
//
//  * a DESIGN CACHE — parsed Bookshelf designs and their flattened CSR
//    netlists are kept keyed by input content hash, so a repeat job skips
//    parse + flatten entirely (job status reports `cache_hit`);
//  * CONCURRENT JOBS on the per-run observability contexts introduced with
//    the re-entrancy work: every job binds its own ObsContext, so counters,
//    events, reports and progress streams never bleed between jobs, and the
//    deterministic thread pool guarantees each job's results are
//    BYTE-IDENTICAL to a standalone `routplace` run with the same flags
//    (serve_smoke.py asserts exactly that).
//
// Wire protocol (schema "rp_serve", v1). Requests are single-line JSON
// objects with an "op":
//
//   {"op":"ping"}                        -> {"type":"pong"}
//   {"op":"stats"}                       -> {"type":"stats", ...}
//   {"op":"submit","job":{...}}          -> {"type":"accepted","job":"j0001"}
//                                           | {"type":"reject","reason":...}
//   {"op":"status","job":"j0001"}        -> {"type":"status", ...}
//   {"op":"wait","job":"j0001"}          -> blocks; {"type":"status", ...}
//   {"op":"run","job":{...}}             -> {"type":"accepted",...}, then —
//                                           when the job asked for
//                                           "progress":true — the job's live
//                                           NDJSON event stream forwarded
//                                           line by line, then a final
//                                           {"type":"result", ...}
//   {"op":"shutdown"}                    -> {"type":"ok"}; stop accepting,
//                                           drain running+queued jobs, exit
//
// A job object carries the same knobs as the routplace command line (keys
// "aux", "gen", "seed", "mode", "rounds", ...; see parse_job_request), and
// is validated THROUGH parse_cli_args, so a job request and a CLI invocation
// can never drift apart. Orchestrator-owned outputs (--out, --report-json,
// --progress-ndjson, ...) are not accepted: every job writes a fixed
// artifact set into its own directory under <work_dir>/jobs/<id>/
// (report.json, out.pl, progress.ndjson, flight.json on error).
//
// Job failures are RESULTS, not connection errors: a finished job's status
// carries the documented exit-code contract lifted to structured form
// (exit_code + sweep_status_name(exit_code) + the report's "error" block),
// exactly like a campaign manifest entry. Admission control is structured
// too: a full queue or a draining server answers {"type":"reject"} with a
// machine-readable reason instead of accepting work it cannot schedule.
//
// Scheduling: `max_jobs` worker threads pull from a FIFO queue, gated by a
// WEIGHTED BUDGET — each job declares "threads" (clamped to the server's
// total), and a job starts only while the sum of running budgets fits the
// total. Results never depend on the budget (the kernels' thread-count
// invariance), so the budget is purely a co-scheduling knob: a heavy job can
// reserve the machine, light jobs can share it.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cli.hpp"
#include "db/design.hpp"
#include "model/netlist_csr.hpp"
#include "util/json.hpp"

namespace rp {

// ----------------------------------------------------------------- requests

/// One placement job, as submitted over the wire (or built directly by
/// tests). `cfg` is produced by parse_cli_args from the request's fields, so
/// job semantics are exactly CLI semantics; orchestration outputs stay empty.
struct JobRequest {
  std::string label;   ///< Free-form client tag, echoed in status lines.
  bool progress = false;  ///< Stream the live NDJSON events over the socket.
  int threads = 1;     ///< Scheduling budget (weight), NOT kernel width;
                       ///< clamped to [1, ServeOptions::thread_budget].
  CliConfig cfg;       ///< Validated flow configuration.
};

/// Parse + validate a wire job object. Unknown keys, wrong value types and
/// anything parse_cli_args would reject all throw Error(ValidationError) —
/// a malformed job is a structured reject, never a crash (the protocol
/// parser runs under ASan/UBSan in CI against hostile inputs).
JobRequest parse_job_request(const JsonValue& job);

// ------------------------------------------------------------- design cache

/// What the cache keeps per distinct input: the parsed design, the flattened
/// design-level CSR (FlowOptions::design_csr), and the ACQUISITION-TIME
/// observability to REPLAY on a hit — a cache hit must leave the job's
/// report and event stream byte-identical to a cold run, so everything the
/// skipped phase would have recorded (parse-repair counters, the
/// generator's probe-estimate counters, the ParseRepair event) is re-applied
/// to the hitting job's context instead of being silently lost.
struct DesignCacheEntry {
  Design design;
  std::shared_ptr<const NetlistCsr> csr;
  bool bookshelf = false;       ///< Generated inputs replay no parse event.
  std::string parse_label;      ///< "strict" | "lenient".
  std::int64_t repair_total = 0;
  /// Full counter/gauge state of the acquiring job's context, snapshotted
  /// between design acquisition and flow start.
  std::vector<std::pair<std::string, std::int64_t>> pre_counters;
  std::vector<std::pair<std::string, double>> pre_gauges;
};

/// Content-addressed key for a job's input: for Bookshelf, an FNV-1a hash
/// over the .aux file and every file it references (so editing any input
/// file in place misses cleanly) plus the parse mode; for generated input,
/// the generator parameters verbatim. Throws Error(ResourceError) when the
/// .aux file cannot be read — the same failure the parse would report.
std::string design_cache_key(const CliConfig& cfg);

/// Thread-safe LRU cache over DesignCacheEntry, capacity-bounded by entry
/// count (designs dominate the footprint; the operator sizes it via
/// --cache). Entries are shared_ptr-held: eviction never invalidates a
/// running job's copy.
class DesignCache {
 public:
  explicit DesignCache(int capacity) : capacity_(capacity < 0 ? 0 : capacity) {}

  /// nullptr on miss (counts it); moves a hit to the LRU front (counts it).
  std::shared_ptr<const DesignCacheEntry> lookup(const std::string& key);
  /// Insert (or refresh) and evict past capacity. No-op at capacity 0.
  void insert(const std::string& key, std::shared_ptr<const DesignCacheEntry> e);

  struct Stats {
    std::int64_t hits = 0, misses = 0;
    int entries = 0, capacity = 0;
  };
  Stats stats() const;

 private:
  const int capacity_;
  mutable std::mutex mu_;
  std::int64_t hits_ = 0, misses_ = 0;
  std::list<std::string> lru_;  ///< Front = most recent.
  std::map<std::string, std::pair<std::shared_ptr<const DesignCacheEntry>,
                                  std::list<std::string>::iterator>>
      map_;
};

// ----------------------------------------------------------------- statuses

/// A finished (or in-flight) job's structured status: the exit-code contract
/// lifted off the process boundary, mirroring a sweep manifest entry, plus
/// the serve-only `cache_hit` flag (deliberately NOT in the run report — the
/// report stays byte-identical to a one-shot run; whether the parse was
/// cached is service state, not placement state).
struct JobStatusInfo {
  std::string id;
  std::string label;
  std::string state = "done";  ///< "queued" | "running" | "done".
  int exit_code = 0;
  std::string status;          ///< sweep_status_name(exit_code).
  bool cache_hit = false;
  bool legal = false;
  double hpwl = 0.0;
  double scaled_hpwl = 0.0;
  double overflow = 0.0;
  std::string dir;             ///< Artifact directory.
  bool has_error = false;      ///< Report carried an "error" block:
  std::string error_code, error_message, error_where, error_stage;
};

/// One status line (schema "rp_serve" v1); `type` is "status" or "result".
std::string job_status_json(const JobStatusInfo& st, const std::string& type);

/// Execute one job in the CALLING thread on a fresh ObsContext: resolve the
/// design (cache or parse/generate — `cache` may be null), run the flow,
/// write report.json + out.pl (+ flight.json on error) into `job_dir`, and
/// return the structured status (id/label/state left for the caller).
///
/// `progress_fd` >= 0 streams the job's NDJSON events there and CLOSES it on
/// every exit path (the reader relies on EOF); < 0 writes
/// `job_dir`/progress.ndjson instead. Does NOT touch the process-global
/// interrupt flag: a server-wide SIGINT makes every in-flight job unwind
/// with the documented Interrupted contract (exit 7, partial report).
JobStatusInfo execute_serve_job(const JobRequest& req, const std::string& job_dir,
                                DesignCache* cache, int progress_fd = -1);

// ------------------------------------------------------------------- server

struct ServeOptions {
  std::string socket_path;   ///< Unix-domain socket to bind (required).
  std::string work_dir = "rp_serve_work";  ///< Artifacts: <dir>/jobs/<id>/.
  int max_jobs = 2;          ///< Worker threads = max concurrently RUNNING jobs.
  int queue_cap = 8;         ///< Max WAITING jobs; beyond -> structured reject.
  int thread_budget = 0;     ///< Total job-budget pool; 0 = the thread pool's
                             ///< resolved size (jobs co-schedule inside it).
  int cache_capacity = 8;    ///< Design-cache entries; 0 disables caching.
};

class PlacementServer {
 public:
  explicit PlacementServer(const ServeOptions& opt);
  ~PlacementServer();
  PlacementServer(const PlacementServer&) = delete;
  PlacementServer& operator=(const PlacementServer&) = delete;

  /// Create the work directory, bind + listen on the socket, start the
  /// worker threads. Throws Error(ResourceError/ValidationError) on setup
  /// failure. Must be called exactly once, before serve()/submit().
  void start();

  /// Accept loop: runs until shutdown (op or request_stop()) or a process
  /// interrupt (SIGINT/SIGTERM via obs::request_interrupt), then drains all
  /// accepted jobs and joins every thread before returning.
  void serve();

  /// Ask the accept loop to wind down (safe from any thread).
  void request_stop();

  // Direct (socket-less) API: what the connection handlers call, exposed so
  // tests can drive scheduling, admission and caching in-process.
  struct Admission {
    bool accepted = false;
    std::string job_id;   ///< Accepted only.
    std::string reason;   ///< "queue_full" | "shutting_down" (reject only).
    int queued = 0;       ///< Queue depth after the decision.
    int running = 0;
  };
  /// Enqueue a job (takes ownership of `progress_fd` — the job closes it).
  Admission submit(const JobRequest& req, int progress_fd = -1);
  /// Block until `job_id` finishes; false = unknown id.
  bool wait(const std::string& job_id, JobStatusInfo* out);
  /// Snapshot a job's current status; false = unknown id.
  bool status(const std::string& job_id, JobStatusInfo* out) const;
  /// One {"type":"stats"} line: scheduling + cache counters.
  std::string stats_json() const;

  DesignCache& cache() { return cache_; }
  const ServeOptions& options() const { return opt_; }

 private:
  struct Job {
    std::string id;
    JobRequest req;
    int budget = 1;
    int progress_fd = -1;
    std::string dir;
    enum class State { Queued, Running, Done } state = State::Queued;
    JobStatusInfo result;
  };

  void worker_main();
  void handle_connection(int fd);
  int budget_left_locked() const;
  JobStatusInfo snapshot_locked(const Job& j) const;

  ServeOptions opt_;
  DesignCache cache_;
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< Queue/budget changes -> workers.
  std::condition_variable done_cv_;   ///< Job completion -> wait().
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  int budget_in_use_ = 0;
  int running_ = 0;
  std::uint64_t next_id_ = 1;
  std::int64_t done_count_ = 0;
  bool stop_ = false;
  bool started_ = false;
  int listen_fd_ = -1;
  std::vector<std::thread> workers_;
  std::vector<std::thread> conns_;
  std::set<int> conn_fds_;
};

}  // namespace rp
