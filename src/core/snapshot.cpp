#include "core/snapshot.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "util/json.hpp"
#include "util/logger.hpp"

namespace rp {

namespace {

/// Stage/name fragments become file names; keep them path-safe.
std::string sanitize(std::string s) {
  for (char& c : s)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.')) c = '_';
  return s;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    RP_ERROR("snapshot: cannot open '%s'", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fputc('\n', f);
  std::fclose(f);
  if (!ok) RP_ERROR("snapshot: short write to '%s'", path.c_str());
  return ok;
}

}  // namespace

SnapshotRecorder::SnapshotRecorder(SnapshotOptions opt) : opt_(std::move(opt)) {
  if (opt_.dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(opt_.dir) / "maps", ec);
  if (ec) {
    RP_ERROR("snapshot: cannot create '%s': %s", opt_.dir.c_str(),
             ec.message().c_str());
    return;
  }
  ok_ = true;
}

SnapshotRecorder::~SnapshotRecorder() {
  if (ok_ && !finalized_) finalize();
}

void SnapshotRecorder::record_grid(const std::string& stage, const std::string& name,
                                   const Grid2D<double>& g) {
  if (!ok_) return;
  MapEntry e;
  e.seq = seq_++;
  e.stage = stage;
  e.name = name;
  e.nx = g.nx();
  e.ny = g.ny();
  e.stats = grid_stats(g);
  char base[256];
  std::snprintf(base, sizeof base, "maps/%03d_%s_%s", e.seq, sanitize(stage).c_str(),
                sanitize(name).c_str());
  e.grid_rel = std::string(base) + ".grid";
  write_grid_bin(opt_.dir + "/" + e.grid_rel, g);
  if (opt_.render_ppm) {
    e.ppm_rel = std::string(base) + ".ppm";
    write_grid_ppm(opt_.dir + "/" + e.ppm_rel, g);
  }
  if (opt_.render_svg) {
    e.svg_rel = std::string(base) + ".svg";
    write_grid_svg(opt_.dir + "/" + e.svg_rel, g);
  }
  maps_.push_back(std::move(e));
}

void SnapshotRecorder::record_point(const ConvergencePoint& p) {
  if (ok_) points_.push_back(p);
}

void SnapshotRecorder::record_round(const SnapshotRoundRecord& r) {
  if (ok_) rounds_.push_back(r);
}

bool SnapshotRecorder::finalize() {
  if (!ok_ || finalized_) return ok_;
  finalized_ = true;

  JsonWriter conv(2);
  conv.begin_object();
  conv.kv("schema_version", 1);
  conv.key("points").begin_array();
  for (const ConvergencePoint& p : points_) {
    conv.begin_object();
    conv.kv("level", p.level);
    conv.kv("round", p.round);
    conv.kv("outer", p.outer);
    conv.kv("hpwl", p.hpwl);
    conv.kv("overflow", p.overflow);
    conv.kv("lambda", p.lambda);
    conv.kv("gamma", p.gamma);
    conv.kv("inflation", p.inflation);
    conv.end_object();
  }
  conv.end_array();
  conv.key("rounds").begin_array();
  for (const SnapshotRoundRecord& r : rounds_) {
    conv.begin_object();
    conv.kv("round", r.round);
    conv.kv("rc", r.congestion.rc);
    conv.kv("ace_005", r.congestion.ace_005);
    conv.kv("ace_1", r.congestion.ace_1);
    conv.kv("ace_2", r.congestion.ace_2);
    conv.kv("ace_5", r.congestion.ace_5);
    conv.kv("peak_utilization", r.congestion.peak_utilization);
    conv.kv("total_overflow", r.congestion.total_overflow);
    conv.kv("overflowed_edges", r.congestion.overflowed_edges);
    conv.kv("cells_inflated", r.cells_inflated);
    conv.kv("mean_inflation", r.mean_inflation);
    conv.end_object();
  }
  conv.end_array();
  conv.end_object();
  bool ok = write_text_file(opt_.dir + "/convergence.json", conv.str());

  JsonWriter man(2);
  man.begin_object();
  man.kv("schema_version", 1);
  man.kv("tool", "routplace-snapshot");
  man.kv("convergence", "convergence.json");
  man.kv("num_points", static_cast<int>(points_.size()));
  man.kv("num_rounds", static_cast<int>(rounds_.size()));
  man.key("maps").begin_array();
  for (const MapEntry& e : maps_) {
    man.begin_object();
    man.kv("seq", e.seq);
    man.kv("stage", e.stage);
    man.kv("name", e.name);
    man.kv("grid", e.grid_rel);
    if (!e.ppm_rel.empty()) man.kv("ppm", e.ppm_rel);
    if (!e.svg_rel.empty()) man.kv("svg", e.svg_rel);
    man.kv("nx", e.nx);
    man.kv("ny", e.ny);
    man.kv("min", e.stats.min);
    man.kv("max", e.stats.max);
    man.kv("mean", e.stats.mean);
    man.kv("non_finite", e.stats.non_finite);
    man.end_object();
  }
  man.end_array();
  man.end_object();
  ok = write_text_file(opt_.dir + "/manifest.json", man.str()) && ok;
  RP_INFO("snapshot: %d maps, %d convergence points -> '%s'",
          static_cast<int>(maps_.size()), static_cast<int>(points_.size()),
          opt_.dir.c_str());
  return ok;
}

Grid2D<double> inflation_map(const PlaceProblem& p, const GridMap& gm) {
  Grid2D<double> wsum(gm.nx(), gm.ny(), 0.0);  // Σ area·inflate
  Grid2D<double> asum(gm.nx(), gm.ny(), 0.0);  // Σ area
  for (int v = 0; v < p.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const PlaceNode& n = p.nodes[vi];
    if (n.fixed || n.area() <= 0) continue;
    const Rect r{p.x[vi] - 0.5 * n.w, p.y[vi] - 0.5 * n.h, p.x[vi] + 0.5 * n.w,
                 p.y[vi] + 0.5 * n.h};
    gm.rasterize(r, [&](int ix, int iy, double a) {
      wsum(ix, iy) += a * p.inflate[vi];
      asum(ix, iy) += a;
    });
  }
  Grid2D<double> out(gm.nx(), gm.ny(), 1.0);
  for (std::size_t i = 0; i < out.data().size(); ++i)
    if (asum.data()[i] > 0) out.data()[i] = wsum.data()[i] / asum.data()[i];
  return out;
}

Grid2D<double> displacement_map(const PlaceProblem& p, const std::vector<double>& x0,
                                const std::vector<double>& y0, const GridMap& gm) {
  Grid2D<double> dsum(gm.nx(), gm.ny(), 0.0);
  Grid2D<double> cnt(gm.nx(), gm.ny(), 0.0);
  for (int v = 0; v < p.num_nodes(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    if (p.nodes[vi].fixed || vi >= x0.size()) continue;
    const double dx = p.x[vi] - x0[vi], dy = p.y[vi] - y0[vi];
    const int ix = gm.ix_of(p.x[vi]), iy = gm.iy_of(p.y[vi]);
    dsum(ix, iy) += std::hypot(dx, dy);
    cnt(ix, iy) += 1.0;
  }
  Grid2D<double> out(gm.nx(), gm.ny(), 0.0);
  for (std::size_t i = 0; i < out.data().size(); ++i)
    if (cnt.data()[i] > 0) out.data()[i] = dsum.data()[i] / cnt.data()[i];
  return out;
}

Grid2D<double> displacement_map(const Design& d, const std::vector<Point>& before,
                                const GridMap& gm) {
  Grid2D<double> dsum(gm.nx(), gm.ny(), 0.0);
  Grid2D<double> cnt(gm.nx(), gm.ny(), 0.0);
  for (CellId c = 0; c < d.num_cells(); ++c) {
    if (d.cell(c).fixed || static_cast<std::size_t>(c) >= before.size()) continue;
    const Point now = d.cell_center(c);
    const Point was = before[static_cast<std::size_t>(c)];
    const int ix = gm.ix_of(now.x), iy = gm.iy_of(now.y);
    dsum(ix, iy) += std::hypot(now.x - was.x, now.y - was.y);
    cnt(ix, iy) += 1.0;
  }
  Grid2D<double> out(gm.nx(), gm.ny(), 0.0);
  for (std::size_t i = 0; i < out.data().size(); ++i)
    if (cnt.data()[i] > 0) out.data()[i] = dsum.data()[i] / cnt.data()[i];
  return out;
}

}  // namespace rp
