#pragma once
// Build/version provenance stamped into every run report, so a report (and a
// rp_report_diff between two reports) identifies the binary that produced
// it. Values are injected by src/core/CMakeLists.txt at configure time;
// builds outside git fall back to "unknown".

#include <string>

namespace rp {

struct BuildInfo {
  std::string git_describe;  ///< `git describe --always --dirty --tags`.
  std::string compiler;      ///< e.g. "GNU 12.2.0".
  std::string build_type;    ///< CMAKE_BUILD_TYPE.
  std::string flags;         ///< Effective CXX flags for that build type.
  long cxx_standard = 0;     ///< __cplusplus of the build.
};

/// The process's immutable build stamp.
const BuildInfo& build_info();

}  // namespace rp
