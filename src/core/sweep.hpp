#pragma once
// Campaign orchestration for `rp_sweep` — cross-run observability.
//
// A CAMPAIGN is a cartesian grid of routplace configurations × seeds,
// described by one JSON spec:
//
//   {
//     "name": "ablation",
//     "base": { "gen": 2000, "rounds": 3 },          // fixed flags
//     "axes": { "mode": ["routability", "wirelength"],
//               "threads": [1, 4] },                 // varied flags
//     "seeds": [1, 2, 3]
//   }
//
// Axis/base values map to CLI arguments by JSON type: a string or number is
// a flag WITH a value ("--mode routability"), `true` is a bare flag
// ("--skip-dp"), and `null`/`false` OMITS the flag for that cell — which is
// how a grid can mix, say, a generator leg with a deliberately failing
// `--aux bad.aux` leg. Flags are allowlisted: output/orchestration flags
// (--out, --report-json, --seed, ...) belong to the orchestrator and are
// rejected in a spec.
//
// rp_sweep expands the grid, fans runs out across CHILD PROCESSES (at most
// --jobs concurrent), and captures every run's artifacts into a
// deterministic directory layout:
//
//   <campaign>/campaign.json              manifest (schema "rp_campaign" v1)
//   <campaign>/runs/<cell>__s<seed>/      one directory per run:
//       out.pl report.json progress.ndjson bench.jsonl (RP_BENCH_JSON)
//       flight.json (error exits) stdout.log stderr.log status.json
//
// FAILED RUNS ARE RECORDED, NEVER DROPPED: the manifest entry carries the
// child's exit code mapped through the documented exit-code contract
// (util/error.hpp) plus the "error" block copied from the run report, and
// the flight dump stays in the run directory.
//
// DETERMINISM + RESUME. The manifest contains no timestamps or durations —
// for a deterministic placer, two invocations of the same spec produce
// byte-identical campaign.json files (the sweep_smoke ctest enforces this).
// Each run directory gets a status.json after its child exits; re-running a
// campaign directory skips every run whose status.json matches its id+args,
// so re-running a FINISHED campaign is a no-op that only rewrites the
// (identical) manifest.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rp {

/// One axis value, already resolved from its JSON form.
struct AxisValue {
  enum class Kind {
    Omit,   ///< JSON null/false: flag absent in this cell.
    Flag,   ///< JSON true: bare "--flag".
    Value,  ///< JSON string/number: "--flag <text>".
  };
  Kind kind = Kind::Value;
  std::string text;   ///< CLI value (Kind::Value only).
  std::string label;  ///< Cell-id fragment ("off" / "on" / sanitized text).
};

struct SweepAxis {
  std::string flag;  ///< routplace option name, no leading "--".
  std::vector<AxisValue> values;
};

struct SweepSpec {
  std::string name = "campaign";
  std::vector<std::pair<std::string, AxisValue>> base;  ///< Sorted by flag.
  std::vector<SweepAxis> axes;                          ///< Sorted by flag.
  std::vector<std::uint64_t> seeds;                     ///< Spec order.
};

/// One expanded run of the grid.
struct SweepRun {
  std::string id;    ///< "<cell>__s<seed>" — the directory name under runs/.
  std::string cell;  ///< Grid-cell id (axes only; seed excluded).
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, std::string>> config;  ///< axis -> label.
  std::vector<std::string> args;  ///< routplace args (orchestrator output
                                  ///< flags NOT included; run_campaign adds
                                  ///< --out/--report-json/... itself).
};

/// What one run came to. `skipped` marks a resume hit (status.json matched).
struct SweepRunResult {
  SweepRun run;
  bool skipped = false;
  int exit_code = 0;
  std::string status;  ///< sweep_status_name(exit_code).
  bool has_report = false;
  bool has_progress = false;
  bool has_bench = false;
  bool has_flight = false;
  bool has_error = false;  ///< Report carried an "error" block:
  std::string error_code, error_message, error_where, error_stage;
};

/// Parse + validate a campaign spec document. `where` names the source (a
/// path) for error messages. Throws Error(ParseError) on malformed JSON and
/// Error(ValidationError) on a structurally valid spec that asks for
/// something illegal (unknown/reserved flag, bad seed, empty axis, ...).
SweepSpec parse_sweep_spec(const std::string& text, const std::string& where);

/// Deterministic cartesian expansion: first axis varies slowest, seeds
/// innermost. Calling twice yields identical vectors.
std::vector<SweepRun> expand_grid(const SweepSpec& spec);

/// Child-process self-reported failures on the fork/exec path (shell
/// convention territory, deliberately above the taxonomy's 3..7): the child
/// could not redirect its stdio into the run directory, or execv failed.
inline constexpr int kSpawnRedirectFailed = 126;
inline constexpr int kSpawnExecFailed = 127;

/// Exit code -> stable status name: 0 "ok", 1 "not_legal", 2 "usage_error",
/// 3..7 the error-taxonomy code names ("ParseError", ...), 126/127
/// "spawn_redirect_failed"/"spawn_exec_failed", 128+N "signal_N", anything
/// else "failed_<code>".
std::string sweep_status_name(int exit_code);

/// Serialize the campaign manifest (schema "rp_campaign" v1). Deterministic:
/// contains no timestamps, durations, or host state.
std::string campaign_manifest_json(const SweepSpec& spec,
                                   const std::vector<SweepRunResult>& results,
                                   int indent = 2);

/// Serialize one run's status.json (schema "rp_run_status" v1).
std::string run_status_json(const SweepRunResult& r);

/// True when `status_json_text` parses as a status document for exactly this
/// run (same id AND same args) — the resume-safety predicate.
bool run_status_matches(const std::string& status_json_text, const SweepRun& run);

struct SweepOptions {
  std::string spec_path;  ///< Campaign spec JSON.
  std::string out_dir;    ///< Campaign directory (created if missing).
  std::string routplace;  ///< Path to the routplace binary.
  int jobs = 0;           ///< Max concurrent children; <= 0 = hardware.
  bool dry_run = false;   ///< Expand + print, execute nothing, write nothing.
};

struct SweepOutcome {
  std::string name;     ///< Campaign name (from the spec).
  int executed = 0;     ///< Children actually spawned.
  int skipped = 0;      ///< Resume hits.
  int ok = 0;           ///< status == "ok".
  int failed = 0;       ///< Everything else.
  std::vector<SweepRunResult> results;  ///< Grid order.
};

/// Execute a campaign end to end: read the spec, expand, fan out, capture,
/// write per-run status.json files and the campaign.json manifest. Throws
/// Error for spec/setup problems (unreadable spec, unwritable directory,
/// missing binary); per-run failures are RESULTS, not exceptions.
SweepOutcome run_campaign(const SweepOptions& opt);

}  // namespace rp
