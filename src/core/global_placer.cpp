#include "core/global_placer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include <memory>
#include <string>

#include "core/channels.hpp"
#include "core/inflation.hpp"
#include "core/snapshot.hpp"
#include "route/estimator.hpp"
#include "route/metrics.hpp"
#include "solver/cg.hpp"
#include "model/objective.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace rp {

namespace {

/// Initial coordinates for a level's movable nodes: all gathered at the
/// centroid of fixed pins (or the die center) with a small deterministic
/// spread so nets have non-degenerate gradients.
void initial_positions(PlaceProblem& p, Rng& rng) {
  double fx = 0.0, fy = 0.0;
  int nf = 0;
  for (int v = 0; v < p.num_nodes(); ++v) {
    if (!p.nodes[static_cast<std::size_t>(v)].fixed) continue;
    fx += p.x[static_cast<std::size_t>(v)];
    fy += p.y[static_cast<std::size_t>(v)];
    ++nf;
  }
  Point c = nf > 0 ? Point{fx / nf, fy / nf} : p.die.center();
  // Keep the start strictly inside the die.
  c.x = std::clamp(c.x, p.die.lx + 0.3 * p.die.width(), p.die.hx - 0.3 * p.die.width());
  c.y = std::clamp(c.y, p.die.ly + 0.3 * p.die.height(), p.die.hy - 0.3 * p.die.height());
  const double rx = 0.12 * p.die.width(), ry = 0.12 * p.die.height();
  for (int v = 0; v < p.num_nodes(); ++v) {
    if (p.nodes[static_cast<std::size_t>(v)].fixed) continue;
    p.x[static_cast<std::size_t>(v)] = c.x + rng.uniform(-rx, rx);
    p.y[static_cast<std::size_t>(v)] = c.y + rng.uniform(-ry, ry);
  }
  p.clamp_to_die();
}

}  // namespace

GlobalPlacer::LevelResult GlobalPlacer::place_level(PlaceProblem& prob,
                                                    DensityModel& dens,
                                                    WirelengthModel& wl,
                                                    double stop_overflow, int level_tag,
                                                    double inflation_mean,
                                                    bool wl_warm_start, double lambda0,
                                                    int max_outer) {
  PlacementObjective obj(prob, wl, dens);
  const double bin_w = dens.grid().bin_w();
  const double bin_h = dens.grid().bin_h();

  // γ schedule across the outer loop.
  const double g0 = opt_.gamma_init_bins * std::max(bin_w, bin_h);
  const double g1 = opt_.gamma_final_bins * std::max(bin_w, bin_h);

  CgOptions cgo;
  cgo.max_iters = opt_.cg_iters;
  cgo.trust_radius = opt_.trust_bins * std::max(bin_w, bin_h);
  cgo.f_rel_tol = 1e-5;
  cgo.max_backtracks = 4;

  // Stage label for numeric-guard diagnostics ("gp/level2", "gp/reheat1").
  const std::string stage = level_tag >= 0
                                ? "gp/level" + std::to_string(level_tag)
                                : "gp/reheat" + std::to_string(-level_tag);

  // Wirelength-only warm start (few iterations, λ = 0).
  if (wl_warm_start) {
    wl.set_gamma(g0);
    obj.set_lambda(0.0);
    std::vector<double> z = obj.pack();
    CgOptions warm = cgo;
    warm.max_iters = opt_.cg_iters / 2;
    minimize_cg_guarded([&](std::span<const double> zz, std::span<double> g) {
      return obj.eval(zz, g);
    }, z, warm, stage + "/warm");
    obj.unpack(z);
  }

  double lambda = lambda0 > 0 ? lambda0 : 0.3 * obj.balanced_lambda();
  LevelResult res;
  std::vector<double> recent;  // overflow history for plateau detection
  int outer = 0;
  for (; outer < max_outer; ++outer) {
    obs::check_interrupt();  // one CG solve per outer: a cheap, safe poll point
    if (watchdog_tripped()) break;
    const double t = static_cast<double>(outer) / std::max(1, max_outer - 1);
    const double gamma = g0 * std::pow(g1 / g0, t);
    wl.set_gamma(gamma);
    obj.set_lambda(lambda);

    std::vector<double> z = obj.pack();
    minimize_cg_guarded([&](std::span<const double> zz, std::span<double> g) {
      return obj.eval(zz, g);
    }, z, cgo, stage);
    obj.unpack(z);

    ++outers_done_;
    RP_COUNT("gp.outer_iters", 1);
    const double ovfl = dens.overflow(prob);
    GpTracePoint tp;
    tp.level = level_tag;
    tp.outer = outer;
    tp.hpwl = prob.hpwl();
    tp.overflow = ovfl;
    tp.lambda = lambda;
    tp.inflation = inflation_mean;
    trace_.push_back(tp);
    {
      // Convergence point on the event bus: the payload mirrors GpTracePoint
      // (pure function of the computation — deterministic across threads).
      obs::EventBus& bus = obs::events();
      char tag[24];
      if (level_tag >= 0) std::snprintf(tag, sizeof tag, "level%d", level_tag);
      else std::snprintf(tag, sizeof tag, "reheat%d", -level_tag);
      obs::Event e = bus.make(obs::EventKind::GpIter, tag);
      e.i0 = level_tag;
      e.i1 = outer;
      e.d0 = tp.hpwl;
      e.d1 = ovfl;
      e.d2 = lambda;
      e.d3 = inflation_mean;
      bus.emit(e);
    }
    if (opt_.snapshot != nullptr) {
      ConvergencePoint cp;
      cp.level = level_tag >= 0 ? level_tag : 0;
      cp.round = level_tag < 0 ? -level_tag : 0;
      cp.outer = outer;
      cp.hpwl = tp.hpwl;
      cp.overflow = ovfl;
      cp.lambda = lambda;
      cp.gamma = gamma;
      cp.inflation = inflation_mean;
      opt_.snapshot->record_point(cp);
      const int every = opt_.snapshot->options().density_every;
      if (every > 0 && level_tag == 0 && outer % every == 0) {
        char nm[48];
        std::snprintf(nm, sizeof nm, "density_o%03d", outer);
        opt_.snapshot->record_grid("level0", nm, dens.rasterized_density(prob));
      }
    }
    if (opt_.verbose)
      RP_INFO("  gp L%d outer %2d: hpwl %.3e overflow %.3f lambda %.2e", level_tag, outer,
              tp.hpwl, ovfl, lambda);
    if (ovfl <= stop_overflow) {
      ++outer;
      break;
    }
    // Plateau: density can no longer improve (e.g. the inflation budget or
    // channel derating makes the target unreachable) — stop escalating.
    recent.push_back(ovfl);
    if (static_cast<int>(recent.size()) > opt_.plateau_window) {
      const double old = recent[recent.size() - 1 - opt_.plateau_window];
      if (old - ovfl < opt_.plateau_eps * old) {
        ++outer;
        break;
      }
    }
    lambda *= opt_.lambda_mult;
  }
  res.outers = outer;
  res.lambda = lambda;
  return res;
}

bool GlobalPlacer::watchdog_tripped() {
  if (watchdog_fired_) return true;
  if (opt_.max_gp_iters > 0 && outers_done_ >= opt_.max_gp_iters) {
    RP_WARN("gp watchdog: --max-gp-iters %d reached; stopping global placement "
            "early (flow continues with the current positions)", opt_.max_gp_iters);
    RP_COUNT("guard.watchdog_gp_iters", 1);
    obs::Event e = obs::events().make(obs::EventKind::Watchdog, "gp_iters");
    e.d0 = opt_.max_gp_iters;
    obs::events().emit(e);
    watchdog_fired_ = true;
  } else if (opt_.max_seconds > 0 && wall_.seconds() >= opt_.max_seconds) {
    RP_WARN("gp watchdog: --max-seconds %.1f exceeded; stopping global placement "
            "early (flow continues with the current positions)", opt_.max_seconds);
    RP_COUNT("guard.watchdog_seconds", 1);
    obs::Event e = obs::events().make(obs::EventKind::Watchdog, "seconds");
    e.d0 = opt_.max_seconds;
    obs::events().emit(e);
    watchdog_fired_ = true;
  }
  return watchdog_fired_;
}

GpStats GlobalPlacer::run(Design& d) {
  RP_ASSERT(d.finalized(), "GlobalPlacer needs a finalized design");
  trace_.clear();
  times_ = StageTimes();
  wall_.reset();
  outers_done_ = 0;
  watchdog_fired_ = false;
  GpStats stats;
  Rng rng(12345);

  std::unique_ptr<Multilevel> ml_holder;
  {
    ScopedStage t(times_, "clustering");
    RP_TRACE_SPAN("gp/clustering");
    ml_holder = std::make_unique<Multilevel>(d, opt_.cluster);
  }
  Multilevel& ml = *ml_holder;
  stats.levels = ml.num_levels();
  RP_COUNT("gp.levels", stats.levels);

  // Coarsest level starts from scratch.
  initial_positions(ml.level(ml.top()).prob, rng);

  for (int l = ml.top(); l >= 0; --l) {
    ScopedStage lt(times_, "level" + std::to_string(l));
    RP_TRACE_SPAN("gp/level" + std::to_string(l));
    PlaceProblem& prob = ml.level(l).prob;
    DensityConfig dc;
    dc.target_density = opt_.target_density;
    DensityModel dens(prob, dc);
    auto wl = make_wirelength_model(opt_.wl_model, 1.0);

    const bool finest = l == 0;
    const double stop = finest ? opt_.stop_overflow : opt_.coarse_overflow;

    // Narrow-channel capacity derating (applies at every level; the channel
    // map only depends on FIXED macros, which exist at all levels).
    if (opt_.routability.enable && opt_.routability.narrow_channels) {
      const Grid2D<double> scale = narrow_channel_capacity_scale(
          d, dens.grid(), opt_.routability.channel_width_rows * d.row_height(),
          opt_.routability.channel_capacity_scale);
      if (count_channel_bins(scale) > 0) dens.apply_capacity_scale(scale);
    }

    const LevelResult lr =
        place_level(prob, dens, *wl, stop, l, mean_inflation(prob),
                    /*wl_warm_start=*/l == ml.top(), /*lambda0=*/0.0, opt_.max_outer);
    stats.total_outer += lr.outers;
    double lambda_cont = lr.lambda;

    // Routability loop at the finest level.
    if (finest && opt_.routability.enable && opt_.routability.cell_inflation) {
      for (int round = 0; round < opt_.routability.rounds; ++round) {
        if (watchdog_tripped()) break;
        ScopedStage rt(times_, "routability");
        RP_TRACE_SPAN("gp/routability/round" + std::to_string(round + 1));
        apply_solution(prob, d);
        RoutingGrid rg(d, /*include_movable_macros=*/true);
        estimate_probabilistic(d, rg);
        const std::string stage = "round" + std::to_string(round + 1);
        if (opt_.snapshot != nullptr) {
          // The congestion picture this round's inflation decisions see.
          opt_.snapshot->record_grid(stage, "demand", rg.tile_demand());
          opt_.snapshot->record_grid(stage, "capacity", rg.tile_capacity());
          opt_.snapshot->record_grid(stage, "overflow", rg.tile_overflow());
          opt_.snapshot->record_grid(stage, "congestion", rg.tile_congestion());
          opt_.snapshot->record_grid(stage, "density", dens.rasterized_density(prob));
        }
        const InflationResult ir = apply_congestion_inflation(
            prob, rg, opt_.routability.inflate_rate, opt_.routability.max_inflate,
            opt_.routability.max_total_inflation);
        ++stats.inflation_rounds;
        RP_COUNT("gp.inflation_rounds", 1);
        // Per-round congestion summary (computed unconditionally now: the
        // event bus wants it whether or not snapshots are on).
        const CongestionMetrics round_cm = congestion_metrics(rg);
        {
          obs::Event e = obs::events().make(obs::EventKind::RouteRound);
          e.i0 = round + 1;
          e.i1 = ir.cells_inflated;
          e.d0 = round_cm.total_overflow;
          e.d1 = round_cm.rc;
          e.d2 = ir.mean_inflation;
          obs::events().emit(e);
        }
        if (opt_.snapshot != nullptr) {
          opt_.snapshot->record_grid(stage, "inflation",
                                     inflation_map(prob, dens.grid()));
          SnapshotRoundRecord rr;
          rr.round = round + 1;
          rr.congestion = round_cm;
          rr.cells_inflated = ir.cells_inflated;
          rr.mean_inflation = ir.mean_inflation;
          opt_.snapshot->record_round(rr);
        }
        if (ir.cells_inflated == 0) break;
        RP_INFO("gp routability round %d: %d cells inflated, mean %.3f", round + 1,
                ir.cells_inflated, ir.mean_inflation);
        // Short re-spread with the inflated footprints, continuing from the
        // reached λ (a full cold escalation would be wasted work).
        std::vector<double> x0, y0;
        if (opt_.snapshot != nullptr) {
          x0 = prob.x;
          y0 = prob.y;
        }
        const LevelResult rr = place_level(
            prob, dens, *wl, stop, /*level_tag=*/-(round + 1), ir.mean_inflation,
            /*wl_warm_start=*/false, /*lambda0=*/lambda_cont * 0.5, opt_.reheat_outer);
        if (opt_.snapshot != nullptr)
          opt_.snapshot->record_grid(stage, "displacement",
                                     displacement_map(prob, x0, y0, dens.grid()));
        stats.total_outer += rr.outers;
        lambda_cont = rr.lambda;
      }
    }

    // End-of-level density picture (every level, both flow modes); the
    // finest level also records the final inflation state.
    if (opt_.snapshot != nullptr) {
      opt_.snapshot->record_grid("level" + std::to_string(l), "density",
                                 dens.rasterized_density(prob));
      if (finest)
        opt_.snapshot->record_grid("gp_final", "inflation",
                                   inflation_map(prob, dens.grid()));
    }

    if (l > 0) ml.project_down(l);
  }

  apply_solution(ml.level(0).prob, d);
  stats.final_hpwl = d.hpwl();
  {
    DensityConfig dc;
    dc.target_density = opt_.target_density;
    DensityModel dens(ml.level(0).prob, dc);
    stats.final_overflow = dens.overflow(ml.level(0).prob);
  }
  stats.mean_inflation = mean_inflation(ml.level(0).prob);
  RP_GAUGE("gp.final_hpwl", stats.final_hpwl);
  RP_GAUGE("gp.final_overflow", stats.final_overflow);
  RP_GAUGE("gp.mean_inflation", stats.mean_inflation);
  RP_INFO("global placement done: hpwl %.4e, overflow %.3f, %d outer iters, %d levels",
          stats.final_hpwl, stats.final_overflow, stats.total_outer, stats.levels);
  return stats;
}

}  // namespace rp
