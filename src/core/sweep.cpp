#include "core/sweep.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/logger.hpp"
#include "util/parallel.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#define RP_SWEEP_POSIX 1
#endif

namespace rp {

namespace fs = std::filesystem;

namespace {

/// routplace flags a spec may set. Everything else is either unknown or
/// reserved for the orchestrator (output paths, the seed axis).
const std::set<std::string>& allowed_flags() {
  static const std::set<std::string> k = {
      "aux",          "density",     "gen",           "incremental-eval",
      "inflate-rate", "legalizer",   "lenient",       "max-gp-iters",
      "max-seconds",  "mode",        "profile",       "rounds",
      "sample-resources", "simd",    "skip-dp",       "strict",
      "supply",       "threads",     "verbose",       "wl-model",
  };
  return k;
}

/// Flags rp_sweep itself owns: letting a spec set them would corrupt the
/// campaign layout (or bypass the seeds array).
const std::set<std::string>& reserved_flags() {
  static const std::set<std::string> k = {
      "out",          "report-json",    "trace-json", "progress-ndjson",
      "flight-json",  "snapshot-dir",   "snapshot-every", "snapshot-svg",
      "seed",         "help",           "map",
  };
  return k;
}

void check_flag(const std::string& flag, const std::string& where) {
  if (reserved_flags().count(flag) > 0)
    throw Error(ErrorCode::ValidationError,
                "campaign spec: flag '" + flag +
                    "' is managed by rp_sweep (output paths and --seed come "
                    "from the orchestrator)",
                where);
  if (allowed_flags().count(flag) == 0)
    throw Error(ErrorCode::ValidationError,
                "campaign spec: unknown routplace flag '" + flag + "'", where);
}

/// Filesystem/cell-id-safe fragment: basename, then every char outside
/// [A-Za-z0-9._+-] becomes '-'; capped so a pathological value cannot blow
/// up directory names.
std::string sanitize_label(const std::string& s) {
  std::string base = s;
  if (const auto pos = base.find_last_of('/'); pos != std::string::npos)
    base = base.substr(pos + 1);
  if (base.empty()) base = "x";
  std::string out;
  out.reserve(base.size());
  for (const char c : base) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '.' || c == '_' || c == '+' || c == '-';
    out += ok ? c : '-';
  }
  if (out.size() > 48) out.resize(48);
  return out;
}

/// Shortest decimal that round-trips to exactly `v` (a spec's 0.45 becomes
/// "0.45" on the command line, not "0.45000000000000001").
std::string format_number(double v) {
  if (std::floor(v) == v && std::fabs(v) < 9.0e15)
    return std::to_string(static_cast<long long>(v));
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

AxisValue axis_value_from(const JsonValue& v, const std::string& flag,
                          const std::string& where) {
  AxisValue a;
  switch (v.kind) {
    case JsonValue::Kind::Null:
      a.kind = AxisValue::Kind::Omit;
      a.label = "off";
      return a;
    case JsonValue::Kind::Bool:
      a.kind = v.b ? AxisValue::Kind::Flag : AxisValue::Kind::Omit;
      a.label = v.b ? "on" : "off";
      return a;
    case JsonValue::Kind::Number:
      a.kind = AxisValue::Kind::Value;
      a.text = format_number(v.num);
      a.label = sanitize_label(a.text);
      return a;
    case JsonValue::Kind::String:
      a.kind = AxisValue::Kind::Value;
      a.text = v.str;
      a.label = sanitize_label(v.str);
      return a;
    default:
      throw Error(ErrorCode::ValidationError,
                  "campaign spec: value for '" + flag +
                      "' must be a scalar (string/number/bool/null)",
                  where);
  }
}

void append_args(std::vector<std::string>& args, const std::string& flag,
                 const AxisValue& v) {
  if (v.kind == AxisValue::Kind::Omit) return;
  args.push_back("--" + flag);
  if (v.kind == AxisValue::Kind::Value) args.push_back(v.text);
}

std::string read_text_file(const fs::path& p, bool* ok) {
  *ok = false;
  std::FILE* f = std::fopen(p.string().c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) return {};
  *ok = true;
  return out;
}

bool write_text_file(const fs::path& p, const std::string& text) {
  std::FILE* f = std::fopen(p.string().c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

SweepSpec parse_sweepspec_impl(const JsonValue& doc, const std::string& where) {
  SweepSpec spec;
  std::set<std::string> base_flags;
  for (const auto& [key, v] : doc.obj) {
    if (key == "name") {
      if (!v.is_string() || v.str.empty())
        throw Error(ErrorCode::ValidationError,
                    "campaign spec: 'name' must be a non-empty string", where);
      spec.name = v.str;
    } else if (key == "base") {
      if (!v.is_object())
        throw Error(ErrorCode::ValidationError,
                    "campaign spec: 'base' must be an object of flag -> value",
                    where);
      for (const auto& [flag, val] : v.obj) {
        check_flag(flag, where);
        base_flags.insert(flag);
        spec.base.emplace_back(flag, axis_value_from(val, flag, where));
      }
    } else if (key == "axes") {
      if (!v.is_object())
        throw Error(ErrorCode::ValidationError,
                    "campaign spec: 'axes' must be an object of flag -> "
                    "[values]",
                    where);
      for (const auto& [flag, vals] : v.obj) {
        check_flag(flag, where);
        if (!vals.is_array() || vals.arr.empty())
          throw Error(ErrorCode::ValidationError,
                      "campaign spec: axis '" + flag +
                          "' must be a non-empty array",
                      where);
        SweepAxis axis;
        axis.flag = flag;
        std::set<std::string> labels;
        for (const JsonValue& val : vals.arr) {
          AxisValue av = axis_value_from(val, flag, where);
          if (!labels.insert(av.label).second)
            throw Error(ErrorCode::ValidationError,
                        "campaign spec: axis '" + flag +
                            "' has two values with the same cell label '" +
                            av.label + "'",
                        where);
          axis.values.push_back(std::move(av));
        }
        spec.axes.push_back(std::move(axis));
      }
    } else if (key == "seeds") {
      if (!v.is_array() || v.arr.empty())
        throw Error(ErrorCode::ValidationError,
                    "campaign spec: 'seeds' must be a non-empty array of "
                    "non-negative integers",
                    where);
      std::set<std::uint64_t> seen;
      for (const JsonValue& s : v.arr) {
        if (!s.is_number() || s.num < 0 || std::floor(s.num) != s.num)
          throw Error(ErrorCode::ValidationError,
                      "campaign spec: seeds must be non-negative integers",
                      where);
        const auto seed = static_cast<std::uint64_t>(s.num);
        if (!seen.insert(seed).second)
          throw Error(ErrorCode::ValidationError,
                      "campaign spec: duplicate seed " + std::to_string(seed) +
                          " (run directories would collide)",
                      where);
        spec.seeds.push_back(seed);
      }
    } else {
      throw Error(ErrorCode::ValidationError,
                  "campaign spec: unknown key '" + key +
                      "' (expected name/base/axes/seeds)",
                  where);
    }
  }
  for (const SweepAxis& ax : spec.axes)
    if (base_flags.count(ax.flag) > 0)
      throw Error(ErrorCode::ValidationError,
                  "campaign spec: flag '" + ax.flag +
                      "' appears in both 'base' and 'axes'",
                  where);
  if (spec.seeds.empty()) spec.seeds.push_back(1);
  return spec;
}

}  // namespace

SweepSpec parse_sweep_spec(const std::string& text, const std::string& where) {
  JsonValue doc;
  try {
    doc = json_parse(text);
  } catch (const std::runtime_error& e) {
    throw Error(ErrorCode::ParseError,
                std::string("campaign spec: ") + e.what(), where);
  }
  if (!doc.is_object())
    throw Error(ErrorCode::ParseError,
                "campaign spec: top level must be a JSON object", where);
  return parse_sweepspec_impl(doc, where);
}

std::vector<SweepRun> expand_grid(const SweepSpec& spec) {
  std::vector<SweepRun> out;
  std::vector<std::size_t> idx(spec.axes.size(), 0);
  for (;;) {
    std::string cell;
    std::vector<std::pair<std::string, std::string>> config;
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
      const SweepAxis& ax = spec.axes[i];
      const AxisValue& av = ax.values[idx[i]];
      if (!cell.empty()) cell += '_';
      cell += ax.flag + "-" + av.label;
      config.emplace_back(ax.flag, av.label);
    }
    if (cell.empty()) cell = "all";
    for (const std::uint64_t seed : spec.seeds) {
      SweepRun r;
      r.cell = cell;
      r.seed = seed;
      r.id = cell + "__s" + std::to_string(seed);
      r.config = config;
      for (const auto& [flag, av] : spec.base) append_args(r.args, flag, av);
      for (std::size_t i = 0; i < spec.axes.size(); ++i)
        append_args(r.args, spec.axes[i].flag, spec.axes[i].values[idx[i]]);
      r.args.emplace_back("--seed");
      r.args.push_back(std::to_string(seed));
      out.push_back(std::move(r));
    }
    // Odometer, last axis fastest (first axis varies slowest).
    std::size_t k = spec.axes.size();
    while (k > 0) {
      if (++idx[k - 1] < spec.axes[k - 1].values.size()) break;
      idx[k - 1] = 0;
      --k;
    }
    if (k == 0) break;
  }
  return out;
}

std::string sweep_status_name(int exit_code) {
  switch (exit_code) {
    case 0: return "ok";
    case 1: return "not_legal";
    case 2: return "usage_error";
    case 3: return "ParseError";
    case 4: return "ValidationError";
    case 5: return "NumericError";
    case 6: return "ResourceError";
    case 7: return "Interrupted";
    case kSpawnRedirectFailed: return "spawn_redirect_failed";
    case kSpawnExecFailed: return "spawn_exec_failed";
    default: break;
  }
  if (exit_code >= 128) return "signal_" + std::to_string(exit_code - 128);
  return "failed_" + std::to_string(exit_code);
}

namespace {

void write_run_entry(JsonWriter& w, const SweepRunResult& r) {
  w.begin_object();
  w.kv("id", r.run.id);
  w.kv("cell", r.run.cell);
  w.kv("seed", r.run.seed);
  w.kv("dir", "runs/" + r.run.id);
  w.key("config").begin_object();
  for (const auto& [flag, label] : r.run.config) w.kv(flag, label);
  w.end_object();
  w.key("args").begin_array();
  for (const std::string& a : r.run.args) w.value(a);
  w.end_array();
  w.kv("exit_code", static_cast<std::int64_t>(r.exit_code));
  w.kv("status", r.status);
  w.key("artifacts").begin_object();
  w.kv("report", r.has_report);
  w.kv("progress", r.has_progress);
  w.kv("bench", r.has_bench);
  w.kv("flight", r.has_flight);
  w.end_object();
  if (r.has_error) {
    w.key("error").begin_object();
    w.kv("code", r.error_code);
    w.kv("message", r.error_message);
    w.kv("where", r.error_where);
    w.kv("stage", r.error_stage);
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string campaign_manifest_json(const SweepSpec& spec,
                                   const std::vector<SweepRunResult>& results,
                                   int indent) {
  // Deliberately NO timestamps, durations, host names, or executed/skipped
  // split: everything here is a pure function of (spec, placer results), so
  // a resumed or repeated campaign rewrites this file byte-identically.
  int ok = 0, failed = 0;
  for (const SweepRunResult& r : results) (r.status == "ok" ? ok : failed)++;
  JsonWriter w(indent);
  w.begin_object();
  w.kv("schema", "rp_campaign");
  w.kv("v", 1);
  w.kv("name", spec.name);
  w.kv("total", static_cast<std::int64_t>(results.size()));
  w.kv("ok", static_cast<std::int64_t>(ok));
  w.kv("failed", static_cast<std::int64_t>(failed));
  w.key("seeds").begin_array();
  for (const std::uint64_t s : spec.seeds) w.value(s);
  w.end_array();
  w.key("base").begin_object();
  for (const auto& [flag, av] : spec.base) w.kv(flag, av.label);
  w.end_object();
  w.key("axes").begin_array();
  for (const SweepAxis& ax : spec.axes) {
    w.begin_object();
    w.kv("flag", ax.flag);
    w.key("labels").begin_array();
    for (const AxisValue& av : ax.values) w.value(av.label);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("runs").begin_array();
  for (const SweepRunResult& r : results) write_run_entry(w, r);
  w.end_array();
  w.end_object();
  return w.str();
}

std::string run_status_json(const SweepRunResult& r) {
  JsonWriter w(2);
  w.begin_object();
  w.kv("schema", "rp_run_status");
  w.kv("v", 1);
  w.kv("id", r.run.id);
  w.kv("exit_code", static_cast<std::int64_t>(r.exit_code));
  w.kv("status", r.status);
  w.key("args").begin_array();
  for (const std::string& a : r.run.args) w.value(a);
  w.end_array();
  w.end_object();
  return w.str();
}

bool run_status_matches(const std::string& status_json_text,
                        const SweepRun& run) {
  try {
    const JsonValue v = json_parse(status_json_text);
    if (!v.is_object()) return false;
    if (!v.has("schema") || v.at("schema").str != "rp_run_status") return false;
    if (!v.has("id") || v.at("id").str != run.id) return false;
    if (!v.has("exit_code") || !v.at("exit_code").is_number()) return false;
    if (!v.has("args") || !v.at("args").is_array()) return false;
    const std::vector<JsonValue>& arr = v.at("args").arr;
    if (arr.size() != run.args.size()) return false;
    for (std::size_t i = 0; i < arr.size(); ++i)
      if (!arr[i].is_string() || arr[i].str != run.args[i]) return false;
    return true;
  } catch (const std::runtime_error&) {
    return false;  // truncated/corrupt status.json: just re-run
  }
}

// ------------------------------------------------------------ orchestration

namespace {

/// Fill a result's artifact/error fields from the run directory.
void finalize_result(SweepRunResult& res, const fs::path& run_dir) {
  res.has_report = fs::exists(run_dir / "report.json");
  res.has_progress = fs::exists(run_dir / "progress.ndjson");
  res.has_bench = fs::exists(run_dir / "bench.jsonl");
  res.has_flight = fs::exists(run_dir / "flight.json");
  if (!res.has_report) return;
  bool ok = false;
  const std::string text = read_text_file(run_dir / "report.json", &ok);
  if (!ok) return;
  try {
    const JsonValue rep = json_parse(text);
    if (!rep.has("error")) return;
    const JsonValue& e = rep.at("error");
    res.has_error = true;
    if (e.has("code")) res.error_code = e.at("code").str;
    if (e.has("message")) res.error_message = e.at("message").str;
    if (e.has("where")) res.error_where = e.at("where").str;
    if (e.has("stage")) res.error_stage = e.at("stage").str;
  } catch (const std::runtime_error&) {
    // A truncated report (crashed child) is itself diagnostic; the manifest
    // still records the exit code.
  }
}

#ifdef RP_SWEEP_POSIX

pid_t spawn_run(const std::string& routplace, const SweepRun& run,
                const fs::path& run_dir) {
  std::vector<std::string> argv_s;
  argv_s.push_back(routplace);
  argv_s.insert(argv_s.end(), run.args.begin(), run.args.end());
  const auto add = [&](const char* flag, const fs::path& p) {
    argv_s.emplace_back(flag);
    argv_s.push_back(p.string());
  };
  add("--out", run_dir / "out.pl");
  add("--report-json", run_dir / "report.json");
  add("--progress-ndjson", run_dir / "progress.ndjson");
  add("--flight-json", run_dir / "flight.json");
  const std::string bench = (run_dir / "bench.jsonl").string();
  const std::string out_log = (run_dir / "stdout.log").string();
  const std::string err_log = (run_dir / "stderr.log").string();

  const pid_t pid = ::fork();
  if (pid != 0) return pid;  // parent (or fork failure, pid < 0)

  // Child: redirect stdio into the run directory, point RP_BENCH_JSON
  // there, exec. Only async-signal-safe-ish calls between fork and exec.
  // A failed redirect is fatal (kSpawnRedirectFailed, distinct from 127 =
  // exec failed): silently inheriting the parent's stdio would interleave
  // this child's output with the orchestrator's own. The originals are
  // closed after dup2 so no stray descriptors leak into the exec'd image.
  const int ofd = ::open(out_log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (ofd < 0 || ::dup2(ofd, 1) < 0) ::_exit(kSpawnRedirectFailed);
  ::close(ofd);
  const int efd = ::open(err_log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (efd < 0 || ::dup2(efd, 2) < 0) ::_exit(kSpawnRedirectFailed);
  ::close(efd);
  ::setenv("RP_BENCH_JSON", bench.c_str(), 1);
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (std::string& s : argv_s) argv.push_back(s.data());
  argv.push_back(nullptr);
  ::execv(routplace.c_str(), argv.data());
  ::_exit(kSpawnExecFailed);
}

#endif  // RP_SWEEP_POSIX

}  // namespace

SweepOutcome run_campaign(const SweepOptions& opt) {
  bool ok = false;
  const std::string spec_text = read_text_file(opt.spec_path, &ok);
  if (!ok)
    throw Error(ErrorCode::ResourceError,
                "cannot read campaign spec '" + opt.spec_path + "'");
  const SweepSpec spec = parse_sweep_spec(spec_text, opt.spec_path);
  const std::vector<SweepRun> runs = expand_grid(spec);

  SweepOutcome out;
  out.name = spec.name;
  out.results.resize(runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) out.results[i].run = runs[i];

  if (opt.dry_run) {
    for (SweepRunResult& r : out.results) r.status = "dry_run";
    return out;
  }

#ifndef RP_SWEEP_POSIX
  throw Error(ErrorCode::ResourceError,
              "rp_sweep requires a POSIX host (fork/exec)");
#else
  if (opt.out_dir.empty())
    throw Error(ErrorCode::ValidationError, "campaign directory not set");
  if (!fs::exists(opt.routplace))
    throw Error(ErrorCode::ResourceError,
                "routplace binary not found: '" + opt.routplace + "'");
  const fs::path dir(opt.out_dir);
  std::error_code ec;
  fs::create_directories(dir / "runs", ec);
  if (ec)
    throw Error(ErrorCode::ResourceError,
                "cannot create campaign directory '" + opt.out_dir +
                    "': " + ec.message());

  // Resume pass: a run whose status.json matches its id+args already
  // finished in a previous invocation — adopt its recorded exit code.
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const fs::path run_dir = dir / "runs" / runs[i].id;
    bool read_ok = false;
    const std::string status_text =
        read_text_file(run_dir / "status.json", &read_ok);
    if (read_ok && run_status_matches(status_text, runs[i])) {
      SweepRunResult& res = out.results[i];
      res.skipped = true;
      res.exit_code = static_cast<int>(
          json_parse(status_text).at("exit_code").num);
      res.status = sweep_status_name(res.exit_code);
      finalize_result(res, run_dir);
      ++out.skipped;
      continue;
    }
    todo.push_back(i);
  }

  const int jobs =
      opt.jobs > 0 ? opt.jobs : parallel::hardware_threads();
  struct Child {
    pid_t pid;
    std::size_t idx;
  };
  std::vector<Child> live;
  std::size_t cursor = 0;
  while (cursor < todo.size() || !live.empty()) {
    while (static_cast<int>(live.size()) < jobs && cursor < todo.size()) {
      const std::size_t i = todo[cursor++];
      const fs::path run_dir = dir / "runs" / runs[i].id;
      fs::create_directories(run_dir, ec);
      fs::remove(run_dir / "status.json", ec);  // stale marker, if any
      const pid_t pid = spawn_run(opt.routplace, runs[i], run_dir);
      if (pid < 0)
        throw Error(ErrorCode::ResourceError, "fork() failed mid-campaign");
      RP_INFO("rp_sweep: [%zu/%zu] %s started", cursor + out.skipped,
              runs.size(), runs[i].id.c_str());
      live.push_back({pid, i});
      ++out.executed;
    }
    // Reap the next child. waitpid() can be aborted by ANY signal delivered
    // to this process (a stray SIGUSR1, a debugger attach, a terminal
    // resize...) — EINTR here is routine, not an error, and must not abort
    // an hours-long campaign. ECHILD while we still track live children IS
    // a real error (something else reaped them — our bookkeeping is gone).
    int stat = 0;
    pid_t done = -1;
    while ((done = ::waitpid(-1, &stat, 0)) < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorCode::ResourceError,
                  std::string("waitpid() failed mid-campaign (") +
                      std::strerror(errno) + ", " +
                      std::to_string(live.size()) + " child(ren) in flight)");
    }
    for (std::size_t c = 0; c < live.size(); ++c) {
      if (live[c].pid != done) continue;
      const std::size_t i = live[c].idx;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(c));
      int code = -1;
      if (WIFEXITED(stat)) code = WEXITSTATUS(stat);
      else if (WIFSIGNALED(stat)) code = 128 + WTERMSIG(stat);
      SweepRunResult& res = out.results[i];
      res.exit_code = code;
      res.status = sweep_status_name(code);
      const fs::path run_dir = dir / "runs" / runs[i].id;
      finalize_result(res, run_dir);
      if (!write_text_file(run_dir / "status.json",
                           run_status_json(res) + "\n"))
        RP_WARN("rp_sweep: cannot write %s/status.json (resume disabled "
                "for this run)", runs[i].id.c_str());
      RP_INFO("rp_sweep: %s -> %s (exit %d)", runs[i].id.c_str(),
              res.status.c_str(), code);
      break;
    }
  }

  for (const SweepRunResult& r : out.results)
    (r.status == "ok" ? out.ok : out.failed)++;

  const std::string manifest = campaign_manifest_json(spec, out.results);
  if (!write_text_file(dir / "campaign.json", manifest + "\n"))
    throw Error(ErrorCode::ResourceError,
                "cannot write campaign manifest '" +
                    (dir / "campaign.json").string() + "'");
  return out;
#endif
}

}  // namespace rp
