#pragma once
// Placement evaluation & report formatting.
//
// evaluate_placement() is the single scoring entry point used by tests,
// examples and every bench table: it runs the global router on the finished
// placement and bundles the contest metrics (HPWL, routed WL, overflow,
// ACE/RC, scaled HPWL) together with a legality check.

#include <string>
#include <vector>

#include "db/design.hpp"
#include "db/validate.hpp"
#include "route/metrics.hpp"
#include "route/router.hpp"

namespace rp {

struct EvalResult {
  double hpwl = 0.0;
  double scaled_hpwl = 0.0;       ///< HPWL × RC penalty (contest objective).
  CongestionMetrics congestion;   ///< From routed usage.
  RouteStats route;
  LegalityReport legality;
};

struct EvalOptions {
  bool run_router = true;        ///< false: probabilistic estimate only.
  bool check_legal = true;
  RouterOptions router;
};

EvalResult evaluate_placement(const Design& d, const EvalOptions& opt = {});

/// Same, but routes on the caller's grid (freshly built from `d`) so the
/// routed usage/congestion maps survive for snapshot capture.
EvalResult evaluate_placement(const Design& d, const EvalOptions& opt,
                              RoutingGrid& grid);

/// Render a congestion heat map as ASCII art (for Fig-6 style output).
/// Characters: ' ' <50%, '.' <80%, ':' <95%, '+' <105%, '#' ≥105%, 'M' macro.
std::string congestion_ascii(const Design& d, int max_cols = 64);

// ---- tiny fixed-width table writer used by the bench binaries ----
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);
  void row(const std::vector<std::string>& cells);
  /// Render with aligned columns, header rule, and footer rule.
  std::string str() const;

  static std::string num(double v, int prec = 2);
  static std::string eng(double v);  ///< 1.23e+06 style for wirelengths.

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rp
