#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "route/estimator.hpp"
#include "util/grid.hpp"

namespace rp {

EvalResult evaluate_placement(const Design& d, const EvalOptions& opt) {
  RoutingGrid grid(d, /*include_movable_macros=*/true);
  return evaluate_placement(d, opt, grid);
}

EvalResult evaluate_placement(const Design& d, const EvalOptions& opt,
                              RoutingGrid& grid) {
  EvalResult r;
  r.hpwl = d.hpwl();
  if (opt.run_router) {
    GlobalRouter router(grid, opt.router);
    r.route = router.route(d);
  } else {
    estimate_probabilistic(d, grid);
    r.route.wirelength = grid.used_wirelength();
    r.route.total_overflow = grid.total_overflow();
    r.route.max_utilization = grid.max_utilization();
  }
  r.congestion = congestion_metrics(grid);
  r.scaled_hpwl = scaled_hpwl(r.hpwl, r.congestion.rc);
  if (opt.check_legal) r.legality = check_legality(d);
  return r;
}

std::string congestion_ascii(const Design& d, int max_cols) {
  RoutingGrid grid(d, true);
  GlobalRouter router(grid);
  router.route(d);
  const Grid2D<double> cong = grid.tile_congestion();

  // Macro mask for display.
  Grid2D<double> macro_cover(grid.nx(), grid.ny(), 0.0);
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    if (!k.fixed || !k.is_macro()) continue;
    grid.map().rasterize(d.cell_rect(c),
                         [&](int ix, int iy, double a) { macro_cover(ix, iy) += a; });
  }

  const int step = std::max(1, (grid.nx() + max_cols - 1) / max_cols);
  std::ostringstream os;
  for (int iy = grid.ny() - 1; iy >= 0; iy -= step) {
    for (int ix = 0; ix < grid.nx(); ix += step) {
      // Aggregate the step×step block.
      double u = 0.0, mc = 0.0;
      for (int dy = 0; dy < step && iy - dy >= 0; ++dy)
        for (int dx = 0; dx < step && ix + dx < grid.nx(); ++dx) {
          u = std::max(u, cong(ix + dx, iy - dy));
          mc = std::max(mc, macro_cover(ix + dx, iy - dy) / grid.map().bin_area());
        }
      char ch = ' ';
      if (u >= 1.05) ch = '#';
      else if (u >= 0.95) ch = '+';
      else if (u >= 0.80) ch = ':';
      else if (u >= 0.50) ch = '.';
      if (mc > 0.6 && u < 0.95) ch = 'M';
      os << ch;
    }
    os << '\n';
  }
  return os.str();
}

TableWriter::TableWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TableWriter::row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

std::string TableWriter::str() const {
  std::vector<std::size_t> w(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) w[i] = headers_[i].size();
  for (const auto& r : rows_)
    for (std::size_t i = 0; i < r.size() && i < w.size(); ++i)
      w[i] = std::max(w[i], r[i].size());

  std::ostringstream os;
  const auto line = [&] {
    for (const std::size_t wi : w) os << std::string(wi + 2, '-');
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < w.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << c << std::string(w[i] + 2 - c.size(), ' ');
    }
    os << '\n';
  };
  line();
  emit(headers_);
  line();
  for (const auto& r : rows_) emit(r);
  line();
  return os.str();
}

std::string TableWriter::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TableWriter::eng(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3e", v);
  return buf;
}

}  // namespace rp
