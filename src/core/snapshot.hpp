#pragma once
// Spatial run snapshots: per-iteration convergence history and per-round /
// per-stage heatmaps, captured under `--snapshot-dir <dir>`.
//
// The recorder owns one output directory and produces:
//
//   <dir>/manifest.json        index of every captured map (stage, name,
//                              files, dims, value stats) + schema version
//   <dir>/convergence.json     one point per GP outer iteration (hpwl,
//                              overflow, lambda, gamma, inflation) and one
//                              record per routability round (ACE/RC,
//                              overflow, cells inflated)
//   <dir>/maps/NNN_<stage>_<name>.grid   compact binary grid (util/heatmap)
//   <dir>/maps/NNN_<stage>_<name>.ppm    heat-ramp rendering (optional .svg)
//
// Everything written is DETERMINISTIC — no wall-clock times, no absolute
// paths — so two runs with the same seed produce byte-identical snapshot
// trees; `rp_report_diff` and the determinism tests rely on this.
//
// Capture sites hold a nullable SnapshotRecorder*; with no recorder the
// whole subsystem is a pointer test per capture site (<1% overhead rule).

#include <memory>
#include <string>
#include <vector>

#include "db/design.hpp"
#include "model/problem.hpp"
#include "route/metrics.hpp"
#include "util/heatmap.hpp"

namespace rp {

struct SnapshotOptions {
  std::string dir;          ///< Empty: snapshots disabled.
  bool render_ppm = true;   ///< Write a .ppm next to every .grid.
  bool render_svg = false;  ///< Also write a .svg rendering.
  int density_every = 0;    ///< >0: finest-level density map every N outers.
};

/// One GP outer iteration (the spatially-resolved sibling of GpTracePoint).
struct ConvergencePoint {
  int level = 0;       ///< Multilevel level (0 = finest).
  int round = 0;       ///< Routability round (0 = main descent).
  int outer = 0;       ///< Outer iteration within the level/round.
  double hpwl = 0.0;
  double overflow = 0.0;
  double lambda = 0.0;
  double gamma = 0.0;      ///< WL smoothing width (the step-size schedule).
  double inflation = 1.0;  ///< Mean cell inflation in effect.
};

/// One routability round: the congestion picture that drove inflation.
struct SnapshotRoundRecord {
  int round = 0;  ///< 1-based.
  CongestionMetrics congestion;
  int cells_inflated = 0;
  double mean_inflation = 1.0;
};

class SnapshotRecorder {
 public:
  /// Creates dir and dir/maps; ok() is false (and the recorder inert) when
  /// the directories cannot be created.
  explicit SnapshotRecorder(SnapshotOptions opt);
  ~SnapshotRecorder();

  bool ok() const { return ok_; }
  const std::string& dir() const { return opt_.dir; }
  const SnapshotOptions& options() const { return opt_; }

  /// Capture a spatial map under `<stage>/<name>` ("round1"/"overflow", ...).
  /// Writes the grid (and renderings) immediately; manifest entry is kept in
  /// memory until finalize().
  void record_grid(const std::string& stage, const std::string& name,
                   const Grid2D<double>& g);

  void record_point(const ConvergencePoint& p);
  void record_round(const SnapshotRoundRecord& r);

  int num_maps() const { return static_cast<int>(maps_.size()); }
  int num_points() const { return static_cast<int>(points_.size()); }

  /// Write manifest.json + convergence.json. Idempotent; called by the flow
  /// (and from the destructor as a safety net). Returns false on I/O errors.
  bool finalize();

 private:
  struct MapEntry {
    int seq = 0;
    std::string stage, name;
    std::string grid_rel, ppm_rel, svg_rel;  ///< Paths relative to dir.
    int nx = 0, ny = 0;
    GridStats stats;
  };

  SnapshotOptions opt_;
  std::vector<MapEntry> maps_;
  std::vector<ConvergencePoint> points_;
  std::vector<SnapshotRoundRecord> rounds_;
  int seq_ = 0;
  bool ok_ = false;
  bool finalized_ = false;
};

// ---- map builders shared by the capture sites ----

/// Per-bin area-weighted mean inflation factor of movable nodes (1.0 where
/// no movable area lands).
Grid2D<double> inflation_map(const PlaceProblem& p, const GridMap& gm);

/// Per-bin mean displacement of movable nodes from (x0, y0) to the problem's
/// current coordinates, binned at the CURRENT position.
Grid2D<double> displacement_map(const PlaceProblem& p, const std::vector<double>& x0,
                                const std::vector<double>& y0, const GridMap& gm);

/// Same, over a Design: displacement of movable cell centers from `before`
/// (indexed by CellId) to their current centers.
Grid2D<double> displacement_map(const Design& d, const std::vector<Point>& before,
                                const GridMap& gm);

}  // namespace rp
