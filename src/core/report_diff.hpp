#pragma once
// Structural diff over run reports and snapshot directories — the engine
// behind the `rp_report_diff` CLI and the snapshot regression tests.
//
// Two JSON documents are walked in lockstep; every leaf (number, string,
// bool, null) is compared under a dotted path ("eval.congestion.rc",
// "gp_trace[3].hpwl"). Numeric leaves match when
//
//     |a − b| <= abs_tol + rel_tol · max(|a|, |b|)
//
// so rel_tol/abs_tol = 0 demands exact equality. Volatile-by-nature keys
// (wall-clock stage times, RSS, build stamp, absolute snapshot paths) are
// ignored by default — the differ gates on *quality* metrics, not on how
// long the run took or which binary ran it.
//
// Snapshot mode pairs the two manifests' maps by stage/name, compares grid
// dimensions and per-cell values (same tolerance), and diffs the two
// convergence histories as JSON.

#include <string>
#include <vector>

#include "util/json.hpp"

namespace rp {

struct ReportDiffOptions {
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  std::vector<std::string> ignore;   ///< Extra path substrings to skip.
  bool default_ignores = true;       ///< Apply the built-in volatile-key set.
};

/// Path substrings skipped when default_ignores is set.
const std::vector<std::string>& report_diff_default_ignores();

struct DiffEntry {
  std::string path;
  std::string a, b;     ///< Rendered values (or "<missing>").
  double delta = 0.0;   ///< |a − b| for numeric leaves, else 0.
};

struct ReportDiffResult {
  std::vector<DiffEntry> diffs;
  int values_compared = 0;
  bool error = false;        ///< I/O or parse failure (diffs unusable).
  std::string error_msg;

  bool clean() const { return !error && diffs.empty(); }
  /// Human-readable table of the differences (or "identical"/error note).
  std::string format(std::size_t max_lines = 200) const;
};

/// Diff two parsed JSON documents.
ReportDiffResult diff_json_values(const JsonValue& a, const JsonValue& b,
                                  const ReportDiffOptions& opt = {});

/// Load and diff two run-report files.
ReportDiffResult diff_report_files(const std::string& path_a, const std::string& path_b,
                                   const ReportDiffOptions& opt = {});

/// Diff two snapshot directories (manifest pairing + per-cell grid compare +
/// convergence history).
ReportDiffResult diff_snapshot_dirs(const std::string& dir_a, const std::string& dir_b,
                                    const ReportDiffOptions& opt = {});

}  // namespace rp
