#include "core/run_report.hpp"

#include <cstdio>
#include <optional>

#include "core/build_info.hpp"
#include "util/json.hpp"
#include "util/obs_context.hpp"
#include "util/logger.hpp"
#include "util/parallel.hpp"
#include "util/profiler.hpp"
#include "util/simd.hpp"
#include "util/telemetry.hpp"

namespace rp {

RunReportMeta make_report_meta(const Design& d, const std::string& source,
                               const std::string& mode, std::uint64_t seed) {
  RunReportMeta m;
  m.design = d.name();
  m.source = source;
  m.mode = mode;
  m.seed = seed;
  m.cells = d.num_cells();
  m.nets = d.num_nets();
  m.macros = d.num_macros();
  m.die_w = d.die().width();
  m.die_h = d.die().height();
  m.row_height = d.row_height();
  return m;
}

namespace {

void write_options(JsonWriter& w, const FlowOptions& opt) {
  w.key("options").begin_object();
  w.kv("legalizer", opt.legalizer);
  w.kv("congestion_aware_dp", opt.congestion_aware_dp);
  w.kv("skip_dp", opt.skip_dp);
  w.kv("skip_eval", opt.skip_eval);
  w.key("gp").begin_object();
  w.kv("wl_model", opt.gp.wl_model);
  w.kv("target_density", opt.gp.target_density);
  w.kv("stop_overflow", opt.gp.stop_overflow);
  w.kv("max_outer", opt.gp.max_outer);
  w.kv("cg_iters", opt.gp.cg_iters);
  w.end_object();
  w.key("routability").begin_object();
  w.kv("enable", opt.gp.routability.enable);
  w.kv("cell_inflation", opt.gp.routability.cell_inflation);
  w.kv("narrow_channels", opt.gp.routability.narrow_channels);
  w.kv("rounds", opt.gp.routability.rounds);
  w.kv("inflate_rate", opt.gp.routability.inflate_rate);
  w.kv("max_total_inflation", opt.gp.routability.max_total_inflation);
  w.end_object();
  w.key("eval").begin_object();
  w.kv("run_router", opt.eval.run_router);
  w.kv("check_legal", opt.eval.check_legal);
  w.end_object();
  w.end_object();
}

void write_eval(JsonWriter& w, const EvalResult& e) {
  w.key("eval").begin_object();
  w.kv("hpwl", e.hpwl);
  w.kv("scaled_hpwl", e.scaled_hpwl);
  w.key("congestion").begin_object();
  w.kv("rc", e.congestion.rc);
  w.kv("ace_005", e.congestion.ace_005);
  w.kv("ace_1", e.congestion.ace_1);
  w.kv("ace_2", e.congestion.ace_2);
  w.kv("ace_5", e.congestion.ace_5);
  w.kv("peak_utilization", e.congestion.peak_utilization);
  w.kv("total_overflow", e.congestion.total_overflow);
  w.kv("overflowed_edges", e.congestion.overflowed_edges);
  w.end_object();
  w.key("route").begin_object();
  w.kv("wirelength", e.route.wirelength);
  w.kv("iterations", e.route.iterations);
  w.kv("segments", e.route.segments);
  w.kv("overflow_free", e.route.overflow_free);
  w.end_object();
  w.key("legality").begin_object();
  w.kv("ok", e.legality.ok());
  w.kv("overlaps", e.legality.overlaps);
  w.kv("row_misaligned", e.legality.row_misaligned);
  w.kv("site_misaligned", e.legality.site_misaligned);
  w.kv("out_of_die", e.legality.out_of_die);
  w.kv("region_violations", e.legality.region_violations);
  w.end_object();
  w.end_object();
}

}  // namespace

std::string run_report_json(const RunReportMeta& meta, const FlowOptions& opt,
                            const FlowResult& r, int indent,
                            const RunErrorInfo& err) {
  // All counter/gauge/profile/event reads go through the run's own context
  // when the flow carried one (re-entrancy: reporting run A must not read
  // whatever context happens to be bound right now); binding it here makes
  // the nested writers — profiler::write_report_block in particular —
  // resolve the right instances too. Otherwise: the current context, the
  // historical behavior.
  std::optional<obs::ScopedBind> report_bind;
  if (r.obs != nullptr) report_bind.emplace(r.obs.get());
  const obs::ObsContext& obs_ctx = r.obs != nullptr ? *r.obs : obs::current();
  const telemetry::Registry& reg = obs_ctx.registry();

  JsonWriter w(indent);
  w.begin_object();
  // v5: adds the optional "resources" block (sampled RSS/CPU/pool-busy
  // timeline); v4 added the "events" block and reads the parse block's
  // repair counts from the per-run counters; v3 the optional
  // "parse"/"error" blocks; v2 the optional "profile" block. Every earlier
  // field is unchanged, so old consumers keep working.
  w.kv("schema_version", 5);
  w.kv("tool", "routplace");

  if (err.failed) {
    w.key("error").begin_object();
    w.kv("code", err.code);
    w.kv("message", err.message);
    w.kv("where", err.where);
    w.kv("stage", err.stage);
    w.kv("exit_code", static_cast<std::int64_t>(err.exit_code));
    w.end_object();
  }

  const BuildInfo& bi = build_info();
  w.key("build").begin_object();
  w.kv("git_describe", bi.git_describe);
  w.kv("compiler", bi.compiler);
  w.kv("build_type", bi.build_type);
  w.kv("flags", bi.flags);
  w.kv("cxx_standard", static_cast<std::int64_t>(bi.cxx_standard));
  w.end_object();

  w.key("design").begin_object();
  w.kv("name", meta.design);
  w.kv("source", meta.source);
  w.kv("seed", meta.seed);
  w.kv("cells", meta.cells);
  w.kv("nets", meta.nets);
  w.kv("macros", meta.macros);
  w.kv("die_w", meta.die_w);
  w.kv("die_h", meta.die_h);
  w.kv("row_height", meta.row_height);
  w.end_object();

  w.kv("mode", meta.mode);

  // Bookshelf input provenance: parse mode + lenient-repair counts, read
  // straight from the run context's "parse.repair.*" counters. (With a
  // per-run ObsContext the flow no longer resets them — the PR-5 detour
  // that shuttled these through RunReportMeta is gone.)
  if (!meta.parse_mode.empty()) {
    static constexpr const char* kRepairFields[] = {
        "dangling_pins",       "empty_nets",          "duplicate_nodes",
        "synthesized_net_names", "clamped_fixed_cells", "count_mismatches",
        "unknown_pl_nodes",
    };
    w.key("parse").begin_object();
    w.kv("mode", meta.parse_mode);
    w.key("repairs").begin_object();
    std::int64_t total = 0;
    for (const char* f : kRepairFields) {
      const std::int64_t v = reg.counter_value(std::string("parse.repair.") + f);
      w.kv(f, v);
      total += v;
    }
    w.kv("total", total);
    w.end_object();
    w.end_object();
  }

  // Runtime provenance, not results: everything under "parallel" may differ
  // between two otherwise-identical runs (thread count, pool statistics), so
  // rp_report_diff ignores the whole block by default — the determinism
  // contract is that every block OUTSIDE it is byte-identical for any
  // --threads value.
  w.key("parallel").begin_object();
  w.kv("threads", static_cast<std::int64_t>(parallel::num_threads()));
  w.kv("hardware_threads", static_cast<std::int64_t>(parallel::hardware_threads()));
  w.kv("regions", parallel::ThreadPool::instance().regions_run());
  w.kv("chunks", parallel::ThreadPool::instance().chunks_run());
  w.end_object();

  // Kernel-dispatch provenance, same contract as "parallel": the active
  // vector level and the incremental-eval switch never change results (the
  // determinism gate diffs across them), so the whole block is ignored by
  // rp_report_diff and the determinism check.
  w.key("simd").begin_object();
  w.kv("requested", simd::requested());
  w.kv("active", simd::level_name(simd::active_level()));
  w.kv("host_avx2", simd::host_features().avx2);
  w.kv("host_neon", simd::host_features().neon);
  w.kv("incremental_eval", opt.dp.incremental);
  w.end_object();

  write_options(w, opt);
  write_eval(w, r.eval);

  w.key("gp").begin_object();
  w.kv("final_hpwl", r.gp.final_hpwl);
  w.kv("final_overflow", r.gp.final_overflow);
  w.kv("total_outer", r.gp.total_outer);
  w.kv("levels", r.gp.levels);
  w.kv("inflation_rounds", r.gp.inflation_rounds);
  w.kv("mean_inflation", r.gp.mean_inflation);
  w.end_object();

  w.key("gp_trace").begin_array();
  for (const GpTracePoint& p : r.gp_trace) {
    w.begin_object();
    w.kv("level", p.level);
    w.kv("outer", p.outer);
    w.kv("hpwl", p.hpwl);
    w.kv("overflow", p.overflow);
    w.kv("lambda", p.lambda);
    w.kv("inflation", p.inflation);
    w.end_object();
  }
  w.end_array();

  w.key("macro_legal").begin_object();
  w.kv("macros", r.macro_legal.macros);
  w.kv("failed", r.macro_legal.failed);
  w.kv("total_disp", r.macro_legal.total_disp);
  w.kv("max_disp", r.macro_legal.max_disp);
  w.end_object();

  w.key("legal").begin_object();
  w.kv("cells", r.legal.cells);
  w.kv("failed", r.legal.failed);
  w.kv("avg_disp", r.legal.avg_disp());
  w.kv("max_disp", r.legal.max_disp);
  w.end_object();

  w.key("dp").begin_object();
  w.kv("hpwl_before", r.dp.hpwl_before);
  w.kv("hpwl_after", r.dp.hpwl_after);
  w.kv("improvement", r.dp.improvement());
  w.kv("swaps", static_cast<std::int64_t>(r.dp.swaps));
  w.kv("relocations", static_cast<std::int64_t>(r.dp.relocations));
  w.kv("reorders", static_cast<std::int64_t>(r.dp.reorders));
  w.kv("ism_moves", static_cast<std::int64_t>(r.dp.ism_moves));
  w.end_object();

  w.key("stage_times").begin_object();
  for (const auto& [name, sec] : r.times.entries()) w.kv(name, sec);
  w.end_object();
  w.kv("stage_total_sec", r.times.total());

  w.key("counters").begin_object();
  for (const auto& [name, v] : reg.counters()) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : reg.gauges()) w.kv(name, v);
  w.end_object();

  // Event-bus totals. The count is deterministic (payloads are pure
  // functions of the computation; only seq/timestamps are volatile), so
  // check_progress.py cross-checks it against the NDJSON stream's final seq.
  w.key("events").begin_object();
  w.kv("emitted", static_cast<std::int64_t>(obs_ctx.events().events_emitted()));
  w.kv("flight_capacity",
       static_cast<std::int64_t>(obs::EventBus::kFlightCapacity));
  w.end_object();

  // Like "parallel": runtime provenance, ignored by rp_report_diff and the
  // determinism check (timings differ run to run by construction).
  if (profiler::enabled()) profiler::write_report_block(w);

  // Sampled resource timeline (schema v5). Wall-clock observations — the
  // whole block is on the report-diff/determinism ignore lists. Present only
  // when the run's sampler was started (--sample-resources > 0).
  const obs::ResourceSampler::Summary res = obs_ctx.sampler().summary();
  if (res.enabled) {
    w.key("resources").begin_object();
    w.kv("tick_ms", static_cast<std::int64_t>(res.tick_ms));
    w.kv("effective_tick_ms", static_cast<std::int64_t>(res.effective_tick_ms));
    w.kv("downsample_rounds", static_cast<std::int64_t>(res.downsample_rounds));
    w.kv("samples_taken", res.samples_taken);
    w.kv("peak_rss_kb", res.peak_rss_kb);
    w.kv("peak_pool_busy", res.peak_pool_busy);
    w.kv("cpu_utime_ms", static_cast<std::int64_t>(res.cpu_utime_ms));
    w.kv("cpu_stime_ms", static_cast<std::int64_t>(res.cpu_stime_ms));
    w.key("samples").begin_array();
    for (const obs::ResourceSample& s : res.samples) {
      w.begin_object();
      w.kv("t_ms", static_cast<std::int64_t>(s.t_ms));
      w.kv("rss_kb", s.rss_kb);
      w.kv("utime_ms", static_cast<std::int64_t>(s.utime_ms));
      w.kv("stime_ms", static_cast<std::int64_t>(s.stime_ms));
      w.kv("pool_busy", s.pool_busy);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.kv("peak_rss_kb", static_cast<std::int64_t>(telemetry::peak_rss_kb()));
  w.kv("snapshot_dir", r.snapshot_dir);
  w.end_object();
  return w.str();
}

bool write_run_report(const std::string& path, const RunReportMeta& meta,
                      const FlowOptions& opt, const FlowResult& r,
                      const RunErrorInfo& err) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    RP_ERROR("run report: cannot open '%s'", path.c_str());
    return false;
  }
  const std::string doc = run_report_json(meta, opt, r, 2, err);
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fputc('\n', f);
  std::fclose(f);
  if (!ok) RP_ERROR("run report: short write to '%s'", path.c_str());
  return ok;
}

}  // namespace rp
