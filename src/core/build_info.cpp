#include "core/build_info.hpp"

// The definitions come from set_source_files_properties in CMakeLists.txt;
// the fallbacks keep non-CMake builds (and IDE tooling) compiling.
#ifndef RP_GIT_DESCRIBE
#define RP_GIT_DESCRIBE "unknown"
#endif
#ifndef RP_COMPILER
#define RP_COMPILER "unknown"
#endif
#ifndef RP_BUILD_TYPE
#define RP_BUILD_TYPE "unknown"
#endif
#ifndef RP_CXX_FLAGS
#define RP_CXX_FLAGS ""
#endif

namespace rp {

const BuildInfo& build_info() {
  static const BuildInfo info{RP_GIT_DESCRIBE, RP_COMPILER, RP_BUILD_TYPE,
                              RP_CXX_FLAGS, __cplusplus};
  return info;
}

}  // namespace rp
