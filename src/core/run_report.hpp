#pragma once
// Structured (machine-readable) run reports.
//
// A run report is one JSON document capturing everything a single
// PlacementFlow::run produced: the design/seed/options fingerprint, the
// evaluation bundle (HPWL, scaled HPWL, ACE/RC, overflow, legality), per-stage
// stats (GP, macro legal, legal, DP), the full GP convergence trace, the
// nested stage-time breakdown, a snapshot of every telemetry counter/gauge,
// and the process peak RSS. Emitted by `routplace --report-json <file>`, by
// the bench binaries (RP_BENCH_JSON=<file>, one JSON line per run), and
// consumable by scripts/check_report.py and the BENCH_* trajectory tooling.
//
// Schema (stable keys; see DESIGN.md "Observability" for the full contract):
//   schema_version, tool, build{git_describe, compiler, build_type, flags,
//   cxx_standard}, design{...}, options{...}, eval{...}, gp{...},
//   gp_trace[...], macro_legal{...}, legal{...}, dp{...},
//   stage_times{...}, stage_total_sec, counters{...}, gauges{...},
//   peak_rss_kb, snapshot_dir
//   v3 additions: optional "parse" block (Bookshelf input: mode + per-repair
//   counters) and optional "error" block (failed runs only: code, message,
//   where = failing file:line, stage, exit_code — see util/error.hpp).
//   v4 additions: "events" block (event-bus totals); the parse block's
//   repair counts are now read from the run's ObsContext counters
//   ("parse.repair.*") instead of a RunReportMeta field, and the whole
//   report reads counters/gauges through FlowResult::obs when set — so a
//   report for run A is correct even while run B is bound on this thread.
//   v5 additions: optional "resources" block (util/resource_sampler.hpp):
//   sampled RSS/CPU/pool-busy timeline {tick_ms, effective_tick_ms,
//   downsample_rounds, samples_taken, peak_rss_kb, peak_pool_busy,
//   cpu_utime_ms, cpu_stime_ms, samples[{t_ms, rss_kb, utime_ms, stime_ms,
//   pool_busy}]}. Wall-clock observations: on the report-diff/determinism
//   ignore lists, like "profile".

#include <cstdint>
#include <string>

#include "core/flow.hpp"
#include "util/error.hpp"

namespace rp {

/// Provenance the FlowResult itself does not carry.
struct RunReportMeta {
  std::string design;             ///< Design name.
  std::string source;             ///< "bookshelf" | "generated" | "api".
  std::string mode;               ///< "routability" | "wirelength" | "custom".
  std::uint64_t seed = 0;         ///< Generator seed (0 for file input).
  int cells = 0;
  int nets = 0;
  int macros = 0;
  double die_w = 0.0;
  double die_h = 0.0;
  double row_height = 0.0;
  /// Bookshelf provenance ("strict"/"lenient"; empty for generated input —
  /// empty suppresses the report's "parse" block). Repair COUNTS are no
  /// longer carried here: they live in the run's ObsContext ("parse.repair.*"
  /// counters) and the report reads them from there.
  std::string parse_mode;
};

/// A failed run's classification for the report's "error" block.
struct RunErrorInfo {
  bool failed = false;   ///< False: no "error" block is written.
  std::string code;      ///< "ParseError" | "ValidationError" | ...
  std::string message;
  std::string where;     ///< Failing file:line (input or source).
  std::string stage;     ///< Pipeline stage ("parse", "gp/level2", ...).
  int exit_code = 0;

  static RunErrorInfo from(const Error& e) {
    return {true, e.code_name(), e.message(), e.where(), e.stage(), e.exit_code()};
  }
};

/// Fill a RunReportMeta's design-shape fields from a Design.
RunReportMeta make_report_meta(const Design& d, const std::string& source,
                               const std::string& mode, std::uint64_t seed);

/// Serialize the run report document (pretty-printed when indent > 0).
std::string run_report_json(const RunReportMeta& meta, const FlowOptions& opt,
                            const FlowResult& r, int indent = 2,
                            const RunErrorInfo& err = {});

/// Write run_report_json() to a file; returns false (and logs) on failure.
bool write_run_report(const std::string& path, const RunReportMeta& meta,
                      const FlowOptions& opt, const FlowResult& r,
                      const RunErrorInfo& err = {});

}  // namespace rp
