#pragma once
// The multilevel analytical global placer with the routability loop — the
// paper's primary contribution.
//
// Per level (coarsest → finest), minimize  WL_γ + λ·N  with nonlinear CG,
// raising λ geometrically until the density overflow target for the level is
// met, then project positions down a level. At the finest level, once the
// placement is mostly spread, the ROUTABILITY LOOP kicks in:
//
//   1. estimate congestion with the probabilistic L-router on the design's
//      routing grid (macros derate capacity);
//   2. INFLATE cells sitting in overflowed tiles (bounded total growth), so
//      the density force pushes neighbors away and frees routing tracks;
//   3. derate the density capacity of NARROW CHANNELS between macros, which
//      keeps cells out of corridors that own almost no routing resource;
//   4. continue spreading until the (inflated) overflow target holds again.
//
// The baseline wirelength-driven placer is this class with
// `routability.enable = false`.

#include <vector>

#include "cluster/multilevel.hpp"
#include "db/design.hpp"
#include "model/density.hpp"
#include "model/wirelength.hpp"
#include "util/timer.hpp"

namespace rp {

class SnapshotRecorder;

struct RoutabilityOptions {
  bool enable = true;
  bool cell_inflation = true;
  bool narrow_channels = true;
  int rounds = 3;                 ///< Congestion-estimate / inflate cycles.
  double inflate_rate = 0.45;     ///< Growth per unit of tile over-utilization.
  double max_inflate = 2.0;       ///< Per-cell inflation cap (area factor).
  double max_total_inflation = 0.10;  ///< Budget: Σ added area / movable area.
  double channel_width_rows = 6.0;    ///< Channels narrower than this derated.
  double channel_capacity_scale = 0.4;
};

struct GpOptions {
  std::string wl_model = "WA";     ///< "WA" (paper) or "LSE" (ablation).
  double gamma_init_bins = 4.0;    ///< Initial γ in bin widths.
  double gamma_final_bins = 0.75;
  double target_density = 1.0;
  double stop_overflow = 0.10;     ///< Finest-level density overflow target.
  double coarse_overflow = 0.18;   ///< Coarser levels stop earlier.
  int max_outer = 30;              ///< λ escalations per level.
  int reheat_outer = 10;           ///< Outer iterations after an inflation round.
  int cg_iters = 30;
  double lambda_mult = 2.1;
  double plateau_eps = 0.01;       ///< Stop a level when overflow improves < 1%
  int plateau_window = 3;          ///< over this many consecutive outers.
  double trust_bins = 1.0;         ///< CG trust radius in bin widths.
  // Watchdogs (0 = off). max_gp_iters caps TOTAL outer iterations across all
  // levels and reheat rounds (deterministic); max_seconds caps GP wall time
  // (inherently machine-dependent — never enable it under a determinism
  // gate). Both degrade gracefully: GP stops spreading and the flow
  // continues with the positions reached so far.
  int max_gp_iters = 0;
  double max_seconds = 0.0;
  ClusterOptions cluster;
  RoutabilityOptions routability;
  bool verbose = false;
  /// Non-owning spatial-snapshot sink (core/snapshot.hpp); nullptr disables
  /// all capture at the cost of one pointer test per site.
  SnapshotRecorder* snapshot = nullptr;
};

/// One record per outer iteration (Fig-5 convergence data).
struct GpTracePoint {
  int level = 0;
  int outer = 0;
  double hpwl = 0.0;
  double overflow = 0.0;
  double lambda = 0.0;
  double inflation = 1.0;  ///< Mean cell inflation at this point.
};

struct GpStats {
  double final_hpwl = 0.0;
  double final_overflow = 0.0;
  int total_outer = 0;
  int levels = 0;
  int inflation_rounds = 0;
  double mean_inflation = 1.0;
};

class GlobalPlacer {
 public:
  explicit GlobalPlacer(GpOptions opt = {}) : opt_(opt) {}

  /// Run on a finalized design; writes back cell positions.
  GpStats run(Design& d);

  const std::vector<GpTracePoint>& trace() const { return trace_; }

  /// Internal runtime breakdown ("clustering", "level<k>", "routability"),
  /// spliced into the flow's StageTimes under "global/".
  const StageTimes& times() const { return times_; }

 private:
  struct LevelResult {
    int outers = 0;
    double lambda = 0.0;  ///< λ at exit (continuation for reheat rounds).
  };
  /// λ-escalation loop on one problem; stops on the overflow target or a
  /// plateau. `lambda0 <= 0` auto-balances. `wl_warm_start` runs a
  /// wirelength-only pre-pass (coarsest level only — at finer levels it
  /// would undo the projected spreading).
  LevelResult place_level(PlaceProblem& prob, DensityModel& dens, WirelengthModel& wl,
                          double stop_overflow, int level_tag, double inflation_mean,
                          bool wl_warm_start, double lambda0, int max_outer);

  /// True once either watchdog (max_gp_iters / max_seconds) has fired;
  /// logs + counts on the firing call only.
  bool watchdog_tripped();

  GpOptions opt_;
  std::vector<GpTracePoint> trace_;
  StageTimes times_;
  Timer wall_;              ///< Started by run(); read by the seconds watchdog.
  int outers_done_ = 0;     ///< Total outer iterations (all levels + reheats).
  bool watchdog_fired_ = false;
};

}  // namespace rp
