#include "db/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rp {

namespace {

/// Sweep-line enumeration of overlapping cell pairs; calls fn(a, b, area).
/// Cells sorted by lx; active set pruned by hx. Expected near-linear for
/// legal-ish placements.
template <typename Fn>
void for_each_overlap(const Design& d, Fn&& fn) {
  struct Item {
    Rect r;
    CellId id;
  };
  std::vector<Item> items;
  items.reserve(d.num_cells());
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Rect r = d.cell_rect(c);
    if (r.width() <= 0 || r.height() <= 0) continue;  // zero-area pads
    items.push_back({r, c});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.r.lx < b.r.lx; });
  std::vector<const Item*> active;
  for (const Item& it : items) {
    std::erase_if(active, [&](const Item* a) { return a->r.hx <= it.r.lx; });
    for (const Item* a : active) {
      const double ov = a->r.overlap_area(it.r);
      if (ov > 0) fn(a->id, it.id, ov);
    }
    active.push_back(&it);
  }
}

}  // namespace

LegalityReport check_legality(const Design& d, const LegalityOptions& opt) {
  LegalityReport rep;
  const Rect die = d.die();
  const auto note = [&](std::string msg) {
    if (static_cast<int>(rep.messages.size()) < opt.max_violations)
      rep.messages.push_back(std::move(msg));
  };

  // Die containment and fence regions (movable cells only; fixed objects may
  // legitimately straddle the die boundary, e.g. IO pads).
  for (const CellId c : d.movable_cells()) {
    const Cell& k = d.cell(c);
    const Rect r = d.cell_rect(c);
    if (r.lx < die.lx - opt.tol || r.ly < die.ly - opt.tol || r.hx > die.hx + opt.tol ||
        r.hy > die.hy + opt.tol) {
      ++rep.out_of_die;
      note("cell '" + k.name + "' outside die");
    }
    if (opt.check_regions && k.region != kInvalidId) {
      bool inside = false;
      for (const Rect& fr : d.region(k.region).rects) {
        if (fr.expand(opt.tol).contains(r)) {
          inside = true;
          break;
        }
      }
      if (!inside) {
        ++rep.region_violations;
        note("cell '" + k.name + "' outside fence region '" + d.region(k.region).name + "'");
      }
    }
  }

  // Row alignment for standard cells. Each cell is checked against ITS row
  // (the one whose bottom edge is nearest its y), not row 0: rows may have
  // non-uniform origins and site widths, and row(0)'s geometry said nothing
  // about a cell sitting in row 37.
  if (opt.check_rows && d.num_rows() > 0) {
    // Rows sorted by bottom edge for nearest-row binary search.
    std::vector<int> by_y(static_cast<std::size_t>(d.num_rows()));
    for (int i = 0; i < d.num_rows(); ++i) by_y[static_cast<std::size_t>(i)] = i;
    std::sort(by_y.begin(), by_y.end(),
              [&](int a, int b) { return d.row(a).y < d.row(b).y; });
    const auto nearest_row = [&](double y) -> const Row& {
      auto it = std::lower_bound(by_y.begin(), by_y.end(), y,
                                 [&](int r, double yy) { return d.row(r).y < yy; });
      if (it == by_y.end()) return d.row(by_y.back());
      if (it == by_y.begin()) return d.row(*it);
      const Row& above = d.row(*it);
      const Row& below = d.row(*(it - 1));
      return (y - below.y) <= (above.y - y) ? below : above;
    };
    for (const CellId c : d.movable_cells()) {
      const Cell& k = d.cell(c);
      if (k.kind != CellKind::StdCell) continue;
      const Row& row = nearest_row(k.pos.y);
      if (row.height <= 0) continue;  // degenerate row: alignment undefined
      if (std::abs(k.pos.y - row.y) > opt.tol) {
        ++rep.row_misaligned;
        note("cell '" + k.name + "' not on a row boundary");
      }
      if (opt.check_sites && row.site_w > 0) {
        const double sw = row.site_w;
        const double relx = (k.pos.x - row.lx) / sw;
        if (std::abs(relx - std::round(relx)) * sw > opt.tol) {
          ++rep.site_misaligned;
          note("cell '" + k.name + "' not on a site boundary");
        }
      }
    }
  }

  // Overlaps. Shrink rects by tol to ignore exact-touch numerical noise;
  // skip fixed-fixed pairs (pre-placed blockages may legitimately abut or
  // even overlap in contest inputs).
  for_each_overlap(d, [&](CellId a, CellId b, double) {
    const Cell& ka = d.cell(a);
    const Cell& kb = d.cell(b);
    if (ka.fixed && kb.fixed) return;
    const Rect ra = d.cell_rect(a).expand(-opt.tol / 2);
    const Rect rb = d.cell_rect(b).expand(-opt.tol / 2);
    if (ra.overlap_area(rb) <= 0) return;
    ++rep.overlaps;
    note("cells '" + ka.name + "' and '" + kb.name + "' overlap");
  });

  return rep;
}

double total_overlap_area(const Design& d) {
  double sum = 0.0;
  for_each_overlap(d, [&](CellId a, CellId b, double ov) {
    if (d.cell(a).fixed && d.cell(b).fixed) return;
    sum += ov;
  });
  return sum;
}

}  // namespace rp
