#pragma once
// Bookshelf placement-format I/O (UCLA / ISPD contest flavor).
//
// Supported files, dispatched from the .aux:
//   .nodes  cell names & sizes, `terminal` / `terminal_NI` markers
//   .nets   nets with pin offsets (offsets from cell center)
//   .wts    optional net weights
//   .pl     positions, orientation, /FIXED and /FIXED_NI markers
//   .scl    core rows
//   .route  optional ISPD-2011 routing grid (aggregated across layers)
//
// The reader produces a finalized Design; macros are recognized as movable
// nodes taller than one row. The writer emits a directory of files readable
// by this reader (round-trip tested) and by contest evaluators.

#include <filesystem>
#include <string>

#include "db/design.hpp"

namespace rp {

/// Parse the benchmark rooted at an .aux file. Throws std::runtime_error
/// with file/line context on malformed input.
Design read_bookshelf(const std::filesystem::path& aux_file);

/// Write `design` as <dir>/<base>.aux + .nodes/.nets/.pl/.scl (+ .wts, and
/// .route if the design has a routing grid). Creates `dir` if needed.
void write_bookshelf(const Design& d, const std::filesystem::path& dir,
                     const std::string& base);

/// Write only a .pl (placement) file for an existing benchmark.
void write_pl(const Design& d, const std::filesystem::path& pl_file);

/// Load cell positions from a .pl into an already-constructed design
/// (names must match). Fixed flags in the file are ignored.
void read_pl_into(Design& d, const std::filesystem::path& pl_file);

}  // namespace rp
