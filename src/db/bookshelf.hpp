#pragma once
// Bookshelf placement-format I/O (UCLA / ISPD contest flavor).
//
// Supported files, dispatched from the .aux:
//   .nodes  cell names & sizes, `terminal` / `terminal_NI` markers
//   .nets   nets with pin offsets (offsets from cell center)
//   .wts    optional net weights
//   .pl     positions, orientation, /FIXED and /FIXED_NI markers
//   .scl    core rows
//   .route  optional ISPD-2011 routing grid (aggregated across layers)
//
// The reader produces a finalized Design; macros are recognized as movable
// nodes taller than one row. The writer emits a directory of files readable
// by this reader (round-trip tested) and by contest evaluators.
//
// Two parse modes (real contest dumps are full of irregularities):
//   Strict  (default) — any malformed construct raises rp::Error with code
//           ParseError carrying the input `file:line`.
//   Lenient — repairable irregularities are fixed in place and counted:
//           dangling pins dropped, empty (degree-0) nets dropped, duplicate
//           node definitions ignored (first wins), out-of-die fixed cells
//           clamped onto the die, missing net names synthesized, declared
//           count mismatches downgraded to warnings. Each repair bumps a
//           `parse.repair.*` telemetry counter and the ParseRepairs struct.
//           Irreparable damage (non-numeric fields, truncated records,
//           unusable .scl) still raises ParseError.

#include <filesystem>
#include <string>

#include "db/design.hpp"

namespace rp {

enum class ParseMode {
  Strict,   ///< Reject malformed constructs with ParseError.
  Lenient,  ///< Repair-and-warn where possible; count every repair.
};

/// Per-repair counters filled in lenient mode (all zero after a strict
/// parse: strict throws where lenient repairs).
struct ParseRepairs {
  long dangling_pins = 0;       ///< Pins referencing unknown nodes, dropped.
  long empty_nets = 0;          ///< NetDegree 0 nets, dropped.
  long duplicate_nodes = 0;     ///< Re-defined node names, first wins.
  long synthesized_net_names = 0;  ///< NetDegree lines without a name.
  long clamped_fixed_cells = 0; ///< Fixed cells moved back onto the die.
  long count_mismatches = 0;    ///< Declared NumNodes/NumNets/NumPins wrong.
  long unknown_pl_nodes = 0;    ///< .pl lines for nodes never declared.

  long total() const {
    return dangling_pins + empty_nets + duplicate_nodes + synthesized_net_names +
           clamped_fixed_cells + count_mismatches + unknown_pl_nodes;
  }
};

struct BookshelfOptions {
  ParseMode mode = ParseMode::Strict;
  /// Optional out-param: repair counters from this parse (lenient mode).
  ParseRepairs* repairs = nullptr;
};

/// Parse the benchmark rooted at an .aux file. Throws rp::Error (code
/// ParseError/ValidationError/ResourceError) with file:line context on
/// malformed input; in lenient mode repairable damage is fixed and counted
/// instead (see BookshelfOptions).
Design read_bookshelf(const std::filesystem::path& aux_file,
                      const BookshelfOptions& opt = {});

/// Write `design` as <dir>/<base>.aux + .nodes/.nets/.pl/.scl (+ .wts, and
/// .route if the design has a routing grid). Creates `dir` if needed.
void write_bookshelf(const Design& d, const std::filesystem::path& dir,
                     const std::string& base);

/// Write only a .pl (placement) file for an existing benchmark.
void write_pl(const Design& d, const std::filesystem::path& pl_file);

/// Load cell positions from a .pl into an already-constructed design
/// (names must match). Fixed flags in the file are ignored.
void read_pl_into(Design& d, const std::filesystem::path& pl_file,
                  const BookshelfOptions& opt = {});

}  // namespace rp
