#pragma once
// Design hierarchy tree.
//
// "Hierarchical" designs (the h in NTUplace4h) carry the original RTL module
// hierarchy in their instance names ("top/core0/alu/u42"). The placer uses
// this structure to bias multilevel clustering: cells deep in the same module
// belong together. HierTree stores the module tree; each cell references the
// module (leaf-most component path minus the cell's own leaf name) it
// instantiates under.

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rp {

/// Module-hierarchy tree. Node 0 is the root (top module). Ids are dense.
class HierTree {
 public:
  struct Node {
    std::string name;     ///< Local module name ("alu"), root has design name.
    int parent = -1;      ///< -1 for the root.
    int depth = 0;        ///< root == 0.
    std::vector<int> children;
    int num_cells = 0;    ///< Leaf cells directly inside this module.
  };

  HierTree();

  int root() const { return 0; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int id) const { return nodes_[id]; }

  /// Child of `parent` named `name`; created if absent.
  int get_or_add_child(int parent, std::string_view name);

  /// Resolve a full instance path "a/b/cell" to the module node "a/b"
  /// (creating intermediate modules) and count the cell there.
  /// Returns the module id the cell lives in (root for flat names).
  int add_cell_path(std::string_view instance_path);

  /// Depth of the deepest common ancestor of two modules. Both ids must be
  /// valid. Root-only commonality yields 0.
  int common_ancestor_depth(int a, int b) const;

  int depth(int id) const { return nodes_[id].depth; }
  int max_depth() const;

  /// Full path name of a module ("top/core0/alu"); root yields "".
  std::string path(int id) const;

 private:
  std::vector<Node> nodes_;
  // (parent, child-name) -> node id
  std::unordered_map<std::string, int> child_lookup_;
  static std::string key(int parent, std::string_view name);
};

}  // namespace rp
