#pragma once
// Placement legality checking.
//
// Used by tests and at the end of the flow to certify the final placement:
//  * every movable cell inside the die (and its fence region, if any)
//  * no two cells overlap (fixed-vs-movable and movable-vs-movable)
//  * standard cells aligned to rows (bottom edge on a row, height == row
//    height) and, optionally, to site boundaries.

#include <string>
#include <vector>

#include "db/design.hpp"

namespace rp {

struct LegalityOptions {
  bool check_rows = true;      ///< Row/site alignment of std cells.
  bool check_sites = false;    ///< X on site grid (off: continuous x allowed).
  bool check_regions = true;   ///< Fence-region containment.
  double tol = 1e-6;           ///< Geometric tolerance (absolute).
  int max_violations = 50;     ///< Stop collecting messages after this many.
};

struct LegalityReport {
  int out_of_die = 0;
  int overlaps = 0;
  int row_misaligned = 0;
  int site_misaligned = 0;
  int region_violations = 0;
  std::vector<std::string> messages;

  bool ok() const {
    return out_of_die == 0 && overlaps == 0 && row_misaligned == 0 &&
           site_misaligned == 0 && region_violations == 0;
  }
  int total() const {
    return out_of_die + overlaps + row_misaligned + site_misaligned + region_violations;
  }
};

/// Check current placement legality. O(n log n) sweep for overlaps.
LegalityReport check_legality(const Design& d, const LegalityOptions& opt = {});

/// Total pairwise overlap area among movable cells and between movable and
/// fixed cells (0 for a legal placement). Useful as a soft progress metric.
double total_overlap_area(const Design& d);

}  // namespace rp
