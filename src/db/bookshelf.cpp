#include "db/bookshelf.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <optional>
#include <unordered_set>

#include "util/error.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/str.hpp"
#include "util/telemetry.hpp"

namespace fs = std::filesystem;

namespace rp {

namespace {

/// Mode + repair-counter plumbing threaded through the per-file readers.
struct ParseCtx {
  ParseMode mode = ParseMode::Strict;
  ParseRepairs* rep = nullptr;

  bool lenient() const { return mode == ParseMode::Lenient; }
  void count(long ParseRepairs::* field) const {
    if (rep != nullptr) (rep->*field) += 1;
  }
};

/// Line-oriented tokenizer over a Bookshelf file: skips comments ('#'),
/// blank lines, and the "UCLA <kind> 1.0" header; reports file:line in errors.
class BsReader {
 public:
  explicit BsReader(const fs::path& file) : file_(file), in_(file) {
    if (!in_)
      throw Error(ErrorCode::ResourceError, "cannot open '" + file.string() + "'");
  }

  /// Next meaningful line's tokens, or nullopt at EOF.
  std::optional<std::vector<std::string>> next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++lineno_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const auto t = trim(line);
      if (t.empty()) continue;
      if (starts_with(t, "UCLA") || starts_with(t, "route 1.0")) continue;
      return split(t, " \t:");
    }
    return std::nullopt;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw Error(ErrorCode::ParseError, why, where(), "parse");
  }

  /// "file:line" of the line last returned by next().
  std::string where() const {
    return file_.string() + ":" + std::to_string(lineno_);
  }

  /// Declared-vs-parsed count verification (NumNodes/NumNets/NumPins...).
  /// Strict: ParseError; lenient: warn + count_mismatches repair.
  void check_declared(const ParseCtx& ctx, const char* what, long declared,
                      long parsed) const {
    if (declared < 0 || declared == parsed) return;
    const std::string msg = std::string(what) + "=" + std::to_string(declared) +
                            " declared but " + std::to_string(parsed) + " parsed";
    if (!ctx.lenient()) fail(msg);
    RP_WARN("%s: %s (lenient: continuing)", where().c_str(), msg.c_str());
    RP_COUNT("parse.repair.count_mismatches", 1);
    ctx.count(&ParseRepairs::count_mismatches);
  }

  int lineno() const { return lineno_; }

 private:
  fs::path file_;
  std::ifstream in_;
  int lineno_ = 0;
};

long expect_long(BsReader& r, const std::vector<std::string>& toks, std::size_t i) {
  if (i >= toks.size()) r.fail("missing numeric field");
  try {
    return to_long(toks[i]);
  } catch (const std::exception& e) {
    r.fail(e.what());
  }
}

/// Like to_double but with file:line context and a finiteness guard: no
/// Bookshelf field legitimately holds NaN/Inf, and letting one through here
/// is how non-finite values used to leak into the whole numeric pipeline.
double expect_double(BsReader& r, const std::vector<std::string>& toks, std::size_t i) {
  if (i >= toks.size()) r.fail("missing numeric field");
  double v = 0.0;
  try {
    v = to_double(toks[i]);
  } catch (const std::exception& e) {
    r.fail(e.what());
  }
  if (!std::isfinite(v)) r.fail("non-finite value '" + toks[i] + "'");
  return v;
}

struct NodeRec {
  std::string name;
  double w = 0, h = 0;
  bool terminal = false;
};

std::vector<NodeRec> read_nodes(const fs::path& file, const ParseCtx& ctx) {
  BsReader r(file);
  std::vector<NodeRec> out;
  std::unordered_set<std::string> seen;
  long declared = -1;
  long parsed = 0;  // includes duplicates dropped by the lenient repair
  while (auto toks = r.next()) {
    auto& t = *toks;
    if (iequals(t[0], "NumNodes")) {
      declared = expect_long(r, t, 1);
      if (declared < 0) r.fail("negative NumNodes");
      out.reserve(static_cast<std::size_t>(std::min(declared, 1L << 20)));
    } else if (iequals(t[0], "NumTerminals")) {
      // informative only
    } else {
      NodeRec n;
      n.name = t[0];
      n.w = expect_double(r, t, 1);
      n.h = expect_double(r, t, 2);
      if (n.w < 0 || n.h < 0) r.fail("node '" + n.name + "' has negative size");
      if (t.size() > 3 && (iequals(t[3], "terminal") || iequals(t[3], "terminal_NI")))
        n.terminal = true;
      ++parsed;
      if (!seen.insert(n.name).second) {
        // Duplicate definition: find_cell would later resolve the name to an
        // arbitrary one of them, silently mis-wiring every net that uses it.
        if (!ctx.lenient()) r.fail("duplicate node '" + n.name + "'");
        RP_WARN("%s: duplicate node '%s' (lenient: first definition wins)",
                r.where().c_str(), n.name.c_str());
        RP_COUNT("parse.repair.duplicate_nodes", 1);
        ctx.count(&ParseRepairs::duplicate_nodes);
        continue;
      }
      out.push_back(std::move(n));
    }
  }
  r.check_declared(ctx, "NumNodes", declared, parsed);
  return out;
}

void read_nets_into(Design& d, const fs::path& file, const ParseCtx& ctx) {
  BsReader r(file);
  long remaining_pins_in_net = 0;
  NetId cur = kInvalidId;
  std::string cur_name;
  long declared_nets = -1, declared_pins = -1;
  long seen_nets = 0, seen_pins = 0;  // as declared in the file, pre-repair

  const auto close_net = [&]() {
    if (cur == kInvalidId || remaining_pins_in_net <= 0) return;
    const std::string msg = "net '" + cur_name + "': " +
                            std::to_string(remaining_pins_in_net) +
                            " fewer pin(s) than its declared NetDegree";
    if (!ctx.lenient()) r.fail(msg);
    RP_WARN("%s: %s (lenient: continuing)", r.where().c_str(), msg.c_str());
    RP_COUNT("parse.repair.count_mismatches", 1);
    ctx.count(&ParseRepairs::count_mismatches);
  };

  while (auto toks = r.next()) {
    auto& t = *toks;
    if (iequals(t[0], "NumNets")) {
      declared_nets = expect_long(r, t, 1);
      if (declared_nets < 0) r.fail("negative NumNets");
      continue;
    }
    if (iequals(t[0], "NumPins")) {
      declared_pins = expect_long(r, t, 1);
      if (declared_pins < 0) r.fail("negative NumPins");
      continue;
    }
    if (iequals(t[0], "NetDegree")) {
      close_net();
      const long degree = expect_long(r, t, 1);
      if (degree < 0) r.fail("negative NetDegree");
      ++seen_nets;
      if (degree == 0) {
        // A pinless net is legal-looking junk: it contributes HPWL 0 and
        // silently skews every per-net average downstream.
        if (!ctx.lenient()) r.fail("NetDegree 0 (pinless net)");
        RP_WARN("%s: NetDegree 0 (lenient: net dropped)", r.where().c_str());
        RP_COUNT("parse.repair.empty_nets", 1);
        ctx.count(&ParseRepairs::empty_nets);
        remaining_pins_in_net = 0;
        cur = kInvalidId;
        continue;
      }
      remaining_pins_in_net = degree;
      std::string name;
      if (t.size() > 2) {
        name = t[2];
      } else {
        if (!ctx.lenient()) r.fail("NetDegree without a net name");
        name = "net" + std::to_string(d.num_nets());
        RP_COUNT("parse.repair.synthesized_net_names", 1);
        ctx.count(&ParseRepairs::synthesized_net_names);
      }
      if (d.find_net(name) != kInvalidId) {
        if (!ctx.lenient()) r.fail("duplicate net '" + name + "'");
        name += "#dup" + std::to_string(d.num_nets());
        RP_COUNT("parse.repair.synthesized_net_names", 1);
        ctx.count(&ParseRepairs::synthesized_net_names);
      }
      cur_name = name;
      cur = d.add_net(std::move(name));
      continue;
    }
    if (cur == kInvalidId && !(ctx.lenient() && remaining_pins_in_net == 0))
      r.fail("pin line before any NetDegree");
    if (remaining_pins_in_net <= 0) {
      if (cur == kInvalidId) continue;  // lenient: pins of a dropped net
      r.fail("more pins than declared NetDegree");
    }
    ++seen_pins;
    --remaining_pins_in_net;
    const CellId c = d.find_cell(t[0]);
    if (c == kInvalidId) {
      if (!ctx.lenient()) r.fail("pin references unknown node '" + t[0] + "'");
      RP_WARN("%s: pin references unknown node '%s' (lenient: pin dropped)",
              r.where().c_str(), t[0].c_str());
      RP_COUNT("parse.repair.dangling_pins", 1);
      ctx.count(&ParseRepairs::dangling_pins);
      continue;
    }
    Point off{};
    // "<node> <dir> : <dx> <dy>" -> tokens {node, dir, dx, dy} (':' eaten).
    if (t.size() >= 4) {
      off.x = expect_double(r, t, 2);
      off.y = expect_double(r, t, 3);
    }
    d.connect(c, cur, off);
  }
  close_net();
  r.check_declared(ctx, "NumNets", declared_nets, seen_nets);
  r.check_declared(ctx, "NumPins", declared_pins, seen_pins);
}

void read_wts_into(Design& d, const fs::path& file, const ParseCtx& ctx) {
  BsReader r(file);
  while (auto toks = r.next()) {
    auto& t = *toks;
    if (t.size() < 2) continue;
    const NetId n = d.find_net(t[0]);
    if (n != kInvalidId) d.net(n).weight = expect_double(r, t, 1);
  }
  (void)ctx;
}

void read_scl_into(Design& d, const fs::path& file, const ParseCtx& ctx) {
  BsReader r(file);
  std::optional<Row> cur;
  while (auto toks = r.next()) {
    auto& t = *toks;
    if (iequals(t[0], "NumRows")) continue;
    if (iequals(t[0], "CoreRow")) {
      cur = Row{};
      continue;
    }
    if (!cur) continue;
    if (iequals(t[0], "Coordinate")) {
      cur->y = expect_double(r, t, 1);
    } else if (iequals(t[0], "Height")) {
      cur->height = expect_double(r, t, 1);
    } else if (iequals(t[0], "Sitewidth")) {
      cur->site_w = expect_double(r, t, 1);
    } else if (iequals(t[0], "SubrowOrigin")) {
      // "SubrowOrigin : x NumSites : n" -> {SubrowOrigin, x, NumSites, n}
      cur->lx = expect_double(r, t, 1);
      if (t.size() >= 4 && iequals(t[2], "NumSites")) {
        const double nsites = expect_double(r, t, 3);
        if (nsites < 0) r.fail("negative NumSites");
        cur->hx = cur->lx + nsites * (cur->site_w > 0 ? cur->site_w : 1.0);
      }
    } else if (iequals(t[0], "End")) {
      if (cur->height <= 0) r.fail("row with no Height");
      if (!std::isfinite(cur->hx) || cur->hx < cur->lx) r.fail("row extent overflows");
      d.add_row(*cur);
      cur.reset();
    }
  }
  (void)ctx;
}

void read_route_into(Design& d, const fs::path& file, const ParseCtx& ctx) {
  BsReader r(file);
  RouteGridInfo rg;
  int nlayers = 1;
  std::vector<double> vcap, hcap, wire_w, wire_sp;
  while (auto toks = r.next()) {
    auto& t = *toks;
    if (iequals(t[0], "Grid")) {
      rg.nx = static_cast<int>(expect_long(r, t, 1));
      rg.ny = static_cast<int>(expect_long(r, t, 2));
      if (t.size() > 3) nlayers = static_cast<int>(expect_long(r, t, 3));
    } else if (iequals(t[0], "VerticalCapacity")) {
      for (std::size_t i = 1; i < t.size(); ++i) vcap.push_back(expect_double(r, t, i));
    } else if (iequals(t[0], "HorizontalCapacity")) {
      for (std::size_t i = 1; i < t.size(); ++i) hcap.push_back(expect_double(r, t, i));
    } else if (iequals(t[0], "MinWireWidth")) {
      for (std::size_t i = 1; i < t.size(); ++i) wire_w.push_back(expect_double(r, t, i));
    } else if (iequals(t[0], "MinWireSpacing")) {
      for (std::size_t i = 1; i < t.size(); ++i) wire_sp.push_back(expect_double(r, t, i));
    } else if (iequals(t[0], "BlockagePorosity")) {
      rg.macro_porosity = expect_double(r, t, 1);
    }
    // GridOrigin / TileSize / ViaSpacing / NumNiTerminals etc. are
    // intentionally ignored: the placer derives tile geometry from the die.
  }
  (void)nlayers;
  (void)ctx;
  // Aggregate per-layer track capacities into one 2-D capacity per direction.
  // Capacity lists are in routing tracks already (contest convention divides
  // raw capacity by wire pitch; if MinWireWidth/Spacing are given, scale).
  double h = 0, v = 0;
  for (std::size_t i = 0; i < hcap.size(); ++i) {
    const double pitch =
        (i < wire_w.size() && i < wire_sp.size()) ? wire_w[i] + wire_sp[i] : 1.0;
    h += hcap[i] / std::max(1.0, pitch);
    v += (i < vcap.size() ? vcap[i] : 0.0) / std::max(1.0, pitch);
  }
  rg.h_capacity = h;
  rg.v_capacity = v;
  if (rg.nx > 0 && rg.ny > 0 && (h > 0 || v > 0)) d.set_route_grid(rg);
}

void read_pl_into_ctx(Design& d, const fs::path& pl_file, const ParseCtx& ctx) {
  BsReader r(pl_file);
  while (auto toks = r.next()) {
    auto& t = *toks;
    if (t.size() < 3) continue;
    const CellId c = d.find_cell(t[0]);
    if (c == kInvalidId) {
      if (!ctx.lenient()) r.fail("pl references unknown node '" + t[0] + "'");
      RP_COUNT("parse.repair.unknown_pl_nodes", 1);
      ctx.count(&ParseRepairs::unknown_pl_nodes);
      continue;
    }
    Cell& k = d.cell(c);
    k.pos.x = expect_double(r, t, 1);
    k.pos.y = expect_double(r, t, 2);
    for (std::size_t i = 3; i < t.size(); ++i) {
      if (iequals(t[i], "/FIXED") || iequals(t[i], "/FIXED_NI")) k.fixed = true;
    }
  }
}

/// Lenient repair: a fixed non-terminal cell with zero overlap with the die
/// contributes nothing to fixed capacity yet anchors its nets off-core —
/// almost always a corrupt .pl coordinate. Clamp it onto the die. Terminals
/// (IO pads) legitimately live outside the die and are left alone.
void clamp_out_of_die_fixed(Design& d, const Rect& die, const ParseCtx& ctx) {
  for (CellId c = 0; c < d.num_cells(); ++c) {
    Cell& k = d.cell(c);
    if (!k.fixed || k.kind == CellKind::Terminal) continue;
    const Rect rct = d.cell_rect(c);
    if (rct.overlap_area(die) > 0) continue;
    k.pos.x = std::clamp(k.pos.x, die.lx, std::max(die.lx, die.hx - k.w));
    k.pos.y = std::clamp(k.pos.y, die.ly, std::max(die.ly, die.hy - k.h));
    RP_WARN("lenient: fixed cell '%s' was entirely outside the die; clamped to "
            "(%.1f, %.1f)", k.name.c_str(), k.pos.x, k.pos.y);
    RP_COUNT("parse.repair.clamped_fixed_cells", 1);
    ctx.count(&ParseRepairs::clamped_fixed_cells);
  }
}

}  // namespace

Design read_bookshelf(const fs::path& aux_file, const BookshelfOptions& opt) {
  ParseCtx ctx{opt.mode, opt.repairs};
  if (ctx.rep != nullptr) *ctx.rep = ParseRepairs{};

  std::ifstream aux(aux_file);
  if (!aux)
    throw Error(ErrorCode::ResourceError, "cannot open '" + aux_file.string() + "'");
  std::string line, content;
  while (std::getline(aux, line)) {
    const auto t = trim(line);
    if (!t.empty() && t[0] != '#') {
      content = std::string(t);
      break;
    }
  }
  // "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl [a.shapes a.route]"
  const auto toks = split(content, " \t:");
  fs::path nodes, nets, wts, pl, scl, route;
  for (const auto& tok : toks) {
    if (ends_with(tok, ".nodes")) nodes = tok;
    else if (ends_with(tok, ".nets")) nets = tok;
    else if (ends_with(tok, ".wts")) wts = tok;
    else if (ends_with(tok, ".pl")) pl = tok;
    else if (ends_with(tok, ".scl")) scl = tok;
    else if (ends_with(tok, ".route")) route = tok;
  }
  if (nodes.empty() || nets.empty() || pl.empty() || scl.empty())
    throw Error(ErrorCode::ParseError, "missing required file references",
                aux_file.string() + ":1", "parse");
  const fs::path dir = aux_file.parent_path();

  Design d;
  d.set_name(nodes.stem().string());

  // Rows first so macro-vs-stdcell classification can use the row height.
  Design rows_probe;  // temporary: rows only
  read_scl_into(rows_probe, dir / scl, ctx);
  double row_h = 0.0;
  for (const Row& r : rows_probe.rows()) row_h = std::max(row_h, r.height);
  if (row_h <= 0)
    throw Error(ErrorCode::ParseError, "no usable rows", (dir / scl).string(), "parse");

  for (const NodeRec& n : read_nodes(dir / nodes, ctx)) {
    CellKind kind = CellKind::StdCell;
    if (n.terminal) kind = CellKind::Terminal;
    else if (n.h > row_h * 1.5) kind = CellKind::Macro;
    d.add_cell(n.name, n.w, n.h, kind);
  }
  read_nets_into(d, dir / nets, ctx);
  if (!wts.empty() && fs::exists(dir / wts)) read_wts_into(d, dir / wts, ctx);
  read_scl_into(d, dir / scl, ctx);
  read_pl_into_ctx(d, dir / pl, ctx);

  // Die = bounding box of rows (the core area).
  Rect die = Rect::empty_bbox();
  for (const Row& r : d.rows())
    die = die.cover(Rect{r.lx, r.y, r.hx, r.y + r.height});
  d.set_die(die);

  if (ctx.lenient()) clamp_out_of_die_fixed(d, die, ctx);

  if (!route.empty() && fs::exists(dir / route)) read_route_into(d, dir / route, ctx);

  d.finalize();
  {
    // Parse-end summary on the event bus; the total comes from the per-run
    // "parse.repair.*" counters so it matches the report's parse block.
    const telemetry::Registry& reg = telemetry::Registry::instance();
    std::int64_t total = 0;
    for (const auto& [name, c] : reg.counters_map())
      if (name.rfind("parse.repair.", 0) == 0) total += c.value;
    obs::Event e = obs::events().make(
        obs::EventKind::ParseRepair, ctx.lenient() ? "lenient" : "strict");
    e.i0 = total;
    obs::events().emit(e);
  }
  if (ctx.rep != nullptr && ctx.rep->total() > 0)
    RP_WARN("lenient parse of '%s' made %ld repair(s)", d.name().c_str(),
            ctx.rep->total());
  RP_INFO("read bookshelf '%s': %d cells (%d macros), %d nets, %d rows, util %.1f%%",
          d.name().c_str(), d.num_cells(), d.num_macros(), d.num_nets(), d.num_rows(),
          100.0 * d.utilization());
  return d;
}

void read_pl_into(Design& d, const fs::path& pl_file, const BookshelfOptions& opt) {
  ParseCtx ctx{opt.mode, opt.repairs};
  read_pl_into_ctx(d, pl_file, ctx);
}

void write_pl(const Design& d, const fs::path& pl_file) {
  std::ofstream out(pl_file);
  if (!out)
    throw Error(ErrorCode::ResourceError, "cannot write '" + pl_file.string() + "'");
  out << std::setprecision(17);
  out << "UCLA pl 1.0\n# generated by routplace\n\n";
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    out << k.name << '\t' << k.pos.x << '\t' << k.pos.y << " : N";
    if (k.fixed) out << " /FIXED";
    out << '\n';
  }
}

void write_bookshelf(const Design& d, const fs::path& dir, const std::string& base) {
  fs::create_directories(dir);
  const auto p = [&](const char* ext) { return dir / (base + ext); };

  {
    std::ofstream out(p(".aux"));
    out << "RowBasedPlacement : " << base << ".nodes " << base << ".nets " << base
        << ".wts " << base << ".pl " << base << ".scl";
    if (d.route_grid().valid()) out << " " << base << ".route";
    out << "\n";
  }
  {
    std::ofstream out(p(".nodes"));
    out << std::setprecision(17);
    out << "UCLA nodes 1.0\n\n";
    int terms = 0;
    for (CellId c = 0; c < d.num_cells(); ++c)
      if (d.cell(c).kind == CellKind::Terminal) ++terms;
    out << "NumNodes : " << d.num_cells() << "\n";
    out << "NumTerminals : " << terms << "\n";
    for (CellId c = 0; c < d.num_cells(); ++c) {
      const Cell& k = d.cell(c);
      out << '\t' << k.name << '\t' << k.w << '\t' << k.h;
      if (k.kind == CellKind::Terminal) out << "\tterminal";
      out << '\n';
    }
  }
  {
    std::ofstream out(p(".nets"));
    out << std::setprecision(17);
    out << "UCLA nets 1.0\n\n";
    out << "NumNets : " << d.num_nets() << "\n";
    out << "NumPins : " << d.num_pins() << "\n";
    for (NetId n = 0; n < d.num_nets(); ++n) {
      const Net& net = d.net(n);
      out << "NetDegree : " << net.degree() << "\t" << net.name << "\n";
      for (const PinId pid : net.pins) {
        const Pin& pin = d.pin(pid);
        out << '\t' << d.cell(pin.cell).name << "\tB : " << pin.offset.x << '\t'
            << pin.offset.y << '\n';
      }
    }
  }
  {
    std::ofstream out(p(".wts"));
    out << std::setprecision(17);
    out << "UCLA wts 1.0\n\n";
    for (NetId n = 0; n < d.num_nets(); ++n)
      out << d.net(n).name << '\t' << d.net(n).weight << '\n';
  }
  write_pl(d, p(".pl"));
  {
    std::ofstream out(p(".scl"));
    out << std::setprecision(17);
    out << "UCLA scl 1.0\n\n";
    out << "NumRows : " << d.num_rows() << "\n";
    for (int i = 0; i < d.num_rows(); ++i) {
      const Row& r = d.row(i);
      const long nsites =
          static_cast<long>((r.hx - r.lx) / (r.site_w > 0 ? r.site_w : 1.0) + 0.5);
      out << "CoreRow Horizontal\n";
      out << "  Coordinate : " << r.y << "\n";
      out << "  Height : " << r.height << "\n";
      out << "  Sitewidth : " << r.site_w << "\n";
      out << "  Sitespacing : " << r.site_w << "\n";
      out << "  Siteorient : N\n  Sitesymmetry : Y\n";
      out << "  SubrowOrigin : " << r.lx << " NumSites : " << nsites << "\n";
      out << "End\n";
    }
  }
  if (d.route_grid().valid()) {
    const RouteGridInfo& rg = d.route_grid();
    std::ofstream out(p(".route"));
    out << std::setprecision(17);
    out << "route 1.0\n\n";
    out << "Grid : " << rg.nx << " " << rg.ny << " 1\n";
    out << "VerticalCapacity : " << rg.v_capacity << "\n";
    out << "HorizontalCapacity : " << rg.h_capacity << "\n";
    out << "MinWireWidth : 1\nMinWireSpacing : 0\n";
    out << "BlockagePorosity : " << rg.macro_porosity << "\n";
  }
}

}  // namespace rp
