#pragma once
// The placement database: cells, pins, nets, rows, fence regions, routing
// grid description, and the design hierarchy.
//
// Conventions
//  * Cell positions are the LOWER-LEFT corner (Bookshelf convention);
//    `cell_center`/`set_center` convert.
//  * Pin offsets are measured from the CELL CENTER (Bookshelf convention).
//  * Ids (CellId/NetId/PinId) are dense ints; kInvalidId == -1.
//  * Movable vs fixed: `Cell::fixed` — terminals and pre-placed macros are
//    fixed; everything the placer may move is !fixed.

#include <string>
#include <unordered_map>
#include <vector>

#include "db/hierarchy.hpp"
#include "util/geometry.hpp"

namespace rp {

using CellId = int;
using NetId = int;
using PinId = int;
inline constexpr int kInvalidId = -1;

enum class CellKind {
  StdCell,   ///< Row-aligned movable standard cell.
  Macro,     ///< Large block; movable unless fixed; blocks routing partially.
  Terminal,  ///< I/O pad or pre-placed blockage; always fixed.
};

struct Pin {
  CellId cell = kInvalidId;
  NetId net = kInvalidId;
  Point offset;  ///< From the owning cell's center.
};

struct Cell {
  std::string name;
  double w = 0.0;
  double h = 0.0;
  CellKind kind = CellKind::StdCell;
  bool fixed = false;
  Point pos;             ///< Lower-left corner.
  int region = kInvalidId;  ///< Fence region id, or kInvalidId if unconstrained.
  int hier = 0;          ///< HierTree module node containing this cell.
  std::vector<PinId> pins;

  double area() const { return w * h; }
  bool is_macro() const { return kind == CellKind::Macro; }
  bool movable() const { return !fixed; }
};

struct Net {
  std::string name;
  std::vector<PinId> pins;
  double weight = 1.0;

  int degree() const { return static_cast<int>(pins.size()); }
};

/// A placement row of sites (Bookshelf .scl SiteRow).
struct Row {
  double y = 0.0;       ///< Bottom edge.
  double height = 0.0;
  double lx = 0.0;      ///< Leftmost site edge.
  double hx = 0.0;      ///< Rightmost edge (lx + num_sites * site_w).
  double site_w = 1.0;
};

/// Fence region: member cells must be placed inside the union of rects.
struct Region {
  std::string name;
  std::vector<Rect> rects;

  bool contains(Point p) const {
    for (const auto& r : rects)
      if (r.contains(p)) return true;
    return false;
  }
  Rect bbox() const {
    Rect b = Rect::empty_bbox();
    for (const auto& r : rects) b = b.cover(r);
    return b;
  }
};

/// Global-routing grid description (aggregated over layers, Bookshelf .route
/// style). Capacities are in routing tracks per grid-edge; macros derate the
/// capacity of tiles they cover by (1 - porosity).
struct RouteGridInfo {
  int nx = 0;
  int ny = 0;
  double h_capacity = 0.0;  ///< Tracks per horizontal edge (per tile row).
  double v_capacity = 0.0;  ///< Tracks per vertical edge.
  double wire_spacing = 1.0;  ///< Track pitch: wirelength per track per tile.
  double macro_porosity = 0.1;  ///< Fraction of capacity surviving over a macro.

  bool valid() const { return nx > 0 && ny > 0 && h_capacity > 0 && v_capacity > 0; }
};

/// The full design: netlist + floorplan + routing description + hierarchy.
///
/// Construction: use the add_* methods (or the Bookshelf reader / benchmark
/// generator), then call finalize() once. finalize() freezes name lookups and
/// computes derived data; it must be called before placement.
class Design {
 public:
  // ---- construction ----
  CellId add_cell(std::string name, double w, double h, CellKind kind = CellKind::StdCell);
  NetId add_net(std::string name, double weight = 1.0);
  /// Connect cell to net with a pin at `offset` from the cell center.
  PinId connect(CellId c, NetId n, Point offset = {});
  void add_row(const Row& r) { rows_.push_back(r); }
  int add_region(Region r);
  /// Assign a cell to a fence region.
  void set_region(CellId c, int region) { cells_[c].region = region; }

  void set_name(std::string n) { name_ = std::move(n); }
  void set_die(Rect r) { die_ = r; }
  void set_route_grid(const RouteGridInfo& rg) { route_ = rg; }

  /// Derive the hierarchy tree from '/'-separated instance names.
  /// Called by finalize() when no hierarchy was installed explicitly.
  void build_hierarchy_from_names();

  /// Validate & freeze. Throws std::runtime_error on inconsistencies
  /// (degenerate die, pins referencing bad ids, rows outside die, ...).
  void finalize();
  bool finalized() const { return finalized_; }

  /// Recompute the movable-cell list and area statistics after fixed flags
  /// changed (e.g. freeze_macros). Cheap; does not re-validate.
  void refresh_derived();

  // ---- identity ----
  const std::string& name() const { return name_; }
  const Rect& die() const { return die_; }
  const RouteGridInfo& route_grid() const { return route_; }
  RouteGridInfo& route_grid_mutable() { return route_; }

  // ---- netlist access ----
  int num_cells() const { return static_cast<int>(cells_.size()); }
  int num_nets() const { return static_cast<int>(nets_.size()); }
  int num_pins() const { return static_cast<int>(pins_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_regions() const { return static_cast<int>(regions_.size()); }

  const Cell& cell(CellId c) const { return cells_[c]; }
  Cell& cell(CellId c) { return cells_[c]; }
  const Net& net(NetId n) const { return nets_[n]; }
  Net& net(NetId n) { return nets_[n]; }
  const Pin& pin(PinId p) const { return pins_[p]; }
  const Row& row(int i) const { return rows_[i]; }
  const Region& region(int i) const { return regions_[i]; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }
  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<Region>& regions() const { return regions_; }
  const HierTree& hierarchy() const { return hier_; }
  HierTree& hierarchy_mutable() { return hier_; }

  CellId find_cell(std::string_view name) const;
  NetId find_net(std::string_view name) const;

  // ---- geometry helpers ----
  Rect cell_rect(CellId c) const {
    const Cell& k = cells_[c];
    return {k.pos.x, k.pos.y, k.pos.x + k.w, k.pos.y + k.h};
  }
  Point cell_center(CellId c) const {
    const Cell& k = cells_[c];
    return {k.pos.x + k.w / 2, k.pos.y + k.h / 2};
  }
  void set_center(CellId c, Point ctr) {
    Cell& k = cells_[c];
    k.pos = {ctr.x - k.w / 2, ctr.y - k.h / 2};
  }
  Point pin_pos(PinId p) const {
    const Pin& pn = pins_[p];
    return cell_center(pn.cell) + pn.offset;
  }

  // ---- derived stats (valid after finalize) ----
  double total_movable_area() const { return movable_area_; }
  double total_fixed_area_in_die() const { return fixed_area_; }
  /// Placement utilization: movable area / (die area - fixed area).
  double utilization() const;
  double row_height() const { return row_height_; }
  int num_movable() const { return num_movable_; }
  int num_macros() const { return num_macros_; }
  int num_movable_macros() const { return num_movable_macros_; }

  /// Half-perimeter wirelength of the current placement (weighted).
  double hpwl() const;
  /// HPWL of a single net.
  double net_hpwl(NetId n) const;
  /// Bounding box of a net's pins.
  Rect net_bbox(NetId n) const;

  /// Movable cell ids (std cells + movable macros), precomputed by finalize.
  const std::vector<CellId>& movable_cells() const { return movable_; }

 private:
  std::string name_ = "design";
  Rect die_;
  RouteGridInfo route_;

  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<Pin> pins_;
  std::vector<Row> rows_;
  std::vector<Region> regions_;
  HierTree hier_;

  std::unordered_map<std::string, CellId> cell_by_name_;
  std::unordered_map<std::string, NetId> net_by_name_;

  std::vector<CellId> movable_;
  double movable_area_ = 0.0;
  double fixed_area_ = 0.0;
  double row_height_ = 0.0;
  int num_movable_ = 0;
  int num_macros_ = 0;
  int num_movable_macros_ = 0;
  bool finalized_ = false;
  bool hier_built_ = false;

  friend class BenchmarkBuilder;
};

}  // namespace rp
