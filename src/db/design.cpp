#include "db/design.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"

namespace rp {

CellId Design::add_cell(std::string name, double w, double h, CellKind kind) {
  RP_ASSERT(!finalized_, "add_cell after finalize");
  if (w < 0 || h < 0) RP_THROW(ErrorCode::ValidationError, "cell '" + name + "' has negative size");
  const CellId id = num_cells();
  Cell c;
  c.name = std::move(name);
  c.w = w;
  c.h = h;
  c.kind = kind;
  c.fixed = (kind == CellKind::Terminal);
  if (!cell_by_name_.emplace(c.name, id).second)
    RP_THROW(ErrorCode::ValidationError, "duplicate cell name '" + c.name + "'");
  cells_.push_back(std::move(c));
  return id;
}

NetId Design::add_net(std::string name, double weight) {
  RP_ASSERT(!finalized_, "add_net after finalize");
  const NetId id = num_nets();
  Net n;
  n.name = std::move(name);
  n.weight = weight;
  if (!net_by_name_.emplace(n.name, id).second)
    RP_THROW(ErrorCode::ValidationError, "duplicate net name '" + n.name + "'");
  nets_.push_back(std::move(n));
  return id;
}

PinId Design::connect(CellId c, NetId n, Point offset) {
  RP_ASSERT(!finalized_, "connect after finalize");
  if (c < 0 || c >= num_cells()) RP_THROW(ErrorCode::ValidationError, "connect: bad cell id");
  if (n < 0 || n >= num_nets()) RP_THROW(ErrorCode::ValidationError, "connect: bad net id");
  const PinId id = num_pins();
  pins_.push_back(Pin{c, n, offset});
  cells_[c].pins.push_back(id);
  nets_[n].pins.push_back(id);
  return id;
}

int Design::add_region(Region r) {
  const int id = num_regions();
  regions_.push_back(std::move(r));
  return id;
}

CellId Design::find_cell(std::string_view name) const {
  const auto it = cell_by_name_.find(std::string(name));
  return it == cell_by_name_.end() ? kInvalidId : it->second;
}

NetId Design::find_net(std::string_view name) const {
  const auto it = net_by_name_.find(std::string(name));
  return it == net_by_name_.end() ? kInvalidId : it->second;
}

void Design::build_hierarchy_from_names() {
  hier_ = HierTree();
  for (auto& c : cells_) c.hier = hier_.add_cell_path(c.name);
  hier_built_ = true;
}

void Design::refresh_derived() {
  movable_.clear();
  movable_area_ = fixed_area_ = 0.0;
  num_movable_ = num_macros_ = num_movable_macros_ = 0;
  for (CellId c = 0; c < num_cells(); ++c) {
    const Cell& k = cells_[c];
    if (k.is_macro()) ++num_macros_;
    if (k.movable()) {
      movable_.push_back(c);
      movable_area_ += k.area();
      ++num_movable_;
      if (k.is_macro()) ++num_movable_macros_;
    } else {
      // Only the on-die part of a fixed object consumes placement capacity.
      fixed_area_ += cell_rect(c).overlap_area(die_);
    }
  }
}

double Design::utilization() const {
  const double free_area = die_.area() - fixed_area_;
  return free_area > 0 ? movable_area_ / free_area : 0.0;
}

void Design::finalize() {
  if (finalized_) return;
  if (die_.width() <= 0 || die_.height() <= 0)
    RP_THROW(ErrorCode::ValidationError, "finalize: die area is degenerate");

  if (!hier_built_) build_hierarchy_from_names();

  for (CellId c = 0; c < num_cells(); ++c) {
    const Cell& k = cells_[c];
    if (k.region != kInvalidId && k.region >= num_regions())
      RP_THROW(ErrorCode::ValidationError, "cell '" + k.name + "' references bad region");
  }
  refresh_derived();

  row_height_ = 0.0;
  for (const Row& r : rows_) {
    if (r.height <= 0) RP_THROW(ErrorCode::ValidationError, "finalize: row with non-positive height");
    if (row_height_ == 0.0) {
      row_height_ = r.height;
    } else if (std::abs(row_height_ - r.height) > 1e-9) {
      RP_THROW(ErrorCode::ValidationError, "finalize: mixed row heights are not supported");
    }
  }
  if (rows_.empty()) {
    // Designs without explicit rows (pure analytic experiments): synthesize
    // rows covering the die so legalization still works.
    const double rh = std::max(1.0, die_.height() / 100.0);
    for (double y = die_.ly; y + rh <= die_.hy + 1e-9; y += rh) {
      rows_.push_back(Row{y, rh, die_.lx, die_.hx, 1.0});
    }
    row_height_ = rh;
    RP_DEBUG("finalize: synthesized %d rows of height %.2f", num_rows(), rh);
  }

  if (movable_.empty()) RP_THROW(ErrorCode::ValidationError, "finalize: no movable cells");
  if (utilization() > 1.0 + 1e-9)
    RP_THROW(ErrorCode::ValidationError, "finalize: utilization exceeds 1.0; design cannot be placed");

  finalized_ = true;
}

Rect Design::net_bbox(NetId n) const {
  BBox bb;
  for (const PinId p : nets_[n].pins) bb.add(pin_pos(p));
  return bb.r;
}

double Design::net_hpwl(NetId n) const {
  if (nets_[n].pins.size() < 2) return 0.0;
  BBox bb;
  for (const PinId p : nets_[n].pins) bb.add(pin_pos(p));
  return bb.half_perimeter();
}

double Design::hpwl() const {
  double sum = 0.0;
  for (NetId n = 0; n < num_nets(); ++n) sum += nets_[n].weight * net_hpwl(n);
  return sum;
}

}  // namespace rp
