#include "db/hierarchy.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/str.hpp"

namespace rp {

HierTree::HierTree() {
  Node rootnode;
  rootnode.name = "<top>";
  nodes_.push_back(std::move(rootnode));
}

std::string HierTree::key(int parent, std::string_view name) {
  return std::to_string(parent) + "/" + std::string(name);
}

int HierTree::get_or_add_child(int parent, std::string_view name) {
  RP_ASSERT(parent >= 0 && parent < num_nodes(), "HierTree: bad parent");
  const std::string k = key(parent, name);
  if (const auto it = child_lookup_.find(k); it != child_lookup_.end()) return it->second;
  const int id = num_nodes();
  Node n;
  n.name = std::string(name);
  n.parent = parent;
  n.depth = nodes_[parent].depth + 1;
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(id);
  child_lookup_.emplace(k, id);
  return id;
}

int HierTree::add_cell_path(std::string_view instance_path) {
  const auto comps = hier_components(instance_path);
  int cur = root();
  // All components except the last (the cell's own name) are modules.
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    cur = get_or_add_child(cur, comps[i]);
  }
  nodes_[cur].num_cells += 1;
  return cur;
}

int HierTree::common_ancestor_depth(int a, int b) const {
  RP_ASSERT(a >= 0 && a < num_nodes() && b >= 0 && b < num_nodes(),
            "HierTree: bad node id");
  while (nodes_[a].depth > nodes_[b].depth) a = nodes_[a].parent;
  while (nodes_[b].depth > nodes_[a].depth) b = nodes_[b].parent;
  while (a != b) {
    a = nodes_[a].parent;
    b = nodes_[b].parent;
  }
  return nodes_[a].depth;
}

int HierTree::max_depth() const {
  int d = 0;
  for (const auto& n : nodes_) d = std::max(d, n.depth);
  return d;
}

std::string HierTree::path(int id) const {
  RP_ASSERT(id >= 0 && id < num_nodes(), "HierTree: bad node id");
  if (id == root()) return "";
  std::string p = nodes_[id].name;
  for (int cur = nodes_[id].parent; cur != root(); cur = nodes_[cur].parent) {
    p = nodes_[cur].name + "/" + p;
  }
  return p;
}

}  // namespace rp
