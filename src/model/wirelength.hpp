#pragma once
// Differentiable wirelength models.
//
// HPWL is non-smooth; analytical placement replaces it per net and axis with
// a smooth approximation controlled by a smoothing parameter gamma:
//
//  * LSE (log-sum-exp):   gamma * (log Σ e^{x/γ} + log Σ e^{-x/γ})
//    Classic NTUplace3 model; always an OVER-estimate of HPWL.
//  * WA (weighted-average): Σ x e^{x/γ} / Σ e^{x/γ} - Σ x e^{-x/γ} / Σ e^{-x/γ}
//    (Hsu/Chang model) — an UNDER-estimate with strictly smaller absolute
//    error bound than LSE at the same γ (error ≤ γ·ln n for LSE vs ≤ γ/e·...).
//
// Both implementations subtract the per-net max/min before exponentiating,
// so they are numerically stable for any γ down to ~1e-3 of the die size.
//
// eval() returns the model value and ACCUMULATES dWL/dx into grad arrays
// (callers zero them). Gradients flow to every node, fixed included; the
// solver masks fixed nodes.

#include <memory>
#include <span>
#include <string>

#include "model/problem.hpp"

namespace rp {

class WirelengthModel {
 public:
  virtual ~WirelengthModel() = default;
  virtual std::string name() const = 0;
  /// Smoothed wirelength + gradient accumulation. gx/gy sized num_nodes.
  virtual double eval(const PlaceProblem& p, std::span<double> gx,
                      std::span<double> gy) const = 0;
  /// Value only (no gradient).
  double value(const PlaceProblem& p) const;

  virtual void set_gamma(double g) { gamma_ = g; }
  double gamma() const { return gamma_; }

 protected:
  double gamma_ = 1.0;
};

class LseWirelength final : public WirelengthModel {
 public:
  explicit LseWirelength(double gamma = 1.0) { gamma_ = gamma; }
  std::string name() const override { return "LSE"; }
  double eval(const PlaceProblem& p, std::span<double> gx,
              std::span<double> gy) const override;
};

class WaWirelength final : public WirelengthModel {
 public:
  explicit WaWirelength(double gamma = 1.0) { gamma_ = gamma; }
  std::string name() const override { return "WA"; }
  double eval(const PlaceProblem& p, std::span<double> gx,
              std::span<double> gy) const override;
};

std::unique_ptr<WirelengthModel> make_wirelength_model(const std::string& name,
                                                       double gamma);

}  // namespace rp
