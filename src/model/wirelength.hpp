#pragma once
// Differentiable wirelength models.
//
// HPWL is non-smooth; analytical placement replaces it per net and axis with
// a smooth approximation controlled by a smoothing parameter gamma:
//
//  * LSE (log-sum-exp):   gamma * (log Σ e^{x/γ} + log Σ e^{-x/γ})
//    Classic NTUplace3 model; always an OVER-estimate of HPWL.
//  * WA (weighted-average): Σ x e^{x/γ} / Σ e^{x/γ} - Σ x e^{-x/γ} / Σ e^{-x/γ}
//    (Hsu/Chang model) — an UNDER-estimate with strictly smaller absolute
//    error bound than LSE at the same γ (error ≤ γ·ln n for LSE vs ≤ γ/e·...).
//
// Both implementations subtract the per-net max/min before exponentiating,
// so they are numerically stable for any γ down to ~1e-3 of the die size.
//
// eval() returns the model value and ACCUMULATES dWL/dx into grad arrays
// (callers zero them). Gradients flow to every node, fixed included; the
// solver masks fixed nodes.
//
// Evaluation is parallel over net chunks through util/parallel on a CSR
// flattening of the netlist (model/netlist_csr.hpp): each net writes its
// per-pin gradients into pin-owned slots (race-free), the value is reduced
// in fixed chunk order, and a second parallel pass gathers per-node
// gradients over each node's pin list in ascending pin order — so results
// are bitwise identical for any thread count. The CSR view and per-thread
// exp scratch live in the model and are rebuilt only when the problem
// shape (node/pin/net counts) changes; steady-state evals allocate nothing.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model/netlist_csr.hpp"
#include "model/problem.hpp"

namespace rp {

/// Per-thread exp scratch for one net axis (owned by the model, one slot
/// per pool thread, reused across nets and evals). prepare() sizes every
/// slot to the CSR's max net degree up front; ensure() revalidates at each
/// use so a model evaluated on a larger design through a reused ThreadPool
/// can never index past a stale capacity (the buffers only ever grow).
struct WlThreadScratch {
  std::vector<double> ep;   ///< e^{(c - max)/γ}
  std::vector<double> em;   ///< e^{(min - c)/γ}
  std::vector<double> arg;  ///< exp arguments (batched SIMD input)

  void ensure(std::size_t n) {
    if (ep.size() < n) {
      ep.resize(n);
      em.resize(n);
      arg.resize(n);
    }
  }
};

class WirelengthModel {
 public:
  virtual ~WirelengthModel() = default;
  virtual std::string name() const = 0;
  /// Smoothed wirelength + gradient accumulation. gx/gy sized num_nodes.
  virtual double eval(const PlaceProblem& p, std::span<double> gx,
                      std::span<double> gy) const = 0;
  /// Value only — skips every gradient store and the node gather pass.
  virtual double value(const PlaceProblem& p) const = 0;

  virtual void set_gamma(double g) { gamma_ = g; }
  double gamma() const { return gamma_; }

 protected:
  double gamma_ = 1.0;

  /// CSR view of p, rebuilt when the problem shape changes; also sizes the
  /// per-thread scratch to the current pool width.
  NetlistCsr& prepare(const PlaceProblem& p) const;
  std::vector<WlThreadScratch>& scratch() const { return scratch_; }

 private:
  mutable NetlistCsr csr_;
  mutable bool csr_valid_ = false;
  mutable std::vector<WlThreadScratch> scratch_;
};

class LseWirelength final : public WirelengthModel {
 public:
  explicit LseWirelength(double gamma = 1.0) { gamma_ = gamma; }
  std::string name() const override { return "LSE"; }
  double eval(const PlaceProblem& p, std::span<double> gx,
              std::span<double> gy) const override;
  double value(const PlaceProblem& p) const override;
};

class WaWirelength final : public WirelengthModel {
 public:
  explicit WaWirelength(double gamma = 1.0) { gamma_ = gamma; }
  std::string name() const override { return "WA"; }
  double eval(const PlaceProblem& p, std::span<double> gx,
              std::span<double> gy) const override;
  double value(const PlaceProblem& p) const override;
};

std::unique_ptr<WirelengthModel> make_wirelength_model(const std::string& name,
                                                       double gamma);

}  // namespace rp
