#pragma once
// PlaceProblem: the flat numeric view of a placement instance that the
// analytical engine operates on.
//
// Both the real Design and the clustered netlists of the multilevel flow
// lower to this structure, so one solver serves every level. Coordinates are
// node CENTERS in x[]/y[]. Fixed nodes participate in nets and in the fixed
// density map but are never moved.
//
// `inflate[v]` is the routability cell-inflation factor: the density model
// charges area[v] * inflate[v] instead of area[v] (wirelength is unaffected).

#include <vector>

#include "db/design.hpp"
#include "util/geometry.hpp"

namespace rp {

struct PlaceNode {
  double w = 0.0;
  double h = 0.0;
  bool fixed = false;
  bool macro = false;
  double area() const { return w * h; }
};

struct PlacePin {
  int node = -1;
  double ox = 0.0;  ///< Offset from node center.
  double oy = 0.0;
};

struct PlaceNet {
  int pin_begin = 0;  ///< Range into PlaceProblem::pins.
  int pin_end = 0;
  double weight = 1.0;
  int degree() const { return pin_end - pin_begin; }
};

struct PlaceProblem {
  Rect die;
  std::vector<PlaceNode> nodes;
  std::vector<PlacePin> pins;  ///< Grouped by net, net order.
  std::vector<PlaceNet> nets;
  std::vector<double> x;       ///< Node center x.
  std::vector<double> y;
  std::vector<double> inflate; ///< Density inflation per node (default 1.0).

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  int num_nets() const { return static_cast<int>(nets.size()); }

  double movable_area() const;
  /// Exact HPWL at the current coordinates (weighted).
  double hpwl() const;
  /// Clamp every movable node center so the node stays inside the die.
  void clamp_to_die();
  /// Internal-consistency checks (sizes match, pin node ids valid, ...).
  void validate() const;
};

/// Lower a finalized Design to a PlaceProblem. Node v corresponds to cell v
/// (same indexing); positions are taken from the design.
PlaceProblem make_problem(const Design& d);

/// Write problem coordinates back into design cell positions (centers).
void apply_solution(const PlaceProblem& p, Design& d);

}  // namespace rp
