#pragma once
// Flat CSR (compressed sparse row) view of a netlist, shared by the
// wirelength model and the routing estimator.
//
// The AoS structures (PlacePin / db::Net) are convenient to build but force
// the hot kernels into pointer-chasing loops. This flattens both directions
// of the bipartite net<->node graph into contiguous arrays:
//
//   net  -> pins : net_offset[n] .. net_offset[n+1] index into the pin arrays
//   pin  -> node : pin_node / pin_ox / pin_oy (SoA)
//   node -> pins : node_pin_offset / node_pin, pin ids ASCENDING — the order
//                  in which a sequential walk over nets touches each node,
//                  so a per-node gather reproduces the sequential gradient
//                  accumulation order bit for bit.
//
// plus per-pin gather/scatter buffers (pin_cx/pin_cy, pin_gx/pin_gy) that
// let the parallel kernels write per-PIN results race-free: every pin is
// owned by exactly one net, every net by exactly one chunk.

#include <vector>

#include "db/design.hpp"
#include "model/problem.hpp"

namespace rp {

struct NetlistCsr {
  int num_nodes = 0;
  int num_nets = 0;
  int num_pins = 0;
  int max_net_degree = 0;  ///< upper bound for per-net kernel scratch

  // net -> pin range
  std::vector<int> net_offset;     ///< size num_nets + 1
  std::vector<double> net_weight;  ///< size num_nets

  // pin -> node (SoA)
  std::vector<int> pin_node;   ///< size num_pins
  std::vector<double> pin_ox;  ///< offset from node center
  std::vector<double> pin_oy;

  // node -> pin incidence (pin ids ascending per node)
  std::vector<int> node_pin_offset;  ///< size num_nodes + 1
  std::vector<int> node_pin;         ///< size num_pins

  // Per-pin gather / scatter buffers (kernel scratch, sized num_pins).
  std::vector<double> pin_cx, pin_cy;  ///< gathered pin coordinates
  std::vector<double> pin_gx, pin_gy;  ///< per-pin gradient scatter slots

  int net_degree(int n) const {
    return net_offset[static_cast<std::size_t>(n) + 1] -
           net_offset[static_cast<std::size_t>(n)];
  }

  /// Flatten a PlaceProblem's netlist (topology only; coordinates are
  /// gathered per eval with gather_coords).
  static NetlistCsr from_problem(const PlaceProblem& p);

  /// Flatten a Design's netlist; pin offsets are taken from Pin::offset so
  /// gather_coords(d) reproduces Design::pin_pos for every pin.
  static NetlistCsr from_design(const Design& d);

  /// Parallel gather of pin coordinates from problem node centers.
  void gather_coords(const PlaceProblem& p);
  /// Parallel gather of pin coordinates from design cell centers.
  void gather_coords(const Design& d);
};

}  // namespace rp
