#include "model/problem.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace rp {

double PlaceProblem::movable_area() const {
  double a = 0.0;
  for (const auto& n : nodes)
    if (!n.fixed) a += n.area();
  return a;
}

double PlaceProblem::hpwl() const {
  double sum = 0.0;
  for (const PlaceNet& net : nets) {
    if (net.degree() < 2) continue;
    BBox bb;
    for (int p = net.pin_begin; p < net.pin_end; ++p) {
      const PlacePin& pin = pins[static_cast<std::size_t>(p)];
      bb.add({x[static_cast<std::size_t>(pin.node)] + pin.ox,
              y[static_cast<std::size_t>(pin.node)] + pin.oy});
    }
    sum += net.weight * bb.half_perimeter();
  }
  return sum;
}

void PlaceProblem::clamp_to_die() {
  for (int v = 0; v < num_nodes(); ++v) {
    const auto& n = nodes[static_cast<std::size_t>(v)];
    if (n.fixed) continue;
    // Nodes wider than the die are centered.
    const double hw = std::min(n.w, die.width()) / 2;
    const double hh = std::min(n.h, die.height()) / 2;
    x[static_cast<std::size_t>(v)] = std::clamp(x[static_cast<std::size_t>(v)],
                                                die.lx + hw, die.hx - hw);
    y[static_cast<std::size_t>(v)] = std::clamp(y[static_cast<std::size_t>(v)],
                                                die.ly + hh, die.hy - hh);
  }
}

void PlaceProblem::validate() const {
  const auto n = nodes.size();
  if (x.size() != n || y.size() != n || inflate.size() != n)
    throw std::runtime_error("PlaceProblem: coordinate array size mismatch");
  if (die.width() <= 0 || die.height() <= 0)
    throw std::runtime_error("PlaceProblem: degenerate die");
  for (const PlaceNet& net : nets) {
    if (net.pin_begin < 0 || net.pin_end > static_cast<int>(pins.size()) ||
        net.pin_begin > net.pin_end)
      throw std::runtime_error("PlaceProblem: bad net pin range");
  }
  for (const PlacePin& p : pins) {
    if (p.node < 0 || p.node >= static_cast<int>(n))
      throw std::runtime_error("PlaceProblem: pin references bad node");
  }
}

PlaceProblem make_problem(const Design& d) {
  RP_ASSERT(d.finalized(), "make_problem needs a finalized design");
  PlaceProblem p;
  p.die = d.die();
  p.nodes.resize(static_cast<std::size_t>(d.num_cells()));
  p.x.resize(p.nodes.size());
  p.y.resize(p.nodes.size());
  p.inflate.assign(p.nodes.size(), 1.0);
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    auto& n = p.nodes[static_cast<std::size_t>(c)];
    n.w = k.w;
    n.h = k.h;
    n.fixed = k.fixed;
    n.macro = k.is_macro();
    const Point ctr = d.cell_center(c);
    p.x[static_cast<std::size_t>(c)] = ctr.x;
    p.y[static_cast<std::size_t>(c)] = ctr.y;
  }
  p.pins.reserve(static_cast<std::size_t>(d.num_pins()));
  p.nets.reserve(static_cast<std::size_t>(d.num_nets()));
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const Net& net = d.net(n);
    PlaceNet pn;
    pn.pin_begin = static_cast<int>(p.pins.size());
    pn.weight = net.weight;
    for (const PinId pid : net.pins) {
      const Pin& pin = d.pin(pid);
      p.pins.push_back(PlacePin{pin.cell, pin.offset.x, pin.offset.y});
    }
    pn.pin_end = static_cast<int>(p.pins.size());
    p.nets.push_back(pn);
  }
  p.validate();
  return p;
}

void apply_solution(const PlaceProblem& p, Design& d) {
  RP_ASSERT(p.num_nodes() == d.num_cells(), "apply_solution: node count mismatch");
  for (CellId c = 0; c < d.num_cells(); ++c) {
    if (d.cell(c).fixed) continue;
    d.set_center(c, {p.x[static_cast<std::size_t>(c)], p.y[static_cast<std::size_t>(c)]});
  }
}

}  // namespace rp
