#include "model/objective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/profiler.hpp"

namespace rp {

PlacementObjective::PlacementObjective(PlaceProblem& p, WirelengthModel& wl,
                                       DensityModel& dens)
    : p_(p), wl_(wl), dens_(dens) {
  for (int v = 0; v < p.num_nodes(); ++v)
    if (!p.nodes[static_cast<std::size_t>(v)].fixed) movable_.push_back(v);
  gx_.resize(p.nodes.size());
  gy_.resize(p.nodes.size());
}

std::vector<double> PlacementObjective::pack() const {
  std::vector<double> z(static_cast<std::size_t>(dim()));
  const std::size_t m = movable_.size();
  for (std::size_t i = 0; i < m; ++i) {
    z[i] = p_.x[static_cast<std::size_t>(movable_[i])];
    z[m + i] = p_.y[static_cast<std::size_t>(movable_[i])];
  }
  return z;
}

void PlacementObjective::unpack(std::span<const double> z) {
  if (static_cast<int>(z.size()) != dim())
    throw std::runtime_error("objective unpack: dimension mismatch");
  const std::size_t m = movable_.size();
  for (std::size_t i = 0; i < m; ++i) {
    p_.x[static_cast<std::size_t>(movable_[i])] = z[i];
    p_.y[static_cast<std::size_t>(movable_[i])] = z[m + i];
  }
  p_.clamp_to_die();
}

double PlacementObjective::eval(std::span<const double> z, std::span<double> grad) {
  RP_PROFILE_REGION("kernel/objective");
  unpack(z);
  std::fill(gx_.begin(), gx_.end(), 0.0);
  std::fill(gy_.begin(), gy_.end(), 0.0);
  last_wl_ = wl_.eval(p_, gx_, gy_);
  const std::size_t m = movable_.size();
  if (lambda_ != 0.0) {
    // Wirelength gradient packed first, then density added on top with λ.
    dx_.assign(p_.nodes.size(), 0.0);
    dy_.assign(p_.nodes.size(), 0.0);
    last_density_ = dens_.eval(p_, dx_, dy_);
    for (std::size_t i = 0; i < m; ++i) {
      const auto v = static_cast<std::size_t>(movable_[i]);
      grad[i] = gx_[v] + lambda_ * dx_[v];
      grad[m + i] = gy_[v] + lambda_ * dy_[v];
    }
  } else {
    last_density_ = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto v = static_cast<std::size_t>(movable_[i]);
      grad[i] = gx_[v];
      grad[m + i] = gy_[v];
    }
  }
  return last_wl_ + lambda_ * last_density_;
}

double PlacementObjective::balanced_lambda() {
  std::vector<double> wx(p_.nodes.size(), 0.0), wy(p_.nodes.size(), 0.0);
  std::vector<double> dx(p_.nodes.size(), 0.0), dy(p_.nodes.size(), 0.0);
  wl_.eval(p_, wx, wy);
  dens_.eval(p_, dx, dy);
  double nw = 0.0, nd = 0.0;
  for (const int v : movable_) {
    nw += std::abs(wx[static_cast<std::size_t>(v)]) + std::abs(wy[static_cast<std::size_t>(v)]);
    nd += std::abs(dx[static_cast<std::size_t>(v)]) + std::abs(dy[static_cast<std::size_t>(v)]);
  }
  return nd > 0 ? nw / nd : 1.0;
}

}  // namespace rp
