#pragma once
// Incremental HPWL evaluation for single-cell moves and swaps.
//
// Detailed placement and legalization evaluate thousands of candidate moves
// per committed move; recomputing every touched net's bounding box from its
// full pin list makes each candidate cost O(Σ degree of nets on the cell).
// This evaluator caches, per net, the box extremes AND the second extremes
// per axis, so trialing one moved pin is O(1) per net: removing a pin at
// the minimum exposes the cached second-minimum (duplicates included), and
// min/max against the pin's new coordinate restores the box.
//
// Bitwise-identity contract (the DP gate compares final placements byte for
// byte with incremental evaluation on vs off):
//  * min/max are exact selection operations, so an incrementally updated
//    extreme is the SAME double a full recompute over the pin list yields.
//  * Cached per-net cost uses the exact expression chain of
//    Design::net_hpwl — max(0, hx-lx) + max(0, hy-ly), times Net::weight —
//    and trial/total sums add per-net terms in ascending-net order, exactly
//    like CostEval's recompute loop and Design::hpwl().
//  * Pin coordinates are always formed as (pos + size/2) + offset, matching
//    Design::pin_pos; trial positions use the identical expression.
// Nets where a moved cell holds several pins (or both cells of a swap) fall
// back to a full recompute of that one net with position overrides — the
// same arithmetic the mutate-and-measure path performs.
//
// set_cross_check(true) (or RP_CHECK_INCREMENTAL=1) verifies every cached
// and trialed value against a from-scratch recompute and aborts on the
// first bit mismatch — the debug mode the determinism gate leans on.

#include <span>
#include <vector>

#include "db/design.hpp"
#include "util/grid.hpp"

namespace rp {

class IncrementalEval {
 public:
  explicit IncrementalEval(const Design& d);

  /// Recompute every net box/cost from current positions.
  void rebuild();

  /// Σ over all nets of cached weight·HPWL, ascending net order — bitwise
  /// equal to Design::hpwl().
  double total_cost() const;

  /// The sorted unique nets touching cell c (the same list
  /// CostEval::collect_nets({c}) builds, precomputed once).
  std::span<const NetId> cell_nets(CellId c) const {
    const auto b = static_cast<std::size_t>(cell_net_off_[static_cast<std::size_t>(c)]);
    const auto e = static_cast<std::size_t>(cell_net_off_[static_cast<std::size_t>(c) + 1]);
    return {cell_net_ids_.data() + b, e - b};
  }

  /// Sorted unique union of two cells' nets, merged into `out` (reused
  /// scratch; no per-call allocation in steady state).
  void union_nets(CellId a, CellId b, std::vector<NetId>& out) const;

  /// Σ cached cost over a sorted net list (the "before" of a candidate).
  double nets_cost(std::span<const NetId> nets) const;

  /// Cost over cell c's nets with c trialed at lower-left `new_ll`
  /// (non-mutating; ascending net order).
  double trial_move(CellId c, Point new_ll) const;

  /// Cost over the net union of a and b with their positions exchanged
  /// (non-mutating; ascending net order). Caller passes the union list so
  /// the "before" sum and this share one merge.
  double trial_swap(CellId a, CellId b, std::span<const NetId> nets) const;

  /// Re-derive the cached boxes of the given nets from current positions
  /// (call after committing any move that touched them). Idempotent.
  void refresh_nets(std::span<const NetId> nets);
  void refresh_cell(CellId c) { refresh_nets(cell_nets(c)); }

  /// Exact per-bin occupancy of movable std cells on a grid — the DP-side
  /// diagnostic counterpart of the density model's rasterization; updated
  /// in O(bins touched) per committed move via occupancy_move().
  void build_occupancy(const GridMap& map);
  const Grid2D<double>& occupancy() const { return occ_; }
  void occupancy_move(CellId c, Point old_ll, Point new_ll);

  void set_cross_check(bool on) { cross_check_ = on; }
  bool cross_check() const { return cross_check_; }

 private:
  struct NetBox {
    double mnx, mxx, mny, mxy;      ///< Box extremes over pin coordinates.
    double mnx2, mxx2, mny2, mxy2;  ///< Second extremes (with multiplicity).
  };
  /// One (cell, net) incidence: the pin offset lets the O(1) path form the
  /// pin's coordinate from a trial center without touching the pin table.
  struct CellNet {
    NetId net;
    Point off;   ///< Pin offset from the cell center (valid when !multi).
    bool multi;  ///< Cell holds >1 pin on this net → per-net full fallback.
  };

  double compute_net(NetId n, NetBox* box) const;
  /// Net cost with up to two cells' centers overridden (full fallback).
  double recompute_override(NetId n, CellId ca, Point ctr_a, CellId cb,
                            Point ctr_b) const;
  double trial_net(const CellNet& e, double w, Point old_ctr, Point new_ctr,
                   CellId c) const;
  void check_trial(double got, NetId n, CellId ca, Point ctr_a, CellId cb,
                   Point ctr_b) const;

  const Design& d_;
  std::vector<double> cost_;    ///< Per net: weight · HPWL (0 for degree < 2).
  std::vector<NetBox> box_;
  std::vector<int> cell_net_off_;     ///< Cell → range in the two arrays below.
  std::vector<NetId> cell_net_ids_;   ///< Sorted unique nets per cell.
  std::vector<CellNet> cell_net_inc_; ///< Parallel incidence records.
  GridMap occ_map_{};
  Grid2D<double> occ_;
  bool has_occ_ = false;
  bool cross_check_ = false;
};

}  // namespace rp
