#pragma once
// Bin-based density model with the NTUplace bell-shaped potential.
//
// The die is divided into nx × ny bins. Every movable node v spreads its
// (inflated) area over nearby bins through a smooth, C1 "bell" potential
// px(d)·py(d) whose support extends two bins beyond the node edge, normalized
// so the node contributes exactly area(v)·inflate(v) in total. The penalty is
//
//     N(x, y) = Σ_b ( max(0, D_b - C_b) )²
//
// where C_b is the bin capacity: target_density × (bin free area), with the
// free area reduced by exactly-rasterized fixed objects, and optionally
// scaled per-bin (the narrow-channel handler derates channel bins).
//
// overflow() reports the standard total-density-overflow metric computed
// with EXACT rectangle rasterization (not the smoothed potential), so it is
// comparable across bin sizes and placers.

#include <span>

#include "model/problem.hpp"
#include "util/grid.hpp"

namespace rp {

struct DensityConfig {
  int nx = 0;                   ///< 0 = auto (~sqrt of movable count, power of 2).
  int ny = 0;
  double target_density = 1.0;  ///< Allowed area fraction of each bin's free space.
};

class DensityModel {
 public:
  DensityModel(const PlaceProblem& p, const DensityConfig& cfg);

  /// Penalty value; accumulates d(penalty)/dx into gx/gy (movable nodes only).
  double eval(const PlaceProblem& p, std::span<double> gx, std::span<double> gy);

  /// Exact total overflow: Σ_b (rasterized_D_b - C_b)^+ / movable area.
  double overflow(const PlaceProblem& p) const;

  /// Exact rasterized movable-density grid (area per bin, incl. inflation).
  Grid2D<double> rasterized_density(const PlaceProblem& p) const;

  const GridMap& grid() const { return grid_; }
  /// Per-bin capacity (free area × target density × scale).
  const Grid2D<double>& capacity() const { return cap_; }

  /// Multiply each bin's capacity by scale(b) in [0,1]; used by the
  /// narrow-channel handler to keep cells out of tight macro channels.
  void apply_capacity_scale(const Grid2D<double>& scale);

  /// Rebuild fixed-area map & capacities (after fixed nodes moved, e.g. when
  /// macros get legalized and frozen).
  void rebuild_fixed(const PlaceProblem& p);

 private:
  GridMap grid_;
  std::vector<double> xc_, yc_;  ///< Bin center coordinates (hot-loop cache).
  double target_density_ = 1.0;
  Grid2D<double> fixed_area_;  ///< Exact fixed-object area per bin.
  Grid2D<double> cap_;         ///< Capacity per bin.
  Grid2D<double> scale_;       ///< External capacity scaling (default 1).
  Grid2D<double> dens_;        ///< Scratch: smoothed density per bin.
  Grid2D<double> resid_;       ///< Scratch: (D-C)^+ per bin.
  // Parallel pass-1 scratch: one accumulation grid per node CHUNK (chunking
  // depends only on the node count, so the chunk-ordered reduction into
  // dens_ is bitwise identical for any thread count).
  std::vector<Grid2D<double>> chunk_dens_;
  std::vector<double> csum_;   ///< Per-node bell normalization (pass 1 → 2).

  // Per-worker row buffers for the dispatched simd kernels: each node's
  // bell potential (and derivative) is sampled once per grid ROW into these
  // and applied with batched sum/axpy/dot — cache-blocked by construction
  // since Grid2D rows are contiguous in ix.
  struct RowScratch {
    std::vector<double> px, dpx;
    void ensure(std::size_t n) {
      if (px.size() < n) {
        px.resize(n);
        dpx.resize(n);
      }
    }
  };
  std::vector<RowScratch> row_scratch_;

  void rebuild_capacity();
};

/// Choose a bin-grid edge count for n movable objects (power of two,
/// clamped to [8, 1024]).
int auto_bin_count(int num_movable);

}  // namespace rp
