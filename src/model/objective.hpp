#pragma once
// The penalized placement objective  f = WL_smooth + λ · N_density,
// presented to the nonlinear solver as a function of the packed coordinate
// vector of MOVABLE nodes only:  z = [x_m0, x_m1, ..., y_m0, y_m1, ...].
//
// λ starts so the two gradient fields have equal L1 norm (the standard
// initialization in this placer family) and is raised geometrically by the
// outer loop until the density overflow target is met.

#include <span>
#include <vector>

#include "model/density.hpp"
#include "model/wirelength.hpp"

namespace rp {

class PlacementObjective {
 public:
  PlacementObjective(PlaceProblem& p, WirelengthModel& wl, DensityModel& dens);

  int dim() const { return 2 * static_cast<int>(movable_.size()); }
  int num_movable() const { return static_cast<int>(movable_.size()); }
  const std::vector<int>& movable() const { return movable_; }

  /// Read current problem coordinates into a packed vector.
  std::vector<double> pack() const;
  /// Write a packed vector into the problem (and clamp to the die).
  void unpack(std::span<const double> z);

  /// f(z) and its gradient. Also records the last separate WL / density
  /// values for diagnostics.
  double eval(std::span<const double> z, std::span<double> grad);

  /// λ such that ||∂WL||₁ == λ·||∂N||₁ at the current coordinates.
  double balanced_lambda();

  void set_lambda(double l) { lambda_ = l; }
  double lambda() const { return lambda_; }

  double last_wl() const { return last_wl_; }
  double last_density() const { return last_density_; }

  PlaceProblem& problem() { return p_; }
  DensityModel& density_model() { return dens_; }
  WirelengthModel& wirelength_model() { return wl_; }

 private:
  PlaceProblem& p_;
  WirelengthModel& wl_;
  DensityModel& dens_;
  std::vector<int> movable_;
  double lambda_ = 0.0;
  double last_wl_ = 0.0;
  double last_density_ = 0.0;
  std::vector<double> gx_, gy_;  // full-size scratch gradients
  std::vector<double> dx_, dy_;  // density-gradient scratch (λ != 0 path)
};

}  // namespace rp
