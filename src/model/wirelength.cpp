#include "model/wirelength.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"
#include "util/profiler.hpp"
#include "util/simd.hpp"
#include "util/telemetry.hpp"

namespace rp {

namespace {

constexpr std::size_t kNetGrain = 64;    ///< Nets per chunk (min).
constexpr std::size_t kNodeGrain = 2048; ///< Nodes per gather chunk (min).

/// Fill s.ep = exp((c - mx)·ig) and s.em = exp((mn - c)·ig) through the
/// dispatched batch kernels. Exp arguments are staged in s.arg so the
/// vector exp consumes a contiguous block; every argument is <= 0 by
/// construction (c - mx <= 0 and -(c - mn) <= 0 exactly).
void exp_both_sides(const double* c, std::size_t un, double mn, double mx,
                    double ig, WlThreadScratch& s) {
  const simd::Ops& ops = simd::ops();
  ops.affine(c, un, -mx, ig, s.arg.data());
  ops.exp_nonpos(s.arg.data(), un, s.ep.data());
  ops.affine(c, un, -mn, -ig, s.arg.data());
  ops.exp_nonpos(s.arg.data(), un, s.em.data());
}

/// One axis of one net under LSE over c[0..n). Returns the net's smoothed
/// extent; when dc != nullptr writes dWL/d(pin coordinate) per pin.
double lse_axis(const double* c, int n, double gamma, double* dc, WlThreadScratch& s) {
  const auto un = static_cast<std::size_t>(n);
  const simd::Ops& ops = simd::ops();
  s.ensure(un);
  double mn, mx;
  ops.minmax(c, un, &mn, &mx);
  exp_both_sides(c, un, mn, mx, 1.0 / gamma, s);
  const double sp = ops.sum(s.ep.data(), un);
  const double sm = ops.sum(s.em.data(), un);
  if (dc != nullptr) ops.lse_grad(s.ep.data(), s.em.data(), un, 1.0 / sp, 1.0 / sm, dc);
  return (mx - mn) + gamma * (std::log(sp) + std::log(sm));
}

/// One axis of one net under WA.
double wa_axis(const double* c, int n, double gamma, double* dc, WlThreadScratch& s) {
  const auto un = static_cast<std::size_t>(n);
  const simd::Ops& ops = simd::ops();
  s.ensure(un);
  double mn, mx;
  ops.minmax(c, un, &mn, &mx);
  const double ig = 1.0 / gamma;
  exp_both_sides(c, un, mn, mx, ig, s);
  const double sp = ops.sum(s.ep.data(), un);
  const double sm = ops.sum(s.em.data(), un);
  const double wsp = ops.dot(c, s.ep.data(), un);
  const double wsm = ops.dot(c, s.em.data(), un);
  const double xmax = wsp / sp;  // smoothed max
  const double xmin = wsm / sm;  // smoothed min
  // d(xmax)/dci = e_i (1 + (c_i - xmax)·ig) / sp ; analogously for xmin.
  if (dc != nullptr)
    ops.wa_grad(c, s.ep.data(), s.em.data(), un, xmax, xmin, ig, 1.0 / sp,
                1.0 / sm, dc);
  return xmax - xmin;
}

/// Parallel net-chunk evaluation. With WithGrad, per-pin gradients land in
/// csr.pin_gx/pin_gy (each pin written by exactly one chunk) and a second
/// parallel pass gathers them into gx/gy per node in ascending pin order —
/// both passes bitwise independent of the thread count.
template <bool WithGrad, typename AxisFn>
double eval_csr(const PlaceProblem& p, NetlistCsr& c,
                std::vector<WlThreadScratch>& scratch, std::span<double> gx,
                std::span<double> gy, double gamma, AxisFn&& axis) {
  if (WithGrad && (gx.size() != p.nodes.size() || gy.size() != p.nodes.size()))
    throw std::runtime_error("wirelength eval: gradient span size mismatch");
  RP_PROFILE_REGION("kernel/wirelength");
  c.gather_coords(p);
  const auto nets = static_cast<std::size_t>(c.num_nets);
  const double total = parallel::parallel_reduce(
      nets, kNetGrain, 0.0,
      [&](std::size_t b, std::size_t e, int worker) -> double {
        WlThreadScratch& s = scratch[static_cast<std::size_t>(worker)];
        double part = 0.0;
        for (std::size_t n = b; n < e; ++n) {
          const int off = c.net_offset[n];
          const int deg = c.net_offset[n + 1] - off;
          const auto uoff = static_cast<std::size_t>(off);
          if (deg < 2) {
            if (WithGrad)
              for (int i = 0; i < deg; ++i) {
                c.pin_gx[uoff + static_cast<std::size_t>(i)] = 0.0;
                c.pin_gy[uoff + static_cast<std::size_t>(i)] = 0.0;
              }
            continue;
          }
          const double w = c.net_weight[n];
          double* dgx = WithGrad ? c.pin_gx.data() + off : nullptr;
          double* dgy = WithGrad ? c.pin_gy.data() + off : nullptr;
          part += w * axis(c.pin_cx.data() + off, deg, gamma, dgx, s);
          part += w * axis(c.pin_cy.data() + off, deg, gamma, dgy, s);
          if (WithGrad && w != 1.0)
            for (int i = 0; i < deg; ++i) {
              dgx[i] *= w;
              dgy[i] *= w;
            }
        }
        return part;
      },
      [](double a, double b) { return a + b; });

  if (WithGrad) {
    parallel::parallel_for(
        static_cast<std::size_t>(c.num_nodes), kNodeGrain,
        [&](std::size_t b, std::size_t e, int) {
          for (std::size_t v = b; v < e; ++v) {
            const int k0 = c.node_pin_offset[v];
            const int k1 = c.node_pin_offset[v + 1];
            double sx = 0.0, sy = 0.0;
            for (int k = k0; k < k1; ++k) {
              const auto pin = static_cast<std::size_t>(c.node_pin[static_cast<std::size_t>(k)]);
              sx += c.pin_gx[pin];
              sy += c.pin_gy[pin];
            }
            gx[v] += sx;
            gy[v] += sy;
          }
        });
  }
  return total;
}

}  // namespace

NetlistCsr& WirelengthModel::prepare(const PlaceProblem& p) const {
  if (!csr_valid_ || csr_.num_nodes != p.num_nodes() ||
      csr_.num_nets != p.num_nets() ||
      csr_.num_pins != static_cast<int>(p.pins.size())) {
    csr_ = NetlistCsr::from_problem(p);
    csr_valid_ = true;
  }
  const auto threads = static_cast<std::size_t>(parallel::num_threads());
  if (scratch_.size() < threads) scratch_.resize(threads);
  // Pre-size every slot to the largest net so steady-state evals never
  // reallocate; the per-net ensure() in the axis kernels stays as the
  // defensive backstop (a larger design on a reused pool must never index
  // a stale capacity).
  for (auto& s : scratch_) s.ensure(static_cast<std::size_t>(csr_.max_net_degree));
  RP_COUNT("parallel.wl_evals", 1);
  return csr_;
}

double LseWirelength::eval(const PlaceProblem& p, std::span<double> gx,
                           std::span<double> gy) const {
  return eval_csr<true>(p, prepare(p), scratch(), gx, gy, gamma_, lse_axis);
}

double LseWirelength::value(const PlaceProblem& p) const {
  return eval_csr<false>(p, prepare(p), scratch(), {}, {}, gamma_, lse_axis);
}

double WaWirelength::eval(const PlaceProblem& p, std::span<double> gx,
                          std::span<double> gy) const {
  return eval_csr<true>(p, prepare(p), scratch(), gx, gy, gamma_, wa_axis);
}

double WaWirelength::value(const PlaceProblem& p) const {
  return eval_csr<false>(p, prepare(p), scratch(), {}, {}, gamma_, wa_axis);
}

std::unique_ptr<WirelengthModel> make_wirelength_model(const std::string& name,
                                                       double gamma) {
  if (name == "LSE" || name == "lse") return std::make_unique<LseWirelength>(gamma);
  if (name == "WA" || name == "wa") return std::make_unique<WaWirelength>(gamma);
  throw std::runtime_error("unknown wirelength model '" + name + "'");
}

}  // namespace rp
