#include "model/wirelength.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rp {

double WirelengthModel::value(const PlaceProblem& p) const {
  std::vector<double> gx(p.nodes.size(), 0.0), gy(p.nodes.size(), 0.0);
  return eval(p, gx, gy);
}

namespace {

/// Per-net scratch reused across nets to avoid allocation.
struct Scratch {
  std::vector<double> coord;  // pin coordinate on the current axis
  std::vector<double> ep;     // e^{(c - max)/γ}
  std::vector<double> em;     // e^{(min - c)/γ}
};

/// One axis of one net under LSE. Returns the net's smoothed extent and
/// writes per-pin gradient into dcoord (dWL/d(pin coordinate)).
double lse_axis(const std::vector<double>& c, double gamma, std::vector<double>& dcoord,
                Scratch& s) {
  const std::size_t n = c.size();
  const auto [mn_it, mx_it] = std::minmax_element(c.begin(), c.end());
  const double mn = *mn_it, mx = *mx_it;
  s.ep.resize(n);
  s.em.resize(n);
  double sp = 0, sm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sp += s.ep[i] = std::exp((c[i] - mx) / gamma);
    sm += s.em[i] = std::exp((mn - c[i]) / gamma);
  }
  dcoord.resize(n);
  for (std::size_t i = 0; i < n; ++i) dcoord[i] = s.ep[i] / sp - s.em[i] / sm;
  return (mx - mn) + gamma * (std::log(sp) + std::log(sm));
}

/// One axis of one net under WA.
double wa_axis(const std::vector<double>& c, double gamma, std::vector<double>& dcoord,
               Scratch& s) {
  const std::size_t n = c.size();
  const auto [mn_it, mx_it] = std::minmax_element(c.begin(), c.end());
  const double mn = *mn_it, mx = *mx_it;
  s.ep.resize(n);
  s.em.resize(n);
  double sp = 0, sm = 0, wsp = 0, wsm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ep = std::exp((c[i] - mx) / gamma);
    const double em = std::exp((mn - c[i]) / gamma);
    s.ep[i] = ep;
    s.em[i] = em;
    sp += ep;
    sm += em;
    wsp += c[i] * ep;
    wsm += c[i] * em;
  }
  const double xmax = wsp / sp;  // smoothed max
  const double xmin = wsm / sm;  // smoothed min
  dcoord.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // d(xmax)/dci = e_i (1 + (c_i - xmax)/γ) / sp ; analogously for xmin.
    const double dmax = s.ep[i] * (1.0 + (c[i] - xmax) / gamma) / sp;
    const double dmin = s.em[i] * (1.0 - (c[i] - xmin) / gamma) / sm;
    dcoord[i] = dmax - dmin;
  }
  return xmax - xmin;
}

template <typename AxisFn>
double eval_impl(const PlaceProblem& p, std::span<double> gx, std::span<double> gy,
                 double gamma, AxisFn&& axis) {
  if (gx.size() != p.nodes.size() || gy.size() != p.nodes.size())
    throw std::runtime_error("wirelength eval: gradient span size mismatch");
  Scratch s;
  std::vector<double> coord, dcoord;
  double total = 0.0;
  for (const PlaceNet& net : p.nets) {
    const int deg = net.degree();
    if (deg < 2) continue;
    // x axis
    coord.resize(static_cast<std::size_t>(deg));
    for (int i = 0; i < deg; ++i) {
      const PlacePin& pin = p.pins[static_cast<std::size_t>(net.pin_begin + i)];
      coord[static_cast<std::size_t>(i)] = p.x[static_cast<std::size_t>(pin.node)] + pin.ox;
    }
    total += net.weight * axis(coord, gamma, dcoord, s);
    for (int i = 0; i < deg; ++i) {
      const PlacePin& pin = p.pins[static_cast<std::size_t>(net.pin_begin + i)];
      gx[static_cast<std::size_t>(pin.node)] += net.weight * dcoord[static_cast<std::size_t>(i)];
    }
    // y axis
    for (int i = 0; i < deg; ++i) {
      const PlacePin& pin = p.pins[static_cast<std::size_t>(net.pin_begin + i)];
      coord[static_cast<std::size_t>(i)] = p.y[static_cast<std::size_t>(pin.node)] + pin.oy;
    }
    total += net.weight * axis(coord, gamma, dcoord, s);
    for (int i = 0; i < deg; ++i) {
      const PlacePin& pin = p.pins[static_cast<std::size_t>(net.pin_begin + i)];
      gy[static_cast<std::size_t>(pin.node)] += net.weight * dcoord[static_cast<std::size_t>(i)];
    }
  }
  return total;
}

}  // namespace

double LseWirelength::eval(const PlaceProblem& p, std::span<double> gx,
                           std::span<double> gy) const {
  return eval_impl(p, gx, gy, gamma_, lse_axis);
}

double WaWirelength::eval(const PlaceProblem& p, std::span<double> gx,
                          std::span<double> gy) const {
  return eval_impl(p, gx, gy, gamma_, wa_axis);
}

std::unique_ptr<WirelengthModel> make_wirelength_model(const std::string& name,
                                                       double gamma) {
  if (name == "LSE" || name == "lse") return std::make_unique<LseWirelength>(gamma);
  if (name == "WA" || name == "wa") return std::make_unique<WaWirelength>(gamma);
  throw std::runtime_error("unknown wirelength model '" + name + "'");
}

}  // namespace rp
