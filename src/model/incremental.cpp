#include "model/incremental.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "util/assert.hpp"
#include "util/telemetry.hpp"

namespace rp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Track the smallest and second-smallest value (with multiplicity): after
/// the pass, removing ONE element equal to mn leaves mn2 as the minimum.
inline void track_min(double v, double& mn, double& mn2) {
  if (v < mn) {
    mn2 = mn;
    mn = v;
  } else if (v < mn2) {
    mn2 = v;
  }
}

inline void track_max(double v, double& mx, double& mx2) {
  if (v > mx) {
    mx2 = mx;
    mx = v;
  } else if (v > mx2) {
    mx2 = v;
  }
}

/// Same expression chain as BBox::half_perimeter + Rect::width/height so the
/// cached cost is bitwise what Design::net_hpwl computes.
inline double half_perimeter(double mnx, double mxx, double mny, double mxy) {
  return std::max(0.0, mxx - mnx) + std::max(0.0, mxy - mny);
}

inline Point center_of(const Cell& k) {
  return {k.pos.x + k.w / 2, k.pos.y + k.h / 2};
}

}  // namespace

IncrementalEval::IncrementalEval(const Design& d) : d_(d) {
  const auto nc = static_cast<std::size_t>(d.num_cells());
  const auto nn = static_cast<std::size_t>(d.num_nets());
  cost_.resize(nn);
  box_.resize(nn);

  // Per-cell sorted unique net incidence (CSR). Counting pass first.
  cell_net_off_.assign(nc + 1, 0);
  std::vector<std::pair<NetId, PinId>> tmp;
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    tmp.clear();
    for (const PinId p : k.pins) tmp.emplace_back(d.pin(p).net, p);
    std::sort(tmp.begin(), tmp.end());
    const int base = cell_net_off_[static_cast<std::size_t>(c)];
    int count = 0;
    for (std::size_t i = 0; i < tmp.size();) {
      std::size_t j = i;
      while (j < tmp.size() && tmp[j].first == tmp[i].first) ++j;
      CellNet e;
      e.net = tmp[i].first;
      e.off = d.pin(tmp[i].second).offset;
      e.multi = (j - i) > 1;
      cell_net_ids_.push_back(e.net);
      cell_net_inc_.push_back(e);
      ++count;
      i = j;
    }
    cell_net_off_[static_cast<std::size_t>(c) + 1] = base + count;
  }

  const char* env = std::getenv("RP_CHECK_INCREMENTAL");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') cross_check_ = true;

  rebuild();
}

double IncrementalEval::compute_net(NetId n, NetBox* box) const {
  const Net& net = d_.net(n);
  NetBox b{kInf, -kInf, kInf, -kInf, kInf, -kInf, kInf, -kInf};
  for (const PinId p : net.pins) {
    const Point pos = d_.pin_pos(p);
    track_min(pos.x, b.mnx, b.mnx2);
    track_max(pos.x, b.mxx, b.mxx2);
    track_min(pos.y, b.mny, b.mny2);
    track_max(pos.y, b.mxy, b.mxy2);
  }
  if (box != nullptr) *box = b;
  if (net.pins.size() < 2) return 0.0;  // matches Design::net_hpwl
  return net.weight * half_perimeter(b.mnx, b.mxx, b.mny, b.mxy);
}

void IncrementalEval::rebuild() {
  for (NetId n = 0; n < d_.num_nets(); ++n)
    cost_[static_cast<std::size_t>(n)] = compute_net(n, &box_[static_cast<std::size_t>(n)]);
}

double IncrementalEval::total_cost() const {
  double sum = 0.0;
  for (NetId n = 0; n < d_.num_nets(); ++n) sum += cost_[static_cast<std::size_t>(n)];
  return sum;
}

void IncrementalEval::union_nets(CellId a, CellId b, std::vector<NetId>& out) const {
  const auto na = cell_nets(a);
  const auto nb = cell_nets(b);
  out.clear();
  std::size_t i = 0, j = 0;
  while (i < na.size() && j < nb.size()) {
    if (na[i] < nb[j]) out.push_back(na[i++]);
    else if (nb[j] < na[i]) out.push_back(nb[j++]);
    else { out.push_back(na[i]); ++i; ++j; }
  }
  for (; i < na.size(); ++i) out.push_back(na[i]);
  for (; j < nb.size(); ++j) out.push_back(nb[j]);
}

double IncrementalEval::nets_cost(std::span<const NetId> nets) const {
  double s = 0.0;
  for (const NetId n : nets) s += cost_[static_cast<std::size_t>(n)];
  if (cross_check_)
    for (const NetId n : nets)
      RP_ASSERT(cost_[static_cast<std::size_t>(n)] == compute_net(n, nullptr),
                "incremental: stale cached net cost");
  return s;
}

double IncrementalEval::recompute_override(NetId n, CellId ca, Point ctr_a,
                                           CellId cb, Point ctr_b) const {
  const Net& net = d_.net(n);
  double mnx = kInf, mxx = -kInf, mny = kInf, mxy = -kInf;
  for (const PinId p : net.pins) {
    const Pin& pn = d_.pin(p);
    Point ctr;
    if (pn.cell == ca) ctr = ctr_a;
    else if (pn.cell == cb) ctr = ctr_b;
    else ctr = center_of(d_.cell(pn.cell));
    const double x = ctr.x + pn.offset.x;
    const double y = ctr.y + pn.offset.y;
    mnx = std::min(mnx, x);
    mxx = std::max(mxx, x);
    mny = std::min(mny, y);
    mxy = std::max(mxy, y);
  }
  if (net.pins.size() < 2) return 0.0;
  return net.weight * half_perimeter(mnx, mxx, mny, mxy);
}

void IncrementalEval::check_trial(double got, NetId n, CellId ca, Point ctr_a,
                                  CellId cb, Point ctr_b) const {
  RP_ASSERT(got == recompute_override(n, ca, ctr_a, cb, ctr_b),
            "incremental: trial cost diverges from full recompute");
}

double IncrementalEval::trial_net(const CellNet& e, double w, Point old_ctr,
                                  Point new_ctr, CellId c) const {
  const NetBox& b = box_[static_cast<std::size_t>(e.net)];
  const double ox = old_ctr.x + e.off.x, nx = new_ctr.x + e.off.x;
  const double oy = old_ctr.y + e.off.y, ny = new_ctr.y + e.off.y;
  // Remove the moved pin (second extreme steps in when it WAS the extreme),
  // then min/max in its new coordinate — exact, so bitwise identical to a
  // full recompute over the pin list.
  const double mnx = std::min(ox == b.mnx ? b.mnx2 : b.mnx, nx);
  const double mxx = std::max(ox == b.mxx ? b.mxx2 : b.mxx, nx);
  const double mny = std::min(oy == b.mny ? b.mny2 : b.mny, ny);
  const double mxy = std::max(oy == b.mxy ? b.mxy2 : b.mxy, ny);
  const double cost = w * half_perimeter(mnx, mxx, mny, mxy);
  if (cross_check_)
    check_trial(cost, e.net, c, new_ctr, kInvalidId, Point{});
  return cost;
}

double IncrementalEval::trial_move(CellId c, Point new_ll) const {
  const Cell& k = d_.cell(c);
  const Point old_ctr = center_of(k);
  const Point new_ctr{new_ll.x + k.w / 2, new_ll.y + k.h / 2};
  const auto b = static_cast<std::size_t>(cell_net_off_[static_cast<std::size_t>(c)]);
  const auto e = static_cast<std::size_t>(cell_net_off_[static_cast<std::size_t>(c) + 1]);
  double s = 0.0;
  for (std::size_t i = b; i < e; ++i) {
    const CellNet& cn = cell_net_inc_[i];
    const Net& net = d_.net(cn.net);
    if (net.pins.size() < 2) continue;  // cost 0 either way (s += 0.0 is exact)
    if (cn.multi) {
      const double cost = recompute_override(cn.net, c, new_ctr, kInvalidId, Point{});
      if (cross_check_) check_trial(cost, cn.net, c, new_ctr, kInvalidId, Point{});
      s += cost;
    } else {
      s += trial_net(cn, net.weight, old_ctr, new_ctr, c);
    }
  }
  return s;
}

double IncrementalEval::trial_swap(CellId a, CellId b, std::span<const NetId> nets) const {
  const Cell& ka = d_.cell(a);
  const Cell& kb = d_.cell(b);
  const Point old_a = center_of(ka);
  const Point old_b = center_of(kb);
  // Positions exchange; sizes differ only in sharing w/h for DP swaps, but
  // form the centers from the OTHER cell's lower-left with OWN size so the
  // expression matches a mutate-and-measure swap exactly.
  const Point new_a{kb.pos.x + ka.w / 2, kb.pos.y + ka.h / 2};
  const Point new_b{ka.pos.x + kb.w / 2, ka.pos.y + kb.h / 2};

  const auto la = cell_nets(a);
  const auto lb = cell_nets(b);
  std::size_t i = 0, j = 0;
  const auto ia0 = static_cast<std::size_t>(cell_net_off_[static_cast<std::size_t>(a)]);
  const auto ib0 = static_cast<std::size_t>(cell_net_off_[static_cast<std::size_t>(b)]);
  double s = 0.0;
  for (const NetId n : nets) {
    const bool in_a = i < la.size() && la[i] == n;
    const bool in_b = j < lb.size() && lb[j] == n;
    const CellNet* ea = in_a ? &cell_net_inc_[ia0 + i] : nullptr;
    const CellNet* eb = in_b ? &cell_net_inc_[ib0 + j] : nullptr;
    if (in_a) ++i;
    if (in_b) ++j;
    const Net& net = d_.net(n);
    if (net.pins.size() < 2) continue;
    if (in_a && in_b) {
      const double cost = recompute_override(n, a, new_a, b, new_b);
      if (cross_check_) check_trial(cost, n, a, new_a, b, new_b);
      s += cost;
    } else if (in_a) {
      if (ea->multi) {
        const double cost = recompute_override(n, a, new_a, kInvalidId, Point{});
        if (cross_check_) check_trial(cost, n, a, new_a, kInvalidId, Point{});
        s += cost;
      } else {
        s += trial_net(*ea, net.weight, old_a, new_a, a);
      }
    } else if (in_b) {
      if (eb->multi) {
        const double cost = recompute_override(n, b, new_b, kInvalidId, Point{});
        if (cross_check_) check_trial(cost, n, b, new_b, kInvalidId, Point{});
        s += cost;
      } else {
        s += trial_net(*eb, net.weight, old_b, new_b, b);
      }
    }
  }
  return s;
}

void IncrementalEval::refresh_nets(std::span<const NetId> nets) {
  for (const NetId n : nets)
    cost_[static_cast<std::size_t>(n)] = compute_net(n, &box_[static_cast<std::size_t>(n)]);
}

void IncrementalEval::build_occupancy(const GridMap& map) {
  occ_map_ = map;
  occ_ = Grid2D<double>(map.nx(), map.ny(), 0.0);
  has_occ_ = true;
  for (const CellId c : d_.movable_cells()) {
    const Cell& k = d_.cell(c);
    if (k.kind != CellKind::StdCell) continue;
    occ_map_.rasterize(d_.cell_rect(c), [&](int ix, int iy, double a) {
      occ_(ix, iy) += a;
    });
  }
}

void IncrementalEval::occupancy_move(CellId c, Point old_ll, Point new_ll) {
  if (!has_occ_) return;
  const Cell& k = d_.cell(c);
  occ_map_.rasterize({old_ll.x, old_ll.y, old_ll.x + k.w, old_ll.y + k.h},
                     [&](int ix, int iy, double a) { occ_(ix, iy) -= a; });
  occ_map_.rasterize({new_ll.x, new_ll.y, new_ll.x + k.w, new_ll.y + k.h},
                     [&](int ix, int iy, double a) { occ_(ix, iy) += a; });
}

}  // namespace rp
