#include "model/density.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/parallel.hpp"
#include "util/profiler.hpp"
#include "util/simd.hpp"
#include "util/telemetry.hpp"

namespace rp {

namespace {

// Pass-1/rasterization chunking: few, fat chunks — every chunk owns a full
// scratch bin grid, so the cap bounds the extra memory at kGridChunkCap
// grids regardless of thread count.
constexpr std::size_t kNodeGrain = 256;
constexpr int kGridChunkCap = 8;
constexpr std::size_t kBinGrain = 4096;

/// One axis of the bell-shaped potential.
///   d1 = w/2 + bin, d2 = w/2 + 2·bin
///   p(d) = 1 - a·d²        for |d| ≤ d1      a = 1/(d1·d2)
///        = b·(|d| - d2)²   for d1 < |d| ≤ d2  b = 1/(bin·d2)
///        = 0               beyond
/// C1-continuous at d1 and d2 by construction.
struct Bell {
  double d1, d2, a, b;

  Bell(double w, double bin) {
    d1 = w / 2 + bin;
    d2 = w / 2 + 2 * bin;
    a = 1.0 / (d1 * d2);
    b = 1.0 / (bin * d2);
  }
  double value(double dx) const {
    const double d = std::abs(dx);
    if (d <= d1) return 1.0 - a * d * d;
    if (d <= d2) {
      const double t = d - d2;
      return b * t * t;
    }
    return 0.0;
  }
  /// d p / d dx (signed).
  double deriv(double dx) const {
    const double d = std::abs(dx);
    const double sign = dx >= 0 ? 1.0 : -1.0;
    if (d <= d1) return -2.0 * a * d * sign;
    if (d <= d2) return 2.0 * b * (d - d2) * sign;
    return 0.0;
  }
};

}  // namespace

int auto_bin_count(int num_movable) {
  int target = static_cast<int>(std::sqrt(std::max(1, num_movable)));
  int n = 8;
  while (n < target && n < 1024) n *= 2;
  return n;
}

DensityModel::DensityModel(const PlaceProblem& p, const DensityConfig& cfg) {
  int movable = 0;
  for (const auto& n : p.nodes)
    if (!n.fixed) ++movable;
  const int nx = cfg.nx > 0 ? cfg.nx : auto_bin_count(movable);
  const int ny = cfg.ny > 0 ? cfg.ny : auto_bin_count(movable);
  grid_ = GridMap(p.die, nx, ny);
  xc_.resize(static_cast<std::size_t>(nx));
  yc_.resize(static_cast<std::size_t>(ny));
  for (int ix = 0; ix < nx; ++ix) xc_[static_cast<std::size_t>(ix)] = grid_.bin_center(ix, 0).x;
  for (int iy = 0; iy < ny; ++iy) yc_[static_cast<std::size_t>(iy)] = grid_.bin_center(0, iy).y;
  target_density_ = cfg.target_density;
  scale_ = Grid2D<double>(nx, ny, 1.0);
  dens_ = Grid2D<double>(nx, ny, 0.0);
  resid_ = Grid2D<double>(nx, ny, 0.0);
  rebuild_fixed(p);
}

void DensityModel::rebuild_fixed(const PlaceProblem& p) {
  fixed_area_ = Grid2D<double>(grid_.nx(), grid_.ny(), 0.0);
  for (int v = 0; v < p.num_nodes(); ++v) {
    const auto& n = p.nodes[static_cast<std::size_t>(v)];
    if (!n.fixed) continue;
    const double cx = p.x[static_cast<std::size_t>(v)];
    const double cy = p.y[static_cast<std::size_t>(v)];
    const Rect r{cx - n.w / 2, cy - n.h / 2, cx + n.w / 2, cy + n.h / 2};
    grid_.rasterize(r, [&](int ix, int iy, double a) { fixed_area_(ix, iy) += a; });
  }
  rebuild_capacity();
}

void DensityModel::rebuild_capacity() {
  cap_ = Grid2D<double>(grid_.nx(), grid_.ny(), 0.0);
  const double ba = grid_.bin_area();
  for (int iy = 0; iy < grid_.ny(); ++iy)
    for (int ix = 0; ix < grid_.nx(); ++ix) {
      const double free_area = std::max(0.0, ba - fixed_area_(ix, iy));
      cap_(ix, iy) = target_density_ * free_area * scale_(ix, iy);
    }
}

void DensityModel::apply_capacity_scale(const Grid2D<double>& scale) {
  RP_ASSERT(scale.nx() == grid_.nx() && scale.ny() == grid_.ny(),
            "capacity scale grid size mismatch");
  scale_ = scale;
  rebuild_capacity();
}

double DensityModel::eval(const PlaceProblem& p, std::span<double> gx,
                          std::span<double> gy) {
  if (gx.size() != p.nodes.size() || gy.size() != p.nodes.size())
    throw std::runtime_error("density eval: gradient span size mismatch");
  RP_PROFILE_REGION("kernel/density");
  const int nx = grid_.nx(), ny = grid_.ny();
  const double bw = grid_.bin_w(), bh = grid_.bin_h();
  const auto nn = static_cast<std::size_t>(p.num_nodes());
  RP_COUNT("parallel.density_evals", 1);

  // Pass 1: accumulate smoothed density, one scratch grid per node chunk;
  // the per-node normalization c_v is cached for pass 2. The x-axis bell is
  // sampled once per node into a per-worker row buffer (bins are uniform,
  // so the sample points are d0 + i·(-bin_w)) and applied row-wise with
  // the dispatched sum/axpy kernels — Grid2D rows are contiguous in ix.
  csum_.resize(nn);
  const auto workers = static_cast<std::size_t>(parallel::num_threads());
  if (row_scratch_.size() < workers) row_scratch_.resize(workers);
  const parallel::ChunkPlan plan = parallel::plan_chunks(nn, kNodeGrain, kGridChunkCap);
  if (static_cast<int>(chunk_dens_.size()) < plan.count)
    chunk_dens_.resize(static_cast<std::size_t>(plan.count));
  parallel::ThreadPool::instance().run(plan, [&](int ci, int worker) {
    const simd::Ops& ops = simd::ops();
    RowScratch& sc = row_scratch_[static_cast<std::size_t>(worker)];
    sc.ensure(static_cast<std::size_t>(nx));
    Grid2D<double>& g = chunk_dens_[static_cast<std::size_t>(ci)];
    if (g.nx() != nx || g.ny() != ny) g = Grid2D<double>(nx, ny, 0.0);
    else g.fill(0.0);
    for (std::size_t uv = plan.begin(ci); uv < plan.end(ci); ++uv) {
      csum_[uv] = 0.0;
      const auto& n = p.nodes[uv];
      if (n.fixed) continue;
      const double cx = p.x[uv];
      const double cy = p.y[uv];
      const Bell bx(n.w, bw), by(n.h, bh);
      const int ix0 = std::max(0, grid_.ix_of(cx - bx.d2) - 1);
      const int ix1 = std::min(nx - 1, grid_.ix_of(cx + bx.d2) + 1);
      const int iy0 = std::max(0, grid_.iy_of(cy - by.d2) - 1);
      const int iy1 = std::min(ny - 1, grid_.iy_of(cy + by.d2) + 1);
      const auto rw = static_cast<std::size_t>(ix1 - ix0 + 1);
      ops.bell_row(cx - xc_[static_cast<std::size_t>(ix0)], -bw, rw, bx.d1,
                   bx.d2, bx.a, bx.b, sc.px.data());
      const double row_sum = ops.sum(sc.px.data(), rw);
      double s = 0.0;
      for (int iy = iy0; iy <= iy1; ++iy) {
        const double py = by.value(cy - yc_[static_cast<std::size_t>(iy)]);
        if (py == 0.0) continue;
        s += py * row_sum;
      }
      if (s <= 0.0) continue;
      const double cv = n.area() * p.inflate[uv] / s;
      csum_[uv] = cv;
      for (int iy = iy0; iy <= iy1; ++iy) {
        const double py = by.value(cy - yc_[static_cast<std::size_t>(iy)]);
        if (py == 0.0) continue;
        ops.axpy(cv * py, sc.px.data(), rw, &g(ix0, iy));
      }
    }
  });

  // Reduce chunk grids into dens_ (per bin, ascending chunk order).
  const std::size_t bins = dens_.size();
  if (plan.count == 0) dens_.fill(0.0);
  parallel::parallel_for(bins, kBinGrain, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) {
      double s = 0.0;
      for (int ci = 0; ci < plan.count; ++ci) s += chunk_dens_[static_cast<std::size_t>(ci)].data()[i];
      dens_.data()[i] = s;
    }
  });

  // Residuals and penalty value (chunk-ordered reduction over bins).
  const double penalty = parallel::parallel_reduce(
      bins, kBinGrain, 0.0,
      [&](std::size_t b, std::size_t e, int) -> double {
        double part = 0.0;
        for (std::size_t i = b; i < e; ++i) {
          const double r = std::max(0.0, dens_.data()[i] - cap_.data()[i]);
          resid_.data()[i] = r;
          part += r * r;
        }
        return part;
      },
      [](double a, double b) { return a + b; });

  // Pass 2: gradients.  dN/dx_v = Σ_b 2·R_b · c_v · px'(cx-xb) · py.
  // Embarrassingly parallel: every node writes only its own gradient slot.
  // Row-wise like pass 1: sample px/px' once per node, then one dot product
  // against the contiguous residual row per iy.
  parallel::parallel_for(nn, kNodeGrain, [&](std::size_t b, std::size_t e, int worker) {
    const simd::Ops& ops = simd::ops();
    RowScratch& sc = row_scratch_[static_cast<std::size_t>(worker)];
    sc.ensure(static_cast<std::size_t>(nx));
    for (std::size_t uv = b; uv < e; ++uv) {
      const auto& n = p.nodes[uv];
      if (n.fixed || csum_[uv] == 0.0) continue;
      const double cx = p.x[uv];
      const double cy = p.y[uv];
      const Bell bx(n.w, bw), by(n.h, bh);
      const int ix0 = std::max(0, grid_.ix_of(cx - bx.d2) - 1);
      const int ix1 = std::min(nx - 1, grid_.ix_of(cx + bx.d2) + 1);
      const int iy0 = std::max(0, grid_.iy_of(cy - by.d2) - 1);
      const int iy1 = std::min(ny - 1, grid_.iy_of(cy + by.d2) + 1);
      const auto rw = static_cast<std::size_t>(ix1 - ix0 + 1);
      const double d0 = cx - xc_[static_cast<std::size_t>(ix0)];
      ops.bell_row(d0, -bw, rw, bx.d1, bx.d2, bx.a, bx.b, sc.px.data());
      ops.bell_deriv_row(d0, -bw, rw, bx.d1, bx.d2, bx.a, bx.b, sc.dpx.data());
      const double cv = csum_[uv];
      double dgx = 0.0, dgy = 0.0;
      for (int iy = iy0; iy <= iy1; ++iy) {
        const double dy = cy - yc_[static_cast<std::size_t>(iy)];
        const double py = by.value(dy);
        const double dpy = by.deriv(dy);
        const double* rrow = &resid_(ix0, iy);
        dgx += ((2.0 * cv) * py) * ops.dot(rrow, sc.dpx.data(), rw);
        dgy += ((2.0 * cv) * dpy) * ops.dot(rrow, sc.px.data(), rw);
      }
      gx[uv] += dgx;
      gy[uv] += dgy;
    }
  });
  return penalty;
}

Grid2D<double> DensityModel::rasterized_density(const PlaceProblem& p) const {
  Grid2D<double> g(grid_.nx(), grid_.ny(), 0.0);
  const auto nn = static_cast<std::size_t>(p.num_nodes());
  const parallel::ChunkPlan plan = parallel::plan_chunks(nn, kNodeGrain, kGridChunkCap);
  std::vector<Grid2D<double>> partial(static_cast<std::size_t>(plan.count));
  parallel::ThreadPool::instance().run(plan, [&](int ci, int) {
    Grid2D<double>& pg = partial[static_cast<std::size_t>(ci)];
    pg = Grid2D<double>(grid_.nx(), grid_.ny(), 0.0);
    for (std::size_t uv = plan.begin(ci); uv < plan.end(ci); ++uv) {
      const auto& n = p.nodes[uv];
      if (n.fixed) continue;
      const double cx = p.x[uv];
      const double cy = p.y[uv];
      const double infl = std::sqrt(p.inflate[uv]);
      const double w = n.w * infl, h = n.h * infl;
      const Rect r{cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2};
      grid_.rasterize(r, [&](int ix, int iy, double a) { pg(ix, iy) += a; });
    }
  });
  parallel::parallel_for(g.size(), kBinGrain, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) {
      double s = 0.0;
      for (int ci = 0; ci < plan.count; ++ci) s += partial[static_cast<std::size_t>(ci)].data()[i];
      g.data()[i] = s;
    }
  });
  return g;
}

double DensityModel::overflow(const PlaceProblem& p) const {
  RP_PROFILE_REGION("kernel/density_overflow");
  const Grid2D<double> g = rasterized_density(p);
  double over = 0.0, area = 0.0;
  for (int iy = 0; iy < grid_.ny(); ++iy)
    for (int ix = 0; ix < grid_.nx(); ++ix)
      over += std::max(0.0, g(ix, iy) - cap_(ix, iy));
  for (const auto& n : p.nodes)
    if (!n.fixed) area += n.area();
  return area > 0 ? over / area : 0.0;
}

}  // namespace rp
