#include "model/netlist_csr.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/parallel.hpp"

namespace rp {

namespace {

/// Build the node->pin incidence from pin_node with counting sort, so
/// node_pin lists every node's pins in ascending pin-id order.
void build_incidence(NetlistCsr& c) {
  c.node_pin_offset.assign(static_cast<std::size_t>(c.num_nodes) + 1, 0);
  for (const int v : c.pin_node) ++c.node_pin_offset[static_cast<std::size_t>(v) + 1];
  for (int v = 0; v < c.num_nodes; ++v)
    c.node_pin_offset[static_cast<std::size_t>(v) + 1] +=
        c.node_pin_offset[static_cast<std::size_t>(v)];
  c.node_pin.resize(static_cast<std::size_t>(c.num_pins));
  std::vector<int> cursor(c.node_pin_offset.begin(), c.node_pin_offset.end() - 1);
  for (int pin = 0; pin < c.num_pins; ++pin) {
    const int v = c.pin_node[static_cast<std::size_t>(pin)];
    c.node_pin[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] = pin;
  }
}

void size_buffers(NetlistCsr& c) {
  const auto np = static_cast<std::size_t>(c.num_pins);
  c.pin_cx.resize(np);
  c.pin_cy.resize(np);
  c.pin_gx.resize(np);
  c.pin_gy.resize(np);
  c.max_net_degree = 0;
  for (int n = 0; n < c.num_nets; ++n)
    c.max_net_degree = std::max(c.max_net_degree, c.net_degree(n));
}

}  // namespace

NetlistCsr NetlistCsr::from_problem(const PlaceProblem& p) {
  NetlistCsr c;
  c.num_nodes = p.num_nodes();
  c.num_nets = p.num_nets();
  c.num_pins = static_cast<int>(p.pins.size());
  c.net_offset.resize(static_cast<std::size_t>(c.num_nets) + 1);
  c.net_weight.resize(static_cast<std::size_t>(c.num_nets));
  // PlaceProblem pins are already grouped by net in net order; reuse the
  // ranges directly (and assert the invariant we rely on).
  int expect = 0;
  for (int n = 0; n < c.num_nets; ++n) {
    const PlaceNet& net = p.nets[static_cast<std::size_t>(n)];
    RP_ASSERT(net.pin_begin == expect, "PlaceProblem pins not contiguous by net");
    c.net_offset[static_cast<std::size_t>(n)] = net.pin_begin;
    c.net_weight[static_cast<std::size_t>(n)] = net.weight;
    expect = net.pin_end;
  }
  c.net_offset[static_cast<std::size_t>(c.num_nets)] = expect;
  RP_ASSERT(expect == c.num_pins, "PlaceProblem pin ranges do not cover pins");

  c.pin_node.resize(static_cast<std::size_t>(c.num_pins));
  c.pin_ox.resize(static_cast<std::size_t>(c.num_pins));
  c.pin_oy.resize(static_cast<std::size_t>(c.num_pins));
  for (int i = 0; i < c.num_pins; ++i) {
    const PlacePin& pin = p.pins[static_cast<std::size_t>(i)];
    c.pin_node[static_cast<std::size_t>(i)] = pin.node;
    c.pin_ox[static_cast<std::size_t>(i)] = pin.ox;
    c.pin_oy[static_cast<std::size_t>(i)] = pin.oy;
  }
  build_incidence(c);
  size_buffers(c);
  return c;
}

NetlistCsr NetlistCsr::from_design(const Design& d) {
  NetlistCsr c;
  c.num_nodes = d.num_cells();
  c.num_nets = d.num_nets();
  c.net_offset.resize(static_cast<std::size_t>(c.num_nets) + 1);
  c.net_weight.resize(static_cast<std::size_t>(c.num_nets));
  int total = 0;
  for (NetId n = 0; n < d.num_nets(); ++n) {
    c.net_offset[static_cast<std::size_t>(n)] = total;
    c.net_weight[static_cast<std::size_t>(n)] = d.net(n).weight;
    total += d.net(n).degree();
  }
  c.net_offset[static_cast<std::size_t>(c.num_nets)] = total;
  c.num_pins = total;

  c.pin_node.resize(static_cast<std::size_t>(total));
  c.pin_ox.resize(static_cast<std::size_t>(total));
  c.pin_oy.resize(static_cast<std::size_t>(total));
  int i = 0;
  for (NetId n = 0; n < d.num_nets(); ++n) {
    for (const PinId pid : d.net(n).pins) {
      const Pin& pin = d.pin(pid);
      c.pin_node[static_cast<std::size_t>(i)] = pin.cell;
      c.pin_ox[static_cast<std::size_t>(i)] = pin.offset.x;
      c.pin_oy[static_cast<std::size_t>(i)] = pin.offset.y;
      ++i;
    }
  }
  build_incidence(c);
  size_buffers(c);
  return c;
}

void NetlistCsr::gather_coords(const PlaceProblem& p) {
  parallel::parallel_for(static_cast<std::size_t>(num_pins), 8192,
                         [&](std::size_t b, std::size_t e, int) {
                           for (std::size_t i = b; i < e; ++i) {
                             const auto v = static_cast<std::size_t>(pin_node[i]);
                             pin_cx[i] = p.x[v] + pin_ox[i];
                             pin_cy[i] = p.y[v] + pin_oy[i];
                           }
                         });
}

void NetlistCsr::gather_coords(const Design& d) {
  parallel::parallel_for(static_cast<std::size_t>(num_pins), 8192,
                         [&](std::size_t b, std::size_t e, int) {
                           for (std::size_t i = b; i < e; ++i) {
                             const Point ctr = d.cell_center(pin_node[i]);
                             pin_cx[i] = ctr.x + pin_ox[i];
                             pin_cy[i] = ctr.y + pin_oy[i];
                           }
                         });
}

}  // namespace rp
