#include "solver/cg.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/telemetry.hpp"

namespace rp {

namespace {

double inf_norm(const std::vector<double>& v) {
  double m = 0.0;
  for (const double x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

CgResult minimize_cg(const CgObjective& f, std::vector<double>& z, const CgOptions& opt) {
  RP_ASSERT(!z.empty(), "minimize_cg on empty vector");
  const std::size_t n = z.size();
  std::vector<double> g(n), g_prev(n), d(n), z_trial(n), g_trial(n);

  CgResult res;
  double fz = f(z, g);
  res.f = fz;
  for (std::size_t i = 0; i < n; ++i) d[i] = -g[i];

  for (int it = 0; it < opt.max_iters; ++it) {
    res.iters = it + 1;
    const double dmax = inf_norm(d);
    if (dmax < opt.grad_tol) {
      res.converged = true;
      break;
    }
    // Scale so the largest coordinate moves exactly trust_radius.
    double alpha = opt.trust_radius / dmax;
    double f_new = 0.0;
    bool accepted = false;
    for (int bt = 0; bt <= opt.max_backtracks; ++bt) {
      for (std::size_t i = 0; i < n; ++i) z_trial[i] = z[i] + alpha * d[i];
      f_new = f(z_trial, g_trial);
      if (f_new <= fz || bt == opt.max_backtracks) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) break;

    g_prev.swap(g);
    g.swap(g_trial);
    z.swap(z_trial);

    const double f_prev = fz;
    fz = f_new;
    res.f = fz;
    if (std::abs(f_prev - fz) <= opt.f_rel_tol * std::max(1.0, std::abs(f_prev))) {
      res.converged = true;
      break;
    }

    // Polak–Ribière+ with automatic restart (β clamped at 0).
    double num = 0.0;
    for (std::size_t i = 0; i < n; ++i) num += g[i] * (g[i] - g_prev[i]);
    const double den = dot(g_prev, g_prev);
    const double beta = den > 0 ? std::max(0.0, num / den) : 0.0;
    double gd = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d[i] = -g[i] + beta * d[i];
      gd += g[i] * d[i];
    }
    // Safeguard: if not a descent direction, restart with steepest descent.
    if (gd >= 0.0) {
      for (std::size_t i = 0; i < n; ++i) d[i] = -g[i];
    }
  }
  RP_COUNT("solver.cg_calls", 1);
  RP_COUNT("solver.cg_iters", res.iters);
  return res;
}

}  // namespace rp
