#include "solver/cg.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/parallel.hpp"
#include "util/profiler.hpp"
#include "util/simd.hpp"
#include "util/telemetry.hpp"

namespace rp {

namespace {

// Vector kernels routed through the deterministic pool: chunk-ordered
// reductions, so every thread count produces the same bits. Inside each
// chunk the dispatched simd kernels run (util/simd.hpp) — scalar and
// vector levels share one summation tree, so RP_SIMD does not change the
// bits either. The grain keeps small systems (coarse levels, tests) on the
// inline fast path.
constexpr std::size_t kVecGrain = 4096;

double inf_norm(const std::vector<double>& v) {
  return parallel::parallel_reduce(
      v.size(), kVecGrain, 0.0,
      [&](std::size_t b, std::size_t e, int) {
        return simd::ops().abs_max(v.data() + b, e - b);
      },
      [](double a, double b) { return std::max(a, b); });
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  return parallel::parallel_reduce(
      a.size(), kVecGrain, 0.0,
      [&](std::size_t bg, std::size_t e, int) {
        return simd::ops().dot(a.data() + bg, b.data() + bg, e - bg);
      },
      [](double x, double y) { return x + y; });
}

/// z_trial = z + alpha * d  (element-parallel).
void axpy_into(std::vector<double>& out, const std::vector<double>& z, double alpha,
               const std::vector<double>& d) {
  parallel::parallel_for(out.size(), kVecGrain, [&](std::size_t b, std::size_t e, int) {
    simd::ops().axpy_out(z.data() + b, alpha, d.data() + b, e - b, out.data() + b);
  });
}

}  // namespace

CgResult minimize_cg(const CgObjective& f, std::vector<double>& z, const CgOptions& opt) {
  RP_ASSERT(!z.empty(), "minimize_cg on empty vector");
  RP_PROFILE_REGION("kernel/cg");
  const std::size_t n = z.size();
  std::vector<double> g(n), g_prev(n), d(n), z_trial(n), g_trial(n);

  CgResult res;
  double fz = f(z, g);
  res.f = fz;
  parallel::parallel_for(n, kVecGrain, [&](std::size_t b, std::size_t e, int) {
    simd::ops().neg(g.data() + b, e - b, d.data() + b);
  });

  for (int it = 0; it < opt.max_iters; ++it) {
    res.iters = it + 1;
    const double dmax = inf_norm(d);
    if (dmax < opt.grad_tol) {
      res.converged = true;
      break;
    }
    // Scale so the largest coordinate moves exactly trust_radius.
    double alpha = opt.trust_radius / dmax;
    double f_new = 0.0;
    bool accepted = false;
    for (int bt = 0; bt <= opt.max_backtracks; ++bt) {
      axpy_into(z_trial, z, alpha, d);
      f_new = f(z_trial, g_trial);
      if (f_new <= fz || bt == opt.max_backtracks) {
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) break;

    g_prev.swap(g);
    g.swap(g_trial);
    z.swap(z_trial);

    const double f_prev = fz;
    fz = f_new;
    res.f = fz;
    if (std::abs(f_prev - fz) <= opt.f_rel_tol * std::max(1.0, std::abs(f_prev))) {
      res.converged = true;
      break;
    }

    // Polak–Ribière+ with automatic restart (β clamped at 0).
    const double num = parallel::parallel_reduce(
        n, kVecGrain, 0.0,
        [&](std::size_t b, std::size_t e, int) {
          return simd::ops().pr_num(g.data() + b, g_prev.data() + b, e - b);
        },
        [](double x, double y) { return x + y; });
    const double den = dot(g_prev, g_prev);
    const double beta = den > 0 ? std::max(0.0, num / den) : 0.0;
    const double gd = parallel::parallel_reduce(
        n, kVecGrain, 0.0,
        [&](std::size_t b, std::size_t e, int) {
          const simd::Ops& ops = simd::ops();
          ops.cg_dir(g.data() + b, beta, d.data() + b, e - b);
          return ops.dot(g.data() + b, d.data() + b, e - b);
        },
        [](double x, double y) { return x + y; });
    // Safeguard: if not a descent direction, restart with steepest descent.
    if (gd >= 0.0) {
      parallel::parallel_for(n, kVecGrain, [&](std::size_t b, std::size_t e, int) {
        simd::ops().neg(g.data() + b, e - b, d.data() + b);
      });
    }
  }
  RP_COUNT("solver.cg_calls", 1);
  RP_COUNT("solver.cg_iters", res.iters);
  return res;
}

namespace {

bool all_finite(const std::vector<double>& v) {
  // Deterministic early-exit scan on the calling thread; the guard must not
  // perturb pool chunking (results are compared bitwise across thread counts).
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

CgResult minimize_cg_guarded(const CgObjective& f, std::vector<double>& z,
                             const CgOptions& opt, const std::string& stage,
                             GuardStats* guard) {
  const std::vector<double> last_good = z;  // snapshot before the solve
  CgResult res = minimize_cg(f, z, opt);
  if (all_finite(z) && std::isfinite(res.f)) {
    if (guard != nullptr) *guard = GuardStats{};
    return res;
  }

  // Graceful degradation: restore the last-good coordinates, halve the step
  // (trust radius), and give the solve one more chance.
  RP_WARN("numeric guard [%s]: non-finite coordinates after CG; restoring "
          "last-good state and retrying with halved trust radius",
          stage.c_str());
  RP_COUNT("guard.nonfinite_detected", 1);
  RP_COUNT("guard.retries", 1);
  {
    obs::Event e = obs::events().make(obs::EventKind::Guard,
                                      ("cg.retry:" + stage).c_str());
    e.i0 = 1;  // retry number (single-retry policy)
    e.d0 = opt.trust_radius * 0.5;
    obs::events().emit(e);
  }
  z = last_good;
  if (guard != nullptr) {
    guard->retries = 1;
    guard->degraded = true;
  }
  CgOptions degraded = opt;
  degraded.trust_radius = opt.trust_radius * 0.5;
  res = minimize_cg(f, z, degraded);
  if (all_finite(z) && std::isfinite(res.f)) return res;

  z = last_good;  // leave the caller with usable coordinates
  RP_COUNT("guard.aborts", 1);
  {
    obs::Event e = obs::events().make(obs::EventKind::Guard,
                                      ("cg.abort:" + stage).c_str());
    obs::events().emit(e);
  }
  throw Error(ErrorCode::NumericError,
              "non-finite coordinates/objective survived restore-and-retry",
              "cg.cpp:guard", stage);
}

}  // namespace rp
