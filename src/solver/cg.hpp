#pragma once
// Nonlinear conjugate gradient (Polak–Ribière+), the inner solver of the
// analytical global placer.
//
// Instead of an exact line search (expensive: every evaluation costs a full
// wirelength + density pass), the step follows this placer family's scheme:
// the step size is chosen so the LARGEST single-coordinate move equals a
// trust radius (typically one density-bin width), with backtracking only if
// the objective increases. PR+ restarts (β clamped at 0) keep directions
// descent-safe under this inexact search.

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace rp {

struct CgOptions {
  int max_iters = 100;
  double trust_radius = 1.0;      ///< Max per-coordinate displacement per step.
  double grad_tol = 1e-6;         ///< Stop when ||g||∞ < grad_tol.
  double f_rel_tol = 1e-7;        ///< Stop on tiny relative objective change.
  int max_backtracks = 6;         ///< Halvings before accepting uphill drift.
};

struct CgResult {
  double f = 0.0;       ///< Final objective value.
  int iters = 0;        ///< Iterations actually performed.
  bool converged = false;
};

/// Objective callback: f(z, grad) -> value, fills grad (same size as z).
using CgObjective = std::function<double(std::span<const double>, std::span<double>)>;

/// Minimize starting from z (updated in place).
CgResult minimize_cg(const CgObjective& f, std::vector<double>& z, const CgOptions& opt);

/// Outcome of the numeric guard wrapped around one minimize_cg call.
struct GuardStats {
  int retries = 0;       ///< Restore-and-retry cycles taken (0 or 1).
  bool degraded = false; ///< True if the accepted solve used a halved step.
};

/// minimize_cg with numeric guard rails: if the solve leaves any NaN/Inf in
/// z, restore the last-good z, halve the trust radius, and retry ONCE; a
/// second non-finite result restores z and throws rp::Error(NumericError).
/// `stage` names the caller for the error's stage field ("gp/level2", ...).
/// Bitwise-deterministic: the guard only inspects values the solve produced.
CgResult minimize_cg_guarded(const CgObjective& f, std::vector<double>& z,
                             const CgOptions& opt, const std::string& stage,
                             GuardStats* guard = nullptr);

}  // namespace rp
