#pragma once
// Fast congestion estimation (no search), used inside the placement loop.
//
// Two estimators, in increasing fidelity:
//  * RUDY (Rectangular Uniform wire DensitY): each net smears a demand of
//    hpwl/bbox_area over its bounding box. Grid-resolution independent and
//    extremely fast; good for coarse spreading decisions.
//  * Probabilistic L-route: each net is decomposed into 2-pin segments along
//    its rectilinear minimum spanning tree; each segment charges the two
//    one-bend (L) routes with probability 0.5 each. Produces per-EDGE track
//    demand directly comparable with RoutingGrid capacities; this is what
//    the routability-driven placer inflates cells against.
//
// The probabilistic estimator runs parallel over net chunks on the CSR
// netlist flattening (model/netlist_csr.hpp): each chunk deposits into its
// own pair of h/v demand grids, reduced into the RoutingGrid in ascending
// chunk order — bitwise identical for any thread count.

#include <utility>
#include <vector>

#include "db/design.hpp"
#include "model/netlist_csr.hpp"
#include "route/routegrid.hpp"
#include "util/geometry.hpp"

namespace rp {

/// Reusable per-thread scratch for net_topology (Prim state + segment list).
struct TopologyScratch {
  std::vector<bool> in;
  std::vector<double> dist;
  std::vector<int> from;
  std::vector<int> ord;
  std::vector<std::pair<int, int>> seg;
};

/// Rectilinear-MST segment list over pts[0..k). Prim's algorithm, O(k²); for
/// k > 128 falls back to a sorted-chain topology. The returned reference
/// aliases s.seg (valid until the next call with the same scratch).
const std::vector<std::pair<int, int>>& net_topology(const Point* pts, int k,
                                                     TopologyScratch& s);

/// Allocating convenience wrapper (tests / router).
std::vector<std::pair<int, int>> net_topology(const std::vector<Point>& pts);

/// RUDY wiring-demand map on an arbitrary grid (units: demand density).
Grid2D<double> rudy_map(const Design& d, const GridMap& grid);

/// Probabilistic L-route demand: clears `grid` usage and deposits each net's
/// expected track usage on the grid's h/v edges.
void estimate_probabilistic(const Design& d, RoutingGrid& grid);

/// Same, reusing a prebuilt CSR view of d's netlist (pin coordinates are
/// re-gathered from the design's current cell positions).
void estimate_probabilistic(const Design& d, NetlistCsr& csr, RoutingGrid& grid);

}  // namespace rp
