#pragma once
// Fast congestion estimation (no search), used inside the placement loop.
//
// Two estimators, in increasing fidelity:
//  * RUDY (Rectangular Uniform wire DensitY): each net smears a demand of
//    hpwl/bbox_area over its bounding box. Grid-resolution independent and
//    extremely fast; good for coarse spreading decisions.
//  * Probabilistic L-route: each net is decomposed into 2-pin segments along
//    its rectilinear minimum spanning tree; each segment charges the two
//    one-bend (L) routes with probability 0.5 each. Produces per-EDGE track
//    demand directly comparable with RoutingGrid capacities; this is what
//    the routability-driven placer inflates cells against.

#include <utility>
#include <vector>

#include "db/design.hpp"
#include "route/routegrid.hpp"
#include "util/geometry.hpp"

namespace rp {

/// Rectilinear-MST segment list over a point set (pin positions).
/// Prim's algorithm, O(k²); for k > 128 falls back to a sorted-chain
/// topology. Returns index pairs into `pts`.
std::vector<std::pair<int, int>> net_topology(const std::vector<Point>& pts);

/// RUDY wiring-demand map on an arbitrary grid (units: demand density).
Grid2D<double> rudy_map(const Design& d, const GridMap& grid);

/// Probabilistic L-route demand: clears `grid` usage and deposits each net's
/// expected track usage on the grid's h/v edges.
void estimate_probabilistic(const Design& d, RoutingGrid& grid);

}  // namespace rp
