#include "route/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace rp {

double ace(std::vector<double> utilizations, double top_percent) {
  RP_ASSERT(top_percent > 0 && top_percent <= 100, "ace: bad percentile");
  if (utilizations.empty()) return 0.0;
  const auto k = static_cast<std::size_t>(std::max<double>(
      1.0, std::ceil(utilizations.size() * top_percent / 100.0)));
  std::nth_element(utilizations.begin(), utilizations.begin() + static_cast<long>(k - 1),
                   utilizations.end(), std::greater<>());
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += utilizations[i];
  return 100.0 * sum / static_cast<double>(k);
}

CongestionMetrics congestion_metrics(const RoutingGrid& grid) {
  CongestionMetrics m;
  const std::vector<double> utils = grid.edge_utilizations();
  m.ace_005 = ace(utils, 0.5);
  m.ace_1 = ace(utils, 1.0);
  m.ace_2 = ace(utils, 2.0);
  m.ace_5 = ace(utils, 5.0);
  m.rc = (m.ace_005 + m.ace_1 + m.ace_2 + m.ace_5) / 4.0;
  for (const double u : utils) {
    m.peak_utilization = std::max(m.peak_utilization, u);
    if (u > 1.0 + 1e-9) ++m.overflowed_edges;
  }
  m.total_overflow = grid.total_overflow();
  return m;
}

double scaled_hpwl(double hpwl, double rc, double penalty_per_point) {
  return hpwl * (1.0 + penalty_per_point * std::max(0.0, rc - 100.0));
}

}  // namespace rp
