#include "route/routegrid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace rp {

RoutingGrid::RoutingGrid(Rect die, int nx, int ny, double h_cap, double v_cap)
    : map_(die, nx, ny),
      hcap_(nx - 1, ny, h_cap),
      vcap_(nx, ny - 1, v_cap),
      huse_(nx - 1, ny, 0.0),
      vuse_(nx, ny - 1, 0.0) {
  RP_ASSERT(nx >= 2 && ny >= 2, "RoutingGrid needs at least 2x2 tiles");
}

RoutingGrid::RoutingGrid(const Design& d, bool include_movable_macros)
    : RoutingGrid(d.die(),
                  d.route_grid().valid() ? d.route_grid().nx : 32,
                  d.route_grid().valid() ? d.route_grid().ny : 32,
                  d.route_grid().valid() ? d.route_grid().h_capacity : 40.0,
                  d.route_grid().valid() ? d.route_grid().v_capacity : 40.0) {
  const double porosity = d.route_grid().valid() ? d.route_grid().macro_porosity : 0.2;
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    const bool blocks = k.is_macro() || (k.kind == CellKind::Terminal && k.area() > 0 &&
                                         k.h > 2 * d.row_height());
    if (!blocks) continue;
    if (!k.fixed && !include_movable_macros) continue;
    derate_under_rect(d.cell_rect(c), porosity);
  }
}

void RoutingGrid::derate_under_rect(const Rect& r, double porosity) {
  // An edge's track budget shrinks proportionally to how much of its tile
  // span the blockage covers, down to `porosity` of the original when fully
  // covered. Horizontal edge (ix,iy) spans tiles (ix,iy)+(ix+1,iy); we use
  // the coverage of the window centered on the boundary.
  const Rect clipped = r.intersect(map_.die());
  if (clipped.width() <= 0 || clipped.height() <= 0) return;
  for (int iy = 0; iy < ny(); ++iy) {
    for (int ix = 0; ix + 1 < nx(); ++ix) {
      const Rect t0 = map_.bin_rect(ix, iy);
      const Rect window{t0.center().x, t0.ly, t0.center().x + tile_w(), t0.hy};
      const double cover = clipped.overlap_area(window) / window.area();
      if (cover > 0) hcap_(ix, iy) *= 1.0 - cover * (1.0 - porosity);
    }
  }
  for (int iy = 0; iy + 1 < ny(); ++iy) {
    for (int ix = 0; ix < nx(); ++ix) {
      const Rect t0 = map_.bin_rect(ix, iy);
      const Rect window{t0.lx, t0.center().y, t0.hx, t0.center().y + tile_h()};
      const double cover = clipped.overlap_area(window) / window.area();
      if (cover > 0) vcap_(ix, iy) *= 1.0 - cover * (1.0 - porosity);
    }
  }
}

void RoutingGrid::clear_usage() {
  huse_.fill(0.0);
  vuse_.fill(0.0);
}

double RoutingGrid::total_overflow() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < huse_.data().size(); ++i)
    sum += std::max(0.0, huse_.data()[i] - hcap_.data()[i]);
  for (std::size_t i = 0; i < vuse_.data().size(); ++i)
    sum += std::max(0.0, vuse_.data()[i] - vcap_.data()[i]);
  return sum;
}

namespace {
// Edges with almost no capacity (deep inside macros) are excluded from
// utilization statistics; the router also refuses them.
constexpr double kMinUsableCap = 1e-6;
}  // namespace

double RoutingGrid::max_utilization() const {
  double m = 0.0;
  for (std::size_t i = 0; i < huse_.data().size(); ++i)
    if (hcap_.data()[i] > kMinUsableCap)
      m = std::max(m, huse_.data()[i] / hcap_.data()[i]);
  for (std::size_t i = 0; i < vuse_.data().size(); ++i)
    if (vcap_.data()[i] > kMinUsableCap)
      m = std::max(m, vuse_.data()[i] / vcap_.data()[i]);
  return m;
}

std::vector<double> RoutingGrid::edge_utilizations() const {
  std::vector<double> u;
  u.reserve(huse_.data().size() + vuse_.data().size());
  for (std::size_t i = 0; i < huse_.data().size(); ++i)
    if (hcap_.data()[i] > kMinUsableCap) u.push_back(huse_.data()[i] / hcap_.data()[i]);
  for (std::size_t i = 0; i < vuse_.data().size(); ++i)
    if (vcap_.data()[i] > kMinUsableCap) u.push_back(vuse_.data()[i] / vcap_.data()[i]);
  return u;
}

double RoutingGrid::used_wirelength() const {
  double wl = 0.0;
  for (const double u : huse_.data()) wl += u * tile_w();
  for (const double u : vuse_.data()) wl += u * tile_h();
  return wl;
}

Grid2D<double> RoutingGrid::tile_congestion() const {
  Grid2D<double> g(nx(), ny(), 0.0);
  const auto util = [&](double use, double cap) {
    return cap > kMinUsableCap ? use / cap : 0.0;
  };
  for (int iy = 0; iy < ny(); ++iy) {
    for (int ix = 0; ix < nx(); ++ix) {
      double m = 0.0;
      if (ix > 0) m = std::max(m, util(huse_(ix - 1, iy), hcap_(ix - 1, iy)));
      if (ix + 1 < nx()) m = std::max(m, util(huse_(ix, iy), hcap_(ix, iy)));
      if (iy > 0) m = std::max(m, util(vuse_(ix, iy - 1), vcap_(ix, iy - 1)));
      if (iy + 1 < ny()) m = std::max(m, util(vuse_(ix, iy), vcap_(ix, iy)));
      g(ix, iy) = m;
    }
  }
  return g;
}

namespace {

/// Shared walk for the tile_* maps: fn(tile_value_ref, edge_use, edge_cap)
/// for every edge adjacent to the tile.
template <typename Fn>
Grid2D<double> tile_edge_fold(const RoutingGrid& g, Fn&& fn) {
  Grid2D<double> out(g.nx(), g.ny(), 0.0);
  for (int iy = 0; iy < g.ny(); ++iy) {
    for (int ix = 0; ix < g.nx(); ++ix) {
      double& v = out(ix, iy);
      if (ix > 0) fn(v, g.h_use(ix - 1, iy), g.h_cap(ix - 1, iy));
      if (ix + 1 < g.nx()) fn(v, g.h_use(ix, iy), g.h_cap(ix, iy));
      if (iy > 0) fn(v, g.v_use(ix, iy - 1), g.v_cap(ix, iy - 1));
      if (iy + 1 < g.ny()) fn(v, g.v_use(ix, iy), g.v_cap(ix, iy));
    }
  }
  return out;
}

}  // namespace

Grid2D<double> RoutingGrid::tile_demand() const {
  return tile_edge_fold(*this,
                        [](double& v, double use, double) { v += use; });
}

Grid2D<double> RoutingGrid::tile_capacity() const {
  return tile_edge_fold(*this,
                        [](double& v, double, double cap) { v += cap; });
}

Grid2D<double> RoutingGrid::tile_overflow() const {
  return tile_edge_fold(*this, [](double& v, double use, double cap) {
    v += std::max(0.0, use - cap);
  });
}

}  // namespace rp
