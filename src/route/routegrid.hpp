#pragma once
// The 2-D global-routing grid: tiles, boundary edges, track capacities and
// usage. All routability machinery (estimators, the global router, the
// congestion metrics) operates on this structure.
//
// Geometry: the die is cut into nx × ny tiles. A HORIZONTAL edge h(ix,iy)
// connects tile (ix,iy) to (ix+1,iy) (x-going wires, ix in [0, nx-2]); a
// VERTICAL edge v(ix,iy) connects (ix,iy) to (ix,iy+1). Capacities start
// from the design's RouteGridInfo and are derated where macros / fixed
// blockages cover the edge's tile span: an edge fully under a macro keeps
// only `macro_porosity` of its tracks (over-the-cell routing on high layers).

#include <vector>

#include "db/design.hpp"
#include "util/grid.hpp"

namespace rp {

class RoutingGrid {
 public:
  /// Build from a finalized design; uses d.route_grid() for dimensions and
  /// base capacities and derates under fixed macros/blockages.
  /// If `include_movable_macros`, movable macros at their CURRENT positions
  /// also derate capacity (used when evaluating a finished placement).
  explicit RoutingGrid(const Design& d, bool include_movable_macros = true);

  /// Build a bare grid (tests / microbenches).
  RoutingGrid(Rect die, int nx, int ny, double h_cap, double v_cap);

  int nx() const { return map_.nx(); }
  int ny() const { return map_.ny(); }
  const GridMap& map() const { return map_; }
  double tile_w() const { return map_.bin_w(); }
  double tile_h() const { return map_.bin_h(); }

  // --- capacities & usage (tracks) ---
  double h_cap(int ix, int iy) const { return hcap_(ix, iy); }
  double v_cap(int ix, int iy) const { return vcap_(ix, iy); }
  double h_use(int ix, int iy) const { return huse_(ix, iy); }
  double v_use(int ix, int iy) const { return vuse_(ix, iy); }
  void add_h(int ix, int iy, double tracks) { huse_(ix, iy) += tracks; }
  void add_v(int ix, int iy, double tracks) { vuse_(ix, iy) += tracks; }
  void clear_usage();

  // Whole-grid usage views for bulk writers (the parallel estimator reduces
  // per-chunk demand grids straight into these).
  Grid2D<double>& h_use_grid() { return huse_; }
  Grid2D<double>& v_use_grid() { return vuse_; }
  const Grid2D<double>& h_use_grid() const { return huse_; }
  const Grid2D<double>& v_use_grid() const { return vuse_; }

  int num_h_edges() const { return (nx() - 1) * ny(); }
  int num_v_edges() const { return nx() * (ny() - 1); }

  /// Manually derate an edge region (narrow-channel experiments).
  void scale_h_cap(int ix, int iy, double f) { hcap_(ix, iy) *= f; }
  void scale_v_cap(int ix, int iy, double f) { vcap_(ix, iy) *= f; }

  // --- aggregate congestion ---
  /// Total overflow: Σ_e max(0, use - cap), in tracks.
  double total_overflow() const;
  /// Max single-edge utilization (use/cap), blocked (cap≈0) edges skipped.
  double max_utilization() const;
  /// All edge utilizations (for ACE metrics); unusable edges excluded.
  std::vector<double> edge_utilizations() const;
  /// Routed wirelength implied by current usage (track-length units).
  double used_wirelength() const;

  /// Congestion of the tile at a die coordinate (max of its surrounding
  /// edges' utilization); for congestion maps & cell inflation.
  Grid2D<double> tile_congestion() const;

  // Per-tile spatial maps for snapshots/diagnostics: each tile aggregates
  // its adjacent h/v edges (sum of tracks), so demand − capacity mirrors
  // the per-edge overflow picture at tile resolution.
  Grid2D<double> tile_demand() const;    ///< Σ adjacent-edge usage.
  Grid2D<double> tile_capacity() const;  ///< Σ adjacent-edge capacity.
  Grid2D<double> tile_overflow() const;  ///< Σ adjacent-edge (use − cap)⁺.

 private:
  void derate_under_rect(const Rect& r, double porosity);

  GridMap map_;
  Grid2D<double> hcap_, vcap_;  // (nx-1) x ny and nx x (ny-1)
  Grid2D<double> huse_, vuse_;
};

}  // namespace rp
