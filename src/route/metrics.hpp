#pragma once
// Contest-style routability metrics (DAC-2012 conventions).
//
// ACE(x): Average Congestion of the top x% most-congested Edges, where the
// congestion of an edge is utilization = usage / capacity, expressed in %.
// RC ("routing congestion"): mean of ACE at 0.5%, 1%, 2% and 5% — the
// contest's peak-weighted congestion figure. 100 means "exactly full".
//
// Scaled HPWL: HPWL × (1 + pf × max(0, RC − 100)), pf = 0.03 per RC point,
// the contest's routability-penalized wirelength objective.

#include <vector>

#include "route/routegrid.hpp"

namespace rp {

/// ACE(x%) over the given utilization list (fractions; result in %).
/// x in (0, 100]. Empty input yields 0.
double ace(std::vector<double> utilizations, double top_percent);

struct CongestionMetrics {
  double ace_005 = 0.0;  ///< ACE(0.5%)
  double ace_1 = 0.0;
  double ace_2 = 0.0;
  double ace_5 = 0.0;
  double rc = 0.0;             ///< mean of the four ACE values (in %)
  double peak_utilization = 0.0;  ///< max edge utilization (fraction)
  double total_overflow = 0.0;    ///< Σ (use − cap)+ in tracks
  int overflowed_edges = 0;
};

/// Compute the metric bundle from the grid's current usage.
CongestionMetrics congestion_metrics(const RoutingGrid& grid);

/// Contest scaled HPWL. `rc` in percent (100 == full).
double scaled_hpwl(double hpwl, double rc, double penalty_per_point = 0.03);

}  // namespace rp
