#include "route/router.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "route/estimator.hpp"
#include "util/assert.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/telemetry.hpp"

namespace rp {

GlobalRouter::GlobalRouter(RoutingGrid& grid, RouterOptions opt)
    : grid_(grid), opt_(opt), h_base_((grid.nx() - 1) * grid.ny()) {
  history_.assign(static_cast<std::size_t>(grid.num_h_edges() + grid.num_v_edges()), 0.0);
}

double GlobalRouter::edge_overuse(int e) const {
  if (is_h(e)) {
    const int ix = e % (grid_.nx() - 1), iy = e / (grid_.nx() - 1);
    return std::max(0.0, grid_.h_use(ix, iy) + 1.0 - grid_.h_cap(ix, iy));
  }
  const int r = e - h_base_;
  const int ix = r % grid_.nx(), iy = r / grid_.nx();
  return std::max(0.0, grid_.v_use(ix, iy) + 1.0 - grid_.v_cap(ix, iy));
}

double GlobalRouter::edge_cost(int e) const {
  double len, cap;
  if (is_h(e)) {
    const int ix = e % (grid_.nx() - 1), iy = e / (grid_.nx() - 1);
    len = grid_.tile_w();
    cap = grid_.h_cap(ix, iy);
  } else {
    const int r = e - h_base_;
    const int ix = r % grid_.nx(), iy = r / grid_.nx();
    len = grid_.tile_h();
    cap = grid_.v_cap(ix, iy);
  }
  double c = len * (1.0 + history_[static_cast<std::size_t>(e)]) *
             (1.0 + pres_fac_ * edge_overuse(e));
  if (cap < 1e-6) c *= opt_.blocked_penalty;
  return c;
}

void GlobalRouter::add_edge_usage(int e, double tracks) {
  if (is_h(e)) {
    const int ix = e % (grid_.nx() - 1), iy = e / (grid_.nx() - 1);
    grid_.add_h(ix, iy, tracks);
  } else {
    const int r = e - h_base_;
    const int ix = r % grid_.nx(), iy = r / grid_.nx();
    grid_.add_v(ix, iy, tracks);
  }
}

double GlobalRouter::route_segment(const Segment& s, std::vector<int>& path, int margin) {
  const int nx = grid_.nx(), ny = grid_.ny();
  const int bx0 = std::max(0, std::min(s.x0, s.x1) - margin);
  const int bx1 = std::min(nx - 1, std::max(s.x0, s.x1) + margin);
  const int by0 = std::max(0, std::min(s.y0, s.y1) - margin);
  const int by1 = std::min(ny - 1, std::max(s.y0, s.y1) + margin);
  const int bw = bx1 - bx0 + 1, bh = by1 - by0 + 1;
  const auto local = [&](int ix, int iy) { return (iy - by0) * bw + (ix - bx0); };

  const double min_pitch = std::min(grid_.tile_w(), grid_.tile_h());
  const auto heur = [&](int ix, int iy) {
    return (std::abs(ix - s.x1) + std::abs(iy - s.y1)) * min_pitch;
  };

  constexpr double kInf = 1e300;
  std::vector<double> dist(static_cast<std::size_t>(bw) * bh, kInf);
  std::vector<int> came_edge(static_cast<std::size_t>(bw) * bh, -1);
  using QE = std::pair<double, int>;  // (f = g + h, local tile)
  std::priority_queue<QE, std::vector<QE>, std::greater<>> open;
  dist[static_cast<std::size_t>(local(s.x0, s.y0))] = 0.0;
  open.emplace(heur(s.x0, s.y0), local(s.x0, s.y0));

  const int goal = local(s.x1, s.y1);
  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    const int ux = bx0 + u % bw, uy = by0 + u / bw;
    const double g = dist[static_cast<std::size_t>(u)];
    if (f > g + heur(ux, uy) + 1e-12) continue;  // stale entry
    if (u == goal) break;
    struct Nb {
      int ix, iy, edge;
    };
    const Nb nbs[4] = {
        {ux - 1, uy, ux > bx0 ? h_id(ux - 1, uy) : -1},
        {ux + 1, uy, ux < bx1 ? h_id(ux, uy) : -1},
        {ux, uy - 1, uy > by0 ? v_id(ux, uy - 1) : -1},
        {ux, uy + 1, uy < by1 ? v_id(ux, uy) : -1},
    };
    for (const auto& nb : nbs) {
      if (nb.edge < 0) continue;
      const int vl = local(nb.ix, nb.iy);
      const double ng = g + edge_cost(nb.edge);
      if (ng < dist[static_cast<std::size_t>(vl)]) {
        dist[static_cast<std::size_t>(vl)] = ng;
        came_edge[static_cast<std::size_t>(vl)] = nb.edge;
        open.emplace(ng + heur(nb.ix, nb.iy), vl);
      }
    }
  }

  if (dist[static_cast<std::size_t>(goal)] >= kInf) return -1.0;  // unreachable (shouldn't happen)
  // Walk back from goal to start via stored edges.
  double length = 0.0;
  int cx = s.x1, cy = s.y1;
  while (!(cx == s.x0 && cy == s.y0)) {
    const int e = came_edge[static_cast<std::size_t>(local(cx, cy))];
    RP_ASSERT(e >= 0, "router backtrace broke");
    path.push_back(e);
    if (is_h(e)) {
      const int ix = e % (grid_.nx() - 1), iy = e / (grid_.nx() - 1);
      length += grid_.tile_w();
      // Edge connects (ix,iy)-(ix+1,iy); figure out which side we came from.
      cx = (cx == ix + 1 && cy == iy) ? ix : ix + 1;
      cy = iy;
    } else {
      const int r = e - h_base_;
      const int ix = r % grid_.nx(), iy = r / grid_.nx();
      length += grid_.tile_h();
      cy = (cy == iy + 1 && cx == ix) ? iy : iy + 1;
      cx = ix;
    }
  }
  return length;
}

RouteStats GlobalRouter::route(const Design& d) {
  RP_TRACE_SPAN("route");
  const GridMap& m = grid_.map();
  grid_.clear_usage();
  pres_fac_ = opt_.pres_fac_init;

  // Build segments from net MSTs (pin positions snapped to tiles).
  std::vector<Segment> segs;
  std::vector<Point> pts;
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const Net& net = d.net(n);
    if (net.degree() < 2) continue;
    pts.clear();
    for (const PinId p : net.pins) pts.push_back(d.pin_pos(p));
    for (const auto& [a, b] : net_topology(pts)) {
      Segment s;
      s.x0 = m.ix_of(pts[static_cast<std::size_t>(a)].x);
      s.y0 = m.iy_of(pts[static_cast<std::size_t>(a)].y);
      s.x1 = m.ix_of(pts[static_cast<std::size_t>(b)].x);
      s.y1 = m.iy_of(pts[static_cast<std::size_t>(b)].y);
      s.net = n;
      if (s.x0 == s.x1 && s.y0 == s.y1) continue;
      segs.push_back(s);
    }
  }

  std::vector<std::vector<int>> paths(segs.size());
  RouteStats stats;
  stats.segments = static_cast<int>(segs.size());
  RP_COUNT("route.segments", stats.segments);

  // Initial routing pass.
  for (std::size_t i = 0; i < segs.size(); ++i) {
    route_segment(segs[i], paths[i], opt_.bbox_margin);
    for (const int e : paths[i]) add_edge_usage(e, 1.0);
  }

  for (int it = 1; it <= opt_.max_iterations; ++it) {
    obs::check_interrupt();  // SIGINT/SIGTERM: unwind between rip-up rounds
    stats.iterations = it;
    RP_COUNT("route.ripup_rounds", 1);
    // Identify overflowed edges; bump history.
    std::vector<char> edge_over(history_.size(), 0);
    int over_edges = 0;
    for (std::size_t e = 0; e < history_.size(); ++e) {
      // overuse without the +1 lookahead:
      double use, cap;
      const int ei = static_cast<int>(e);
      if (is_h(ei)) {
        const int ix = ei % (grid_.nx() - 1), iy = ei / (grid_.nx() - 1);
        use = grid_.h_use(ix, iy);
        cap = grid_.h_cap(ix, iy);
      } else {
        const int r = ei - h_base_;
        const int ix = r % grid_.nx(), iy = r / grid_.nx();
        use = grid_.v_use(ix, iy);
        cap = grid_.v_cap(ix, iy);
      }
      if (use > cap + 1e-9) {
        edge_over[e] = 1;
        ++over_edges;
        history_[e] += opt_.hist_incr * (use - cap) / std::max(1.0, cap);
      }
    }
    if (over_edges == 0) break;
    if (it == opt_.max_iterations) break;  // out of budget; report as-is

    // Rip up & reroute segments using overflowed edges.
    pres_fac_ *= opt_.pres_fac_mult;
    const int margin = opt_.bbox_margin + it * opt_.bbox_grow_per_iter;
    int rerouted = 0;
    for (std::size_t i = 0; i < segs.size(); ++i) {
      bool bad = false;
      for (const int e : paths[i]) {
        if (edge_over[static_cast<std::size_t>(e)]) {
          bad = true;
          break;
        }
      }
      if (!bad) continue;
      for (const int e : paths[i]) add_edge_usage(e, -1.0);
      paths[i].clear();
      route_segment(segs[i], paths[i], margin);
      for (const int e : paths[i]) add_edge_usage(e, 1.0);
      ++rerouted;
    }
    RP_COUNT("route.segments_rerouted", rerouted);
    RP_DEBUG("router iter %d: %d overflowed edges, %d segments rerouted", it, over_edges,
             rerouted);
  }

  stats.wirelength = grid_.used_wirelength();
  stats.total_overflow = grid_.total_overflow();
  stats.max_utilization = grid_.max_utilization();
  int over_edges = 0;
  for (const double u : grid_.edge_utilizations())
    if (u > 1.0 + 1e-9) ++over_edges;
  stats.overflowed_edges = over_edges;
  // Blocked (≈zero-capacity) edges are excluded from utilization stats but
  // any usage forced through them is still overflow — hence the
  // total_overflow term, not just the edge count.
  stats.overflow_free = over_edges == 0 && stats.total_overflow <= 1e-9;
  return stats;
}

}  // namespace rp
