#pragma once
// Negotiation-based global router (PathFinder style), the in-repo stand-in
// for the contest evaluation router.
//
// Nets are decomposed into 2-pin segments along their rectilinear MST; each
// segment is routed by A* over the tile graph. Edge cost is
//
//     cost(e) = length(e) · (1 + hist(e)) · (1 + pres · overuse(e))
//
// After each iteration, history is raised on overflowed edges, the pressure
// factor grows, and only segments crossing overflowed edges are ripped up
// and rerouted — the classic negotiated-congestion loop. The router is used
// for FINAL placement evaluation (routed wirelength, overflow, ACE); the
// placement loop itself uses the cheap estimators in estimator.hpp.

#include <vector>

#include "db/design.hpp"
#include "route/routegrid.hpp"

namespace rp {

struct RouterOptions {
  // Effort defaults follow the contest evaluators: a bounded negotiation
  // budget, so genuinely over-demanded hotspots REMAIN overflowed instead of
  // being detoured into legality at unbounded wirelength cost. Raise
  // max_iterations/bbox growth for a "route at any cost" router.
  int max_iterations = 5;
  double pres_fac_init = 0.6;
  double pres_fac_mult = 1.7;
  double hist_incr = 0.35;
  int bbox_margin = 3;       ///< Tiles around a segment's bbox A* may use.
  int bbox_grow_per_iter = 2;
  double blocked_penalty = 64.0;  ///< Cost multiplier for ~zero-capacity edges.
};

struct RouteStats {
  double wirelength = 0.0;      ///< Routed WL in die units.
  double total_overflow = 0.0;  ///< Tracks over capacity, summed.
  double max_utilization = 0.0;
  int overflowed_edges = 0;
  int iterations = 0;
  int segments = 0;
  bool overflow_free = false;
};

class GlobalRouter {
 public:
  GlobalRouter(RoutingGrid& grid, RouterOptions opt = {});

  /// Route all nets of the design; leaves per-edge usage in the grid.
  RouteStats route(const Design& d);

 private:
  struct Segment {
    int x0, y0, x1, y1;
    int net;
  };
  /// Route one segment; appends traversed edge ids to path. Returns length.
  double route_segment(const Segment& s, std::vector<int>& path, int margin);

  // Edge-id encoding: h-edge (ix,iy) -> iy*(nx-1)+ix ;
  // v-edge (ix,iy) -> H + iy*nx + ix, where H = (nx-1)*ny.
  int h_id(int ix, int iy) const { return iy * (grid_.nx() - 1) + ix; }
  int v_id(int ix, int iy) const { return h_base_ + iy * grid_.nx() + ix; }
  bool is_h(int e) const { return e < h_base_; }
  double edge_cost(int e) const;
  double edge_overuse(int e) const;
  void add_edge_usage(int e, double tracks);

  RoutingGrid& grid_;
  RouterOptions opt_;
  int h_base_ = 0;
  double pres_fac_ = 0.0;
  std::vector<double> history_;
};

}  // namespace rp
