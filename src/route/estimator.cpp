#include "route/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/telemetry.hpp"

namespace rp {

std::vector<std::pair<int, int>> net_topology(const std::vector<Point>& pts) {
  const int k = static_cast<int>(pts.size());
  std::vector<std::pair<int, int>> seg;
  if (k < 2) return seg;
  if (k == 2) {
    seg.emplace_back(0, 1);
    return seg;
  }
  if (k > 128) {
    // Degenerate huge nets (clock/reset): chain pins sorted by x+y. Linear,
    // and close enough for congestion purposes.
    std::vector<int> ord(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) ord[static_cast<std::size_t>(i)] = i;
    std::sort(ord.begin(), ord.end(), [&](int a, int b) {
      const auto& pa = pts[static_cast<std::size_t>(a)];
      const auto& pb = pts[static_cast<std::size_t>(b)];
      return pa.x + pa.y < pb.x + pb.y;
    });
    for (int i = 0; i + 1 < k; ++i)
      seg.emplace_back(ord[static_cast<std::size_t>(i)], ord[static_cast<std::size_t>(i + 1)]);
    return seg;
  }
  // Prim with Manhattan distances.
  std::vector<bool> in(static_cast<std::size_t>(k), false);
  std::vector<double> dist(static_cast<std::size_t>(k),
                           std::numeric_limits<double>::infinity());
  std::vector<int> from(static_cast<std::size_t>(k), 0);
  in[0] = true;
  for (int j = 1; j < k; ++j) {
    dist[static_cast<std::size_t>(j)] = manhattan(pts[0], pts[static_cast<std::size_t>(j)]);
  }
  for (int added = 1; added < k; ++added) {
    int best = -1;
    double bd = std::numeric_limits<double>::infinity();
    for (int j = 0; j < k; ++j) {
      if (!in[static_cast<std::size_t>(j)] && dist[static_cast<std::size_t>(j)] < bd) {
        bd = dist[static_cast<std::size_t>(j)];
        best = j;
      }
    }
    in[static_cast<std::size_t>(best)] = true;
    seg.emplace_back(from[static_cast<std::size_t>(best)], best);
    for (int j = 0; j < k; ++j) {
      if (in[static_cast<std::size_t>(j)]) continue;
      const double nd = manhattan(pts[static_cast<std::size_t>(best)],
                                  pts[static_cast<std::size_t>(j)]);
      if (nd < dist[static_cast<std::size_t>(j)]) {
        dist[static_cast<std::size_t>(j)] = nd;
        from[static_cast<std::size_t>(j)] = best;
      }
    }
  }
  return seg;
}

Grid2D<double> rudy_map(const Design& d, const GridMap& grid) {
  Grid2D<double> g(grid.nx(), grid.ny(), 0.0);
  for (NetId n = 0; n < d.num_nets(); ++n) {
    if (d.net(n).degree() < 2) continue;
    Rect bb = d.net_bbox(n);
    // Degenerate (collinear) boxes still consume wiring width ~ one tile.
    bb.hx = std::max(bb.hx, bb.lx + grid.bin_w());
    bb.hy = std::max(bb.hy, bb.ly + grid.bin_h());
    const double demand = (bb.width() + bb.height()) / bb.area();
    grid.rasterize(bb, [&](int ix, int iy, double a) { g(ix, iy) += demand * a; });
  }
  return g;
}

namespace {

/// Deposit one track of demand (weight w) on the straight horizontal run of
/// tiles y=iy, x in [x0, x1) boundaries.
void add_h_run(RoutingGrid& rg, int iy, int x0, int x1, double w) {
  for (int ix = std::min(x0, x1); ix < std::max(x0, x1); ++ix) rg.add_h(ix, iy, w);
}
void add_v_run(RoutingGrid& rg, int ix, int y0, int y1, double w) {
  for (int iy = std::min(y0, y1); iy < std::max(y0, y1); ++iy) rg.add_v(ix, iy, w);
}

}  // namespace

void estimate_probabilistic(const Design& d, RoutingGrid& rg) {
  RP_COUNT("route.estimates", 1);
  RP_TRACE_SPAN("route/estimate");
  rg.clear_usage();
  const GridMap& m = rg.map();
  std::vector<Point> pts;
  for (NetId n = 0; n < d.num_nets(); ++n) {
    const Net& net = d.net(n);
    if (net.degree() < 2) continue;
    pts.clear();
    for (const PinId p : net.pins) pts.push_back(d.pin_pos(p));
    for (const auto& [a, b] : net_topology(pts)) {
      const Point pa = pts[static_cast<std::size_t>(a)];
      const Point pb = pts[static_cast<std::size_t>(b)];
      const int x0 = m.ix_of(pa.x), y0 = m.iy_of(pa.y);
      const int x1 = m.ix_of(pb.x), y1 = m.iy_of(pb.y);
      if (x0 == x1 && y0 == y1) continue;
      if (y0 == y1) {
        add_h_run(rg, y0, x0, x1, 1.0);
      } else if (x0 == x1) {
        add_v_run(rg, x0, y0, y1, 1.0);
      } else {
        // Two L-shapes, probability 0.5 each.
        add_h_run(rg, y0, x0, x1, 0.5);   // horizontal first
        add_v_run(rg, x1, y0, y1, 0.5);
        add_v_run(rg, x0, y0, y1, 0.5);   // vertical first
        add_h_run(rg, y1, x0, x1, 0.5);
      }
    }
  }
}

}  // namespace rp
