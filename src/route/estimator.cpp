#include "route/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/parallel.hpp"
#include "util/telemetry.hpp"

namespace rp {

const std::vector<std::pair<int, int>>& net_topology(const Point* pts, int k,
                                                     TopologyScratch& s) {
  s.seg.clear();
  if (k < 2) return s.seg;
  if (k == 2) {
    s.seg.emplace_back(0, 1);
    return s.seg;
  }
  const auto uk = static_cast<std::size_t>(k);
  if (k > 128) {
    // Degenerate huge nets (clock/reset): chain pins sorted by x+y. Linear,
    // and close enough for congestion purposes.
    s.ord.resize(uk);
    for (int i = 0; i < k; ++i) s.ord[static_cast<std::size_t>(i)] = i;
    std::sort(s.ord.begin(), s.ord.end(), [&](int a, int b) {
      const auto& pa = pts[static_cast<std::size_t>(a)];
      const auto& pb = pts[static_cast<std::size_t>(b)];
      return pa.x + pa.y < pb.x + pb.y;
    });
    for (int i = 0; i + 1 < k; ++i)
      s.seg.emplace_back(s.ord[static_cast<std::size_t>(i)],
                         s.ord[static_cast<std::size_t>(i + 1)]);
    return s.seg;
  }
  // Prim with Manhattan distances.
  s.in.assign(uk, false);
  s.dist.assign(uk, std::numeric_limits<double>::infinity());
  s.from.assign(uk, 0);
  s.in[0] = true;
  for (int j = 1; j < k; ++j)
    s.dist[static_cast<std::size_t>(j)] = manhattan(pts[0], pts[static_cast<std::size_t>(j)]);
  for (int added = 1; added < k; ++added) {
    int best = -1;
    double bd = std::numeric_limits<double>::infinity();
    for (int j = 0; j < k; ++j) {
      if (!s.in[static_cast<std::size_t>(j)] && s.dist[static_cast<std::size_t>(j)] < bd) {
        bd = s.dist[static_cast<std::size_t>(j)];
        best = j;
      }
    }
    s.in[static_cast<std::size_t>(best)] = true;
    s.seg.emplace_back(s.from[static_cast<std::size_t>(best)], best);
    for (int j = 0; j < k; ++j) {
      if (s.in[static_cast<std::size_t>(j)]) continue;
      const double nd = manhattan(pts[static_cast<std::size_t>(best)],
                                  pts[static_cast<std::size_t>(j)]);
      if (nd < s.dist[static_cast<std::size_t>(j)]) {
        s.dist[static_cast<std::size_t>(j)] = nd;
        s.from[static_cast<std::size_t>(j)] = best;
      }
    }
  }
  return s.seg;
}

std::vector<std::pair<int, int>> net_topology(const std::vector<Point>& pts) {
  TopologyScratch s;
  return net_topology(pts.data(), static_cast<int>(pts.size()), s);
}

Grid2D<double> rudy_map(const Design& d, const GridMap& grid) {
  Grid2D<double> g(grid.nx(), grid.ny(), 0.0);
  for (NetId n = 0; n < d.num_nets(); ++n) {
    if (d.net(n).degree() < 2) continue;
    Rect bb = d.net_bbox(n);
    // Degenerate (collinear) boxes still consume wiring width ~ one tile.
    bb.hx = std::max(bb.hx, bb.lx + grid.bin_w());
    bb.hy = std::max(bb.hy, bb.ly + grid.bin_h());
    const double demand = (bb.width() + bb.height()) / bb.area();
    grid.rasterize(bb, [&](int ix, int iy, double a) { g(ix, iy) += demand * a; });
  }
  return g;
}

namespace {

constexpr std::size_t kNetGrain = 128;  ///< Nets per chunk (min).
constexpr int kGridChunkCap = 8;        ///< Max per-chunk demand-grid pairs.
constexpr std::size_t kEdgeGrain = 4096;

/// Deposit one track of demand (weight w) on the straight horizontal run of
/// tiles y=iy, x in [x0, x1) boundaries.
void add_h_run(Grid2D<double>& h, int iy, int x0, int x1, double w) {
  for (int ix = std::min(x0, x1); ix < std::max(x0, x1); ++ix) h(ix, iy) += w;
}
void add_v_run(Grid2D<double>& v, int ix, int y0, int y1, double w) {
  for (int iy = std::min(y0, y1); iy < std::max(y0, y1); ++iy) v(ix, iy) += w;
}

/// Per-thread working set for one estimator chunk.
struct EstScratch {
  std::vector<Point> pts;
  TopologyScratch topo;
};

}  // namespace

void estimate_probabilistic(const Design& d, NetlistCsr& csr, RoutingGrid& rg) {
  RP_COUNT("route.estimates", 1);
  RP_TRACE_SPAN("route/estimate");
  rg.clear_usage();
  const GridMap& m = rg.map();
  csr.gather_coords(d);

  const auto nets = static_cast<std::size_t>(csr.num_nets);
  const parallel::ChunkPlan plan = parallel::plan_chunks(nets, kNetGrain, kGridChunkCap);
  if (plan.count == 0) return;
  RP_COUNT("parallel.route_chunks", plan.count);

  std::vector<Grid2D<double>> hpart(static_cast<std::size_t>(plan.count));
  std::vector<Grid2D<double>> vpart(static_cast<std::size_t>(plan.count));
  std::vector<EstScratch> scratch(static_cast<std::size_t>(parallel::num_threads()));

  parallel::ThreadPool::instance().run(plan, [&](int ci, int worker) {
    Grid2D<double>& hg = hpart[static_cast<std::size_t>(ci)];
    Grid2D<double>& vg = vpart[static_cast<std::size_t>(ci)];
    hg = Grid2D<double>(rg.nx() - 1, rg.ny(), 0.0);
    vg = Grid2D<double>(rg.nx(), rg.ny() - 1, 0.0);
    EstScratch& es = scratch[static_cast<std::size_t>(worker)];
    for (std::size_t n = plan.begin(ci); n < plan.end(ci); ++n) {
      const int off = csr.net_offset[n];
      const int deg = csr.net_offset[n + 1] - off;
      if (deg < 2) continue;
      es.pts.resize(static_cast<std::size_t>(deg));
      for (int i = 0; i < deg; ++i) {
        const auto pi = static_cast<std::size_t>(off + i);
        es.pts[static_cast<std::size_t>(i)] = {csr.pin_cx[pi], csr.pin_cy[pi]};
      }
      for (const auto& [a, b] : net_topology(es.pts.data(), deg, es.topo)) {
        const Point pa = es.pts[static_cast<std::size_t>(a)];
        const Point pb = es.pts[static_cast<std::size_t>(b)];
        const int x0 = m.ix_of(pa.x), y0 = m.iy_of(pa.y);
        const int x1 = m.ix_of(pb.x), y1 = m.iy_of(pb.y);
        if (x0 == x1 && y0 == y1) continue;
        if (y0 == y1) {
          add_h_run(hg, y0, x0, x1, 1.0);
        } else if (x0 == x1) {
          add_v_run(vg, x0, y0, y1, 1.0);
        } else {
          // Two L-shapes, probability 0.5 each.
          add_h_run(hg, y0, x0, x1, 0.5);  // horizontal first
          add_v_run(vg, x1, y0, y1, 0.5);
          add_v_run(vg, x0, y0, y1, 0.5);  // vertical first
          add_h_run(hg, y1, x0, x1, 0.5);
        }
      }
    }
  });

  // Reduce per-chunk demand into the grid (per edge, ascending chunk order).
  Grid2D<double>& hu = rg.h_use_grid();
  Grid2D<double>& vu = rg.v_use_grid();
  parallel::parallel_for(hu.size(), kEdgeGrain, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) {
      double s = 0.0;
      for (int ci = 0; ci < plan.count; ++ci) s += hpart[static_cast<std::size_t>(ci)].data()[i];
      hu.data()[i] = s;
    }
  });
  parallel::parallel_for(vu.size(), kEdgeGrain, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) {
      double s = 0.0;
      for (int ci = 0; ci < plan.count; ++ci) s += vpart[static_cast<std::size_t>(ci)].data()[i];
      vu.data()[i] = s;
    }
  });
}

void estimate_probabilistic(const Design& d, RoutingGrid& rg) {
  NetlistCsr csr = NetlistCsr::from_design(d);
  estimate_probabilistic(d, csr, rg);
}

}  // namespace rp
