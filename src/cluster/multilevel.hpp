#pragma once
// Multilevel clustering for the analytical global placer.
//
// Levels of PlaceProblem are built by repeated first-choice matching: each
// movable node merges with its highest-affinity neighbor. The affinity of
// two nodes sharing nets is the NTUplace-style connectivity-over-area score,
// multiplied by a HIERARCHY BONUS when both instances live deep in the same
// RTL module:
//
//   aff(u,v) = [ Σ_{e ∋ u,v} w_e / (deg_e − 1) ] / (area_u + area_v)
//              × (1 + hier_bonus · common_ancestor_depth(u, v))
//
// This is the paper's hierarchical-design lever: module-local cells cluster
// first, so the coarse placement already reflects the design hierarchy, and
// module cells land together (shorter module-internal nets, fewer module
// wires crossing congested channels).
//
// Fixed nodes, fence regions, and oversized nodes are respected: fixed nodes
// are never merged, clusters never span two different regions, and nodes
// larger than `max_cluster_area_ratio` × average never grow further.

#include <vector>

#include "model/problem.hpp"
#include "util/rng.hpp"

namespace rp {

struct ClusterOptions {
  int target_nodes = 3000;           ///< Stop coarsening at this movable count.
  double min_reduction = 0.05;       ///< Stop if a pass shrinks less than this.
  int max_levels = 8;
  int max_affinity_net_degree = 16;  ///< Ignore larger nets when scoring.
  double max_cluster_area_ratio = 24.0;  ///< × average movable area.
  double hier_bonus = 0.15;           ///< Per shared-module-level multiplier.
  bool use_hierarchy = true;         ///< The paper's "h"; ablation toggles this.
  std::uint64_t seed = 17;
};

/// One placement level. Level 0 is the original problem (node == cell id).
struct Level {
  PlaceProblem prob;
  std::vector<int> hier;    ///< HierTree node per problem node.
  std::vector<int> region;  ///< Fence region per node (-1 none).
  /// For level > 0: node id in THIS level for each node of the next finer
  /// level. Empty at level 0.
  std::vector<int> fine_to_coarse;
};

class Multilevel {
 public:
  /// Build the full level stack from a finalized design.
  Multilevel(const Design& d, const ClusterOptions& opt);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  Level& level(int l) { return levels_[static_cast<std::size_t>(l)]; }
  const Level& level(int l) const { return levels_[static_cast<std::size_t>(l)]; }
  /// Coarsest level index.
  int top() const { return num_levels() - 1; }

  /// Copy level-l cluster positions down to level l−1 nodes (declustering).
  void project_down(int l);

 private:
  const Design& design_;
  ClusterOptions opt_;
  std::vector<Level> levels_;

  /// One first-choice matching pass; returns false if reduction too small.
  bool coarsen_once(Rng& rng);
};

}  // namespace rp
