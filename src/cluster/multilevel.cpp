#include "cluster/multilevel.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/logger.hpp"
#include "util/telemetry.hpp"

namespace rp {

Multilevel::Multilevel(const Design& d, const ClusterOptions& opt)
    : design_(d), opt_(opt) {
  Level l0;
  l0.prob = make_problem(d);
  l0.hier.resize(static_cast<std::size_t>(d.num_cells()));
  l0.region.resize(static_cast<std::size_t>(d.num_cells()));
  for (CellId c = 0; c < d.num_cells(); ++c) {
    l0.hier[static_cast<std::size_t>(c)] = d.cell(c).hier;
    l0.region[static_cast<std::size_t>(c)] = d.cell(c).region;
  }
  levels_.push_back(std::move(l0));

  Rng rng(opt_.seed);
  for (int pass = 0; pass < opt_.max_levels; ++pass) {
    int movable = 0;
    for (const auto& n : levels_.back().prob.nodes)
      if (!n.fixed) ++movable;
    if (movable <= opt_.target_nodes) break;
    if (!coarsen_once(rng)) break;
    RP_COUNT("cluster.coarsen_passes", 1);
  }
  RP_INFO("multilevel: %d levels (finest %zu nodes, coarsest %zu nodes)", num_levels(),
          levels_.front().prob.nodes.size(), levels_.back().prob.nodes.size());
}

bool Multilevel::coarsen_once(Rng& rng) {
  const Level& fine = levels_.back();
  const PlaceProblem& fp = fine.prob;
  const int n = fp.num_nodes();

  // ---- adjacency with affinity weights ----
  // Connectivity weight per pair, w_e / (deg-1), accumulated over shared nets.
  std::unordered_map<std::uint64_t, double> pair_w;
  pair_w.reserve(static_cast<std::size_t>(fp.pins.size()) * 2);
  for (const PlaceNet& net : fp.nets) {
    const int deg = net.degree();
    if (deg < 2 || deg > opt_.max_affinity_net_degree) continue;
    const double w = net.weight / (deg - 1);
    for (int i = net.pin_begin; i < net.pin_end; ++i) {
      for (int j = i + 1; j < net.pin_end; ++j) {
        int a = fp.pins[static_cast<std::size_t>(i)].node;
        int b = fp.pins[static_cast<std::size_t>(j)].node;
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        pair_w[(static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint32_t>(b)] += w;
      }
    }
  }
  // Bucketize per node.
  std::vector<std::vector<std::pair<int, double>>> adj(static_cast<std::size_t>(n));
  for (const auto& [key, w] : pair_w) {
    const int a = static_cast<int>(key >> 32);
    const int b = static_cast<int>(key & 0xffffffffu);
    adj[static_cast<std::size_t>(a)].emplace_back(b, w);
    adj[static_cast<std::size_t>(b)].emplace_back(a, w);
  }

  double avg_area = 0.0;
  int movable = 0;
  for (const auto& nd : fp.nodes)
    if (!nd.fixed) {
      avg_area += nd.area();
      ++movable;
    }
  avg_area /= std::max(1, movable);
  const double max_area = opt_.max_cluster_area_ratio * avg_area;

  // ---- first-choice matching ----
  std::vector<int> match(static_cast<std::size_t>(n), -1);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    if (!fp.nodes[static_cast<std::size_t>(v)].fixed) order.push_back(v);
  rng.shuffle(order);

  int merged = 0;
  for (const int v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    const auto& nv = fp.nodes[static_cast<std::size_t>(v)];
    if (nv.area() > max_area || nv.macro) continue;
    int best = -1;
    double best_aff = 0.0;
    for (const auto& [u, w] : adj[static_cast<std::size_t>(v)]) {
      if (match[static_cast<std::size_t>(u)] != -1 || u == v) continue;
      const auto& nu = fp.nodes[static_cast<std::size_t>(u)];
      if (nu.fixed || nu.macro) continue;
      if (nu.area() + nv.area() > max_area) continue;
      if (fine.region[static_cast<std::size_t>(u)] != fine.region[static_cast<std::size_t>(v)])
        continue;
      double aff = w / (nu.area() + nv.area());
      if (opt_.use_hierarchy) {
        const int depth = design_.hierarchy().common_ancestor_depth(
            fine.hier[static_cast<std::size_t>(u)], fine.hier[static_cast<std::size_t>(v)]);
        aff *= 1.0 + opt_.hier_bonus * depth;
      }
      if (aff > best_aff) {
        best_aff = aff;
        best = u;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
      ++merged;
    }
  }
  if (merged < static_cast<int>(opt_.min_reduction * movable)) return false;

  // ---- build the coarse level ----
  Level coarse;
  std::vector<int> f2c(static_cast<std::size_t>(n), -1);
  PlaceProblem& cp = coarse.prob;
  cp.die = fp.die;
  const auto add_coarse_node = [&](int rep) {
    const int id = cp.num_nodes();
    cp.nodes.push_back(fp.nodes[static_cast<std::size_t>(rep)]);
    cp.x.push_back(fp.x[static_cast<std::size_t>(rep)]);
    cp.y.push_back(fp.y[static_cast<std::size_t>(rep)]);
    cp.inflate.push_back(fp.inflate[static_cast<std::size_t>(rep)]);
    coarse.hier.push_back(fine.hier[static_cast<std::size_t>(rep)]);
    coarse.region.push_back(fine.region[static_cast<std::size_t>(rep)]);
    return id;
  };
  for (int v = 0; v < n; ++v) {
    if (f2c[static_cast<std::size_t>(v)] != -1) continue;
    const int u = match[static_cast<std::size_t>(v)];
    if (u == -1 || fp.nodes[static_cast<std::size_t>(v)].fixed) {
      f2c[static_cast<std::size_t>(v)] = add_coarse_node(v);
      continue;
    }
    // Merge v and u into one square cluster at their area-weighted centroid.
    const auto& nv = fp.nodes[static_cast<std::size_t>(v)];
    const auto& nu = fp.nodes[static_cast<std::size_t>(u)];
    const double area = nv.area() + nu.area();
    const double av = nv.area(), au = nu.area();
    const int id = cp.num_nodes();
    PlaceNode cn;
    const double side = std::sqrt(area);
    cn.w = side;
    cn.h = side;
    cn.fixed = false;
    cn.macro = false;
    cp.nodes.push_back(cn);
    cp.x.push_back((fp.x[static_cast<std::size_t>(v)] * av + fp.x[static_cast<std::size_t>(u)] * au) /
                   area);
    cp.y.push_back((fp.y[static_cast<std::size_t>(v)] * av + fp.y[static_cast<std::size_t>(u)] * au) /
                   area);
    // Inflation carries as the area-weighted mean.
    cp.inflate.push_back((fp.inflate[static_cast<std::size_t>(v)] * av +
                          fp.inflate[static_cast<std::size_t>(u)] * au) /
                         area);
    // Cluster hierarchy = the deeper common ancestor of the two members.
    coarse.hier.push_back(av >= au ? fine.hier[static_cast<std::size_t>(v)]
                                   : fine.hier[static_cast<std::size_t>(u)]);
    coarse.region.push_back(fine.region[static_cast<std::size_t>(v)]);
    f2c[static_cast<std::size_t>(v)] = id;
    f2c[static_cast<std::size_t>(u)] = id;
  }

  // Coarse nets: collapse pins onto clusters, dedupe, drop internal nets.
  std::vector<int> seen(cp.nodes.size(), -1);
  for (std::size_t ni = 0; ni < fp.nets.size(); ++ni) {
    const PlaceNet& net = fp.nets[ni];
    PlaceNet cnet;
    cnet.weight = net.weight;
    cnet.pin_begin = static_cast<int>(cp.pins.size());
    for (int i = net.pin_begin; i < net.pin_end; ++i) {
      const PlacePin& pin = fp.pins[static_cast<std::size_t>(i)];
      const int cnode = f2c[static_cast<std::size_t>(pin.node)];
      if (seen[static_cast<std::size_t>(cnode)] == static_cast<int>(ni)) continue;
      seen[static_cast<std::size_t>(cnode)] = static_cast<int>(ni);
      // Keep pin offsets only for unmerged singleton nodes; cluster pins
      // collapse to the cluster center.
      const bool singleton = match[static_cast<std::size_t>(pin.node)] == -1;
      cp.pins.push_back(PlacePin{cnode, singleton ? pin.ox : 0.0, singleton ? pin.oy : 0.0});
    }
    cnet.pin_end = static_cast<int>(cp.pins.size());
    if (cnet.degree() < 2) {
      cp.pins.resize(static_cast<std::size_t>(cnet.pin_begin));
      continue;
    }
    cp.nets.push_back(cnet);
  }

  coarse.fine_to_coarse = std::move(f2c);
  cp.validate();
  RP_DEBUG("coarsen: %d -> %d nodes, %zu -> %zu nets", n, cp.num_nodes(), fp.nets.size(),
           cp.nets.size());
  levels_.push_back(std::move(coarse));
  return true;
}

void Multilevel::project_down(int l) {
  RP_ASSERT(l >= 1 && l < num_levels(), "project_down: bad level");
  const Level& coarse = levels_[static_cast<std::size_t>(l)];
  Level& fine = levels_[static_cast<std::size_t>(l - 1)];
  RP_ASSERT(coarse.fine_to_coarse.size() == fine.prob.nodes.size(),
            "project_down: mapping size mismatch");
  // Tiny deterministic stagger so the two members of a cluster do not start
  // exactly coincident (helps the next level's spreading break symmetry).
  for (int v = 0; v < fine.prob.num_nodes(); ++v) {
    if (fine.prob.nodes[static_cast<std::size_t>(v)].fixed) continue;
    const int c = coarse.fine_to_coarse[static_cast<std::size_t>(v)];
    const double jx = ((v * 2654435761u) % 1000) / 1000.0 - 0.5;
    const double jy = ((v * 0x9E3779B9u) % 1000) / 1000.0 - 0.5;
    fine.prob.x[static_cast<std::size_t>(v)] =
        coarse.prob.x[static_cast<std::size_t>(c)] + jx * fine.prob.nodes[static_cast<std::size_t>(v)].w * 0.25;
    fine.prob.y[static_cast<std::size_t>(v)] =
        coarse.prob.y[static_cast<std::size_t>(c)] + jy * fine.prob.nodes[static_cast<std::size_t>(v)].h * 0.25;
  }
  fine.prob.clamp_to_die();
}

}  // namespace rp
