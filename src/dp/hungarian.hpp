#pragma once
// Dense Hungarian (Kuhn–Munkres) assignment solver for the small square
// cost matrices used by independent-set matching (n ≤ ~16).

#include <vector>

namespace rp {

/// Minimum-cost perfect assignment on an n×n cost matrix (row-major).
/// Returns assignment[row] = column. O(n³).
std::vector<int> hungarian(const std::vector<double>& cost, int n);

/// Total cost of an assignment under the given matrix.
double assignment_cost(const std::vector<double>& cost, int n,
                       const std::vector<int>& assign);

}  // namespace rp
