#pragma once
// Detailed placement: legality-preserving local optimization of a legalized
// standard-cell placement.
//
// Three moves, applied in passes:
//  * GLOBAL SWAP — each cell computes its optimal region (median of its
//    nets' bounding boxes computed without the cell) and tries relocating
//    into a gap there, or swapping with an equal-width cell there, keeping
//    the move only if it lowers the cost.
//  * LOCAL REORDER — sliding window of w consecutive cells in a subrow; all
//    permutations are packed into the window span and the best is kept.
//  * INDEPENDENT-SET MATCHING — small sets of mutually disconnected,
//    equal-width cells are optimally re-assigned to their position slots by
//    a Hungarian solver (net independence makes per-cell costs separable).
//
// Cost = HPWL + congestion_weight × Σ pins-in-congested-tiles: passing a
// congestion map makes every move routability-aware (the flow's final DP
// pass does this; the baseline runs with weight 0).

#include <optional>

#include "db/design.hpp"
#include "util/grid.hpp"
#include "util/rng.hpp"

namespace rp {

struct DetailedPlaceOptions {
  int passes = 2;
  int reorder_window = 3;
  bool enable_global_swap = true;
  bool enable_reorder = true;
  bool enable_ism = true;
  int ism_set_size = 8;
  double congestion_weight = 0.0;  ///< die-units penalty per unit congestion.
  /// Evaluate move/swap candidates through the incremental delta evaluator
  /// (model/incremental.hpp): cached per-net costs for the "before" side and
  /// O(1)-per-net box updates for trials, instead of mutating the design and
  /// re-walking every pin list. Results are bitwise identical either way —
  /// the determinism gate diffs the two settings — so this is purely a
  /// speed knob (and the off switch is the cross-check's reference).
  bool incremental = true;
  std::uint64_t seed = 1;
};

struct DetailedPlaceStats {
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
  long swaps = 0;
  long relocations = 0;
  long reorders = 0;
  long ism_moves = 0;
  double improvement() const {
    return hpwl_before > 0 ? (hpwl_before - hpwl_after) / hpwl_before : 0.0;
  }
};

class DetailedPlacer {
 public:
  explicit DetailedPlacer(DetailedPlaceOptions opt = {}) : opt_(opt) {}

  /// Optionally make moves congestion-aware: map must cover the die.
  void set_congestion(GridMap map_geom, Grid2D<double> congestion);

  /// Run on a legalized design; preserves legality.
  DetailedPlaceStats run(Design& d);

 private:
  DetailedPlaceOptions opt_;
  std::optional<GridMap> cong_geom_;
  Grid2D<double> cong_;
};

}  // namespace rp
