#include "dp/detailed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "dp/hungarian.hpp"
#include "legal/subrow.hpp"
#include "model/incremental.hpp"
#include "util/assert.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/telemetry.hpp"

namespace rp {

namespace {

/// Row-structured view of a legalized placement; keeps cells sorted by x
/// within each subrow and supports the moves the optimizer makes.
class RowView {
 public:
  explicit RowView(Design& d) : d_(d), index_(build_subrows(d)) { rebuild(); }

  /// Re-derive row membership from current positions (after ISM moves).
  void rebuild() {
    rows_.assign(index_.subrows().size(), {});
    where_.clear();
    for (const CellId c : d_.movable_cells()) {
      const Cell& k = d_.cell(c);
      if (k.kind != CellKind::StdCell) continue;
      const int s = find_subrow(d_.cell_rect(c));
      if (s < 0) continue;  // cell not cleanly in a subrow; leave it alone
      rows_[static_cast<std::size_t>(s)].push_back(c);
      where_[c] = s;
    }
    for (auto& row : rows_) {
      std::sort(row.begin(), row.end(),
                [&](CellId a, CellId b) { return d_.cell(a).pos.x < d_.cell(b).pos.x; });
    }
  }

  const SubrowIndex& index() const { return index_; }
  int subrow_of(CellId c) const {
    const auto it = where_.find(c);
    return it == where_.end() ? -1 : it->second;
  }
  const std::vector<CellId>& cells_in(int s) const {
    return rows_[static_cast<std::size_t>(s)];
  }
  std::vector<CellId>& cells_in_mutable(int s) { return rows_[static_cast<std::size_t>(s)]; }

  /// Index of the first cell with pos.x >= x in subrow s.
  int lower_bound_x(int s, double x) const {
    const auto& row = rows_[static_cast<std::size_t>(s)];
    const auto it = std::lower_bound(row.begin(), row.end(), x, [&](CellId c, double xx) {
      return d_.cell(c).pos.x < xx;
    });
    return static_cast<int>(it - row.begin());
  }

  /// Gap (free x-interval) that would host a cell of width w at index i in
  /// subrow s (between cells i-1 and i). Returns empty interval if none.
  Interval gap_at(int s, int i) const {
    const Subrow& sr = index_.subrows()[static_cast<std::size_t>(s)];
    const auto& row = rows_[static_cast<std::size_t>(s)];
    const double lo = i == 0 ? sr.lx : d_.cell_rect(row[static_cast<std::size_t>(i - 1)]).hx;
    const double hi =
        i == static_cast<int>(row.size()) ? sr.hx : d_.cell(row[static_cast<std::size_t>(i)]).pos.x;
    return {lo, hi};
  }

  /// Move cell c to subrow s at x (caller checked feasibility).
  void relocate(CellId c, int s, double x) {
    const int old_s = subrow_of(c);
    RP_ASSERT(old_s >= 0, "relocate: unknown cell");
    auto& orow = rows_[static_cast<std::size_t>(old_s)];
    orow.erase(std::find(orow.begin(), orow.end(), c));
    Cell& k = d_.cell(c);
    k.pos = {x, index_.subrows()[static_cast<std::size_t>(s)].y};
    auto& nrow = rows_[static_cast<std::size_t>(s)];
    nrow.insert(nrow.begin() + lower_bound_x(s, x), c);
    where_[c] = s;
  }

  /// Swap two equal-width cells' positions (subrow membership updates too).
  void swap_cells(CellId a, CellId b) {
    const int sa = subrow_of(a), sb = subrow_of(b);
    Cell& ka = d_.cell(a);
    Cell& kb = d_.cell(b);
    std::swap(ka.pos, kb.pos);
    auto& ra = rows_[static_cast<std::size_t>(sa)];
    auto& rb = rows_[static_cast<std::size_t>(sb)];
    *std::find(ra.begin(), ra.end(), a) = b;
    *std::find(rb.begin(), rb.end(), b) = a;
    where_[a] = sb;
    where_[b] = sa;
    if (sa == sb) {
      // same row: the two replacements above put both back; re-sort locally
      auto& row = ra;
      std::sort(row.begin(), row.end(),
                [&](CellId x, CellId y) { return d_.cell(x).pos.x < d_.cell(y).pos.x; });
    }
  }

 private:
  int find_subrow(const Rect& r) const {
    const int band = index_.nearest_band(r.ly);
    if (band < 0) return -1;
    if (std::abs(index_.band_y(band) - r.ly) > 1e-6) return -1;
    const auto [first, last] = index_.band_range(band);
    for (int s = first; s < last; ++s) {
      const Subrow& sr = index_.subrows()[static_cast<std::size_t>(s)];
      if (r.lx >= sr.lx - 1e-6 && r.hx <= sr.hx + 1e-6) return s;
    }
    return -1;
  }

  Design& d_;
  SubrowIndex index_;
  std::vector<std::vector<CellId>> rows_;
  std::unordered_map<CellId, int> where_;
};

/// Incremental cost evaluation: HPWL over a net set + congestion term.
class CostEval {
 public:
  CostEval(const Design& d, double cong_weight, const std::optional<GridMap>& geom,
           const Grid2D<double>& cong)
      : d_(d), cw_(cong_weight), geom_(geom), cong_(cong) {}

  double nets_cost(std::span<const NetId> nets) const {
    double s = 0.0;
    for (const NetId n : nets) s += d_.net(n).weight * d_.net_hpwl(n);
    return s;
  }

  double cell_cong_cost(CellId c) const {
    if (cw_ == 0.0 || !geom_) return 0.0;
    const Point p = d_.cell_center(c);
    const double g = cong_(geom_->ix_of(p.x), geom_->iy_of(p.y));
    // Only congestion beyond 80% utilization is penalized; scale by the
    // cell's pin count — pins are what actually create routing demand.
    return cw_ * static_cast<double>(d_.cell(c).pins.size()) * std::max(0.0, g - 0.8);
  }

  /// Congestion cost of c trialed at lower-left `ll` without mutating the
  /// design — the center is formed by the same pos + size/2 expression as
  /// cell_cong_cost sees after a mutate-and-measure, so values match bitwise.
  double cell_cong_cost_at(CellId c, Point ll) const {
    if (cw_ == 0.0 || !geom_) return 0.0;
    const Cell& k = d_.cell(c);
    const Point p{ll.x + k.w / 2, ll.y + k.h / 2};
    const double g = cong_(geom_->ix_of(p.x), geom_->iy_of(p.y));
    return cw_ * static_cast<double>(k.pins.size()) * std::max(0.0, g - 0.8);
  }

  /// Would placing cell c's footprint at (x, y) violate fence exclusivity?
  /// Fenced cells must stay inside their fence; unfenced cells must stay out
  /// of every fence.
  bool fence_ok(CellId c, double x, double y) const {
    const Cell& k = d_.cell(c);
    const Rect r{x, y, x + k.w, y + k.h};
    if (k.region != kInvalidId) {
      for (const Rect& fr : d_.region(k.region).rects)
        if (fr.expand(1e-6).contains(r)) return true;
      return false;
    }
    for (int reg = 0; reg < d_.num_regions(); ++reg)
      for (const Rect& fr : d_.region(reg).rects)
        if (fr.overlaps(r)) return false;
    return true;
  }

 private:
  const Design& d_;
  double cw_;
  const std::optional<GridMap>& geom_;
  const Grid2D<double>& cong_;
};

/// Optimal x-interval for a cell: [median of net-box lows, median of highs],
/// with the cell's own pins removed from each net box. Same for y.
struct OptRegion {
  Interval x, y;
  bool valid = false;
};

OptRegion optimal_region(const Design& d, CellId c) {
  std::vector<double> xlo, xhi, ylo, yhi;
  for (const PinId p : d.cell(c).pins) {
    const NetId n = d.pin(p).net;
    BBox bb;
    for (const PinId q : d.net(n).pins) {
      if (d.pin(q).cell == c) continue;
      bb.add(d.pin_pos(q));
    }
    if (bb.empty()) continue;
    xlo.push_back(bb.r.lx);
    xhi.push_back(bb.r.hx);
    ylo.push_back(bb.r.ly);
    yhi.push_back(bb.r.hy);
  }
  OptRegion o;
  if (xlo.empty()) return o;
  const auto median = [](std::vector<double>& v) {
    std::nth_element(v.begin(), v.begin() + static_cast<long>(v.size() / 2), v.end());
    return v[v.size() / 2];
  };
  o.x = {median(xlo), median(xhi)};
  o.y = {median(ylo), median(yhi)};
  if (o.x.hi < o.x.lo) std::swap(o.x.lo, o.x.hi);
  if (o.y.hi < o.y.lo) std::swap(o.y.lo, o.y.hi);
  o.valid = true;
  return o;
}

}  // namespace

void DetailedPlacer::set_congestion(GridMap map_geom, Grid2D<double> congestion) {
  cong_geom_ = map_geom;
  cong_ = std::move(congestion);
}

DetailedPlaceStats DetailedPlacer::run(Design& d) {
  DetailedPlaceStats stats;
  // The evaluator's topology (per-cell sorted net lists) serves both modes;
  // its cached net boxes and costs are consulted only when opt_.incremental
  // is set. Candidate deltas are bitwise identical either way — min/max box
  // updates are exact and every sum runs in the same ascending-net order —
  // which the determinism gate enforces by diffing the two settings.
  IncrementalEval inc(d);
  const bool use_inc = opt_.incremental;
  if (use_inc && cong_geom_) inc.build_occupancy(*cong_geom_);
  stats.hpwl_before = use_inc ? inc.total_cost() : d.hpwl();
  Rng rng(opt_.seed);
  RowView rows(d);
  CostEval eval(d, opt_.congestion_weight, cong_geom_, cong_);
  std::vector<NetId> net_union;  // swap-candidate scratch, reused

  std::vector<CellId> order;
  for (const CellId c : d.movable_cells())
    if (d.cell(c).kind == CellKind::StdCell && rows.subrow_of(c) >= 0) order.push_back(c);

  for (int pass = 0; pass < opt_.passes; ++pass) {
    obs::check_interrupt();  // SIGINT/SIGTERM: unwind between DP passes
    RP_TRACE_SPAN("dp/pass" + std::to_string(pass + 1));
    RP_COUNT("dp.passes", 1);
    // ---------------- global swap / relocation ----------------
    if (opt_.enable_global_swap) {
      rng.shuffle(order);
      for (const CellId c : order) {
        const OptRegion opt_r = optimal_region(d, c);
        if (!opt_r.valid) continue;
        const Cell& k = d.cell(c);
        const Point cur = d.cell_center(c);
        // Already inside its optimal region: nothing to gain.
        if (opt_r.x.contains(cur.x) && opt_r.y.contains(cur.y)) continue;
        const double tx = opt_r.x.clamp(cur.x);
        const double ty = opt_r.y.clamp(cur.y);

        const int band = rows.index().nearest_band(ty - k.h / 2);
        if (band < 0) continue;
        double best_delta = -1e-9;  // require strict improvement
        int best_s = -1;
        double best_x = 0.0;
        CellId best_swap = kInvalidId;

        // The relocation "before" is invariant while c sits at its original
        // spot: its net list and cost are computed once per cell, not once
        // per gap candidate.
        const std::span<const NetId> nets_c = inc.cell_nets(c);
        const double before_c =
            (use_inc ? inc.nets_cost(nets_c) : eval.nets_cost(nets_c)) +
            eval.cell_cong_cost(c);

        for (int b = std::max(0, band - 1);
             b <= std::min(rows.index().num_bands() - 1, band + 1); ++b) {
          const auto [first, last] = rows.index().band_range(b);
          for (int s = first; s < last; ++s) {
            const Subrow& sr = rows.index().subrows()[static_cast<std::size_t>(s)];
            if (tx < sr.lx - 2 * k.w || tx > sr.hx + 2 * k.w) continue;
            const int at = rows.lower_bound_x(s, tx);
            // Try the gaps at insertion indices around the target.
            for (int gi = std::max(0, at - 1);
                 gi <= std::min(static_cast<int>(rows.cells_in(s).size()), at + 1); ++gi) {
              const Interval gap = rows.gap_at(s, gi);
              if (gap.length() < k.w) continue;
              const double x = std::clamp(tx - k.w / 2, gap.lo, gap.hi - k.w);
              if (!eval.fence_ok(c, x, sr.y)) continue;
              double after;
              if (use_inc) {
                after = inc.trial_move(c, {x, sr.y}) +
                        eval.cell_cong_cost_at(c, {x, sr.y});
              } else {
                const Point old_pos = d.cell(c).pos;
                d.cell(c).pos = {x, sr.y};
                after = eval.nets_cost(nets_c) + eval.cell_cong_cost(c);
                d.cell(c).pos = old_pos;
              }
              const double delta = before_c - after;
              if (delta > best_delta) {
                best_delta = delta;
                best_s = s;
                best_x = x;
                best_swap = kInvalidId;
              }
            }
            // Try swapping with equal-width cells near the target.
            for (int ci = std::max(0, at - 2);
                 ci < std::min(static_cast<int>(rows.cells_in(s).size()), at + 2); ++ci) {
              const CellId o = rows.cells_in(s)[static_cast<std::size_t>(ci)];
              if (o == c || d.cell(o).w != k.w || d.cell(o).h != k.h) continue;
              if (d.cell(o).region != k.region) continue;
              // One merge of the two sorted per-cell net lists replaces the
              // collect-sort-unique pass both sides used to repeat.
              inc.union_nets(c, o, net_union);
              const double before = (use_inc ? inc.nets_cost(net_union)
                                             : eval.nets_cost(net_union)) +
                                    eval.cell_cong_cost(c) + eval.cell_cong_cost(o);
              double after;
              if (use_inc) {
                after = inc.trial_swap(c, o, net_union) +
                        eval.cell_cong_cost_at(c, d.cell(o).pos) +
                        eval.cell_cong_cost_at(o, d.cell(c).pos);
              } else {
                std::swap(d.cell(c).pos, d.cell(o).pos);
                after = eval.nets_cost(net_union) + eval.cell_cong_cost(c) +
                        eval.cell_cong_cost(o);
                std::swap(d.cell(c).pos, d.cell(o).pos);
              }
              const double delta = before - after;
              if (delta > best_delta) {
                best_delta = delta;
                best_s = s;
                best_swap = o;
              }
            }
          }
        }
        if (best_s >= 0) {
          if (best_swap != kInvalidId) {
            const Point old_c = d.cell(c).pos;
            const Point old_o = d.cell(best_swap).pos;
            rows.swap_cells(c, best_swap);
            if (use_inc) {
              inc.refresh_cell(c);
              inc.refresh_cell(best_swap);
              inc.occupancy_move(c, old_c, d.cell(c).pos);
              inc.occupancy_move(best_swap, old_o, d.cell(best_swap).pos);
            }
            ++stats.swaps;
          } else {
            const Point old_c = d.cell(c).pos;
            rows.relocate(c, best_s, best_x);
            if (use_inc) {
              inc.refresh_cell(c);
              inc.occupancy_move(c, old_c, d.cell(c).pos);
            }
            ++stats.relocations;
          }
        }
      }
    }

    // ---------------- local reorder ----------------
    if (opt_.enable_reorder && opt_.reorder_window >= 2) {
      const int w = std::min(opt_.reorder_window, 4);
      for (int s = 0; s < static_cast<int>(rows.index().subrows().size()); ++s) {
        const auto& row = rows.cells_in(s);
        if (static_cast<int>(row.size()) < w) continue;
        for (int i = 0; i + w <= static_cast<int>(row.size()); ++i) {
          // Current window cells & their packed start.
          std::vector<CellId> win(row.begin() + i, row.begin() + i + w);
          // Windows touching fence regions are skipped: permuting them could
          // slide a fenced cell across its fence boundary.
          bool fenced = false;
          for (const CellId c : win)
            if (d.cell(c).region != kInvalidId) fenced = true;
          if (fenced) continue;
          const double x0 = d.cell(win[0]).pos.x;
          const double gap_end = rows.gap_at(s, i + w).hi;  // right slack limit
          std::vector<NetId> nets;
          for (const CellId c : win) {
            const auto cn = inc.cell_nets(c);
            nets.insert(nets.end(), cn.begin(), cn.end());
          }
          std::sort(nets.begin(), nets.end());
          nets.erase(std::unique(nets.begin(), nets.end()), nets.end());

          std::vector<Point> orig(win.size());
          for (std::size_t j = 0; j < win.size(); ++j) orig[j] = d.cell(win[j]).pos;
          const double before = use_inc ? inc.nets_cost(nets) : eval.nets_cost(nets);

          std::vector<int> perm(win.size());
          for (std::size_t j = 0; j < perm.size(); ++j) perm[j] = static_cast<int>(j);
          std::vector<int> best_perm = perm;
          double best_after = before;
          while (std::next_permutation(perm.begin(), perm.end())) {
            double x = x0;
            bool fits = true;
            for (const int j : perm) {
              Cell& k = d.cell(win[static_cast<std::size_t>(j)]);
              k.pos.x = x;
              x += k.w;
              if (x > gap_end + 1e-9) fits = false;
            }
            if (fits) {
              const double after = eval.nets_cost(nets);
              if (after < best_after - 1e-12) {
                best_after = after;
                best_perm = perm;
              }
            }
          }
          // Apply the best (or restore original).
          if (best_after < before - 1e-12) {
            double x = x0;
            bool ok = true;
            for (const int j : best_perm) {
              Cell& k = d.cell(win[static_cast<std::size_t>(j)]);
              if (!eval.fence_ok(win[static_cast<std::size_t>(j)], x, k.pos.y)) ok = false;
              k.pos.x = x;
              x += k.w;
            }
            if (!ok) {  // window straddles a fence: undo
              for (std::size_t j = 0; j < win.size(); ++j) d.cell(win[j]).pos = orig[j];
              continue;
            }
            ++stats.reorders;
            if (use_inc) {
              inc.refresh_nets(nets);
              for (std::size_t j = 0; j < win.size(); ++j)
                inc.occupancy_move(win[j], orig[j], d.cell(win[j]).pos);
            }
            // Row order may have changed; fix the slice.
            auto& mrow = rows.cells_in_mutable(s);
            std::sort(mrow.begin() + i, mrow.begin() + i + w, [&](CellId a, CellId b) {
              return d.cell(a).pos.x < d.cell(b).pos.x;
            });
          } else {
            for (std::size_t j = 0; j < win.size(); ++j) d.cell(win[j]).pos = orig[j];
          }
        }
      }
    }

    // ---------------- independent-set matching ----------------
    if (opt_.enable_ism && opt_.ism_set_size >= 3) {
      // Bucket by (width, height, region); within a bucket, walk cells in
      // row-major order and grow net-disjoint sets of nearby cells.
      std::unordered_map<long long, std::vector<CellId>> buckets;
      for (const CellId c : order) {
        const Cell& k = d.cell(c);
        const long long key =
            static_cast<long long>(k.w * 16) * 1000003LL + static_cast<long long>(k.h * 16) +
            1000000007LL * (k.region + 1);
        buckets[key].push_back(c);
      }
      for (auto& [key, cells] : buckets) {
        if (static_cast<int>(cells.size()) < 3) continue;
        std::sort(cells.begin(), cells.end(), [&](CellId a, CellId b) {
          const Cell& ka = d.cell(a);
          const Cell& kb = d.cell(b);
          return ka.pos.y != kb.pos.y ? ka.pos.y < kb.pos.y : ka.pos.x < kb.pos.x;
        });
        std::vector<CellId> set;
        std::vector<NetId> set_nets;
        const auto flush = [&]() {
          const int n = static_cast<int>(set.size());
          if (n >= 3) {
            // cost[i][j]: cell i at slot j (slots = current positions).
            std::vector<Point> slots(set.size());
            for (std::size_t i = 0; i < set.size(); ++i) slots[i] = d.cell(set[i]).pos;
            std::vector<double> cost(static_cast<std::size_t>(n) * n, 0.0);
            for (int i = 0; i < n; ++i) {
              const CellId c = set[static_cast<std::size_t>(i)];
              if (use_inc) {
                // Net-disjointness makes per-cell costs separable, so each
                // slot is a plain single-cell trial — no mutation at all.
                for (int j = 0; j < n; ++j)
                  cost[static_cast<std::size_t>(i * n + j)] =
                      inc.trial_move(c, slots[static_cast<std::size_t>(j)]) +
                      eval.cell_cong_cost_at(c, slots[static_cast<std::size_t>(j)]);
              } else {
                const Point orig = d.cell(c).pos;
                const auto nets = inc.cell_nets(c);
                for (int j = 0; j < n; ++j) {
                  d.cell(c).pos = slots[static_cast<std::size_t>(j)];
                  cost[static_cast<std::size_t>(i * n + j)] =
                      eval.nets_cost(nets) + eval.cell_cong_cost(c);
                }
                d.cell(c).pos = orig;
              }
            }
            const std::vector<int> assign = hungarian(cost, n);
            double before = 0.0;
            for (int i = 0; i < n; ++i) before += cost[static_cast<std::size_t>(i * n + i)];
            const double after = assignment_cost(cost, n, assign);
            if (after < before - 1e-12) {
              for (int i = 0; i < n; ++i) {
                if (assign[static_cast<std::size_t>(i)] != i) ++stats.ism_moves;
                d.cell(set[static_cast<std::size_t>(i)]).pos =
                    slots[static_cast<std::size_t>(assign[static_cast<std::size_t>(i)])];
              }
              if (use_inc)
                for (int i = 0; i < n; ++i)
                  if (assign[static_cast<std::size_t>(i)] != i) {
                    const CellId c = set[static_cast<std::size_t>(i)];
                    inc.refresh_cell(c);
                    inc.occupancy_move(c, slots[static_cast<std::size_t>(i)],
                                       d.cell(c).pos);
                  }
            }
          }
          set.clear();
          set_nets.clear();
        };
        for (const CellId c : cells) {
          const std::span<const NetId> cn = inc.cell_nets(c);  // already sorted
          bool clash = false;
          for (const NetId n : cn)
            if (std::binary_search(set_nets.begin(), set_nets.end(), n)) {
              clash = true;
              break;
            }
          if (clash) {
            flush();
          }
          set.push_back(c);
          set_nets.insert(set_nets.end(), cn.begin(), cn.end());
          std::sort(set_nets.begin(), set_nets.end());
          if (static_cast<int>(set.size()) >= opt_.ism_set_size) flush();
        }
        flush();
      }
      // ISM may have reordered cells within rows; rebuild the row view.
      rows.rebuild();
    }
  }

  stats.hpwl_after = use_inc ? inc.total_cost() : d.hpwl();
  if (use_inc && inc.cross_check())
    RP_ASSERT(stats.hpwl_after == d.hpwl(),
              "incremental: total cost drifted from Design::hpwl()");
  RP_COUNT("dp.swaps", stats.swaps);
  RP_COUNT("dp.relocations", stats.relocations);
  RP_COUNT("dp.reorders", stats.reorders);
  RP_COUNT("dp.ism_moves", stats.ism_moves);
  return stats;
}

}  // namespace rp
