#include "dp/hungarian.hpp"

#include <limits>

#include "util/assert.hpp"

namespace rp {

// Classic O(n³) potentials implementation (e-maxx style), 1-indexed arrays.
std::vector<int> hungarian(const std::vector<double>& cost, int n) {
  RP_ASSERT(static_cast<int>(cost.size()) == n * n, "hungarian: bad matrix size");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<int> p(static_cast<std::size_t>(n) + 1, 0);    // column -> row
  std::vector<int> way(static_cast<std::size_t>(n) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(n) + 1, 0);
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      const int i0 = p[static_cast<std::size_t>(j0)];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double cur = cost[static_cast<std::size_t>((i0 - 1) * n + (j - 1))] -
                           u[static_cast<std::size_t>(i0)] - v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0);
  }

  std::vector<int> assign(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= n; ++j)
    if (p[static_cast<std::size_t>(j)] > 0)
      assign[static_cast<std::size_t>(p[static_cast<std::size_t>(j)] - 1)] = j - 1;
  return assign;
}

double assignment_cost(const std::vector<double>& cost, int n,
                       const std::vector<int>& assign) {
  double s = 0.0;
  for (int i = 0; i < n; ++i)
    s += cost[static_cast<std::size_t>(i * n + assign[static_cast<std::size_t>(i)])];
  return s;
}

}  // namespace rp
