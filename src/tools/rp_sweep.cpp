// `rp_sweep` — campaign orchestrator for cross-run observability.
//
//   rp_sweep --spec campaign.json --out campaigns/ablation \
//            --routplace build/src/core/routplace [--jobs 4]
//
// Expands the spec's configuration × seed grid, fans runs out across child
// processes (at most --jobs concurrent), captures every run's report /
// progress stream / bench rows / flight dump into <out>/runs/<id>/, and
// writes the deterministic <out>/campaign.json manifest. Re-running a
// finished campaign directory is a no-op (resume via per-run status.json).
// All logic lives in core/sweep.{hpp,cpp} so it is unit-tested.
//
// Exit codes: 0 = every run legal ("ok"), 1 = campaign completed but at
// least one run failed or was not legal (the manifest has the details),
// 2 = usage error, 3/4/6 = spec or setup errors per the error taxonomy.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "util/error.hpp"
#include "util/str.hpp"

namespace {

const char* kUsage =
    "rp_sweep — run a routplace campaign (configuration x seed grid)\n"
    "\n"
    "usage: rp_sweep --spec <campaign.json> --out <dir> --routplace <bin>\n"
    "                [--jobs <n>] [--dry-run]\n"
    "\n"
    "  --spec <file>       campaign spec: {name, base{flag:value},\n"
    "                      axes{flag:[values]}, seeds[...]} — string/number\n"
    "                      values become '--flag value', true a bare flag,\n"
    "                      null/false omits the flag for that cell\n"
    "  --out <dir>         campaign directory: campaign.json + runs/<id>/\n"
    "  --routplace <bin>   placer binary to drive\n"
    "  --jobs <n>          max concurrent runs (default: hardware threads)\n"
    "  --dry-run           expand and print the grid; execute nothing\n"
    "\n"
    "Re-running a finished campaign directory skips completed runs\n"
    "(status.json match) and rewrites the identical manifest.\n"
    "\n"
    "exit codes: 0 all runs ok; 1 campaign completed with failed/not-legal\n"
    "runs; 2 usage; 3 spec parse error; 4 spec validation error; 6 setup\n"
    "resource error\n";

struct Args {
  rp::SweepOptions opt;
  bool help = false;
};

Args parse_args(const std::vector<std::string>& args) {
  Args a;
  const auto need_value = [&](std::size_t i, const std::string& opt) {
    if (i + 1 >= args.size())
      throw std::runtime_error("option '" + opt + "' needs a value");
    return args[i + 1];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& s = args[i];
    if (s == "--spec") a.opt.spec_path = need_value(i++, s);
    else if (s == "--out") a.opt.out_dir = need_value(i++, s);
    else if (s == "--routplace") a.opt.routplace = need_value(i++, s);
    else if (s == "--jobs")
      a.opt.jobs = static_cast<int>(rp::to_long(need_value(i++, s)));
    else if (s == "--dry-run") a.opt.dry_run = true;
    else if (s == "--help" || s == "-h") a.help = true;
    else throw std::runtime_error("unknown option '" + s + "' (see --help)");
  }
  if (a.help) return a;
  if (a.opt.spec_path.empty()) throw std::runtime_error("--spec is required");
  if (a.opt.routplace.empty() && !a.opt.dry_run)
    throw std::runtime_error("--routplace is required");
  if (a.opt.out_dir.empty() && !a.opt.dry_run)
    throw std::runtime_error("--out is required");
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse_args({argv + 1, argv + argc});
    if (a.help) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const rp::SweepOutcome out = rp::run_campaign(a.opt);
    if (a.opt.dry_run) {
      std::printf("campaign '%s': %zu run(s)\n", out.name.c_str(),
                  out.results.size());
      for (const rp::SweepRunResult& r : out.results) {
        std::printf("  %-40s", r.run.id.c_str());
        for (const std::string& arg : r.run.args) std::printf(" %s", arg.c_str());
        std::printf("\n");
      }
      return 0;
    }
    std::printf("\ncampaign '%s': %zu run(s) — %d ok, %d failed "
                "(%d executed, %d resumed)\n",
                out.name.c_str(), out.results.size(), out.ok, out.failed,
                out.executed, out.skipped);
    for (const rp::SweepRunResult& r : out.results) {
      std::printf("  %-40s %-16s exit %d%s\n", r.run.id.c_str(),
                  r.status.c_str(), r.exit_code,
                  r.skipped ? "  (resumed)" : "");
      if (r.has_error)
        std::printf("      %s: %s [%s]\n", r.error_code.c_str(),
                    r.error_message.c_str(), r.error_where.c_str());
    }
    std::printf("manifest: %s/campaign.json\n", a.opt.out_dir.c_str());
    return out.failed == 0 ? 0 : 1;
  } catch (const rp::Error& e) {
    std::fprintf(stderr, "rp_sweep: %s\n", e.what());
    return e.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rp_sweep: %s\n", e.what());
    return 2;
  }
}
