// The `routplace` command-line placer.
//
//   routplace --aux design.aux --out design.pl          # place a benchmark
//   routplace --gen 5000 --map                          # synthetic demo
//   routplace --help
//
// All logic lives in core/cli.{hpp,cpp} so it is unit-tested. The only job
// left here (besides exit-code mapping) is installing the process signal
// handlers before the flow starts: SIGINT/SIGTERM request a cooperative
// interrupt (the flow unwinds at the next safe point, writes a partial run
// report with an "error" block, flushes the flight recorder, exits 7), and
// fatal signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) dump the flight recorder
// through the async-signal-safe writer before re-raising.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "util/error.hpp"
#include "util/obs_context.hpp"

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args(argv + 1, argv + argc);
    const rp::CliConfig cfg = rp::parse_cli_args(args);
    rp::obs::CrashHandlerOptions ch;
    ch.flight_path = cfg.flight_json;
    rp::obs::install_crash_handlers(ch);
    return rp::run_cli(cfg);
  } catch (const rp::Error& e) {
    // Classified failure: exit code follows the documented contract
    // (3 parse, 4 validation, 5 numeric, 6 resource, 7 interrupted — see
    // util/error.hpp).
    std::fprintf(stderr, "routplace: %s\n", e.what());
    return e.exit_code();
  } catch (const std::exception& e) {
    // Unclassified (e.g. bad command line): usage error.
    std::fprintf(stderr, "routplace: %s\n", e.what());
    return 2;
  }
}
