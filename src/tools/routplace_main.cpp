// The `routplace` command-line placer.
//
//   routplace --aux design.aux --out design.pl          # place a benchmark
//   routplace --gen 5000 --map                          # synthetic demo
//   routplace --help
//
// All logic lives in core/cli.{hpp,cpp} so it is unit-tested.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args(argv + 1, argv + argc);
    return rp::run_cli(rp::parse_cli_args(args));
  } catch (const rp::Error& e) {
    // Classified failure: exit code follows the documented contract
    // (3 parse, 4 validation, 5 numeric, 6 resource — see util/error.hpp).
    std::fprintf(stderr, "routplace: %s\n", e.what());
    return e.exit_code();
  } catch (const std::exception& e) {
    // Unclassified (e.g. bad command line): usage error.
    std::fprintf(stderr, "routplace: %s\n", e.what());
    return 2;
  }
}
