// rp_report_diff — compare two routplace run reports (and optionally two
// snapshot directories) for CI regression gating.
//
//   rp_report_diff a.report.json b.report.json
//       [--snapshots dirA dirB] [--rel-tol f] [--abs-tol f]
//       [--ignore substr]... [--no-default-ignores] [--max-lines n]
//
// Exit codes: 0 = within tolerance, 1 = differences found, 2 = usage or
// I/O/parse error. Volatile keys (stage times, RSS, build stamp, snapshot
// paths) are ignored unless --no-default-ignores is given, so identical
// placements from different machines/builds diff clean.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/report_diff.hpp"
#include "util/str.hpp"

namespace {

const char* kUsage =
    "usage: rp_report_diff <a.report.json> <b.report.json> [options]\n"
    "\n"
    "options:\n"
    "  --snapshots <dirA> <dirB>  also diff two snapshot directories\n"
    "  --rel-tol <f>              relative tolerance per value (default 0)\n"
    "  --abs-tol <f>              absolute tolerance per value (default 0)\n"
    "  --ignore <substr>          skip paths containing <substr> (repeatable)\n"
    "  --no-default-ignores       compare volatile keys (times, rss, build) too\n"
    "  --max-lines <n>            cap printed differences (default 200)\n"
    "\n"
    "exit: 0 identical within tolerance, 1 differences, 2 error\n";

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string report_a, report_b, snap_a, snap_b;
  rp::ReportDiffOptions opt;
  std::size_t max_lines = 200;

  try {
    const auto need = [&](std::size_t i, const std::string& o) {
      if (i + 1 >= args.size())
        throw std::runtime_error("option '" + o + "' needs a value");
      return args[i + 1];
    };
    std::vector<std::string> positional;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--snapshots") {
        snap_a = need(i++, a);
        snap_b = need(i++, "--snapshots");
      } else if (a == "--rel-tol") {
        opt.rel_tol = rp::to_double(need(i++, a));
      } else if (a == "--abs-tol") {
        opt.abs_tol = rp::to_double(need(i++, a));
      } else if (a == "--ignore") {
        opt.ignore.push_back(need(i++, a));
      } else if (a == "--no-default-ignores") {
        opt.default_ignores = false;
      } else if (a == "--max-lines") {
        max_lines = static_cast<std::size_t>(rp::to_long(need(i++, a)));
      } else if (a == "--help" || a == "-h") {
        std::fputs(kUsage, stdout);
        return 0;
      } else if (!a.empty() && a[0] == '-') {
        throw std::runtime_error("unknown option '" + a + "'");
      } else {
        positional.push_back(a);
      }
    }
    if (positional.size() != 2)
      throw std::runtime_error("expected exactly two report files");
    report_a = positional[0];
    report_b = positional[1];
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rp_report_diff: %s\n\n%s", e.what(), kUsage);
    return 2;
  }

  const rp::ReportDiffResult rep = rp::diff_report_files(report_a, report_b, opt);
  std::printf("report diff (%s vs %s):\n  %s", report_a.c_str(), report_b.c_str(),
              rep.format(max_lines).c_str());
  if (rep.error) return 2;

  bool snap_clean = true;
  if (!snap_a.empty()) {
    const rp::ReportDiffResult snp = rp::diff_snapshot_dirs(snap_a, snap_b, opt);
    std::printf("snapshot diff (%s vs %s):\n  %s", snap_a.c_str(), snap_b.c_str(),
                snp.format(max_lines).c_str());
    if (snp.error) return 2;
    snap_clean = snp.clean();
  }
  return rep.clean() && snap_clean ? 0 : 1;
}
