// Deterministic fuzz harness for the Bookshelf reader.
//
// Contract under test: for ANY input bytes, read_bookshelf() either returns a
// finalized Design or throws a structured rp::Error — it must never crash,
// hang, or silently misparse. The harness generates pristine benchmark suites
// with the synthetic generator, applies seed-driven byte/token/line mutations,
// and parses each mutant in both strict and lenient mode. Any escape of a
// non-rp::Error exception is a bug; crashes/hangs surface as a process abort
// (run under -DRP_SANITIZE=address,undefined to catch memory errors) or the
// ctest timeout.
//
//   rp_fuzz_bookshelf --seeds 500 --seed-base 1 --dir fuzz_ws [--verbose]
//
// Byte-deterministic: iteration i uses Rng(seed_base + i), so a failing seed
// reproduces exactly with --seeds 1 --seed-base <seed>.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <typeinfo>
#include <vector>

#include "db/bookshelf.hpp"
#include "gen/generator.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

namespace fs = std::filesystem;

namespace {

struct Suite {
  std::string aux;                           // aux filename (relative).
  std::map<std::string, std::string> files;  // filename -> pristine bytes.
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Suite make_suite(const rp::BenchmarkSpec& spec, const fs::path& dir,
                 const std::string& base) {
  const rp::Design d = rp::generate_benchmark(spec);
  rp::write_bookshelf(d, dir, base);
  Suite s;
  s.aux = base + ".aux";
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(base + ".", 0) == 0) s.files[name] = slurp(entry.path());
  }
  return s;
}

// Tokens that historically break naive parsers: non-finite numbers, huge
// counts, negatives, keywords in the wrong place, empty fields.
const char* const kDictionary[] = {
    "nan",  "NaN",      "inf",       "-inf",  "1e309", "-1", "0",
    ":",    "terminal", "NetDegree", "o9999", "",      "18446744073709551616",
    "0x1p+2000", "NumNodes"};

void mutate(rp::Rng& rng, std::string& bytes) {
  switch (rng.below(7)) {
    case 0: {  // flip a byte
      if (bytes.empty()) return;
      bytes[rng.below(bytes.size())] ^= static_cast<char>(1 + rng.below(255));
      return;
    }
    case 1: {  // insert a byte
      const char c = static_cast<char>(rng.below(256));
      bytes.insert(bytes.begin() + static_cast<long>(rng.below(bytes.size() + 1)), c);
      return;
    }
    case 2: {  // delete a byte
      if (bytes.empty()) return;
      bytes.erase(bytes.begin() + static_cast<long>(rng.below(bytes.size())));
      return;
    }
    case 3: {  // truncate
      bytes.resize(rng.below(bytes.size() + 1));
      return;
    }
    case 4: {  // replace a whitespace-delimited token with a dictionary pick
      std::vector<std::pair<std::size_t, std::size_t>> tokens;  // offset, len
      std::size_t i = 0;
      while (i < bytes.size()) {
        while (i < bytes.size() && std::isspace(static_cast<unsigned char>(bytes[i]))) ++i;
        const std::size_t start = i;
        while (i < bytes.size() && !std::isspace(static_cast<unsigned char>(bytes[i]))) ++i;
        if (i > start) tokens.emplace_back(start, i - start);
      }
      if (tokens.empty()) return;
      const auto [off, len] = tokens[rng.below(tokens.size())];
      const char* repl =
          kDictionary[rng.below(sizeof(kDictionary) / sizeof(kDictionary[0]))];
      bytes.replace(off, len, repl);
      return;
    }
    case 5: {  // duplicate a line
      std::vector<std::pair<std::size_t, std::size_t>> lines;
      std::size_t start = 0;
      for (std::size_t i = 0; i <= bytes.size(); ++i) {
        if (i == bytes.size() || bytes[i] == '\n') {
          lines.emplace_back(start, i - start);
          start = i + 1;
        }
      }
      const auto [off, len] = lines[rng.below(lines.size())];
      const std::string line = bytes.substr(off, len);
      bytes.insert(off, line + "\n");
      return;
    }
    default: {  // delete a line
      std::vector<std::pair<std::size_t, std::size_t>> lines;
      std::size_t start = 0;
      for (std::size_t i = 0; i <= bytes.size(); ++i) {
        if (i == bytes.size() || bytes[i] == '\n') {
          lines.emplace_back(start, i + 1 - start);
          start = i + 1;
        }
      }
      const auto [off, len] = lines[rng.below(lines.size())];
      bytes.erase(off, std::min(len, bytes.size() - off));
      return;
    }
  }
}

int usage(int rc) {
  std::fprintf(
      rc == 0 ? stdout : stderr,
      "rp_fuzz_bookshelf — deterministic Bookshelf parser fuzzer\n"
      "  --seeds <n>       mutations to run (default 500)\n"
      "  --seed-base <s>   first seed; iteration i uses seed s+i (default 1)\n"
      "  --dir <d>         scratch directory (default fuzz_bookshelf_ws)\n"
      "  --verbose         log every rejected mutant\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  long seeds = 500;
  std::uint64_t seed_base = 1;
  std::string dir = "fuzz_bookshelf_ws";
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto need = [&](const char* opt) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rp_fuzz_bookshelf: %s needs a value\n", opt);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--seeds") seeds = rp::to_long(need("--seeds"));
    else if (a == "--seed-base")
      seed_base = static_cast<std::uint64_t>(rp::to_long(need("--seed-base")));
    else if (a == "--dir") dir = need("--dir");
    else if (a == "--verbose") verbose = true;
    else if (a == "--help" || a == "-h") return usage(0);
    else {
      std::fprintf(stderr, "rp_fuzz_bookshelf: unknown option '%s'\n", a.c_str());
      return usage(2);
    }
  }
  rp::Logger::set_level(verbose ? rp::LogLevel::Info : rp::LogLevel::Silent);

  const fs::path corpus = fs::path(dir) / "corpus";
  const fs::path work = fs::path(dir) / "work";
  fs::create_directories(corpus);
  fs::create_directories(work);

  // Pristine suites: one hierarchical, one flat (different record mixes).
  std::vector<Suite> suites;
  {
    rp::BenchmarkSpec hier = rp::tiny_spec(7);
    hier.name = "fz_hier";
    suites.push_back(make_suite(hier, corpus, "fz_hier"));
    rp::BenchmarkSpec flat = rp::tiny_spec(3);
    flat.flat = true;
    flat.num_macros = 4;
    flat.name = "fz_flat";
    suites.push_back(make_suite(flat, corpus, "fz_flat"));
  }

  // Sanity: every pristine suite must parse strictly with zero repairs.
  for (const Suite& s : suites) {
    try {
      rp::read_bookshelf(corpus / s.aux);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FUZZ SETUP BUG: pristine suite '%s' rejected: %s\n",
                   s.aux.c_str(), e.what());
      return 1;
    }
  }

  long bugs = 0, accepted = 0, rejected = 0;
  for (long it = 0; it < seeds; ++it) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(it);
    rp::Rng rng(seed);
    const Suite& s = suites[rng.below(suites.size())];

    // Mutate 1-4 spots across the suite's files (the .aux included).
    std::map<std::string, std::string> mutated = s.files;
    std::vector<std::string> names;
    names.reserve(mutated.size());
    for (const auto& [name, bytes] : mutated) names.push_back(name);
    const long n_mut = 1 + static_cast<long>(rng.below(4));
    for (long m = 0; m < n_mut; ++m)
      mutate(rng, mutated[names[rng.below(names.size())]]);
    for (const auto& [name, bytes] : mutated) spit(work / name, bytes);

    for (const rp::ParseMode mode : {rp::ParseMode::Strict, rp::ParseMode::Lenient}) {
      rp::BookshelfOptions opt;
      rp::ParseRepairs rep;
      opt.mode = mode;
      opt.repairs = &rep;
      const char* mode_name = mode == rp::ParseMode::Strict ? "strict" : "lenient";
      try {
        rp::Design d = rp::read_bookshelf(work / s.aux, opt);
        (void)d;
        ++accepted;
      } catch (const rp::Error& e) {
        ++rejected;  // structured rejection: the contract holds
        if (verbose)
          std::fprintf(stderr, "  seed %llu %s: %s\n",
                       static_cast<unsigned long long>(seed), mode_name, e.what());
      } catch (const std::exception& e) {
        ++bugs;
        std::fprintf(stderr,
                     "FUZZ BUG seed %llu (%s, %s): unstructured %s escaped: %s\n",
                     static_cast<unsigned long long>(seed), s.aux.c_str(),
                     mode_name, typeid(e).name(), e.what());
      }
    }
  }

  std::printf(
      "rp_fuzz_bookshelf: %ld seed(s) x 2 modes — %ld accepted, %ld rejected "
      "(structured ParseError), %ld bug(s)\n",
      seeds, accepted, rejected, bugs);
  return bugs > 0 ? 1 : 0;
}
