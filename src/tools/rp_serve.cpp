// `rp_serve` — the resident placement daemon.
//
//   rp_serve --socket /tmp/rp.sock --dir serve_work --jobs 4
//
// then, from any client that can speak newline-delimited JSON over a unix
// socket (python's socket module, socat, ...):
//
//   {"op":"run","job":{"gen":2000,"seed":7,"rounds":2,"progress":true}}
//
// All daemon logic lives in core/serve.{hpp,cpp} so it is unit-tested;
// this file is flag parsing plus the same signal posture as routplace:
// SIGINT/SIGTERM request a cooperative interrupt — in-flight jobs unwind
// through the Interrupted contract (exit 7, partial reports), the server
// drains and exits cleanly.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/serve.hpp"
#include "util/error.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/parallel.hpp"
#include "util/str.hpp"

namespace {

const char* kUsage =
    "rp_serve — resident placement-as-a-service daemon\n"
    "\n"
    "usage: rp_serve --socket <path> [options]\n"
    "\n"
    "  --socket <path>   unix-domain socket to listen on (required)\n"
    "  --dir <dir>       work directory; job artifacts land in <dir>/jobs/<id>/\n"
    "                    (default rp_serve_work)\n"
    "  --jobs <n>        max concurrently RUNNING jobs (default 2)\n"
    "  --queue <n>       max WAITING jobs; beyond -> structured reject\n"
    "                    (default 8)\n"
    "  --threads <n>     worker-thread pool size, shared by all jobs; also the\n"
    "                    total per-job scheduling budget (0 = auto: RP_THREADS\n"
    "                    env, else hardware). Results never depend on it\n"
    "  --cache <n>       design-cache capacity in entries; repeat inputs skip\n"
    "                    parse+flatten (0 = off, default 8)\n"
    "  --verbose         debug logging\n"
    "  --help            this text\n"
    "\n"
    "protocol: one JSON object per line; see README 'Running the server'.\n";

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args(argv + 1, argv + argc);
    rp::ServeOptions opt;
    int threads = 0;
    bool verbose = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      const auto need_value = [&](const std::string& name) {
        if (i + 1 >= args.size())
          throw std::runtime_error("option '" + name + "' needs a value");
        return args[++i];
      };
      if (a == "--socket") opt.socket_path = need_value(a);
      else if (a == "--dir") opt.work_dir = need_value(a);
      else if (a == "--jobs") opt.max_jobs = static_cast<int>(rp::to_long(need_value(a)));
      else if (a == "--queue") opt.queue_cap = static_cast<int>(rp::to_long(need_value(a)));
      else if (a == "--threads") threads = static_cast<int>(rp::to_long(need_value(a)));
      else if (a == "--cache") opt.cache_capacity = static_cast<int>(rp::to_long(need_value(a)));
      else if (a == "--verbose") verbose = true;
      else if (a == "--help" || a == "-h") {
        std::fputs(kUsage, stdout);
        return 0;
      } else {
        throw std::runtime_error("unknown option '" + a + "' (see --help)");
      }
    }
    if (opt.socket_path.empty())
      throw std::runtime_error("--socket is required (see --help)");
    if (opt.max_jobs < 1) throw std::runtime_error("--jobs must be >= 1");
    if (opt.queue_cap < 1) throw std::runtime_error("--queue must be >= 1");
    if (opt.cache_capacity < 0) throw std::runtime_error("--cache must be >= 0");

    rp::Logger::set_level(verbose ? rp::LogLevel::Debug : rp::LogLevel::Info);
    rp::parallel::set_num_threads(rp::parallel::resolve_threads(threads));
    rp::obs::install_crash_handlers(rp::obs::CrashHandlerOptions{});

    rp::PlacementServer server(opt);
    server.start();
    server.serve();
    return rp::obs::interrupt_requested() ? 7 : 0;
  } catch (const rp::Error& e) {
    std::fprintf(stderr, "rp_serve: %s\n", e.what());
    return e.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rp_serve: %s\n", e.what());
    return 2;
  }
}
