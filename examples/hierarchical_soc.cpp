// Hierarchical SoC study: the paper's "h" in action.
//
// Generates an SoC-like design with a deep module hierarchy and runs the
// routability-driven flow twice — once with hierarchy-aware clustering
// (common-ancestor affinity bonus) and once with it disabled — then reports
// how well each placement keeps modules physically together (module
// bounding-box spread) along with the usual quality metrics.
//
//   $ ./examples/hierarchical_soc [num_std_cells]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "core/flow.hpp"
#include "gen/generator.hpp"
#include "util/logger.hpp"

namespace {

/// Cell-weighted RMS distance of each module's cells from the module
/// centroid, normalized by the die half-diagonal (lower = modules are
/// tighter clumps). Robust to single-cell outliers, unlike a bbox metric.
double module_spread(const rp::Design& d) {
  using namespace rp;
  struct Acc {
    double sx = 0, sy = 0;
    int n = 0;
  };
  std::unordered_map<int, Acc> acc;
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    if (k.kind != CellKind::StdCell) continue;
    Acc& a = acc[k.hier];
    const Point p = d.cell_center(c);
    a.sx += p.x;
    a.sy += p.y;
    a.n += 1;
  }
  double sum_sq = 0;
  long total = 0;
  for (CellId c = 0; c < d.num_cells(); ++c) {
    const Cell& k = d.cell(c);
    if (k.kind != CellKind::StdCell || k.hier == d.hierarchy().root()) continue;
    const Acc& a = acc[k.hier];
    if (a.n < 2) continue;
    const Point p = d.cell_center(c);
    sum_sq += dist2(p, {a.sx / a.n, a.sy / a.n});
    ++total;
  }
  const double die_half_diag =
      0.5 * std::sqrt(d.die().width() * d.die().width() +
                      d.die().height() * d.die().height());
  return total > 0 ? std::sqrt(sum_sq / total) / die_half_diag : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rp;
  Logger::set_level(LogLevel::Warn);

  BenchmarkSpec spec = medium_spec(101);
  spec.name = "soc";
  spec.hier_fanout = 4;
  spec.leaf_module_cells = 250;
  spec.net_locality = 0.85;
  if (argc > 1) spec.num_std_cells = std::atoi(argv[1]);

  {
    const Design d = generate_benchmark(spec);
    std::printf("SoC-like benchmark: %d cells, hierarchy depth %d, %d modules\n\n",
                d.num_cells(), d.hierarchy().max_depth(), d.hierarchy().num_nodes());
  }

  std::printf("%-28s %12s %10s %10s %12s %9s\n", "clustering", "HPWL", "RC",
              "overflow", "mod spread", "GP time");
  for (const bool use_hier : {true, false}) {
    Design d = generate_benchmark(spec);
    FlowOptions opt = routability_driven_options();
    opt.gp.cluster.use_hierarchy = use_hier;
    PlacementFlow flow(opt);
    const FlowResult r = flow.run(d);
    std::printf("%-28s %12.4e %10.1f %10.0f %12.4f %8.1fs\n",
                use_hier ? "hierarchy-aware (paper)" : "connectivity only",
                r.eval.hpwl, r.eval.congestion.rc, r.eval.congestion.total_overflow,
                module_spread(d), r.times.get("global"));
  }
  std::printf("\n('mod spread' = RMS cell distance from module centroid / die"
              " half-diagonal; lower keeps RTL modules together)\n");
  return 0;
}
