// Congestion study: run the wirelength-driven baseline and the
// routability-driven flow on the same benchmark and compare the contest
// metrics side by side — the paper's headline experiment in miniature.
// Also prints ASCII congestion heat maps of both results.
//
//   $ ./examples/congestion_study [num_std_cells] [seed] [track_supply]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/flow.hpp"
#include "gen/generator.hpp"
#include "util/logger.hpp"

int main(int argc, char** argv) {
  using namespace rp;
  Logger::set_level(LogLevel::Warn);

  BenchmarkSpec spec = small_spec(11);
  if (argc > 2 && std::string(argv[1]) == "suite") {
    // "suite <index> [track_supply]": run on a paper-suite entry.
    spec = paper_suite()[static_cast<std::size_t>(std::atoi(argv[2]))];
    if (argc > 3) spec.track_supply = std::atof(argv[3]);
  } else {
    if (argc > 1) spec.num_std_cells = std::atoi(argv[1]);
    if (argc > 2) spec.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
    if (argc > 3) spec.track_supply = std::atof(argv[3]);
  }

  std::printf("benchmark: %d std cells, %d macros, seed %llu\n\n", spec.num_std_cells,
              spec.num_macros, static_cast<unsigned long long>(spec.seed));

  struct Run {
    const char* name;
    FlowOptions opt;
    FlowResult res;
    std::string map;
  };
  Run runs[2] = {{"WL-driven (baseline)", wirelength_driven_options(), {}, {}},
                 {"Routability-driven", routability_driven_options(), {}, {}}};

  for (Run& r : runs) {
    Design d = generate_benchmark(spec);  // identical instance per flow
    PlacementFlow flow(r.opt);
    r.res = flow.run(d);
    r.map = congestion_ascii(d, 48);
  }

  std::printf("%-24s %12s %12s %8s %8s %10s %8s\n", "flow", "HPWL", "scaledHPWL", "RC",
              "peak", "overflow", "time(s)");
  for (const Run& r : runs) {
    std::printf("%-24s %12.4e %12.4e %8.1f %8.2f %10.0f %8.1f\n", r.name, r.res.eval.hpwl,
                r.res.eval.scaled_hpwl, r.res.eval.congestion.rc,
                r.res.eval.congestion.peak_utilization,
                r.res.eval.congestion.total_overflow, r.res.times.total());
  }

  const double oi = runs[0].res.eval.congestion.total_overflow;
  const double oo = runs[1].res.eval.congestion.total_overflow;
  if (oi > 0)
    std::printf("\noverflow reduction: %.1f%%  (HPWL cost: %+.2f%%)\n",
                100.0 * (oi - oo) / oi,
                100.0 * (runs[1].res.eval.hpwl - runs[0].res.eval.hpwl) /
                    runs[0].res.eval.hpwl);

  for (const Run& r : runs) {
    std::printf("\n--- congestion map: %s ('#'>105%%, '+'>95%%, ':'>80%%, 'M' macro) ---\n%s",
                r.name, r.map.c_str());
  }
  return 0;
}
