// Quickstart: generate a small hierarchical mixed-size benchmark, run the
// routability-driven placement flow, and print the score card.
//
//   $ ./examples/quickstart [num_std_cells]
//
// This is the 60-second tour of the public API: benchmark generation (or
// read_bookshelf for real designs), PlacementFlow, and the evaluation bundle.

#include <cstdio>
#include <cstdlib>

#include "core/flow.hpp"
#include "gen/generator.hpp"

int main(int argc, char** argv) {
  using namespace rp;

  BenchmarkSpec spec = small_spec(/*seed=*/11);
  if (argc > 1) spec.num_std_cells = std::atoi(argv[1]);

  std::printf("== generating benchmark '%s' (%d std cells, %d macros) ==\n",
              spec.name.c_str(), spec.num_std_cells, spec.num_macros);
  Design d = generate_benchmark(spec);

  std::printf("== running routability-driven placement ==\n");
  PlacementFlow flow(routability_driven_options());
  const FlowResult r = flow.run(d);

  std::printf("\n== results ==\n");
  std::printf("HPWL            : %.4e\n", r.eval.hpwl);
  std::printf("scaled HPWL     : %.4e (RC-penalized contest objective)\n",
              r.eval.scaled_hpwl);
  std::printf("routed WL       : %.4e\n", r.eval.route.wirelength);
  std::printf("RC              : %.1f  (ACE 0.5/1/2/5%% = %.1f/%.1f/%.1f/%.1f)\n",
              r.eval.congestion.rc, r.eval.congestion.ace_005, r.eval.congestion.ace_1,
              r.eval.congestion.ace_2, r.eval.congestion.ace_5);
  std::printf("routing overflow: %.0f tracks over %d edges (peak util %.2f)\n",
              r.eval.congestion.total_overflow, r.eval.congestion.overflowed_edges,
              r.eval.congestion.peak_utilization);
  std::printf("legal           : %s\n", r.eval.legality.ok() ? "yes" : "NO");
  std::printf("runtime         : %s\n", r.times.report().c_str());
  return r.eval.legality.ok() ? 0 : 1;
}
