// Bookshelf interop: generate a benchmark, export it in the ISPD Bookshelf
// format, read it back, place it, and write the placement (.pl) — exactly
// the file exchange a user does to run this placer on the real contest
// benchmarks (drop an .aux from ISPD-2011/DAC-2012 at the same spot).
//
//   $ ./examples/bookshelf_roundtrip [output_dir]

#include <cstdio>
#include <filesystem>

#include "core/flow.hpp"
#include "db/bookshelf.hpp"
#include "gen/generator.hpp"
#include "util/logger.hpp"

int main(int argc, char** argv) {
  using namespace rp;
  namespace fs = std::filesystem;
  Logger::set_level(LogLevel::Info);

  const fs::path dir = argc > 1 ? argv[1] : (fs::temp_directory_path() / "rp_bookshelf");

  // 1. Export a generated benchmark as a Bookshelf directory.
  {
    const Design d = generate_benchmark(small_spec(7));
    write_bookshelf(d, dir, "demo");
    std::printf("wrote %s/demo.{aux,nodes,nets,wts,pl,scl,route}\n", dir.c_str());
  }

  // 2. Read it back — the same entry point works for contest benchmarks.
  Design d = read_bookshelf(dir / "demo.aux");

  // 3. Place and score.
  PlacementFlow flow(routability_driven_options());
  const FlowResult r = flow.run(d);

  // 4. Write the final placement.
  write_pl(d, dir / "demo.solution.pl");
  std::printf("\nplaced: HPWL %.4e, scaled %.4e, RC %.1f, legal=%s\n", r.eval.hpwl,
              r.eval.scaled_hpwl, r.eval.congestion.rc,
              r.eval.legality.ok() ? "yes" : "NO");
  std::printf("solution written to %s\n", (dir / "demo.solution.pl").c_str());
  return r.eval.legality.ok() ? 0 : 1;
}
