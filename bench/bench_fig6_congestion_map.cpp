// Figure 6 — congestion maps before/after routability optimization.
//
// ASCII heat maps of routed edge congestion for the baseline and the
// routability-driven flow on the medium hierarchical benchmark, plus the
// hotspot histogram (edges per utilization bucket) behind the picture.

#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "route/router.hpp"

int main() {
  using namespace rp;
  using namespace rp::bench;
  Logger::set_level(LogLevel::Warn);
  banner("Fig. 6", "congestion heat maps: baseline vs routability-driven");

  BenchmarkSpec spec = suite()[2];

  for (const bool routability : {false, true}) {
    Design d = generate_benchmark(spec);
    PlacementFlow flow(routability ? routability_driven_options()
                                   : wirelength_driven_options());
    flow.run(d);

    std::printf("\n--- %s ---\n", routability ? "routability-driven" : "wl-driven");
    std::fputs(congestion_ascii(d, 64).c_str(), stdout);

    // Histogram of routed edge utilization.
    RoutingGrid grid(d, true);
    GlobalRouter router(grid);
    router.route(d);
    const auto utils = grid.edge_utilizations();
    const double buckets[] = {0.5, 0.8, 0.95, 1.0, 1.05, 1.2, 10.0};
    const char* labels[] = {"<50%", "50-80%", "80-95%", "95-100%", "100-105%",
                            "105-120%", ">120%"};
    int counts[7] = {};
    for (const double u : utils) {
      for (int b = 0; b < 7; ++b) {
        if (u <= buckets[b]) {
          ++counts[b];
          break;
        }
      }
    }
    std::printf("edge-utilization histogram: ");
    for (int b = 0; b < 7; ++b) std::printf("%s:%d ", labels[b], counts[b]);
    std::printf("\n");
  }
  return 0;
}
