// Figure 8 — wirelength-model study (WA vs LSE).
//
// Two parts:
//  (a) accuracy: |model − HPWL| / HPWL for WA and LSE across a γ sweep on
//      random netlists (WA must sit strictly below LSE at every γ — the
//      paper-series' theoretical claim);
//  (b) speed: google-benchmark timings of a full model+gradient evaluation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "gen/generator.hpp"
#include "model/wirelength.hpp"
#include "util/logger.hpp"

namespace {

rp::PlaceProblem bench_problem() {
  rp::Logger::set_level(rp::LogLevel::Error);
  rp::BenchmarkSpec spec = rp::small_spec(88);
  spec.num_std_cells = 4000;
  const rp::Design d = rp::generate_benchmark(spec);
  return rp::make_problem(d);
}

void accuracy_table() {
  using namespace rp;
  const PlaceProblem p = bench_problem();
  const double hp = p.hpwl();
  std::printf("\n(a) model error vs gamma (relative to HPWL %.4e, %d nets)\n", hp,
              p.num_nets());
  std::printf("%10s %14s %14s %10s\n", "gamma", "LSE err", "WA err", "WA/LSE");
  for (const double frac : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double gamma = frac * 9.0;  // in row heights
    LseWirelength lse(gamma);
    WaWirelength wa(gamma);
    const double le = std::abs(lse.value(p) - hp) / hp;
    const double we = std::abs(wa.value(p) - hp) / hp;
    std::printf("%10.2f %13.4f%% %13.4f%% %10.3f\n", gamma, 100 * le, 100 * we,
                le > 0 ? we / le : 0.0);
  }
  std::printf("\n(b) evaluation speed (google-benchmark)\n");
}

void BM_LseEval(benchmark::State& state) {
  static const rp::PlaceProblem p = bench_problem();
  rp::LseWirelength lse(9.0);
  std::vector<double> gx(p.nodes.size()), gy(p.nodes.size());
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(lse.eval(p, gx, gy));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(p.pins.size()));
}
BENCHMARK(BM_LseEval);

void BM_WaEval(benchmark::State& state) {
  static const rp::PlaceProblem p = bench_problem();
  rp::WaWirelength wa(9.0);
  std::vector<double> gx(p.nodes.size()), gy(p.nodes.size());
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(wa.eval(p, gx, gy));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(p.pins.size()));
}
BENCHMARK(BM_WaEval);

void BM_ExactHpwl(benchmark::State& state) {
  static const rp::PlaceProblem p = bench_problem();
  for (auto _ : state) benchmark::DoNotOptimize(p.hpwl());
  state.SetItemsProcessed(state.iterations() * static_cast<long>(p.pins.size()));
}
BENCHMARK(BM_ExactHpwl);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==============================================================\n");
  std::printf("Fig. 8 — wirelength models: WA vs LSE accuracy & speed\n");
  std::printf("==============================================================\n");
  accuracy_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
