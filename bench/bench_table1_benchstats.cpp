// Table 1 — benchmark statistics.
//
// The paper-style table describing the evaluation suite: cells, nets, pins,
// macros (movable/fixed), utilization, hierarchy depth, and routing supply.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"

int main() {
  using namespace rp;
  using namespace rp::bench;
  Logger::set_level(LogLevel::Warn);
  banner("Table 1", "benchmark statistics");

  TableWriter t({"bench", "#cells", "#nets", "#pins", "#macros", "fixed", "util%",
                 "hier depth", "grid", "h/v cap"});
  for (const BenchmarkSpec& spec : suite()) {
    const Design d = generate_benchmark(spec);
    int fixed_macros = 0;
    for (CellId c = 0; c < d.num_cells(); ++c)
      if (d.cell(c).is_macro() && d.cell(c).fixed) ++fixed_macros;
    const RouteGridInfo& rg = d.route_grid();
    t.row({spec.name, std::to_string(d.num_cells()), std::to_string(d.num_nets()),
           std::to_string(d.num_pins()), std::to_string(d.num_macros()),
           std::to_string(fixed_macros), TableWriter::num(100 * d.utilization(), 1),
           std::to_string(d.hierarchy().max_depth()),
           std::to_string(rg.nx) + "x" + std::to_string(rg.ny),
           TableWriter::num(rg.h_capacity, 0) + "/" + TableWriter::num(rg.v_capacity, 0)});
  }
  std::fputs(t.str().c_str(), stdout);
  return 0;
}
