// Figure 7 — scalability.
//
// Runtime of the full routability-driven flow (with per-stage split) and
// quality versus design size, 1k → 32k std cells. The paper-series claims
// near-linear scaling of the multilevel analytical engine; the "s/kcell"
// column makes that visible directly.

#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "util/timer.hpp"

int main() {
  using namespace rp;
  using namespace rp::bench;
  Logger::set_level(LogLevel::Warn);
  banner("Fig. 7", "runtime scaling vs design size (routability-driven flow)");

  std::vector<int> sizes = {1000, 2000, 4000, 8000, 16000, 32000};
  if (quick_mode()) sizes = {500, 1000, 2000};

  TableWriter t({"cells", "GP s", "legal s", "DP s", "eval s", "total s", "s/kcell",
                 "HPWL", "overflow", "legal?"});
  for (const int n : sizes) {
    BenchmarkSpec spec = medium_spec(77);
    spec.name = "scale-" + std::to_string(n);
    spec.num_std_cells = n;
    spec.num_macros = std::max(4, n / 2000);
    spec.track_supply = 1.0;
    const FlowRun r = run_flow(spec, "routability", routability_driven_options());
    const FlowResult& fr = r.result;
    t.row({std::to_string(n), TableWriter::num(fr.times.get("global"), 1),
           TableWriter::num(fr.times.get("macro_legal") + fr.times.get("legal"), 2),
           TableWriter::num(fr.times.get("detailed"), 2),
           TableWriter::num(fr.times.get("eval"), 2),
           TableWriter::num(fr.times.total(), 1),
           TableWriter::num(1000.0 * fr.times.total() / n, 2),
           TableWriter::eng(fr.eval.hpwl),
           TableWriter::num(fr.eval.congestion.total_overflow, 0),
           fr.eval.legality.ok() ? "yes" : "NO"});
  }
  std::fputs(t.str().c_str(), stdout);
  return 0;
}
