// Table 3 — HPWL, routed wirelength, legality and runtime breakdown.
//
// Same two flows as Table 2, reported from the wirelength/runtime angle:
// HPWL after each stage would be overkill, so the table shows final HPWL,
// routed WL, legalization displacement, and the per-stage runtime split
// (GP / macro legal / legal / DP / eval) that the paper-series reports.

#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"

int main() {
  using namespace rp;
  using namespace rp::bench;
  Logger::set_level(LogLevel::Warn);
  banner("Table 3", "HPWL, routed WL & runtime breakdown");

  TableWriter t({"bench", "flow", "HPWL", "routedWL", "avg disp", "legal", "GP s",
                 "legal s", "DP s", "eval s", "total s"});
  std::vector<double> hpwl_ratio, time_ratio;
  for (const BenchmarkSpec& spec : suite()) {
    const FlowRun base = run_flow(spec, "baseline", wirelength_driven_options());
    const FlowRun rdp = run_flow(spec, "routability", routability_driven_options());
    for (const FlowRun* r : {&base, &rdp}) {
      const FlowResult& fr = r->result;
      t.row({r->bench, r->flow, TableWriter::eng(fr.eval.hpwl),
             TableWriter::eng(fr.eval.route.wirelength),
             TableWriter::num(fr.legal.avg_disp(), 2),
             fr.eval.legality.ok() ? "yes" : "NO",
             TableWriter::num(fr.times.get("global"), 1),
             TableWriter::num(fr.times.get("macro_legal") + fr.times.get("legal"), 2),
             TableWriter::num(fr.times.get("detailed"), 2),
             TableWriter::num(fr.times.get("eval"), 2),
             TableWriter::num(fr.times.total(), 1)});
    }
    hpwl_ratio.push_back(rdp.result.eval.hpwl / base.result.eval.hpwl);
    time_ratio.push_back(rdp.result.times.total() / base.result.times.total());
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf("\ngeomean ratios (routability / baseline): HPWL %.3f, runtime %.2fx\n",
              geomean(hpwl_ratio), geomean(time_ratio));
  return 0;
}
