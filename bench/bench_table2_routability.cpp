// Table 2 — the MAIN RESULT: routability comparison.
//
// For every suite benchmark, the wirelength-driven baseline and the
// routability-driven placer are run on the identical instance; the global
// router then scores both. Reported per design: total routing overflow
// (tracks), overflowed edges, peak edge utilization, ACE-based RC, and the
// contest's scaled HPWL. Footer: geometric-mean ratios (routability /
// baseline) — the paper's summary numbers.
//
// Expected shape: the routability-driven flow cuts overflow by a large
// factor and pushes RC toward 100, for a few percent of HPWL.

#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"

int main() {
  using namespace rp;
  using namespace rp::bench;
  Logger::set_level(LogLevel::Warn);
  banner("Table 2", "routability: WL-driven baseline vs routability-driven placer");

  TableWriter t({"bench", "flow", "overflow", "ovfl edges", "peak util", "RC",
                 "HPWL", "scaled HPWL"});
  std::vector<double> r_ovfl, r_rc, r_hpwl, r_scaled;
  for (const BenchmarkSpec& spec : suite()) {
    const FlowRun base = run_flow(spec, "baseline", wirelength_driven_options());
    const FlowRun rdp = run_flow(spec, "routability", routability_driven_options());
    for (const FlowRun* r : {&base, &rdp}) {
      const EvalResult& e = r->result.eval;
      t.row({r->bench, r->flow, TableWriter::num(e.congestion.total_overflow, 0),
             std::to_string(e.congestion.overflowed_edges),
             TableWriter::num(e.congestion.peak_utilization, 2),
             TableWriter::num(e.congestion.rc, 1), TableWriter::eng(e.hpwl),
             TableWriter::eng(e.scaled_hpwl)});
    }
    const EvalResult& eb = base.result.eval;
    const EvalResult& er = rdp.result.eval;
    if (eb.congestion.total_overflow > 0)
      r_ovfl.push_back((er.congestion.total_overflow + 1.0) /
                       (eb.congestion.total_overflow + 1.0));
    r_rc.push_back(er.congestion.rc / eb.congestion.rc);
    r_hpwl.push_back(er.hpwl / eb.hpwl);
    r_scaled.push_back(er.scaled_hpwl / eb.scaled_hpwl);
  }
  std::fputs(t.str().c_str(), stdout);
  std::printf("\ngeomean ratios (routability / baseline):\n");
  std::printf("  overflow    : %.3f\n", geomean(r_ovfl));
  std::printf("  RC          : %.3f\n", geomean(r_rc));
  std::printf("  HPWL        : %.3f\n", geomean(r_hpwl));
  std::printf("  scaled HPWL : %.3f\n", geomean(r_scaled));
  return 0;
}
