#pragma once
// Shared plumbing for the per-table / per-figure bench binaries.
//
// Every binary regenerates one table or figure of the paper's evaluation
// (see DESIGN.md, "Experiment index"). They all run on the deterministic
// synthetic suite from gen/suite.cpp.
//
// Environment knobs:
//   RP_BENCH_QUICK=1        shrink the suite (~1/8 of the cells) for smoke runs.
//   RP_BENCH_JSON=<file>    append one run-report JSON line per flow run
//                           (same schema as `routplace --report-json`), so the
//                           perf-trajectory tooling consumes bench output
//                           without scraping tables.

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/run_report.hpp"
#include "gen/generator.hpp"
#include "util/logger.hpp"
#include "util/profiler.hpp"

namespace rp::bench {

inline bool quick_mode() {
  const char* q = std::getenv("RP_BENCH_QUICK");
  return q != nullptr && q[0] == '1';
}

/// The evaluation suite, honoring RP_BENCH_QUICK.
inline std::vector<BenchmarkSpec> suite() {
  std::vector<BenchmarkSpec> s = paper_suite();
  if (quick_mode()) {
    for (auto& spec : s) {
      spec.num_std_cells = std::max(500, spec.num_std_cells / 8);
      spec.num_macros = std::max(3, spec.num_macros / 2);
    }
  }
  return s;
}

struct FlowRun {
  std::string bench;
  std::string flow;
  FlowResult result;
};

/// Append `run`'s report as one JSON line to $RP_BENCH_JSON (no-op if unset).
inline void maybe_emit_report(const BenchmarkSpec& spec, const FlowRun& run,
                              const FlowOptions& opt, const Design& d) {
  const char* path = std::getenv("RP_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  RunReportMeta meta = make_report_meta(d, "generated", run.flow, spec.seed);
  meta.design = run.bench;
  std::ofstream out(path, std::ios::app);
  if (!out) {
    RP_WARN("RP_BENCH_JSON: cannot open '%s'", path);
    return;
  }
  out << run_report_json(meta, opt, run.result, /*indent=*/0) << "\n";
  // With RP_PROFILE on, also append one profile_region row per region so
  // bench_trend.py tracks kernel latency quantiles alongside flow metrics.
  out << profiler::region_jsonl_rows(run.bench, run.flow);
}

/// Run one flow variant on a freshly generated instance of `spec`.
inline FlowRun run_flow(const BenchmarkSpec& spec, const std::string& flow_name,
                        const FlowOptions& opt) {
  // Opt-in profiling for bench runs (the CLI path does this in run_cli).
  if (profiler::env_requested() && !profiler::enabled()) profiler::set_enabled(true);
  Design d = generate_benchmark(spec);
  PlacementFlow flow(opt);
  FlowRun r;
  r.bench = spec.name;
  r.flow = flow_name;
  r.result = flow.run(d);
  maybe_emit_report(spec, r, opt, d);
  return r;
}

/// Geometric mean of a list of positive values (0 entries skipped).
inline double geomean(const std::vector<double>& v) {
  double s = 0;
  int n = 0;
  for (const double x : v) {
    if (x > 0) {
      s += std::log(x);
      ++n;
    }
  }
  return n > 0 ? std::exp(s / n) : 0.0;
}

inline void banner(const char* id, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("(synthetic suite; see DESIGN.md for the substitution rationale)\n");
  if (quick_mode()) std::printf("[RP_BENCH_QUICK=1: reduced-size smoke run]\n");
  std::printf("==============================================================\n");
}

}  // namespace rp::bench
