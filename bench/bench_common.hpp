#pragma once
// Shared plumbing for the per-table / per-figure bench binaries.
//
// Every binary regenerates one table or figure of the paper's evaluation
// (see DESIGN.md, "Experiment index"). They all run on the deterministic
// synthetic suite from gen/suite.cpp.
//
// Environment knobs:
//   RP_BENCH_QUICK=1   shrink the suite (~1/8 of the cells) for smoke runs.

#include <cstdlib>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "gen/generator.hpp"
#include "util/logger.hpp"

namespace rp::bench {

inline bool quick_mode() {
  const char* q = std::getenv("RP_BENCH_QUICK");
  return q != nullptr && q[0] == '1';
}

/// The evaluation suite, honoring RP_BENCH_QUICK.
inline std::vector<BenchmarkSpec> suite() {
  std::vector<BenchmarkSpec> s = paper_suite();
  if (quick_mode()) {
    for (auto& spec : s) {
      spec.num_std_cells = std::max(500, spec.num_std_cells / 8);
      spec.num_macros = std::max(3, spec.num_macros / 2);
    }
  }
  return s;
}

struct FlowRun {
  std::string bench;
  std::string flow;
  FlowResult result;
};

/// Run one flow variant on a freshly generated instance of `spec`.
inline FlowRun run_flow(const BenchmarkSpec& spec, const std::string& flow_name,
                        const FlowOptions& opt) {
  Design d = generate_benchmark(spec);
  PlacementFlow flow(opt);
  FlowRun r;
  r.bench = spec.name;
  r.flow = flow_name;
  r.result = flow.run(d);
  return r;
}

/// Geometric mean of a list of positive values (0 entries skipped).
inline double geomean(const std::vector<double>& v) {
  double s = 0;
  int n = 0;
  for (const double x : v) {
    if (x > 0) {
      s += std::log(x);
      ++n;
    }
  }
  return n > 0 ? std::exp(s / n) : 0.0;
}

inline void banner(const char* id, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("(synthetic suite; see DESIGN.md for the substitution rationale)\n");
  if (quick_mode()) std::printf("[RP_BENCH_QUICK=1: reduced-size smoke run]\n");
  std::printf("==============================================================\n");
}

}  // namespace rp::bench
