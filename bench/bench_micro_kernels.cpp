// Micro-benchmarks of the flow's hot kernels: bell-shaped density
// evaluation, the probabilistic congestion estimator, the global router,
// legalization, and the hierarchy-aware clustering pass. These back the
// runtime-breakdown discussion and guard against performance regressions.
//
// The *Threads benchmarks sweep the pool size over 1/2/4/8 for each parallel
// kernel, and a custom main() additionally emits machine-readable speedup
// rows ({"schema":"kernel_speedup",...} JSONL) into $RP_BENCH_JSON so the
// perf-trajectory tooling can track parallel scaling alongside flow metrics.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <vector>

#include "cluster/multilevel.hpp"
#include "core/flow.hpp"
#include "gen/generator.hpp"
#include "legal/legalizer.hpp"
#include "legal/macro_legalizer.hpp"
#include "model/density.hpp"
#include "model/incremental.hpp"
#include "model/wirelength.hpp"
#include "route/estimator.hpp"
#include "route/router.hpp"
#include "util/logger.hpp"
#include "util/obs_context.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace {

const rp::Design& bench_design() {
  static const rp::Design d = [] {
    rp::Logger::set_level(rp::LogLevel::Error);
    return rp::generate_benchmark(rp::small_spec(99));
  }();
  return d;
}

void BM_DensityEval(benchmark::State& state) {
  using namespace rp;
  PlaceProblem p = make_problem(bench_design());
  DensityConfig cfg;
  DensityModel dm(p, cfg);
  std::vector<double> gx(p.nodes.size()), gy(p.nodes.size());
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(dm.eval(p, gx, gy));
  }
  state.SetItemsProcessed(state.iterations() * p.num_nodes());
}
BENCHMARK(BM_DensityEval);

void BM_DensityOverflow(benchmark::State& state) {
  using namespace rp;
  PlaceProblem p = make_problem(bench_design());
  DensityConfig cfg;
  DensityModel dm(p, cfg);
  for (auto _ : state) benchmark::DoNotOptimize(dm.overflow(p));
  state.SetItemsProcessed(state.iterations() * p.num_nodes());
}
BENCHMARK(BM_DensityOverflow);

void BM_ProbabilisticEstimate(benchmark::State& state) {
  using namespace rp;
  const Design& d = bench_design();
  RoutingGrid grid(d, true);
  for (auto _ : state) {
    estimate_probabilistic(d, grid);
    benchmark::DoNotOptimize(grid.total_overflow());
  }
  state.SetItemsProcessed(state.iterations() * d.num_nets());
}
BENCHMARK(BM_ProbabilisticEstimate);

void BM_RudyMap(benchmark::State& state) {
  using namespace rp;
  const Design& d = bench_design();
  const GridMap map(d.die(), 64, 64);
  for (auto _ : state) benchmark::DoNotOptimize(rudy_map(d, map));
  state.SetItemsProcessed(state.iterations() * d.num_nets());
}
BENCHMARK(BM_RudyMap);

void BM_GlobalRoute(benchmark::State& state) {
  using namespace rp;
  const Design& d = bench_design();
  for (auto _ : state) {
    RoutingGrid grid(d, true);
    GlobalRouter router(grid);
    benchmark::DoNotOptimize(router.route(d));
  }
  state.SetItemsProcessed(state.iterations() * d.num_nets());
}
BENCHMARK(BM_GlobalRoute);

void BM_AbacusLegalize(benchmark::State& state) {
  using namespace rp;
  for (auto _ : state) {
    state.PauseTiming();
    Design d = generate_benchmark(small_spec(99));
    legalize_macros(d);
    freeze_macros(d);
    state.ResumeTiming();
    AbacusLegalizer lg;
    benchmark::DoNotOptimize(lg.run(d));
  }
  state.SetItemsProcessed(state.iterations() * bench_design().num_movable());
}
BENCHMARK(BM_AbacusLegalize)->Unit(benchmark::kMillisecond);

void BM_TetrisLegalize(benchmark::State& state) {
  using namespace rp;
  for (auto _ : state) {
    state.PauseTiming();
    Design d = generate_benchmark(small_spec(99));
    legalize_macros(d);
    freeze_macros(d);
    state.ResumeTiming();
    TetrisLegalizer lg;
    benchmark::DoNotOptimize(lg.run(d));
  }
  state.SetItemsProcessed(state.iterations() * bench_design().num_movable());
}
BENCHMARK(BM_TetrisLegalize)->Unit(benchmark::kMillisecond);

void BM_ClusteringPass(benchmark::State& state) {
  using namespace rp;
  const Design& d = bench_design();
  ClusterOptions opt;
  opt.target_nodes = 200;
  for (auto _ : state) {
    Multilevel ml(d, opt);
    benchmark::DoNotOptimize(ml.num_levels());
  }
  state.SetItemsProcessed(state.iterations() * d.num_cells());
}
BENCHMARK(BM_ClusteringPass)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- threaded

void BM_WirelengthEvalThreads(benchmark::State& state) {
  using namespace rp;
  parallel::set_num_threads(static_cast<int>(state.range(0)));
  PlaceProblem p = make_problem(bench_design());
  const auto wl = make_wirelength_model("WA", 4.0);
  std::vector<double> gx(p.nodes.size()), gy(p.nodes.size());
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(wl->eval(p, gx, gy));
  }
  state.SetItemsProcessed(state.iterations() * p.num_nets());
  parallel::set_num_threads(1);
}
BENCHMARK(BM_WirelengthEvalThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DensityEvalThreads(benchmark::State& state) {
  using namespace rp;
  parallel::set_num_threads(static_cast<int>(state.range(0)));
  PlaceProblem p = make_problem(bench_design());
  DensityConfig cfg;
  DensityModel dm(p, cfg);
  std::vector<double> gx(p.nodes.size()), gy(p.nodes.size());
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(dm.eval(p, gx, gy));
  }
  state.SetItemsProcessed(state.iterations() * p.num_nodes());
  parallel::set_num_threads(1);
}
BENCHMARK(BM_DensityEvalThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ProbabilisticEstimateThreads(benchmark::State& state) {
  using namespace rp;
  parallel::set_num_threads(static_cast<int>(state.range(0)));
  const Design& d = bench_design();
  NetlistCsr csr = NetlistCsr::from_design(d);
  RoutingGrid grid(d, true);
  for (auto _ : state) {
    estimate_probabilistic(d, csr, grid);
    benchmark::DoNotOptimize(grid.total_overflow());
  }
  state.SetItemsProcessed(state.iterations() * d.num_nets());
  parallel::set_num_threads(1);
}
BENCHMARK(BM_ProbabilisticEstimateThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ------------------------------------------------------- speedup JSONL rows

/// Seconds per call, doubling the batch until the measurement is >= 50 ms.
double time_kernel(const std::function<void()>& fn) {
  fn();  // warm caches and lazy setup
  for (int iters = 1;; iters *= 2) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double sec = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    if (sec >= 0.05 || iters >= (1 << 22)) return sec / iters;
  }
}

/// Median (lower-of-middle-two for even sizes); 0.0 on an empty sample.
double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = (v.size() - 1) / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

/// Sweep each parallel kernel over 1/2/4/8 threads; print a table and, when
/// $RP_BENCH_JSON is set, append one JSONL row per (kernel, threads) pair.
void emit_speedup_rows() {
  using namespace rp;
  PlaceProblem p = make_problem(bench_design());
  const Design& d = bench_design();
  const auto wl = make_wirelength_model("WA", 4.0);
  DensityConfig cfg;
  DensityModel dm(p, cfg);
  NetlistCsr csr = NetlistCsr::from_design(d);
  RoutingGrid grid(d, true);
  std::vector<double> gx(p.nodes.size()), gy(p.nodes.size());

  struct Kernel {
    const char* name;
    std::function<void()> fn;
  };
  const Kernel kernels[] = {
      {"wirelength_wa", [&] {
         std::fill(gx.begin(), gx.end(), 0.0);
         std::fill(gy.begin(), gy.end(), 0.0);
         benchmark::DoNotOptimize(wl->eval(p, gx, gy));
       }},
      {"density", [&] {
         std::fill(gx.begin(), gx.end(), 0.0);
         std::fill(gy.begin(), gy.end(), 0.0);
         benchmark::DoNotOptimize(dm.eval(p, gx, gy));
       }},
      {"congestion", [&] {
         estimate_probabilistic(d, csr, grid);
         benchmark::DoNotOptimize(grid.total_overflow());
       }},
  };

  const char* json_path = std::getenv("RP_BENCH_JSON");
  std::ofstream json;
  if (json_path != nullptr && json_path[0] != '\0')
    json.open(json_path, std::ios::app);

  std::printf("\nparallel kernel scaling (hardware threads: %d)\n",
              parallel::hardware_threads());
  std::printf("%-16s %8s %14s %10s\n", "kernel", "threads", "sec/iter", "speedup");
  for (const Kernel& k : kernels) {
    double t1 = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      parallel::set_num_threads(threads);
      const double t = time_kernel(k.fn);
      if (threads == 1) t1 = t;
      const double speedup = t > 0.0 ? t1 / t : 0.0;
      std::printf("%-16s %8d %14.3e %9.2fx\n", k.name, threads, t, speedup);
      if (json.is_open())
        json << "{\"schema\":\"kernel_speedup\",\"kernel\":\"" << k.name
             << "\",\"threads\":" << threads << ",\"sec_per_iter\":" << t
             << ",\"speedup_vs_1\":" << speedup << "}\n";
    }
  }
  parallel::set_num_threads(1);
}

// ------------------------------------------------- SIMD speedup JSONL rows

/// Time the vectorizable kernels with dispatch forced off (scalar) and back
/// on auto, single-threaded so the ratio isolates the vector win. Appends
/// {"schema":"simd_speedup",...} rows keyed kernel.simd.<name>.t1.* by
/// bench_trend.py, which floors speedup_vs_off at 1.0 (dispatch must never
/// make a kernel slower than the scalar path it replaces).
void emit_simd_speedup_rows() {
  using namespace rp;
  parallel::set_num_threads(1);
  // Realistic mixed-size fanout (the suite's default avg degree of 3.4
  // leaves the per-net exp batches tail-dominated; multi-pin nets are where
  // the vector lanes fill up).
  BenchmarkSpec spec = medium_spec(99);
  spec.avg_net_degree = 8.0;
  spec.max_net_degree = 48;
  const Design d = generate_benchmark(spec);
  PlaceProblem p = make_problem(d);
  const auto wl = make_wirelength_model("WA", 4.0);
  DensityConfig cfg;
  DensityModel dm(p, cfg);
  std::vector<double> gx(p.nodes.size()), gy(p.nodes.size());
  // CG-style BLAS loop: the solver's per-iteration axpy/dot pattern on
  // vectors the size of the placement problem.
  std::vector<double> vx(p.nodes.size(), 1.0), vy(p.nodes.size(), 2.0);

  struct Kernel {
    const char* name;
    std::function<void()> fn;
  };
  const Kernel kernels[] = {
      {"wirelength_wa", [&] {
         std::fill(gx.begin(), gx.end(), 0.0);
         std::fill(gy.begin(), gy.end(), 0.0);
         benchmark::DoNotOptimize(wl->eval(p, gx, gy));
       }},
      {"density", [&] {
         std::fill(gx.begin(), gx.end(), 0.0);
         std::fill(gy.begin(), gy.end(), 0.0);
         benchmark::DoNotOptimize(dm.eval(p, gx, gy));
       }},
      {"cg_blas", [&] {
         const simd::Ops& ops = simd::ops();
         ops.axpy(0.5, vx.data(), vy.size(), vy.data());
         benchmark::DoNotOptimize(ops.dot(vx.data(), vy.data(), vy.size()));
       }},
  };

  const char* json_path = std::getenv("RP_BENCH_JSON");
  std::ofstream json;
  if (json_path != nullptr && json_path[0] != '\0')
    json.open(json_path, std::ios::app);

  std::printf("\nsimd kernel speedup (host: %s, threads: 1)\n",
              simd::level_name(simd::resolve("auto")));
  std::printf("%-16s %14s %14s %10s\n", "kernel", "scalar s/iter",
              "simd s/iter", "speedup");
  for (const Kernel& k : kernels) {
    // Interleave the arms (off/auto/off/auto...) so host drift on a shared
    // box hits both equally; min-of-reps discards preempted windows.
    double t_off = 1e300, t_auto = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      simd::set_from_string("off");
      t_off = std::min(t_off, time_kernel(k.fn));
      simd::set_from_string("auto");
      t_auto = std::min(t_auto, time_kernel(k.fn));
    }
    const double speedup = t_auto > 0.0 ? t_off / t_auto : 0.0;
    std::printf("%-16s %14.3e %14.3e %9.2fx\n", k.name, t_off, t_auto, speedup);
    if (json.is_open())
      json << "{\"schema\":\"simd_speedup\",\"kernel\":\"" << k.name
           << "\",\"threads\":1,\"off_sec\":" << t_off
           << ",\"auto_sec\":" << t_auto
           << ",\"speedup_vs_off\":" << speedup << "}\n";
  }
  simd::set_from_string("auto");
}

// ---------------------------------------- DP candidate-eval JSONL row

/// Cost of scoring one detailed-placement candidate move: the pre-PR-8
/// mutate-and-measure path (write the position, walk every pin of every net
/// on the cell, restore) vs IncrementalEval::trial_move (cached boxes,
/// second extremes, no mutation). Appends a {"schema":"dp_candidate_speedup"}
/// row keyed kernel.dp_candidate_eval.t1.speedup_vs_full.
void emit_dp_candidate_rows() {
  using namespace rp;
  // Higher-fanout design than the kernel suite's: the full path is
  // O(Σ degree of the cell's nets) per candidate while the incremental one
  // is O(#nets), so realistic mixed-size fanout is where the gap lives.
  BenchmarkSpec spec = medium_spec(99);
  spec.avg_net_degree = 8.0;
  spec.max_net_degree = 48;
  Design d = generate_benchmark(spec);
  IncrementalEval inc(d);
  const std::vector<CellId>& movable = d.movable_cells();
  constexpr int kBatch = 1024;

  // Deterministic candidate list: each sampled cell nudged by a cell-width.
  std::vector<std::pair<CellId, Point>> cand;
  cand.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    const CellId c = movable[static_cast<std::size_t>(i * 7) % movable.size()];
    const Cell& k = d.cell(c);
    cand.emplace_back(c, Point{k.pos.x + k.w, k.pos.y});
  }

  double sink = 0.0;
  std::vector<NetId> nets;
  // The old cost per candidate: collect + dedupe the cell's nets, measure
  // the before cost, mutate, measure again, restore. (The incremental path
  // amortizes the collection into construction and the before cost into one
  // cached sum per cell, so its per-candidate cost is trial_move alone.)
  const auto full_eval = [&] {
    for (const auto& [c, target] : cand) {
      nets.clear();
      for (const PinId pin : d.cell(c).pins) nets.push_back(d.pin(pin).net);
      std::sort(nets.begin(), nets.end());
      nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
      double before = 0.0;
      for (const NetId n : nets) before += d.net(n).weight * d.net_hpwl(n);
      const Point old = d.cell(c).pos;
      d.cell(c).pos = target;
      double after = 0.0;
      for (const NetId n : nets) after += d.net(n).weight * d.net_hpwl(n);
      d.cell(c).pos = old;
      sink += before - after;
    }
  };
  const auto inc_eval = [&] {
    for (const auto& [c, target] : cand) sink += inc.trial_move(c, target);
  };
  double full_sec = 1e300, inc_sec = 1e300;
  for (int rep = 0; rep < 3; ++rep) {  // interleaved arms, min-of-reps
    full_sec = std::min(full_sec, time_kernel(full_eval));
    inc_sec = std::min(inc_sec, time_kernel(inc_eval));
  }
  full_sec /= kBatch;
  inc_sec /= kBatch;
  benchmark::DoNotOptimize(sink);
  const double speedup = inc_sec > 0.0 ? full_sec / inc_sec : 0.0;

  std::printf("\ndp candidate evaluation (per move trial)\n");
  std::printf("  full re-eval          %8.1f ns\n", full_sec * 1e9);
  std::printf("  incremental delta     %8.1f ns  (%.2fx)\n", inc_sec * 1e9,
              speedup);

  const char* json_path = std::getenv("RP_BENCH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    std::ofstream json(json_path, std::ios::app);
    if (json.is_open())
      json << "{\"schema\":\"dp_candidate_speedup\",\"threads\":1"
           << ",\"full_sec\":" << full_sec
           << ",\"incremental_sec\":" << inc_sec
           << ",\"speedup_vs_full\":" << speedup << "}\n";
  }
}

// ----------------------------------------------- event-bus overhead JSONL row

/// Measure the observability event bus (PR 7): raw emit cost into the ring,
/// emit cost with an open NDJSON stream, and — the number that matters — the
/// wall-time ratio of a full flow with the progress stream on vs off. The
/// contract is <2% flow overhead; bench_trend.py gates "overhead_ratio" as
/// an absolute limit (> 1.02 fails), not as a baseline-relative metric.
void emit_event_bus_rows() {
  using namespace rp;

  // Raw emit: ring buffer only (the always-on cost every run pays).
  obs::EventBus ring_bus;
  constexpr int kBatch = 4096;
  const double ring_sec = time_kernel([&] {
    for (int i = 0; i < kBatch; ++i) {
      obs::Event e = ring_bus.make(obs::EventKind::GpIter, "bench");
      e.i1 = i;
      e.d0 = 1.0 + i;
      ring_bus.emit(e);
    }
  }) / kBatch;

  // Streamed emit: ring + NDJSON serialization + write() per event.
  obs::EventBus stream_bus;
  double stream_sec = 0.0;
  if (stream_bus.open_stream("/dev/null")) {
    stream_sec = time_kernel([&] {
      for (int i = 0; i < kBatch; ++i) {
        obs::Event e = stream_bus.make(obs::EventKind::GpIter, "bench");
        e.i1 = i;
        e.d0 = 1.0 + i;
        stream_bus.emit(e);
      }
    }) / kBatch;
    stream_bus.close_stream();
  }

  // Full-flow wall time, stream off vs on (min of k, arms interleaved so
  // drift hits both equally). The tiny design keeps the pair under a second.
  auto flow_sec = [](bool stream) {
    auto ctx = std::make_shared<obs::ObsContext>();
    if (stream) ctx->events().open_stream("/dev/null");
    obs::ScopedBind bind(ctx.get());
    Design d = generate_benchmark(tiny_spec(17));
    FlowOptions opt = routability_driven_options();
    opt.obs = ctx;
    PlacementFlow flow(opt);
    const auto t0 = std::chrono::steady_clock::now();
    flow.run(d);
    return std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
  };
  // Median of PER-PAIR ratios, not a ratio of per-arm minima: the flow runs
  // ~200 ms with several-percent scheduler jitter, so min(on)/min(off)
  // inherits the jitter of whichever arm got luckier and flirted with the
  // absolute 1.02 ceiling on an idle machine. Adjacent off/on runs share
  // machine state, so their ratio cancels drift, and the median shrugs off
  // a single hiccup while staying centered on the true overhead.
  double off_sec = 1e300, on_sec = 1e300;
  std::vector<double> pair_ratios;
  flow_sec(false);  // warm caches/pool before timing either arm
  for (int rep = 0; rep < 15; ++rep) {
    // Alternate which arm goes first so monotone drift (thermal, frequency
    // scaling) biases as many pairs down as up instead of all of them up.
    const bool on_first = (rep & 1) != 0;
    const double first = flow_sec(on_first);
    const double second = flow_sec(!on_first);
    const double off = on_first ? second : first;
    const double on = on_first ? first : second;
    off_sec = std::min(off_sec, off);
    on_sec = std::min(on_sec, on);
    if (off > 0.0) pair_ratios.push_back(on / off);
  }
  const double ratio = median_of(pair_ratios);

  const double events_per_sec = ring_sec > 0.0 ? 1.0 / ring_sec : 0.0;
  std::printf("\nevent bus overhead\n");
  std::printf("  emit (ring only)      %8.1f ns/event (%.2e events/sec)\n",
              ring_sec * 1e9, events_per_sec);
  std::printf("  emit (NDJSON stream)  %8.1f ns/event\n", stream_sec * 1e9);
  std::printf("  flow stream off/on    %.3fs / %.3fs (ratio %.4f)\n",
              off_sec, on_sec, ratio);

  const char* json_path = std::getenv("RP_BENCH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    std::ofstream json(json_path, std::ios::app);
    if (json.is_open())
      json << "{\"schema\":\"event_bus_overhead\""
           << ",\"events_per_sec\":" << events_per_sec
           << ",\"emit_ns\":" << ring_sec * 1e9
           << ",\"emit_streamed_ns\":" << stream_sec * 1e9
           << ",\"flow_off_sec\":" << off_sec
           << ",\"flow_on_sec\":" << on_sec
           << ",\"overhead_ratio\":" << ratio << "}\n";
  }
}

// ------------------------------- resource-sampler overhead JSONL row

/// Measure the resource timeline sampler (util/resource_sampler.hpp): full
/// flow wall time with the background sampler off vs on at the default
/// 25 ms tick, arms interleaved and min-of-reps like the event-bus pair.
/// The contract is <2% flow overhead; bench_trend.py gates the emitted
/// "overhead_ratio" with the same absolute <= 1.02 ceiling.
void emit_resource_sampler_rows() {
  using namespace rp;

  long long samples_taken = 0;
  auto flow_sec = [&samples_taken](bool sample) {
    auto ctx = std::make_shared<obs::ObsContext>();
    if (sample) ctx->sampler().start(obs::ResourceSampler::Options{});
    obs::ScopedBind bind(ctx.get());
    Design d = generate_benchmark(tiny_spec(17));
    FlowOptions opt = routability_driven_options();
    opt.obs = ctx;
    PlacementFlow flow(opt);
    const auto t0 = std::chrono::steady_clock::now();
    flow.run(d);
    const double sec = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    if (sample) {
      ctx->sampler().stop();
      samples_taken = ctx->sampler().summary().samples_taken;
    }
    return sec;
  };
  // Median of per-pair ratios, same rationale as the event-bus gate: at
  // this flow size a ratio of per-arm minima sits within scheduler noise
  // of the absolute 1.02 ceiling.
  double off_sec = 1e300, on_sec = 1e300;
  std::vector<double> pair_ratios;
  flow_sec(false);  // warm caches/pool before timing either arm
  for (int rep = 0; rep < 15; ++rep) {
    // Alternate which arm goes first so monotone drift (thermal, frequency
    // scaling) biases as many pairs down as up instead of all of them up.
    const bool on_first = (rep & 1) != 0;
    const double first = flow_sec(on_first);
    const double second = flow_sec(!on_first);
    const double off = on_first ? second : first;
    const double on = on_first ? first : second;
    off_sec = std::min(off_sec, off);
    on_sec = std::min(on_sec, on);
    if (off > 0.0) pair_ratios.push_back(on / off);
  }
  const double ratio = median_of(pair_ratios);

  std::printf("\nresource sampler overhead (%d ms tick)\n",
              obs::ResourceSampler::kDefaultTickMs);
  std::printf("  flow sampler off/on   %.3fs / %.3fs (ratio %.4f, "
              "%lld samples last run)\n",
              off_sec, on_sec, ratio, samples_taken);

  const char* json_path = std::getenv("RP_BENCH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    std::ofstream json(json_path, std::ios::app);
    if (json.is_open())
      json << "{\"schema\":\"resource_sampler_overhead\""
           << ",\"tick_ms\":" << obs::ResourceSampler::kDefaultTickMs
           << ",\"samples_taken\":" << samples_taken
           << ",\"flow_off_sec\":" << off_sec
           << ",\"flow_on_sec\":" << on_sec
           << ",\"overhead_ratio\":" << ratio << "}\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_speedup_rows();
  emit_simd_speedup_rows();
  emit_dp_candidate_rows();
  emit_event_bus_rows();
  emit_resource_sampler_rows();
  return 0;
}
