// Micro-benchmarks of the flow's hot kernels: bell-shaped density
// evaluation, the probabilistic congestion estimator, the global router,
// legalization, and the hierarchy-aware clustering pass. These back the
// runtime-breakdown discussion and guard against performance regressions.

#include <benchmark/benchmark.h>

#include "cluster/multilevel.hpp"
#include "gen/generator.hpp"
#include "legal/legalizer.hpp"
#include "legal/macro_legalizer.hpp"
#include "model/density.hpp"
#include "route/estimator.hpp"
#include "route/router.hpp"
#include "util/logger.hpp"

namespace {

const rp::Design& bench_design() {
  static const rp::Design d = [] {
    rp::Logger::set_level(rp::LogLevel::Error);
    return rp::generate_benchmark(rp::small_spec(99));
  }();
  return d;
}

void BM_DensityEval(benchmark::State& state) {
  using namespace rp;
  PlaceProblem p = make_problem(bench_design());
  DensityConfig cfg;
  DensityModel dm(p, cfg);
  std::vector<double> gx(p.nodes.size()), gy(p.nodes.size());
  for (auto _ : state) {
    std::fill(gx.begin(), gx.end(), 0.0);
    std::fill(gy.begin(), gy.end(), 0.0);
    benchmark::DoNotOptimize(dm.eval(p, gx, gy));
  }
  state.SetItemsProcessed(state.iterations() * p.num_nodes());
}
BENCHMARK(BM_DensityEval);

void BM_DensityOverflow(benchmark::State& state) {
  using namespace rp;
  PlaceProblem p = make_problem(bench_design());
  DensityConfig cfg;
  DensityModel dm(p, cfg);
  for (auto _ : state) benchmark::DoNotOptimize(dm.overflow(p));
  state.SetItemsProcessed(state.iterations() * p.num_nodes());
}
BENCHMARK(BM_DensityOverflow);

void BM_ProbabilisticEstimate(benchmark::State& state) {
  using namespace rp;
  const Design& d = bench_design();
  RoutingGrid grid(d, true);
  for (auto _ : state) {
    estimate_probabilistic(d, grid);
    benchmark::DoNotOptimize(grid.total_overflow());
  }
  state.SetItemsProcessed(state.iterations() * d.num_nets());
}
BENCHMARK(BM_ProbabilisticEstimate);

void BM_RudyMap(benchmark::State& state) {
  using namespace rp;
  const Design& d = bench_design();
  const GridMap map(d.die(), 64, 64);
  for (auto _ : state) benchmark::DoNotOptimize(rudy_map(d, map));
  state.SetItemsProcessed(state.iterations() * d.num_nets());
}
BENCHMARK(BM_RudyMap);

void BM_GlobalRoute(benchmark::State& state) {
  using namespace rp;
  const Design& d = bench_design();
  for (auto _ : state) {
    RoutingGrid grid(d, true);
    GlobalRouter router(grid);
    benchmark::DoNotOptimize(router.route(d));
  }
  state.SetItemsProcessed(state.iterations() * d.num_nets());
}
BENCHMARK(BM_GlobalRoute);

void BM_AbacusLegalize(benchmark::State& state) {
  using namespace rp;
  for (auto _ : state) {
    state.PauseTiming();
    Design d = generate_benchmark(small_spec(99));
    legalize_macros(d);
    freeze_macros(d);
    state.ResumeTiming();
    AbacusLegalizer lg;
    benchmark::DoNotOptimize(lg.run(d));
  }
  state.SetItemsProcessed(state.iterations() * bench_design().num_movable());
}
BENCHMARK(BM_AbacusLegalize)->Unit(benchmark::kMillisecond);

void BM_TetrisLegalize(benchmark::State& state) {
  using namespace rp;
  for (auto _ : state) {
    state.PauseTiming();
    Design d = generate_benchmark(small_spec(99));
    legalize_macros(d);
    freeze_macros(d);
    state.ResumeTiming();
    TetrisLegalizer lg;
    benchmark::DoNotOptimize(lg.run(d));
  }
  state.SetItemsProcessed(state.iterations() * bench_design().num_movable());
}
BENCHMARK(BM_TetrisLegalize)->Unit(benchmark::kMillisecond);

void BM_ClusteringPass(benchmark::State& state) {
  using namespace rp;
  const Design& d = bench_design();
  ClusterOptions opt;
  opt.target_nodes = 200;
  for (auto _ : state) {
    Multilevel ml(d, opt);
    benchmark::DoNotOptimize(ml.num_levels());
  }
  state.SetItemsProcessed(state.iterations() * d.num_cells());
}
BENCHMARK(BM_ClusteringPass)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
