// Table 4 — ablation of the routability-driven flow's design choices.
//
// On the medium hierarchical benchmark, each routability lever is disabled
// in turn: cell inflation, narrow-channel derating, congestion-aware
// detailed placement, hierarchy-aware clustering, and the WA wirelength
// model (replaced by LSE). Shows what each contributes to the final
// overflow / RC / scaled HPWL.

#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"

int main() {
  using namespace rp;
  using namespace rp::bench;
  Logger::set_level(LogLevel::Warn);
  banner("Table 4", "ablation of routability & hierarchy features");

  // Medium hierarchical entry by default; RP_ABLATE_INDEX overrides (used
  // for debugging individual suite entries).
  std::size_t index = 2;
  if (const char* e = std::getenv("RP_ABLATE_INDEX")) index = std::strtoul(e, nullptr, 10);
  BenchmarkSpec spec = suite()[index];

  struct Variant {
    const char* name;
    FlowOptions opt;
  };
  std::vector<Variant> variants;
  {
    variants.push_back({"full (paper)", routability_driven_options()});

    FlowOptions no_infl = routability_driven_options();
    no_infl.gp.routability.cell_inflation = false;
    variants.push_back({"- cell inflation", no_infl});

    FlowOptions no_chan = routability_driven_options();
    no_chan.gp.routability.narrow_channels = false;
    variants.push_back({"- narrow channels", no_chan});

    FlowOptions no_cdp = routability_driven_options();
    no_cdp.congestion_aware_dp = false;
    variants.push_back({"- congestion-aware DP", no_cdp});

    FlowOptions no_hier = routability_driven_options();
    no_hier.gp.cluster.use_hierarchy = false;
    variants.push_back({"- hierarchy clustering", no_hier});

    FlowOptions lse = routability_driven_options();
    lse.gp.wl_model = "LSE";
    variants.push_back({"WA -> LSE model", lse});

    variants.push_back({"baseline (all off)", wirelength_driven_options()});
  }

  TableWriter t({"variant", "overflow", "RC", "HPWL", "scaled HPWL", "GP s"});
  for (const Variant& v : variants) {
    const FlowRun r = run_flow(spec, v.name, v.opt);
    const EvalResult& e = r.result.eval;
    t.row({v.name, TableWriter::num(e.congestion.total_overflow, 0),
           TableWriter::num(e.congestion.rc, 1), TableWriter::eng(e.hpwl),
           TableWriter::eng(e.scaled_hpwl),
           TableWriter::num(r.result.times.get("global"), 1)});
  }
  std::fputs(t.str().c_str(), stdout);
  return 0;
}
