// Figure 5 — global-placement convergence.
//
// Per-outer-iteration series of smoothed-density overflow and HPWL at the
// finest level, for the baseline and the routability-driven placer (whose
// curve shows the characteristic overflow bumps at each inflation round).
// Printed as aligned columns, one series per flow — the data behind the
// paper's convergence plot.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace rp;
  using namespace rp::bench;
  Logger::set_level(LogLevel::Warn);
  banner("Fig. 5", "GP convergence: overflow & HPWL vs outer iteration");

  BenchmarkSpec spec = suite()[2];  // medium hierarchical

  for (const bool routability : {false, true}) {
    FlowOptions opt = routability ? routability_driven_options()
                                  : wirelength_driven_options();
    opt.skip_dp = true;
    opt.skip_eval = true;
    Design d = generate_benchmark(spec);
    PlacementFlow flow(opt);
    const FlowResult r = flow.run(d);

    std::printf("\n# series: %s\n", routability ? "routability-driven" : "wl-driven");
    std::printf("%6s %8s %12s %10s %10s %10s\n", "step", "level", "hpwl", "overflow",
                "lambda", "inflation");
    int step = 0;
    for (const GpTracePoint& p : r.gp_trace) {
      char level[32];
      if (p.level >= 0) std::snprintf(level, sizeof level, "L%d", p.level);
      else std::snprintf(level, sizeof level, "infl#%d", -p.level);
      std::printf("%6d %8s %12.4e %10.4f %10.2e %10.3f\n", step++, level, p.hpwl,
                  p.overflow, p.lambda, p.inflation);
    }
  }
  return 0;
}
