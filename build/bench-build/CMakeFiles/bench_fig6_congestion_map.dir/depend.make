# Empty dependencies file for bench_fig6_congestion_map.
# This may be replaced when dependencies are built.
