file(REMOVE_RECURSE
  "../bench/bench_fig6_congestion_map"
  "../bench/bench_fig6_congestion_map.pdb"
  "CMakeFiles/bench_fig6_congestion_map.dir/bench_fig6_congestion_map.cpp.o"
  "CMakeFiles/bench_fig6_congestion_map.dir/bench_fig6_congestion_map.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_congestion_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
