file(REMOVE_RECURSE
  "../bench/bench_fig8_wl_models"
  "../bench/bench_fig8_wl_models.pdb"
  "CMakeFiles/bench_fig8_wl_models.dir/bench_fig8_wl_models.cpp.o"
  "CMakeFiles/bench_fig8_wl_models.dir/bench_fig8_wl_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_wl_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
