file(REMOVE_RECURSE
  "../bench/bench_table2_routability"
  "../bench/bench_table2_routability.pdb"
  "CMakeFiles/bench_table2_routability.dir/bench_table2_routability.cpp.o"
  "CMakeFiles/bench_table2_routability.dir/bench_table2_routability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_routability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
