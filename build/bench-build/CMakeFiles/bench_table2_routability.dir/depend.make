# Empty dependencies file for bench_table2_routability.
# This may be replaced when dependencies are built.
