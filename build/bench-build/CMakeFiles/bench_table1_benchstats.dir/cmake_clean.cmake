file(REMOVE_RECURSE
  "../bench/bench_table1_benchstats"
  "../bench/bench_table1_benchstats.pdb"
  "CMakeFiles/bench_table1_benchstats.dir/bench_table1_benchstats.cpp.o"
  "CMakeFiles/bench_table1_benchstats.dir/bench_table1_benchstats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_benchstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
