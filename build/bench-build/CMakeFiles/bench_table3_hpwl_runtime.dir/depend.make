# Empty dependencies file for bench_table3_hpwl_runtime.
# This may be replaced when dependencies are built.
