file(REMOVE_RECURSE
  "../bench/bench_table3_hpwl_runtime"
  "../bench/bench_table3_hpwl_runtime.pdb"
  "CMakeFiles/bench_table3_hpwl_runtime.dir/bench_table3_hpwl_runtime.cpp.o"
  "CMakeFiles/bench_table3_hpwl_runtime.dir/bench_table3_hpwl_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_hpwl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
