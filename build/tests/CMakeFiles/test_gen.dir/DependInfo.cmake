
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/test_gen.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/test_gen.dir/test_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/rp_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/rp_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/legal/CMakeFiles/rp_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/rp_route.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/rp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/rp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
