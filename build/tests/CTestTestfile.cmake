# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_db "/root/repo/build/tests/test_db")
set_tests_properties(test_db PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bookshelf "/root/repo/build/tests/test_bookshelf")
set_tests_properties(test_bookshelf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gen "/root/repo/build/tests/test_gen")
set_tests_properties(test_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build/tests/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_solver "/root/repo/build/tests/test_solver")
set_tests_properties(test_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_route "/root/repo/build/tests/test_route")
set_tests_properties(test_route PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_legal "/root/repo/build/tests/test_legal")
set_tests_properties(test_legal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dp "/root/repo/build/tests/test_dp")
set_tests_properties(test_dp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cluster "/root/repo/build/tests/test_cluster")
set_tests_properties(test_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_flow "/root/repo/build/tests/test_flow")
set_tests_properties(test_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cli "/root/repo/build/tests/test_cli")
set_tests_properties(test_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_edge_cases "/root/repo/build/tests/test_edge_cases")
set_tests_properties(test_edge_cases PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;rp_add_test;/root/repo/tests/CMakeLists.txt;0;")
