
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/detailed.cpp" "src/dp/CMakeFiles/rp_dp.dir/detailed.cpp.o" "gcc" "src/dp/CMakeFiles/rp_dp.dir/detailed.cpp.o.d"
  "/root/repo/src/dp/hungarian.cpp" "src/dp/CMakeFiles/rp_dp.dir/hungarian.cpp.o" "gcc" "src/dp/CMakeFiles/rp_dp.dir/hungarian.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/rp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/legal/CMakeFiles/rp_legal.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/rp_route.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
