file(REMOVE_RECURSE
  "CMakeFiles/rp_dp.dir/detailed.cpp.o"
  "CMakeFiles/rp_dp.dir/detailed.cpp.o.d"
  "CMakeFiles/rp_dp.dir/hungarian.cpp.o"
  "CMakeFiles/rp_dp.dir/hungarian.cpp.o.d"
  "librp_dp.a"
  "librp_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
