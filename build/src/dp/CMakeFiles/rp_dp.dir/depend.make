# Empty dependencies file for rp_dp.
# This may be replaced when dependencies are built.
