file(REMOVE_RECURSE
  "librp_dp.a"
)
