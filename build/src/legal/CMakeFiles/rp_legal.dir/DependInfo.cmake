
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legal/abacus.cpp" "src/legal/CMakeFiles/rp_legal.dir/abacus.cpp.o" "gcc" "src/legal/CMakeFiles/rp_legal.dir/abacus.cpp.o.d"
  "/root/repo/src/legal/macro_legalizer.cpp" "src/legal/CMakeFiles/rp_legal.dir/macro_legalizer.cpp.o" "gcc" "src/legal/CMakeFiles/rp_legal.dir/macro_legalizer.cpp.o.d"
  "/root/repo/src/legal/subrow.cpp" "src/legal/CMakeFiles/rp_legal.dir/subrow.cpp.o" "gcc" "src/legal/CMakeFiles/rp_legal.dir/subrow.cpp.o.d"
  "/root/repo/src/legal/tetris.cpp" "src/legal/CMakeFiles/rp_legal.dir/tetris.cpp.o" "gcc" "src/legal/CMakeFiles/rp_legal.dir/tetris.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/rp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
