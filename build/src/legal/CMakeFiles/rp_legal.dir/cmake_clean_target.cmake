file(REMOVE_RECURSE
  "librp_legal.a"
)
