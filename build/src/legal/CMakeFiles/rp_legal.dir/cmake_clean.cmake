file(REMOVE_RECURSE
  "CMakeFiles/rp_legal.dir/abacus.cpp.o"
  "CMakeFiles/rp_legal.dir/abacus.cpp.o.d"
  "CMakeFiles/rp_legal.dir/macro_legalizer.cpp.o"
  "CMakeFiles/rp_legal.dir/macro_legalizer.cpp.o.d"
  "CMakeFiles/rp_legal.dir/subrow.cpp.o"
  "CMakeFiles/rp_legal.dir/subrow.cpp.o.d"
  "CMakeFiles/rp_legal.dir/tetris.cpp.o"
  "CMakeFiles/rp_legal.dir/tetris.cpp.o.d"
  "librp_legal.a"
  "librp_legal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_legal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
