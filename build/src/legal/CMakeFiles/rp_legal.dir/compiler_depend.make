# Empty compiler generated dependencies file for rp_legal.
# This may be replaced when dependencies are built.
