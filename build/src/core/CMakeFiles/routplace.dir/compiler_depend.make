# Empty compiler generated dependencies file for routplace.
# This may be replaced when dependencies are built.
