file(REMOVE_RECURSE
  "CMakeFiles/routplace.dir/__/tools/routplace_main.cpp.o"
  "CMakeFiles/routplace.dir/__/tools/routplace_main.cpp.o.d"
  "routplace"
  "routplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
