file(REMOVE_RECURSE
  "CMakeFiles/rp_core.dir/channels.cpp.o"
  "CMakeFiles/rp_core.dir/channels.cpp.o.d"
  "CMakeFiles/rp_core.dir/cli.cpp.o"
  "CMakeFiles/rp_core.dir/cli.cpp.o.d"
  "CMakeFiles/rp_core.dir/flow.cpp.o"
  "CMakeFiles/rp_core.dir/flow.cpp.o.d"
  "CMakeFiles/rp_core.dir/global_placer.cpp.o"
  "CMakeFiles/rp_core.dir/global_placer.cpp.o.d"
  "CMakeFiles/rp_core.dir/inflation.cpp.o"
  "CMakeFiles/rp_core.dir/inflation.cpp.o.d"
  "CMakeFiles/rp_core.dir/report.cpp.o"
  "CMakeFiles/rp_core.dir/report.cpp.o.d"
  "librp_core.a"
  "librp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
