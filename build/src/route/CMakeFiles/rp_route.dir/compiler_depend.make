# Empty compiler generated dependencies file for rp_route.
# This may be replaced when dependencies are built.
