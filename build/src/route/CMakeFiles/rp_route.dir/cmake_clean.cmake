file(REMOVE_RECURSE
  "CMakeFiles/rp_route.dir/estimator.cpp.o"
  "CMakeFiles/rp_route.dir/estimator.cpp.o.d"
  "CMakeFiles/rp_route.dir/metrics.cpp.o"
  "CMakeFiles/rp_route.dir/metrics.cpp.o.d"
  "CMakeFiles/rp_route.dir/routegrid.cpp.o"
  "CMakeFiles/rp_route.dir/routegrid.cpp.o.d"
  "CMakeFiles/rp_route.dir/router.cpp.o"
  "CMakeFiles/rp_route.dir/router.cpp.o.d"
  "librp_route.a"
  "librp_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
