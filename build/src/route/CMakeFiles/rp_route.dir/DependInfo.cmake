
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/estimator.cpp" "src/route/CMakeFiles/rp_route.dir/estimator.cpp.o" "gcc" "src/route/CMakeFiles/rp_route.dir/estimator.cpp.o.d"
  "/root/repo/src/route/metrics.cpp" "src/route/CMakeFiles/rp_route.dir/metrics.cpp.o" "gcc" "src/route/CMakeFiles/rp_route.dir/metrics.cpp.o.d"
  "/root/repo/src/route/routegrid.cpp" "src/route/CMakeFiles/rp_route.dir/routegrid.cpp.o" "gcc" "src/route/CMakeFiles/rp_route.dir/routegrid.cpp.o.d"
  "/root/repo/src/route/router.cpp" "src/route/CMakeFiles/rp_route.dir/router.cpp.o" "gcc" "src/route/CMakeFiles/rp_route.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/rp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
