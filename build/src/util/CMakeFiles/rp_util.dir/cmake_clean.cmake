file(REMOVE_RECURSE
  "CMakeFiles/rp_util.dir/logger.cpp.o"
  "CMakeFiles/rp_util.dir/logger.cpp.o.d"
  "CMakeFiles/rp_util.dir/str.cpp.o"
  "CMakeFiles/rp_util.dir/str.cpp.o.d"
  "CMakeFiles/rp_util.dir/timer.cpp.o"
  "CMakeFiles/rp_util.dir/timer.cpp.o.d"
  "librp_util.a"
  "librp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
