# Empty dependencies file for rp_cluster.
# This may be replaced when dependencies are built.
