file(REMOVE_RECURSE
  "CMakeFiles/rp_cluster.dir/multilevel.cpp.o"
  "CMakeFiles/rp_cluster.dir/multilevel.cpp.o.d"
  "librp_cluster.a"
  "librp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
