file(REMOVE_RECURSE
  "librp_cluster.a"
)
