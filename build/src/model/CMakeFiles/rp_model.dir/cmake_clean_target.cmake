file(REMOVE_RECURSE
  "librp_model.a"
)
