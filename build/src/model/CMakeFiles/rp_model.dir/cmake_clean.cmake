file(REMOVE_RECURSE
  "CMakeFiles/rp_model.dir/density.cpp.o"
  "CMakeFiles/rp_model.dir/density.cpp.o.d"
  "CMakeFiles/rp_model.dir/objective.cpp.o"
  "CMakeFiles/rp_model.dir/objective.cpp.o.d"
  "CMakeFiles/rp_model.dir/problem.cpp.o"
  "CMakeFiles/rp_model.dir/problem.cpp.o.d"
  "CMakeFiles/rp_model.dir/wirelength.cpp.o"
  "CMakeFiles/rp_model.dir/wirelength.cpp.o.d"
  "librp_model.a"
  "librp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
