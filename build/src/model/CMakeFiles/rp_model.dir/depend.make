# Empty dependencies file for rp_model.
# This may be replaced when dependencies are built.
