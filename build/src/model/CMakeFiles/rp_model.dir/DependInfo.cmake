
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/density.cpp" "src/model/CMakeFiles/rp_model.dir/density.cpp.o" "gcc" "src/model/CMakeFiles/rp_model.dir/density.cpp.o.d"
  "/root/repo/src/model/objective.cpp" "src/model/CMakeFiles/rp_model.dir/objective.cpp.o" "gcc" "src/model/CMakeFiles/rp_model.dir/objective.cpp.o.d"
  "/root/repo/src/model/problem.cpp" "src/model/CMakeFiles/rp_model.dir/problem.cpp.o" "gcc" "src/model/CMakeFiles/rp_model.dir/problem.cpp.o.d"
  "/root/repo/src/model/wirelength.cpp" "src/model/CMakeFiles/rp_model.dir/wirelength.cpp.o" "gcc" "src/model/CMakeFiles/rp_model.dir/wirelength.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/rp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
