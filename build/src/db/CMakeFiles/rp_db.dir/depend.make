# Empty dependencies file for rp_db.
# This may be replaced when dependencies are built.
