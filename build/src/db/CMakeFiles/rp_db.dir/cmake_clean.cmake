file(REMOVE_RECURSE
  "CMakeFiles/rp_db.dir/bookshelf.cpp.o"
  "CMakeFiles/rp_db.dir/bookshelf.cpp.o.d"
  "CMakeFiles/rp_db.dir/design.cpp.o"
  "CMakeFiles/rp_db.dir/design.cpp.o.d"
  "CMakeFiles/rp_db.dir/hierarchy.cpp.o"
  "CMakeFiles/rp_db.dir/hierarchy.cpp.o.d"
  "CMakeFiles/rp_db.dir/validate.cpp.o"
  "CMakeFiles/rp_db.dir/validate.cpp.o.d"
  "librp_db.a"
  "librp_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
