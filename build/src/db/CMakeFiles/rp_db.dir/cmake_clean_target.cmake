file(REMOVE_RECURSE
  "librp_db.a"
)
