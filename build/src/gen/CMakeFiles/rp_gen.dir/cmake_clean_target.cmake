file(REMOVE_RECURSE
  "librp_gen.a"
)
