# Empty dependencies file for rp_gen.
# This may be replaced when dependencies are built.
