file(REMOVE_RECURSE
  "CMakeFiles/rp_gen.dir/generator.cpp.o"
  "CMakeFiles/rp_gen.dir/generator.cpp.o.d"
  "CMakeFiles/rp_gen.dir/suite.cpp.o"
  "CMakeFiles/rp_gen.dir/suite.cpp.o.d"
  "librp_gen.a"
  "librp_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
