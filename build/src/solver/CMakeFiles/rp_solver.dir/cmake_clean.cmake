file(REMOVE_RECURSE
  "CMakeFiles/rp_solver.dir/cg.cpp.o"
  "CMakeFiles/rp_solver.dir/cg.cpp.o.d"
  "librp_solver.a"
  "librp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
