file(REMOVE_RECURSE
  "librp_solver.a"
)
