# Empty compiler generated dependencies file for rp_solver.
# This may be replaced when dependencies are built.
