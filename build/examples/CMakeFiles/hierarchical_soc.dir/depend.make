# Empty dependencies file for hierarchical_soc.
# This may be replaced when dependencies are built.
