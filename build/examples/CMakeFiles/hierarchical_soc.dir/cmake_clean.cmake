file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_soc.dir/hierarchical_soc.cpp.o"
  "CMakeFiles/hierarchical_soc.dir/hierarchical_soc.cpp.o.d"
  "hierarchical_soc"
  "hierarchical_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
