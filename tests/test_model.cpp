// Placement models: PlaceProblem lowering, wirelength-model properties
// (bounds vs HPWL, monotone γ behaviour, finite-difference gradient checks),
// and the bell-shaped density model (conservation, capacity, gradients,
// overflow semantics).

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generator.hpp"
#include "model/density.hpp"
#include "model/objective.hpp"
#include "model/wirelength.hpp"
#include "util/logger.hpp"
#include "util/rng.hpp"

namespace rp {
namespace {

/// A small random problem: n movable unit-ish cells + 2 fixed pads, m nets.
PlaceProblem random_problem(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  PlaceProblem p;
  p.die = {0, 0, 100, 100};
  for (int i = 0; i < n; ++i) {
    PlaceNode nd;
    nd.w = 2 + rng.uniform() * 3;
    nd.h = 4;
    p.nodes.push_back(nd);
    p.x.push_back(rng.uniform(5, 95));
    p.y.push_back(rng.uniform(5, 95));
  }
  for (int i = 0; i < 2; ++i) {
    PlaceNode nd;
    nd.w = 2;
    nd.h = 2;
    nd.fixed = true;
    p.nodes.push_back(nd);
    p.x.push_back(i == 0 ? 1.0 : 99.0);
    p.y.push_back(i == 0 ? 1.0 : 99.0);
  }
  p.inflate.assign(p.nodes.size(), 1.0);
  for (int j = 0; j < m; ++j) {
    PlaceNet net;
    net.pin_begin = static_cast<int>(p.pins.size());
    const int deg = 2 + static_cast<int>(rng.below(4));
    for (int k = 0; k < deg; ++k) {
      PlacePin pin;
      pin.node = static_cast<int>(rng.below(static_cast<std::uint64_t>(n + 2)));
      pin.ox = rng.uniform(-1, 1);
      pin.oy = rng.uniform(-1, 1);
      p.pins.push_back(pin);
    }
    net.pin_end = static_cast<int>(p.pins.size());
    p.nets.push_back(net);
  }
  p.validate();
  return p;
}

TEST(PlaceProblem, MakeFromDesignRoundTrip) {
  Logger::set_level(LogLevel::Warn);
  const Design d = generate_benchmark(tiny_spec(3));
  PlaceProblem p = make_problem(d);
  EXPECT_EQ(p.num_nodes(), d.num_cells());
  EXPECT_EQ(p.num_nets(), d.num_nets());
  EXPECT_EQ(static_cast<int>(p.pins.size()), d.num_pins());
  EXPECT_NEAR(p.hpwl(), d.hpwl(), 1e-6 * std::max(1.0, d.hpwl()));
  EXPECT_NEAR(p.movable_area(), d.total_movable_area(), 1e-9);

  // apply_solution writes centers back (fixed nodes are skipped on both
  // sides, so only shift movable ones).
  Design d2 = generate_benchmark(tiny_spec(3));
  for (int v = 0; v < p.num_nodes(); ++v)
    if (!p.nodes[static_cast<std::size_t>(v)].fixed) p.x[static_cast<std::size_t>(v)] += 1.0;
  apply_solution(p, d2);
  PlaceProblem p2 = make_problem(d2);
  EXPECT_NEAR(p2.hpwl(), p.hpwl(), 1e-6 * std::max(1.0, p.hpwl()));
}

TEST(PlaceProblem, ClampKeepsNodesInside) {
  PlaceProblem p = random_problem(10, 5, 1);
  p.x[0] = -50;
  p.y[1] = 500;
  p.clamp_to_die();
  for (int v = 0; v < p.num_nodes(); ++v) {
    if (p.nodes[static_cast<std::size_t>(v)].fixed) continue;
    EXPECT_GE(p.x[static_cast<std::size_t>(v)],
              p.die.lx + p.nodes[static_cast<std::size_t>(v)].w / 2 - 1e-9);
    EXPECT_LE(p.x[static_cast<std::size_t>(v)],
              p.die.hx - p.nodes[static_cast<std::size_t>(v)].w / 2 + 1e-9);
  }
}

TEST(PlaceProblem, ValidateCatchesBadPin) {
  PlaceProblem p = random_problem(4, 2, 1);
  p.pins[0].node = 99;
  EXPECT_THROW(p.validate(), std::runtime_error);
}

// ---------------- wirelength models ----------------

TEST(Wirelength, LseOverestimatesWaUnderestimates) {
  const PlaceProblem p = random_problem(30, 40, 2);
  const double hp = p.hpwl();
  for (const double gamma : {0.5, 2.0, 8.0}) {
    LseWirelength lse(gamma);
    WaWirelength wa(gamma);
    EXPECT_GE(lse.value(p), hp - 1e-9) << "gamma=" << gamma;
    EXPECT_LE(wa.value(p), hp + 1e-9) << "gamma=" << gamma;
  }
}

TEST(Wirelength, ConvergeToHpwlAsGammaShrinks) {
  const PlaceProblem p = random_problem(20, 25, 3);
  const double hp = p.hpwl();
  const double lse_err_big = std::abs(LseWirelength(8.0).value(p) - hp);
  const double lse_err_small = std::abs(LseWirelength(0.25).value(p) - hp);
  EXPECT_LT(lse_err_small, lse_err_big);
  EXPECT_NEAR(LseWirelength(0.05).value(p), hp, 0.02 * hp);
  EXPECT_NEAR(WaWirelength(0.05).value(p), hp, 0.02 * hp);
}

TEST(Wirelength, WaTighterThanLse) {
  // |WA - HPWL| <= |LSE - HPWL| summed over random instances at equal γ
  // (the paper-series' theoretical claim, checked empirically).
  double wa_err = 0, lse_err = 0;
  for (int t = 0; t < 10; ++t) {
    const PlaceProblem p = random_problem(20, 30, 100 + t);
    const double hp = p.hpwl();
    wa_err += std::abs(WaWirelength(4.0).value(p) - hp);
    lse_err += std::abs(LseWirelength(4.0).value(p) - hp);
  }
  EXPECT_LT(wa_err, lse_err);
}

/// Central finite-difference check of dWL/dx for a few random coordinates.
void check_gradient(const WirelengthModel& m, PlaceProblem p, double tol) {
  std::vector<double> gx(p.nodes.size(), 0.0), gy(p.nodes.size(), 0.0);
  m.eval(p, gx, gy);
  Rng rng(7);
  const double h = 1e-5;
  for (int t = 0; t < 12; ++t) {
    const int v = static_cast<int>(rng.below(p.nodes.size()));
    auto& x = p.x[static_cast<std::size_t>(v)];
    const double x0 = x;
    x = x0 + h;
    const double fp = m.value(p);
    x = x0 - h;
    const double fm = m.value(p);
    x = x0;
    const double fd = (fp - fm) / (2 * h);
    EXPECT_NEAR(gx[static_cast<std::size_t>(v)], fd, tol * std::max(1.0, std::abs(fd)))
        << "node " << v;
  }
}

TEST(Wirelength, LseGradientMatchesFiniteDifference) {
  check_gradient(LseWirelength(2.0), random_problem(15, 20, 4), 1e-4);
}

TEST(Wirelength, WaGradientMatchesFiniteDifference) {
  check_gradient(WaWirelength(2.0), random_problem(15, 20, 4), 1e-4);
}

TEST(Wirelength, GradientZeroSumPerNet) {
  // Translating all pins together does not change WL: per-net gradients sum
  // to ~0, hence total gradient of any model sums to ~0 when every node is
  // on some net.
  const PlaceProblem p = random_problem(10, 12, 5);
  for (const char* name : {"LSE", "WA"}) {
    const auto m = make_wirelength_model(name, 3.0);
    std::vector<double> gx(p.nodes.size(), 0.0), gy(p.nodes.size(), 0.0);
    m->eval(p, gx, gy);
    double sx = 0, sy = 0;
    for (std::size_t i = 0; i < gx.size(); ++i) {
      sx += gx[i];
      sy += gy[i];
    }
    EXPECT_NEAR(sx, 0.0, 1e-9) << name;
    EXPECT_NEAR(sy, 0.0, 1e-9) << name;
  }
}

TEST(Wirelength, NumericalStabilityHugeCoordinates) {
  PlaceProblem p = random_problem(10, 12, 6);
  for (auto& x : p.x) x *= 1e4;  // die-like magnitudes vs tiny gamma
  p.die = {0, 0, 1e6, 100};
  LseWirelength lse(0.01);
  WaWirelength wa(0.01);
  EXPECT_TRUE(std::isfinite(lse.value(p)));
  EXPECT_TRUE(std::isfinite(wa.value(p)));
}

TEST(Wirelength, FactoryRejectsUnknown) {
  EXPECT_THROW(make_wirelength_model("bogus", 1.0), std::runtime_error);
  EXPECT_EQ(make_wirelength_model("wa", 2.0)->name(), "WA");
  EXPECT_EQ(make_wirelength_model("LSE", 2.0)->name(), "LSE");
}

// ---------------- density model ----------------

TEST(Density, AutoBinCountPowersOfTwo) {
  EXPECT_EQ(auto_bin_count(1), 8);
  EXPECT_EQ(auto_bin_count(100), 16);     // sqrt=10 -> 16
  EXPECT_EQ(auto_bin_count(10000), 128);  // sqrt=100 -> 128
  EXPECT_LE(auto_bin_count(100000000), 1024);
}

TEST(Density, UniformPlacementHasNoOverflow) {
  // Cells spread perfectly on a grid, low utilization: zero overflow.
  PlaceProblem p;
  p.die = {0, 0, 80, 80};
  for (int i = 0; i < 64; ++i) {
    PlaceNode nd;
    nd.w = 2;
    nd.h = 2;
    p.nodes.push_back(nd);
    p.x.push_back(5.0 + (i % 8) * 10.0);
    p.y.push_back(5.0 + (i / 8) * 10.0);
  }
  p.inflate.assign(p.nodes.size(), 1.0);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 8;
  DensityModel dm(p, cfg);
  EXPECT_NEAR(dm.overflow(p), 0.0, 1e-12);
}

TEST(Density, StackedPlacementOverflows) {
  PlaceProblem p;
  p.die = {0, 0, 80, 80};
  for (int i = 0; i < 64; ++i) {
    PlaceNode nd;
    nd.w = 4;
    nd.h = 4;
    p.nodes.push_back(nd);
    p.x.push_back(40.0);
    p.y.push_back(40.0);
  }
  p.inflate.assign(p.nodes.size(), 1.0);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 8;
  DensityModel dm(p, cfg);
  // 64*16 = 1024 area piled onto the 4 central bins (4x100 capacity):
  // overflow = (1024 - 400) / 1024 ≈ 0.61.
  EXPECT_GT(dm.overflow(p), 0.55);
  std::vector<double> gx(p.nodes.size(), 0.0), gy(p.nodes.size(), 0.0);
  EXPECT_GT(dm.eval(p, gx, gy), 0.0);
}

TEST(Density, FixedObstaclesReduceCapacity) {
  PlaceProblem p;
  p.die = {0, 0, 80, 80};
  PlaceNode blk;
  blk.w = 40;
  blk.h = 80;
  blk.fixed = true;
  p.nodes.push_back(blk);
  p.x.push_back(20);  // covers left half entirely
  p.y.push_back(40);
  p.inflate.assign(1, 1.0);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 8;
  DensityModel dm(p, cfg);
  EXPECT_NEAR(dm.capacity()(0, 0), 0.0, 1e-9);
  EXPECT_NEAR(dm.capacity()(7, 7), dm.grid().bin_area(), 1e-9);
}

TEST(Density, CapacityScaleApplies) {
  PlaceProblem p = random_problem(10, 0, 8);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 8;
  DensityModel dm(p, cfg);
  const double before = dm.capacity()(3, 3);
  Grid2D<double> scale(8, 8, 1.0);
  scale(3, 3) = 0.25;
  dm.apply_capacity_scale(scale);
  EXPECT_NEAR(dm.capacity()(3, 3), 0.25 * before, 1e-9);
}

TEST(Density, PenaltyFallsWhenClusterSplits) {
  // Fifty 4x4 cells piled at the center clearly exceed the smoothed bin
  // capacity; splitting them into two clusters must lower the penalty.
  PlaceProblem p;
  p.die = {0, 0, 40, 40};
  for (int i = 0; i < 50; ++i) {
    PlaceNode nd;
    nd.w = 4;
    nd.h = 4;
    p.nodes.push_back(nd);
    p.x.push_back(20);
    p.y.push_back(20);
  }
  p.inflate.assign(p.nodes.size(), 1.0);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 8;
  DensityModel dm(p, cfg);
  std::vector<double> gx(p.nodes.size(), 0.0), gy(p.nodes.size(), 0.0);
  const double pen0 = dm.eval(p, gx, gy);
  EXPECT_GT(pen0, 0.0);
  for (int i = 0; i < 50; ++i) p.x[static_cast<std::size_t>(i)] = i < 25 ? 10.0 : 30.0;
  std::fill(gx.begin(), gx.end(), 0.0);
  std::fill(gy.begin(), gy.end(), 0.0);
  const double pen1 = dm.eval(p, gx, gy);
  EXPECT_LT(pen1, pen0);
}

TEST(Density, GradientMatchesFiniteDifference) {
  PlaceProblem p = random_problem(12, 0, 9);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 16;
  DensityModel dm(p, cfg);
  std::vector<double> gx(p.nodes.size(), 0.0), gy(p.nodes.size(), 0.0);
  dm.eval(p, gx, gy);
  const double h = 1e-5;
  Rng rng(4);
  for (int t = 0; t < 8; ++t) {
    const int v = static_cast<int>(rng.below(12));
    auto& x = p.x[static_cast<std::size_t>(v)];
    const double x0 = x;
    std::vector<double> dummy1(p.nodes.size()), dummy2(p.nodes.size());
    x = x0 + h;
    std::fill(dummy1.begin(), dummy1.end(), 0.0);
    std::fill(dummy2.begin(), dummy2.end(), 0.0);
    const double fp = dm.eval(p, dummy1, dummy2);
    x = x0 - h;
    std::fill(dummy1.begin(), dummy1.end(), 0.0);
    std::fill(dummy2.begin(), dummy2.end(), 0.0);
    const double fm = dm.eval(p, dummy1, dummy2);
    x = x0;
    const double fd = (fp - fm) / (2 * h);
    // The per-node normalization c_v is treated as a constant in the
    // analytic gradient (standard), so allow a few % slack.
    EXPECT_NEAR(gx[static_cast<std::size_t>(v)], fd,
                0.05 * std::max(1.0, std::abs(fd)) + 1e-6)
        << "node " << v;
  }
}

TEST(Density, InflationIncreasesOverflow) {
  PlaceProblem p = random_problem(40, 0, 10);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 8;
  DensityModel dm(p, cfg);
  const double base = dm.overflow(p);
  for (auto& f : p.inflate) f = 2.0;
  EXPECT_GE(dm.overflow(p), base);
}

// ---------------- objective ----------------

TEST(Objective, PackUnpackRoundTrip) {
  PlaceProblem p = random_problem(9, 10, 11);
  WaWirelength wl(2.0);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 8;
  DensityModel dm(p, cfg);
  PlacementObjective obj(p, wl, dm);
  EXPECT_EQ(obj.dim(), 18);  // 9 movable nodes (2 fixed excluded)
  auto z = obj.pack();
  z[0] += 3.0;
  obj.unpack(z);
  EXPECT_NEAR(p.x[static_cast<std::size_t>(obj.movable()[0])], z[0], 1e-12);
}

TEST(Objective, LambdaZeroIsPureWirelength) {
  PlaceProblem p = random_problem(9, 10, 12);
  WaWirelength wl(2.0);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 8;
  DensityModel dm(p, cfg);
  PlacementObjective obj(p, wl, dm);
  auto z = obj.pack();
  std::vector<double> g(z.size());
  const double f = obj.eval(z, g);
  EXPECT_NEAR(f, wl.value(p), 1e-9);
}

TEST(Objective, BalancedLambdaEquatesGradientNorms) {
  PlaceProblem p = random_problem(30, 40, 13);
  WaWirelength wl(2.0);
  DensityConfig cfg;
  cfg.nx = cfg.ny = 8;
  DensityModel dm(p, cfg);
  PlacementObjective obj(p, wl, dm);
  const double lam = obj.balanced_lambda();
  EXPECT_GT(lam, 0.0);
  EXPECT_TRUE(std::isfinite(lam));
}

}  // namespace
}  // namespace rp
