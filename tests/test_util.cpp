// Unit & property tests for the util substrate: geometry, RNG, grids,
// prefix sums, strings, timers, JSON, logging.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>

#include "util/geometry.hpp"
#include "util/grid.hpp"
#include "util/json.hpp"
#include "util/logger.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/timer.hpp"

namespace rp {
namespace {

// ---------------- geometry ----------------

TEST(Geometry, PointArithmetic) {
  const Point a{1, 2}, b{3, 5};
  EXPECT_EQ((a + b), (Point{4, 7}));
  EXPECT_EQ((b - a), (Point{2, 3}));
  EXPECT_EQ((a * 2.0), (Point{2, 4}));
  EXPECT_DOUBLE_EQ(manhattan(a, b), 5.0);
  EXPECT_DOUBLE_EQ(dist2(a, b), 13.0);
}

TEST(Geometry, IntervalBasics) {
  const Interval i{2, 6};
  EXPECT_DOUBLE_EQ(i.length(), 4.0);
  EXPECT_TRUE(i.contains(2.0));
  EXPECT_TRUE(i.contains(6.0));
  EXPECT_FALSE(i.contains(6.5));
  EXPECT_DOUBLE_EQ(i.overlap({4, 10}), 2.0);
  EXPECT_DOUBLE_EQ(i.overlap({7, 10}), 0.0);
  EXPECT_DOUBLE_EQ(i.clamp(0.0), 2.0);
  EXPECT_DOUBLE_EQ(i.clamp(9.0), 6.0);
  EXPECT_TRUE((Interval{3, 3}).empty());
}

TEST(Geometry, RectBasics) {
  const Rect r{0, 0, 4, 3};
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), (Point{2, 1.5}));
  EXPECT_TRUE(r.contains(Point{4, 3}));
  EXPECT_FALSE(r.contains(Point{4.01, 3}));
  EXPECT_TRUE(r.contains(Rect{1, 1, 2, 2}));
  EXPECT_FALSE(r.contains(Rect{1, 1, 5, 2}));
}

TEST(Geometry, RectOverlapIsStrict) {
  const Rect a{0, 0, 2, 2};
  const Rect b{2, 0, 4, 2};  // touching edge
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 0.0);
  const Rect c{1, 1, 3, 3};
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_DOUBLE_EQ(a.overlap_area(c), 1.0);
}

TEST(Geometry, RectCoverAndIntersect) {
  const Rect a{0, 0, 2, 2}, b{1, -1, 3, 1};
  EXPECT_EQ(a.cover(b), (Rect{0, -1, 3, 2}));
  EXPECT_EQ(a.intersect(b), (Rect{1, 0, 2, 1}));
  EXPECT_EQ(Rect::empty_bbox().cover(a), a);
}

TEST(Geometry, RectExpandShift) {
  const Rect a{1, 1, 3, 3};
  EXPECT_EQ(a.expand(1), (Rect{0, 0, 4, 4}));
  EXPECT_EQ(a.shifted(2, -1), (Rect{3, 0, 5, 2}));
}

TEST(Geometry, BBoxHalfPerimeter) {
  BBox bb;
  EXPECT_TRUE(bb.empty());
  EXPECT_DOUBLE_EQ(bb.half_perimeter(), 0.0);
  bb.add({0, 0});
  bb.add({3, 4});
  bb.add({1, 1});
  EXPECT_DOUBLE_EQ(bb.half_perimeter(), 7.0);
}

// ---------------- rng ----------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, RangeInclusive) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  r.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng r(23);
  Rng c1 = r.split();
  Rng c2 = r.split();
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

// ---------------- grid ----------------

TEST(Grid2D, BasicAccess) {
  Grid2D<int> g(3, 2, 5);
  EXPECT_EQ(g.nx(), 3);
  EXPECT_EQ(g.ny(), 2);
  EXPECT_EQ(g.at(2, 1), 5);
  g.at(1, 0) = 9;
  EXPECT_EQ(g(1, 0), 9);
  g.fill(0);
  EXPECT_EQ(g(1, 0), 0);
}

TEST(GridMap, IndexOfCoordinates) {
  GridMap m(Rect{0, 0, 100, 50}, 10, 5);
  EXPECT_DOUBLE_EQ(m.bin_w(), 10.0);
  EXPECT_DOUBLE_EQ(m.bin_h(), 10.0);
  EXPECT_EQ(m.ix_of(0.0), 0);
  EXPECT_EQ(m.ix_of(9.99), 0);
  EXPECT_EQ(m.ix_of(10.0), 1);
  EXPECT_EQ(m.ix_of(99.99), 9);
  EXPECT_EQ(m.ix_of(150.0), 9);   // clamped
  EXPECT_EQ(m.iy_of(-5.0), 0);    // clamped
}

TEST(GridMap, BinRectRoundTrip) {
  GridMap m(Rect{10, 20, 110, 120}, 4, 4);
  const Rect r = m.bin_rect(1, 2);
  EXPECT_EQ(m.ix_of(r.center().x), 1);
  EXPECT_EQ(m.iy_of(r.center().y), 2);
}

TEST(GridMap, RasterizeConservesArea) {
  GridMap m(Rect{0, 0, 64, 64}, 8, 8);
  const Rect r{3.5, 10.25, 27.75, 30.5};
  double total = 0.0;
  m.rasterize(r, [&](int, int, double a) { total += a; });
  EXPECT_NEAR(total, r.area(), 1e-9);
}

TEST(GridMap, RasterizeClipsToDie) {
  GridMap m(Rect{0, 0, 10, 10}, 2, 2);
  const Rect r{-5, -5, 5, 5};
  double total = 0.0;
  m.rasterize(r, [&](int, int, double a) { total += a; });
  EXPECT_NEAR(total, 25.0, 1e-9);  // only the on-die quarter
}

TEST(PrefixSum2D, MatchesBruteForce) {
  Rng rng(31);
  Grid2D<double> g(13, 9);
  for (int iy = 0; iy < 9; ++iy)
    for (int ix = 0; ix < 13; ++ix) g(ix, iy) = rng.uniform();
  PrefixSum2D ps(g);
  for (int trial = 0; trial < 50; ++trial) {
    int x0 = static_cast<int>(rng.below(13)), x1 = static_cast<int>(rng.below(13));
    int y0 = static_cast<int>(rng.below(9)), y1 = static_cast<int>(rng.below(9));
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    double brute = 0.0;
    for (int iy = y0; iy <= y1; ++iy)
      for (int ix = x0; ix <= x1; ++ix) brute += g(ix, iy);
    EXPECT_NEAR(ps.sum(x0, y0, x1, y1), brute, 1e-9);
  }
}

TEST(PrefixSum2D, OutOfRangeClamps) {
  Grid2D<double> g(2, 2, 1.0);
  PrefixSum2D ps(g);
  EXPECT_DOUBLE_EQ(ps.sum(-5, -5, 10, 10), 4.0);
  EXPECT_DOUBLE_EQ(ps.sum(3, 3, 5, 5), 0.0);
}

// ---------------- str ----------------

TEST(Str, TrimAndSplit) {
  EXPECT_EQ(trim("  a b \t\r\n"), "a b");
  EXPECT_EQ(trim(""), "");
  const auto t = split("  a\tbb  c ", " \t");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "c");
}

TEST(Str, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("a.nodes", ".nodes"));
  EXPECT_FALSE(ends_with("nodes", ".nodes"));
}

TEST(Str, IEquals) {
  EXPECT_TRUE(iequals("NumNodes", "numnodes"));
  EXPECT_FALSE(iequals("NumNodes", "numnode"));
}

TEST(Str, Numbers) {
  EXPECT_DOUBLE_EQ(to_double(" 3.5 "), 3.5);
  EXPECT_EQ(to_long("-42"), -42);
  EXPECT_THROW(to_double("abc"), std::runtime_error);
  EXPECT_THROW(to_long("1.5"), std::runtime_error);
}

TEST(Str, HierComponents) {
  const auto c = hier_components("top/alu0/add/u1");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0], "top");
  EXPECT_EQ(c[3], "u1");
  EXPECT_TRUE(hier_components("").empty());
  EXPECT_EQ(hier_components("flat").size(), 1u);
}

TEST(Str, CommonPrefixDepth) {
  EXPECT_EQ(common_prefix_depth("a/b/c", "a/b/d"), 2);
  EXPECT_EQ(common_prefix_depth("a/b/c", "a/x/d"), 1);
  EXPECT_EQ(common_prefix_depth("a", "a"), 0);       // leaves only
  EXPECT_EQ(common_prefix_depth("x/c", "y/c"), 0);
}

// ---------------- json ----------------

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string_view("nul\x01", 4)), "nul\\u0001");
}

TEST(Json, WriterProducesWellFormedDocument) {
  JsonWriter w;
  w.begin_object();
  w.kv("name", "de\"sign\n");
  w.kv("count", 42);
  w.kv("ratio", 0.125);
  w.kv("flag", true);
  w.key("none").null();
  w.key("list").begin_array().value(1).value(2).value(3).end_array();
  w.key("nested").begin_object().kv("x", -7).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"de\\\"sign\\n\",\"count\":42,\"ratio\":0.125,\"flag\":true,"
            "\"none\":null,\"list\":[1,2,3],\"nested\":{\"x\":-7}}");
}

TEST(Json, WriterRoundTripsThroughParser) {
  JsonWriter w(2);  // pretty-printing must not change the parsed value
  w.begin_object();
  w.kv("str", "line1\nline2\t\"quoted\" \\ done");
  w.kv("big", 6.02214076e23);
  w.kv("tiny", -1.5e-300);
  w.kv("neg", std::int64_t{-9007199254740993});
  w.key("arr").begin_array().value(false).null().value("x").end_array();
  w.end_object();

  const JsonValue v = json_parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("str").str, "line1\nline2\t\"quoted\" \\ done");
  EXPECT_DOUBLE_EQ(v.at("big").num, 6.02214076e23);
  EXPECT_DOUBLE_EQ(v.at("tiny").num, -1.5e-300);
  EXPECT_DOUBLE_EQ(v.at("neg").num, -9007199254740993.0);
  ASSERT_EQ(v.at("arr").arr.size(), 3u);
  EXPECT_EQ(v.at("arr").arr[0].kind, JsonValue::Kind::Bool);
  EXPECT_TRUE(v.at("arr").arr[1].is_null());
  EXPECT_EQ(v.at("arr").arr[2].str, "x");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  const JsonValue v = json_parse(w.str());
  ASSERT_EQ(v.arr.size(), 2u);
  EXPECT_TRUE(v.arr[0].is_null());
  EXPECT_TRUE(v.arr[1].is_null());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(json_parse("{"), std::runtime_error);
  EXPECT_THROW(json_parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(json_parse("[1,2] trailing"), std::runtime_error);
  EXPECT_THROW(json_parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json_parse("nul"), std::runtime_error);
}

TEST(Json, ParserHandlesUnicodeEscapes) {
  const JsonValue v = json_parse("\"a\\u00e9\\u0041\"");
  EXPECT_EQ(v.str, "a\xc3\xa9"  "A");
}

// ---------------- logger ----------------

TEST(Logger, EnvVarOverridesSetLevel) {
  const LogLevel before = Logger::level();
  setenv("RP_LOG_LEVEL", "error", 1);
  Logger::init_from_env();
  EXPECT_EQ(Logger::level(), LogLevel::Error);
  Logger::set_level(LogLevel::Debug);  // ignored while the override is active
  EXPECT_EQ(Logger::level(), LogLevel::Error);
  unsetenv("RP_LOG_LEVEL");
  Logger::init_from_env();
  Logger::set_level(before);  // override released: programmatic control again
  EXPECT_EQ(Logger::level(), before);
}

TEST(Logger, EnvVarAcceptsNumericLevels) {
  setenv("RP_LOG_LEVEL", "4", 1);
  Logger::init_from_env();
  EXPECT_EQ(Logger::level(), LogLevel::Silent);
  unsetenv("RP_LOG_LEVEL");
  Logger::init_from_env();
  Logger::set_level(LogLevel::Error);  // quiet for the rest of the suite
}

// ---------------- timer ----------------

TEST(StageTimes, AccumulatesByName) {
  StageTimes st;
  st.add("gp", 1.5);
  st.add("legal", 0.5);
  st.add("gp", 0.5);
  EXPECT_DOUBLE_EQ(st.get("gp"), 2.0);
  EXPECT_DOUBLE_EQ(st.get("legal"), 0.5);
  EXPECT_DOUBLE_EQ(st.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(st.total(), 2.5);
  EXPECT_NE(st.report().find("gp"), std::string::npos);
}

TEST(StageTimes, NestedScopedStagesComposePaths) {
  StageTimes st;
  {
    ScopedStage outer(st, "gp");
    {
      ScopedStage inner(st, "level2");
      ScopedStage leaf(st, "solve");
    }
  }
  EXPECT_GT(st.get("gp"), 0.0);
  EXPECT_GT(st.get("gp/level2"), 0.0);
  EXPECT_GT(st.get("gp/level2/solve"), 0.0);
  EXPECT_DOUBLE_EQ(st.get("level2"), 0.0);  // only the full path is recorded
  // Children are inside their parents: the roots-only total is the gp time.
  EXPECT_DOUBLE_EQ(st.total(), st.get("gp"));
  EXPECT_GE(st.get("gp"), st.get("gp/level2"));
}

TEST(StageTimes, TreeReportIndentsChildren) {
  StageTimes st;
  st.add("gp", 2.0);
  st.add("gp/level1", 1.5);
  st.add("gp/level1/solve", 1.0);
  st.add("legal", 0.5);
  const std::string rep = st.report();
  EXPECT_NE(rep.find("gp"), std::string::npos);
  EXPECT_NE(rep.find("\n  level1"), std::string::npos);
  EXPECT_NE(rep.find("\n    solve"), std::string::npos);
  EXPECT_NE(rep.find("total"), std::string::npos);
  // Flat total counts roots only — no double counting of nested time.
  EXPECT_DOUBLE_EQ(st.total(), 2.5);
}

TEST(StageTimes, ImplicitParentSumsChildren) {
  StageTimes st;
  st.add("gp/levelA", 1.0);  // no explicit "gp" entry
  st.add("gp/levelB", 2.0);
  const std::string rep = st.report();
  EXPECT_NE(rep.find("gp"), std::string::npos);
  EXPECT_NE(rep.find("3.00s"), std::string::npos);  // synthesized parent sum
}

TEST(StageTimes, MergeSplicesUnderPrefix) {
  StageTimes inner;
  inner.add("clustering", 0.25);
  inner.add("level0", 1.0);
  StageTimes outer;
  outer.add("global", 1.5);
  outer.merge("global", inner);
  EXPECT_DOUBLE_EQ(outer.get("global/clustering"), 0.25);
  EXPECT_DOUBLE_EQ(outer.get("global/level0"), 1.0);
  EXPECT_DOUBLE_EQ(outer.total(), 1.5);
}

TEST(StageTimes, FlatReportKeepsLegacyShape) {
  StageTimes st;
  st.add("gp", 1.5);
  st.add("gp/level0", 1.0);
  const std::string flat = st.report_flat();
  EXPECT_NE(flat.find("gp=1.50s"), std::string::npos);
  EXPECT_EQ(flat.find("level0"), std::string::npos);
  EXPECT_NE(flat.find("total=1.50s"), std::string::npos);
}

TEST(Timer, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
}

// Parameterized property sweep: rasterization conserves area for many rect
// shapes and grid resolutions.
class RasterizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RasterizeSweep, AreaConserved) {
  const int bins = GetParam();
  GridMap m(Rect{0, 0, 97, 61}, bins, bins);
  Rng rng(1000 + bins);
  for (int i = 0; i < 40; ++i) {
    const double x0 = rng.uniform(0, 90), y0 = rng.uniform(0, 55);
    const Rect r{x0, y0, x0 + rng.uniform(0.01, 7), y0 + rng.uniform(0.01, 6)};
    double total = 0.0;
    m.rasterize(r, [&](int, int, double a) { total += a; });
    EXPECT_NEAR(total, r.intersect(m.die()).area(), 1e-9) << "bins=" << bins;
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, RasterizeSweep, ::testing::Values(1, 2, 3, 7, 16, 64));

}  // namespace
}  // namespace rp
