// util/parallel + model/netlist_csr: the determinism contract. Every test
// that matters here asserts BITWISE equality of kernel outputs across
// different pool sizes — the property the snapshot/report gates rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "gen/generator.hpp"
#include "model/density.hpp"
#include "model/netlist_csr.hpp"
#include "model/problem.hpp"
#include "model/wirelength.hpp"
#include "route/estimator.hpp"
#include "solver/cg.hpp"
#include "util/logger.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace rp {
namespace {

/// Restore the global pool size on scope exit so tests don't leak state.
struct PoolGuard {
  int saved = parallel::num_threads();
  ~PoolGuard() { parallel::set_num_threads(saved); }
};

TEST(ChunkPlan, CoversRangeWithoutOverlap) {
  for (const std::size_t n : {0UL, 1UL, 7UL, 64UL, 1000UL, 123457UL}) {
    const parallel::ChunkPlan plan = parallel::plan_chunks(n, 64);
    std::size_t covered = 0;
    for (int c = 0; c < plan.count; ++c) {
      EXPECT_EQ(plan.begin(c), covered);
      EXPECT_LE(plan.begin(c), plan.end(c));
      covered = plan.end(c);
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(ChunkPlan, IndependentOfThreadCount) {
  // The plan is a pure function of (n, grain, cap) — no thread-count input
  // even exists in the signature; pin the layout so a refactor that sneaks
  // one in breaks loudly.
  const parallel::ChunkPlan p = parallel::plan_chunks(1000, 100);
  EXPECT_EQ(p.count, 10);
  EXPECT_EQ(p.begin(0), 0u);
  EXPECT_EQ(p.end(9), 1000u);
  EXPECT_EQ(parallel::plan_chunks(50, 100).count, 1);
  EXPECT_EQ(parallel::plan_chunks(0, 100).count, 0);
  EXPECT_EQ(parallel::plan_chunks(1000000, 1, 64).count, 64);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  PoolGuard guard;
  for (const int threads : {1, 2, 4}) {
    parallel::set_num_threads(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel::parallel_for(hits.size(), 8, [&](std::size_t b, std::size_t e, int w) {
      EXPECT_GE(w, 0);
      EXPECT_LT(w, parallel::num_threads());
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReduceBitwiseIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  // Values with wildly different magnitudes, so association order matters.
  Rng rng(42);
  std::vector<double> v(100000);
  for (double& x : v) x = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-12.0, 12.0));

  const auto sum = [&] {
    return parallel::parallel_reduce(
        v.size(), 1024, 0.0,
        [&](std::size_t b, std::size_t e, int) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += v[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  parallel::set_num_threads(1);
  const double s1 = sum();
  for (const int threads : {2, 3, 8}) {
    parallel::set_num_threads(threads);
    for (int rep = 0; rep < 5; ++rep) {
      const double st = sum();
      EXPECT_EQ(std::memcmp(&s1, &st, sizeof s1), 0)
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(ThreadPool, NestedRegionsRunInline) {
  PoolGuard guard;
  parallel::set_num_threads(4);
  std::vector<double> out(64, 0.0);
  parallel::parallel_for(8, 1, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i)
      parallel::parallel_for(8, 1, [&](std::size_t b2, std::size_t e2, int) {
        for (std::size_t j = b2; j < e2; ++j) out[i * 8 + j] = static_cast<double>(i * 8 + j);
      });
  });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<double>(i));
}

PlaceProblem test_problem() {
  Logger::set_level(LogLevel::Error);
  BenchmarkSpec spec = small_spec(17);
  spec.num_std_cells = 600;
  return make_problem(generate_benchmark(spec));
}

TEST(NetlistCsr, MatchesProblemStructure) {
  const PlaceProblem p = test_problem();
  const NetlistCsr c = NetlistCsr::from_problem(p);
  ASSERT_EQ(c.num_nets, p.num_nets());
  ASSERT_EQ(c.num_pins, static_cast<int>(p.pins.size()));
  for (int n = 0; n < c.num_nets; ++n) {
    EXPECT_EQ(c.net_offset[static_cast<std::size_t>(n)], p.nets[static_cast<std::size_t>(n)].pin_begin);
    EXPECT_EQ(c.net_degree(n), p.nets[static_cast<std::size_t>(n)].degree());
  }
  // node->pin incidence: every pin appears exactly once, under its node,
  // in ascending pin order.
  std::vector<int> seen(static_cast<std::size_t>(c.num_pins), 0);
  for (int v = 0; v < c.num_nodes; ++v) {
    int prev = -1;
    for (int k = c.node_pin_offset[static_cast<std::size_t>(v)];
         k < c.node_pin_offset[static_cast<std::size_t>(v) + 1]; ++k) {
      const int pin = c.node_pin[static_cast<std::size_t>(k)];
      EXPECT_GT(pin, prev) << "pins not ascending for node " << v;
      prev = pin;
      EXPECT_EQ(c.pin_node[static_cast<std::size_t>(pin)], v);
      ++seen[static_cast<std::size_t>(pin)];
    }
  }
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(NetlistCsr, DesignGatherMatchesPinPos) {
  Logger::set_level(LogLevel::Error);
  const Design d = generate_benchmark(small_spec(23));
  NetlistCsr c = NetlistCsr::from_design(d);
  c.gather_coords(d);
  int i = 0;
  for (NetId n = 0; n < d.num_nets(); ++n)
    for (const PinId pid : d.net(n).pins) {
      const Point pos = d.pin_pos(pid);
      EXPECT_EQ(c.pin_cx[static_cast<std::size_t>(i)], pos.x);
      EXPECT_EQ(c.pin_cy[static_cast<std::size_t>(i)], pos.y);
      ++i;
    }
  EXPECT_EQ(i, c.num_pins);
}

/// Evaluate a kernel at several pool widths and require bit-identical
/// value + gradients.
template <typename EvalFn>
void expect_bitwise_across_threads(const EvalFn& eval_at) {
  PoolGuard guard;
  parallel::set_num_threads(1);
  const auto [v1, gx1, gy1] = eval_at();
  for (const int threads : {2, 4, 7}) {
    parallel::set_num_threads(threads);
    const auto [vt, gxt, gyt] = eval_at();
    EXPECT_EQ(std::memcmp(&v1, &vt, sizeof v1), 0) << "value differs, threads=" << threads;
    ASSERT_EQ(gx1.size(), gxt.size());
    EXPECT_EQ(std::memcmp(gx1.data(), gxt.data(), gx1.size() * sizeof(double)), 0)
        << "gx differs, threads=" << threads;
    EXPECT_EQ(std::memcmp(gy1.data(), gyt.data(), gy1.size() * sizeof(double)), 0)
        << "gy differs, threads=" << threads;
  }
}

TEST(ParallelKernels, WirelengthBitwiseAcrossThreads) {
  const PlaceProblem p = test_problem();
  for (const char* model : {"LSE", "WA"}) {
    const auto wl = make_wirelength_model(model, 4.0);
    expect_bitwise_across_threads([&] {
      std::vector<double> gx(p.nodes.size(), 0.0), gy(p.nodes.size(), 0.0);
      const double v = wl->eval(p, gx, gy);
      EXPECT_EQ(wl->value(p), v) << "value() != eval() value path";
      return std::tuple(v, gx, gy);
    });
  }
}

TEST(ParallelKernels, DensityBitwiseAcrossThreads) {
  const PlaceProblem p = test_problem();
  DensityConfig cfg;
  DensityModel dm(p, cfg);
  expect_bitwise_across_threads([&] {
    std::vector<double> gx(p.nodes.size(), 0.0), gy(p.nodes.size(), 0.0);
    const double v = dm.eval(p, gx, gy);
    return std::tuple(v, gx, gy);
  });
}

TEST(ParallelKernels, EstimatorBitwiseAcrossThreads) {
  PoolGuard guard;
  Logger::set_level(LogLevel::Error);
  const Design d = generate_benchmark(small_spec(31));
  parallel::set_num_threads(1);
  RoutingGrid g1(d, true);
  estimate_probabilistic(d, g1);
  for (const int threads : {2, 5}) {
    parallel::set_num_threads(threads);
    RoutingGrid gt(d, true);
    estimate_probabilistic(d, gt);
    EXPECT_EQ(std::memcmp(g1.h_use_grid().data().data(), gt.h_use_grid().data().data(),
                          g1.h_use_grid().size() * sizeof(double)), 0)
        << "h demand differs, threads=" << threads;
    EXPECT_EQ(std::memcmp(g1.v_use_grid().data().data(), gt.v_use_grid().data().data(),
                          g1.v_use_grid().size() * sizeof(double)), 0)
        << "v demand differs, threads=" << threads;
  }
}

TEST(ParallelKernels, CgBitwiseAcrossThreads) {
  PoolGuard guard;
  // A positive-definite quadratic large enough to leave the inline path.
  const std::size_t n = 20000;
  std::vector<double> target(n);
  Rng rng(9);
  for (double& t : target) t = rng.uniform(-5.0, 5.0);
  const CgObjective f = [&](std::span<const double> z, std::span<double> g) {
    double v = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = z[i] - target[i];
      g[i] = 2.0 * e;
      v += e * e;
    }
    return v;
  };
  CgOptions opt;
  opt.max_iters = 25;
  opt.trust_radius = 0.5;

  parallel::set_num_threads(1);
  std::vector<double> z1(n, 0.0);
  const CgResult r1 = minimize_cg(f, z1, opt);
  for (const int threads : {3, 6}) {
    parallel::set_num_threads(threads);
    std::vector<double> zt(n, 0.0);
    const CgResult rt = minimize_cg(f, zt, opt);
    EXPECT_EQ(r1.iters, rt.iters);
    EXPECT_EQ(std::memcmp(&r1.f, &rt.f, sizeof r1.f), 0);
    EXPECT_EQ(std::memcmp(z1.data(), zt.data(), n * sizeof(double)), 0)
        << "solution differs, threads=" << threads;
  }
}

TEST(ParallelKernels, WirelengthGradientMatchesFiniteDifference) {
  // The CSR/parallel rewrite must still be a correct gradient, not just a
  // deterministic one.
  PoolGuard guard;
  parallel::set_num_threads(3);
  PlaceProblem p = test_problem();
  const auto wl = make_wirelength_model("WA", 6.0);
  std::vector<double> gx(p.nodes.size(), 0.0), gy(p.nodes.size(), 0.0);
  wl->eval(p, gx, gy);
  const double h = 1e-5;
  int checked = 0;
  for (int v = 0; v < p.num_nodes() && checked < 5; ++v) {
    if (p.nodes[static_cast<std::size_t>(v)].fixed) continue;
    const double x0 = p.x[static_cast<std::size_t>(v)];
    p.x[static_cast<std::size_t>(v)] = x0 + h;
    const double fp = wl->value(p);
    p.x[static_cast<std::size_t>(v)] = x0 - h;
    const double fm = wl->value(p);
    p.x[static_cast<std::size_t>(v)] = x0;
    const double fd = (fp - fm) / (2 * h);
    EXPECT_NEAR(gx[static_cast<std::size_t>(v)], fd,
                1e-4 * std::max(1.0, std::abs(fd)));
    ++checked;
  }
  EXPECT_EQ(checked, 5);
}

}  // namespace
}  // namespace rp
