// Tests for the telemetry layer: the counter/gauge registry (including its
// reset-between-runs contract), the trace-span buffer and its Chrome
// trace-event JSON serialization, and peak-RSS sampling.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/telemetry.hpp"

namespace rp {
namespace {

using telemetry::Registry;

TEST(TelemetryRegistry, CountersAccumulate) {
  Registry& reg = Registry::instance();
  reg.reset();
  RP_COUNT("test.alpha", 1);
  RP_COUNT("test.alpha", 2);
  RP_COUNT("test.beta", 5);
  EXPECT_EQ(reg.counter_value("test.alpha"), 3);
  EXPECT_EQ(reg.counter_value("test.beta"), 5);
  EXPECT_EQ(reg.counter_value("test.never_touched"), 0);
}

TEST(TelemetryRegistry, GaugesKeepLastValue) {
  Registry& reg = Registry::instance();
  reg.reset();
  RP_GAUGE("test.gauge", 1.5);
  RP_GAUGE("test.gauge", 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value("test.gauge"), 2.5);
}

TEST(TelemetryRegistry, ResetZeroesButKeepsSlotAddresses) {
  Registry& reg = Registry::instance();
  reg.reset();
  telemetry::Counter& slot = reg.counter("test.stable");
  slot.value = 7;
  RP_GAUGE("test.g", 3.0);
  reg.reset();
  EXPECT_EQ(reg.counter_value("test.stable"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("test.g"), 0.0);
  // The slot reference from before the reset still works — this is what
  // makes the RP_COUNT static-pointer caching safe across flow runs.
  slot.value += 4;
  EXPECT_EQ(reg.counter_value("test.stable"), 4);
}

TEST(TelemetryRegistry, SnapshotsAreNameSorted) {
  Registry& reg = Registry::instance();
  reg.reset();
  RP_COUNT("test.zz", 1);
  RP_COUNT("test.aa", 1);
  const auto snap = reg.counters();
  ASSERT_GE(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i) EXPECT_LT(snap[i - 1].first, snap[i].first);
}

TEST(TelemetryTrace, DisabledByDefaultAndSpansAreFree) {
  telemetry::stop_trace();
  EXPECT_FALSE(telemetry::trace_enabled());
  const std::size_t before = telemetry::trace_events().size();
  { RP_TRACE_SPAN("should_not_record"); }
  EXPECT_EQ(telemetry::trace_events().size(), before);
}

TEST(TelemetryTrace, SpansNestAndSerialize) {
  telemetry::start_trace();
  {
    RP_TRACE_SPAN("outer");
    {
      RP_TRACE_SPAN("inner");
    }
  }
  telemetry::stop_trace();

  const auto& events = telemetry::trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Children close first, so "inner" is recorded before "outer".
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  // Containment: inner's interval sits within outer's.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us + 1e-6);

  // The serialized buffer is valid Chrome trace-event JSON: the two spans
  // plus the lane-naming metadata rows (thread_name / thread_sort_index).
  const JsonValue doc = json_parse(telemetry::trace_json());
  ASSERT_TRUE(doc.is_object());
  const JsonValue& tev = doc.at("traceEvents");
  ASSERT_TRUE(tev.is_array());
  std::size_t spans = 0, meta = 0;
  for (const JsonValue& e : tev.arr) {
    EXPECT_TRUE(e.at("name").is_string());
    if (e.at("ph").str == "M") {
      ++meta;
      continue;
    }
    ++spans;
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_GE(e.at("dur").num, 0.0);
    EXPECT_EQ(e.at("tid").num, 0.0);  // main-thread spans ride lane 0
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_GE(meta, 1u);
}

TEST(TelemetryTrace, StartClearsPreviousBuffer) {
  telemetry::start_trace();
  { RP_TRACE_SPAN("first_session"); }
  telemetry::start_trace();
  { RP_TRACE_SPAN("second_session"); }
  telemetry::stop_trace();
  ASSERT_EQ(telemetry::trace_events().size(), 1u);
  EXPECT_EQ(telemetry::trace_events()[0].name, "second_session");
}

TEST(TelemetryTrace, WriteProducesParsableFile) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "rp_test_trace.json";
  telemetry::start_trace();
  { RP_TRACE_SPAN("span \"with\" quotes\n"); }
  telemetry::stop_trace();
  ASSERT_TRUE(telemetry::write_trace_json(path.string()));

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = json_parse(ss.str());
  bool found = false;
  for (const JsonValue& e : doc.at("traceEvents").arr)
    found = found || (e.at("ph").str == "X" &&
                      e.at("name").str == "span \"with\" quotes\n");
  EXPECT_TRUE(found);
  fs::remove(path);
}

TEST(TelemetryRss, PeakRssIsPositiveOnSupportedPlatforms) {
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_GT(telemetry::peak_rss_kb(), 0);
#else
  GTEST_SKIP() << "peak RSS not sampled on this platform";
#endif
}

}  // namespace
}  // namespace rp
