// Multilevel clustering: conservation invariants, fixed/region/macro
// exclusions, hierarchy-affinity behaviour, and projection.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/multilevel.hpp"
#include "gen/generator.hpp"
#include "util/logger.hpp"

namespace rp {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override { Logger::set_level(LogLevel::Error); }

  static ClusterOptions small_opts() {
    ClusterOptions o;
    o.target_nodes = 100;
    o.max_levels = 6;
    return o;
  }
};

double movable_area(const PlaceProblem& p) {
  double a = 0;
  for (const auto& n : p.nodes)
    if (!n.fixed) a += n.area();
  return a;
}

int movable_count(const PlaceProblem& p) {
  int c = 0;
  for (const auto& n : p.nodes)
    if (!n.fixed) ++c;
  return c;
}

TEST_F(ClusterTest, CoarsensTowardTarget) {
  const Design d = generate_benchmark(small_spec(41));
  Multilevel ml(d, small_opts());
  EXPECT_GE(ml.num_levels(), 3);
  EXPECT_LT(movable_count(ml.level(ml.top()).prob),
            movable_count(ml.level(0).prob) / 2);
}

TEST_F(ClusterTest, AreaConservedAcrossLevels) {
  const Design d = generate_benchmark(small_spec(41));
  Multilevel ml(d, small_opts());
  const double base = movable_area(ml.level(0).prob);
  for (int l = 1; l < ml.num_levels(); ++l) {
    EXPECT_NEAR(movable_area(ml.level(l).prob), base, 1e-6 * base) << "level " << l;
  }
}

TEST_F(ClusterTest, FixedNodesSurviveUnmerged) {
  const Design d = generate_benchmark(small_spec(41));
  Multilevel ml(d, small_opts());
  int fixed0 = 0;
  for (const auto& n : ml.level(0).prob.nodes)
    if (n.fixed) ++fixed0;
  for (int l = 1; l < ml.num_levels(); ++l) {
    int fl = 0;
    for (const auto& n : ml.level(l).prob.nodes)
      if (n.fixed) ++fl;
    EXPECT_EQ(fl, fixed0) << "level " << l;
  }
}

TEST_F(ClusterTest, MacrosNeverClustered) {
  const Design d = generate_benchmark(small_spec(41));
  Multilevel ml(d, small_opts());
  int m0 = 0;
  for (const auto& n : ml.level(0).prob.nodes)
    if (n.macro) ++m0;
  for (int l = 1; l < ml.num_levels(); ++l) {
    int m = 0;
    for (const auto& n : ml.level(l).prob.nodes)
      if (n.macro) ++m;
    EXPECT_EQ(m, m0) << "level " << l;
  }
}

TEST_F(ClusterTest, MappingIsConsistent) {
  const Design d = generate_benchmark(small_spec(41));
  Multilevel ml(d, small_opts());
  for (int l = 1; l < ml.num_levels(); ++l) {
    const auto& map = ml.level(l).fine_to_coarse;
    ASSERT_EQ(map.size(), ml.level(l - 1).prob.nodes.size()) << "level " << l;
    for (const int c : map) {
      ASSERT_GE(c, 0);
      ASSERT_LT(c, ml.level(l).prob.num_nodes());
    }
  }
}

TEST_F(ClusterTest, NoNetDegreeBelowTwo) {
  const Design d = generate_benchmark(small_spec(41));
  Multilevel ml(d, small_opts());
  for (int l = 0; l < ml.num_levels(); ++l) {
    for (const PlaceNet& n : ml.level(l).prob.nets) {
      EXPECT_GE(n.degree(), 2) << "level " << l;
    }
  }
}

TEST_F(ClusterTest, PinCountShrinks) {
  const Design d = generate_benchmark(small_spec(41));
  Multilevel ml(d, small_opts());
  for (int l = 1; l < ml.num_levels(); ++l) {
    EXPECT_LT(ml.level(l).prob.pins.size(), ml.level(l - 1).prob.pins.size())
        << "level " << l;
  }
}

TEST_F(ClusterTest, RegionsNeverMix) {
  BenchmarkSpec s = small_spec(42);
  s.num_fence_regions = 1;
  const Design d = generate_benchmark(s);
  ClusterOptions o = small_opts();
  Multilevel ml(d, o);
  // Every coarse node that any fenced fine node maps to must carry that
  // region id.
  for (int l = 1; l < ml.num_levels(); ++l) {
    const Level& fine = ml.level(l - 1);
    const Level& coarse = ml.level(l);
    for (int v = 0; v < fine.prob.num_nodes(); ++v) {
      const int cv = coarse.fine_to_coarse[static_cast<std::size_t>(v)];
      EXPECT_EQ(coarse.region[static_cast<std::size_t>(cv)],
                fine.region[static_cast<std::size_t>(v)])
          << "level " << l << " node " << v;
    }
  }
}

TEST_F(ClusterTest, HierarchyBonusIncreasesIntraModuleMerges) {
  // With the hierarchy bonus ON, a larger fraction of merges happen between
  // cells of the same module than with the bonus OFF.
  BenchmarkSpec s = small_spec(43);
  s.flat = false;
  const Design d = generate_benchmark(s);

  const auto intra_module_fraction = [&](bool use_hier) {
    ClusterOptions o = small_opts();
    o.use_hierarchy = use_hier;
    o.hier_bonus = 1.5;
    o.max_levels = 1;  // one pass: inspect direct merges
    Multilevel ml(d, o);
    if (ml.num_levels() < 2) return 0.0;
    const Level& fine = ml.level(0);
    const Level& coarse = ml.level(1);
    // Group fine nodes by coarse target; count pairs in the same hier node.
    std::unordered_map<int, std::vector<int>> members;
    for (int v = 0; v < fine.prob.num_nodes(); ++v)
      members[coarse.fine_to_coarse[static_cast<std::size_t>(v)]].push_back(v);
    int merges = 0, intra = 0;
    for (const auto& [cv, vs] : members) {
      if (vs.size() != 2) continue;
      ++merges;
      if (fine.hier[static_cast<std::size_t>(vs[0])] ==
          fine.hier[static_cast<std::size_t>(vs[1])])
        ++intra;
    }
    return merges > 0 ? static_cast<double>(intra) / merges : 0.0;
  };

  const double with_h = intra_module_fraction(true);
  const double without_h = intra_module_fraction(false);
  EXPECT_GT(with_h, without_h);
}

TEST_F(ClusterTest, ProjectDownPlacesFineNearCoarse) {
  const Design d = generate_benchmark(small_spec(41));
  Multilevel ml(d, small_opts());
  ASSERT_GE(ml.num_levels(), 2);
  const int top = ml.top();
  // Move all coarse clusters to a known point, project, and check.
  Level& coarse = ml.level(top);
  for (int v = 0; v < coarse.prob.num_nodes(); ++v) {
    if (coarse.prob.nodes[static_cast<std::size_t>(v)].fixed) continue;
    coarse.prob.x[static_cast<std::size_t>(v)] = 123.0;
    coarse.prob.y[static_cast<std::size_t>(v)] = 77.0;
  }
  ml.project_down(top);
  const Level& fine = ml.level(top - 1);
  for (int v = 0; v < fine.prob.num_nodes(); ++v) {
    const auto& n = fine.prob.nodes[static_cast<std::size_t>(v)];
    if (n.fixed) continue;
    EXPECT_NEAR(fine.prob.x[static_cast<std::size_t>(v)], 123.0, n.w + 1.0) << v;
    EXPECT_NEAR(fine.prob.y[static_cast<std::size_t>(v)], 77.0, n.h + 1.0) << v;
  }
}

TEST_F(ClusterTest, SingleLevelWhenTargetLarge) {
  const Design d = generate_benchmark(tiny_spec(44));
  ClusterOptions o;
  o.target_nodes = 1000000;
  Multilevel ml(d, o);
  EXPECT_EQ(ml.num_levels(), 1);
}

TEST_F(ClusterTest, CoarseHpwlTracksFine) {
  // Clustering must not destroy the wirelength structure: the coarse HPWL
  // (clusters at member centroids) stays below the fine HPWL.
  const Design d = generate_benchmark(small_spec(45));
  Multilevel ml(d, small_opts());
  const double fine = ml.level(0).prob.hpwl();
  for (int l = 1; l < ml.num_levels(); ++l) {
    EXPECT_LE(ml.level(l).prob.hpwl(), fine * 1.05) << "level " << l;
  }
}

}  // namespace
}  // namespace rp
