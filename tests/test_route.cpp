// Routing substrate: grid capacities & macro derating, net topologies,
// estimators, the negotiated-congestion router, and the ACE/RC metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "gen/generator.hpp"
#include "util/rng.hpp"
#include "route/estimator.hpp"
#include "route/metrics.hpp"
#include "route/router.hpp"
#include "util/logger.hpp"

namespace rp {
namespace {

class RouteTest : public ::testing::Test {
 protected:
  void SetUp() override { Logger::set_level(LogLevel::Warn); }
};

// ---------------- RoutingGrid ----------------

TEST_F(RouteTest, GridGeometry) {
  RoutingGrid g(Rect{0, 0, 100, 60}, 10, 6, 20, 16);
  EXPECT_EQ(g.nx(), 10);
  EXPECT_EQ(g.ny(), 6);
  EXPECT_DOUBLE_EQ(g.tile_w(), 10.0);
  EXPECT_DOUBLE_EQ(g.tile_h(), 10.0);
  EXPECT_EQ(g.num_h_edges(), 9 * 6);
  EXPECT_EQ(g.num_v_edges(), 10 * 5);
  EXPECT_DOUBLE_EQ(g.h_cap(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(g.v_cap(0, 0), 16.0);
}

TEST_F(RouteTest, UsageAndOverflowAccounting) {
  RoutingGrid g(Rect{0, 0, 40, 40}, 4, 4, 10, 10);
  g.add_h(0, 0, 12);  // 2 over
  g.add_v(1, 1, 5);   // under
  EXPECT_DOUBLE_EQ(g.total_overflow(), 2.0);
  EXPECT_DOUBLE_EQ(g.max_utilization(), 1.2);
  EXPECT_DOUBLE_EQ(g.used_wirelength(), 12 * 10.0 + 5 * 10.0);
  g.clear_usage();
  EXPECT_DOUBLE_EQ(g.total_overflow(), 0.0);
}

TEST_F(RouteTest, MacroDeratesCapacity) {
  Design d;
  d.set_die({0, 0, 100, 100});
  d.add_row(Row{0, 10, 0, 100, 1});
  const CellId m = d.add_cell("blk", 50, 50, CellKind::Macro);
  d.cell(m).fixed = true;
  d.cell(m).pos = {0, 0};  // lower-left quadrant
  d.add_cell("a", 5, 10);
  d.cell(1).pos = {80, 0};
  RouteGridInfo rg;
  rg.nx = rg.ny = 10;
  rg.h_capacity = rg.v_capacity = 20;
  rg.macro_porosity = 0.2;
  d.set_route_grid(rg);
  d.finalize();

  RoutingGrid grid(d, true);
  // Deep inside the macro: capacity ~ porosity × base.
  EXPECT_NEAR(grid.h_cap(1, 1), 20 * 0.2, 1.0);
  // Far away: untouched.
  EXPECT_DOUBLE_EQ(grid.h_cap(7, 7), 20.0);
  EXPECT_DOUBLE_EQ(grid.v_cap(7, 7), 20.0);
}

TEST_F(RouteTest, TileCongestionReflectsEdges) {
  RoutingGrid g(Rect{0, 0, 40, 40}, 4, 4, 10, 10);
  g.add_h(1, 2, 15);  // edge (1,2)-(2,2) at 150%
  const Grid2D<double> c = g.tile_congestion();
  EXPECT_DOUBLE_EQ(c(1, 2), 1.5);
  EXPECT_DOUBLE_EQ(c(2, 2), 1.5);
  EXPECT_DOUBLE_EQ(c(0, 0), 0.0);
}

// ---------------- topology ----------------

TEST_F(RouteTest, TopologyTwoPins) {
  const auto segs = net_topology({{0, 0}, {5, 5}});
  ASSERT_EQ(segs.size(), 1u);
}

TEST_F(RouteTest, TopologyIsSpanningTree) {
  Rng rng(5);
  std::vector<Point> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  const auto segs = net_topology(pts);
  EXPECT_EQ(segs.size(), pts.size() - 1);
  // Connectivity: union-find.
  std::vector<int> parent(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) parent[i] = static_cast<int>(i);
  const std::function<int(int)> find = [&](int x) {
    return parent[static_cast<std::size_t>(x)] == x
               ? x
               : parent[static_cast<std::size_t>(x)] =
                     find(parent[static_cast<std::size_t>(x)]);
  };
  for (const auto& [a, b] : segs) parent[static_cast<std::size_t>(find(a))] = find(b);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_EQ(find(static_cast<int>(i)), find(0));
}

TEST_F(RouteTest, TopologyMstShorterThanChain) {
  // MST total length <= naive index-chain length.
  Rng rng(6);
  std::vector<Point> pts;
  for (int i = 0; i < 15; ++i) pts.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  const auto segs = net_topology(pts);
  double mst = 0;
  for (const auto& [a, b] : segs)
    mst += manhattan(pts[static_cast<std::size_t>(a)], pts[static_cast<std::size_t>(b)]);
  double chain = 0;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) chain += manhattan(pts[i], pts[i + 1]);
  EXPECT_LE(mst, chain + 1e-9);
}

TEST_F(RouteTest, TopologyHugeNetFallsBackToChain) {
  std::vector<Point> pts;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
  const auto segs = net_topology(pts);
  EXPECT_EQ(segs.size(), pts.size() - 1);
}

// ---------------- estimators ----------------

/// Two cells on one net, horizontally separated.
Design two_cell_net(double x0, double x1, double y) {
  Design d;
  d.set_die({0, 0, 100, 100});
  d.add_row(Row{0, 10, 0, 100, 1});
  const CellId a = d.add_cell("a", 2, 2);
  const CellId b = d.add_cell("b", 2, 2);
  const NetId n = d.add_net("n");
  d.connect(a, n);
  d.connect(b, n);
  d.set_center(a, {x0, y});
  d.set_center(b, {x1, y});
  RouteGridInfo rg;
  rg.nx = rg.ny = 10;
  rg.h_capacity = rg.v_capacity = 10;
  d.set_route_grid(rg);
  d.finalize();
  return d;
}

TEST_F(RouteTest, ProbabilisticStraightNetUsesRowEdges) {
  const Design d = two_cell_net(5, 95, 55);
  RoutingGrid g(d, true);
  estimate_probabilistic(d, g);
  // The net spans tiles 0..9 in row 5: all 9 h-edges of that row carry 1.
  for (int ix = 0; ix < 9; ++ix) EXPECT_DOUBLE_EQ(g.h_use(ix, 5), 1.0);
  EXPECT_DOUBLE_EQ(g.total_overflow(), 0.0);
  EXPECT_NEAR(g.used_wirelength(), 90.0, 1e-9);
}

TEST_F(RouteTest, ProbabilisticLShapeSplitsDemand) {
  Design d;
  d.set_die({0, 0, 100, 100});
  d.add_row(Row{0, 10, 0, 100, 1});
  const CellId a = d.add_cell("a", 2, 2);
  const CellId b = d.add_cell("b", 2, 2);
  const NetId n = d.add_net("n");
  d.connect(a, n);
  d.connect(b, n);
  d.set_center(a, {5, 5});
  d.set_center(b, {95, 95});
  RouteGridInfo rg;
  rg.nx = rg.ny = 10;
  rg.h_capacity = rg.v_capacity = 10;
  d.set_route_grid(rg);
  d.finalize();
  RoutingGrid g(d, true);
  estimate_probabilistic(d, g);
  // Each L gets weight 0.5: bottom row h-edges and top row h-edges at 0.5.
  EXPECT_DOUBLE_EQ(g.h_use(4, 0), 0.5);
  EXPECT_DOUBLE_EQ(g.h_use(4, 9), 0.5);
  EXPECT_DOUBLE_EQ(g.v_use(0, 4), 0.5);
  EXPECT_DOUBLE_EQ(g.v_use(9, 4), 0.5);
  // Total demand = one full L length in tracks (18 edge units).
  double total = 0;
  for (int iy = 0; iy < 10; ++iy)
    for (int ix = 0; ix < 9; ++ix) total += g.h_use(ix, iy);
  for (int ix = 0; ix < 10; ++ix)
    for (int iy = 0; iy < 9; ++iy) total += g.v_use(ix, iy);
  EXPECT_NEAR(total, 18.0, 1e-9);
}

TEST_F(RouteTest, RudyConcentratesOnNetBoxes) {
  const Design d = two_cell_net(5, 45, 55);
  GridMap map(d.die(), 10, 10);
  const Grid2D<double> r = rudy_map(d, map);
  // The degenerate (flat) net box is widened by one bin height, so demand
  // may land in rows 5 and 6.
  double inside = 0, outside = 0;
  for (int iy = 0; iy < 10; ++iy)
    for (int ix = 0; ix < 10; ++ix)
      (((iy == 5 || iy == 6) && ix <= 4) ? inside : outside) += r(ix, iy);
  EXPECT_GT(inside, 0.0);
  EXPECT_NEAR(outside, 0.0, 1e-9);
}

// ---------------- router ----------------

TEST_F(RouteTest, RouterRoutesStraightNet) {
  const Design d = two_cell_net(5, 95, 55);
  RoutingGrid g(d, true);
  GlobalRouter router(g);
  const RouteStats st = router.route(d);
  EXPECT_EQ(st.segments, 1);
  EXPECT_TRUE(st.overflow_free);
  EXPECT_NEAR(st.wirelength, 90.0, 1e-9);
}

TEST_F(RouteTest, RouterDetoursAroundOverflow) {
  // Many parallel nets through a single-row capacity bottleneck: the router
  // must spread them over neighboring rows and end overflow-free.
  Design d;
  d.set_die({0, 0, 100, 100});
  d.add_row(Row{0, 10, 0, 100, 1});
  for (int i = 0; i < 6; ++i) {
    const CellId a = d.add_cell("a" + std::to_string(i), 2, 2);
    const CellId b = d.add_cell("b" + std::to_string(i), 2, 2);
    const NetId n = d.add_net("n" + std::to_string(i));
    d.connect(a, n);
    d.connect(b, n);
    d.set_center(a, {5, 55});
    d.set_center(b, {95, 55});
  }
  RouteGridInfo rg;
  rg.nx = rg.ny = 10;
  rg.h_capacity = 2;  // row capacity 2 << 6 nets
  rg.v_capacity = 10;
  d.set_route_grid(rg);
  d.finalize();
  RoutingGrid g(d, true);
  GlobalRouter router(g);
  const RouteStats st = router.route(d);
  EXPECT_TRUE(st.overflow_free) << "overflow " << st.total_overflow;
  // Detours make it longer than the straight 6 × 90.
  EXPECT_GT(st.wirelength, 6 * 90.0);
}

TEST_F(RouteTest, RouterAvoidsBlockedRegion) {
  Design d = two_cell_net(5, 95, 55);
  RoutingGrid g(d, true);
  // Block the straight path's middle row completely.
  for (int ix = 2; ix < 7; ++ix) {
    g.scale_h_cap(ix, 5, 0.0);
  }
  GlobalRouter router(g);
  const RouteStats st = router.route(d);
  EXPECT_TRUE(st.overflow_free);
  EXPECT_GT(st.wirelength, 90.0);  // must have detoured
}

TEST_F(RouteTest, RouterOnGeneratedBenchmark) {
  const Design d = generate_benchmark(tiny_spec(3));
  RoutingGrid g(d, true);
  GlobalRouter router(g);
  const RouteStats st = router.route(d);
  EXPECT_GT(st.segments, 100);
  EXPECT_GT(st.wirelength, 0.0);
  // Sanity: routed WL ≥ sum of MST lengths cannot be asserted exactly at
  // tile granularity, but it must be within a plausible factor of HPWL.
  EXPECT_LT(st.wirelength, 10 * d.hpwl() + 1e4);
}

// ---------------- metrics ----------------

TEST_F(RouteTest, AceBasics) {
  // 100 edges: one at 2.0, rest at 0.5.
  std::vector<double> u(100, 0.5);
  u[0] = 2.0;
  EXPECT_NEAR(ace(u, 1.0), 200.0, 1e-9);        // top 1% = the single hot edge
  EXPECT_NEAR(ace(u, 2.0), (2.0 + 0.5) / 2 * 100, 1e-9);
  EXPECT_NEAR(ace(u, 100.0), (2.0 + 99 * 0.5), 1e-6);  // mean × 100
}

TEST_F(RouteTest, AceEmptyAndSmall) {
  EXPECT_DOUBLE_EQ(ace({}, 1.0), 0.0);
  EXPECT_NEAR(ace({0.7}, 0.5), 70.0, 1e-9);
}

TEST_F(RouteTest, CongestionMetricsOrdering) {
  RoutingGrid g(Rect{0, 0, 40, 40}, 4, 4, 10, 10);
  g.add_h(0, 0, 20);
  g.add_h(1, 0, 12);
  g.add_v(0, 0, 8);
  const CongestionMetrics m = congestion_metrics(g);
  // ACE is monotone non-increasing in the percentile.
  EXPECT_GE(m.ace_005, m.ace_1);
  EXPECT_GE(m.ace_1, m.ace_2);
  EXPECT_GE(m.ace_2, m.ace_5);
  EXPECT_NEAR(m.peak_utilization, 2.0, 1e-9);
  EXPECT_EQ(m.overflowed_edges, 2);
  EXPECT_NEAR(m.total_overflow, 10 + 2, 1e-9);
}

TEST_F(RouteTest, ScaledHpwlPenalty) {
  EXPECT_DOUBLE_EQ(scaled_hpwl(1000, 90.0), 1000.0);   // under 100: no penalty
  EXPECT_DOUBLE_EQ(scaled_hpwl(1000, 100.0), 1000.0);
  EXPECT_NEAR(scaled_hpwl(1000, 110.0), 1000 * (1 + 0.03 * 10), 1e-9);
}

}  // namespace
}  // namespace rp
